(* tixd: the resident TIX query service.

   Loads one database (XML documents or a saved .tix image), pins it
   as an immutable snapshot, and serves the newline-delimited JSON
   protocol (lib/service/protocol.mli) over TCP with a fixed pool of
   domain workers. `tixdb client` is the matching command-line
   client. *)

open Cmdliner

let () =
  Logs.set_reporter (Logs_fmt.reporter ());
  match Sys.getenv_opt "TIX_LOG" with
  | Some "debug" -> Logs.set_level (Some Logs.Debug)
  | Some "info" -> Logs.set_level (Some Logs.Info)
  | Some _ | None -> Logs.set_level (Some Logs.Warning)

let load_files ~skip_bad ~verify paths =
  match paths with
  | [ path ] when Filename.check_suffix path ".tix" -> begin
    match Store.Db.open_file ~verify path with
    | Ok db -> db
    | Error e ->
      Format.eprintf "error: %a@." Store.Db.pp_error e;
      exit 1
  end
  | paths when skip_bad ->
    let docs =
      List.to_seq paths
      |> Seq.map (fun path ->
             ( Filename.basename path,
               match Xmlkit.Parser.parse_file path with
               | Ok root -> Ok root
               | Error e ->
                 Error
                   (Format.asprintf "parse error: %a" Xmlkit.Parser.pp_error e)
             ))
    in
    let db, report = Store.Db.load_isolated docs in
    if report.failed <> [] then
      Format.eprintf "%a@." Store.Db.pp_load_report report;
    db
  | paths ->
    let docs =
      List.map
        (fun path ->
          match Xmlkit.Parser.parse_file path with
          | Ok root -> (Filename.basename path, root)
          | Error e ->
            Format.eprintf "%s: parse error: %a@." path Xmlkit.Parser.pp_error e;
            exit 1)
        paths
    in
    Store.Db.of_documents docs

let open_live ?base ?wal_batch ?wal_linger ~dir () =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  match Store.Live.open_dir ?base ?wal_batch ?wal_linger ~dir () with
  | Error e ->
    Format.eprintf "error: %s: %s@." dir (Store.Live.error_to_string e);
    exit 1
  | Ok opened ->
    let recovery = opened.Store.Live.recovery in
    let replay = opened.Store.Live.replay in
    let records = List.length recovery.Store.Wal.records in
    if records > 0 || recovery.Store.Wal.truncated_bytes > 0 then
      Format.printf
        "tixd: recovered %d WAL record(s): %d applied, %d skipped, %d torn \
         byte(s) truncated@."
        records replay.Store.Delta.applied replay.Store.Delta.skipped
        recovery.Store.Wal.truncated_bytes;
    opened

let serve paths host port workers queue_depth parallelism plan_cache
    result_cache timeout max_steps max_results slow_query skip_bad wal_dir
    wal_batch wal_linger ck_every_docs ck_every_bytes lazy_verify =
  if paths = [] && wal_dir = None then begin
    Format.eprintf
      "error: nothing to serve — give XML documents, a .tix image, or \
       --wal-dir@.";
    exit 1
  end;
  let verify = if lazy_verify then `Lazy else `Eager in
  let base =
    match paths with
    | [] -> None
    | paths -> Some (load_files ~skip_bad ~verify paths)
  in
  let base_label = match paths with [ p ] -> p | _ -> "<multiple>" in
  Service.Engine.set_slow_query_threshold slow_query;
  let opened =
    Option.map
      (fun dir ->
        open_live ?base ~wal_batch ~wal_linger ~dir ())
      wal_dir
  in
  let source, db =
    match opened with
    | None -> (base_label, Option.get base)
    | Some o ->
      let source =
        match o.Store.Live.base_source with
        | Store.Live.From_checkpoint path -> path
        | Store.Live.Provided -> base_label
        | Store.Live.Empty -> "<empty>"
      in
      (source, Store.Live.base o.Store.Live.live)
  in
  let feedback =
    Option.bind wal_dir (fun dir -> Service.Updates.load_feedback ~dir)
  in
  let snapshot =
    match Service.Engine.of_db ~source ?feedback db with
    | Ok s -> s
    | Error msg ->
      Format.eprintf "error: %s@." msg;
      exit 1
  in
  (* recovered-but-not-yet-checkpointed WAL records live in the delta:
     publish them with the very first snapshot *)
  let snapshot =
    match opened with
    | None -> snapshot
    | Some o ->
      Service.Engine.with_delta snapshot (Store.Live.delta o.Store.Live.live)
  in
  let limits =
    Core.Governor.limits ?max_steps ?timeout_s:timeout ?max_results ()
  in
  let scheduler =
    Service.Scheduler.create ?workers ?queue_depth ~limits
      ~max_parallelism:parallelism ~plan_cache_capacity:plan_cache
      ~result_cache_capacity:result_cache snapshot
  in
  let updates =
    Option.map
      (fun o ->
        Service.Updates.create ?every_docs:ck_every_docs
          ?every_bytes:ck_every_bytes ~live:o.Store.Live.live ~scheduler ())
      opened
  in
  let server = Service.Server.start ~host ~port ?updates scheduler in
  let stats = Service.Scheduler.stats scheduler in
  Format.printf "tixd: serving %s on %s:%d (workers=%d queue=%d%s)@." source
    host
    (Service.Server.port server)
    stats.Service.Scheduler.workers stats.Service.Scheduler.queue_depth
    (match wal_dir with
    | Some dir -> Printf.sprintf " wal-dir=%s" dir
    | None -> "");
  (* flush so scripts that spawned us can scrape the port *)
  Format.pp_print_flush Format.std_formatter ();
  let running = Atomic.make true in
  let quit _ = Atomic.set running false in
  Sys.set_signal Sys.sigint (Sys.Signal_handle quit);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle quit);
  while Atomic.get running do
    Unix.sleepf 0.2
  done;
  Format.printf "tixd: shutting down@.";
  Service.Server.stop server;
  Option.iter Service.Updates.shutdown updates;
  Service.Scheduler.shutdown scheduler;
  Option.iter (fun o -> Store.Live.close o.Store.Live.live) opened

let paths_arg =
  Arg.(
    value & pos_all file []
    & info [] ~docv:"FILE"
        ~doc:
          "XML documents to load, or a single saved database image (*.tix). \
           May be omitted when $(b,--wal-dir) names a directory with a \
           checkpoint.")

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind.")

let port_arg =
  Arg.(
    value & opt int 7070
    & info [ "p"; "port" ] ~docv:"PORT"
        ~doc:"TCP port (0 asks the kernel for a free one).")

let workers_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "w"; "workers" ] ~docv:"N"
        ~doc:
          "Worker domains (default: recommended domain count - 1, capped at \
           8).")

let queue_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "queue" ] ~docv:"DEPTH"
        ~doc:
          "Submission queue bound; a full queue answers with an overloaded \
           error (default 4 x workers).")

let parallelism_arg =
  Arg.(
    value & opt int 1
    & info [ "parallelism" ] ~docv:"N"
        ~doc:
          "Cap on intra-query parallelism: a request asking for \
           \"parallelism\":n runs its posting-list scan across up to \
           min(n, N) extra domains. 1 (the default) disables the parallel \
           executor.")

let plan_cache_arg =
  Arg.(
    value & opt int 256
    & info [ "plan-cache" ] ~docv:"N"
        ~doc:"Compiled-plan LRU capacity (0 disables).")

let result_cache_arg =
  Arg.(
    value & opt int 1024
    & info [ "result-cache" ] ~docv:"N"
        ~doc:"Top-k result LRU capacity (0 disables).")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:"Default wall-clock budget per query (requests may tighten it).")

let max_steps_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-steps" ] ~docv:"N" ~doc:"Default step budget per query.")

let max_results_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-results" ] ~docv:"N"
        ~doc:"Default result-cardinality cap per query.")

let slow_query_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "slow-query" ] ~docv:"SECONDS"
        ~doc:
          "Log a warning (with the span tree, when the request was traced) \
           for every query slower than this many seconds, and count it in \
           the queries.slow metric.")

let skip_bad_arg =
  Arg.(
    value & flag
    & info [ "skip-bad" ]
        ~doc:"Skip documents that fail to parse or ingest instead of aborting.")

let wal_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "wal-dir" ] ~docv:"DIR"
        ~doc:
          "Serve updatable: accept insert/delete/update/checkpoint ops, \
           logging each mutation to DIR/wal.log before acknowledging it. On \
           start, a checkpoint image in DIR wins over the FILE arguments and \
           the WAL's committed records are replayed (torn tails are \
           truncated). Created if missing.")

let wal_batch_arg =
  Arg.(
    value & opt int 64
    & info [ "wal-batch" ] ~docv:"N"
        ~doc:
          "Group-commit batch cap: up to N concurrently queued mutations \
           share one WAL write and fsync. 1 restores per-op fsync.")

let wal_linger_arg =
  Arg.(
    value & opt float 0.
    & info [ "wal-linger" ] ~docv:"SECONDS"
        ~doc:
          "Bounded wait before a group-commit leader takes its batch, giving \
           more writers time to join. 0 (the default) relies on natural \
           batching during the previous fsync.")

let ck_every_docs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "checkpoint-every-docs" ] ~docv:"N"
        ~doc:
          "Trigger a background checkpoint automatically once the delta \
           holds N documents + tombstones.")

let ck_every_bytes_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "checkpoint-every-bytes" ] ~docv:"N"
        ~doc:
          "Trigger a background checkpoint automatically once the live WAL \
           reaches N bytes.")

let lazy_verify_arg =
  Arg.(
    value & flag
    & info [ "lazy-verify" ]
        ~doc:
          "Serve a .tix image before its checksums are verified: the \
           structural frame is checked eagerly, the CRC pass runs on a \
           background thread, and $(b,health) reports \
           \"verification\":\"pending\" until it lands (then \"verified\" \
           or \"failed\"). Cuts time-to-first-query on large images.")

let () =
  let info =
    Cmd.info "tixd" ~version:"1.0.0"
      ~doc:"Resident concurrent TIX query service (NDJSON over TCP)"
  in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(
            const serve $ paths_arg $ host_arg $ port_arg $ workers_arg
            $ queue_arg $ parallelism_arg $ plan_cache_arg $ result_cache_arg
            $ timeout_arg $ max_steps_arg $ max_results_arg $ slow_query_arg
            $ skip_bad_arg $ wal_dir_arg $ wal_batch_arg $ wal_linger_arg
            $ ck_every_docs_arg $ ck_every_bytes_arg $ lazy_verify_arg)))
