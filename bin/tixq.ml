(* tixq: the distributed TIX query coordinator.

   Loads a shard manifest (written by `tixdb shard`), connects to the
   backend tixd processes it names, and serves the same NDJSON
   protocol on its own port: clients cannot tell a coordinator from a
   single-node server, except that answers are gathered across every
   shard. `tixdb client` works unchanged against it. *)

open Cmdliner

let () =
  Logs.set_reporter (Logs_fmt.reporter ());
  match Sys.getenv_opt "TIX_LOG" with
  | Some "debug" -> Logs.set_level (Some Logs.Debug)
  | Some "info" -> Logs.set_level (Some Logs.Info)
  | Some _ | None -> Logs.set_level (Some Logs.Warning)

let serve manifest host port window connect_timeout request_timeout retries =
  let map =
    match Dist.Shard_map.load manifest with
    | Ok map -> map
    | Error msg ->
      Format.eprintf "error: %s@." msg;
      exit 1
  in
  let client =
    Dist.Client.create ~connect_timeout ~request_timeout ~retries ()
  in
  let coordinator =
    Dist.Coordinator.create ~window ~client ~source:manifest map
  in
  let server =
    Service.Server.start_handler ~name:"tixq" ~host ~port
      (Dist.Coordinator.handle coordinator)
  in
  Format.printf "tixq: coordinating %d shard(s), %d document(s) on %s:%d@."
    (Dist.Shard_map.shard_count map)
    (Dist.Shard_map.total_docs map)
    host
    (Service.Server.port server);
  (* flush so scripts that spawned us can scrape the port *)
  Format.pp_print_flush Format.std_formatter ();
  let running = Atomic.make true in
  let quit _ = Atomic.set running false in
  Sys.set_signal Sys.sigint (Sys.Signal_handle quit);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle quit);
  while Atomic.get running do
    Unix.sleepf 0.2
  done;
  Format.printf "tixq: shutting down@.";
  Service.Server.stop server;
  Dist.Client.close client

let manifest_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"MANIFEST"
        ~doc:"Shard manifest (JSON, written by $(b,tixdb shard)).")

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind.")

let port_arg =
  Arg.(
    value & opt int 7071
    & info [ "p"; "port" ] ~docv:"PORT"
        ~doc:"TCP port (0 asks the kernel for a free one).")

let window_arg =
  Arg.(
    value & opt int 0
    & info [ "window" ] ~docv:"N"
        ~doc:
          "Ranked fan-out wave size: contact N shards at a time, relaying \
           the gathered top-k threshold to later waves so they can prune. 0 \
           (the default) contacts every shard in one wave — lowest latency, \
           no cross-shard pruning.")

let connect_timeout_arg =
  Arg.(
    value & opt float 2.0
    & info [ "connect-timeout" ] ~docv:"SECONDS"
        ~doc:"Dial timeout per backend connection attempt.")

let request_timeout_arg =
  Arg.(
    value & opt float 30.0
    & info [ "request-timeout" ] ~docv:"SECONDS"
        ~doc:"Per-request response deadline against each backend.")

let retries_arg =
  Arg.(
    value & opt int 2
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Extra attempts per backend request, each on a fresh connection \
           (a restarted backend is invisible within the retry budget). \
           Replica failover is separate and always on.")

let () =
  let info =
    Cmd.info "tixq" ~version:"1.0.0"
      ~doc:
        "Distributed TIX query coordinator: scatter-gather federation over \
         document-sharded tixd backends"
  in
  exit
    (Cmd.eval
       (Cmd.v info
          Term.(
            const serve $ manifest_arg $ host_arg $ port_arg $ window_arg
            $ connect_timeout_arg $ request_timeout_arg $ retries_arg)))
