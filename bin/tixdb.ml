(* tixdb: command-line front end to the TIX structured-text database.

   Subcommands:
     query   load XML documents and evaluate an extended-XQuery query
     search  score elements for query terms with a chosen access method
     phrase  find a phrase with PhraseFinder or Comp3
     stats   load documents and print database statistics
     gen     write a synthetic INEX-like corpus to a directory
     build   build a persistent database image from XML files
     compact rewrite an image in the current format (migrates TIXDB003)
     client  talk to a running tixd server (NDJSON over TCP)
     ingest  insert/replace documents in a running updatable tixd
     rm      delete documents from a running updatable tixd
     demo    run the paper's Query 1 against the built-in Figure 1 data
*)

open Cmdliner

let () =
  (* logging: TIX_LOG=debug|info enables tracing on stderr *)
  Logs.set_reporter (Logs_fmt.reporter ());
  match Sys.getenv_opt "TIX_LOG" with
  | Some "debug" -> Logs.set_level (Some Logs.Debug)
  | Some "info" -> Logs.set_level (Some Logs.Info)
  | Some _ | None -> Logs.set_level (Some Logs.Warning)

let load_files ~skip_bad paths =
  (* a single .tix argument is a saved database image *)
  match paths with
  | [ path ] when Filename.check_suffix path ".tix" -> begin
    match Store.Db.open_file path with
    | Ok db -> db
    | Error e ->
      Format.eprintf "error: %a@." Store.Db.pp_error e;
      exit 1
  end
  | paths when skip_bad ->
    (* error-isolated bulk load: bad documents are reported and
       skipped, the rest of the corpus still loads *)
    let docs =
      List.to_seq paths
      |> Seq.map (fun path ->
             ( Filename.basename path,
               match Xmlkit.Parser.parse_file path with
               | Ok root -> Ok root
               | Error e ->
                 Error
                   (Format.asprintf "parse error: %a" Xmlkit.Parser.pp_error e)
             ))
    in
    let db, report = Store.Db.load_isolated docs in
    if report.failed <> [] then
      Format.eprintf "%a@." Store.Db.pp_load_report report;
    db
  | paths ->
    let docs =
      List.map
        (fun path ->
          match Xmlkit.Parser.parse_file path with
          | Ok root -> (Filename.basename path, root)
          | Error e ->
            Format.eprintf "%s: parse error: %a@." path Xmlkit.Parser.pp_error e;
            exit 1)
        paths
    in
    Store.Db.of_documents docs

let paths_arg =
  Arg.(
    non_empty & pos_all file []
    & info [] ~docv:"FILE"
        ~doc:
          "XML documents to load, or a single saved database image \
           (*.tix).")

let skip_bad_arg =
  Arg.(
    value & flag
    & info [ "skip-bad" ]
        ~doc:
          "Skip documents that fail to parse or ingest, reporting each \
           failure on stderr, instead of aborting the whole load.")

(* --timeout/--max-steps/--max-results assemble per-query governor
   limits; breaches surface as a typed resource-exhausted error. *)
let limits_term =
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout" ] ~docv:"SECONDS"
          ~doc:"Wall-clock deadline for the query.")
  in
  let max_steps_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-steps" ] ~docv:"N"
          ~doc:"Evaluation step budget for the query.")
  in
  let max_results_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-results" ] ~docv:"N"
          ~doc:"Cap on intermediate/final result cardinality.")
  in
  let mk timeout_s max_steps max_results =
    Core.Governor.limits ?max_steps ?timeout_s ?max_results ()
  in
  Term.(const mk $ timeout_arg $ max_steps_arg $ max_results_arg)

(* Run [f] under a fresh governor; afterwards charge the produced
   cardinality and sample the deadline, so even access methods that
   are not internally governed report budget breaches uniformly. *)
let governed limits f =
  let gov = Core.Governor.start limits in
  let results = f () in
  let n = List.length results in
  Core.Governor.tick_n gov n;
  Core.Governor.check_results gov n;
  Core.Governor.check_deadline gov;
  results

(* Parallel variant: one shared budget across every domain of the
   fan-out, settled (and the deadline sampled) once the merge is
   done, so --max-steps bounds the whole query, not one chunk. *)
let governed_parallel limits f =
  let sh = Core.Governor.make_shared limits in
  let results = f sh in
  Core.Governor.shared_check_results sh (List.length results);
  Core.Governor.shared_check_deadline sh;
  results

let parallel_arg =
  Arg.(
    value & opt int 1
    & info [ "parallel" ] ~docv:"N"
        ~doc:
          "Partition the posting lists into document ranges and run the \
           access method across up to N domains (results are identical to \
           sequential execution). 1 disables it.")

let or_fault_exit f =
  match f () with
  | v -> v
  | exception Core.Governor.Resource_exhausted v ->
    Format.eprintf "error: %a@." Core.Governor.pp_violation v;
    exit 1
  | exception Store.Pager.Read_error e ->
    Format.eprintf "storage error: %a@." Store.Pager.pp_read_error e;
    exit 1

(* ------------------------------------------------------------------ *)
(* query *)

let format_conv = Arg.enum [ ("text", `Text); ("json", `Json) ]

let query_cmd =
  let run paths query_string engine explain trace format skip_bad limits =
    let db = load_files ~skip_bad paths in
    match format with
    | `Json ->
      (* structured output through the service layer, so scripts and
         the tixd protocol share one encoder *)
      let snapshot =
        match Service.Engine.of_db db with
        | Ok s -> s
        | Error msg ->
          Format.eprintf "error: %s@." msg;
          exit 1
      in
      if explain && not trace then begin
        (* EXPLAIN without ANALYZE: compile only, print the plan,
           costed against the loaded database's statistics *)
        match Service.Engine.explain ~snapshot query_string with
        | Ok plan ->
          print_endline
            (Service.Json.to_string (Service.Protocol.ok_plan_to_json plan))
        | Error e ->
          print_endline
            (Service.Json.to_string (Service.Protocol.engine_error_to_json e));
          exit 1
      end
      else begin
        let mode = if engine || explain then `Engine else `Auto in
        let request = Service.Engine.Query { q = query_string; mode } in
        let json, failed =
          match Service.Engine.exec ~limits ~trace snapshot request with
          | Ok result -> (Service.Protocol.result_to_json result, false)
          | Error e -> (Service.Protocol.engine_error_to_json e, true)
        in
        print_endline (Service.Json.to_string json);
        if failed then exit 1
      end
    | `Text ->
    let tracer = if trace then Core.Trace.make () else Core.Trace.disabled in
    let print_trace () =
      if trace then
        match Core.Trace.root tracer with
        | Some sp -> Format.printf "@.%s@." (Core.Trace.span_to_string sp)
        | None -> ()
    in
    if engine || explain then begin
      (* try the compiled path; report the plan and identifiers *)
      match Query.Parser.parse query_string with
      | Error e ->
        Format.eprintf "parse error: %a@." Query.Parser.pp_error e;
        exit 1
      | Ok q -> begin
        match Query.Compile.compile q with
        | Error reason ->
          Format.eprintf
            "not compilable (%s); it would run on the interpreter@." reason;
          exit 1
        | Ok plan ->
          let plan = Query.Compile.plan_with_stats db plan in
          Format.printf "%s@.@." (Query.Compile.explain plan);
          (* --explain alone stops at the plan; --engine or --trace
             also executes (EXPLAIN ANALYZE) *)
          if engine || trace then begin
            let nodes =
              or_fault_exit (fun () ->
                  Query.Compile.execute ~limits ~trace:tracer db plan)
            in
            (* est-vs-actual per operator in the printed span tree *)
            (match plan.Query.Compile.estimate, Core.Trace.root tracer with
            | Some d, Some sp ->
              Core.Trace.apply_estimates sp
                [
                  ( Access.Pattern_exec.access_operator
                      plan.Query.Compile.access,
                    d.Query.Planner.est_rows );
                  ("CompiledQuery", d.Query.Planner.est_rows);
                ]
            | _ -> ());
            List.iter
              (fun (n : Access.Scored_node.t) ->
                let tag =
                  Option.value ~default:"?"
                    (Store.Db.tag_of db ~doc:n.doc ~start:n.start)
                in
                Format.printf "%-14s doc=%d start=%d score=%.3f@." tag n.doc
                  n.start n.score)
              nodes;
            Format.printf "(%d results)@." (List.length nodes);
            print_trace ()
          end
      end
    end
    else begin
      let evaluator = Query.Eval.create ~limits ~trace:tracer db in
      match Query.Eval.run_string evaluator query_string with
      | Ok results ->
        List.iter
          (fun r -> print_string (Xmlkit.Printer.to_string ~indent:2 r))
          results;
        Format.printf "(%d results)@." (List.length results);
        print_trace ()
      | Error msg ->
        Format.eprintf "error: %s@." msg;
        exit 1
    end
  in
  let query_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "q"; "query" ] ~docv:"QUERY"
          ~doc:"Extended-XQuery text (Score/Pick/Threshold clauses).")
  in
  let engine_arg =
    Arg.(
      value & flag
      & info [ "engine" ]
          ~doc:
            "Compile onto the store-level access methods (structural joins + \
             TermJoin + stack Pick) instead of interpreting.")
  in
  let explain_arg =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "Print the compiled physical plan without executing (combine \
             with $(b,--trace) for EXPLAIN ANALYZE). Fails when the query \
             is outside the compilable fragment.")
  in
  let trace_arg =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Execute with per-operator tracing and print the span tree: \
             input/output cardinalities, governor steps and elapsed time \
             for every operator.")
  in
  let format_arg =
    Arg.(
      value & opt format_conv `Text
      & info [ "format" ] ~docv:"FORMAT"
          ~doc:
            "Output format: text, or json (one response object with results, \
             scores and timings — the same encoding tixd serves).")
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Evaluate an extended-XQuery query")
    Term.(
      const run $ paths_arg $ query_arg $ engine_arg $ explain_arg $ trace_arg
      $ format_arg $ skip_bad_arg $ limits_term)

(* ------------------------------------------------------------------ *)
(* search *)

let method_conv =
  Arg.enum
    [
      ("termjoin", `Termjoin);
      ("enhanced", `Enhanced);
      ("genmeet", `Genmeet);
      ("comp1", `Comp1);
      ("comp2", `Comp2);
      ("auto", `Auto);
    ]

let search_cmd =
  let run paths terms method_ complex top trace parallel skip_bad limits =
    let db = load_files ~skip_bad paths in
    let ctx = Access.Ctx.of_db db in
    let terms = String.split_on_char ',' terms |> List.map String.trim in
    let mode =
      if complex then Access.Counter_scoring.Complex
      else Access.Counter_scoring.Simple
    in
    let tracer = if trace then Core.Trace.make () else Core.Trace.disabled in
    (* auto resolves to a concrete method up front so the dispatch
       below stays a closed enumeration *)
    let method_, parallel =
      match method_ with
      | `Auto ->
        let d =
          Query.Planner.choose ~parallelism:parallel
            ~stats:(Store.Db.collection_stats db)
            ~index:(Store.Db.index db) ~terms ()
        in
        Format.printf "planner: %s@." (Query.Planner.to_string d);
        let m =
          match d.Query.Planner.access with
          | Access.Pattern_exec.Term_join Access.Term_join.Plain -> `Termjoin
          | Access.Pattern_exec.Term_join Access.Term_join.Enhanced -> `Enhanced
          | Access.Pattern_exec.Gen_meet _ -> `Genmeet
          | Access.Pattern_exec.Comp1 -> `Comp1
          | Access.Pattern_exec.Comp2 -> `Comp2
        in
        (m, d.Query.Planner.parallelism)
      | (`Termjoin | `Enhanced | `Genmeet | `Comp1 | `Comp2) as m ->
        (m, parallel)
    in
    (* the composite baselines have no range-restricted form; they
       always run sequentially *)
    let parallel =
      match method_ with
      | `Comp1 | `Comp2 ->
        if parallel > 1 then
          Format.eprintf "note: %s runs sequentially; --parallel ignored@."
            (match method_ with `Comp1 -> "comp1" | _ -> "comp2");
        1
      | _ -> parallel
    in
    let started = Unix.gettimeofday () in
    let results =
      or_fault_exit (fun () ->
          if parallel > 1 then
            governed_parallel limits (fun shared ->
                match method_ with
                | `Termjoin ->
                  Exec.Par.term_join ~trace:tracer ~shared ~mode
                    ~parallelism:parallel ctx ~terms
                | `Enhanced ->
                  Exec.Par.term_join ~trace:tracer ~shared
                    ~variant:Access.Term_join.Enhanced ~mode
                    ~parallelism:parallel ctx ~terms
                | `Genmeet ->
                  Exec.Par.gen_meet ~trace:tracer ~shared ~mode
                    ~parallelism:parallel ctx ~terms
                | `Comp1 | `Comp2 -> assert false)
          else
            governed limits (fun () ->
                match method_ with
                | `Termjoin -> Access.Term_join.to_list ~trace:tracer ~mode ctx ~terms
                | `Enhanced ->
                  Access.Term_join.to_list ~trace:tracer
                    ~variant:Access.Term_join.Enhanced ~mode ctx ~terms
                | `Genmeet -> Access.Gen_meet.to_list ~trace:tracer ~mode ctx ~terms
                | `Comp1 -> Access.Composite.comp1_list ~trace:tracer ~mode ctx ~terms
                | `Comp2 -> Access.Composite.comp2_list ~trace:tracer ~mode ctx ~terms))
    in
    let elapsed = Unix.gettimeofday () -. started in
    let ranked = List.sort Access.Scored_node.compare_score_desc results in
    List.iteri
      (fun i (n : Access.Scored_node.t) ->
        if i < top then begin
          let tag =
            Option.value ~default:"?" (Store.Db.tag_of db ~doc:n.doc ~start:n.start)
          in
          Format.printf "%2d. %-14s doc=%d start=%d score=%.3f@." (i + 1) tag
            n.doc n.start n.score;
          let snippet = Access.Snippet.of_node ~width:16 ctx ~terms n in
          if snippet <> "" then Format.printf "     %s@." snippet
        end)
      ranked;
    Format.printf "(%d scored elements in %.1f ms)@." (List.length results)
      (elapsed *. 1000.);
    if trace then
      Option.iter
        (fun sp -> Format.printf "@.%s@." (Core.Trace.span_to_string sp))
        (Core.Trace.root tracer)
  in
  let terms_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "t"; "terms" ] ~docv:"TERMS" ~doc:"Comma-separated query terms.")
  in
  let method_arg =
    Arg.(
      value & opt method_conv `Termjoin
      & info [ "m"; "method" ] ~docv:"METHOD"
          ~doc:
            "Access method: termjoin, enhanced, genmeet, comp1, comp2, or \
             auto (cost-based choice from collection statistics).")
  in
  let complex_arg =
    Arg.(
      value & flag
      & info [ "complex" ] ~doc:"Use the complex scoring function (Sec. 6.1).")
  in
  let top_arg =
    Arg.(value & opt int 10 & info [ "k"; "top" ] ~docv:"K" ~doc:"Rows to print.")
  in
  let trace_arg =
    Arg.(
      value & flag
      & info [ "trace" ] ~doc:"Print the access method's span tree.")
  in
  Cmd.v
    (Cmd.info "search" ~doc:"Score elements for query terms")
    Term.(
      const run $ paths_arg $ terms_arg $ method_arg $ complex_arg $ top_arg
      $ trace_arg $ parallel_arg $ skip_bad_arg $ limits_term)

(* ------------------------------------------------------------------ *)
(* phrase *)

let phrase_cmd =
  let run paths phrase use_comp3 trace parallel skip_bad limits =
    let db = load_files ~skip_bad paths in
    let ctx = Access.Ctx.of_db db in
    let phrase = Ir.Phrase.parse phrase in
    let tracer = if trace then Core.Trace.make () else Core.Trace.disabled in
    if use_comp3 && parallel > 1 then
      Format.eprintf "note: comp3 runs sequentially; --parallel ignored@.";
    let started = Unix.gettimeofday () in
    let results =
      or_fault_exit (fun () ->
          if parallel > 1 && not use_comp3 then
            governed_parallel limits (fun shared ->
                Exec.Par.phrase ~trace:tracer ~shared ~parallelism:parallel
                  ctx ~phrase)
          else
            governed limits (fun () ->
                if use_comp3 then
                  Access.Composite.comp3_list ~trace:tracer ctx ~phrase
                else Access.Phrase_finder.to_list ~trace:tracer ctx ~phrase))
    in
    let elapsed = Unix.gettimeofday () -. started in
    List.iter
      (fun (n : Access.Scored_node.t) ->
        let tag =
          Option.value ~default:"?" (Store.Db.tag_of db ~doc:n.doc ~start:n.start)
        in
        Format.printf "%-14s doc=%d start=%d occurrences=%.0f@." tag n.doc
          n.start n.score)
      results;
    Format.printf "(%d elements in %.1f ms)@." (List.length results)
      (elapsed *. 1000.);
    if trace then
      Option.iter
        (fun sp -> Format.printf "@.%s@." (Core.Trace.span_to_string sp))
        (Core.Trace.root tracer)
  in
  let phrase_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "p"; "phrase" ] ~docv:"PHRASE" ~doc:"The phrase to find.")
  in
  let comp3_arg =
    Arg.(
      value & flag
      & info [ "comp3" ] ~doc:"Use the composite baseline instead of PhraseFinder.")
  in
  let trace_arg =
    Arg.(
      value & flag
      & info [ "trace" ] ~doc:"Print the access method's span tree.")
  in
  Cmd.v
    (Cmd.info "phrase" ~doc:"Find a phrase with PhraseFinder")
    Term.(
      const run $ paths_arg $ phrase_arg $ comp3_arg $ trace_arg
      $ parallel_arg $ skip_bad_arg $ limits_term)

(* ------------------------------------------------------------------ *)
(* stats *)

let stats_cmd =
  let run paths top skip_bad =
    let db = load_files ~skip_bad paths in
    Format.printf "%a@." Store.Db.pp_stats (Store.Db.stats db);
    let terms = Ir.Inverted_index.terms_by_freq (Store.Db.index db) in
    Format.printf "@.top %d terms by collection frequency:@." top;
    List.iteri
      (fun i (term, freq) ->
        if i < top then Format.printf "  %-20s %d@." term freq)
      terms
  in
  let top_arg =
    Arg.(value & opt int 20 & info [ "k"; "top" ] ~docv:"K" ~doc:"Terms to print.")
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print database statistics")
    Term.(const run $ paths_arg $ top_arg $ skip_bad_arg)

(* ------------------------------------------------------------------ *)
(* gen *)

let gen_cmd =
  let run articles seed out =
    let cfg = { Workload.Corpus.default with articles; seed } in
    if not (Sys.file_exists out) then Sys.mkdir out 0o755;
    Seq.iter
      (fun (name, root) ->
        let oc = open_out (Filename.concat out name) in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> Xmlkit.Printer.to_channel oc root))
      (Workload.Corpus.generate cfg);
    Format.printf "wrote %d articles to %s/@." articles out
  in
  let articles_arg =
    Arg.(value & opt int 100 & info [ "n"; "articles" ] ~docv:"N" ~doc:"Articles.")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")
  in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"DIR" ~doc:"Output directory.")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic INEX-like corpus")
    Term.(const run $ articles_arg $ seed_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* build *)

let build_cmd =
  let run paths out skip_bad =
    let db = load_files ~skip_bad paths in
    Store.Db.save db out;
    let size = (Unix.stat out).Unix.st_size in
    Format.printf "wrote %s (%d bytes): %a@." out size Store.Db.pp_stats
      (Store.Db.stats db)
  in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output database image (*.tix).")
  in
  Cmd.v
    (Cmd.info "build" ~doc:"Build a persistent database image from XML files")
    Term.(const run $ paths_arg $ out_arg $ skip_bad_arg)

(* ------------------------------------------------------------------ *)
(* compact *)

let compact_cmd =
  let run src dst =
    match Store.Db.open_file src with
    | Error e ->
      Format.eprintf "error: %a@." Store.Db.pp_error e;
      exit 1
    | Ok db ->
      Store.Db.save db dst;
      let size = (Unix.stat dst).Unix.st_size in
      Format.printf "wrote %s (%d bytes, current format): %a@." dst size
        Store.Db.pp_stats (Store.Db.stats db)
  in
  let src_arg =
    Arg.(
      required & pos 0 (some file) None
      & info [] ~docv:"SRC" ~doc:"Existing database image (any readable version).")
  in
  let dst_arg =
    Arg.(
      required & pos 1 (some string) None
      & info [] ~docv:"DST" ~doc:"Output image, written in the current format.")
  in
  Cmd.v
    (Cmd.info "compact"
       ~doc:
         "Rewrite a database image in the current format (the migration path \
          for legacy TIXDB003 images: open transparently upgrades, save \
          writes TIXDB004)")
    Term.(const run $ src_arg $ dst_arg)

(* ------------------------------------------------------------------ *)
(* client *)

let resolve_addr host port =
  match Unix.inet_addr_of_string host with
  | addr -> Unix.ADDR_INET (addr, port)
  | exception Failure _ -> begin
    match Unix.getaddrinfo host (string_of_int port) [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ] with
    | { Unix.ai_addr; _ } :: _ -> ai_addr
    | [] ->
      Format.eprintf "error: cannot resolve host %s@." host;
      exit 1
  end

(* One request, one response line: connect, send, read, close. *)
let round_trip ~host ~port line =
  let addr = resolve_addr host port in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (match Unix.connect sock addr with
  | () -> ()
  | exception Unix.Unix_error (e, _, _) ->
    Format.eprintf "error: cannot connect to %s:%d: %s@." host port
      (Unix.error_message e);
    exit 1);
  let oc = Unix.out_channel_of_descr sock in
  let ic = Unix.in_channel_of_descr sock in
  output_string oc line;
  output_char oc '\n';
  flush oc;
  let resp =
    match input_line ic with
    | line -> line
    | exception End_of_file ->
      Format.eprintf "error: server closed the connection@.";
      exit 1
  in
  (try Unix.close sock with Unix.Unix_error _ -> ());
  resp

let print_response ~pretty resp =
  if not pretty then print_endline resp
  else begin
    match Service.Json.parse resp with
    | Error e ->
      Format.eprintf "error: unparseable response (%s): %s@." e resp;
      exit 1
    | Ok json -> begin
      match Service.Json.(Option.bind (member "ok" json) to_bool_opt) with
      | Some false ->
        let code, message =
          match Service.Json.member "error" json with
          | Some err ->
            ( Option.value ~default:"?"
                Service.Json.(Option.bind (member "code" err) to_string_opt),
              Option.value ~default:""
                Service.Json.(Option.bind (member "message" err) to_string_opt)
            )
          | None -> ("?", resp)
        in
        Format.eprintf "error [%s]: %s@." code message;
        exit 1
      | _ -> begin
        (match Service.Json.(Option.bind (member "results" json) to_list_opt) with
        | Some rows ->
          List.iteri
            (fun i row ->
              let str name =
                Option.value ~default:"?"
                  Service.Json.(Option.bind (member name row) to_string_opt)
              in
              let num name =
                Option.value ~default:0
                  Service.Json.(Option.bind (member name row) to_int_opt)
              in
              let score =
                Option.value ~default:0.
                  Service.Json.(Option.bind (member "score" row) to_float_opt)
              in
              Format.printf "%2d. %-14s doc=%d start=%d score=%.3f@." (i + 1)
                (str "tag") (num "doc") (num "start") score)
            rows
        | None -> ());
        (match Service.Json.(Option.bind (member "trees" json) to_list_opt) with
        | Some trees ->
          List.iter
            (fun t ->
              match Service.Json.to_string_opt t with
              | Some s -> print_string s
              | None -> ())
            trees
        | None -> ());
        match Service.Json.(Option.bind (member "total" json) to_int_opt) with
        | Some total -> Format.printf "(%d results)@." total
        | None -> print_endline resp
      end
    end
  end

let client_cmd =
  let run host port query explain trace parallel search phrase ranked comp3
      method_ complex anchor do_stats do_health do_checkpoint no_wait prepare
      execute raw k pretty limits =
    let some_if cond v = if cond then Some v else None in
    let parallelism = if parallel > 1 then Some parallel else None in
    let requests =
      List.filter_map Fun.id
        [
          Option.map
            (fun q ->
              Service.Protocol.Exec
                { req = Service.Engine.Query { q; mode = `Auto }; k; limits;
                  trace; parallelism; theta = None })
            query;
          Option.map (fun q -> Service.Protocol.Explain { q }) explain;
          Option.map
            (fun terms ->
              let terms =
                String.split_on_char ',' terms |> List.map String.trim
              in
              let method_ =
                match method_ with
                | `Termjoin -> Service.Engine.Termjoin
                | `Enhanced -> Service.Engine.Enhanced
                | `Genmeet -> Service.Engine.Genmeet
                | `Comp1 -> Service.Engine.Comp1
                | `Comp2 -> Service.Engine.Comp2
                | `Auto -> Service.Engine.Auto
              in
              Service.Protocol.Exec
                {
                  req = Service.Engine.Search { terms; method_; complex; anchor };
                  k;
                  limits;
                  trace;
                  parallelism;
                  theta = None;
                })
            search;
          Option.map
            (fun phrase ->
              Service.Protocol.Exec
                { req = Service.Engine.Phrase { phrase; comp3 }; k; limits;
                  trace; parallelism; theta = None })
            phrase;
          Option.map
            (fun terms ->
              let terms =
                String.split_on_char ',' terms |> List.map String.trim
              in
              Service.Protocol.Exec
                { req = Service.Engine.Ranked { terms }; k; limits; trace;
                  parallelism; theta = None })
            ranked;
          Option.map (fun q -> Service.Protocol.Prepare { q }) prepare;
          Option.map
            (fun id ->
              Service.Protocol.Execute { id; k; limits; trace; parallelism })
            execute;
          some_if do_checkpoint
            (Service.Protocol.Checkpoint { wait = not no_wait });
          some_if do_stats Service.Protocol.Stats;
          some_if do_health Service.Protocol.Health;
        ]
    in
    let lines =
      List.map
        (fun r -> Service.Json.to_string (Service.Protocol.request_to_json r))
        requests
      @ Option.to_list raw
    in
    match lines with
    | [] ->
      Format.eprintf
        "error: pick one of --query, --explain, --search, --phrase, \
         --ranked, --prepare, --execute, --checkpoint, --stats, --health or \
         --raw@.";
      exit 2
    | lines ->
      List.iter
        (fun line -> print_response ~pretty (round_trip ~host ~port line))
        lines
  in
  let host_arg =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Server address.")
  in
  let port_arg =
    Arg.(
      value & opt int 7070 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Server port.")
  in
  let query_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "q"; "query" ] ~docv:"QUERY" ~doc:"Extended-XQuery text to run.")
  in
  let explain_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "explain" ] ~docv:"QUERY"
          ~doc:"Ask the server for the compiled plan without executing.")
  in
  let trace_arg =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Request per-operator tracing: the response carries a \
             \"trace\" span tree (bypasses the server's result cache).")
  in
  let search_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "t"; "search" ] ~docv:"TERMS" ~doc:"Comma-separated search terms.")
  in
  let phrase_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "phrase" ] ~docv:"PHRASE" ~doc:"Phrase to find.")
  in
  let ranked_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "ranked" ] ~docv:"TERMS"
          ~doc:"Comma-separated terms for document top-k retrieval.")
  in
  let comp3_arg =
    Arg.(
      value & flag
      & info [ "comp3" ] ~doc:"Phrase via the composite baseline.")
  in
  let method_arg =
    Arg.(
      value & opt method_conv `Termjoin
      & info [ "m"; "method" ] ~docv:"METHOD" ~doc:"Search access method.")
  in
  let complex_arg =
    Arg.(
      value & flag & info [ "complex" ] ~doc:"Complex scoring (Sec. 6.1).")
  in
  let anchor_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "anchor" ] ~docv:"TAG"
          ~doc:
            "Restrict --search scoring to elements inside (or being) an \
             element with this tag.")
  in
  let stats_arg =
    Arg.(value & flag & info [ "stats" ] ~doc:"Fetch server statistics.")
  in
  let health_arg =
    Arg.(value & flag & info [ "health" ] ~doc:"Health check.")
  in
  let checkpoint_arg =
    Arg.(
      value & flag
      & info [ "checkpoint" ]
          ~doc:
            "Ask the server to merge its delta into a fresh immutable image \
             and reset the WAL (requires tixd --wal-dir).")
  in
  let no_wait_arg =
    Arg.(
      value & flag
      & info [ "no-wait" ]
          ~doc:
            "With --checkpoint: request a background checkpoint and return \
             immediately instead of waiting for the merged image.")
  in
  let prepare_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "prepare" ] ~docv:"QUERY"
          ~doc:"Register a prepared statement; prints its id.")
  in
  let execute_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "execute" ] ~docv:"ID" ~doc:"Run a prepared statement.")
  in
  let raw_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "raw" ] ~docv:"JSON" ~doc:"Send one raw protocol line as-is.")
  in
  let k_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "k"; "top" ] ~docv:"K" ~doc:"Result rows to keep.")
  in
  let pretty_arg =
    Arg.(
      value & flag
      & info [ "pretty" ]
          ~doc:"Render rows as a table instead of raw JSON.")
  in
  Cmd.v
    (Cmd.info "client" ~doc:"Talk to a running tixd server")
    Term.(
      const run $ host_arg $ port_arg $ query_arg $ explain_arg $ trace_arg
      $ parallel_arg $ search_arg $ phrase_arg $ ranked_arg $ comp3_arg
      $ method_arg $ complex_arg $ anchor_arg $ stats_arg $ health_arg
      $ checkpoint_arg $ no_wait_arg $ prepare_arg $ execute_arg $ raw_arg
      $ k_arg $ pretty_arg $ limits_term)

(* ------------------------------------------------------------------ *)
(* ingest / rm: live updates against a running tixd --wal-dir server *)

let server_host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Server address.")

let server_port_arg =
  Arg.(
    value & opt int 7070 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Server port.")

let read_document path =
  if path = "-" then In_channel.input_all stdin
  else begin
    let ic =
      match open_in_bin path with
      | ic -> ic
      | exception Sys_error msg ->
        Format.eprintf "error: %s@." msg;
        exit 1
    in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> In_channel.input_all ic)
  end

let send_request ~host ~port req =
  let line = Service.Json.to_string (Service.Protocol.request_to_json req) in
  (* pretty-mode response handling: exits 1 on {"ok":false,...} *)
  print_response ~pretty:true (round_trip ~host ~port line)

let ingest_cmd =
  let run host port update name paths =
    (match name, paths with
    | Some _, _ :: _ :: _ ->
      Format.eprintf "error: --name needs exactly one FILE@.";
      exit 2
    | _ -> ());
    List.iter
      (fun path ->
        let xml = read_document path in
        let doc_name =
          match name with
          | Some n -> n
          | None ->
            if path = "-" then begin
              Format.eprintf "error: reading stdin requires --name@.";
              exit 2
            end
            else Filename.basename path
        in
        send_request ~host ~port
          (if update then Service.Protocol.UpdateDoc { name = doc_name; xml }
           else Service.Protocol.Insert { name = doc_name; xml }))
      paths
  in
  let update_arg =
    Arg.(
      value & flag
      & info [ "update" ]
          ~doc:"Replace an existing document instead of inserting a new one.")
  in
  let name_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "name" ] ~docv:"NAME"
          ~doc:
            "Document name to ingest under (default: the file's basename; \
             required when FILE is $(b,-), i.e. stdin).")
  in
  let files_arg =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:"XML documents to send; $(b,-) reads one document from stdin.")
  in
  Cmd.v
    (Cmd.info "ingest"
       ~doc:
         "Insert (or with --update, replace) XML documents in a running \
          updatable tixd; each acknowledged document is WAL-durable")
    Term.(
      const run $ server_host_arg $ server_port_arg $ update_arg $ name_arg
      $ files_arg)

let rm_cmd =
  let run host port names =
    List.iter
      (fun name ->
        send_request ~host ~port (Service.Protocol.Remove { name }))
      names
  in
  let names_arg =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"NAME" ~doc:"Document names to delete.")
  in
  Cmd.v
    (Cmd.info "rm"
       ~doc:"Delete documents by name from a running updatable tixd")
    Term.(const run $ server_host_arg $ server_port_arg $ names_arg)

(* ------------------------------------------------------------------ *)
(* demo *)

let demo_cmd =
  let run () =
    let db = Store.Db.of_documents Workload.Paper_db.documents in
    let evaluator = Query.Eval.create db in
    let q =
      {|
      for $a in document("articles.xml")//article/descendant-or-self::*
      score $a using ScoreFoo($a, {"search engine"},
                              {"internet", "information retrieval"})
      pick $a using PickFoo()
      return <result><score>{$a/@score}</score>{$a}</result>
      sortby(score)
      threshold $a/@score > 0 stop after 5
      |}
    in
    match Query.Eval.run_string evaluator q with
    | Ok results ->
      List.iter
        (fun r -> print_string (Xmlkit.Printer.to_string ~indent:2 r))
        results
    | Error msg ->
      Format.eprintf "error: %s@." msg;
      exit 1
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Run the paper's Query 1 on the Figure 1 database")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* shard *)

let shard_cmd =
  let run paths skip_bad shards out host port_base replicas =
    if shards < 1 then begin
      Format.eprintf "error: --shards must be at least 1@.";
      exit 1
    end;
    if replicas < 1 then begin
      Format.eprintf "error: --replicas must be at least 1@.";
      exit 1
    end;
    let db = load_files ~skip_bad paths in
    let docs = Store.Catalog.document_count (Store.Db.catalog db) in
    if docs = 0 then begin
      Format.eprintf "error: corpus has no documents@.";
      exit 1
    end;
    if not (Sys.file_exists out) then Unix.mkdir out 0o755;
    (* each range becomes its own dense image: compact with every
       document outside [lo,hi) tombstoned renumbers the range from
       0, which is exactly the local id space the coordinator undoes
       with [lo + local] *)
    let shard_specs =
      List.mapi
        (fun i (lo, hi) ->
          let tombstones = Array.init docs (fun d -> d < lo || d >= hi) in
          let shard_db = Store.Db.compact ~base:db ~delta:None ~tombstones in
          let image = Printf.sprintf "shard-%d.tix" i in
          Store.Db.save shard_db (Filename.concat out image);
          let eps =
            List.init replicas (fun r ->
                {
                  Dist.Shard_map.host;
                  port = port_base + (i * replicas) + r;
                })
          in
          Format.printf "shard %d: docs [%d,%d) -> %s (%s)@." i lo hi image
            (String.concat ", "
               (List.map Dist.Shard_map.endpoint_to_string eps));
          { Dist.Shard_map.lo; hi; image; replicas = eps })
        (Dist.Shard_map.ranges ~docs ~shards)
    in
    match Dist.Shard_map.make shard_specs with
    | Error msg ->
      Format.eprintf "error: %s@." msg;
      exit 1
    | Ok map ->
      let manifest = Filename.concat out "manifest.json" in
      Dist.Shard_map.save map manifest;
      Format.printf
        "wrote %s: %d shard(s) x %d replica(s) over %d document(s)@." manifest
        (Dist.Shard_map.shard_count map)
        replicas docs
  in
  let shards_arg =
    Arg.(
      value & opt int 2
      & info [ "shards" ] ~docv:"N"
          ~doc:"Number of document-range shards to extract.")
  in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"DIR"
          ~doc:
            "Output directory for the shard images and manifest.json \
             (created if missing).")
  in
  let host_arg =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR"
          ~doc:"Host written into every manifest endpoint.")
  in
  let port_base_arg =
    Arg.(
      value & opt int 7100
      & info [ "port-base" ] ~docv:"PORT"
          ~doc:
            "First endpoint port; shard i replica r is assigned \
             PORT + i*replicas + r.")
  in
  let replicas_arg =
    Arg.(
      value & opt int 1
      & info [ "replicas" ] ~docv:"N"
          ~doc:
            "Replica endpoints per shard (all serving the same image; the \
             coordinator fails over between them).")
  in
  Cmd.v
    (Cmd.info "shard"
       ~doc:
         "Split a corpus into document-range shard images plus a JSON \
          manifest for the tixq coordinator")
    Term.(
      const run $ paths_arg $ skip_bad_arg $ shards_arg $ out_arg $ host_arg
      $ port_base_arg $ replicas_arg)

let () =
  let info =
    Cmd.info "tixdb" ~version:"1.0.0"
      ~doc:"Querying structured text in an XML database (TIX)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            query_cmd; search_cmd; phrase_cmd; stats_cmd; gen_cmd; build_cmd;
            compact_cmd; shard_cmd; client_cmd; ingest_cmd; rm_cmd; demo_cmd;
          ]))
