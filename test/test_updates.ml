(* Live-update tests: the WAL (framing, recovery, torn writes, fsync
   failures, corruption sweep), the delta segment, the live store's
   crash matrix, checkpointing, and the service-layer update path.

   The central properties:
   - an acknowledged mutation is durable: it survives kill -9 and is
     replayed on reopen;
   - a crash at ANY byte of a WAL append leaves the store equal to
     the pre-op state (frame torn) or the post-op state (frame
     complete) — never anything in between;
   - queries over base ∪ delta − tombstones return byte-identical
     rows to a from-scratch rebuild of the same logical corpus, for
     every query family, sequential and parallel;
   - checkpointing folds the delta into a fresh immutable image that
     again equals the rebuild. *)

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Fixtures *)

let base_docs =
  [
    ( "d0.xml",
      "<article><title>search engine</title><sec><p>internet search \
       retrieval</p><p>index engine</p></sec></article>" );
    ( "d1.xml",
      "<article><title>information retrieval</title><sec><p>search the \
       internet</p></sec></article>" );
    ( "d2.xml",
      "<article><sec><p>search engine internet</p><p>retrieval search \
       engine</p></sec></article>" );
    ( "d3.xml",
      "<article><title>databases</title><sec><p>xml query \
       processing</p></sec></article>" );
  ]

let doc_a =
  "<article><title>search</title><sec><p>search engine \
   retrieval</p></sec></article>"

let doc_b =
  "<article><sec><p>internet engine</p><p>search search \
   retrieval</p></sec></article>"

let doc_c = "<article><sec><p>ranking search internet</p></sec></article>"

let parse_docs docs =
  List.map (fun (n, x) -> (n, Xmlkit.Parser.parse_string_exn x)) docs

let mk_base () = Store.Db.of_documents (parse_docs base_docs)

(* the mutation script exercised by the crash sweep: insert, update of
   a base doc, delete of a base doc, second insert, delete of a delta
   doc *)
let script =
  [
    Store.Wal.Insert { name = "new1.xml"; xml = doc_a };
    Store.Wal.Update { name = "d0.xml"; xml = doc_b };
    Store.Wal.Delete { name = "d1.xml" };
    Store.Wal.Insert { name = "new2.xml"; xml = doc_c };
    Store.Wal.Delete { name = "new1.xml" };
  ]

let apply_live live (r : Store.Wal.record) =
  match r with
  | Store.Wal.Insert { name; xml } -> Store.Live.insert live ~name ~xml
  | Store.Wal.Delete { name } -> Store.Live.delete live ~name
  | Store.Wal.Update { name; xml } -> Store.Live.update live ~name ~xml

let apply_live_exn live r =
  match apply_live live r with
  | Ok () -> ()
  | Error e -> Alcotest.failf "mutation: %s" (Store.Live.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Reference model: the logical corpus after a prefix of the script,
   maintained with the delta's own ordering rules so a from-scratch
   rebuild reproduces the merged dense id space. *)

type sim = {
  mutable s_base : (string * string) list;  (** live base docs, base order *)
  mutable s_delta : (string * string) list;  (** delta docs, arrival order *)
}

let sim_create () = { s_base = base_docs; s_delta = [] }

let sim_apply s (r : Store.Wal.record) =
  match r with
  | Store.Wal.Insert { name; xml } -> s.s_delta <- s.s_delta @ [ (name, xml) ]
  | Store.Wal.Delete { name } ->
    if List.mem_assoc name s.s_delta then
      s.s_delta <- List.filter (fun (n, _) -> n <> name) s.s_delta
    else s.s_base <- List.filter (fun (n, _) -> n <> name) s.s_base
  | Store.Wal.Update { name; xml } ->
    if List.mem_assoc name s.s_delta then
      s.s_delta <-
        List.map (fun (n, x) -> if n = name then (n, xml) else (n, x)) s.s_delta
    else begin
      s.s_base <- List.filter (fun (n, _) -> n <> name) s.s_base;
      s.s_delta <- s.s_delta @ [ (name, xml) ]
    end

let sim_after prefix =
  let s = sim_create () in
  List.iter (sim_apply s) prefix;
  s

let sim_rebuild s = Store.Db.of_documents (parse_docs (s.s_base @ s.s_delta))

(* ------------------------------------------------------------------ *)
(* Query-equality harness: every family, sequential and parallel. *)

let compilable =
  {|
  for $a in document("*")//article/descendant-or-self::*
  score $a using ScoreFoo($a, {"search"}, {"retrieval"})
  return <r>{$a}</r>
  sortby(score)
  threshold $a/@score > 0 stop after 10
  |}

let families =
  [
    ("query", Service.Engine.Query { q = compilable; mode = `Engine });
    ( "search",
      Service.Engine.Search
        {
          terms = [ "search"; "retrieval" ];
          method_ = Service.Engine.Termjoin;
          complex = false;
          anchor = None;
        } );
    ("phrase", Service.Engine.Phrase { phrase = "search engine"; comp3 = false });
    ("ranked", Service.Engine.Ranked { terms = [ "search"; "internet" ] });
  ]

let snapshot_exn db =
  match Service.Engine.of_db db with
  | Ok s -> s
  | Error msg -> Alcotest.failf "of_db: %s" msg

let row_keys (r : Service.Engine.result) =
  List.map
    (fun (row : Service.Engine.row) -> (row.tag, row.doc, row.start, row.score))
    r.Service.Engine.rows

(* Execute every family against [snap] (base + delta view) and
   against a from-scratch rebuild of [sim]; rows must be identical at
   parallelism 1 and 2. *)
let assert_equals_rebuild ~what snap sim =
  let rebuilt = snapshot_exn (sim_rebuild sim) in
  List.iter
    (fun (family, request) ->
      List.iter
        (fun parallelism ->
          let run s =
            match
              Service.Engine.exec ~parallelism ~k:10 s request
            with
            | Ok r -> r
            | Error e ->
              Alcotest.failf "%s: %s (par %d): %s" what family parallelism
                (Service.Engine.error_message e)
          in
          let live_run = run snap in
          let rebuild_run = run rebuilt in
          check bool_
            (Printf.sprintf "%s: %s rows = rebuild (par %d)" what family
               parallelism)
            true
            (row_keys live_run = row_keys rebuild_run);
          check bool_
            (Printf.sprintf "%s: %s trees = rebuild (par %d)" what family
               parallelism)
            true
            (live_run.Service.Engine.trees = rebuild_run.Service.Engine.trees))
        [ 1; 2 ])
    families

let live_snapshot live =
  let base, delta = Store.Live.view live in
  Service.Engine.with_delta (snapshot_exn base) delta

(* ------------------------------------------------------------------ *)
(* Temp dirs *)

let temp_dir () =
  let path = Filename.temp_file "tix_updates" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> try rm_rf dir with Sys_error _ -> ()) (fun () -> f dir)

let open_live ?fault ?(base = true) ?wal_batch ?wal_linger dir =
  let base = if base then Some (mk_base ()) else None in
  match Store.Live.open_dir ?fault ?base ?wal_batch ?wal_linger ~dir () with
  | Ok opened -> opened
  | Error e -> Alcotest.failf "open_dir: %s" (Store.Live.error_to_string e)

(* ------------------------------------------------------------------ *)
(* WAL basics *)

let wal_open_exn ?fault path =
  match Store.Wal.open_ ?fault path with
  | Ok (wal, recovery) -> (wal, recovery)
  | Error e -> Alcotest.failf "wal open: %s" (Store.Wal.error_to_string e)

let wal_append_exn wal r =
  match Store.Wal.append wal r with
  | Ok () -> ()
  | Error e -> Alcotest.failf "wal append: %s" (Store.Wal.error_to_string e)

let test_wal_roundtrip () =
  with_dir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let wal, recovery = wal_open_exn path in
      check int_ "fresh log is empty" 0 (List.length recovery.Store.Wal.records);
      List.iter (wal_append_exn wal) script;
      check int_ "records counted" (List.length script)
        (Store.Wal.record_count wal);
      Store.Wal.close wal;
      let wal, recovery = wal_open_exn path in
      check bool_ "reopen replays the exact records" true
        (recovery.Store.Wal.records = script);
      check int_ "clean log truncates nothing" 0
        recovery.Store.Wal.truncated_bytes;
      (* reset = the post-checkpoint state *)
      (match Store.Wal.reset wal with
      | Ok () -> ()
      | Error e -> Alcotest.failf "reset: %s" (Store.Wal.error_to_string e));
      check int_ "reset empties" 0 (Store.Wal.record_count wal);
      Store.Wal.close wal;
      let wal, recovery = wal_open_exn path in
      check int_ "reset is durable" 0 (List.length recovery.Store.Wal.records);
      Store.Wal.close wal)

(* frame length (header+payload+commit) of each script record,
   measured on a clean log *)
let frame_lengths () =
  with_dir (fun dir ->
      let wal, _ = wal_open_exn (Filename.concat dir "wal.log") in
      let sizes =
        List.map
          (fun r ->
            let before = Store.Wal.byte_size wal in
            wal_append_exn wal r;
            Store.Wal.byte_size wal - before)
          script
      in
      Store.Wal.close wal;
      sizes)

let test_wal_torn_write_every_byte () =
  (* sweep a torn write through EVERY byte of one frame: recovery
     must yield the empty log below the frame length and the full
     record at (or past) it *)
  let record = Store.Wal.Insert { name = "t.xml"; xml = "<a>x y</a>" } in
  let flen =
    with_dir (fun dir ->
        let wal, _ = wal_open_exn (Filename.concat dir "wal.log") in
        wal_append_exn wal record;
        let n = Store.Wal.byte_size wal - 8 in
        Store.Wal.close wal;
        n)
  in
  check bool_ "frame is non-trivial" true (flen > 12);
  with_dir (fun dir ->
      for at_byte = 0 to flen + 3 do
        let path = Filename.concat dir (Printf.sprintf "w%d.log" at_byte) in
        let fault = Store.Fault.create () in
        Store.Fault.arm_write_fault fault ~op:0
          (Store.Fault.Torn_write { at_byte });
        let wal, _ = wal_open_exn ~fault path in
        (match Store.Wal.append wal record with
        | Ok () | Error _ -> Alcotest.fail "armed torn write did not crash"
        | exception Store.Fault.Write_crash { wrote; _ } ->
          check int_
            (Printf.sprintf "bytes on disk at crash point %d" at_byte)
            (min at_byte flen) wrote);
        Store.Wal.close wal;
        let wal, recovery = wal_open_exn path in
        let expected = if at_byte >= flen then [ record ] else [] in
        check bool_
          (Printf.sprintf "crash at byte %d recovers pre- or post-op" at_byte)
          true
          (recovery.Store.Wal.records = expected);
        check int_
          (Printf.sprintf "torn tail truncated at byte %d" at_byte)
          (if at_byte >= flen then 0 else at_byte)
          recovery.Store.Wal.truncated_bytes;
        (* recovery is idempotent *)
        Store.Wal.close wal;
        let wal, again = wal_open_exn path in
        check bool_ "second recovery identical" true
          (again.Store.Wal.records = expected
          && again.Store.Wal.truncated_bytes = 0);
        Store.Wal.close wal
      done)

let test_wal_fsync_failure_rolls_back () =
  with_dir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let fault = Store.Fault.create () in
      let wal, _ = wal_open_exn ~fault path in
      wal_append_exn wal (List.nth script 0);
      let size = Store.Wal.byte_size wal in
      Store.Fault.arm_write_fault fault ~op:1 Store.Fault.Fail_fsync;
      (match Store.Wal.append wal (List.nth script 1) with
      | Ok () -> Alcotest.fail "injected fsync failure was swallowed"
      | Error (Store.Wal.Sync_failed _) -> ()
      | Error e ->
        Alcotest.failf "wanted Sync_failed, got %s"
          (Store.Wal.error_to_string e));
      check int_ "log rolled back to pre-append length" size
        (Store.Wal.byte_size wal);
      check int_ "record not counted" 1 (Store.Wal.record_count wal);
      (* the handle stays usable; the next append commits *)
      wal_append_exn wal (List.nth script 1);
      Store.Wal.close wal;
      let wal, recovery = wal_open_exn path in
      check bool_ "survivors are exactly the committed records" true
        (recovery.Store.Wal.records
        = [ List.nth script 0; List.nth script 1 ]);
      check int_ "one fsync failure injected" 1
        (Store.Fault.stats fault).Store.Fault.failed_fsyncs;
      Store.Wal.close wal)

let test_wal_corruption_sweep_byte_flips () =
  (* single-byte corruption sweep, mirroring the .tix image sweep:
     every flip inside the magic is a typed open error; every flip
     inside a frame truncates recovery to the preceding frames —
     never an exception, never a wrong record *)
  with_dir (fun dir ->
      let path = Filename.concat dir "wal.log" in
      let wal, _ = wal_open_exn path in
      (* frame boundary offsets: frame i spans [starts.(i), starts.(i+1)) *)
      let frame_starts =
        List.map
          (fun r ->
            let s = Store.Wal.byte_size wal in
            wal_append_exn wal r;
            s)
          script
      in
      let starts = Array.of_list (frame_starts @ [ Store.Wal.byte_size wal ]) in
      Store.Wal.close wal;
      let read_file p =
        let ic = open_in_bin p in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let write_file p s =
        let oc = open_out_bin p in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc s)
      in
      let image = read_file path in
      let n = String.length image in
      check int_ "image spans the frames" n starts.(Array.length starts - 1);
      let frame_of off =
        (* index of the frame containing byte [off] *)
        let rec go i = if off < starts.(i + 1) then i else go (i + 1) in
        go 0
      in
      for off = 0 to n - 1 do
        let damaged = Bytes.of_string image in
        Bytes.set damaged off (Char.chr (Char.code image.[off] lxor 0x01));
        write_file path (Bytes.to_string damaged);
        if off < 8 then begin
          (* magic header: typed error, version flips report the
             version variant *)
          match Store.Wal.open_ path with
          | Ok _ -> Alcotest.failf "header flip at %d went undetected" off
          | Error (Store.Wal.Not_a_wal _ | Store.Wal.Unsupported_version _) ->
            ()
          | Error e ->
            Alcotest.failf "header flip at %d: unexpected %s" off
              (Store.Wal.error_to_string e)
        end
        else begin
          let wal, recovery = wal_open_exn path in
          let expected_frames = frame_of off in
          check bool_
            (Printf.sprintf "flip at %d truncates to the preceding frames" off)
            true
            (recovery.Store.Wal.records
            = List.filteri (fun i _ -> i < expected_frames) script);
          check bool_
            (Printf.sprintf "flip at %d discards the damaged tail" off)
            true
            (recovery.Store.Wal.truncated_bytes > 0);
          Store.Wal.close wal
        end
      done)

(* ------------------------------------------------------------------ *)
(* Group commit: batched appends share one write + fsync but keep the
   per-frame durability semantics byte for byte. *)

let test_wal_append_many_roundtrip () =
  with_dir (fun dir ->
      let batched = Filename.concat dir "batched.log" in
      let serial = Filename.concat dir "serial.log" in
      let wal, _ = wal_open_exn batched in
      (match Store.Wal.append_many wal script with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "append_many: %s" (Store.Wal.error_to_string e));
      check int_ "records counted" (List.length script)
        (Store.Wal.record_count wal);
      (match Store.Wal.append_many wal [] with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "empty batch: %s" (Store.Wal.error_to_string e));
      Store.Wal.close wal;
      let wal, _ = wal_open_exn serial in
      List.iter (wal_append_exn wal) script;
      Store.Wal.close wal;
      let read_file p =
        let ic = open_in_bin p in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      check bool_ "batched log is byte-identical to serial appends" true
        (read_file batched = read_file serial);
      let wal, recovery = wal_open_exn batched in
      check bool_ "reopen replays the batch" true
        (recovery.Store.Wal.records = script);
      Store.Wal.close wal)

let test_wal_batched_crash_sweep () =
  (* sweep a torn write through every op of one batch: earlier frames
     are durable, the torn frame truncates, later frames were never
     written — exactly a crash between two per-op commits *)
  let flens = Array.of_list (frame_lengths ()) in
  List.iteri
    (fun j _ ->
      let flen = flens.(j) in
      List.iter
        (fun at_byte ->
          with_dir (fun dir ->
              let path = Filename.concat dir "wal.log" in
              let fault = Store.Fault.create () in
              Store.Fault.arm_write_fault fault ~op:j
                (Store.Fault.Torn_write { at_byte });
              let wal, _ = wal_open_exn ~fault path in
              (match Store.Wal.append_many wal script with
              | Ok () | Error _ ->
                Alcotest.fail "armed torn write did not crash"
              | exception Store.Fault.Write_crash { op; wrote } ->
                check int_ "crash names the torn op" j op;
                check int_
                  (Printf.sprintf "op %d crash at %d: bytes of the torn frame"
                     j at_byte)
                  (min at_byte flen) wrote);
              Store.Wal.close wal;
              let wal, recovery = wal_open_exn path in
              let committed = at_byte >= flen in
              check bool_
                (Printf.sprintf
                   "op %d crash at %d: preceding frames durable, later \
                    frames absent"
                   j at_byte)
                true
                (recovery.Store.Wal.records
                = List.filteri
                    (fun i _ -> i < j || (i = j && committed))
                    script);
              check int_
                (Printf.sprintf "op %d crash at %d: torn tail truncated" j
                   at_byte)
                (if committed then 0 else at_byte)
                recovery.Store.Wal.truncated_bytes;
              Store.Wal.close wal))
        [ 0; 1; flen / 2; flen - 1; flen; flen + 9 ])
    script

let test_wal_append_many_fsync_failure_rolls_back_whole_batch () =
  (* one fsync covers the whole batch, so its failure fails — and
     rolls back — every record in it *)
  List.iter
    (fun j ->
      with_dir (fun dir ->
          let path = Filename.concat dir "wal.log" in
          let fault = Store.Fault.create () in
          Store.Fault.arm_write_fault fault ~op:j Store.Fault.Fail_fsync;
          let wal, _ = wal_open_exn ~fault path in
          (match Store.Wal.append_many wal script with
          | Ok () -> Alcotest.fail "injected fsync failure was swallowed"
          | Error (Store.Wal.Sync_failed _) -> ()
          | Error e ->
            Alcotest.failf "wanted Sync_failed, got %s"
              (Store.Wal.error_to_string e));
          check int_ "no record of the batch survives in memory" 0
            (Store.Wal.record_count wal);
          (* the handle stays usable; the retried batch commits *)
          (match Store.Wal.append_many wal script with
          | Ok () -> ()
          | Error e ->
            Alcotest.failf "retry: %s" (Store.Wal.error_to_string e));
          Store.Wal.close wal;
          let wal, recovery = wal_open_exn path in
          check bool_ "retried batch is the only durable state" true
            (recovery.Store.Wal.records = script);
          Store.Wal.close wal))
    [ 0; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Delta semantics *)

let test_delta_strict_errors () =
  let d = Store.Delta.create ~base:(mk_base ()) in
  (match Store.Delta.insert d ~name:"d0.xml" ~xml:doc_a with
  | Error (Store.Delta.Duplicate_document { name }) ->
    check string_ "duplicate names the doc" "d0.xml" name
  | _ -> Alcotest.fail "duplicate insert accepted");
  (match Store.Delta.delete d ~name:"nope.xml" with
  | Error (Store.Delta.Unknown_document _) -> ()
  | _ -> Alcotest.fail "unknown delete accepted");
  (match Store.Delta.update d ~name:"nope.xml" ~xml:doc_a with
  | Error (Store.Delta.Unknown_document _) -> ()
  | _ -> Alcotest.fail "unknown update accepted");
  (match Store.Delta.insert d ~name:"bad.xml" ~xml:"<open>" with
  | Error (Store.Delta.Parse_failed { name; reason }) ->
    check string_ "parse failure names the doc" "bad.xml" name;
    check bool_ "reason is non-empty" true (String.length reason > 0)
  | _ -> Alcotest.fail "unparseable insert accepted");
  check bool_ "rejections leave the delta empty" true (Store.Delta.is_empty d)

let test_delta_update_in_place () =
  let d = Store.Delta.create ~base:(mk_base ()) in
  let ok = function
    | Ok () -> ()
    | Error e ->
      Alcotest.failf "delta: %s" (Store.Delta.mutation_error_to_string e)
  in
  ok (Store.Delta.insert d ~name:"x.xml" ~xml:doc_a);
  ok (Store.Delta.insert d ~name:"y.xml" ~xml:doc_b);
  (* update of a delta doc replaces in place — arrival order keeps *)
  ok (Store.Delta.update d ~name:"x.xml" ~xml:doc_c);
  check bool_ "order preserved, content replaced" true
    (Store.Delta.documents d = [ ("x.xml", doc_c); ("y.xml", doc_b) ]);
  check int_ "no tombstones for delta-only churn" 0
    (Store.Delta.tombstone_count d);
  (* update of a base doc tombstones it and appends *)
  ok (Store.Delta.update d ~name:"d2.xml" ~xml:doc_a);
  check int_ "base update tombstones" 1 (Store.Delta.tombstone_count d);
  check bool_ "base update appends" true
    (List.map fst (Store.Delta.documents d) = [ "x.xml"; "y.xml"; "d2.xml" ]);
  check bool_ "name still live" true (Store.Delta.mem d "d2.xml");
  (* delete of a delta doc removes it entirely *)
  ok (Store.Delta.delete d ~name:"y.xml");
  check bool_ "deleted delta doc is gone" false (Store.Delta.mem d "y.xml")

let test_delta_lenient_replay () =
  let d = Store.Delta.create ~base:(mk_base ()) in
  let report =
    Store.Delta.replay d
      [
        (* insert of a live (base) name degrades to update *)
        Store.Wal.Insert { name = "d0.xml"; xml = doc_a };
        (* update of a dead name degrades to insert *)
        Store.Wal.Update { name = "fresh.xml"; xml = doc_b };
        (* delete of a dead name is a no-op *)
        Store.Wal.Delete { name = "never.xml" };
        (* unparseable XML is skipped, not fatal *)
        Store.Wal.Insert { name = "junk.xml"; xml = "<broken" };
      ]
  in
  check int_ "two records took effect" 2 report.Store.Delta.applied;
  check int_ "two were skipped/degraded" 2 report.Store.Delta.skipped;
  check bool_ "insert-of-live became update" true
    (Store.Delta.mem d "d0.xml" && Store.Delta.tombstone_count d = 1);
  check bool_ "update-of-dead became insert" true (Store.Delta.mem d "fresh.xml");
  check bool_ "junk stayed out" false (Store.Delta.mem d "junk.xml")

(* ------------------------------------------------------------------ *)
(* Query equality: base ∪ delta − tombstones = from-scratch rebuild *)

let test_delta_queries_equal_rebuild () =
  with_dir (fun dir ->
      let opened = open_live dir in
      let live = opened.Store.Live.live in
      List.iteri
        (fun i op ->
          apply_live_exn live op;
          assert_equals_rebuild
            ~what:(Printf.sprintf "after op %d" i)
            (live_snapshot live)
            (sim_after (List.filteri (fun j _ -> j <= i) script)))
        script;
      Store.Live.close live)

let test_pick_query_over_delta () =
  (* pick plans execute over a live snapshot with pending documents:
     the picked-ancestor projection runs on the merged view and
     agrees with a from-scratch rebuild (this used to be a typed
     Unsupported) *)
  let q =
    {|
    for $a in document("*")//article/descendant-or-self::*
    score $a using ScoreFoo($a, {"search"}, {"retrieval"})
    pick $a using PickFoo()
    return <r>{$a}</r>
    sortby(score)
    threshold $a/@score > 0 stop after 10
    |}
  in
  with_dir (fun dir ->
      let opened = open_live dir in
      let live = opened.Store.Live.live in
      List.iter (apply_live_exn live) script;
      let snap = live_snapshot live in
      check bool_ "delta is non-empty" true
        (not (Store.Delta.is_empty (Store.Live.delta live)));
      let rebuilt = snapshot_exn (sim_rebuild (sim_after script)) in
      List.iter
        (fun parallelism ->
          let run s =
            match
              Service.Engine.exec ~parallelism ~k:10 s
                (Service.Engine.Query { q; mode = `Engine })
            with
            | Ok r -> r
            | Error e ->
              Alcotest.failf "pick over delta (par %d): %s" parallelism
                (Service.Engine.error_message e)
          in
          check bool_
            (Printf.sprintf "pick rows = rebuild (par %d)" parallelism)
            true
            (row_keys (run snap) = row_keys (run rebuilt)))
        [ 1; 2 ];
      Store.Live.close live)

let test_interp_over_delta () =
  (* the interpreter fallback stays available over a pending delta:
     deletions mask tombstoned documents from the base evaluator, and
     pending documents are evaluated by a second (delta) evaluator
     whose raw results merge with the base half before the
     order-sensitive tail runs (this used to be a typed
     Unsupported) *)
  with_dir (fun dir ->
      let base =
        Store.Db.of_documents
          ~options:{ Store.Db.default_options with keep_trees = true }
          (parse_docs base_docs)
      in
      let opened =
        match Store.Live.open_dir ~base ~dir () with
        | Ok o -> o
        | Error e -> Alcotest.failf "open: %s" (Store.Live.error_to_string e)
      in
      let live = opened.Store.Live.live in
      apply_live_exn live (Store.Wal.Delete { name = "d1.xml" });
      let snap = live_snapshot live in
      (* a non-compilable query shape (phrase of two words in the
         score clause) runs on the interpreter *)
      let q =
        {|
        for $a in document("*")//article/descendant-or-self::*
        score $a using ScoreFoo($a, {"search engine"}, {"retrieval"})
        return <r>{$a}</r>
        sortby(score)
        threshold $a/@score > 0 stop after 10
        |}
      in
      let rebuilt =
        snapshot_exn
          (Store.Db.of_documents
             ~options:{ Store.Db.default_options with keep_trees = true }
             (parse_docs (List.filter (fun (n, _) -> n <> "d1.xml") base_docs)))
      in
      let run s =
        match
          Service.Engine.exec s (Service.Engine.Query { q; mode = `Interp })
        with
        | Ok r -> r
        | Error e ->
          Alcotest.failf "interp: %s" (Service.Engine.error_message e)
      in
      check bool_ "interp over tombstones = rebuild" true
        ((run snap).Service.Engine.trees = (run rebuilt).Service.Engine.trees);
      (* with a pending document the interpreter evaluates the merged
         base ∪ delta view and must equal a from-scratch rebuild *)
      apply_live_exn live (Store.Wal.Insert { name = "new.xml"; xml = doc_a });
      let snap2 = live_snapshot live in
      let rebuilt2 =
        snapshot_exn
          (Store.Db.of_documents
             ~options:{ Store.Db.default_options with keep_trees = true }
             (parse_docs
                (List.filter (fun (n, _) -> n <> "d1.xml") base_docs
                @ [ ("new.xml", doc_a) ])))
      in
      List.iter
        (fun parallelism ->
          let run s =
            match
              Service.Engine.exec ~parallelism s
                (Service.Engine.Query { q; mode = `Interp })
            with
            | Ok r -> r
            | Error e ->
              Alcotest.failf "merged interp (par %d): %s" parallelism
                (Service.Engine.error_message e)
          in
          check bool_
            (Printf.sprintf "interp over pending delta = rebuild (par %d)"
               parallelism)
            true
            ((run snap2).Service.Engine.trees
            = (run rebuilt2).Service.Engine.trees))
        [ 1; 2 ];
      (* a query reading document(...) twice could pair base and delta
         documents neither half sees: still a typed Unsupported *)
      let q2 =
        {|
        for $a in document("*")//article
        for $b in document("*")//article
        score $a using ScoreFoo($a, {"search engine"}, {"retrieval"})
        return <r>{$a}</r>
        |}
      in
      (match
         Service.Engine.exec snap2 (Service.Engine.Query { q = q2; mode = `Interp })
       with
      | Error (Service.Engine.Unsupported _) -> ()
      | Ok _ -> Alcotest.fail "interp merged a two-document() query"
      | Error e ->
        Alcotest.failf "wanted Unsupported, got %s"
          (Service.Engine.error_message e));
      Store.Live.close live)

(* ------------------------------------------------------------------ *)
(* Crash-point sweep: kill the process at every frame boundary of
   every scripted mutation; the reopened store must equal the pre-op
   or post-op state — verified by full query equality. *)

let test_crash_point_sweep () =
  let flens = frame_lengths () in
  List.iteri
    (fun i op ->
      let flen = List.nth flens i in
      (* crash points: start, inside the header, inside the payload,
         one byte short of commit, exactly complete, past the end
         (complete write, crash before returning) *)
      let points =
        [ 0; 1; 4; 8; flen / 2; flen - 1; flen; flen + 9 ]
        |> List.sort_uniq compare
        |> List.filter (fun p -> p >= 0)
      in
      List.iter
        (fun at_byte ->
          with_dir (fun dir ->
              let fault = Store.Fault.create () in
              let opened = open_live ~fault dir in
              let live = opened.Store.Live.live in
              (* the committed prefix *)
              List.iteri
                (fun j op -> if j < i then apply_live_exn live op)
                script;
              Store.Fault.arm_write_fault fault ~op:i
                (Store.Fault.Torn_write { at_byte });
              (match apply_live live op with
              | Ok () | Error _ ->
                Alcotest.fail "armed torn write did not crash"
              | exception Store.Fault.Write_crash _ -> ());
              (* the process is dead; drop the handle and recover *)
              Store.Live.close live;
              let reopened = open_live dir in
              let committed = at_byte >= flen in
              let expected_ops =
                List.filteri (fun j _ -> j < i || (j = i && committed)) script
              in
              check bool_
                (Printf.sprintf "op %d crash at byte %d: exact records" i
                   at_byte)
                true
                (reopened.Store.Live.recovery.Store.Wal.records = expected_ops);
              assert_equals_rebuild
                ~what:(Printf.sprintf "op %d crash at byte %d" i at_byte)
                (live_snapshot reopened.Store.Live.live)
                (sim_after expected_ops);
              Store.Live.close reopened.Store.Live.live))
        points)
    script

(* ------------------------------------------------------------------ *)
(* Live store: recovery, strictness, checkpoint *)

let test_live_recovery_idempotent () =
  with_dir (fun dir ->
      let opened = open_live dir in
      List.iter (apply_live_exn opened.Store.Live.live) script;
      let stats = Store.Live.stats opened.Store.Live.live in
      check int_ "all records logged" (List.length script)
        stats.Store.Live.wal_records;
      Store.Live.close opened.Store.Live.live;
      (* reopen twice: same replay, nothing truncated *)
      let reference = ref None in
      for _round = 1 to 2 do
        let o = open_live dir in
        check int_ "replay applies every record" (List.length script)
          o.Store.Live.replay.Store.Delta.applied;
        check int_ "clean log truncates nothing" 0
          o.Store.Live.recovery.Store.Wal.truncated_bytes;
        let d = Store.Live.delta o.Store.Live.live in
        let state =
          (List.map fst (Store.Delta.documents d), Store.Delta.tombstone_count d)
        in
        (match !reference with
        | None -> reference := Some state
        | Some expected ->
          check bool_ "reopen reproduces the same delta" true
            (state = expected));
        Store.Live.close o.Store.Live.live
      done)

let test_live_rejections_never_reach_the_log () =
  with_dir (fun dir ->
      let opened = open_live dir in
      let live = opened.Store.Live.live in
      let wal_count () = Store.Live.(stats live).wal_records in
      (match Store.Live.insert live ~name:"d0.xml" ~xml:doc_a with
      | Error (Store.Live.Mutation_error (Store.Delta.Duplicate_document _)) ->
        ()
      | _ -> Alcotest.fail "duplicate insert accepted");
      (match Store.Live.delete live ~name:"ghost.xml" with
      | Error (Store.Live.Mutation_error (Store.Delta.Unknown_document _)) ->
        ()
      | _ -> Alcotest.fail "unknown delete accepted");
      (match Store.Live.insert live ~name:"bad.xml" ~xml:"<nope" with
      | Error (Store.Live.Mutation_error (Store.Delta.Parse_failed _)) -> ()
      | _ -> Alcotest.fail "unparseable insert accepted");
      check int_ "validate-before-log: nothing was appended" 0 (wal_count ());
      Store.Live.close live)

let test_live_checkpoint () =
  with_dir (fun dir ->
      let opened = open_live dir in
      let live = opened.Store.Live.live in
      List.iter (apply_live_exn live) script;
      let path =
        match Store.Live.checkpoint live with
        | Ok p -> p
        | Error e ->
          Alcotest.failf "checkpoint: %s" (Store.Live.error_to_string e)
      in
      check bool_ "image written where promised" true (Sys.file_exists path);
      check string_ "default checkpoint path" (Store.Live.checkpoint_path ~dir)
        path;
      let stats = Store.Live.stats live in
      check int_ "wal reset" 0 stats.Store.Live.wal_records;
      check int_ "delta folded in" 0 stats.Store.Live.delta_documents;
      check int_ "one checkpoint taken" 1 stats.Store.Live.checkpoints;
      (* the swapped-in base answers exactly like a rebuild *)
      assert_equals_rebuild ~what:"after checkpoint" (live_snapshot live)
        (sim_after script);
      Store.Live.close live;
      (* reopening WITHOUT the seed corpus finds the checkpoint *)
      let reopened = open_live ~base:false dir in
      (match reopened.Store.Live.base_source with
      | Store.Live.From_checkpoint p -> check string_ "from checkpoint" path p
      | _ -> Alcotest.fail "checkpoint image was not preferred");
      assert_equals_rebuild ~what:"reopened from checkpoint"
        (live_snapshot reopened.Store.Live.live)
        (sim_after script);
      (* and mutations keep working on top of the new base *)
      apply_live_exn reopened.Store.Live.live
        (Store.Wal.Insert { name = "post.xml"; xml = doc_a });
      let sim = sim_after script in
      sim_apply sim (Store.Wal.Insert { name = "post.xml"; xml = doc_a });
      assert_equals_rebuild ~what:"mutation after checkpoint"
        (live_snapshot reopened.Store.Live.live)
        sim;
      Store.Live.close reopened.Store.Live.live)

(* ------------------------------------------------------------------ *)
(* Group commit at the live-store level: concurrent writers coalesce,
   every acknowledgement is durable. *)

let join_all threads = List.iter Thread.join threads

let test_live_group_commit_concurrency () =
  with_dir (fun dir ->
      let opened = open_live ~wal_batch:8 dir in
      let live = opened.Store.Live.live in
      let writers = 8 and per = 8 in
      let failures = Atomic.make 0 in
      join_all
        (List.init writers (fun w ->
             Thread.create
               (fun () ->
                 for i = 0 to per - 1 do
                   let name = Printf.sprintf "w%d_%d.xml" w i in
                   match Store.Live.insert live ~name ~xml:doc_a with
                   | Ok () -> ()
                   | Error _ -> Atomic.incr failures
                 done)
               ()));
      check int_ "no concurrent writer failed" 0 (Atomic.get failures);
      let stats = Store.Live.stats live in
      check int_ "every record logged" (writers * per)
        stats.Store.Live.wal_records;
      check int_ "every record went through group commit" (writers * per)
        stats.Store.Live.gc_records;
      check bool_ "batches bounded by wal_batch" true
        (stats.Store.Live.gc_largest_batch >= 1
        && stats.Store.Live.gc_largest_batch <= 8);
      check bool_ "batch count is consistent" true
        (stats.Store.Live.gc_batches >= (writers * per + 7) / 8
        && stats.Store.Live.gc_batches <= writers * per);
      Store.Live.close live;
      let reopened = open_live dir in
      check int_ "recovery replays every acked insert" (writers * per)
        reopened.Store.Live.replay.Store.Delta.applied;
      check int_ "all documents present" (writers * per)
        (List.length
           (Store.Delta.documents (Store.Live.delta reopened.Store.Live.live)));
      Store.Live.close reopened.Store.Live.live)

let test_live_group_commit_crash_recovers_acked () =
  (* kill the process mid-batch at several armed ops: after reopen,
     every ACKED insert must be present (un-acked frames from the
     crashed batch may or may not be, both are legal post-op states) *)
  List.iter
    (fun (crash_op, at_byte) ->
      with_dir (fun dir ->
          let fault = Store.Fault.create () in
          let opened = open_live ~fault ~wal_batch:8 dir in
          let live = opened.Store.Live.live in
          Store.Fault.arm_write_fault fault ~op:crash_op
            (Store.Fault.Torn_write { at_byte });
          let lock = Mutex.create () in
          let acked = ref [] in
          join_all
            (List.init 4 (fun w ->
                 Thread.create
                   (fun () ->
                     for i = 0 to 5 do
                       let name = Printf.sprintf "c%d_%d.xml" w i in
                       match Store.Live.insert live ~name ~xml:doc_c with
                       | Ok () ->
                         Mutex.protect lock (fun () -> acked := name :: !acked)
                       | Error _ -> ()
                       | exception Store.Fault.Write_crash _ -> ()
                     done)
                   ()));
          Store.Live.close live;
          let reopened = open_live dir in
          let recovered =
            List.filter_map
              (function
                | Store.Wal.Insert { name; _ } -> Some name
                | _ -> None)
              reopened.Store.Live.recovery.Store.Wal.records
          in
          List.iter
            (fun name ->
              check bool_
                (Printf.sprintf
                   "crash at op %d byte %d: acked %s recovered" crash_op
                   at_byte name)
                true
                (List.mem name recovered))
            !acked;
          Store.Live.close reopened.Store.Live.live))
    [ (0, 3); (5, 0); (11, 7); (17, 25) ]

(* ------------------------------------------------------------------ *)
(* Two-level delta: freeze / prepare / install, abort, and the crash
   windows in between. *)

let prefix_ops = List.filteri (fun i _ -> i < 3) script
let suffix_ops = List.filteri (fun i _ -> i >= 3) script

let begin_exn live =
  match Store.Live.checkpoint_begin live with
  | Ok token -> token
  | Error e ->
    Alcotest.failf "checkpoint_begin: %s" (Store.Live.error_to_string e)

let prepare_exn live token =
  match Store.Live.checkpoint_prepare live token with
  | Ok (merged, path) -> (merged, path)
  | Error e ->
    Alcotest.failf "checkpoint_prepare: %s" (Store.Live.error_to_string e)

let test_live_two_level_checkpoint () =
  with_dir (fun dir ->
      let opened = open_live dir in
      let live = opened.Store.Live.live in
      List.iter (apply_live_exn live) prefix_ops;
      let token = begin_exn live in
      (* mutations keep flowing while the checkpoint is in flight *)
      List.iter (apply_live_exn live) suffix_ops;
      let st = Store.Live.stats live in
      check bool_ "in progress" true st.Store.Live.checkpoint_in_progress;
      check int_ "frozen segment holds the prefix docs" 2
        st.Store.Live.frozen_documents;
      check int_ "frozen segment holds the prefix tombstones" 2
        st.Store.Live.frozen_tombstones;
      check int_ "live log holds only the suffix" (List.length suffix_ops)
        st.Store.Live.wal_records;
      check bool_ "rotated log on disk" true
        (Sys.file_exists (Store.Live.frozen_wal_path ~dir));
      (* a second begin is refused while one is in flight *)
      (match Store.Live.checkpoint_begin live with
      | Error Store.Live.Checkpoint_in_progress -> ()
      | Ok _ -> Alcotest.fail "overlapping checkpoint_begin accepted"
      | Error e ->
        Alcotest.failf "wanted Checkpoint_in_progress, got %s"
          (Store.Live.error_to_string e));
      (* reads during the in-flight checkpoint see base ∪ delta *)
      assert_equals_rebuild ~what:"during checkpoint" (live_snapshot live)
        (sim_after script);
      let merged, path = prepare_exn live token in
      Store.Live.checkpoint_install live merged path;
      let st = Store.Live.stats live in
      check bool_ "no longer in progress" false
        st.Store.Live.checkpoint_in_progress;
      check int_ "one checkpoint installed" 1 st.Store.Live.checkpoints;
      check int_ "suffix survives in the live log" (List.length suffix_ops)
        st.Store.Live.wal_records;
      check int_ "delta is the replayed suffix" 1
        st.Store.Live.delta_documents;
      check bool_ "frozen log removed" false
        (Sys.file_exists (Store.Live.frozen_wal_path ~dir));
      assert_equals_rebuild ~what:"after install" (live_snapshot live)
        (sim_after script);
      Store.Live.close live;
      (* reopen without the seed: checkpoint image + suffix replay *)
      let reopened = open_live ~base:false dir in
      (match reopened.Store.Live.base_source with
      | Store.Live.From_checkpoint _ -> ()
      | _ -> Alcotest.fail "checkpoint image was not preferred");
      check bool_ "reopen replays exactly the suffix" true
        (reopened.Store.Live.recovery.Store.Wal.records = suffix_ops);
      assert_equals_rebuild ~what:"reopened after two-level checkpoint"
        (live_snapshot reopened.Store.Live.live)
        (sim_after script);
      Store.Live.close reopened.Store.Live.live)

let test_live_checkpoint_abort () =
  with_dir (fun dir ->
      let opened = open_live dir in
      let live = opened.Store.Live.live in
      List.iter (apply_live_exn live) prefix_ops;
      let _token = begin_exn live in
      List.iter (apply_live_exn live) suffix_ops;
      (match Store.Live.checkpoint_abort live with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "abort: %s" (Store.Live.error_to_string e));
      let st = Store.Live.stats live in
      check bool_ "abort clears the in-flight state" false
        st.Store.Live.checkpoint_in_progress;
      check int_ "abort merges frozen + suffix back into one log"
        (List.length script) st.Store.Live.wal_records;
      check bool_ "frozen log removed" false
        (Sys.file_exists (Store.Live.frozen_wal_path ~dir));
      assert_equals_rebuild ~what:"after abort" (live_snapshot live)
        (sim_after script);
      (* the store keeps working: a full checkpoint after the abort *)
      (match Store.Live.checkpoint live with
      | Ok _ -> ()
      | Error e ->
        Alcotest.failf "checkpoint after abort: %s"
          (Store.Live.error_to_string e));
      Store.Live.close live;
      let reopened = open_live ~base:false dir in
      assert_equals_rebuild ~what:"reopened after abort + checkpoint"
        (live_snapshot reopened.Store.Live.live)
        (sim_after script);
      Store.Live.close reopened.Store.Live.live)

let test_live_checkpoint_crash_before_install () =
  (* die with the rotated log still on disk (before OR after the
     image was prepared): recovery must merge frozen + suffix and
     reproduce the full post-op state either way *)
  List.iter
    (fun prepare_first ->
      with_dir (fun dir ->
          let opened = open_live dir in
          let live = opened.Store.Live.live in
          List.iter (apply_live_exn live) prefix_ops;
          let token = begin_exn live in
          List.iter (apply_live_exn live) suffix_ops;
          if prepare_first then ignore (prepare_exn live token);
          (* crash: drop every handle, leaving wal.frozen.log behind *)
          Store.Live.close live;
          check bool_ "rotated log left behind" true
            (Sys.file_exists (Store.Live.frozen_wal_path ~dir));
          let reopened = open_live ~base:(not prepare_first) dir in
          (match reopened.Store.Live.base_source with
          | Store.Live.From_checkpoint _ when prepare_first -> ()
          | Store.Live.Provided when not prepare_first -> ()
          | _ -> Alcotest.fail "unexpected base source after crash");
          check bool_ "recovery merges the rotated log" true
            (reopened.Store.Live.recovery.Store.Wal.records = script);
          check bool_ "merged log is singular again" false
            (Sys.file_exists (Store.Live.frozen_wal_path ~dir));
          assert_equals_rebuild
            ~what:
              (if prepare_first then "crash after prepare"
               else "crash before prepare")
            (live_snapshot reopened.Store.Live.live)
            (sim_after script);
          (* recovery is idempotent over the merged log *)
          Store.Live.close reopened.Store.Live.live;
          let again = open_live ~base:(not prepare_first) dir in
          check bool_ "second recovery identical" true
            (again.Store.Live.recovery.Store.Wal.records = script);
          Store.Live.close again.Store.Live.live))
    [ false; true ]

let test_live_ingest_during_checkpoint_stress () =
  (* writers and readers race a concurrent checkpoint; afterwards the
     store holds exactly the base script + every acked insert, and a
     reopen agrees *)
  with_dir (fun dir ->
      let opened = open_live ~wal_batch:8 dir in
      let live = opened.Store.Live.live in
      List.iter (apply_live_exn live) script;
      let writer_failures = Atomic.make 0 in
      let reader_failures = Atomic.make 0 in
      let ck_result = ref (Ok "") in
      let stop_readers = Atomic.make false in
      let writers = 3 and per = 12 in
      let reader =
        Thread.create
          (fun () ->
            while not (Atomic.get stop_readers) do
              (match
                 Service.Engine.exec ~k:5 (live_snapshot live)
                   (Service.Engine.Ranked { terms = [ "search" ] })
               with
              | Ok _ -> ()
              | Error _ -> Atomic.incr reader_failures);
              Thread.yield ()
            done)
          ()
      in
      let writer_threads =
        List.init writers (fun w ->
            Thread.create
              (fun () ->
                for i = 0 to per - 1 do
                  let name = Printf.sprintf "s%d_%d.xml" w i in
                  match Store.Live.insert live ~name ~xml:doc_c with
                  | Ok () -> ()
                  | Error _ -> Atomic.incr writer_failures
                done)
              ())
      in
      let ck_thread =
        Thread.create (fun () -> ck_result := Store.Live.checkpoint live) ()
      in
      join_all writer_threads;
      Thread.join ck_thread;
      Atomic.set stop_readers true;
      Thread.join reader;
      check int_ "no writer failed" 0 (Atomic.get writer_failures);
      check int_ "no reader failed" 0 (Atomic.get reader_failures);
      (match !ck_result with
      | Ok _ -> ()
      | Error e ->
        Alcotest.failf "concurrent checkpoint: %s"
          (Store.Live.error_to_string e));
      let live_total t =
        let st = Store.Live.stats t in
        (Store.Db.stats (Store.Live.base t)).Store.Db.documents
        - st.Store.Live.tombstones + st.Store.Live.delta_documents
      in
      let expected = 4 + (writers * per) in
      check int_ "every acked insert is live" expected (live_total live);
      Store.Live.close live;
      let reopened = open_live ~base:false dir in
      check int_ "every acked insert survives reopen" expected
        (live_total reopened.Store.Live.live);
      Store.Live.close reopened.Store.Live.live)

(* ------------------------------------------------------------------ *)
(* Service layer: coordinator, protocol, server dispatch *)

let with_service ?(base = true) ?every_docs ?every_bytes f =
  with_dir (fun dir ->
      let opened = open_live ~base dir in
      let live = opened.Store.Live.live in
      let scheduler =
        Service.Scheduler.create ~workers:1 ~queue_depth:8
          (live_snapshot live)
      in
      let updates =
        Service.Updates.create ?every_docs ?every_bytes ~live ~scheduler ()
      in
      Fun.protect
        ~finally:(fun () ->
          Service.Updates.shutdown updates;
          Service.Scheduler.shutdown scheduler;
          Store.Live.close live)
        (fun () -> f scheduler updates))

let json_member name json =
  match Service.Json.member name json with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S" name

let json_bool name json =
  match Service.Json.to_bool_opt (json_member name json) with
  | Some b -> b
  | None -> Alcotest.failf "%S is not a bool" name

let json_int name json =
  match Service.Json.to_int_opt (json_member name json) with
  | Some i -> i
  | None -> Alcotest.failf "%S is not an int" name

let test_updates_coordinator () =
  with_service (fun scheduler updates ->
      let gen0 = (Service.Scheduler.snapshot scheduler).Service.Engine.generation in
      (match Service.Updates.insert updates ~name:"new1.xml" ~xml:doc_a with
      | Ok g -> check int_ "insert bumps the generation" (gen0 + 1) g
      | Error e ->
        Alcotest.failf "insert: %s" (Service.Updates.error_message e));
      (* readers see the new document through the ordinary path *)
      (match
         Service.Scheduler.run scheduler ~k:10
           (Service.Engine.Ranked { terms = [ "search" ] })
       with
      | Ok (Ok r) ->
        check bool_ "inserted doc is ranked" true
          (List.exists
             (fun (row : Service.Engine.row) -> row.tag = "new1.xml")
             r.Service.Engine.rows)
      | Ok (Error e) ->
        Alcotest.failf "ranked: %s" (Service.Engine.error_message e)
      | Error _ -> Alcotest.fail "admission failed");
      (match Service.Updates.delete updates ~name:"d3.xml" with
      | Ok _ -> ()
      | Error e ->
        Alcotest.failf "delete: %s" (Service.Updates.error_message e));
      (* rejected mutations do not bump the generation *)
      let gen_before =
        (Service.Scheduler.snapshot scheduler).Service.Engine.generation
      in
      (match Service.Updates.insert updates ~name:"new1.xml" ~xml:doc_a with
      | Error (Service.Updates.Store_error
                 (Store.Live.Mutation_error (Store.Delta.Duplicate_document _)))
        ->
        ()
      | _ -> Alcotest.fail "duplicate accepted");
      check int_ "rejection leaves the generation" gen_before
        (Service.Scheduler.snapshot scheduler).Service.Engine.generation;
      (* checkpoint installs a delta-free snapshot at a new generation *)
      (match Service.Updates.checkpoint updates with
      | Ok (Service.Updates.Completed (_path, g)) ->
        check int_ "checkpoint bumps the generation" (gen_before + 1) g
      | Ok Service.Updates.Started ->
        Alcotest.fail "waiting checkpoint answered Started"
      | Error e ->
        Alcotest.failf "checkpoint: %s" (Service.Updates.error_message e));
      check bool_ "post-checkpoint snapshot has no delta" true
        ((Service.Scheduler.snapshot scheduler).Service.Engine.delta = None))

let test_protocol_mutation_roundtrip () =
  List.iter
    (fun req ->
      let line =
        Service.Json.to_string (Service.Protocol.request_to_json req)
      in
      match Service.Protocol.parse_request line with
      | Ok req' -> check bool_ ("roundtrip " ^ line) true (req = req')
      | Error e -> Alcotest.failf "parse %s: %s" line e)
    [
      Service.Protocol.Insert { name = "a.xml"; xml = "<a>1</a>" };
      Service.Protocol.Remove { name = "a.xml" };
      Service.Protocol.UpdateDoc { name = "a.xml"; xml = "<a>2</a>" };
      Service.Protocol.Checkpoint { wait = true };
      Service.Protocol.Checkpoint { wait = false };
      Service.Protocol.Exec
        {
          req =
            Service.Engine.Search
              {
                terms = [ "a"; "b" ];
                method_ = Service.Engine.Auto;
                complex = false;
                anchor = Some "sec";
              };
          k = Some 5;
          limits =
            { Core.Governor.timeout_s = None; max_steps = None;
              max_results = None };
          trace = false;
          parallelism = None;
          theta = None;
        };
    ]

let test_server_dispatch_mutations () =
  with_service (fun scheduler updates ->
      let handle req = Service.Server.handle ~updates scheduler req in
      let resp =
        handle (Service.Protocol.Insert { name = "new1.xml"; xml = doc_a })
      in
      check bool_ "insert acked" true (json_bool "ok" resp);
      check int_ "generation in the ack" 1 (json_int "generation" resp);
      (* duplicate insert: typed protocol error *)
      let resp =
        handle (Service.Protocol.Insert { name = "new1.xml"; xml = doc_a })
      in
      check bool_ "duplicate rejected" false (json_bool "ok" resp);
      (match
         Service.Json.to_string_opt
           (json_member "code" (json_member "error" resp))
       with
      | Some code -> check string_ "error code" "duplicate_document" code
      | None -> Alcotest.fail "error code missing");
      let resp = handle (Service.Protocol.Remove { name = "d3.xml" }) in
      check bool_ "delete acked" true (json_bool "ok" resp);
      let resp =
        handle (Service.Protocol.UpdateDoc { name = "new1.xml"; xml = doc_b })
      in
      check bool_ "update acked" true (json_bool "ok" resp);
      (* health reports updatability and the current generation *)
      let health = handle Service.Protocol.Health in
      check bool_ "updatable" true (json_bool "updatable" health);
      check int_ "generation tracks the mutations" 3
        (json_int "generation" health);
      (* stats carries the WAL/delta counters *)
      let stats = handle Service.Protocol.Stats in
      let upd = json_member "updates" stats in
      check int_ "wal_records" 3 (json_int "wal_records" upd);
      check int_ "delta_documents" 1 (json_int "delta_documents" upd);
      check int_ "tombstones" 1 (json_int "tombstones" upd);
      let delta = json_member "delta" stats in
      check int_ "delta.documents" 1 (json_int "documents" delta);
      (* checkpoint over the wire *)
      let resp = handle (Service.Protocol.Checkpoint { wait = true }) in
      check bool_ "checkpoint acked" true (json_bool "ok" resp);
      check int_ "checkpoint generation" 4 (json_int "generation" resp))

let await_checkpoint_idle updates =
  let deadline = Unix.gettimeofday () +. 30. in
  while
    Service.Updates.checkpoint_in_progress updates
    && Unix.gettimeofday () < deadline
  do
    Thread.yield ();
    Unix.sleepf 0.002
  done;
  check bool_ "background checkpoint finished" false
    (Service.Updates.checkpoint_in_progress updates)

let test_updates_async_checkpoint () =
  with_service (fun scheduler updates ->
      (match Service.Updates.insert updates ~name:"az.xml" ~xml:doc_a with
      | Ok _ -> ()
      | Error e ->
        Alcotest.failf "insert: %s" (Service.Updates.error_message e));
      (match Service.Updates.checkpoint ~wait:false updates with
      | Ok Service.Updates.Started -> ()
      | Ok (Service.Updates.Completed _) ->
        Alcotest.fail "async checkpoint answered Completed"
      | Error e ->
        Alcotest.failf "checkpoint request: %s"
          (Service.Updates.error_message e));
      await_checkpoint_idle updates;
      let snap = Service.Scheduler.snapshot scheduler in
      check bool_ "delta folded into the new base" true
        (snap.Service.Engine.delta = None);
      check string_ "snapshot source is the image" "checkpoint.tix"
        (Filename.basename snap.Service.Engine.source);
      check int_ "store counted the checkpoint" 1
        (Store.Live.stats (Service.Updates.live updates)).Store.Live
          .checkpoints;
      (* the learned-correction table was persisted alongside it *)
      check bool_ "feedback table persisted" true
        (Sys.file_exists
           (Filename.concat
              (Store.Live.dir (Service.Updates.live updates))
              "feedback.dat"));
      (* mutations keep working on the republished snapshot *)
      match Service.Updates.insert updates ~name:"post.xml" ~xml:doc_b with
      | Ok g ->
        check int_ "post-checkpoint mutation bumps the generation"
          (snap.Service.Engine.generation + 1)
          g
      | Error e ->
        Alcotest.failf "post-checkpoint insert: %s"
          (Service.Updates.error_message e))

let test_updates_auto_checkpoint_trigger () =
  with_service ~every_docs:2 (fun _scheduler updates ->
      let ok_insert name xml =
        match Service.Updates.insert updates ~name ~xml with
        | Ok _ -> ()
        | Error e ->
          Alcotest.failf "insert %s: %s" name
            (Service.Updates.error_message e)
      in
      ok_insert "t1.xml" doc_a;
      ok_insert "t2.xml" doc_b;
      (* the second insert crossed the threshold; wait out the worker *)
      let live = Service.Updates.live updates in
      let deadline = Unix.gettimeofday () +. 30. in
      while
        (Store.Live.stats live).Store.Live.checkpoints < 1
        && Unix.gettimeofday () < deadline
      do
        Thread.yield ();
        Unix.sleepf 0.002
      done;
      await_checkpoint_idle updates;
      check int_ "threshold triggered exactly one checkpoint" 1
        (Store.Live.stats live).Store.Live.checkpoints;
      check int_ "delta folded" 0
        (Store.Live.stats live).Store.Live.delta_documents)

let test_server_async_checkpoint_dispatch () =
  with_service (fun scheduler updates ->
      let handle req = Service.Server.handle ~updates scheduler req in
      let resp =
        handle (Service.Protocol.Insert { name = "az.xml"; xml = doc_a })
      in
      check bool_ "insert acked" true (json_bool "ok" resp);
      let resp = handle (Service.Protocol.Checkpoint { wait = false }) in
      check bool_ "async checkpoint acked" true (json_bool "ok" resp);
      check bool_ "acknowledged as started" true (json_bool "started" resp);
      await_checkpoint_idle updates;
      let health = handle Service.Protocol.Health in
      check bool_ "health reports the idle checkpoint state" false
        (json_bool "checkpoint_in_progress" health);
      let stats = handle Service.Protocol.Stats in
      let upd = json_member "updates" stats in
      check int_ "delta folded" 0 (json_int "delta_documents" upd);
      check bool_ "stats report the idle checkpoint state" false
        (json_bool "checkpoint_in_progress" upd);
      let gc = json_member "group_commit" upd in
      check bool_ "group-commit counters flow through stats" true
        (json_int "records" gc >= 1 && json_int "batches" gc >= 1))

let test_feedback_persistence_roundtrip () =
  let fb = Ir.Stats.Feedback.create () in
  Ir.Stats.Feedback.observe fb ~key:"ranked|alpha" ~est:100. ~actual:10.;
  Ir.Stats.Feedback.observe fb ~key:"search|beta" ~est:5. ~actual:50.;
  Ir.Stats.Feedback.observe fb ~key:"ranked|alpha" ~est:80. ~actual:8.;
  let payload = Ir.Stats.Feedback.to_string fb in
  (match Ir.Stats.Feedback.of_string payload with
  | None -> Alcotest.fail "roundtrip rejected its own serialization"
  | Some fb' ->
    List.iter
      (fun key ->
        check (Alcotest.float 1e-12)
          (Printf.sprintf "correction for %s survives" key)
          (Ir.Stats.Feedback.correction fb ~key)
          (Ir.Stats.Feedback.correction fb' ~key))
      [ "ranked|alpha"; "search|beta"; "never|observed" ];
    check int_ "observation count survives"
      (Ir.Stats.Feedback.observations fb)
      (Ir.Stats.Feedback.observations fb');
    check int_ "restored table starts at generation 0" 0
      (Ir.Stats.Feedback.generation fb'));
  check bool_ "garbage is rejected" true
    (Ir.Stats.Feedback.of_string "not a feedback table" = None);
  check bool_ "truncation is rejected" true
    (Ir.Stats.Feedback.of_string
       (String.sub payload 0 (String.length payload - 3))
    = None);
  (* the coordinator's file-level load path *)
  with_dir (fun dir ->
      check bool_ "no file yields no table" true
        (Service.Updates.load_feedback ~dir = None);
      let oc = open_out_bin (Filename.concat dir "feedback.dat") in
      output_string oc payload;
      close_out oc;
      match Service.Updates.load_feedback ~dir with
      | None -> Alcotest.fail "persisted table not loaded"
      | Some fb' ->
        check (Alcotest.float 1e-12) "loaded correction"
          (Ir.Stats.Feedback.correction fb ~key:"ranked|alpha")
          (Ir.Stats.Feedback.correction fb' ~key:"ranked|alpha"))

let test_anchored_search () =
  let snap = snapshot_exn (mk_base ()) in
  let search ?anchor method_ =
    match
      Service.Engine.exec ~k:20 snap
        (Service.Engine.Search
           { terms = [ "search" ]; method_; complex = false; anchor })
    with
    | Ok r -> r
    | Error e ->
      Alcotest.failf "anchored search: %s" (Service.Engine.error_message e)
  in
  let unanchored = search Service.Engine.Termjoin in
  let anchored = search ~anchor:"title" Service.Engine.Termjoin in
  check bool_ "anchored search finds rows" true
    (anchored.Service.Engine.rows <> []);
  List.iter
    (fun (row : Service.Engine.row) ->
      check string_ "every anchored row lies inside a title" "title" row.tag)
    anchored.Service.Engine.rows;
  List.iter
    (fun key ->
      check bool_ "anchored rows are a subset of the unanchored rows" true
        (List.mem key (row_keys unanchored)))
    (row_keys anchored);
  check bool_ "anchoring actually restricts" true
    (List.length anchored.Service.Engine.rows
    < List.length unanchored.Service.Engine.rows);
  (* Auto planning prices the anchor and agrees on the rows *)
  check bool_ "auto anchored rows = termjoin anchored rows" true
    (row_keys (search ~anchor:"title" Service.Engine.Auto)
    = row_keys anchored);
  (match (search ~anchor:"title" Service.Engine.Auto).Service.Engine.plan with
  | Some plan ->
    check bool_ "auto records a planner line" true
      (String.length plan > 0)
  | None -> Alcotest.fail "auto anchored search lost its plan");
  (* an unknown anchor tag matches nothing *)
  check int_ "unknown anchor yields no rows" 0
    (List.length
       (search ~anchor:"nosuchtag" Service.Engine.Genmeet).Service.Engine.rows)

let test_server_read_only_rejects_mutations () =
  let scheduler =
    Service.Scheduler.create ~workers:1 ~queue_depth:4
      (snapshot_exn (mk_base ()))
  in
  Fun.protect
    ~finally:(fun () -> Service.Scheduler.shutdown scheduler)
    (fun () ->
      List.iter
        (fun req ->
          let resp = Service.Server.handle scheduler req in
          check bool_ "read-only server rejects" false (json_bool "ok" resp);
          match
            Service.Json.to_string_opt
              (json_member "code" (json_member "error" resp))
          with
          | Some code -> check string_ "error code" "read_only" code
          | None -> Alcotest.fail "error code missing")
        [
          Service.Protocol.Insert { name = "a.xml"; xml = "<a/>" };
          Service.Protocol.Remove { name = "a.xml" };
          Service.Protocol.UpdateDoc { name = "a.xml"; xml = "<a/>" };
          Service.Protocol.Checkpoint { wait = true };
        ];
      let health = Service.Server.handle scheduler Service.Protocol.Health in
      check bool_ "read-only health says so" false
        (json_bool "updatable" health))

let test_scheduler_rejects_same_generation () =
  let scheduler =
    Service.Scheduler.create ~workers:1 ~queue_depth:4
      (snapshot_exn (mk_base ()))
  in
  Fun.protect
    ~finally:(fun () -> Service.Scheduler.shutdown scheduler)
    (fun () ->
      let current = Service.Scheduler.snapshot scheduler in
      (match Service.Scheduler.reload scheduler current with
      | Error (Service.Scheduler.Same_generation { generation }) ->
        check int_ "names the clashing generation"
          current.Service.Engine.generation generation
      | Ok () -> Alcotest.fail "same-generation reload accepted");
      (* a bumped generation goes through *)
      match
        Service.Scheduler.reload scheduler
          {
            current with
            Service.Engine.generation = current.Service.Engine.generation + 1;
          }
      with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "bumped reload rejected: %s"
          (Service.Scheduler.reload_error_to_string e))

(* ------------------------------------------------------------------ *)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "updates"
    [
      ( "wal",
        [
          tc "roundtrip and reset" `Quick test_wal_roundtrip;
          tc "torn write at every byte" `Quick test_wal_torn_write_every_byte;
          tc "fsync failure rolls back" `Quick
            test_wal_fsync_failure_rolls_back;
          tc "byte-flip corruption sweep" `Quick
            test_wal_corruption_sweep_byte_flips;
        ] );
      ( "group commit",
        [
          tc "append_many roundtrip" `Quick test_wal_append_many_roundtrip;
          tc "batched crash-point sweep" `Quick test_wal_batched_crash_sweep;
          tc "fsync failure fails the whole batch" `Quick
            test_wal_append_many_fsync_failure_rolls_back_whole_batch;
          tc "concurrent writers coalesce" `Quick
            test_live_group_commit_concurrency;
          tc "crash mid-batch recovers every ack" `Quick
            test_live_group_commit_crash_recovers_acked;
        ] );
      ( "delta",
        [
          tc "strict errors" `Quick test_delta_strict_errors;
          tc "update in place" `Quick test_delta_update_in_place;
          tc "lenient replay" `Quick test_delta_lenient_replay;
          tc "queries equal rebuild" `Quick test_delta_queries_equal_rebuild;
          tc "pick query over delta" `Quick test_pick_query_over_delta;
          tc "interp over delta" `Quick test_interp_over_delta;
        ] );
      ( "crash matrix",
        [ tc "crash-point sweep" `Quick test_crash_point_sweep ] );
      ( "live store",
        [
          tc "recovery idempotent" `Quick test_live_recovery_idempotent;
          tc "rejections never logged" `Quick
            test_live_rejections_never_reach_the_log;
          tc "checkpoint" `Quick test_live_checkpoint;
        ] );
      ( "two-level checkpoint",
        [
          tc "freeze / prepare / install" `Quick test_live_two_level_checkpoint;
          tc "abort restores one log" `Quick test_live_checkpoint_abort;
          tc "crash before install merges logs" `Quick
            test_live_checkpoint_crash_before_install;
          tc "ingest during checkpoint stress" `Quick
            test_live_ingest_during_checkpoint_stress;
        ] );
      ( "service",
        [
          tc "coordinator" `Quick test_updates_coordinator;
          tc "protocol roundtrip" `Quick test_protocol_mutation_roundtrip;
          tc "server dispatch" `Quick test_server_dispatch_mutations;
          tc "async checkpoint" `Quick test_updates_async_checkpoint;
          tc "auto checkpoint trigger" `Quick
            test_updates_auto_checkpoint_trigger;
          tc "async checkpoint dispatch" `Quick
            test_server_async_checkpoint_dispatch;
          tc "feedback persistence" `Quick test_feedback_persistence_roundtrip;
          tc "anchored search" `Quick test_anchored_search;
          tc "read-only rejects" `Quick test_server_read_only_rejects_mutations;
          tc "same-generation reload" `Quick
            test_scheduler_rejects_same_generation;
        ] );
    ]
