(* Planner oracle suite (cost-based access-method planning): over a
   grid of term frequencies × structural selectivities, the costed
   choice must (a) never be more than a small constant slower than
   the best measured access method, (b) agree with every other
   method on the answer set — skips on and off, parallelism 1 and 2,
   and across a 2-shard federation against the single-node oracle. *)

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string

module Json = Service.Json
module Protocol = Service.Protocol

(* ------------------------------------------------------------------ *)
(* Corpus: three planted frequency bands an order of magnitude apart,
   so the method crossovers the planner must navigate actually exist
   in the measured data. *)

let cfg =
  {
    Workload.Corpus.default with
    articles = 150;
    seed = 42;
    planted_terms =
      [
        ("plra", 20); ("plrb", 20);      (* rare *)
        ("plma", 400); ("plmb", 400);    (* mid *)
        ("plfa", 7000); ("plfb", 7000);  (* frequent *)
      ];
  }

(* trees stay retained (the default) so shard compaction keeps the
   interpreter path alive on every shard *)
let db = lazy (Store.Db.load (Workload.Corpus.generate cfg))
let ctx = lazy (Access.Ctx.of_db (Lazy.force db))

let workloads =
  [
    ("rare", [ "plra"; "plrb" ]);
    ("mid", [ "plma"; "plmb" ]);
    ("frequent", [ "plfa"; "plfb" ]);
    ("mixed", [ "plra"; "plfb" ]);
    ("single", [ "plfa" ]);
  ]

let snapshot_exn ?source d =
  match Service.Engine.of_db ?source d with
  | Ok s -> s
  | Error msg -> Alcotest.failf "of_db: %s" msg

let has_sub needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Answer comparison *)

let key_score_list nodes =
  List.map
    (fun (n : Access.Scored_node.t) -> ((n.doc, n.start), n.score))
    (List.sort Access.Scored_node.compare_pos nodes)

let same_results name expected actual =
  let e = key_score_list expected and a = key_score_list actual in
  check int_ (name ^ ": node count") (List.length e) (List.length a);
  List.iter2
    (fun ((kd, ks), es) ((ad, astart), as_) ->
      check (Alcotest.pair int_ int_) (name ^ ": node") (kd, ks) (ad, astart);
      check (Alcotest.float 1e-6) (name ^ ": score") es as_)
    e a

(* ------------------------------------------------------------------ *)
(* Every access method the planner can pick, runnable directly *)

let methods =
  [
    Access.Pattern_exec.Term_join Access.Term_join.Plain;
    Access.Pattern_exec.Term_join Access.Term_join.Enhanced;
    Access.Pattern_exec.Gen_meet { use_skips = true };
    Access.Pattern_exec.Gen_meet { use_skips = false };
    Access.Pattern_exec.Comp1;
    Access.Pattern_exec.Comp2;
  ]

let run_access ctx access ~terms =
  let mode = Access.Counter_scoring.Simple in
  match access with
  | Access.Pattern_exec.Term_join variant ->
    Access.Term_join.to_list ~variant ~mode ctx ~terms
  | Access.Pattern_exec.Gen_meet { use_skips } ->
    Access.Gen_meet.to_list ~use_skips ~mode ctx ~terms
  | Access.Pattern_exec.Comp1 -> Access.Composite.comp1_list ~mode ctx ~terms
  | Access.Pattern_exec.Comp2 -> Access.Composite.comp2_list ~mode ctx ~terms

(* one untimed warmup, then the median of three runs — the oracle is
   a measurement, so it gets the bench harness's noise discipline *)
let median3 f =
  ignore (f ());
  let time () =
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    Unix.gettimeofday () -. t0
  in
  let s = List.sort compare [ time (); time (); time () ] in
  List.nth s 1

(* ------------------------------------------------------------------ *)
(* Oracle: on every frequency band, all methods agree on the answer
   and the costed choice is within a small constant of the measured
   best.  The factor is deliberately loose (10x plus a 2 ms epsilon)
   — the claim is "never picks a catastrophic plan", not "always
   picks the single fastest". *)

let test_oracle_frequency_grid () =
  let ctx = Lazy.force ctx and db = Lazy.force db in
  let stats = Store.Db.collection_stats db in
  let index = Store.Db.index db in
  List.iter
    (fun (name, terms) ->
      let baseline = run_access ctx (List.hd methods) ~terms in
      check bool_ (name ^ ": non-empty") true (baseline <> []);
      List.iter
        (fun m ->
          same_results
            (name ^ "/" ^ Access.Pattern_exec.access_to_string m)
            baseline
            (run_access ctx m ~terms))
        (List.tl methods);
      let timed =
        List.map
          (fun m ->
            ( Access.Pattern_exec.access_to_string m,
              median3 (fun () -> run_access ctx m ~terms) ))
          methods
      in
      let best = List.fold_left (fun acc (_, t) -> Float.min acc t) infinity timed in
      let d = Query.Planner.choose ~stats ~index ~terms () in
      let chosen_name = Access.Pattern_exec.access_to_string d.Query.Planner.access in
      let chosen =
        match List.assoc_opt chosen_name timed with
        | Some t -> t
        | None -> Alcotest.failf "%s: chose unknown method %s" name chosen_name
      in
      check bool_
        (Printf.sprintf "%s: chosen %s %.4fs within 10x of best %.4fs" name
           chosen_name chosen best)
        true
        (chosen <= (10. *. best) +. 0.002);
      (* the decision's cost table covers every candidate and the
         chosen cost is its minimum *)
      check bool_ (name ^ ": alternatives listed") true
        (List.length d.Query.Planner.alternatives >= 4);
      List.iter
        (fun (_, c) ->
          check bool_ (name ^ ": chosen cost minimal") true
            (d.Query.Planner.est_cost <= c))
        d.Query.Planner.alternatives)
    workloads

(* ------------------------------------------------------------------ *)
(* Engine identity: the auto method returns exactly the termjoin
   rows, at parallelism 1 and 2, on every band. *)

let test_auto_parallelism_identity () =
  let snap = snapshot_exn (Lazy.force db) in
  List.iter
    (fun (name, terms) ->
      let run p m =
        match
          Service.Engine.exec ~parallelism:p snap
            (Service.Engine.Search { terms; method_ = m; complex = false; anchor = None })
        with
        | Ok r -> r.Service.Engine.rows
        | Error e ->
          Alcotest.failf "%s: %s" name (Service.Engine.error_message e)
      in
      let base = run 1 Service.Engine.Termjoin in
      check bool_ (name ^ ": rows") true (base <> []);
      check bool_ (name ^ ": auto par=1") true (run 1 Service.Engine.Auto = base);
      check bool_ (name ^ ": auto par=2") true (run 2 Service.Engine.Auto = base);
      check bool_ (name ^ ": genmeet par=2") true
        (run 2 Service.Engine.Genmeet = base))
    workloads

(* ------------------------------------------------------------------ *)
(* Structural selectivity grid: anchors from whole-document (article)
   down to leaf paragraphs, crossed with the frequency bands.  The
   costed plan must score the identical element set as the static
   rule's plan, and carry its estimate into EXPLAIN. *)

let parse_exn src =
  match Query.Parser.parse src with
  | Ok q -> q
  | Error e -> Alcotest.failf "parse error: %a" Query.Parser.pp_error e

let anchor_query anchor t1 t2 =
  Printf.sprintf
    {|
    for $a in document("*")//%s/descendant-or-self::*
    score $a using ScoreFoo($a, {"%s"}, {"%s"})
    return <r>{$a}</r>
    sortby(score)
    threshold $a/@score > 0
    |}
    anchor t1 t2

let anchors = [ "article"; "chapter"; "section"; "p" ]

let test_structural_grid () =
  let db = Lazy.force db in
  let stats = Store.Db.collection_stats db in
  let index = Store.Db.index db in
  let catalog = Store.Db.catalog db in
  List.iter
    (fun anchor ->
      let anchor_tag =
        match Store.Catalog.tag_id catalog anchor with
        | Some id -> id
        | None -> Alcotest.failf "anchor tag %s missing from catalog" anchor
      in
      List.iter
        (fun (wname, terms) ->
          match terms with
          | [ t1; t2 ] ->
            let what = anchor ^ "/" ^ wname in
            let q = parse_exn (anchor_query anchor t1 t2) in
            (match Query.Compile.compile q with
            | Error e -> Alcotest.failf "%s: compile: %s" what e
            | Ok plan ->
              let costed = Query.Compile.plan_with_stats db plan in
              check bool_ (what ^ ": estimate recorded") true
                (costed.Query.Compile.estimate <> None);
              check bool_ (what ^ ": explain costed") true
                (has_sub "(costed)" (Query.Compile.explain costed));
              same_results what
                (Query.Compile.execute db plan)
                (Query.Compile.execute db costed));
            (* an anchored choose must price the scoped gen-meet and
               still return the global cost minimum *)
            let d =
              Query.Planner.choose ~anchor_tag ~stats ~index ~terms ()
            in
            check bool_ (what ^ ": scoped gen-meet priced") true
              (List.mem_assoc "gen-meet" d.Query.Planner.alternatives
              || List.mem_assoc "gen-meet-noskip" d.Query.Planner.alternatives);
            List.iter
              (fun (_, c) ->
                check bool_ (what ^ ": anchored cost minimal") true
                  (d.Query.Planner.est_cost <= c))
              d.Query.Planner.alternatives
          | _ -> ())
        workloads)
    anchors

(* ------------------------------------------------------------------ *)
(* 2-shard federation: auto searches through the coordinator must be
   byte-identical to the single-node server, modulo the per-shard
   nondeterminism (timings, cache flags, step accounting) and the
   plan line — shard-local statistics legitimately cost differently,
   the rows must not. *)

let strip json =
  match json with
  | Json.Obj fields ->
    Json.Obj
      (List.filter
         (fun (name, _) ->
           name <> "timings" && name <> "cached" && name <> "steps_used"
           && name <> "plan")
         fields)
  | j -> j

let parse_req line =
  match Protocol.parse_request line with
  | Ok r -> r
  | Error e -> Alcotest.failf "bad request %s: %s" line e

let auto_requests =
  List.map
    (fun (_, terms) ->
      Printf.sprintf {|{"op":"search","terms":[%s],"method":"auto","k":10}|}
        (String.concat "," (List.map (Printf.sprintf "%S") terms)))
    workloads

let test_two_shard_federation () =
  let db = Lazy.force db in
  let docs = Store.Catalog.document_count (Store.Db.catalog db) in
  let ranges = Dist.Shard_map.ranges ~docs ~shards:2 in
  let parts =
    List.mapi
      (fun i (lo, hi) ->
        let tombstones = Array.init docs (fun d -> d < lo || d >= hi) in
        let shard_db = Store.Db.compact ~base:db ~delta:None ~tombstones in
        let snap =
          snapshot_exn ~source:(Printf.sprintf "shard-%d" i) shard_db
        in
        let scheduler = Service.Scheduler.create ~workers:1 snap in
        let server = Service.Server.start scheduler in
        ( {
            Dist.Shard_map.lo;
            hi;
            image = Printf.sprintf "shard-%d" i;
            replicas =
              [ { Dist.Shard_map.host = "127.0.0.1";
                  port = Service.Server.port server } ];
          },
          server, scheduler ))
      ranges
  in
  let map =
    match Dist.Shard_map.make (List.map (fun (s, _, _) -> s) parts) with
    | Ok m -> m
    | Error msg -> Alcotest.failf "manifest: %s" msg
  in
  let single_scheduler =
    Service.Scheduler.create ~workers:1 (snapshot_exn ~source:"single" db)
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (_, server, scheduler) ->
          Service.Server.stop server;
          Service.Scheduler.shutdown scheduler)
        parts;
      Service.Scheduler.shutdown single_scheduler)
    (fun () ->
      let single = Service.Server.handle single_scheduler in
      let coord = Dist.Coordinator.create ~source:"test-planner" map in
      Fun.protect
        ~finally:(fun () -> Dist.Client.close (Dist.Coordinator.client coord))
        (fun () ->
          List.iter
            (fun line ->
              let req = parse_req line in
              let expected = strip (single req) in
              (match Json.member "ok" expected with
              | Some (Json.Bool true) -> ()
              | _ -> Alcotest.failf "oracle failed on %s" line);
              let got = strip (Dist.Coordinator.handle coord req) in
              check string_ line
                (Json.to_string expected)
                (Json.to_string got))
            auto_requests))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "planner"
    [
      ( "oracle",
        [
          Alcotest.test_case "frequency grid" `Quick test_oracle_frequency_grid;
          Alcotest.test_case "auto parallelism identity" `Quick
            test_auto_parallelism_identity;
          Alcotest.test_case "structural grid" `Quick test_structural_grid;
          Alcotest.test_case "2-shard federation" `Quick
            test_two_shard_federation;
        ] );
    ]
