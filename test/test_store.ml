(* Tests for the storage substrate: pager, element store, parent
   index, histogram and the Db facade. *)

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Pager *)

let test_pager_basics () =
  let pager = Store.Pager.create ~page_size:64 () in
  let id0 = Store.Pager.append_page pager (Bytes.of_string "page-zero") in
  let id1 = Store.Pager.append_page pager (Bytes.of_string "page-one") in
  check int_ "ids dense" 0 id0;
  check int_ "ids dense" 1 id1;
  check string_ "contents" "page-zero"
    (Bytes.to_string (Store.Pager.read_page pager 0));
  check string_ "contents" "page-one"
    (Bytes.to_string (Store.Pager.read_page pager 1))

let test_pager_stats () =
  let pager = Store.Pager.create ~pool_pages:8 ~page_size:16 () in
  for i = 0 to 3 do
    ignore (Store.Pager.append_page pager (Bytes.make 16 (Char.chr (65 + i))))
  done;
  ignore (Store.Pager.read_page pager 0);
  ignore (Store.Pager.read_page pager 0);
  ignore (Store.Pager.read_page pager 1);
  let s = Store.Pager.stats pager in
  check int_ "reads" 3 s.Store.Pager.reads;
  check int_ "misses" 2 s.Store.Pager.misses;
  check int_ "bytes" 32 s.Store.Pager.bytes_transferred;
  Store.Pager.reset_stats pager;
  check int_ "reset" 0 (Store.Pager.stats pager).Store.Pager.reads

let test_pager_eviction () =
  let pager = Store.Pager.create ~pool_pages:2 ~page_size:8 () in
  for i = 0 to 3 do
    ignore (Store.Pager.append_page pager (Bytes.make 8 (Char.chr (48 + i))))
  done;
  (* fill pool with 0 and 1, then read 2: one of them is evicted *)
  ignore (Store.Pager.read_page pager 0);
  ignore (Store.Pager.read_page pager 1);
  ignore (Store.Pager.read_page pager 2);
  Store.Pager.reset_stats pager;
  (* page 1 was more recent than 0, so 0 was evicted *)
  ignore (Store.Pager.read_page pager 1);
  check int_ "hit on recent page" 0 (Store.Pager.stats pager).Store.Pager.misses;
  ignore (Store.Pager.read_page pager 0);
  check int_ "miss on evicted page" 1 (Store.Pager.stats pager).Store.Pager.misses

let test_pager_clear_pool () =
  let pager = Store.Pager.create ~page_size:8 () in
  ignore (Store.Pager.append_page pager (Bytes.make 8 'x'));
  ignore (Store.Pager.read_page pager 0);
  Store.Pager.clear_pool pager;
  Store.Pager.reset_stats pager;
  ignore (Store.Pager.read_page pager 0);
  check int_ "cold after clear" 1 (Store.Pager.stats pager).Store.Pager.misses

(* ------------------------------------------------------------------ *)
(* Element record codec *)

let sample_rec =
  {
    Store.Element_rec.doc = 3;
    start = 10;
    end_ = 42;
    level = 2;
    parent = 4;
    child_count = 5;
    tag = 7;
    word_count = 11;
    text = "some words";
  }

let test_element_rec_roundtrip () =
  let buf = Buffer.create 64 in
  Store.Element_rec.encode buf sample_rec;
  let decoded, off = Store.Element_rec.decode ~doc:3 (Buffer.to_bytes buf) 0 in
  check bool_ "roundtrip" true (decoded = sample_rec);
  check int_ "consumed all" (Buffer.length buf) off

let test_element_rec_meta () =
  let buf = Buffer.create 64 in
  Store.Element_rec.encode buf sample_rec;
  let decoded, off = Store.Element_rec.decode_meta ~doc:3 (Buffer.to_bytes buf) 0 in
  check string_ "text skipped" "" decoded.Store.Element_rec.text;
  check int_ "same offset" (Buffer.length buf) off;
  check int_ "other fields" 42 decoded.Store.Element_rec.end_

let test_element_rec_root () =
  let root = { sample_rec with parent = -1 } in
  let buf = Buffer.create 64 in
  Store.Element_rec.encode buf root;
  let decoded, _ = Store.Element_rec.decode ~doc:3 (Buffer.to_bytes buf) 0 in
  check int_ "root parent" (-1) decoded.Store.Element_rec.parent

(* ------------------------------------------------------------------ *)
(* Element store *)

let make_store ?(page_size = 128) records =
  let b = Store.Element_store.builder ~page_size () in
  List.iter (Store.Element_store.add b) records;
  Store.Element_store.freeze b

let rec_ ~doc ~start ~end_ ?(level = 0) ?(parent = -1) ?(children = 0)
    ?(tag = 0) ?(text = "") () =
  {
    Store.Element_rec.doc;
    start;
    end_;
    level;
    parent;
    child_count = children;
    tag;
    word_count = 0;
    text;
  }

let sample_records =
  [
    rec_ ~doc:0 ~start:0 ~end_:20 ~children:2 ~text:"root text" ();
    rec_ ~doc:0 ~start:1 ~end_:9 ~level:1 ~parent:0 ~text:"first child" ();
    rec_ ~doc:0 ~start:10 ~end_:19 ~level:1 ~parent:0 ~text:"second child" ();
    rec_ ~doc:1 ~start:0 ~end_:5 ~text:"another doc" ();
    rec_ ~doc:2 ~start:0 ~end_:3 ~text:"third" ();
  ]

let test_store_get () =
  let store = make_store sample_records in
  check int_ "element count" 5 (Store.Element_store.element_count store);
  check int_ "documents" 3 (Store.Element_store.document_count store);
  (match Store.Element_store.get store ~doc:0 ~start:10 with
  | Some r -> check int_ "end key" 19 r.Store.Element_rec.end_
  | None -> Alcotest.fail "expected record");
  check bool_ "missing" true (Store.Element_store.get store ~doc:0 ~start:5 = None);
  check bool_ "missing doc" true (Store.Element_store.get store ~doc:9 ~start:0 = None)

let test_store_get_text () =
  let store = make_store sample_records in
  check (Alcotest.option string_) "text" (Some "second child")
    (Store.Element_store.get_text store ~doc:0 ~start:10)

let test_store_scan () =
  let store = make_store sample_records in
  let seen = ref [] in
  Store.Element_store.scan store (fun r ->
      seen := (r.Store.Element_rec.doc, r.Store.Element_rec.start) :: !seen);
  check
    (Alcotest.list (Alcotest.pair int_ int_))
    "scan order"
    [ (0, 0); (0, 1); (0, 10); (1, 0); (2, 0) ]
    (List.rev !seen)

let test_store_scan_doc () =
  let store = make_store sample_records in
  let seen = ref 0 in
  Store.Element_store.scan_doc store ~doc:0 (fun _ -> incr seen);
  check int_ "doc 0 records" 3 !seen;
  seen := 0;
  Store.Element_store.scan_doc store ~doc:1 (fun _ -> incr seen);
  check int_ "doc 1 records" 1 !seen

let test_store_subtree_texts () =
  let store = make_store sample_records in
  check (Alcotest.list string_) "subtree"
    [ "root text"; "first child"; "second child" ]
    (Store.Element_store.subtree_texts store ~doc:0 ~start:0 ~end_:20);
  check (Alcotest.list string_) "inner" [ "first child" ]
    (Store.Element_store.subtree_texts store ~doc:0 ~start:1 ~end_:9)

let test_store_small_pages () =
  (* tiny pages force many page boundaries *)
  let records =
    List.init 50 (fun i ->
        rec_ ~doc:(i / 10) ~start:(i mod 10 * 3) ~end_:((i mod 10 * 3) + 2)
          ~text:(Printf.sprintf "text-%d" i) ())
  in
  let store = make_store ~page_size:32 records in
  check int_ "all stored" 50 (Store.Element_store.element_count store);
  List.iteri
    (fun i (r : Store.Element_rec.t) ->
      match Store.Element_store.get_text store ~doc:r.doc ~start:r.start with
      | Some text ->
        check string_ (Printf.sprintf "text %d" i)
          (Printf.sprintf "text-%d" i)
          text
      | None -> Alcotest.failf "record %d missing" i)
    records

let test_store_order_enforced () =
  let b = Store.Element_store.builder () in
  Store.Element_store.add b (rec_ ~doc:0 ~start:5 ~end_:6 ());
  Alcotest.check_raises "out of order"
    (Invalid_argument "Element_store.add: records out of order") (fun () ->
      Store.Element_store.add b (rec_ ~doc:0 ~start:2 ~end_:3 ()))

(* ------------------------------------------------------------------ *)
(* Parent index *)

let test_parent_index () =
  let b = Store.Parent_index.builder () in
  let entry ~parent ~children ~level ~end_ ~tag =
    { Store.Parent_index.parent; child_count = children; level; end_; tag }
  in
  Store.Parent_index.add b ~doc:0 ~start:0
    (entry ~parent:(-1) ~children:2 ~level:0 ~end_:20 ~tag:0);
  Store.Parent_index.add b ~doc:0 ~start:1
    (entry ~parent:0 ~children:0 ~level:1 ~end_:9 ~tag:1);
  Store.Parent_index.add b ~doc:0 ~start:10
    (entry ~parent:0 ~children:0 ~level:1 ~end_:19 ~tag:1);
  Store.Parent_index.add b ~doc:1 ~start:0
    (entry ~parent:(-1) ~children:0 ~level:0 ~end_:5 ~tag:2);
  let idx = Store.Parent_index.freeze b in
  check int_ "entries" 4 (Store.Parent_index.entry_count idx);
  (match Store.Parent_index.find idx ~doc:0 ~start:10 with
  | Some e ->
    check int_ "parent" 0 e.Store.Parent_index.parent;
    check int_ "end" 19 e.Store.Parent_index.end_
  | None -> Alcotest.fail "expected entry");
  check (Alcotest.option int_) "parent_of" (Some 0)
    (Store.Parent_index.parent_of idx ~doc:0 ~start:1);
  check (Alcotest.option int_) "root parent" None
    (Store.Parent_index.parent_of idx ~doc:1 ~start:0);
  check bool_ "missing" true (Store.Parent_index.find idx ~doc:0 ~start:7 = None);
  check bool_ "missing doc" true (Store.Parent_index.find idx ~doc:5 ~start:0 = None)

(* ------------------------------------------------------------------ *)
(* Histogram *)

let test_histogram_counts () =
  let h = Store.Histogram.create ~buckets:10 ~lo:0. ~hi:10. () in
  List.iter (Store.Histogram.add h) [ 0.5; 1.5; 2.5; 9.5; 9.9 ];
  check int_ "total" 5 (Store.Histogram.total h);
  check int_ "above 9" 2 (Store.Histogram.count_above h 9.);
  check int_ "above hi" 0 (Store.Histogram.count_above h 10.);
  check int_ "below lo" 5 (Store.Histogram.count_above h (-1.))

let test_histogram_threshold () =
  let values = List.init 100 (fun i -> float_of_int i) in
  let h = Store.Histogram.of_values ~buckets:100 values in
  let t = Store.Histogram.threshold_for_top h 10 in
  let above = List.length (List.filter (fun v -> v > t) values) in
  check bool_ "top-10 threshold" true (above >= 10 && above <= 12);
  check (Alcotest.float 1e-6) "everything" 0.
    (Store.Histogram.threshold_for_top h 1000)

let test_histogram_quantile () =
  let values = List.init 1000 (fun i -> float_of_int i /. 10.) in
  let h = Store.Histogram.of_values ~buckets:64 values in
  let q = Store.Histogram.quantile h 0.5 in
  check bool_ "median approx" true (q > 40. && q < 60.)

(* ------------------------------------------------------------------ *)
(* Db facade *)

let db = lazy (Store.Db.of_documents Workload.Paper_db.documents)

let test_db_stats () =
  let db = Lazy.force db in
  let s = Store.Db.stats db in
  check int_ "documents" 3 s.Store.Db.documents;
  (* articles.xml has 24 elements; review 1 has 7; review 2 has 5 *)
  check int_ "elements" 36 s.Store.Db.elements;
  check bool_ "terms indexed" true (s.Store.Db.distinct_terms > 20);
  check bool_ "occurrences" true (s.Store.Db.occurrences > 50)

let test_db_term_lookup () =
  let db = Lazy.force db in
  let idx = Store.Db.index db in
  check int_ "internet twice" 2 (Ir.Inverted_index.collection_freq idx "internet");
  (* "search": a11, a13, a18, a19, a20 *)
  check int_ "search occurrences" 5
    (Ir.Inverted_index.collection_freq idx "search")

let test_db_subtree () =
  let db = Lazy.force db in
  (* root of document 0 *)
  match Store.Db.subtree db ~doc:0 ~start:0 with
  | Some e -> check string_ "root tag" "article" e.Xmlkit.Tree.tag
  | None -> Alcotest.fail "expected root subtree"

let test_db_tag_of () =
  let db = Lazy.force db in
  check (Alcotest.option string_) "root tag" (Some "article")
    (Store.Db.tag_of db ~doc:0 ~start:0)

let test_db_word_positions_inside_intervals () =
  let db = Lazy.force db in
  let idx = Store.Db.index db in
  let elements = Store.Db.elements db in
  (* every occurrence's position lies strictly inside its owner's
     interval *)
  let ok = ref true in
  (match Ir.Inverted_index.lookup idx "search" with
  | None -> ok := false
  | Some p ->
    Ir.Postings.iter
      (fun (occ : Ir.Postings.occ) ->
        match Store.Element_store.get elements ~doc:occ.doc ~start:occ.node with
        | Some r ->
          if not (occ.pos > r.Store.Element_rec.start && occ.pos < r.Store.Element_rec.end_)
          then ok := false
        | None -> ok := false)
      p);
  check bool_ "positions inside owner intervals" true !ok

let test_db_no_trees_option () =
  let options = { Store.Db.default_options with keep_trees = false } in
  let db = Store.Db.of_documents ~options Workload.Paper_db.documents in
  check bool_ "no subtree" true (Store.Db.subtree db ~doc:0 ~start:0 = None);
  check int_ "still loaded" 3 (Store.Db.stats db).Store.Db.documents


(* model-based check: the pool never serves stale data and respects
   its capacity; a reference LRU model predicts hits and misses *)
let test_pager_lru_model =
  QCheck.Test.make ~name:"pager matches reference LRU model" ~count:200
    QCheck.(
      pair (int_range 1 6)
        (list_of_size (QCheck.Gen.int_range 1 60) (int_bound 9)))
    (fun (capacity, accesses) ->
      let pager = Store.Pager.create ~pool_pages:capacity ~page_size:4 () in
      for i = 0 to 9 do
        ignore (Store.Pager.append_page pager (Bytes.make 4 (Char.chr (48 + i))))
      done;
      (* reference model: list of page ids, most recent first *)
      let model = ref [] in
      let expected_misses = ref 0 in
      List.iter
        (fun page ->
          if List.mem page !model then
            model := page :: List.filter (fun p -> p <> page) !model
          else begin
            incr expected_misses;
            let kept =
              List.filteri (fun i _ -> i < capacity - 1) !model
            in
            model := page :: kept
          end)
        accesses;
      let ok_data =
        List.for_all
          (fun page ->
            Bytes.to_string (Store.Pager.read_page pager page)
            = String.make 4 (Char.chr (48 + page)))
          accesses
      in
      (* replay for stats on a fresh pager (reads above polluted it) *)
      let pager2 = Store.Pager.create ~pool_pages:capacity ~page_size:4 () in
      for i = 0 to 9 do
        ignore (Store.Pager.append_page pager2 (Bytes.make 4 (Char.chr (48 + i))))
      done;
      List.iter (fun page -> ignore (Store.Pager.read_page pager2 page)) accesses;
      let stats = Store.Pager.stats pager2 in
      ok_data && stats.Store.Pager.misses = !expected_misses)

let gen_element_rec =
  QCheck.Gen.(
    map
      (fun ((doc, start, span), (level, parent, children), (tag, words), text) ->
        {
          Store.Element_rec.doc;
          start;
          end_ = start + 1 + span;
          level;
          parent = parent - 1;
          child_count = children;
          tag;
          word_count = words;
          text;
        })
      (quad
         (triple (int_bound 100) (int_bound 10000) (int_bound 1000))
         (triple (int_bound 40) (int_bound 10000) (int_bound 50))
         (pair (int_bound 200) (int_bound 500))
         (string_size ~gen:(char_range 'a' 'z') (0 -- 30))))

let test_element_rec_property =
  QCheck.Test.make ~name:"element record roundtrip (random)" ~count:500
    (QCheck.make gen_element_rec) (fun r ->
      let buf = Buffer.create 64 in
      Store.Element_rec.encode buf r;
      let decoded, off =
        Store.Element_rec.decode ~doc:r.Store.Element_rec.doc
          (Buffer.to_bytes buf) 0
      in
      decoded = r && off = Buffer.length buf)

let test_histogram_count_above_property =
  QCheck.Test.make ~name:"histogram count_above is an upper bound" ~count:200
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_range 1 50) (float_range 0. 10.))
        (float_range 0. 10.))
    (fun (values, cut) ->
      let h = Store.Histogram.of_values ~buckets:32 values in
      let exact = List.length (List.filter (fun v -> v > cut) values) in
      Store.Histogram.count_above h cut >= exact)


(* ------------------------------------------------------------------ *)
(* Persistence *)

let test_db_save_open () =
  let db = Lazy.force db in
  let path = Filename.temp_file "tix" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Store.Db.save db path;
      let reopened = Store.Db.open_file_exn path in
      let s1 = Store.Db.stats db and s2 = Store.Db.stats reopened in
      check bool_ "same stats" true (s1 = s2);
      (* element records identical *)
      let dump d =
        let acc = ref [] in
        Store.Element_store.scan ~with_text:true (Store.Db.elements d)
          (fun r -> acc := r :: !acc);
        List.rev !acc
      in
      check bool_ "same records" true (dump db = dump reopened);
      (* index identical *)
      check int_ "term freq preserved" 5
        (Ir.Inverted_index.collection_freq (Store.Db.index reopened) "search");
      (* parent index rebuilt *)
      check (Alcotest.option int_) "parent rebuilt" (Some 0)
        (Store.Parent_index.parent_of (Store.Db.parents reopened) ~doc:0 ~start:1);
      (* tag index rebuilt *)
      (match Store.Catalog.tag_id (Store.Db.catalog reopened) "chapter" with
      | Some id ->
        check int_ "tag index rebuilt" 3
          (Store.Tag_index.count (Store.Db.tags reopened) ~tag:id)
      | None -> Alcotest.fail "chapter tag missing");
      (* no trees after reopen *)
      check bool_ "no trees" true
        (Store.Db.subtree reopened ~doc:0 ~start:0 = None))

let test_db_stats_section () =
  (* the optional TIXDB004 stats section: saved by default, loaded on
     open, and absent from a [~with_stats:false] compat image, which
     still opens and recomputes the same statistics from a scan *)
  let db = Lazy.force db in
  let path = Filename.temp_file "tix" ".db" in
  let path5 = Filename.temp_file "tix" ".db" in
  (* the framed section count is the varint right after the magic;
     both counts fit one byte *)
  let section_count_of p =
    let ic = open_in_bin p in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        seek_in ic 8;
        Char.code (input_char ic))
  in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path;
      Sys.remove path5)
    (fun () ->
      let s = Store.Db.collection_stats db in
      check bool_ "elements counted" true (s.Ir.Stats.elements > 0);
      check int_ "stats agree with store"
        (Store.Db.stats db).Store.Db.elements s.Ir.Stats.elements;
      Store.Db.save db path;
      check int_ "six sections with stats" 6 (section_count_of path);
      let reopened = Store.Db.open_file_exn path in
      check bool_ "persisted stats equal computed" true
        (Store.Db.collection_stats reopened = s);
      Store.Db.save ~with_stats:false db path5;
      check int_ "five sections without stats" 5 (section_count_of path5);
      let compat = Store.Db.open_file_exn path5 in
      check bool_ "compat image recomputes the same stats" true
        (Store.Db.collection_stats compat = s);
      check bool_ "compat image stats" true
        (Store.Db.stats compat = Store.Db.stats db))

let test_db_open_rejects_garbage () =
  let path = Filename.temp_file "tix" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "not a database";
      close_out oc;
      match Store.Db.open_file path with
      | Ok _ -> Alcotest.fail "expected a failure"
      | Error (Store.Db.Not_a_database _) -> ()
      | Error e ->
        Alcotest.failf "expected Not_a_database, got: %s"
          (Store.Db.error_to_string e))

let test_persistence_query_agreement () =
  (* access methods give identical results on the reopened image *)
  let db = Lazy.force db in
  let path = Filename.temp_file "tix" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Store.Db.save db path;
      let reopened = Store.Db.open_file_exn path in
      let run d =
        Access.Term_join.to_list (Access.Ctx.of_db d)
          ~terms:[ "search"; "retrieval" ]
      in
      check bool_ "same scored nodes" true (run db = run reopened))

let test_db_v3_upgrade () =
  (* a legacy TIXDB003 image opens transparently, answers queries
     identically, and resaving it writes the current format *)
  let db = Lazy.force db in
  let path = Filename.temp_file "tix" ".db" in
  let path_v4 = Filename.temp_file "tix" ".db" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove path;
      Sys.remove path_v4)
    (fun () ->
      Store.Db.save_v3 db path;
      let magic_of p =
        let ic = open_in_bin p in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic 8)
      in
      check string_ "legacy magic" "TIXDB003" (magic_of path);
      let upgraded =
        match Store.Db.open_file path with
        | Ok d -> d
        | Error e -> Alcotest.failf "v3 open failed: %s" (Store.Db.error_to_string e)
      in
      check bool_ "same stats" true (Store.Db.stats db = Store.Db.stats upgraded);
      let run d =
        Access.Term_join.to_list (Access.Ctx.of_db d)
          ~terms:[ "search"; "retrieval" ]
      in
      check bool_ "same scored nodes" true (run db = run upgraded);
      (* parent and tag indexes were rebuilt by the upgrade scan *)
      check (Alcotest.option int_) "parent rebuilt" (Some 0)
        (Store.Parent_index.parent_of (Store.Db.parents upgraded) ~doc:0 ~start:1);
      (* resave: the upgraded database writes the current format *)
      Store.Db.save upgraded path_v4;
      check string_ "resave migrates" "TIXDB004" (magic_of path_v4);
      let reopened = Store.Db.open_file_exn path_v4 in
      check bool_ "migrated image agrees" true (run db = run reopened))

let test_db_mapped_lazy_pages () =
  (* a mapped image materializes element pages on first touch only;
     the pager is born pinned (no verification scan needed) *)
  let db = Lazy.force db in
  let path = Filename.temp_file "tix" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Store.Db.save db path;
      let mapped = Store.Db.open_file_exn path in
      let pager = Store.Element_store.pager (Store.Db.elements mapped) in
      (match Store.Pager.pin pager with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "pin on mapped pager: %a" Store.Pager.pp_read_error e);
      let s0 = Store.Pager.stats pager in
      check int_ "no pages touched yet" 0 s0.Store.Pager.misses;
      ignore (Store.Pager.read_page pager 0);
      ignore (Store.Pager.read_page pager 0);
      let s1 = Store.Pager.stats pager in
      check int_ "one materialization" 1 s1.Store.Pager.misses;
      check int_ "both reads counted" 2 s1.Store.Pager.reads;
      (* a mapped pager is an immutable snapshot *)
      Alcotest.check_raises "append rejected"
        (Invalid_argument "Pager.append_page: image-backed pager is immutable")
        (fun () -> ignore (Store.Pager.append_page pager (Bytes.create 1))))

let test_db_lazy_verify () =
  (* a lazy open serves immediately with the CRC pass still pending,
     answers identically to an eager open, and the background scan
     lands `Verified on an intact image *)
  let db = Lazy.force db in
  let path = Filename.temp_file "tix" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Store.Db.save db path;
      check bool_ "in-memory db is verified" true
        (Store.Db.verification db = `Verified);
      let eager = Store.Db.open_file_exn ~verify:`Eager path in
      check bool_ "eager open is verified" true
        (Store.Db.verification eager = `Verified);
      let lazy_db = Store.Db.open_file_exn ~verify:`Lazy path in
      (* usable before the verdict: same answers as the eager open *)
      let run d =
        Access.Term_join.to_list (Access.Ctx.of_db d)
          ~terms:[ "search"; "retrieval" ]
      in
      check bool_ "lazy open agrees" true (run eager = run lazy_db);
      (match Store.Db.await_verification lazy_db with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "background verify failed: %s"
          (Store.Db.error_to_string e));
      check bool_ "verdict lands Verified" true
        (Store.Db.verification lazy_db = `Verified);
      (* awaiting again is immediate and stable *)
      check bool_ "await idempotent" true
        (Store.Db.await_verification lazy_db = Ok ()))

let test_db_lazy_verify_corruption () =
  (* flip one payload byte: the eager open refuses, the lazy open
     serves (framing is intact) but its background scan lands
     `Failed with the checksum error *)
  let db = Lazy.force db in
  let path = Filename.temp_file "tix" ".db" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Store.Db.save db path;
      let size = (Unix.stat path).Unix.st_size in
      let off = size / 2 in
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          ignore (Unix.lseek fd off Unix.SEEK_SET);
          let b = Bytes.create 1 in
          ignore (Unix.read fd b 0 1);
          Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 0xFF));
          ignore (Unix.lseek fd off Unix.SEEK_SET);
          ignore (Unix.write fd b 0 1));
      (match Store.Db.open_file ~verify:`Eager path with
      | Ok _ -> Alcotest.fail "eager open accepted a corrupt image"
      | Error (Store.Db.Checksum_mismatch _) -> ()
      | Error e ->
        Alcotest.failf "expected Checksum_mismatch, got: %s"
          (Store.Db.error_to_string e));
      match Store.Db.open_file ~verify:`Lazy path with
      | Error e ->
        Alcotest.failf "lazy open refused a structurally sound image: %s"
          (Store.Db.error_to_string e)
      | Ok lazy_db ->
        (match Store.Db.await_verification lazy_db with
        | Ok () -> Alcotest.fail "background verify missed the corruption"
        | Error (Store.Db.Checksum_mismatch _) -> ()
        | Error e ->
          Alcotest.failf "expected Checksum_mismatch, got: %s"
            (Store.Db.error_to_string e));
        match Store.Db.verification lazy_db with
        | `Failed (Store.Db.Checksum_mismatch _) -> ()
        | `Failed e ->
          Alcotest.failf "expected Checksum_mismatch, got: %s"
            (Store.Db.error_to_string e)
        | `Verified | `Pending -> Alcotest.fail "verdict not Failed")

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "store"
    [
      ( "pager",
        [
          tc "basics" `Quick test_pager_basics;
          tc "stats" `Quick test_pager_stats;
          tc "eviction" `Quick test_pager_eviction;
          tc "clear pool" `Quick test_pager_clear_pool;
          QCheck_alcotest.to_alcotest test_pager_lru_model;
        ] );
      ( "element_rec",
        [
          tc "roundtrip" `Quick test_element_rec_roundtrip;
          tc "meta decode" `Quick test_element_rec_meta;
          tc "root parent" `Quick test_element_rec_root;
          QCheck_alcotest.to_alcotest test_element_rec_property;
        ] );
      ( "element_store",
        [
          tc "get" `Quick test_store_get;
          tc "get text" `Quick test_store_get_text;
          tc "scan" `Quick test_store_scan;
          tc "scan doc" `Quick test_store_scan_doc;
          tc "subtree texts" `Quick test_store_subtree_texts;
          tc "small pages" `Quick test_store_small_pages;
          tc "order enforced" `Quick test_store_order_enforced;
        ] );
      ("parent_index", [ tc "find" `Quick test_parent_index ]);
      ( "histogram",
        [
          tc "counts" `Quick test_histogram_counts;
          tc "threshold" `Quick test_histogram_threshold;
          tc "quantile" `Quick test_histogram_quantile;
          QCheck_alcotest.to_alcotest test_histogram_count_above_property;
        ] );
      ( "db",
        [
          tc "stats" `Quick test_db_stats;
          tc "term lookup" `Quick test_db_term_lookup;
          tc "subtree" `Quick test_db_subtree;
          tc "tag_of" `Quick test_db_tag_of;
          tc "positions inside intervals" `Quick
            test_db_word_positions_inside_intervals;
          tc "keep_trees off" `Quick test_db_no_trees_option;
        ] );
      ( "persistence",
        [
          tc "save and reopen" `Quick test_db_save_open;
          tc "stats section" `Quick test_db_stats_section;
          tc "rejects garbage" `Quick test_db_open_rejects_garbage;
          tc "query agreement" `Quick test_persistence_query_agreement;
          tc "v3 transparent upgrade" `Quick test_db_v3_upgrade;
          tc "mapped lazy pages" `Quick test_db_mapped_lazy_pages;
          tc "lazy verify" `Quick test_db_lazy_verify;
          tc "lazy verify catches corruption" `Quick
            test_db_lazy_verify_corruption;
        ] );
    ]
