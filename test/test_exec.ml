(* Parallel executor tests: partition planner invariants, determinism
   of the parallel access methods against their sequential forms (at 2
   and 4 domains, under the planner's chunking and under randomized
   chunkings down to single-block ranges), the shared governor budget
   tripping exactly once, and the engine-level parallelism and
   steps_used plumbing. *)

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Corpus: planted terms spread over enough documents that the planner
   has real block boundaries to cut at, with frequencies chosen so
   many documents tie on score (the tie-break path must survive
   partitioning). *)

let cfg =
  {
    Workload.Corpus.articles = 30;
    seed = 11;
    chapters_per_article = 2;
    sections_per_chapter = 2;
    paragraphs_per_section = 3;
    words_per_paragraph = 16;
    vocabulary = 200;
    planted_terms = [ ("pxone", 150); ("pxtwo", 90); ("pxrare", 7) ];
    planted_phrases = [ ("pxpa", "pxpb", 20) ];
  }

let db =
  lazy
    (let options = { Store.Db.default_options with keep_trees = false } in
     Store.Db.load ~options (Workload.Corpus.generate cfg))

let ctx = lazy (Access.Ctx.of_db (Lazy.force db))
let terms = [ "pxone"; "pxtwo" ]
let phrase = [ "pxpa"; "pxpb" ]

let same_nodes what (expected : Access.Scored_node.t list)
    (got : Access.Scored_node.t list) =
  check int_ (what ^ ": cardinality") (List.length expected) (List.length got);
  check bool_ (what ^ ": identical") true (expected = got)

let same_docs what (expected : (int * float) list) (got : (int * float) list) =
  check int_ (what ^ ": cardinality") (List.length expected) (List.length got);
  check bool_ (what ^ ": identical") true (expected = got)

(* ------------------------------------------------------------------ *)
(* Partition planner *)

let test_partition_invariants () =
  let ctx = Lazy.force ctx in
  let check_ranges chunks ranges =
    check bool_ "at least one range" true (ranges <> []);
    check bool_
      (Printf.sprintf "at most %d ranges" chunks)
      true
      (List.length ranges <= max 1 chunks);
    (match ranges with
    | (lo, _) :: _ -> check int_ "first lo = 0" 0 lo
    | [] -> ());
    let rec walk = function
      | [ (_, hi) ] -> check bool_ "last hi = max_int" true (hi = max_int)
      | (lo, hi) :: ((lo', _) :: _ as rest) ->
        check bool_ "non-empty interval" true (lo < hi);
        check int_ "intervals abut" hi lo';
        walk rest
      | [] -> ()
    in
    walk ranges
  in
  List.iter
    (fun chunks ->
      check_ranges chunks (Exec.Partition.plan ctx ~terms ~chunks))
    [ 1; 2; 3; 4; 8; 64 ];
  check bool_ "chunks=1 is the whole space" true
    (Exec.Partition.plan ctx ~terms ~chunks:1 = [ (0, max_int) ]);
  (* an unknown term contributes no postings but must not break the
     planner *)
  check bool_ "unknown term tolerated" true
    (Exec.Partition.plan ctx ~terms:[ "nosuchterm" ] ~chunks:4 <> [])

(* ------------------------------------------------------------------ *)
(* Determinism under the planner's chunking, 2 and 4 domains *)

let test_parallel_matches_sequential () =
  let ctx = Lazy.force ctx in
  let complex = Access.Counter_scoring.Complex in
  List.iter
    (fun parallelism ->
      let p = string_of_int parallelism in
      same_nodes ("term_join/" ^ p)
        (Access.Term_join.to_list ctx ~terms)
        (Exec.Par.term_join ~parallelism ctx ~terms);
      same_nodes
        ("term_join-complex/" ^ p)
        (Access.Term_join.to_list ~mode:complex ctx ~terms)
        (Exec.Par.term_join ~mode:complex ~parallelism ctx ~terms);
      same_nodes ("enhanced/" ^ p)
        (Access.Term_join.to_list ~variant:Access.Term_join.Enhanced
           ~mode:complex ctx ~terms)
        (Exec.Par.term_join ~variant:Access.Term_join.Enhanced ~mode:complex
           ~parallelism ctx ~terms);
      same_nodes ("gen_meet/" ^ p)
        (Access.Gen_meet.to_list ctx ~terms)
        (Exec.Par.gen_meet ~parallelism ctx ~terms);
      same_nodes ("phrase/" ^ p)
        (Access.Phrase_finder.to_list ctx ~phrase)
        (Exec.Par.phrase ~parallelism ctx ~phrase);
      List.iter
        (fun k ->
          same_docs
            (Printf.sprintf "ranked-k%d/%s" k p)
            (Access.Ranked.top_k_docs ctx ~terms ~k)
            (Exec.Par.top_k_docs ~parallelism ctx ~terms ~k))
        [ 1; 3; 10; 1000 ])
    [ 2; 4 ]

(* ties at the k-th rank: every planted occurrence of a term scores
   identically in many documents, so doc-id tie-breaking decides the
   cut — the parallel merge must reproduce it exactly *)
let test_ranked_tie_breaking () =
  let ctx = Lazy.force ctx in
  let seq = Access.Ranked.top_k_docs ctx ~terms:[ "pxone" ] ~k:7 in
  (* the corpus must actually exercise ties for this test to mean
     anything *)
  let scores = List.map snd seq in
  check bool_ "corpus produces score ties" true
    (List.length (List.sort_uniq compare scores) < List.length scores);
  List.iter
    (fun parallelism ->
      same_docs
        (Printf.sprintf "tied-k7/%d" parallelism)
        seq
        (Exec.Par.top_k_docs ~parallelism ctx ~terms:[ "pxone" ] ~k:7))
    [ 2; 3; 4 ]

(* ------------------------------------------------------------------ *)
(* Randomized chunkings: arbitrary covering range lists — including
   degenerate single-document and empty-interior chunks — must not
   change any result. *)

let ranges_of_cuts cuts =
  let cuts = List.sort_uniq compare (List.filter (fun c -> c > 0) cuts) in
  let rec go lo = function
    | [] -> [ (lo, max_int) ]
    | c :: rest -> (lo, c) :: go c rest
  in
  go 0 cuts

let chunking_gen =
  QCheck.Gen.(
    map2
      (fun parallelism cuts -> (parallelism, cuts))
      (int_range 2 4)
      (list_size (int_range 0 12) (int_range 1 40)))

let test_random_chunking_property =
  QCheck.Test.make ~name:"random chunkings = sequential" ~count:40
    (QCheck.make chunking_gen) (fun (parallelism, cuts) ->
      let ctx = Lazy.force ctx in
      let ranges = ranges_of_cuts cuts in
      Access.Term_join.to_list ctx ~terms
      = Exec.Par.term_join ~ranges ~parallelism ctx ~terms
      && Access.Phrase_finder.to_list ctx ~phrase
         = Exec.Par.phrase ~ranges ~parallelism ctx ~phrase
      && Access.Ranked.top_k_docs ctx ~terms ~k:5
         = Exec.Par.top_k_docs ~ranges ~parallelism ctx ~terms ~k:5)

(* one-document chunks: the finest chunking possible (every chunk
   covers at most one skip block's worth of documents) *)
let test_single_doc_chunks () =
  let ctx = Lazy.force ctx in
  let docs = Store.Catalog.document_count ctx.Access.Ctx.catalog in
  let ranges = ranges_of_cuts (List.init docs (fun i -> i + 1)) in
  check bool_ "one chunk per document" true (List.length ranges > docs);
  same_nodes "term_join/1-doc-chunks"
    (Access.Term_join.to_list ctx ~terms)
    (Exec.Par.term_join ~ranges ~parallelism:4 ctx ~terms);
  same_docs "ranked/1-doc-chunks"
    (Access.Ranked.top_k_docs ctx ~terms ~k:10)
    (Exec.Par.top_k_docs ~ranges ~parallelism:4 ctx ~terms ~k:10)

(* ------------------------------------------------------------------ *)
(* Shared governor budget *)

let test_shared_budget_trips_once () =
  let ctx = Lazy.force ctx in
  let limits = Core.Governor.limits ~max_steps:10 () in
  let sh = Core.Governor.make_shared limits in
  let raised = ref 0 in
  (match Exec.Par.term_join ~shared:sh ~parallelism:4 ctx ~terms with
  | _ -> Alcotest.fail "10-step budget not enforced"
  | exception Core.Governor.Resource_exhausted v ->
    incr raised;
    check bool_ "violation is Steps" true (v.Core.Governor.reason = Core.Governor.Steps));
  check int_ "raised exactly once" 1 !raised;
  (* every domain observed (or caused) the same trip *)
  (match Core.Governor.shared_violation sh with
  | Some v ->
    check bool_ "shared violation is Steps" true
      (v.Core.Governor.reason = Core.Governor.Steps)
  | None -> Alcotest.fail "budget tripped but no shared violation recorded");
  check bool_ "steps accounted" true (Core.Governor.shared_steps sh >= 10)

let test_shared_budget_not_tripped () =
  let ctx = Lazy.force ctx in
  let sh = Core.Governor.make_shared Core.Governor.unlimited in
  let results = Exec.Par.term_join ~shared:sh ~parallelism:2 ctx ~terms in
  check bool_ "results flow" true (results <> []);
  check bool_ "no violation" true (Core.Governor.shared_violation sh = None);
  (* the parallel run accounts at least one step per emitted node *)
  check bool_ "steps >= results" true
    (Core.Governor.shared_steps sh >= List.length results)

(* ------------------------------------------------------------------ *)
(* Engine plumbing: ?parallelism and steps_used *)

let snapshot =
  lazy
    (match Service.Engine.of_db (Lazy.force db) with
    | Ok s -> s
    | Error msg -> Alcotest.failf "of_db: %s" msg)

let exec_rows ?parallelism req =
  match Service.Engine.exec ?parallelism (Lazy.force snapshot) req with
  | Ok r -> r
  | Error e -> Alcotest.failf "exec: %s" (Service.Engine.error_message e)

let test_engine_parallel_identical () =
  let reqs =
    [
      ( "search",
        Service.Engine.Search
          { terms; method_ = Service.Engine.Termjoin; complex = true; anchor = None } );
      ( "genmeet",
        Service.Engine.Search
          { terms; method_ = Service.Engine.Genmeet; complex = false; anchor = None } );
      ("phrase", Service.Engine.Phrase { phrase = "pxpa pxpb"; comp3 = false });
      ("ranked", Service.Engine.Ranked { terms });
    ]
  in
  List.iter
    (fun (name, req) ->
      let seq = exec_rows req in
      let par = exec_rows ~parallelism:4 req in
      check int_ (name ^ ": total") seq.Service.Engine.total
        par.Service.Engine.total;
      check bool_ (name ^ ": rows identical") true
        (seq.Service.Engine.rows = par.Service.Engine.rows))
    reqs

let test_engine_steps_used () =
  let req =
    Service.Engine.Search
      { terms; method_ = Service.Engine.Termjoin; complex = false; anchor = None }
  in
  let seq = exec_rows req in
  check bool_ "sequential steps_used > 0" true
    (seq.Service.Engine.steps_used > 0);
  let par = exec_rows ~parallelism:2 req in
  check bool_ "parallel steps_used > 0" true
    (par.Service.Engine.steps_used > 0);
  (* a cache hit costs no governor steps *)
  let caches =
    {
      Service.Engine.plans = Service.Lru.create ~capacity:8;
      results = Service.Lru.create ~capacity:8;
    }
  in
  let run () =
    match Service.Engine.exec ~caches (Lazy.force snapshot) req with
    | Ok r -> r
    | Error e -> Alcotest.failf "exec: %s" (Service.Engine.error_message e)
  in
  ignore (run () : Service.Engine.result);
  let cached = run () in
  check bool_ "second run cached" true cached.Service.Engine.cached;
  check int_ "cached steps_used = 0" 0 cached.Service.Engine.steps_used

let test_engine_parallel_budget_error () =
  let limits = Core.Governor.limits ~max_steps:5 () in
  let req =
    Service.Engine.Search
      { terms; method_ = Service.Engine.Termjoin; complex = false; anchor = None }
  in
  match
    Service.Engine.exec ~limits ~parallelism:4 (Lazy.force snapshot) req
  with
  | Ok _ -> Alcotest.fail "5-step budget not enforced"
  | Error (Service.Engine.Exhausted v) ->
    check bool_ "typed steps violation" true
      (v.Core.Governor.reason = Core.Governor.Steps)
  | Error e ->
    Alcotest.failf "wrong error: %s" (Service.Engine.error_message e)

(* the fan-out shows up in the span tree: one Parallel span with one
   Partition child per chunk *)
let test_parallel_trace_spans () =
  let ctx = Lazy.force ctx in
  let tracer = Core.Trace.make () in
  let _ = Exec.Par.term_join ~trace:tracer ~parallelism:2 ctx ~terms in
  match Core.Trace.root tracer with
  | None -> Alcotest.fail "no span recorded"
  | Some sp ->
    check bool_ "root is Parallel" true (sp.Core.Trace.name = "Parallel");
    check bool_ "has Partition children" true
      (sp.Core.Trace.children <> []
      && List.for_all
           (fun c -> c.Core.Trace.name = "Partition")
           sp.Core.Trace.children)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "exec"
    [
      ("partition", [ tc "planner invariants" `Quick test_partition_invariants ]);
      ( "determinism",
        [
          tc "parallel = sequential (2/4 domains)" `Quick
            test_parallel_matches_sequential;
          tc "ranked tie-breaking" `Quick test_ranked_tie_breaking;
          tc "single-doc chunks" `Quick test_single_doc_chunks;
          QCheck_alcotest.to_alcotest test_random_chunking_property;
        ] );
      ( "shared budget",
        [
          tc "trips exactly once" `Quick test_shared_budget_trips_once;
          tc "accounts without tripping" `Quick test_shared_budget_not_tripped;
        ] );
      ( "engine",
        [
          tc "parallel rows identical" `Quick test_engine_parallel_identical;
          tc "steps_used" `Quick test_engine_steps_used;
          tc "budget error is typed" `Quick test_engine_parallel_budget_error;
          tc "trace fan-out" `Quick test_parallel_trace_spans;
        ] );
    ]
