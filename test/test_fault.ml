(* Robustness tests: the fault-injection harness, checksummed image
   persistence (corruption sweep), the per-query resource governor
   and error-isolated bulk load.

   The central properties:
   - under injected storage faults, every access method either
     succeeds with exactly the fault-free scores or fails with a
     typed [Pager.Read_error] — never a crash, never wrong results;
   - any single-byte corruption of a saved image is reported as a
     typed [Db.error] by [open_file] — never an exception, never a
     silently wrong database;
   - a breached resource budget surfaces as
     [Governor.Resource_exhausted] and leaves the evaluator usable;
     ample budgets change nothing. *)

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool

let fresh_db () = Store.Db.of_documents Workload.Paper_db.documents

let pager_of db = Store.Element_store.pager (Store.Db.elements db)

(* ------------------------------------------------------------------ *)
(* Fault injector *)

let test_fault_deterministic () =
  let f1 = Store.Fault.create ~seed:9 ~transient_rate:0.5 ~corrupt_rate:0.2 () in
  let f2 = Store.Fault.create ~seed:9 ~transient_rate:0.5 ~corrupt_rate:0.2 () in
  for page = 0 to 50 do
    for attempt = 0 to 5 do
      check bool_ "same outcome" true
        (Store.Fault.outcome f1 ~page ~attempt
        = Store.Fault.outcome f2 ~page ~attempt)
    done
  done

let test_fault_zero_rates_healthy () =
  let f = Store.Fault.create ~seed:1 () in
  for page = 0 to 100 do
    check bool_ "healthy" true
      (Store.Fault.outcome f ~page ~attempt:0 = Store.Fault.Healthy)
  done

let test_fault_corruption_permanent () =
  let f = Store.Fault.create ~seed:3 ~corrupt_rate:0.5 () in
  for page = 0 to 50 do
    let first = Store.Fault.outcome f ~page ~attempt:0 in
    for attempt = 1 to 5 do
      check bool_ "corruption sticks to the page" true
        (Store.Fault.outcome f ~page ~attempt = first)
    done
  done

let test_fault_corrupt_changes_bytes () =
  let f = Store.Fault.create ~seed:4 ~corrupt_rate:1.0 () in
  let page = Bytes.make 64 'a' in
  let before = Bytes.copy page in
  Store.Fault.corrupt_in_place f ~page:0 page;
  check bool_ "bytes changed" false (Bytes.equal before page)

(* ------------------------------------------------------------------ *)
(* Pager under faults *)

let faulty_pager ?seed ?transient_rate ?corrupt_rate ?max_retries () =
  let pager = Store.Pager.create ~page_size:32 () in
  for i = 0 to 7 do
    ignore (Store.Pager.append_page pager (Bytes.make 32 (Char.chr (65 + i))))
  done;
  Store.Pager.set_fault pager
    (Some (Store.Fault.create ?seed ?transient_rate ?corrupt_rate ?max_retries ()));
  pager

let test_pager_retries_transients () =
  (* at a moderate transient rate every read eventually succeeds, and
     served bytes are exactly what was written *)
  let pager = faulty_pager ~seed:11 ~transient_rate:0.4 ~max_retries:64 () in
  for i = 0 to 7 do
    check bool_ "correct bytes through retries" true
      (Bytes.equal (Store.Pager.read_page pager i) (Bytes.make 32 (Char.chr (65 + i))))
  done;
  check int_ "no failures" 0 (Store.Pager.stats pager).Store.Pager.failures

let test_pager_transient_exhausted () =
  let pager = faulty_pager ~seed:12 ~transient_rate:1.0 ~max_retries:3 () in
  (match Store.Pager.read_page_result pager 0 with
  | Ok _ -> Alcotest.fail "expected exhausted retries"
  | Error e ->
    check bool_ "kind" true (e.Store.Pager.kind = Store.Pager.Transient_exhausted);
    check int_ "attempts = 1 + retries" 4 e.Store.Pager.attempts);
  check int_ "failure counted" 1 (Store.Pager.stats pager).Store.Pager.failures;
  (* the exception variant raises the same typed error *)
  match Store.Pager.read_page pager 1 with
  | _ -> Alcotest.fail "expected Read_error"
  | exception Store.Pager.Read_error e ->
    check bool_ "kind" true (e.Store.Pager.kind = Store.Pager.Transient_exhausted)

let test_pager_detects_corruption () =
  let pager = faulty_pager ~seed:13 ~corrupt_rate:1.0 () in
  (match Store.Pager.read_page_result pager 0 with
  | Ok _ -> Alcotest.fail "expected checksum mismatch"
  | Error e ->
    check bool_ "kind" true (e.Store.Pager.kind = Store.Pager.Checksum_mismatch));
  check int_ "failure counted" 1 (Store.Pager.stats pager).Store.Pager.failures

let test_pager_out_of_bounds_message () =
  let pager = faulty_pager () in
  (match Store.Pager.read_page pager 99 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
    let contains s sub =
      let n = String.length sub in
      let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    check bool_ "names the page id" true (contains msg "99");
    check bool_ "names the page count" true (contains msg "8"));
  check int_ "failure counted" 1 (Store.Pager.stats pager).Store.Pager.failures

let test_pager_fault_free_hits_unaffected () =
  (* resident frames never consult the injector *)
  let pager = faulty_pager () in
  Store.Pager.set_fault pager None;
  let bytes = Bytes.copy (Store.Pager.read_page pager 0) in
  Store.Pager.set_fault pager
    (Some (Store.Fault.create ~seed:1 ~transient_rate:1.0 ~corrupt_rate:1.0 ()));
  check bool_ "hit served from pool" true
    (Bytes.equal bytes (Store.Pager.read_page pager 0))

(* ------------------------------------------------------------------ *)
(* Access methods under injected faults *)

let key_score_list nodes =
  List.map
    (fun (n : Access.Scored_node.t) -> ((n.doc, n.start), n.score))
    (List.sort Access.Scored_node.compare_pos nodes)

(* Run [f] on a fresh paper database with faults injected at the
   storage layer; either it agrees exactly with the fault-free
   baseline or it raises the typed read error. Returns whether the
   run survived. *)
let run_under_faults ~seed ~transient_rate ~corrupt_rate f =
  let baseline = f (fresh_db ()) in
  let db = fresh_db () in
  let pager = pager_of db in
  Store.Pager.set_fault pager
    (Some (Store.Fault.create ~seed ~transient_rate ~corrupt_rate ()));
  Store.Pager.clear_pool pager;
  match f db with
  | results ->
    check bool_ "faulty run agrees with baseline" true
      (key_score_list results = key_score_list baseline);
    true
  | exception Store.Pager.Read_error _ -> false

let rates = [ (0.0, 0.0); (0.3, 0.0); (0.0, 0.3); (0.5, 0.5); (1.0, 1.0) ]

let sweep_method name f =
  List.iteri
    (fun i (transient_rate, corrupt_rate) ->
      List.iter
        (fun seed ->
          ignore (run_under_faults ~seed ~transient_rate ~corrupt_rate f);
          (* outcome (survive or typed error) is all we assert; both
             are valid depending on where the faults land *)
          ignore name;
          ignore i)
        [ 1; 7; 42 ])
    rates

let test_term_join_under_faults () =
  sweep_method "termjoin" (fun db ->
      Access.Term_join.to_list (Access.Ctx.of_db db)
        ~terms:[ "search"; "retrieval" ])

let test_term_join_enhanced_under_faults () =
  sweep_method "enhanced" (fun db ->
      Access.Term_join.to_list ~variant:Access.Term_join.Enhanced
        ~mode:Access.Counter_scoring.Complex (Access.Ctx.of_db db)
        ~terms:[ "search"; "internet" ])

let test_gen_meet_under_faults () =
  sweep_method "genmeet" (fun db ->
      Access.Gen_meet.to_list ~mode:Access.Counter_scoring.Complex
        (Access.Ctx.of_db db) ~terms:[ "search"; "retrieval" ])

let test_phrase_finder_under_faults () =
  sweep_method "phrasefinder" (fun db ->
      Access.Phrase_finder.to_list (Access.Ctx.of_db db)
        ~phrase:[ "search"; "engine" ])

let test_transient_only_faults_always_recover () =
  (* below rate 1, bounded retry converges: a transient-only fault
     load must never surface an error with a generous retry budget.
     Complex scoring with the plain variant pays a data access per
     node, so the pager is actually exercised. *)
  let injected = ref 0 in
  List.iter
    (fun seed ->
      let run db =
        Access.Term_join.to_list ~mode:Access.Counter_scoring.Complex
          (Access.Ctx.of_db db) ~terms:[ "search"; "retrieval" ]
      in
      let baseline = run (fresh_db ()) in
      let db = fresh_db () in
      let pager = pager_of db in
      Store.Pager.set_fault pager
        (Some
           (Store.Fault.create ~seed ~transient_rate:0.6 ~max_retries:64 ()));
      Store.Pager.clear_pool pager;
      let results = run db in
      check bool_ "recovered to exact scores" true
        (key_score_list results = key_score_list baseline);
      let f = Option.get (Store.Pager.fault pager) in
      injected := !injected + (Store.Fault.stats f).Store.Fault.transient)
    [ 2; 3; 5; 8 ];
  (* the paper db is tiny (few pool misses), so individual seeds may
     roll healthy; across the seeds faults must actually fire *)
  check bool_ "faults were actually injected" true (!injected > 0)

let test_full_corruption_never_crashes () =
  (* 100% corruption: every cold read must fail with the typed error *)
  let db = fresh_db () in
  let pager = pager_of db in
  Store.Pager.set_fault pager
    (Some (Store.Fault.create ~seed:21 ~corrupt_rate:1.0 ()));
  Store.Pager.clear_pool pager;
  match
    Access.Term_join.to_list ~mode:Access.Counter_scoring.Complex
      (Access.Ctx.of_db db) ~terms:[ "search"; "retrieval" ]
  with
  | _ -> Alcotest.fail "expected a typed read error"
  | exception Store.Pager.Read_error e ->
    check bool_ "checksum caught it" true
      (e.Store.Pager.kind = Store.Pager.Checksum_mismatch)

(* ------------------------------------------------------------------ *)
(* Corruption sweep over the saved image *)

let with_saved_image f =
  let db = fresh_db () in
  let path = Filename.temp_file "tix_fault" ".tix" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Store.Db.save db path;
      f db path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let test_corruption_sweep_byte_flips () =
  with_saved_image (fun _db path ->
      let image = read_file path in
      let n = String.length image in
      check bool_ "image is non-trivial" true (n > 64);
      (* flip one byte at every offset: the header and framing are
         structurally checked, every payload byte is under a CRC, so
         each flip must yield a typed error *)
      for off = 0 to n - 1 do
        let damaged = Bytes.of_string image in
        Bytes.set damaged off
          (Char.chr (Char.code image.[off] lxor 0x01));
        write_file path (Bytes.to_string damaged);
        match Store.Db.open_file path with
        | Ok _ -> Alcotest.failf "flip at offset %d went undetected" off
        | Error _ -> ()
      done)

let test_corruption_sweep_truncation () =
  with_saved_image (fun _db path ->
      let image = read_file path in
      let n = String.length image in
      (* truncate at a spread of lengths including 0 and n-1 *)
      let cuts = [ 0; 1; 4; 8; 12; n / 4; n / 2; n - 17; n - 1 ] in
      List.iter
        (fun len ->
          if len >= 0 && len < n then begin
            write_file path (String.sub image 0 len);
            match Store.Db.open_file path with
            | Ok _ -> Alcotest.failf "truncation to %d went undetected" len
            | Error _ -> ()
          end)
        cuts)

let test_corruption_sweep_legacy_image () =
  (* the TIXDB003 upgrade path gets the same guarantees: every
     single-byte flip of a legacy image is a typed error, and the
     pristine legacy image still opens *)
  let db = fresh_db () in
  let path = Filename.temp_file "tix_fault" ".tix" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Store.Db.save_v3 db path;
      let image = read_file path in
      let n = String.length image in
      check bool_ "legacy image is non-trivial" true (n > 64);
      for off = 0 to n - 1 do
        let damaged = Bytes.of_string image in
        Bytes.set damaged off (Char.chr (Char.code image.[off] lxor 0x01));
        write_file path (Bytes.to_string damaged);
        match Store.Db.open_file path with
        | Ok _ -> Alcotest.failf "legacy flip at offset %d went undetected" off
        | Error _ -> ()
      done;
      write_file path image;
      match Store.Db.open_file path with
      | Ok upgraded ->
        check bool_ "pristine legacy upgrades" true
          (Store.Db.stats db = Store.Db.stats upgraded)
      | Error e ->
        Alcotest.failf "pristine legacy rejected: %s" (Store.Db.error_to_string e))

let test_corruption_reports_right_variant () =
  with_saved_image (fun _db path ->
      let image = read_file path in
      (* not a database at all *)
      write_file path "these are not the bytes you are looking for";
      (match Store.Db.open_file path with
      | Error (Store.Db.Not_a_database _) -> ()
      | Error e ->
        Alcotest.failf "wanted Not_a_database, got %s" (Store.Db.error_to_string e)
      | Ok _ -> Alcotest.fail "garbage accepted");
      (* recognizably TIX but an alien version *)
      write_file path ("TIXDB999" ^ String.sub image 8 (String.length image - 8));
      (match Store.Db.open_file path with
      | Error (Store.Db.Unsupported_version { found; _ }) ->
        check bool_ "found version is reported" true (found = "TIXDB999")
      | Error e ->
        Alcotest.failf "wanted Unsupported_version, got %s"
          (Store.Db.error_to_string e)
      | Ok _ -> Alcotest.fail "alien version accepted");
      (* a payload flip deep in the file is a checksum mismatch *)
      let damaged = Bytes.of_string image in
      let off = String.length image - 20 in
      Bytes.set damaged off (Char.chr (Char.code image.[off] lxor 0x40));
      write_file path (Bytes.to_string damaged);
      match Store.Db.open_file path with
      | Error (Store.Db.Checksum_mismatch { section; _ }) ->
        check bool_ "section is named" true (String.length section > 0)
      | Error e ->
        Alcotest.failf "wanted Checksum_mismatch, got %s"
          (Store.Db.error_to_string e)
      | Ok _ -> Alcotest.fail "payload flip accepted")

let test_pristine_image_reopens () =
  with_saved_image (fun db path ->
      match Store.Db.open_file path with
      | Error e -> Alcotest.failf "pristine image rejected: %s" (Store.Db.error_to_string e)
      | Ok reopened ->
        check bool_ "same stats" true
          (Store.Db.stats db = Store.Db.stats reopened))

let test_missing_file_is_io_error () =
  match Store.Db.open_file "/nonexistent/tix/image.tix" with
  | Error (Store.Db.Io_error _) -> ()
  | Error e -> Alcotest.failf "wanted Io_error, got %s" (Store.Db.error_to_string e)
  | Ok _ -> Alcotest.fail "opened a missing file"

(* ------------------------------------------------------------------ *)
(* Resource governor *)

let paper_query =
  {|
  for $a in document("articles.xml")//article/descendant-or-self::*
  score $a using ScoreFoo($a, {"search engine"},
                          {"internet", "information retrieval"})
  pick $a using PickFoo()
  return <result>{$a}</result>
  sortby(score)
  threshold $a/@score > 0 stop after 5
  |}

let test_governor_tiny_step_budget () =
  let db = fresh_db () in
  let evaluator =
    Query.Eval.create ~limits:(Core.Governor.limits ~max_steps:5 ()) db
  in
  (match Query.Eval.run_string evaluator paper_query with
  | Ok _ -> Alcotest.fail "expected resource exhaustion"
  | Error msg ->
    check bool_ "typed message" true
      (String.length msg > 0
      && String.sub msg 0 (min 18 (String.length msg)) = "resource exhausted"))

let test_governor_tiny_deadline () =
  let db = fresh_db () in
  let evaluator =
    Query.Eval.create ~limits:(Core.Governor.limits ~timeout_s:0.0 ()) db
  in
  match Query.Eval.run_string evaluator paper_query with
  | Ok _ -> Alcotest.fail "expected deadline breach"
  | Error _ -> ()

let test_governor_tiny_result_cap () =
  let db = fresh_db () in
  let evaluator =
    Query.Eval.create ~limits:(Core.Governor.limits ~max_results:1 ()) db
  in
  match Query.Eval.run_string evaluator paper_query with
  | Ok _ -> Alcotest.fail "expected result-cap breach"
  | Error _ -> ()

let test_governor_ample_budget_is_transparent () =
  let db = fresh_db () in
  let ungoverned =
    match Query.Eval.run_string (Query.Eval.create db) paper_query with
    | Ok r -> r
    | Error msg -> Alcotest.failf "ungoverned run failed: %s" msg
  in
  let governed =
    let limits =
      Core.Governor.limits ~max_steps:10_000_000 ~timeout_s:3600.
        ~max_results:1_000_000 ()
    in
    match Query.Eval.run_string (Query.Eval.create ~limits db) paper_query with
    | Ok r -> r
    | Error msg -> Alcotest.failf "governed run failed: %s" msg
  in
  check bool_ "identical results" true (ungoverned = governed)

let test_governor_evaluator_survives_exhaustion () =
  (* one exhausted query must not poison the next *)
  let db = fresh_db () in
  let evaluator =
    Query.Eval.create ~limits:(Core.Governor.limits ~max_steps:100_000_000 ()) db
  in
  let tight = Query.Eval.create ~limits:(Core.Governor.limits ~max_steps:5 ()) db in
  (match Query.Eval.run_string tight paper_query with
  | Ok _ -> Alcotest.fail "expected exhaustion"
  | Error _ -> ());
  match Query.Eval.run_string evaluator paper_query with
  | Ok results -> check bool_ "subsequent query runs" true (results <> [])
  | Error msg -> Alcotest.failf "subsequent query failed: %s" msg

(* single-word phrases only, so the query compiles onto the engine *)
let engine_query =
  {|
  for $a in document("articles.xml")//article/descendant-or-self::*
  score $a using ScoreFoo($a, {"search"}, {"internet", "retrieval"})
  pick $a using PickFoo()
  return <result>{$a}</result>
  sortby(score)
  threshold $a/@score > 0 stop after 5
  |}

let test_governor_engine_path () =
  let db = fresh_db () in
  let q = Query.Parser.parse engine_query in
  let q = match q with Ok q -> q | Error _ -> Alcotest.fail "parse" in
  let plan =
    match Query.Compile.compile q with
    | Ok p -> p
    | Error reason -> Alcotest.failf "not compilable: %s" reason
  in
  let baseline = Query.Compile.execute db plan in
  (* tiny budget trips *)
  (match
     Query.Compile.execute ~limits:(Core.Governor.limits ~max_steps:1 ()) db plan
   with
  | _ -> Alcotest.fail "expected exhaustion on the engine path"
  | exception Core.Governor.Resource_exhausted v ->
    check bool_ "steps counted" true (v.Core.Governor.steps > 1));
  (* ample budget is transparent *)
  let governed =
    Query.Compile.execute
      ~limits:(Core.Governor.limits ~max_steps:10_000_000 ~max_results:1_000_000 ())
      db plan
  in
  check bool_ "engine results unchanged" true (baseline = governed)

let test_governor_algebra () =
  let c =
    List.init 64 (fun i ->
        Core.Stree.make ~score:(float_of_int i) ~id:(Core.Stree.Synthetic i)
          "node" [])
  in
  let plan = Core.Algebra.Sort (Core.Algebra.Scan c) in
  (* untripped *)
  let out =
    Core.Algebra.run
      ~governor:(Core.Governor.start (Core.Governor.limits ~max_steps:1_000 ()))
      plan
  in
  check int_ "all trees pass" 64 (List.length out);
  (* tripped by cardinality *)
  match
    Core.Algebra.run
      ~governor:(Core.Governor.start (Core.Governor.limits ~max_results:10 ()))
      plan
  with
  | _ -> Alcotest.fail "expected result-cap breach"
  | exception Core.Governor.Resource_exhausted v ->
    check bool_ "reason is the cap" true (v.Core.Governor.reason = Core.Governor.Results)

(* ------------------------------------------------------------------ *)
(* Error-isolated bulk load *)

let test_load_isolated_skips_and_reports () =
  let docs =
    List.to_seq
      [
        ("good1.xml", Ok (Xmlkit.Parser.parse_string_exn "<a><b>search</b></a>"));
        ("bad.xml", Error "parse error: line 1, column 3: boom");
        ("good2.xml", Ok (Xmlkit.Parser.parse_string_exn "<c>retrieval</c>"));
      ]
  in
  let db, report = Store.Db.load_isolated docs in
  check int_ "two loaded" 2 report.Store.Db.loaded;
  check int_ "one failed" 1 (List.length report.Store.Db.failed);
  let f = List.hd report.Store.Db.failed in
  check Alcotest.string "failed document named" "bad.xml" f.Store.Db.document;
  (* ids are dense over the survivors and the store is queryable *)
  check bool_ "good1 present" true (Store.Db.document_id db "good1.xml" = Some 0);
  check bool_ "good2 present" true (Store.Db.document_id db "good2.xml" = Some 1);
  check bool_ "bad absent" true (Store.Db.document_id db "bad.xml" = None);
  let results =
    Access.Term_join.to_list (Access.Ctx.of_db db) ~terms:[ "retrieval" ]
  in
  check bool_ "survivors are searchable" true (results <> [])

let test_load_isolated_all_good_matches_load () =
  let mk () = Workload.Paper_db.documents in
  let plain = Store.Db.of_documents (mk ()) in
  let isolated, report =
    Store.Db.load_isolated
      (List.to_seq (List.map (fun (n, d) -> (n, Ok d)) (mk ())))
  in
  check int_ "nothing failed" 0 (List.length report.Store.Db.failed);
  check bool_ "same stats" true (Store.Db.stats plain = Store.Db.stats isolated)

(* ------------------------------------------------------------------ *)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "fault"
    [
      ( "injector",
        [
          tc "deterministic" `Quick test_fault_deterministic;
          tc "zero rates healthy" `Quick test_fault_zero_rates_healthy;
          tc "corruption permanent" `Quick test_fault_corruption_permanent;
          tc "corrupt changes bytes" `Quick test_fault_corrupt_changes_bytes;
        ] );
      ( "pager",
        [
          tc "retries transients" `Quick test_pager_retries_transients;
          tc "transient exhausted" `Quick test_pager_transient_exhausted;
          tc "detects corruption" `Quick test_pager_detects_corruption;
          tc "out of bounds message" `Quick test_pager_out_of_bounds_message;
          tc "hits unaffected" `Quick test_pager_fault_free_hits_unaffected;
        ] );
      ( "access methods",
        [
          tc "termjoin sweep" `Quick test_term_join_under_faults;
          tc "enhanced sweep" `Quick test_term_join_enhanced_under_faults;
          tc "genmeet sweep" `Quick test_gen_meet_under_faults;
          tc "phrasefinder sweep" `Quick test_phrase_finder_under_faults;
          tc "transients always recover" `Quick
            test_transient_only_faults_always_recover;
          tc "full corruption never crashes" `Quick
            test_full_corruption_never_crashes;
        ] );
      ( "image corruption",
        [
          tc "pristine reopens" `Quick test_pristine_image_reopens;
          tc "byte-flip sweep" `Quick test_corruption_sweep_byte_flips;
          tc "truncation sweep" `Quick test_corruption_sweep_truncation;
          tc "legacy image sweep" `Quick test_corruption_sweep_legacy_image;
          tc "right error variant" `Quick test_corruption_reports_right_variant;
          tc "missing file" `Quick test_missing_file_is_io_error;
        ] );
      ( "governor",
        [
          tc "tiny step budget" `Quick test_governor_tiny_step_budget;
          tc "tiny deadline" `Quick test_governor_tiny_deadline;
          tc "tiny result cap" `Quick test_governor_tiny_result_cap;
          tc "ample budget transparent" `Quick
            test_governor_ample_budget_is_transparent;
          tc "evaluator survives" `Quick test_governor_evaluator_survives_exhaustion;
          tc "engine path" `Quick test_governor_engine_path;
          tc "algebra operators" `Quick test_governor_algebra;
        ] );
      ( "isolated load",
        [
          tc "skips and reports" `Quick test_load_isolated_skips_and_reports;
          tc "all-good equals load" `Quick test_load_isolated_all_good_matches_load;
        ] );
    ]
