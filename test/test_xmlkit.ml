(* Tests for the XML substrate: entities, parsing, printing,
   traversal and interval numbering. *)

let check = Alcotest.check
let string_ = Alcotest.string
let int_ = Alcotest.int
let bool_ = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Entity *)

let test_escape_text () =
  check string_ "no escaping needed" "plain" (Xmlkit.Entity.escape_text "plain");
  check string_ "angle brackets" "&lt;a&gt; &amp; b"
    (Xmlkit.Entity.escape_text "<a> & b");
  check string_ "quote untouched in text" "say \"hi\""
    (Xmlkit.Entity.escape_text "say \"hi\"")

let test_escape_attr () =
  check string_ "quotes escaped" "a=&quot;b&quot;"
    (Xmlkit.Entity.escape_attr "a=\"b\"")

let test_decode () =
  check string_ "predefined" "<a> & b" (Xmlkit.Entity.decode "&lt;a&gt; &amp; b");
  check string_ "apostrophe" "it's" (Xmlkit.Entity.decode "it&apos;s");
  check string_ "decimal ref" "A" (Xmlkit.Entity.decode "&#65;");
  check string_ "hex ref" "A" (Xmlkit.Entity.decode "&#x41;");
  check string_ "unknown kept" "&nbsp;" (Xmlkit.Entity.decode "&nbsp;");
  check string_ "lone ampersand" "a & b" (Xmlkit.Entity.decode "a & b")

let test_decode_utf8 () =
  check string_ "two-byte" "\xc3\xa9" (Xmlkit.Entity.decode "&#233;");
  check string_ "three-byte" "\xe2\x82\xac" (Xmlkit.Entity.decode "&#x20AC;")

let test_roundtrip_escape () =
  let prop s =
    Xmlkit.Entity.decode (Xmlkit.Entity.escape_attr s) = s
  in
  QCheck.Test.make ~name:"decode (escape s) = s" ~count:500
    QCheck.printable_string prop

(* ------------------------------------------------------------------ *)
(* Parser / Printer *)

let parse_ok s =
  match Xmlkit.Parser.parse_string s with
  | Ok e -> e
  | Error e -> Alcotest.failf "parse error: %a" Xmlkit.Parser.pp_error e

let test_parse_simple () =
  let e = parse_ok "<a><b>hello</b><c x='1' y=\"2\"/></a>" in
  check string_ "root tag" "a" e.Xmlkit.Tree.tag;
  let children = Xmlkit.Tree.child_elements e in
  check int_ "two children" 2 (List.length children);
  let c = List.nth children 1 in
  check (Alcotest.option string_) "attr x" (Some "1") (Xmlkit.Tree.attr c "x");
  check (Alcotest.option string_) "attr y" (Some "2") (Xmlkit.Tree.attr c "y")

let test_parse_prolog () =
  let e =
    parse_ok
      "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a ANY>]><!-- hi --><a/>"
  in
  check string_ "root" "a" e.Xmlkit.Tree.tag

let test_parse_cdata () =
  let e = parse_ok "<a><![CDATA[<not> & parsed]]></a>" in
  check string_ "cdata text" "<not> & parsed" (Xmlkit.Tree.local_text e)

let test_parse_entities () =
  let e = parse_ok "<a>x &amp; y</a>" in
  check string_ "decoded" "x & y" (Xmlkit.Tree.local_text e)

let test_parse_errors () =
  let fails s =
    match Xmlkit.Parser.parse_string s with
    | Ok _ -> Alcotest.failf "expected parse failure for %S" s
    | Error _ -> ()
  in
  fails "<a>";
  fails "<a></b>";
  fails "<a><b></a></b>";
  fails "";
  fails "<a/><b/>";
  fails "<a x=1/>"

let test_parse_fragment () =
  match Xmlkit.Parser.parse_fragment "<a/> <b>t</b>" with
  | Ok nodes ->
    let elems =
      List.filter_map
        (function Xmlkit.Tree.Element e -> Some e.Xmlkit.Tree.tag | _ -> None)
        nodes
    in
    check (Alcotest.list string_) "two roots" [ "a"; "b" ] elems
  | Error e -> Alcotest.failf "parse error: %a" Xmlkit.Parser.pp_error e

let test_print_roundtrip () =
  let doc = "<a p=\"v\"><b>x &amp; y</b><c/>tail</a>" in
  let e = parse_ok doc in
  let printed = Xmlkit.Printer.to_string e in
  let e' = parse_ok printed in
  check bool_ "roundtrip equal" true (Xmlkit.Tree.equal e e')

(* random tree generator for roundtrip property; adjacent text nodes
   are merged because serialization cannot distinguish them *)
let rec merge_adjacent_text = function
  | Xmlkit.Tree.Text a :: Xmlkit.Tree.Text b :: rest ->
    merge_adjacent_text (Xmlkit.Tree.Text (a ^ b) :: rest)
  | Xmlkit.Tree.Element e :: rest ->
    Xmlkit.Tree.Element { e with children = merge_adjacent_text e.children }
    :: merge_adjacent_text rest
  | n :: rest -> n :: merge_adjacent_text rest
  | [] -> []

let gen_tree =
  let open QCheck.Gen in
  let tag = oneofl [ "a"; "b"; "c"; "item"; "x-y" ] in
  let text_frag =
    map
      (fun s -> Xmlkit.Tree.text s)
      (string_size ~gen:(oneofl [ 'a'; 'b'; ' '; '&'; '<'; '"' ]) (1 -- 8))
  in
  let raw =
    fix
      (fun self depth ->
        if depth = 0 then
          map2 (fun t txt -> Xmlkit.Tree.elem t [ txt ]) tag text_frag
        else
          map2
            (fun t children -> Xmlkit.Tree.elem t children)
            tag
            (list_size (0 -- 3)
               (oneof
                  [
                    map (fun e -> Xmlkit.Tree.Element e) (self (depth - 1));
                    text_frag;
                  ])))
      2
  in
  QCheck.Gen.map
    (fun (e : Xmlkit.Tree.element) ->
      { e with children = merge_adjacent_text e.children })
    raw

let test_print_parse_property =
  QCheck.Test.make ~name:"parse (print t) = t" ~count:200
    (QCheck.make gen_tree) (fun t ->
      match Xmlkit.Parser.parse_string (Xmlkit.Printer.to_string t) with
      | Ok t' -> Xmlkit.Tree.equal t t'
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Tree helpers *)

let sample =
  Xmlkit.Tree.elem "r"
    [
      Xmlkit.Tree.el "a" [ Xmlkit.Tree.text "one two" ];
      Xmlkit.Tree.el "b"
        [
          Xmlkit.Tree.text "three";
          Xmlkit.Tree.el "a" [ Xmlkit.Tree.text "four" ];
        ];
    ]

let test_all_text () =
  check string_ "all text" "one two three four" (Xmlkit.Tree.all_text sample)

let test_size_depth () =
  check int_ "size" 4 (Xmlkit.Tree.size sample);
  check int_ "depth" 3 (Xmlkit.Tree.depth sample)

let test_find_all () =
  check int_ "two a elements" 2
    (List.length (Xmlkit.Traverse.find_all "a" sample))

let test_path () =
  let res = Xmlkit.Traverse.path [ "b"; "a" ] sample in
  check int_ "one b/a" 1 (List.length res)

let test_parent_map () =
  let parent = Xmlkit.Traverse.parent_map sample in
  let b = Option.get (Xmlkit.Traverse.find_first "b" sample) in
  let inner_a = List.hd (Xmlkit.Traverse.find_all "a" b) in
  (match parent inner_a with
  | Some p -> check string_ "parent of inner a" "b" p.Xmlkit.Tree.tag
  | None -> Alcotest.fail "expected a parent");
  check bool_ "root has no parent" true (parent sample = None)

(* ------------------------------------------------------------------ *)
(* Numbering *)

let test_numbering_keys () =
  let num = Xmlkit.Numbering.number sample in
  let infos = num.Xmlkit.Numbering.infos in
  check int_ "4 elements" 4 (Array.length infos);
  (* r [0, ...], a(one two): start 1, words 2,3, end 4 *)
  check int_ "root start" 0 infos.(0).Xmlkit.Numbering.start;
  check int_ "a start" 1 infos.(1).Xmlkit.Numbering.start;
  check int_ "a end" 4 infos.(1).Xmlkit.Numbering.end_;
  check int_ "b start" 5 infos.(2).Xmlkit.Numbering.start;
  check int_ "inner a level" 2 infos.(3).Xmlkit.Numbering.level;
  check int_ "inner a parent" 2 infos.(3).Xmlkit.Numbering.parent

let test_numbering_containment () =
  let num = Xmlkit.Numbering.number sample in
  let infos = num.Xmlkit.Numbering.infos in
  check bool_ "root contains b" true
    (Xmlkit.Numbering.contains infos.(0) infos.(2));
  check bool_ "b contains inner a" true
    (Xmlkit.Numbering.contains infos.(2) infos.(3));
  check bool_ "a does not contain b" false
    (Xmlkit.Numbering.contains infos.(1) infos.(2))

let test_numbering_find () =
  let num = Xmlkit.Numbering.number sample in
  (match Xmlkit.Numbering.find_by_start num 5 with
  | Some info -> check string_ "found b" "b" info.Xmlkit.Numbering.tag
  | None -> Alcotest.fail "expected to find b");
  check bool_ "missing start" true (Xmlkit.Numbering.find_by_start num 3 = None)

let test_numbering_enclosing () =
  let num = Xmlkit.Numbering.number sample in
  (* word "four" is inside inner a; find its enclosing chain *)
  (match Xmlkit.Numbering.enclosing num 8 with
  | Some info -> check string_ "word owner" "a" info.Xmlkit.Numbering.tag
  | None -> Alcotest.fail "expected an enclosing element");
  check bool_ "out of range" true (Xmlkit.Numbering.enclosing num 1000 = None)

let test_numbering_ancestors () =
  let num = Xmlkit.Numbering.number sample in
  let infos = num.Xmlkit.Numbering.infos in
  let ancestors = Xmlkit.Numbering.ancestors num infos.(3) in
  check
    (Alcotest.list string_)
    "inner a ancestors" [ "b"; "r" ]
    (List.map (fun (i : Xmlkit.Numbering.info) -> i.tag) ancestors)

let test_numbering_text_callback () =
  let calls = ref [] in
  let text ~owner ~owner_start ~start_key s =
    calls := (owner, owner_start, start_key, s) :: !calls;
    List.length
      (List.filter (fun w -> w <> "") (String.split_on_char ' ' s))
  in
  let _ = Xmlkit.Numbering.number ~text sample in
  check int_ "three text nodes" 3 (List.length !calls);
  let _, owner_start, start_key, s =
    List.hd (List.rev !calls)
  in
  check string_ "first text" "one two" s;
  check int_ "first text owner start" 1 owner_start;
  check int_ "first text key" 2 start_key

(* numbering invariants on random trees *)
let test_numbering_property =
  QCheck.Test.make ~name:"numbering invariants" ~count:200
    (QCheck.make gen_tree) (fun t ->
      let num = Xmlkit.Numbering.number t in
      let infos = num.Xmlkit.Numbering.infos in
      Array.for_all
        (fun (i : Xmlkit.Numbering.info) ->
          i.start < i.end_
          && (i.parent < 0
             || Xmlkit.Numbering.contains infos.(i.parent) i
                && infos.(i.parent).level = i.level - 1))
        infos)


let test_parse_deep_nesting () =
  let depth = 2000 in
  let buf = Buffer.create (depth * 8) in
  for _ = 1 to depth do
    Buffer.add_string buf "<d>"
  done;
  Buffer.add_string buf "x";
  for _ = 1 to depth do
    Buffer.add_string buf "</d>"
  done;
  let e = parse_ok (Buffer.contents buf) in
  check int_ "deep tree size" depth (Xmlkit.Tree.size e)

let test_parse_depth_limit () =
  let nested depth =
    let buf = Buffer.create (depth * 8) in
    for _ = 1 to depth do
      Buffer.add_string buf "<d>"
    done;
    Buffer.add_string buf "x";
    for _ = 1 to depth do
      Buffer.add_string buf "</d>"
    done;
    Buffer.contents buf
  in
  let limits = Xmlkit.Parser.limits ~max_depth:16 () in
  (* under the cap: parses fine *)
  (match Xmlkit.Parser.parse_string ~limits (nested 16) with
  | Ok e -> check int_ "size at the cap" 16 (Xmlkit.Tree.size e)
  | Error e -> Alcotest.failf "at-cap parse failed: %a" Xmlkit.Parser.pp_error e);
  (* over the cap: a located Parse_error, not a stack overflow *)
  (match Xmlkit.Parser.parse_string ~limits (nested 17) with
  | Ok _ -> Alcotest.fail "expected depth failure"
  | Error e ->
    check bool_ "message names nesting" true
      (String.length e.Xmlkit.Parser.message > 0
      && e.Xmlkit.Parser.line >= 1));
  (* the exception variant raises Parse_error *)
  match Xmlkit.Parser.parse_string_exn ~limits (nested 1000) with
  | _ -> Alcotest.fail "expected Parse_error"
  | exception Xmlkit.Parser.Parse_error _ -> ()

let test_parse_entity_ref_limit () =
  let doc n =
    let buf = Buffer.create (n * 6) in
    Buffer.add_string buf "<a>";
    for _ = 1 to n do
      Buffer.add_string buf "&#65;"
    done;
    Buffer.add_string buf "</a>";
    Buffer.contents buf
  in
  let limits = Xmlkit.Parser.limits ~max_entity_refs:8 () in
  (* under the cap: all references decode *)
  (match Xmlkit.Parser.parse_string ~limits (doc 8) with
  | Ok e ->
    check string_ "decoded" (String.make 8 'A') (Xmlkit.Tree.local_text e)
  | Error e -> Alcotest.failf "at-cap parse failed: %a" Xmlkit.Parser.pp_error e);
  (* over the cap: typed failure *)
  (match Xmlkit.Parser.parse_string ~limits (doc 9) with
  | Ok _ -> Alcotest.fail "expected reference-cap failure"
  | Error _ -> ());
  (* the budget is document-wide, spanning attributes and text *)
  match
    Xmlkit.Parser.parse_string ~limits
      "<a x=\"&#65;&#65;&#65;&#65;&#65;\">&#65;&#65;&#65;&#65;</a>"
  with
  | Ok _ -> Alcotest.fail "expected cross-node cap failure"
  | Error _ -> ()

let test_parse_single_quotes_and_comments () =
  let e = parse_ok "<a x='v'><!-- dash - dash --and more -->t</a>" in
  check (Alcotest.option string_) "single-quoted attr" (Some "v")
    (Xmlkit.Tree.attr e "x");
  check string_ "text survives comment" "t" (Xmlkit.Tree.local_text e)

let test_parse_doctype_internal_subset () =
  let e =
    parse_ok
      "<!DOCTYPE a [<!ELEMENT a (b)><!ENTITY x \"y\">]><a><b/></a>"
  in
  check int_ "children" 1 (List.length (Xmlkit.Tree.child_elements e))

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "xmlkit"
    [
      ( "entity",
        [
          tc "escape text" `Quick test_escape_text;
          tc "escape attr" `Quick test_escape_attr;
          tc "decode" `Quick test_decode;
          tc "decode utf8" `Quick test_decode_utf8;
          QCheck_alcotest.to_alcotest (test_roundtrip_escape ());
        ] );
      ( "parser",
        [
          tc "simple" `Quick test_parse_simple;
          tc "prolog" `Quick test_parse_prolog;
          tc "cdata" `Quick test_parse_cdata;
          tc "entities" `Quick test_parse_entities;
          tc "errors" `Quick test_parse_errors;
          tc "fragment" `Quick test_parse_fragment;
          tc "print roundtrip" `Quick test_print_roundtrip;
          tc "deep nesting" `Quick test_parse_deep_nesting;
          tc "depth limit" `Quick test_parse_depth_limit;
          tc "entity reference limit" `Quick test_parse_entity_ref_limit;
          tc "single quotes and comments" `Quick
            test_parse_single_quotes_and_comments;
          tc "doctype internal subset" `Quick test_parse_doctype_internal_subset;
          QCheck_alcotest.to_alcotest test_print_parse_property;
        ] );
      ( "tree",
        [
          tc "all_text" `Quick test_all_text;
          tc "size and depth" `Quick test_size_depth;
          tc "find_all" `Quick test_find_all;
          tc "path" `Quick test_path;
          tc "parent map" `Quick test_parent_map;
        ] );
      ( "numbering",
        [
          tc "keys" `Quick test_numbering_keys;
          tc "containment" `Quick test_numbering_containment;
          tc "find by start" `Quick test_numbering_find;
          tc "enclosing" `Quick test_numbering_enclosing;
          tc "ancestors" `Quick test_numbering_ancestors;
          tc "text callback" `Quick test_numbering_text_callback;
          QCheck_alcotest.to_alcotest test_numbering_property;
        ] );
    ]
