(* Tests for the IR substrate: tokenizer, stemmer, codec, postings,
   inverted index, phrase matching, tf-idf and similarity. *)

let check = Alcotest.check
let int_ = Alcotest.int
let string_ = Alcotest.string
let bool_ = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Tokenizer *)

let test_tokenizer_basic () =
  let toks = Ir.Tokenizer.tokens "Hello, World! 42x" in
  check
    (Alcotest.list (Alcotest.pair string_ int_))
    "tokens"
    [ ("hello", 0); ("world", 1); ("42x", 2) ]
    (List.map (fun (t : Ir.Token.t) -> (t.term, t.pos)) toks)

let test_tokenizer_start_pos () =
  let toks = Ir.Tokenizer.tokens ~start_pos:10 "a b" in
  check (Alcotest.list int_) "positions" [ 10; 11 ]
    (List.map (fun (t : Ir.Token.t) -> t.pos) toks)

let test_tokenizer_empty () =
  check int_ "no tokens" 0 (List.length (Ir.Tokenizer.tokens "  ,.;  "));
  check int_ "count" 0 (Ir.Tokenizer.count " .. ")

let test_tokenizer_count_matches =
  QCheck.Test.make ~name:"count = length tokens" ~count:500
    QCheck.printable_string (fun s ->
      Ir.Tokenizer.count s = List.length (Ir.Tokenizer.tokens s))

(* ------------------------------------------------------------------ *)
(* Stemmer: classic Porter test vectors *)

let porter_vectors =
  [
    ("caresses", "caress"); ("ponies", "poni"); ("ties", "ti");
    ("caress", "caress"); ("cats", "cat"); ("feed", "feed");
    ("agreed", "agre"); ("plastered", "plaster"); ("bled", "bled");
    ("motoring", "motor"); ("sing", "sing"); ("conflated", "conflat");
    ("troubled", "troubl"); ("sized", "size"); ("hopping", "hop");
    ("tanned", "tan"); ("falling", "fall"); ("hissing", "hiss");
    ("fizzed", "fizz"); ("failing", "fail"); ("filing", "file");
    ("happy", "happi"); ("sky", "sky"); ("relational", "relat");
    ("conditional", "condit"); ("rational", "ration");
    ("valenci", "valenc"); ("hesitanci", "hesit"); ("digitizer", "digit");
    ("radicalli", "radic");
    ("differentli", "differ"); ("vileli", "vile"); ("analogousli", "analog");
    ("vietnamization", "vietnam"); ("predication", "predic");
    ("operator", "oper"); ("feudalism", "feudal");
    ("decisiveness", "decis"); ("hopefulness", "hope");
    ("callousness", "callous"); ("formaliti", "formal");
    ("sensitiviti", "sensit"); ("sensibiliti", "sensibl");
    ("triplicate", "triplic"); ("formative", "form");
    ("formalize", "formal"); ("electriciti", "electr");
    ("electrical", "electr"); ("hopeful", "hope"); ("goodness", "good");
    ("allowance", "allow"); ("inference", "infer");
    ("airliner", "airlin"); ("gyroscopic", "gyroscop");
    ("adjustable", "adjust"); ("defensible", "defens");
    ("irritant", "irrit"); ("replacement", "replac");
    ("adjustment", "adjust"); ("dependent", "depend");
    ("adoption", "adopt");
    ("communism", "commun"); ("activate", "activ");
    ("angulariti", "angular"); ("homologous", "homolog");
    ("effective", "effect"); ("bowdlerize", "bowdler");
    ("probate", "probat"); ("rate", "rate"); ("cease", "ceas");
    ("controll", "control"); ("roll", "roll");
    ("engines", "engin"); ("engine", "engin");
  ]

let test_stemmer_vectors () =
  List.iter
    (fun (w, expected) ->
      check string_ (Printf.sprintf "stem %s" w) expected (Ir.Stemmer.stem w))
    porter_vectors

let test_stemmer_short () =
  check string_ "1-char" "a" (Ir.Stemmer.stem "a");
  check string_ "2-char" "is" (Ir.Stemmer.stem "is")

let test_stemmer_total =
  QCheck.Test.make ~name:"stemmer total on ascii words" ~count:500
    QCheck.(
      string_gen_of_size
        (QCheck.Gen.int_range 1 12)
        (QCheck.Gen.char_range 'a' 'z'))
    (fun w ->
      let s = Ir.Stemmer.stem w in
      String.length s > 0 && String.length s <= String.length w)

(* ------------------------------------------------------------------ *)
(* Codec *)

let test_varint_roundtrip =
  QCheck.Test.make ~name:"varint roundtrip" ~count:1000
    QCheck.(int_bound max_int)
    (fun v ->
      let buf = Buffer.create 10 in
      Ir.Codec.add_varint buf v;
      let v', off = Ir.Codec.read_varint (Buffer.to_bytes buf) 0 in
      v = v' && off = Buffer.length buf && off = Ir.Codec.varint_size v)

let test_zigzag_roundtrip =
  QCheck.Test.make ~name:"zigzag roundtrip" ~count:1000 QCheck.int (fun v ->
      (* keep within range so the doubled encoding fits in an int *)
      let v = v asr 2 in
      let buf = Buffer.create 10 in
      Ir.Codec.add_zigzag buf v;
      let v', _ = Ir.Codec.read_zigzag (Buffer.to_bytes buf) 0 in
      v = v')

let test_varint_sequence () =
  let buf = Buffer.create 64 in
  let values = [ 0; 1; 127; 128; 300; 1 lsl 20; (1 lsl 40) + 7 ] in
  List.iter (Ir.Codec.add_varint buf) values;
  let bytes = Buffer.to_bytes buf in
  let rec read off acc =
    if off >= Bytes.length bytes then List.rev acc
    else begin
      let v, off = Ir.Codec.read_varint bytes off in
      read off (v :: acc)
    end
  in
  check (Alcotest.list int_) "sequence" values (read 0 [])

(* ------------------------------------------------------------------ *)
(* Postings *)

let occ doc node pos = { Ir.Postings.doc; node; pos }

let test_postings_roundtrip () =
  let occs =
    [ occ 0 1 2; occ 0 1 5; occ 0 3 7; occ 1 0 1; occ 1 9 4; occ 3 2 0 ]
  in
  let p = Ir.Postings.of_list occs in
  check int_ "length" 6 (Ir.Postings.length p);
  check bool_ "roundtrip" true (Ir.Postings.to_list p = occs)

let test_postings_order_check () =
  let b = Ir.Postings.builder () in
  Ir.Postings.add b (occ 0 1 5);
  Alcotest.check_raises "out of order"
    (Invalid_argument "Postings.add: occurrences out of order") (fun () ->
      Ir.Postings.add b (occ 0 1 3))

let test_postings_cursor_reset () =
  let p = Ir.Postings.of_list [ occ 0 1 2; occ 0 1 5 ] in
  let c = Ir.Postings.cursor p in
  let _ = Ir.Postings.next c in
  Ir.Postings.reset c;
  match Ir.Postings.next c with
  | Some o -> check int_ "first again" 2 o.Ir.Postings.pos
  | None -> Alcotest.fail "expected an occurrence"

let gen_occs =
  let open QCheck.Gen in
  list_size (0 -- 50) (triple (int_bound 5) (int_bound 100) (int_bound 1000))
  |> map (fun triples ->
         let sorted =
           List.sort_uniq
             (fun (d, _, p) (d', _, p') -> compare (d, p) (d', p'))
             triples
         in
         List.map (fun (doc, node, pos) -> occ doc node pos) sorted)

let test_postings_property =
  QCheck.Test.make ~name:"postings roundtrip (random)" ~count:300
    (QCheck.make gen_occs) (fun occs ->
      Ir.Postings.to_list (Ir.Postings.of_list occs) = occs)

(* --- skip-table seeks ---------------------------------------------- *)

(* Lists whose sizes straddle the block boundary (block_size = 128),
   plus a random mix of interleaved [next] and [seek_pos] calls.
   The oracle is the only sensible spec: seek returns exactly what a
   sequence of [next] calls discarding every occurrence below the
   target would. *)
let gen_seek_scenario =
  let open QCheck.Gen in
  let bs = Ir.Postings.block_size in
  let sized n =
    list_repeat n (triple (int_bound 20) (int_bound 100) (int_range 1 10))
    >|= fun steps ->
    let doc = ref 0 and pos = ref 0 in
    List.map
      (fun (adv, node, pgap) ->
        if adv = 0 then begin
          incr doc;
          pos := pgap
        end
        else pos := !pos + pgap;
        occ !doc node !pos)
      steps
  in
  let size =
    oneofl [ 0; 1; 2; bs - 1; bs; bs + 1; (2 * bs) + 17; 37 ] >>= fun base ->
    int_bound 8 >|= fun jitter -> max 0 (base + jitter - 4)
  in
  (size >>= sized) >>= fun occs ->
  let max_doc =
    List.fold_left (fun a (o : Ir.Postings.occ) -> max a o.doc) 0 occs
  in
  let max_pos =
    List.fold_left (fun a (o : Ir.Postings.occ) -> max a o.pos) 0 occs
  in
  let op =
    frequency
      [
        (1, return `Next);
        ( 2,
          pair (int_bound (max_doc + 2)) (int_bound (max_pos + 5)) >|= fun t ->
          `Seek t );
        (* exact keys: both hits and the occurrence just past one *)
        ( 2,
          if occs = [] then return `Next
          else
            int_bound (List.length occs - 1) >|= fun i ->
            let o = List.nth occs i in
            `Seek (o.Ir.Postings.doc, o.Ir.Postings.pos) );
      ]
  in
  pair (return occs) (list_size (1 -- 40) op)

let oracle_run occs ops =
  let remaining = ref occs in
  let take () =
    match !remaining with
    | [] -> None
    | o :: rest ->
      remaining := rest;
      Some o
  in
  List.map
    (fun op ->
      match op with
      | `Next -> take ()
      | `Seek (d, p) ->
        let below (o : Ir.Postings.occ) = (o.doc, o.pos) < (d, p) in
        remaining := List.filter (fun o -> not (below o)) !remaining;
        take ())
    ops

let cursor_run c ops =
  List.map
    (fun op ->
      match op with
      | `Next -> Ir.Postings.next c
      | `Seek (d, p) -> Ir.Postings.seek_pos c ~doc:d ~pos:p)
    ops

let test_seek_matches_next_oracle =
  QCheck.Test.make ~name:"seek_pos/next agree with sequential oracle"
    ~count:500 (QCheck.make gen_seek_scenario) (fun (occs, ops) ->
      let p = Ir.Postings.of_list occs in
      cursor_run (Ir.Postings.cursor p) ops = oracle_run occs ops)

let test_seek_survives_serialization =
  QCheck.Test.make ~name:"serialize/deserialize preserves seek behavior"
    ~count:200 (QCheck.make gen_seek_scenario) (fun (occs, ops) ->
      let p = Ir.Postings.of_list occs in
      let p' =
        Ir.Postings.deserialize ~count:(Ir.Postings.length p)
          (Ir.Postings.serialize p)
      in
      Ir.Postings.to_list p' = occs
      && Ir.Postings.blocks p' = Ir.Postings.blocks p
      && Ir.Postings.max_tf p' = Ir.Postings.max_tf p
      && cursor_run (Ir.Postings.cursor p') ops
         = cursor_run (Ir.Postings.cursor p) ops)

let test_seek_doc_is_seek_pos_zero =
  QCheck.Test.make ~name:"seek_doc d = seek_pos (d,0)" ~count:200
    (QCheck.make gen_seek_scenario) (fun (occs, ops) ->
      let docs_of ops =
        List.filter_map (function `Seek (d, _) -> Some d | `Next -> None) ops
      in
      let p = Ir.Postings.of_list occs in
      let a = Ir.Postings.cursor p and b = Ir.Postings.cursor p in
      List.for_all
        (fun d -> Ir.Postings.seek_doc a d = Ir.Postings.seek_pos b ~doc:d ~pos:0)
        (docs_of ops))

let test_seek_empty_and_edges () =
  let empty = Ir.Postings.of_list [] in
  let c = Ir.Postings.cursor empty in
  check bool_ "seek on empty" true (Ir.Postings.seek_pos c ~doc:0 ~pos:0 = None);
  check int_ "block_max_tf on empty" 0 (Ir.Postings.block_max_tf c);
  check int_ "blocks of empty" 0 (Ir.Postings.blocks empty);
  let single = Ir.Postings.of_list [ occ 2 1 7 ] in
  let c = Ir.Postings.cursor single in
  (match Ir.Postings.seek_pos c ~doc:2 ~pos:7 with
  | Some o -> check int_ "exact single hit" 7 o.Ir.Postings.pos
  | None -> Alcotest.fail "expected the single occurrence");
  check bool_ "drained after" true (Ir.Postings.next c = None);
  (* a list exactly one block long has one skip entry and no
     forward blocks to jump to *)
  let one_block =
    Ir.Postings.of_list
      (List.init Ir.Postings.block_size (fun i -> occ 0 0 (i + 1)))
  in
  check int_ "one block" 1 (Ir.Postings.blocks one_block);
  let c = Ir.Postings.cursor one_block in
  (match Ir.Postings.seek_pos c ~doc:0 ~pos:Ir.Postings.block_size with
  | Some o -> check int_ "last key" Ir.Postings.block_size o.Ir.Postings.pos
  | None -> Alcotest.fail "expected last occurrence")

let test_postings_max_tf () =
  (* doc 0: tf 3, doc 1: tf 5, doc 2: tf 1 *)
  let occs =
    List.init 3 (fun i -> occ 0 0 (i + 1))
    @ List.init 5 (fun i -> occ 1 0 (i + 1))
    @ [ occ 2 0 4 ]
  in
  let p = Ir.Postings.of_list occs in
  check int_ "global max_tf" 5 (Ir.Postings.max_tf p);
  (* block_max_tf is an upper bound for every doc the block touches *)
  let c = Ir.Postings.cursor p in
  let rec walk () =
    match Ir.Postings.next c with
    | None -> ()
    | Some o ->
      check bool_ "block bound holds" true
        (Ir.Postings.block_max_tf c
        >= List.length
             (List.filter (fun (x : Ir.Postings.occ) -> x.doc = o.doc) occs));
      walk ()
  in
  walk ()

let test_codec_truncated () =
  let expect_truncated name bytes off =
    match Ir.Codec.read_varint bytes off with
    | _ -> Alcotest.fail (name ^ ": expected Codec.Truncated")
    | exception Ir.Codec.Truncated _ -> ()
  in
  (* continuation bit set on the last byte *)
  expect_truncated "dangling continuation" (Bytes.make 1 '\x80') 0;
  expect_truncated "empty buffer" Bytes.empty 0;
  (* more continuation bytes than any 63-bit value needs *)
  expect_truncated "overlong varint" (Bytes.make 12 '\xff') 0;
  (* truncated posting payload *)
  let p = Ir.Postings.of_list [ occ 0 1 2; occ 0 1 5; occ 1 0 3 ] in
  let s = Ir.Postings.serialize p in
  match Ir.Postings.deserialize ~count:3 (String.sub s 0 (String.length s - 2)) with
  | _ -> Alcotest.fail "expected Truncated on clipped payload"
  | exception Ir.Codec.Truncated _ -> ()

(* --- frame-of-reference bit-packing -------------------------------- *)

(* pack_bits/unpack_bits roundtrip at every width 0..62, over both
   the Bytes and the Bigarray buffer backends. *)
let gen_packed_field =
  let open QCheck.Gen in
  int_range 0 Ir.Codec.max_bit_width >>= fun width ->
  int_range 0 300 >>= fun n ->
  let value =
    if width = 0 then return 0
    else if width >= 62 then map abs int >|= fun v -> v land max_int
    else int_bound ((1 lsl width) - 1)
  in
  list_repeat n value >|= fun vs -> (width, Array.of_list vs)

let unpack_via backend bytes ~width ~n =
  let buf =
    match backend with
    | `B -> Ir.Codec.buf_of_bytes (Bytes.of_string bytes)
    | `M ->
      let a =
        Bigarray.Array1.create Bigarray.char Bigarray.c_layout
          (String.length bytes)
      in
      String.iteri (fun i c -> Bigarray.Array1.set a i c) bytes;
      Ir.Codec.M a
  in
  let out = Array.make n (-1) in
  Ir.Codec.unpack_bits buf ~off:0 ~width ~n out;
  out

let test_pack_bits_roundtrip =
  QCheck.Test.make ~name:"pack_bits/unpack_bits roundtrip (both backends)"
    ~count:500 (QCheck.make gen_packed_field) (fun (width, values) ->
      let buf = Buffer.create 64 in
      Ir.Codec.pack_bits buf values (Array.length values) width;
      let bytes = Buffer.contents buf in
      String.length bytes
      = Ir.Codec.packed_bytes ~n:(Array.length values) ~width
      && unpack_via `B bytes ~width ~n:(Array.length values) = values
      && unpack_via `M bytes ~width ~n:(Array.length values) = values)

let test_pack_bits_edges () =
  (* width 0 occupies no bytes and unpacks to zeros *)
  let buf = Buffer.create 4 in
  Ir.Codec.pack_bits buf [| 0; 0; 0 |] 3 0;
  check int_ "width 0 bytes" 0 (Buffer.length buf);
  check bool_ "width 0 zeros" true (unpack_via `B "" ~width:0 ~n:3 = [| 0; 0; 0 |]);
  (* max width carries max_int exactly *)
  let buf = Buffer.create 16 in
  Ir.Codec.pack_bits buf [| max_int; 0; max_int |] 3 62;
  check bool_ "width 62" true
    (unpack_via `B (Buffer.contents buf) ~width:62 ~n:3 = [| max_int; 0; max_int |]);
  check int_ "bits_needed 0" 0 (Ir.Codec.bits_needed 0);
  check int_ "bits_needed 1" 1 (Ir.Codec.bits_needed 1);
  check int_ "bits_needed 255" 8 (Ir.Codec.bits_needed 255);
  check int_ "bits_needed 256" 9 (Ir.Codec.bits_needed 256);
  check int_ "bits_needed max_int" 62 (Ir.Codec.bits_needed max_int)

(* --- packed codec vs the varint oracle ----------------------------- *)

(* The legacy varint codec is an independent implementation of the
   same posting-list semantics; every behavior of the packed codec
   must agree with it on the same occurrence stream. *)
let varint_of_occs occs =
  let b = Ir.Postings_varint.builder () in
  List.iter (Ir.Postings_varint.add b) occs;
  Ir.Postings_varint.freeze b

let test_packed_matches_varint_oracle =
  QCheck.Test.make ~name:"packed codec agrees with varint oracle" ~count:300
    (QCheck.make gen_seek_scenario) (fun (occs, ops) ->
      let packed = Ir.Postings.of_list occs in
      let varint = varint_of_occs occs in
      let varint_run c ops =
        List.map
          (function
            | `Next -> Ir.Postings_varint.next c
            | `Seek (d, p) -> Ir.Postings_varint.seek_pos c ~doc:d ~pos:p)
          ops
      in
      Ir.Postings.to_list packed = Ir.Postings_varint.to_list varint
      && Ir.Postings.max_tf packed = Ir.Postings_varint.max_tf varint
      && Ir.Postings.blocks packed = Ir.Postings_varint.blocks varint
      && cursor_run (Ir.Postings.cursor packed) ops
         = varint_run (Ir.Postings_varint.cursor varint) ops
      && Ir.Postings.to_list (Ir.Postings_varint.to_packed varint) = occs
      && Ir.Postings_varint.to_list (Ir.Postings_varint.of_packed packed) = occs)

let test_packed_degenerate_blocks () =
  let bs = Ir.Postings.block_size in
  (* one document, one node, consecutive positions: the doc and node
     delta streams pack to width 0 across block boundaries *)
  let flat = List.init ((3 * bs) + 5) (fun i -> occ 7 3 (i + 1)) in
  let p = Ir.Postings.of_list flat in
  check bool_ "width-0 streams roundtrip" true (Ir.Postings.to_list p = flat);
  check bool_ "width-0 serialize roundtrip" true
    (Ir.Postings.to_list
       (Ir.Postings.deserialize ~count:(List.length flat)
          (Ir.Postings.serialize p))
    = flat);
  (* near-max deltas force the widest fields the codec supports *)
  let huge =
    [
      occ 0 0 1;
      occ 0 ((1 lsl 60) - 1) ((1 lsl 61) + 5);
      occ ((1 lsl 45) + 3) 17 ((1 lsl 59) - 1);
    ]
  in
  let p = Ir.Postings.of_list huge in
  check bool_ "max-width roundtrip" true (Ir.Postings.to_list p = huge);
  check bool_ "max-width serialize roundtrip" true
    (Ir.Postings.to_list
       (Ir.Postings.deserialize ~count:3 (Ir.Postings.serialize p))
    = huge);
  check bool_ "max-width agrees with varint" true
    (Ir.Postings_varint.to_list (varint_of_occs huge)
    = Ir.Postings.to_list p)

let test_packed_decodes_from_bigarray =
  QCheck.Test.make ~name:"packed postings decode from a Bigarray map"
    ~count:100 (QCheck.make gen_seek_scenario) (fun (occs, ops) ->
      let p = Ir.Postings.of_list occs in
      let s = Ir.Postings.serialize p in
      let a =
        Bigarray.Array1.create Bigarray.char Bigarray.c_layout (String.length s)
      in
      String.iteri (fun i c -> Bigarray.Array1.set a i c) s;
      let mapped, consumed =
        Ir.Postings.deserialize_buf ~count:(List.length occs)
          (Ir.Codec.M a) 0
      in
      consumed = String.length s
      && Ir.Postings.to_list mapped = occs
      && cursor_run (Ir.Postings.cursor mapped) ops
         = cursor_run (Ir.Postings.cursor p) ops)

(* ------------------------------------------------------------------ *)
(* Inverted index *)

let build_index docs =
  let b = Ir.Inverted_index.builder () in
  List.iteri
    (fun doc text ->
      ignore (Ir.Inverted_index.index_text b ~doc ~node:0 ~start_pos:0 text))
    docs;
  Ir.Inverted_index.freeze b

let test_index_basic () =
  let idx = build_index [ "the cat sat"; "the dog and the cat" ] in
  check int_ "cf(the)" 3 (Ir.Inverted_index.collection_freq idx "the");
  check int_ "df(the)" 2 (Ir.Inverted_index.doc_freq idx "the");
  check int_ "cf(cat)" 2 (Ir.Inverted_index.collection_freq idx "cat");
  check int_ "cf(missing)" 0 (Ir.Inverted_index.collection_freq idx "zebra");
  check int_ "documents" 2 (Ir.Inverted_index.document_count idx)

let test_index_positions () =
  let idx = build_index [ "a b c b" ] in
  match Ir.Inverted_index.lookup idx "b" with
  | Some p ->
    check (Alcotest.list int_) "positions" [ 1; 3 ]
      (List.map (fun (o : Ir.Postings.occ) -> o.pos) (Ir.Postings.to_list p))
  | None -> Alcotest.fail "expected postings for b"

let test_index_case_insensitive () =
  let idx = build_index [ "Hello HELLO hello" ] in
  check int_ "case folded" 3 (Ir.Inverted_index.collection_freq idx "HeLLo")

let test_index_stemmed () =
  let b = Ir.Inverted_index.builder ~stem:true () in
  ignore
    (Ir.Inverted_index.index_text b ~doc:0 ~node:0 ~start_pos:0
       "engines engine engined");
  let idx = Ir.Inverted_index.freeze b in
  check int_ "stems conflated" 3 (Ir.Inverted_index.collection_freq idx "engine")

let test_index_terms_by_freq () =
  let idx = build_index [ "x x x y y z" ] in
  match Ir.Inverted_index.terms_by_freq idx with
  | (t1, f1) :: (t2, f2) :: _ ->
    check string_ "most frequent" "x" t1;
    check int_ "freq" 3 f1;
    check string_ "second" "y" t2;
    check int_ "freq2" 2 f2
  | _ -> Alcotest.fail "expected at least two terms"

let test_index_freq_matches_naive =
  QCheck.Test.make ~name:"collection_freq matches naive count" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 5) printable_string)
    (fun docs ->
      let idx = build_index docs in
      let all_terms = List.concat_map Ir.Tokenizer.terms docs in
      List.for_all
        (fun t ->
          Ir.Inverted_index.collection_freq idx t
          = List.length (List.filter (String.equal t) all_terms))
        all_terms)

(* ------------------------------------------------------------------ *)
(* Phrase *)

let test_phrase_count () =
  let terms = Ir.Phrase.parse "search engine" in
  check int_ "simple" 1 (Ir.Phrase.count ~terms "a search engine here");
  check int_ "stemmed plural" 1 (Ir.Phrase.count ~terms "many search engines");
  check int_ "two occurrences" 2
    (Ir.Phrase.count ~terms "search engine and search engine");
  check int_ "interrupted" 0 (Ir.Phrase.count ~terms "search the engine");
  check int_ "unstemmed plural" 0
    (Ir.Phrase.count ~stem:false ~terms "search engines")

let test_phrase_overlap () =
  check int_ "overlapping" 2
    (Ir.Phrase.count ~stem:false ~terms:[ "a"; "a" ] "a a a");
  check int_ "self-overlap pattern" 1
    (Ir.Phrase.count ~stem:false ~terms:[ "a"; "a"; "b" ] "a a a b")

let test_phrase_empty () =
  check int_ "empty phrase" 0 (Ir.Phrase.count ~terms:[] "anything");
  check int_ "empty text" 0 (Ir.Phrase.count ~terms:[ "x" ] "")

let test_phrase_single_term =
  QCheck.Test.make ~name:"single-term phrase = term count" ~count:200
    QCheck.printable_string (fun s ->
      let terms = Ir.Tokenizer.terms s in
      match terms with
      | [] -> true
      | t :: _ ->
        Ir.Phrase.count ~stem:false ~terms:[ t ] s
        = List.length (List.filter (String.equal t) terms))

(* ------------------------------------------------------------------ *)
(* Tfidf & Similarity *)

let test_tfidf_monotonic () =
  let w c = Ir.Tfidf.weight ~doc_count:1000 ~doc_freq:10 ~count:c in
  check bool_ "zero count" true (w 0 = 0.);
  check bool_ "monotone in count" true (w 2 > w 1);
  let idf_rare = Ir.Tfidf.idf ~doc_count:1000 ~doc_freq:1 in
  let idf_common = Ir.Tfidf.idf ~doc_count:1000 ~doc_freq:900 in
  check bool_ "rare terms weigh more" true (idf_rare > idf_common)

let test_tfidf_normalized () =
  let big =
    Ir.Tfidf.normalized_weight ~doc_count:100 ~doc_freq:5 ~count:2
      ~element_size:10000
  in
  let small =
    Ir.Tfidf.normalized_weight ~doc_count:100 ~doc_freq:5 ~count:2
      ~element_size:10
  in
  check bool_ "small elements score higher" true (small > big)

let test_count_same () =
  check int_ "shared terms" 2
    (Ir.Similarity.count_same "internet technologies rock"
       "internet and web technologies");
  check int_ "no overlap" 0 (Ir.Similarity.count_same "abc def" "ghi jkl")

let test_cosine () =
  check (Alcotest.float 1e-9) "identical" 1. (Ir.Similarity.cosine "a b c" "c b a");
  check (Alcotest.float 1e-9) "disjoint" 0. (Ir.Similarity.cosine "a b" "c d");
  let partial = Ir.Similarity.cosine "a b" "a c" in
  check bool_ "partial in (0,1)" true (partial > 0. && partial < 1.)

let test_jaccard () =
  check (Alcotest.float 1e-9) "identical" 1. (Ir.Similarity.jaccard "a b" "b a");
  check (Alcotest.float 1e-9) "empty" 0. (Ir.Similarity.jaccard "" "");
  check (Alcotest.float 1e-9) "third" (1. /. 3.) (Ir.Similarity.jaccard "a b" "a c")

let test_cosine_bounds =
  QCheck.Test.make ~name:"cosine within [0,1]" ~count:300
    QCheck.(pair printable_string printable_string)
    (fun (a, b) ->
      let c = Ir.Similarity.cosine a b in
      c >= 0. && c <= 1.0000001)

let test_stopwords () =
  check bool_ "the" true (Ir.Stopwords.is_stopword "the");
  check bool_ "internet" false (Ir.Stopwords.is_stopword "internet");
  check bool_ "list non-empty" true (List.length Ir.Stopwords.all > 50)


let test_bm25_properties () =
  let score c =
    Ir.Bm25.score ~doc_count:1000 ~doc_freq:10 ~count:c ~element_size:100
      ~avg_size:100. ()
  in
  check bool_ "zero count" true (score 0 = 0.);
  check bool_ "monotone" true (score 2 > score 1);
  (* saturation: the marginal gain of extra occurrences shrinks *)
  check bool_ "saturating" true (score 2 -. score 1 > score 10 -. score 9);
  (* length normalization: same counts in a longer element score less *)
  let long =
    Ir.Bm25.score ~doc_count:1000 ~doc_freq:10 ~count:2 ~element_size:1000
      ~avg_size:100. ()
  in
  check bool_ "length-normalized" true (score 2 > long);
  (* idf: rarer terms weigh more *)
  check bool_ "idf decreasing" true
    (Ir.Bm25.idf ~doc_count:1000 ~doc_freq:1
    > Ir.Bm25.idf ~doc_count:1000 ~doc_freq:500)

let test_bm25_nonnegative =
  QCheck.Test.make ~name:"bm25 non-negative" ~count:300
    QCheck.(quad (int_range 1 10000) (int_range 0 10000) (int_range 0 50) (int_range 1 500))
    (fun (n, df, c, size) ->
      let df = min df n in
      Ir.Bm25.score ~doc_count:n ~doc_freq:df ~count:c ~element_size:size
        ~avg_size:80. ()
      >= 0.)


let test_index_save_load () =
  let idx = build_index [ "alpha beta beta"; "beta gamma" ] in
  let buf = Buffer.create 256 in
  Ir.Inverted_index.save idx buf;
  let loaded, off = Ir.Inverted_index.load (Buffer.to_bytes buf) 0 in
  check int_ "consumed all" (Buffer.length buf) off;
  List.iter
    (fun term ->
      check int_
        (Printf.sprintf "cf(%s)" term)
        (Ir.Inverted_index.collection_freq idx term)
        (Ir.Inverted_index.collection_freq loaded term);
      check int_
        (Printf.sprintf "df(%s)" term)
        (Ir.Inverted_index.doc_freq idx term)
        (Ir.Inverted_index.doc_freq loaded term))
    [ "alpha"; "beta"; "gamma"; "missing" ];
  (* postings identical *)
  let dump i term =
    match Ir.Inverted_index.lookup i term with
    | Some p -> Ir.Postings.to_list p
    | None -> []
  in
  check bool_ "postings equal" true (dump idx "beta" = dump loaded "beta")

let test_index_load_buf_lazy () =
  (* load_buf maps the dictionary lazily over the image buffer; every
     query-visible reading must equal the eager loader's *)
  let idx = build_index [ "alpha beta beta"; "beta gamma delta" ] in
  let buf = Buffer.create 256 in
  Ir.Inverted_index.save idx buf;
  let bytes = Buffer.to_bytes buf in
  let lazy_idx, off_lazy =
    Ir.Inverted_index.load_buf (Ir.Codec.buf_of_bytes bytes) 0
  in
  check int_ "consumed all" (Buffer.length buf) off_lazy;
  check bool_ "dictionary is mapped" true
    (Ir.Dictionary.is_mapped (Ir.Inverted_index.dictionary lazy_idx));
  check bool_ "builder dictionary is in-memory" false
    (Ir.Dictionary.is_mapped (Ir.Inverted_index.dictionary idx));
  let eager = idx in
  let dump i term =
    match Ir.Inverted_index.lookup i term with
    | Some p -> Ir.Postings.to_list p
    | None -> []
  in
  List.iter
    (fun term ->
      check int_
        (Printf.sprintf "cf(%s)" term)
        (Ir.Inverted_index.collection_freq eager term)
        (Ir.Inverted_index.collection_freq lazy_idx term);
      check int_
        (Printf.sprintf "df(%s)" term)
        (Ir.Inverted_index.doc_freq eager term)
        (Ir.Inverted_index.doc_freq lazy_idx term);
      check bool_
        (Printf.sprintf "postings(%s)" term)
        true
        (dump eager term = dump lazy_idx term))
    [ "alpha"; "beta"; "gamma"; "delta"; "missing" ];
  check bool_ "terms_by_freq equal" true
    (Ir.Inverted_index.terms_by_freq eager
    = Ir.Inverted_index.terms_by_freq lazy_idx)

let test_mapped_dictionary () =
  (* a mapped dictionary materializes terms from the buffer on demand
     and is read-only *)
  let body = "abcd" in
  let d =
    Ir.Dictionary.of_mapped
      (Ir.Codec.buf_of_bytes (Bytes.of_string body))
      ~offs:[| 0; 2 |] ~lens:[| 2; 2 |]
  in
  check bool_ "is_mapped" true (Ir.Dictionary.is_mapped d);
  check int_ "size" 2 (Ir.Dictionary.size d);
  check bool_ "find ab" true (Ir.Dictionary.find d "ab" = Some 0);
  check bool_ "find cd" true (Ir.Dictionary.find d "cd" = Some 1);
  check bool_ "find missing" true (Ir.Dictionary.find d "zz" = None);
  check string_ "term 1" "cd" (Ir.Dictionary.term d 1);
  (* concurrent first access races benignly: every domain reads the
     same table *)
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            Ir.Dictionary.find d "ab" = Some 0
            && Ir.Dictionary.find d "cd" = Some 1))
  in
  check bool_ "concurrent finds agree" true
    (List.for_all Domain.join domains);
  match Ir.Dictionary.intern d "new" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "intern on a mapped dictionary must raise"

let test_index_save_load_property =
  QCheck.Test.make ~name:"index save/load roundtrip (random)" ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 1 4) printable_string)
    (fun docs ->
      let idx = build_index docs in
      let buf = Buffer.create 256 in
      Ir.Inverted_index.save idx buf;
      let loaded, _ = Ir.Inverted_index.load (Buffer.to_bytes buf) 0 in
      let terms = List.concat_map Ir.Tokenizer.terms docs in
      List.for_all
        (fun t ->
          Ir.Inverted_index.collection_freq idx t
          = Ir.Inverted_index.collection_freq loaded t)
        terms)

(* ------------------------------------------------------------------ *)
(* Collection statistics and the planner feedback table *)

let small_stats () =
  (* two documents of shape article(title, sec(p, p)); tag ids:
     article=0 title=1 sec=2 p=3 *)
  let b =
    Ir.Stats.builder ~documents:2 ~occurrences:40 ~distinct_terms:7
      ~tag_count:4 ()
  in
  for _ = 1 to 2 do
    Ir.Stats.add_element b ~tag:0 ~level:0;
    Ir.Stats.add_element b ~tag:1 ~level:1;
    Ir.Stats.add_element b ~tag:2 ~level:1;
    Ir.Stats.add_element b ~tag:3 ~level:2;
    Ir.Stats.add_element b ~tag:3 ~level:2
  done;
  Ir.Stats.freeze b

let test_stats_estimators () =
  let s = small_stats () in
  check int_ "elements" 10 s.Ir.Stats.elements;
  check int_ "tag_count p" 4 (Ir.Stats.tag_count s ~tag:3);
  check int_ "tag_count unknown" 0 (Ir.Stats.tag_count s ~tag:9);
  check bool_ "avg_depth" true (abs_float (Ir.Stats.avg_depth s -. 2.2) < 1e-9);
  check bool_ "article subtree is everything" true
    (Ir.Stats.subtree_fraction s ~tag:0 = 1.0);
  (* each sec subtree holds sec + 2 p: 6 of 10 elements *)
  check bool_ "sec subtree fraction" true
    (abs_float (Ir.Stats.subtree_fraction s ~tag:2 -. 0.6) < 1e-9);
  check bool_ "synopsis complete" true s.Ir.Stats.synopsis_complete

let test_stats_roundtrip () =
  let s = small_stats () in
  let buf = Buffer.create 64 in
  Ir.Stats.save s buf;
  let loaded, off =
    Ir.Stats.load_buf (Ir.Codec.buf_of_bytes (Buffer.to_bytes buf)) 0
  in
  check int_ "consumed all" (Buffer.length buf) off;
  check bool_ "roundtrip equal" true (loaded = s)

let test_stats_truncation () =
  let b =
    Ir.Stats.builder ~max_nodes:2 ~documents:1 ~occurrences:0 ~distinct_terms:0
      ~tag_count:4 ()
  in
  Ir.Stats.add_element b ~tag:0 ~level:0;
  Ir.Stats.add_element b ~tag:1 ~level:1;
  Ir.Stats.add_element b ~tag:2 ~level:1;
  (* over budget *)
  Ir.Stats.add_element b ~tag:3 ~level:2;
  (* below a truncation point *)
  let s = Ir.Stats.freeze b in
  check bool_ "truncated" false s.Ir.Stats.synopsis_complete;
  check int_ "node budget held" 2 s.Ir.Stats.synopsis_nodes;
  check int_ "tag_counts stay exact" 1 (Ir.Stats.tag_count s ~tag:2)

let test_feedback () =
  let f = Ir.Stats.Feedback.create () in
  check int_ "generation starts 0" 0 (Ir.Stats.Feedback.generation f);
  check bool_ "default correction" true
    (Ir.Stats.Feedback.correction f ~key:"q" = 1.0);
  Ir.Stats.Feedback.observe f ~key:"q" ~est:100. ~actual:1000.;
  check bool_ "correction learned" true
    (Ir.Stats.Feedback.correction f ~key:"q" = 10.0);
  check int_ "first observation sets baseline without a bump" 0
    (Ir.Stats.Feedback.generation f);
  Ir.Stats.Feedback.observe f ~key:"q" ~est:100. ~actual:100.;
  (* EWMA halves toward the new ratio; 5.5 is within a factor 2 of 10 *)
  check bool_ "ewma" true
    (abs_float (Ir.Stats.Feedback.correction f ~key:"q" -. 5.5) < 1e-9);
  check int_ "non-material move keeps generation" 0
    (Ir.Stats.Feedback.generation f);
  (* a big upward move against the established baseline is material *)
  Ir.Stats.Feedback.observe f ~key:"q" ~est:10. ~actual:3000.;
  check int_ "material move bumps generation" 1
    (Ir.Stats.Feedback.generation f);
  Ir.Stats.Feedback.observe f ~key:"r" ~est:1. ~actual:1e9;
  check bool_ "clamped" true (Ir.Stats.Feedback.correction f ~key:"r" = 64.0);
  check int_ "observations" 4 (Ir.Stats.Feedback.observations f)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "ir"
    [
      ( "tokenizer",
        [
          tc "basic" `Quick test_tokenizer_basic;
          tc "start pos" `Quick test_tokenizer_start_pos;
          tc "empty" `Quick test_tokenizer_empty;
          QCheck_alcotest.to_alcotest test_tokenizer_count_matches;
        ] );
      ( "stemmer",
        [
          tc "porter vectors" `Quick test_stemmer_vectors;
          tc "short words" `Quick test_stemmer_short;
          QCheck_alcotest.to_alcotest test_stemmer_total;
        ] );
      ( "codec",
        [
          tc "sequence" `Quick test_varint_sequence;
          tc "truncated input" `Quick test_codec_truncated;
          QCheck_alcotest.to_alcotest test_varint_roundtrip;
          QCheck_alcotest.to_alcotest test_zigzag_roundtrip;
        ] );
      ( "postings",
        [
          tc "roundtrip" `Quick test_postings_roundtrip;
          tc "order check" `Quick test_postings_order_check;
          tc "cursor reset" `Quick test_postings_cursor_reset;
          QCheck_alcotest.to_alcotest test_postings_property;
          tc "seek edges" `Quick test_seek_empty_and_edges;
          tc "max_tf" `Quick test_postings_max_tf;
          QCheck_alcotest.to_alcotest test_seek_matches_next_oracle;
          QCheck_alcotest.to_alcotest test_seek_survives_serialization;
          QCheck_alcotest.to_alcotest test_seek_doc_is_seek_pos_zero;
        ] );
      ( "packed codec",
        [
          tc "pack_bits edges" `Quick test_pack_bits_edges;
          tc "degenerate blocks" `Quick test_packed_degenerate_blocks;
          QCheck_alcotest.to_alcotest test_pack_bits_roundtrip;
          QCheck_alcotest.to_alcotest test_packed_matches_varint_oracle;
          QCheck_alcotest.to_alcotest test_packed_decodes_from_bigarray;
        ] );
      ( "inverted index",
        [
          tc "basic" `Quick test_index_basic;
          tc "positions" `Quick test_index_positions;
          tc "case insensitive" `Quick test_index_case_insensitive;
          tc "stemmed" `Quick test_index_stemmed;
          tc "terms by freq" `Quick test_index_terms_by_freq;
          QCheck_alcotest.to_alcotest test_index_freq_matches_naive;
          tc "save/load" `Quick test_index_save_load;
          tc "lazy load_buf" `Quick test_index_load_buf_lazy;
          tc "mapped dictionary" `Quick test_mapped_dictionary;
          QCheck_alcotest.to_alcotest test_index_save_load_property;
        ] );
      ( "stats",
        [
          tc "estimators" `Quick test_stats_estimators;
          tc "roundtrip" `Quick test_stats_roundtrip;
          tc "synopsis truncation" `Quick test_stats_truncation;
          tc "feedback corrections" `Quick test_feedback;
        ] );
      ( "phrase",
        [
          tc "count" `Quick test_phrase_count;
          tc "overlap" `Quick test_phrase_overlap;
          tc "empty" `Quick test_phrase_empty;
          QCheck_alcotest.to_alcotest test_phrase_single_term;
        ] );
      ( "scoring",
        [
          tc "tfidf monotonic" `Quick test_tfidf_monotonic;
          tc "bm25 properties" `Quick test_bm25_properties;
          QCheck_alcotest.to_alcotest test_bm25_nonnegative;
          tc "tfidf normalized" `Quick test_tfidf_normalized;
          tc "count_same" `Quick test_count_same;
          tc "cosine" `Quick test_cosine;
          tc "jaccard" `Quick test_jaccard;
          tc "stopwords" `Quick test_stopwords;
          QCheck_alcotest.to_alcotest test_cosine_bounds;
        ] );
    ]
