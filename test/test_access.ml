(* Tests for the access methods: TermJoin (plain and enhanced),
   Generalized Meet, the composite baselines, PhraseFinder, the
   structural join, Top-K and the stack-based Pick. The central
   property: every optimized method agrees with the naive oracle —
   and with each other — on both the paper's example database and
   randomly generated corpora. *)

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool

let paper_ctx =
  lazy (Access.Ctx.of_db (Store.Db.of_documents Workload.Paper_db.documents))

(* a small synthetic corpus with planted terms *)
let synth_ctx =
  lazy
    (let cfg =
       {
         Workload.Corpus.default with
         articles = 12;
         seed = 7;
         planted_terms = [ ("alphaterm", 40); ("betaterm", 25) ];
         planted_phrases = [ ("gammaone", "gammatwo", 15) ];
       }
     in
     let options = { Store.Db.default_options with keep_trees = false } in
     Access.Ctx.of_db (Store.Db.load ~options (Workload.Corpus.generate cfg)))

let key_score_list nodes =
  List.map
    (fun (n : Access.Scored_node.t) -> ((n.doc, n.start), n.score))
    (List.sort Access.Scored_node.compare_pos nodes)

let same_results name expected actual =
  let e = key_score_list expected and a = key_score_list actual in
  check int_ (name ^ ": node count") (List.length e) (List.length a);
  List.iter2
    (fun ((kd, ks), es) ((ad, astart), as_) ->
      check (Alcotest.pair int_ int_) (name ^ ": node") (kd, ks) (ad, astart);
      check (Alcotest.float 1e-6) (name ^ ": score") es as_)
    e a

(* ------------------------------------------------------------------ *)
(* TermJoin on the paper database: Fig. 5 / Fig. 6 scores *)

let test_term_join_paper_counts () =
  let ctx = Lazy.force paper_ctx in
  (* weighted ScoreFoo-style query: "search" 0.8, "internet" 0.6.
     Phrases need PhraseFinder; single terms suffice here. *)
  let results =
    Access.Term_join.to_list ctx ~terms:[ "search"; "internet" ]
      ~weights:[| 0.8; 0.6 |]
  in
  (* the article root contains 5 "search" and 1 "internet" *)
  let root =
    List.find
      (fun (n : Access.Scored_node.t) -> n.doc = 0 && n.start = 0)
      results
  in
  check (Alcotest.float 1e-6) "article score" ((5. *. 0.8) +. (1. *. 0.6))
    root.Access.Scored_node.score;
  (* every ancestor of an occurrence is emitted exactly once *)
  let keys = List.map (fun (n : Access.Scored_node.t) -> (n.doc, n.start)) results in
  check int_ "no duplicates" (List.length keys)
    (List.length (List.sort_uniq compare keys))

let test_term_join_missing_term () =
  let ctx = Lazy.force paper_ctx in
  let results = Access.Term_join.to_list ctx ~terms:[ "nonexistentterm" ] in
  check int_ "no results" 0 (List.length results)

let test_term_join_matches_naive_paper () =
  let ctx = Lazy.force paper_ctx in
  let terms = [ "search"; "retrieval" ] in
  same_results "tj vs naive"
    (Access.Naive.scored ctx ~terms)
    (Access.Term_join.to_list ctx ~terms)

let test_all_methods_agree_simple () =
  let ctx = Lazy.force synth_ctx in
  let terms = [ "alphaterm"; "betaterm" ] in
  let naive = Access.Naive.scored ctx ~terms in
  check bool_ "naive non-empty" true (naive <> []);
  same_results "termjoin" naive (Access.Term_join.to_list ctx ~terms);
  same_results "genmeet" naive (Access.Gen_meet.to_list ctx ~terms);
  same_results "comp1" naive (Access.Composite.comp1_list ctx ~terms);
  same_results "comp2" naive (Access.Composite.comp2_list ctx ~terms)

let test_all_methods_agree_complex () =
  let ctx = Lazy.force synth_ctx in
  let terms = [ "alphaterm"; "betaterm" ] in
  let mode = Access.Counter_scoring.Complex in
  let naive = Access.Naive.scored ~mode ctx ~terms in
  check bool_ "naive non-empty" true (naive <> []);
  same_results "termjoin plain" naive (Access.Term_join.to_list ~mode ctx ~terms);
  same_results "termjoin enhanced" naive
    (Access.Term_join.to_list ~variant:Access.Term_join.Enhanced ~mode ctx ~terms);
  same_results "genmeet" naive (Access.Gen_meet.to_list ~mode ctx ~terms);
  same_results "comp1" naive (Access.Composite.comp1_list ~mode ctx ~terms);
  same_results "comp2" naive (Access.Composite.comp2_list ~mode ctx ~terms)

let test_methods_agree_weighted () =
  let ctx = Lazy.force synth_ctx in
  let terms = [ "alphaterm"; "gammaone"; "gammatwo" ] in
  let weights = [| 0.8; 0.6; 0.4 |] in
  let naive = Access.Naive.scored ~weights ctx ~terms in
  same_results "termjoin" naive (Access.Term_join.to_list ~weights ctx ~terms);
  same_results "genmeet" naive (Access.Gen_meet.to_list ~weights ctx ~terms);
  same_results "comp1" naive (Access.Composite.comp1_list ~weights ctx ~terms);
  same_results "comp2" naive (Access.Composite.comp2_list ~weights ctx ~terms)

(* random-corpus property: all methods equal the oracle *)
let corpus_gen =
  QCheck.Gen.(
    map2
      (fun seed articles -> (seed, 2 + articles))
      (int_bound 1000) (int_bound 4))

let test_methods_property =
  QCheck.Test.make ~name:"all methods = naive (random corpora)" ~count:15
    (QCheck.make corpus_gen) (fun (seed, articles) ->
      let cfg =
        {
          Workload.Corpus.default with
          articles;
          seed;
          chapters_per_article = 2;
          sections_per_chapter = 2;
          paragraphs_per_section = 2;
          words_per_paragraph = 12;
          vocabulary = 60;
          planted_terms = [ ("xterm", 9); ("yterm", 6) ];
        }
      in
      let options = { Store.Db.default_options with keep_trees = false } in
      let ctx = Access.Ctx.of_db (Store.Db.load ~options (Workload.Corpus.generate cfg)) in
      let terms = [ "xterm"; "yterm" ] in
      let eq mode =
        let naive = key_score_list (Access.Naive.scored ~mode ctx ~terms) in
        let close (k1, s1) (k2, s2) = k1 = k2 && abs_float (s1 -. s2) < 1e-6 in
        let all_eq l = List.length l = List.length naive && List.for_all2 close naive l in
        all_eq (key_score_list (Access.Term_join.to_list ~mode ctx ~terms))
        && all_eq (key_score_list (Access.Gen_meet.to_list ~mode ctx ~terms))
        && all_eq (key_score_list (Access.Composite.comp1_list ~mode ctx ~terms))
        && all_eq (key_score_list (Access.Composite.comp2_list ~mode ctx ~terms))
      in
      eq Access.Counter_scoring.Simple && eq Access.Counter_scoring.Complex)

(* ------------------------------------------------------------------ *)
(* PhraseFinder vs Comp3 vs naive *)

let phrase_counts_of nodes =
  List.map
    (fun (n : Access.Scored_node.t) ->
      ((n.doc, n.start), int_of_float n.score))
    (List.sort Access.Scored_node.compare_pos nodes)

let test_phrase_finder_paper () =
  let ctx = Lazy.force paper_ctx in
  let hits = Access.Phrase_finder.to_list ctx ~phrase:[ "information"; "retrieval" ] in
  (* occurrences in #a15 (section-title), #a19, #a20 *)
  check int_ "three owning elements" 3 (List.length hits);
  check int_ "total occurrences" 3
    (Access.Phrase_finder.total_occurrences ctx
       ~phrase:[ "information"; "retrieval" ])

let test_phrase_finder_vs_naive () =
  let ctx = Lazy.force synth_ctx in
  let phrase = [ "gammaone"; "gammatwo" ] in
  let naive = Access.Naive.phrase_counts ctx ~phrase in
  let pf = phrase_counts_of (Access.Phrase_finder.to_list ctx ~phrase) in
  check bool_ "non-empty" true (naive <> []);
  check bool_ "phrase finder = naive" true (naive = pf)

let test_comp3_vs_phrase_finder () =
  let ctx = Lazy.force synth_ctx in
  let phrase = [ "gammaone"; "gammatwo" ] in
  let pf = phrase_counts_of (Access.Phrase_finder.to_list ctx ~phrase) in
  let c3 = phrase_counts_of (Access.Composite.comp3_list ctx ~phrase) in
  check bool_ "comp3 = phrase finder" true (pf = c3)

let test_phrase_no_match () =
  let ctx = Lazy.force synth_ctx in
  (* both terms exist but never adjacently in reverse order:
     "gammatwo gammaone" may occur rarely by chance in plantings of
     singles; use terms that never co-occur adjacently *)
  let hits = Access.Phrase_finder.to_list ctx ~phrase:[ "alphaterm"; "nonexistentterm" ] in
  check int_ "no hits" 0 (List.length hits)

let test_phrase_three_terms () =
  (* a hand-built doc with a three-word phrase *)
  let doc =
    Xmlkit.Tree.elem "d"
      [
        Xmlkit.Tree.el "p" [ Xmlkit.Tree.text "one two three and one two three" ];
        Xmlkit.Tree.el "p" [ Xmlkit.Tree.text "one two one three two three" ];
      ]
  in
  let ctx = Access.Ctx.of_db (Store.Db.of_documents [ ("d.xml", doc) ]) in
  let phrase = [ "one"; "two"; "three" ] in
  let naive = Access.Naive.phrase_counts ctx ~phrase in
  let pf = phrase_counts_of (Access.Phrase_finder.to_list ctx ~phrase) in
  let c3 = phrase_counts_of (Access.Composite.comp3_list ctx ~phrase) in
  check bool_ "pf = naive" true (naive = pf);
  check bool_ "comp3 = naive" true (naive = c3);
  check int_ "one owning element" 1 (List.length pf);
  check int_ "two occurrences" 2 (snd (List.hd pf))

let test_phrase_property =
  QCheck.Test.make ~name:"phrase finder = comp3 = naive (random)" ~count:15
    (QCheck.make corpus_gen) (fun (seed, articles) ->
      let cfg =
        {
          Workload.Corpus.default with
          articles;
          seed;
          chapters_per_article = 2;
          sections_per_chapter = 2;
          paragraphs_per_section = 2;
          words_per_paragraph = 10;
          vocabulary = 40;
          planted_phrases = [ ("pone", "ptwo", 7) ];
        }
      in
      let options = { Store.Db.default_options with keep_trees = false } in
      let ctx = Access.Ctx.of_db (Store.Db.load ~options (Workload.Corpus.generate cfg)) in
      let phrase = [ "pone"; "ptwo" ] in
      let naive = Access.Naive.phrase_counts ctx ~phrase in
      let pf = phrase_counts_of (Access.Phrase_finder.to_list ctx ~phrase) in
      let c3 = phrase_counts_of (Access.Composite.comp3_list ctx ~phrase) in
      naive = pf && naive = c3)

(* ------------------------------------------------------------------ *)
(* Structural join *)

let item ~doc ~start ~end_ ~level =
  { Access.Structural_join.doc; start; end_; level }

let test_structural_join_basic () =
  let ancestors =
    [| item ~doc:0 ~start:0 ~end_:10 ~level:0; item ~doc:0 ~start:1 ~end_:5 ~level:1 |]
  in
  let descendants =
    [| item ~doc:0 ~start:2 ~end_:3 ~level:2; item ~doc:0 ~start:7 ~end_:8 ~level:1 |]
  in
  let pairs = Access.Structural_join.pairs ~ancestors ~descendants () in
  (* (0,2): under both; (7,8): under root only *)
  check int_ "three pairs" 3 (List.length pairs)

let test_structural_join_parent_child () =
  let ancestors =
    [| item ~doc:0 ~start:0 ~end_:10 ~level:0; item ~doc:0 ~start:1 ~end_:5 ~level:1 |]
  in
  let descendants = [| item ~doc:0 ~start:2 ~end_:3 ~level:2 |] in
  let pairs =
    Access.Structural_join.pairs ~axis:`Parent_child ~ancestors ~descendants ()
  in
  check int_ "only direct parent" 1 (List.length pairs);
  let a, _ = List.hd pairs in
  check int_ "parent is inner" 1 a.Access.Structural_join.start

let test_structural_join_cross_doc () =
  let ancestors = [| item ~doc:0 ~start:0 ~end_:10 ~level:0 |] in
  let descendants = [| item ~doc:1 ~start:2 ~end_:3 ~level:1 |] in
  check int_ "no cross-doc pairs" 0
    (List.length (Access.Structural_join.pairs ~ancestors ~descendants ()))

let test_structural_join_against_naive () =
  let ctx = Lazy.force synth_ctx in
  (* ancestors: all "section" elements; descendants: all "p" *)
  let collect tag =
    let acc = ref [] in
    Store.Element_store.scan ctx.Access.Ctx.elements (fun r ->
        match Store.Catalog.tag_id ctx.Access.Ctx.catalog tag with
        | Some id when r.Store.Element_rec.tag = id ->
          acc :=
            item ~doc:r.Store.Element_rec.doc ~start:r.Store.Element_rec.start
              ~end_:r.Store.Element_rec.end_ ~level:r.Store.Element_rec.level
            :: !acc
        | Some _ | None -> ());
    Array.of_list (List.rev !acc)
  in
  let sections = collect "section" and ps = collect "p" in
  let joined = Access.Structural_join.pairs ~ancestors:sections ~descendants:ps () in
  let naive =
    Array.fold_left
      (fun acc (s : Access.Structural_join.item) ->
        acc
        + Array.length
            (Array.of_seq
               (Seq.filter
                  (fun (p : Access.Structural_join.item) ->
                    p.doc = s.doc && s.start < p.start && p.end_ <= s.end_)
                  (Array.to_seq ps))))
      0 sections
  in
  check int_ "pair count matches naive" naive (List.length joined)

(* ------------------------------------------------------------------ *)
(* Skip-aware paths: every seek-based implementation must return
   exactly what its sequential counterpart returns *)

let tag_regions ctx tag =
  match Store.Catalog.tag_id ctx.Access.Ctx.catalog tag with
  | None -> [||]
  | Some id ->
    Store.Tag_index.nodes ctx.Access.Ctx.tags ~tag:id
    |> Array.map (fun (i : Store.Tag_index.item) ->
           item ~doc:i.doc ~start:i.start ~end_:i.end_ ~level:i.level)
    |> Access.Structural_join.outermost

let test_phrase_skips_equivalent () =
  let ctx = Lazy.force synth_ctx in
  List.iter
    (fun phrase ->
      same_results "phrase skips on = off"
        (Access.Phrase_finder.to_list ~use_skips:false ctx ~phrase)
        (Access.Phrase_finder.to_list ctx ~phrase);
      check bool_ "comp3 skips on = off" true
        (phrase_counts_of (Access.Composite.comp3_list ~use_skips:false ctx ~phrase)
        = phrase_counts_of (Access.Composite.comp3_list ctx ~phrase)))
    [
      [ "gammaone"; "gammatwo" ];
      [ "gammatwo"; "gammaone" ];
      [ "alphaterm"; "betaterm" ];
      [ "gammaone" ];
      [ "alphaterm"; "alphaterm" ];
      [ "alphaterm"; "nonexistentterm" ];
    ]

let test_within_vs_filter () =
  let ctx = Lazy.force synth_ctx in
  let common =
    match Ir.Inverted_index.terms_by_freq ctx.Access.Ctx.index with
    | (t, _) :: _ -> t
    | [] -> Alcotest.fail "empty index"
  in
  List.iter
    (fun (tag, term) ->
      let within = tag_regions ctx tag in
      check bool_ (tag ^ ": has regions") true (Array.length within > 0);
      let postings =
        match Ir.Inverted_index.lookup ctx.Access.Ctx.index term with
        | Some p -> p
        | None -> Alcotest.fail ("missing term " ^ term)
      in
      let naive =
        List.filter
          (fun (o : Ir.Postings.occ) ->
            Array.exists
              (fun (r : Access.Structural_join.item) ->
                r.doc = o.doc && r.start < o.pos && o.pos < r.end_)
              within)
          (Ir.Postings.to_list postings)
      in
      let run use_skips =
        let acc = ref [] in
        let n =
          Access.Structural_join.occurrences_within ~use_skips
            (Ir.Postings.cursor postings) ~within
            ~emit:(fun _ o -> acc := o :: !acc)
            ()
        in
        check int_ (tag ^ ": return = emitted") n (List.length !acc);
        List.rev !acc
      in
      check bool_ (tag ^ ": skips on = filter") true (run true = naive);
      check bool_ (tag ^ ": skips off = filter") true (run false = naive))
    [
      ("p", "alphaterm");
      ("section", "betaterm");
      ("article", common);
      ("section-title", common);
      ("section-title", "alphaterm") (* plants never land in titles *);
    ];
  (* no regions at all: nothing is emitted and nothing is consumed *)
  let postings =
    match Ir.Inverted_index.lookup ctx.Access.Ctx.index common with
    | Some p -> p
    | None -> Alcotest.fail "missing common term"
  in
  check int_ "empty region set" 0
    (Access.Structural_join.occurrences_within
       (Ir.Postings.cursor postings) ~within:[||]
       ~emit:(fun _ _ -> Alcotest.fail "unexpected emit")
       ())

let test_gen_meet_within () =
  let ctx = Lazy.force synth_ctx in
  let terms = [ "alphaterm"; "betaterm" ] in
  (* the article roots cover every occurrence, so the scoped meet
     must reproduce the unscoped one *)
  same_results "within articles = unscoped"
    (Access.Gen_meet.to_list ctx ~terms)
    (Access.Gen_meet.to_list ~within:(tag_regions ctx "article") ctx ~terms);
  let sections = tag_regions ctx "section" in
  same_results "scoped skips on = off"
    (Access.Gen_meet.to_list ~within:sections ~use_skips:false ctx ~terms)
    (Access.Gen_meet.to_list ~within:sections ctx ~terms)

let naive_top_k_docs ctx ?weights ~terms ~k () =
  let weights =
    match weights with
    | Some w -> w
    | None -> Array.make (List.length terms) 1.0
  in
  let tbl = Hashtbl.create 64 in
  List.iteri
    (fun i t ->
      match Ir.Inverted_index.lookup ctx.Access.Ctx.index t with
      | None -> ()
      | Some p ->
        Ir.Postings.iter
          (fun o ->
            let d = o.Ir.Postings.doc in
            let tfs =
              match Hashtbl.find_opt tbl d with
              | Some a -> a
              | None ->
                let a = Array.make (List.length terms) 0 in
                Hashtbl.add tbl d a;
                a
            in
            tfs.(i) <- tfs.(i) + 1)
          p)
    terms;
  Hashtbl.fold
    (fun d tfs acc ->
      let score = ref 0. in
      Array.iteri (fun i c -> score := !score +. (weights.(i) *. float_of_int c)) tfs;
      if !score > 0. then (d, !score) :: acc else acc)
    tbl []
  |> List.sort (fun (d1, s1) (d2, s2) ->
         match compare s2 s1 with 0 -> compare d1 d2 | c -> c)
  |> List.filteri (fun i _ -> i < k)

let test_top_k_docs_equivalence () =
  let ctx = Lazy.force synth_ctx in
  List.iter
    (fun terms ->
      List.iter
        (fun k ->
          let naive = naive_top_k_docs ctx ~terms ~k () in
          check bool_ "skips on = naive" true
            (Access.Ranked.top_k_docs ctx ~terms ~k = naive);
          check bool_ "skips off = naive" true
            (Access.Ranked.top_k_docs ~use_skips:false ctx ~terms ~k = naive))
        [ 1; 2; 5; 100 ])
    [
      [ "alphaterm" ];
      [ "alphaterm"; "betaterm" ];
      [ "alphaterm"; "betaterm"; "gammaone" ];
      [ "alphaterm"; "nonexistentterm" ];
      [ "nonexistentterm" ];
      [];
    ];
  (* weighted, with exactly-representable weights so scores stay
     bit-comparable *)
  let terms = [ "alphaterm"; "betaterm" ] and weights = [| 2.0; 0.5 |] in
  let naive = naive_top_k_docs ctx ~weights ~terms ~k:4 () in
  check bool_ "weighted on = naive" true
    (Access.Ranked.top_k_docs ~weights ctx ~terms ~k:4 = naive);
  check bool_ "weighted off = naive" true
    (Access.Ranked.top_k_docs ~use_skips:false ~weights ctx ~terms ~k:4 = naive)

let test_skips_property =
  QCheck.Test.make ~name:"skip paths = sequential paths (random)" ~count:10
    (QCheck.make corpus_gen) (fun (seed, articles) ->
      let cfg =
        {
          Workload.Corpus.articles;
          seed;
          chapters_per_article = 2;
          sections_per_chapter = 2;
          paragraphs_per_section = 3;
          words_per_paragraph = 12;
          vocabulary = 40;
          planted_terms = [ ("rone", 20); ("rtwo", 9) ];
          planted_phrases = [ ("pone", "ptwo", 7) ];
        }
      in
      let options = { Store.Db.default_options with keep_trees = false } in
      let ctx =
        Access.Ctx.of_db (Store.Db.load ~options (Workload.Corpus.generate cfg))
      in
      let phrase = [ "pone"; "ptwo" ] in
      let sections = tag_regions ctx "section" in
      let terms = [ "rone"; "rtwo"; "pone" ] in
      key_score_list (Access.Phrase_finder.to_list ctx ~phrase)
      = key_score_list (Access.Phrase_finder.to_list ~use_skips:false ctx ~phrase)
      && phrase_counts_of (Access.Composite.comp3_list ctx ~phrase)
         = phrase_counts_of (Access.Composite.comp3_list ~use_skips:false ctx ~phrase)
      && key_score_list (Access.Gen_meet.to_list ~within:sections ctx ~terms)
         = key_score_list
             (Access.Gen_meet.to_list ~within:sections ~use_skips:false ctx ~terms)
      && Access.Ranked.top_k_docs ctx ~terms ~k:3
         = Access.Ranked.top_k_docs ~use_skips:false ctx ~terms ~k:3)

(* ------------------------------------------------------------------ *)
(* Top-K *)

let test_top_k_basic () =
  let tk = Access.Top_k.create 3 in
  List.iteri
    (fun i s -> Access.Top_k.add tk ~score:s i)
    [ 1.0; 5.0; 3.0; 4.0; 2.0 ];
  let result = Access.Top_k.to_sorted_list tk in
  check
    (Alcotest.list (Alcotest.float 1e-9))
    "top3 scores" [ 5.0; 4.0; 3.0 ] (List.map fst result);
  check (Alcotest.option (Alcotest.float 1e-9)) "cutoff" (Some 3.0)
    (Access.Top_k.cutoff tk)

let test_top_k_underfull () =
  let tk = Access.Top_k.create 10 in
  Access.Top_k.add tk ~score:1. "a";
  check int_ "count" 1 (Access.Top_k.count tk);
  check bool_ "no cutoff yet" true (Access.Top_k.cutoff tk = None)

let test_top_k_property =
  QCheck.Test.make ~name:"top-k = sort |> take k" ~count:300
    QCheck.(pair (int_range 1 20) (list_of_size (QCheck.Gen.int_range 0 50) (float_range 0. 100.)))
    (fun (k, scores) ->
      let tk = Access.Top_k.create k in
      List.iteri (fun i s -> Access.Top_k.add tk ~score:s i) scores;
      let got = List.map fst (Access.Top_k.to_sorted_list tk) in
      let expected =
        List.filteri (fun i _ -> i < k) (List.sort (fun a b -> compare b a) scores)
      in
      got = expected)

(* ------------------------------------------------------------------ *)
(* Pick: stack algorithm vs reference *)

let leaf tag score = Core.Stree.make ~score tag []

let scored_tree =
  (* mirrors the shape of the paper's Fig. 6 projection result *)
  Core.Stree.make ~score:5.6 "article"
    [
      Core.Stree.Node (leaf "article-title" 0.6);
      Core.Stree.Node (Core.Stree.make "sname" [ Core.Stree.Content "Doe" ]);
      Core.Stree.Node
        (Core.Stree.make ~score:5.0 "chapter"
           [
             Core.Stree.Node
               (Core.Stree.make ~score:0.8 "section"
                  [ Core.Stree.Node (leaf "section-title" 0.8) ]);
             Core.Stree.Node
               (Core.Stree.make ~score:0.6 "section"
                  [ Core.Stree.Node (leaf "section-title" 0.6) ]);
             Core.Stree.Node
               (Core.Stree.make ~score:3.6 "section"
                  [
                    Core.Stree.Node (leaf "p" 0.8);
                    Core.Stree.Node (leaf "p" 1.4);
                    Core.Stree.Node (leaf "p" 1.4);
                  ]);
           ]);
    ]

let tags nodes = List.sort compare (List.map (fun (n : Core.Stree.t) -> n.tag) nodes)

let test_pick_reference_example () =
  let crit = Core.Op_pick.pick_foo () in
  let returned =
    Core.Op_pick.returned crit ~candidates:(fun _ -> true) scored_tree
  in
  (* chapter is returned (2/3 relevant children); its sections are
     suppressed; the relevant leaves below unreturned sections are
     returned *)
  let ts = tags returned in
  check (Alcotest.list Alcotest.string) "returned set"
    [ "chapter"; "p"; "p"; "p"; "section-title" ]
    ts

let test_pick_stack_matches_reference () =
  let crit = Core.Op_pick.pick_foo () in
  let reference =
    Core.Op_pick.returned crit ~candidates:(fun _ -> true) scored_tree
  in
  let stack =
    Access.Pick_stack.returned crit ~candidates:(fun _ -> true) scored_tree
  in
  check (Alcotest.list Alcotest.string) "same set" (tags reference) (tags stack)

(* random scored trees *)
let gen_scored_tree =
  let open QCheck.Gen in
  fix
    (fun self depth ->
      let score =
        oneof [ return None; map Option.some (float_range 0. 2.) ]
      in
      if depth = 0 then
        map (fun s -> Core.Stree.make ?score:s "leaf" []) score
      else
        map2
          (fun s children ->
            Core.Stree.make ?score:s "node"
              (List.map (fun c -> Core.Stree.Node c) children))
          score
          (list_size (0 -- 3) (self (depth - 1))))
    4

let stree_ids nodes =
  List.sort compare
    (List.map
       (fun (n : Core.Stree.t) ->
         match n.id with
         | Core.Stree.Synthetic k -> k
         | Core.Stree.Stored { start; _ } -> start)
       nodes)

let test_pick_property =
  QCheck.Test.make ~name:"pick stack = reference (random trees)" ~count:300
    (QCheck.make gen_scored_tree) (fun tree ->
      let crit = Core.Op_pick.pick_foo ~threshold:1.0 () in
      let reference = Core.Op_pick.returned crit ~candidates:(fun _ -> true) tree in
      let stack = Access.Pick_stack.returned crit ~candidates:(fun _ -> true) tree in
      stree_ids reference = stree_ids stack)

let test_pick_property_candidates =
  QCheck.Test.make ~name:"pick stack = reference (partial candidates)"
    ~count:300 (QCheck.make gen_scored_tree) (fun tree ->
      let crit = Core.Op_pick.pick_foo ~threshold:0.5 ~fraction:0.3 () in
      let candidates (n : Core.Stree.t) = n.score <> None in
      let reference = Core.Op_pick.returned crit ~candidates tree in
      let stack = Access.Pick_stack.returned crit ~candidates tree in
      stree_ids reference = stree_ids stack)

let test_pick_sibling_filter () =
  (* horizontal redundancy: keep only the first returned sibling *)
  let first_only = function [] -> [] | x :: _ -> [ x ] in
  let crit =
    Core.Op_pick.criterion ~sibling_filter:first_only (fun n ->
        Core.Stree.score n >= 1.0)
  in
  let tree =
    Core.Stree.make "r"
      [
        Core.Stree.Node (leaf "a" 1.5);
        Core.Stree.Node (leaf "b" 1.5);
        Core.Stree.Node (leaf "c" 1.5);
      ]
  in
  let reference = Core.Op_pick.returned crit ~candidates:(fun _ -> true) tree in
  let stack = Access.Pick_stack.returned crit ~candidates:(fun _ -> true) tree in
  check (Alcotest.list Alcotest.string) "one sibling kept" [ "a" ] (tags reference);
  check (Alcotest.list Alcotest.string) "stack agrees" [ "a" ] (tags stack)


(* ------------------------------------------------------------------ *)
(* Score-modifying methods (Sec. 5.2) *)

let sn ~doc ~start ~end_ ~score =
  { Access.Scored_node.doc; start; end_; level = 0; tag = 0; score }

let test_set_union_basic () =
  let a = [ sn ~doc:0 ~start:1 ~end_:2 ~score:1.0; sn ~doc:0 ~start:5 ~end_:6 ~score:2.0 ] in
  let b = [ sn ~doc:0 ~start:5 ~end_:6 ~score:3.0; sn ~doc:1 ~start:0 ~end_:9 ~score:4.0 ] in
  let u = Access.Score_merge.set_union ~w1:1. ~w2:0.5 a b in
  check int_ "three nodes" 3 (List.length u);
  let scores = List.map (fun (n : Access.Scored_node.t) -> n.score) u in
  check (Alcotest.list (Alcotest.float 1e-9)) "combined scores"
    [ 1.0; 2.0 +. 1.5; 2.0 ] scores

let test_set_union_boost () =
  let a = [ sn ~doc:0 ~start:1 ~end_:2 ~score:1.0 ] in
  let b = [ sn ~doc:0 ~start:1 ~end_:2 ~score:1.0 ] in
  let u =
    Access.Score_merge.set_union ~combine:(Access.Score_merge.both_boost 2.) a b
  in
  check (Alcotest.float 1e-9) "boosted" 4.0
    (List.hd u).Access.Scored_node.score

let test_set_union_union_property =
  QCheck.Test.make ~name:"set_union = keys(a) U keys(b)" ~count:200
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_range 0 10) (int_bound 30))
        (list_of_size (QCheck.Gen.int_range 0 10) (int_bound 30)))
    (fun (ka, kb) ->
      let mk keys =
        List.map
          (fun k -> sn ~doc:0 ~start:k ~end_:(k + 1) ~score:1.)
          (List.sort_uniq compare keys)
      in
      let a = mk ka and b = mk kb in
      let u = Access.Score_merge.set_union a b in
      let keys l = List.map (fun (n : Access.Scored_node.t) -> n.start) l in
      keys u = List.sort_uniq compare (keys a @ keys b))

let test_value_join () =
  let a = [ sn ~doc:0 ~start:1 ~end_:2 ~score:1.0 ] in
  let b = [ sn ~doc:0 ~start:5 ~end_:6 ~score:2.0; sn ~doc:0 ~start:7 ~end_:8 ~score:0.5 ] in
  let joined =
    Access.Score_merge.value_join
      ~condition:(fun _ (r : Access.Scored_node.t) -> r.score > 1.)
      a b
  in
  check int_ "one pair" 1 (List.length joined);
  let _, _, s = List.hd joined in
  check (Alcotest.float 1e-9) "weighted sum" 3.0 s

let test_similarity_condition () =
  let ctx = Lazy.force paper_ctx in
  (* article-title #a2 and review-1 title share two terms *)
  let node ~doc ~start =
    match Store.Element_store.get ctx.Access.Ctx.elements ~doc ~start with
    | Some (r : Store.Element_rec.t) ->
      sn ~doc ~start ~end_:r.end_ ~score:0.
    | None -> Alcotest.fail "node not found"
  in
  (* find starts: article-title is the first child of the article *)
  let title = node ~doc:0 ~start:1 in
  let review_title = node ~doc:1 ~start:1 in
  check bool_ "similar" true
    (Access.Score_merge.similarity_condition ctx ~min_sim:2. title review_title);
  check bool_ "not that similar" false
    (Access.Score_merge.similarity_condition ctx ~min_sim:3. title review_title)

(* ------------------------------------------------------------------ *)
(* Store-level pattern execution *)

let query2_struct_pattern =
  let open Core.Pattern in
  make
    (pnode ~pred:(Tag "article") 1
       [
         pnode ~axis:Descendant ~pred:(Tag "author") 2
           [ pnode ~pred:(And (Tag "sname", Content_eq "Doe")) 3 [] ];
       ])
    []

let item_keys items =
  List.map
    (fun (i : Store.Tag_index.item) -> (i.doc, i.start))
    items

let test_pattern_exec_paper () =
  let ctx = Lazy.force paper_ctx in
  let articles = Access.Pattern_exec.matches ctx query2_struct_pattern ~var:1 in
  check
    (Alcotest.list (Alcotest.pair int_ int_))
    "one article" [ (0, 0) ] (item_keys articles);
  let snames = Access.Pattern_exec.matches ctx query2_struct_pattern ~var:3 in
  check int_ "one sname" 1 (List.length snames)

let test_pattern_exec_no_match () =
  let ctx = Lazy.force paper_ctx in
  let pat =
    Core.Pattern.make
      (Core.Pattern.pnode ~pred:(Core.Pattern.Tag "article") 1
         [
           Core.Pattern.pnode ~axis:Core.Pattern.Descendant
             ~pred:(Core.Pattern.Content_eq "Smith") 2 [];
         ])
      []
  in
  check int_ "no article by Smith" 0
    (List.length (Access.Pattern_exec.matches ctx pat ~var:1))

let test_pattern_exec_content_has () =
  let ctx = Lazy.force paper_ctx in
  let pat =
    Core.Pattern.make
      (Core.Pattern.pnode
         ~pred:
           (Core.Pattern.And
              (Core.Pattern.Tag "section", Core.Pattern.Content_has "search engine"))
         1 [])
      []
  in
  (* sections whose subtree mentions "search engine(s)": #a12 (title)
     and #a16 (paragraphs) *)
  check int_ "two sections" 2
    (List.length (Access.Pattern_exec.matches ctx pat ~var:1))

(* property: store-level execution agrees with the in-memory matcher *)
let test_pattern_exec_vs_matcher =
  QCheck.Test.make ~name:"pattern_exec = matcher (random corpora)" ~count:10
    (QCheck.make corpus_gen) (fun (seed, articles) ->
      let cfg =
        {
          Workload.Corpus.default with
          articles;
          seed;
          chapters_per_article = 2;
          sections_per_chapter = 2;
          paragraphs_per_section = 2;
          words_per_paragraph = 10;
          vocabulary = 50;
          planted_terms = [ ("zzmarker", 6) ];
        }
      in
      let db = Store.Db.load (Workload.Corpus.generate cfg) in
      let ctx = Access.Ctx.of_db db in
      let pat =
        Core.Pattern.make
          (Core.Pattern.pnode ~pred:(Core.Pattern.Tag "chapter") 1
             [
               Core.Pattern.pnode ~axis:Core.Pattern.Descendant
                 ~pred:
                   (Core.Pattern.And
                      (Core.Pattern.Tag "p", Core.Pattern.Content_has "zzmarker"))
                 2 [];
             ])
          []
      in
      let store_side var =
        item_keys (Access.Pattern_exec.matches ctx pat ~var)
      in
      let memory_side var =
        let rec docs i acc =
          if i >= articles then List.rev acc
          else begin
            match Store.Db.numbering db ~doc:i with
            | Some num -> docs (i + 1) ((i, Core.Stree.of_numbered num ~doc:i) :: acc)
            | None -> docs (i + 1) acc
          end
        in
        List.concat_map
          (fun (doc, tree) ->
            ignore doc;
            List.filter_map
              (fun (n : Core.Stree.t) ->
                match n.id with
                | Core.Stree.Stored { doc; start } -> Some (doc, start)
                | Core.Stree.Synthetic _ -> None)
              (Core.Matcher.matches_of_var pat var tree))
          (docs 0 [])
      in
      store_side 1 = memory_side 1 && store_side 2 = memory_side 2)

let test_scored_matches () =
  let ctx = Lazy.force paper_ctx in
  let full_pattern =
    let open Core.Pattern in
    make
      (pnode ~pred:(Tag "article") 1
         [
           pnode ~axis:Descendant ~pred:(Tag "author") 2
             [ pnode ~pred:(And (Tag "sname", Content_eq "Doe")) 3 [] ];
         ])
      []
  in
  let scored =
    Access.Pattern_exec.scored_matches ctx full_pattern ~struct_var:1
      ~terms:[ "search"; "internet" ]
  in
  (* all scored nodes are within the (single) matching article *)
  check bool_ "non-empty" true (scored <> []);
  check bool_ "all in doc 0" true
    (List.for_all (fun (n : Access.Scored_node.t) -> n.doc = 0) scored)

(* ------------------------------------------------------------------ *)
(* Tag index *)

let test_tag_index () =
  let ctx = Lazy.force paper_ctx in
  let tag name =
    match Store.Catalog.tag_id ctx.Access.Ctx.catalog name with
    | Some id -> id
    | None -> Alcotest.failf "unknown tag %s" name
  in
  check int_ "three chapters" 3
    (Store.Tag_index.count ctx.Access.Ctx.tags ~tag:(tag "chapter"));
  check int_ "seven paragraphs" 7
    (Store.Tag_index.count ctx.Access.Ctx.tags ~tag:(tag "p"));
  check int_ "all elements" 36
    (Array.length (Store.Tag_index.all ctx.Access.Ctx.tags));
  (* document order *)
  let items = Array.to_list (Store.Tag_index.all ctx.Access.Ctx.tags) in
  let keys = item_keys items in
  check bool_ "sorted" true (keys = List.sort compare keys)


(* ------------------------------------------------------------------ *)
(* Ranked access (Sec. 5.3) *)

let test_ranked_top_k () =
  let ctx = Lazy.force synth_ctx in
  let emitter ~emit () =
    Access.Term_join.run ctx ~terms:[ "alphaterm"; "betaterm" ] ~emit ()
  in
  let top5 = Access.Ranked.top_k 5 emitter in
  check int_ "five results" 5 (List.length top5);
  let all =
    List.sort Access.Scored_node.compare_score_desc
      (Access.Term_join.to_list ctx ~terms:[ "alphaterm"; "betaterm" ])
  in
  let expected = List.filteri (fun i _ -> i < 5) all in
  check bool_ "same as sort-take" true
    (List.map (fun (n : Access.Scored_node.t) -> n.score) top5
    = List.map (fun (n : Access.Scored_node.t) -> n.score) expected)

let test_ranked_above () =
  let ctx = Lazy.force synth_ctx in
  let emitter ~emit () =
    Access.Term_join.run ctx ~terms:[ "alphaterm" ] ~emit ()
  in
  let hits = Access.Ranked.above 2.0 emitter in
  check bool_ "all above" true
    (List.for_all (fun (n : Access.Scored_node.t) -> n.score > 2.0) hits);
  let all = Access.Term_join.to_list ctx ~terms:[ "alphaterm" ] in
  check int_ "count matches filter" 
    (List.length (List.filter (fun (n : Access.Scored_node.t) -> n.score > 2.0) all))
    (List.length hits)

let test_ranked_top_fraction () =
  let ctx = Lazy.force synth_ctx in
  let emitter ~emit () =
    Access.Term_join.run ctx ~terms:[ "alphaterm"; "betaterm" ] ~emit ()
  in
  let total = List.length (Access.Term_join.to_list ctx ~terms:[ "alphaterm"; "betaterm" ]) in
  let best = Access.Ranked.top_fraction ~q:0.9 emitter in
  check bool_ "roughly a decile" true
    (List.length best > 0 && List.length best < total / 2)


(* ------------------------------------------------------------------ *)
(* PathStack holistic chain join *)

let chain_pattern preds =
  (* builds //p1//p2//... with fresh vars 1.. *)
  let rec build i = function
    | [] -> assert false
    | [ pred ] -> Core.Pattern.pnode ~axis:Core.Pattern.Descendant ~pred i []
    | pred :: rest ->
      Core.Pattern.pnode ~axis:Core.Pattern.Descendant ~pred i
        [ build (i + 1) rest ]
  in
  match preds with
  | [] -> assert false
  | first :: rest ->
    Core.Pattern.make
      (Core.Pattern.pnode ~pred:first 1 (match rest with
        | [] -> []
        | _ -> [ build 2 rest ]))
      []

let test_path_stack_supported () =
  let open Core.Pattern in
  check bool_ "chain ok" true
    (Access.Path_stack.supported (chain_pattern [ Tag "a"; Tag "b" ]));
  let twig =
    make
      (pnode ~pred:(Tag "a") 1
         [
           pnode ~axis:Descendant ~pred:(Tag "b") 2 [];
           pnode ~axis:Descendant ~pred:(Tag "c") 3 [];
         ])
      []
  in
  check bool_ "twig not supported" false (Access.Path_stack.supported twig);
  let pc_chain =
    make (pnode ~pred:(Tag "a") 1 [ pnode ~axis:Child ~pred:(Tag "b") 2 [] ]) []
  in
  check bool_ "pc chain not supported" false
    (Access.Path_stack.supported pc_chain)

let test_path_stack_paper () =
  let ctx = Lazy.force paper_ctx in
  let open Core.Pattern in
  let pat = chain_pattern [ Tag "chapter"; Tag "section"; Tag "p" ] in
  List.iter
    (fun var ->
      let ps = item_keys (Access.Path_stack.matches ctx pat ~var) in
      let pe = item_keys (Access.Pattern_exec.matches ctx pat ~var) in
      check
        (Alcotest.list (Alcotest.pair int_ int_))
        (Printf.sprintf "var %d" var) pe ps)
    [ 1; 2; 3 ];
  (* chapters containing section/p chains: only the third chapter *)
  check int_ "one chapter" 1
    (List.length (Access.Path_stack.matches ctx pat ~var:1))

let test_path_stack_nested_same_tag () =
  (* self-nesting elements stress the per-level stacks *)
  let doc =
    Xmlkit.Parser.parse_string_exn
      "<a><a><b><a/><b>x</b></b></a><b/></a>"
  in
  let ctx = Access.Ctx.of_db (Store.Db.of_documents [ ("n.xml", doc) ]) in
  let open Core.Pattern in
  let pat = chain_pattern [ Tag "a"; Tag "a"; Tag "b" ] in
  List.iter
    (fun var ->
      let ps = item_keys (Access.Path_stack.matches ctx pat ~var) in
      let pe = item_keys (Access.Pattern_exec.matches ctx pat ~var) in
      check
        (Alcotest.list (Alcotest.pair int_ int_))
        (Printf.sprintf "nested var %d" var) pe ps)
    [ 1; 2; 3 ]

let test_path_stack_property =
  QCheck.Test.make ~name:"path stack = pattern exec (random corpora)" ~count:12
    (QCheck.make corpus_gen) (fun (seed, articles) ->
      let cfg =
        {
          Workload.Corpus.default with
          articles;
          seed;
          chapters_per_article = 2;
          sections_per_chapter = 2;
          paragraphs_per_section = 2;
          words_per_paragraph = 8;
          vocabulary = 40;
          planted_terms = [ ("needle", 5) ];
        }
      in
      let options = { Store.Db.default_options with keep_trees = false } in
      let ctx =
        Access.Ctx.of_db (Store.Db.load ~options (Workload.Corpus.generate cfg))
      in
      let open Core.Pattern in
      let patterns =
        [
          chain_pattern [ Tag "article"; Tag "section"; Tag "p" ];
          chain_pattern [ Tag "chapter"; Tag "p" ];
          chain_pattern [ True; Tag "p" ];
          chain_pattern
            [ Tag "article"; And (Tag "p", Content_has "needle") ];
        ]
      in
      List.for_all
        (fun pat ->
          List.for_all
            (fun var ->
              item_keys (Access.Path_stack.matches ctx pat ~var)
              = item_keys (Access.Pattern_exec.matches ctx pat ~var))
            (Core.Pattern.vars pat))
        patterns)


(* ------------------------------------------------------------------ *)
(* TwigStack holistic twig join *)

let twig preds_root children =
  Core.Pattern.make
    (Core.Pattern.pnode ~pred:preds_root 1
       (List.mapi
          (fun i pred ->
            Core.Pattern.pnode ~axis:Core.Pattern.Descendant ~pred (i + 2) [])
          children))
    []

let test_twig_stack_supported () =
  let open Core.Pattern in
  check bool_ "twig ok" true
    (Access.Twig_stack.supported (twig (Tag "a") [ Tag "b"; Tag "c" ]));
  let pc =
    make (pnode ~pred:(Tag "a") 1 [ pnode ~axis:Child ~pred:(Tag "b") 2 [] ]) []
  in
  check bool_ "pc unsupported" false (Access.Twig_stack.supported pc)

let test_twig_stack_paper () =
  let ctx = Lazy.force paper_ctx in
  let open Core.Pattern in
  (* articles having BOTH a "section" and a "ct" descendant; also the
     deeper twig article(author(sname), section-title) *)
  let patterns =
    [
      twig (Tag "article") [ Tag "section"; Tag "ct" ];
      twig (Tag "chapter") [ Tag "section-title"; Tag "p" ];
      Core.Pattern.make
        (pnode ~pred:(Tag "article") 1
           [
             pnode ~axis:Descendant ~pred:(Tag "author") 2
               [ pnode ~axis:Descendant ~pred:(Tag "sname") 3 [] ];
             pnode ~axis:Descendant ~pred:(Tag "section-title") 4 [];
           ])
        [];
    ]
  in
  List.iter
    (fun pat ->
      List.iter
        (fun var ->
          let ts = item_keys (Access.Twig_stack.matches ctx pat ~var) in
          let pe = item_keys (Access.Pattern_exec.matches ctx pat ~var) in
          check
            (Alcotest.list (Alcotest.pair int_ int_))
            (Printf.sprintf "var %d" var) pe ts)
        (Core.Pattern.vars pat))
    patterns

let test_twig_stack_chain_agrees_with_path_stack () =
  let ctx = Lazy.force paper_ctx in
  let open Core.Pattern in
  let pat =
    make
      (pnode ~pred:(Tag "chapter") 1
         [
           pnode ~axis:Descendant ~pred:(Tag "section") 2
             [ pnode ~axis:Descendant ~pred:(Tag "p") 3 [] ];
         ])
      []
  in
  List.iter
    (fun var ->
      check
        (Alcotest.list (Alcotest.pair int_ int_))
        (Printf.sprintf "var %d" var)
        (item_keys (Access.Path_stack.matches ctx pat ~var))
        (item_keys (Access.Twig_stack.matches ctx pat ~var)))
    [ 1; 2; 3 ]

let test_twig_stack_property =
  QCheck.Test.make ~name:"twig stack = pattern exec (random corpora)" ~count:12
    (QCheck.make corpus_gen) (fun (seed, articles) ->
      let cfg =
        {
          Workload.Corpus.default with
          articles;
          seed;
          chapters_per_article = 2;
          sections_per_chapter = 2;
          paragraphs_per_section = 2;
          words_per_paragraph = 8;
          vocabulary = 40;
          planted_terms = [ ("needle", 5) ];
        }
      in
      let options = { Store.Db.default_options with keep_trees = false } in
      let ctx =
        Access.Ctx.of_db (Store.Db.load ~options (Workload.Corpus.generate cfg))
      in
      let open Core.Pattern in
      let patterns =
        [
          twig (Tag "article") [ Tag "section-title"; Tag "p" ];
          twig (Tag "chapter") [ Tag "p"; And (Tag "p", Content_has "needle") ];
          twig True [ Tag "section"; Tag "p" ];
          Core.Pattern.make
            (pnode ~pred:(Tag "article") 1
               [
                 pnode ~axis:Descendant ~pred:(Tag "chapter") 2
                   [
                     pnode ~axis:Descendant ~pred:(Tag "section") 3
                       [ pnode ~axis:Descendant ~pred:(Tag "p") 4 [] ];
                     pnode ~axis:Descendant ~pred:(Tag "section-title") 5 [];
                   ];
               ])
            [];
        ]
      in
      List.for_all
        (fun pat ->
          List.for_all
            (fun var ->
              item_keys (Access.Twig_stack.matches ctx pat ~var)
              = item_keys (Access.Pattern_exec.matches ctx pat ~var))
            (Core.Pattern.vars pat))
        patterns)


(* ------------------------------------------------------------------ *)
(* Snippets *)

let test_snippet_highlight () =
  let s =
    Access.Snippet.of_text ~width:6 ~terms:[ "engine" ]
      "a search engine indexes many engines quickly today"
  in
  check bool_ "highlights stem matches" true
    (let has sub =
       let rec find i =
         i + String.length sub <= String.length s
         && (String.sub s i (String.length sub) = sub || find (i + 1))
       in
       find 0
     in
     has "[engine]" && has "[engines]")

let test_snippet_window () =
  let text =
    String.concat " " (List.init 60 (fun i -> Printf.sprintf "w%d" i))
    ^ " needle tail"
  in
  let s = Access.Snippet.of_text ~width:5 ~terms:[ "needle" ] text in
  check bool_ "window centers on match" true
    (String.length s < 60
    &&
    let rec find i =
      i + 8 <= String.length s && (String.sub s i 8 = "[needle]" || find (i + 1))
    in
    find 0);
  check Alcotest.string "empty text" "" (Access.Snippet.of_text ~terms:[ "x" ] "")

let test_snippet_of_node () =
  let ctx = Lazy.force paper_ctx in
  let node =
    List.find
      (fun (n : Access.Scored_node.t) -> n.level = 0)
      (Access.Term_join.to_list ctx ~terms:[ "search" ])
  in
  let s = Access.Snippet.of_node ctx ~terms:[ "search" ] node in
  check bool_ "snippet produced" true (String.length s > 0)

(* ------------------------------------------------------------------ *)
(* random-tree equivalence: store-level matchers vs the in-memory
   matcher on arbitrarily nested documents *)

let gen_nested_doc =
  let open QCheck.Gen in
  let tag = oneofl [ "a"; "b"; "c" ] in
  fix
    (fun self depth ->
      if depth = 0 then
        map (fun t -> Xmlkit.Tree.elem t [ Xmlkit.Tree.text "x" ]) tag
      else
        map2
          (fun t children ->
            Xmlkit.Tree.elem t (List.map (fun e -> Xmlkit.Tree.Element e) children))
          tag
          (list_size (1 -- 3) (self (depth - 1))))
    4

let test_matchers_on_random_trees =
  QCheck.Test.make ~name:"store matchers = in-memory matcher (random trees)"
    ~count:60 (QCheck.make gen_nested_doc) (fun doc ->
      let root = Xmlkit.Tree.elem "r" [ Xmlkit.Tree.Element doc ] in
      let db = Store.Db.of_documents [ ("t.xml", root) ] in
      let ctx = Access.Ctx.of_db db in
      let tree =
        match Store.Db.numbering db ~doc:0 with
        | Some num -> Core.Stree.of_numbered num ~doc:0
        | None -> assert false
      in
      let open Core.Pattern in
      let patterns =
        [
          make (pnode ~pred:(Tag "a") 1
                  [ pnode ~axis:Descendant ~pred:(Tag "b") 2 [] ]) [];
          make (pnode ~pred:(Tag "a") 1
                  [ pnode ~axis:Descendant ~pred:(Tag "a") 2
                      [ pnode ~axis:Descendant ~pred:(Tag "c") 3 [] ] ]) [];
          make (pnode ~pred:(Tag "b") 1
                  [
                    pnode ~axis:Descendant ~pred:(Tag "a") 2 [];
                    pnode ~axis:Descendant ~pred:(Tag "c") 3 [];
                  ]) [];
        ]
      in
      let memory pat var =
        List.filter_map
          (fun (n : Core.Stree.t) ->
            match n.id with
            | Core.Stree.Stored { doc; start } -> Some (doc, start)
            | Core.Stree.Synthetic _ -> None)
          (Core.Matcher.matches_of_var pat var tree)
      in
      List.for_all
        (fun pat ->
          List.for_all
            (fun var ->
              let expected = memory pat var in
              let pe = item_keys (Access.Pattern_exec.matches ctx pat ~var) in
              let twig =
                if Access.Twig_stack.supported pat then
                  item_keys (Access.Twig_stack.matches ctx pat ~var)
                else pe
              in
              let path =
                if Access.Path_stack.supported pat then
                  item_keys (Access.Path_stack.matches ctx pat ~var)
                else pe
              in
              expected = pe && expected = twig && expected = path)
            (Core.Pattern.vars pat))
        patterns)


(* ------------------------------------------------------------------ *)
(* error paths *)

let test_error_paths () =
  let ctx = Lazy.force paper_ctx in
  let open Core.Pattern in
  let bad_pred =
    make (pnode ~pred:(Or (Tag "a", Tag "b")) 1 []) []
  in
  (match Access.Pattern_exec.matches ctx bad_pred ~var:1 with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ());
  let twig_pat =
    make
      (pnode ~pred:(Tag "a") 1
         [
           pnode ~axis:Descendant ~pred:(Tag "b") 2 [];
           pnode ~axis:Descendant ~pred:(Tag "c") 3 [];
         ])
      []
  in
  (match Access.Path_stack.matches ctx twig_pat ~var:1 with
  | _ -> Alcotest.fail "expected Invalid_argument for twig in PathStack"
  | exception Invalid_argument _ -> ());
  let pc_pat =
    make (pnode ~pred:(Tag "a") 1 [ pnode ~axis:Child ~pred:(Tag "b") 2 [] ]) []
  in
  (match Access.Twig_stack.matches ctx pc_pat ~var:1 with
  | _ -> Alcotest.fail "expected Invalid_argument for pc twig"
  | exception Invalid_argument _ -> ());
  (match Access.Top_k.create 0 with
  | _ -> Alcotest.fail "expected Invalid_argument for k=0"
  | exception Invalid_argument _ -> ())


let test_term_join_cursor () =
  let ctx = Lazy.force synth_ctx in
  let terms = [ "alphaterm"; "betaterm" ] in
  (* pulling the cursor yields exactly what run emits, in order *)
  let via_run = ref [] in
  let _ =
    Access.Term_join.run ctx ~terms ~emit:(fun n -> via_run := n :: !via_run) ()
  in
  let c = Access.Term_join.cursor ctx ~terms in
  let rec pull acc =
    match Access.Term_join.next c with
    | Some n -> pull (n :: acc)
    | None -> acc
  in
  let via_cursor = pull [] in
  check bool_ "cursor = run" true (via_cursor = !via_run);
  (* and the cursor is exhausted for good *)
  check bool_ "stays exhausted" true (Access.Term_join.next c = None);
  (* early termination: taking just one result is legal *)
  let c2 = Access.Term_join.cursor ctx ~terms in
  check bool_ "first pull works" true (Access.Term_join.next c2 <> None)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "access"
    [
      ( "term_join",
        [
          tc "paper counts" `Quick test_term_join_paper_counts;
          tc "missing term" `Quick test_term_join_missing_term;
          tc "matches naive (paper)" `Quick test_term_join_matches_naive_paper;
          tc "cursor = run" `Quick test_term_join_cursor;
        ] );
      ( "method agreement",
        [
          tc "simple scoring" `Quick test_all_methods_agree_simple;
          tc "complex scoring" `Quick test_all_methods_agree_complex;
          tc "weighted" `Quick test_methods_agree_weighted;
          QCheck_alcotest.to_alcotest test_methods_property;
        ] );
      ( "phrase",
        [
          tc "paper phrase" `Quick test_phrase_finder_paper;
          tc "vs naive" `Quick test_phrase_finder_vs_naive;
          tc "comp3 agreement" `Quick test_comp3_vs_phrase_finder;
          tc "no match" `Quick test_phrase_no_match;
          tc "three terms" `Quick test_phrase_three_terms;
          QCheck_alcotest.to_alcotest test_phrase_property;
        ] );
      ( "structural join",
        [
          tc "basic" `Quick test_structural_join_basic;
          tc "parent-child" `Quick test_structural_join_parent_child;
          tc "cross-doc" `Quick test_structural_join_cross_doc;
          tc "vs naive" `Quick test_structural_join_against_naive;
        ] );
      ( "skip paths",
        [
          tc "phrase/comp3 on=off" `Quick test_phrase_skips_equivalent;
          tc "occurrences_within = filter" `Quick test_within_vs_filter;
          tc "scoped gen_meet" `Quick test_gen_meet_within;
          tc "top_k_docs = naive" `Quick test_top_k_docs_equivalence;
          QCheck_alcotest.to_alcotest test_skips_property;
        ] );
      ( "top_k",
        [
          tc "basic" `Quick test_top_k_basic;
          tc "underfull" `Quick test_top_k_underfull;
          QCheck_alcotest.to_alcotest test_top_k_property;
        ] );
      ( "pick",
        [
          tc "reference example" `Quick test_pick_reference_example;
          tc "stack matches reference" `Quick test_pick_stack_matches_reference;
          tc "sibling filter" `Quick test_pick_sibling_filter;
          QCheck_alcotest.to_alcotest test_pick_property;
          QCheck_alcotest.to_alcotest test_pick_property_candidates;
        ] );
      ( "score merge",
        [
          tc "set union" `Quick test_set_union_basic;
          tc "both boost" `Quick test_set_union_boost;
          tc "value join" `Quick test_value_join;
          tc "similarity condition" `Quick test_similarity_condition;
          QCheck_alcotest.to_alcotest test_set_union_union_property;
        ] );
      ( "pattern exec",
        [
          tc "paper query 2 structure" `Quick test_pattern_exec_paper;
          tc "no match" `Quick test_pattern_exec_no_match;
          tc "content_has" `Quick test_pattern_exec_content_has;
          tc "scored matches" `Quick test_scored_matches;
          QCheck_alcotest.to_alcotest test_pattern_exec_vs_matcher;
        ] );
      ("tag index", [ tc "counts and order" `Quick test_tag_index ]);
      ( "path stack",
        [
          tc "supported shapes" `Quick test_path_stack_supported;
          tc "paper chains" `Quick test_path_stack_paper;
          tc "nested same tag" `Quick test_path_stack_nested_same_tag;
          QCheck_alcotest.to_alcotest test_path_stack_property;
        ] );
      ( "twig stack",
        [
          tc "supported shapes" `Quick test_twig_stack_supported;
          tc "paper twigs" `Quick test_twig_stack_paper;
          tc "chain agrees with path stack" `Quick
            test_twig_stack_chain_agrees_with_path_stack;
          QCheck_alcotest.to_alcotest test_twig_stack_property;
        ] );
      ("errors", [ tc "invalid inputs rejected" `Quick test_error_paths ]);
      ( "snippet",
        [
          tc "highlight" `Quick test_snippet_highlight;
          tc "window" `Quick test_snippet_window;
          tc "of node" `Quick test_snippet_of_node;
        ] );
      ( "random trees",
        [ QCheck_alcotest.to_alcotest test_matchers_on_random_trees ] );
      ( "ranked",
        [
          tc "top-k" `Quick test_ranked_top_k;
          tc "above" `Quick test_ranked_above;
          tc "top fraction" `Quick test_ranked_top_fraction;
        ] );
    ]
