(* Distributed coordinator tests: manifest invariants, scatter-gather
   equality against a single-node server over real sockets (2 and 4
   shards, every access family, ties included), θ-relay windows,
   replica failover, torn-connection retry, and the degraded path.

   The oracle is the single-node server over the whole corpus: the
   coordinator's response must be byte-identical (timings and the
   cache flag stripped — both are nondeterministic across runs). *)

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string

module Json = Service.Json
module Protocol = Service.Protocol

(* ------------------------------------------------------------------ *)
(* Corpus: planted terms with frequencies that force score ties across
   shard boundaries — the merge's (score desc, doc, start) tie-break
   must reproduce the single-node order exactly. *)

let cfg =
  {
    Workload.Corpus.articles = 24;
    seed = 13;
    chapters_per_article = 2;
    sections_per_chapter = 2;
    paragraphs_per_section = 2;
    words_per_paragraph = 14;
    vocabulary = 150;
    planted_terms = [ ("pxone", 120); ("pxtwo", 70); ("pxrare", 5) ];
    planted_phrases = [ ("pxpa", "pxpb", 15) ];
  }

(* trees stay retained (the default) so the interpreter path works on
   every shard: compact keeps trees when its sources had them *)
let full_db = lazy (Store.Db.load (Workload.Corpus.generate cfg))

let doc_count () =
  Store.Catalog.document_count (Store.Db.catalog (Lazy.force full_db))

let snapshot_exn ~source db =
  match Service.Engine.of_db ~source db with
  | Ok s -> s
  | Error msg -> Alcotest.failf "of_db: %s" msg

(* ------------------------------------------------------------------ *)
(* Cluster harness: one scheduler per shard (shared by its replica
   servers, like replicas serving one image), real TCP servers on
   kernel-assigned ports. *)

type cluster = {
  map : Dist.Shard_map.t;
  servers : Service.Server.t array array;  (* per shard, per replica *)
  schedulers : Service.Scheduler.t array;
}

let start_cluster ?(replicas = 1) n =
  let db = Lazy.force full_db in
  let docs = Store.Catalog.document_count (Store.Db.catalog db) in
  let ranges = Dist.Shard_map.ranges ~docs ~shards:n in
  let parts =
    List.mapi
      (fun i (lo, hi) ->
        let tombstones = Array.init docs (fun d -> d < lo || d >= hi) in
        let shard_db = Store.Db.compact ~base:db ~delta:None ~tombstones in
        let snap = snapshot_exn ~source:(Printf.sprintf "shard-%d" i) shard_db in
        let scheduler = Service.Scheduler.create ~workers:1 snap in
        let servers =
          Array.init replicas (fun _ -> Service.Server.start scheduler)
        in
        let eps =
          Array.to_list servers
          |> List.map (fun s ->
                 {
                   Dist.Shard_map.host = "127.0.0.1";
                   port = Service.Server.port s;
                 })
        in
        ( { Dist.Shard_map.lo; hi; image = Printf.sprintf "shard-%d" i;
            replicas = eps },
          servers, scheduler ))
      ranges
  in
  let map =
    match Dist.Shard_map.make (List.map (fun (s, _, _) -> s) parts) with
    | Ok m -> m
    | Error msg -> Alcotest.failf "manifest: %s" msg
  in
  {
    map;
    servers = Array.of_list (List.map (fun (_, s, _) -> s) parts);
    schedulers = Array.of_list (List.map (fun (_, _, s) -> s) parts);
  }

let stop_cluster c =
  Array.iter (Array.iter Service.Server.stop) c.servers;
  Array.iter Service.Scheduler.shutdown c.schedulers

let with_cluster ?replicas n f =
  let c = start_cluster ?replicas n in
  Fun.protect ~finally:(fun () -> stop_cluster c) (fun () -> f c)

let with_single f =
  let snap = snapshot_exn ~source:"single" (Lazy.force full_db) in
  let scheduler = Service.Scheduler.create ~workers:1 snap in
  Fun.protect
    ~finally:(fun () -> Service.Scheduler.shutdown scheduler)
    (fun () -> f (Service.Server.handle scheduler))

let parse_exn line =
  match Protocol.parse_request line with
  | Ok r -> r
  | Error e -> Alcotest.failf "bad request %s: %s" line e

(* timings are wall-clock, the cache flag depends on execution
   history, steps_used is per-process resource accounting (the
   coordinator reports the sum over shards), and the plan text
   carries shard-local cost estimates (a shard's statistics cover
   its range, not the corpus) — everything else must match byte for
   byte. Plan *presence* must still agree; [compare_all] checks it. *)
let strip json =
  match json with
  | Json.Obj fields ->
    Json.Obj
      (List.filter
         (fun (name, _) ->
           name <> "timings" && name <> "cached" && name <> "steps_used"
           && name <> "plan")
         fields)
  | j -> j

let has_plan json = Json.member "plan" json <> None

let response_ok json =
  Json.member "ok" json = Some (Json.Bool true)

(* ------------------------------------------------------------------ *)
(* Shard_map *)

let test_ranges () =
  check bool_ "even split" true
    (Dist.Shard_map.ranges ~docs:12 ~shards:4
    = [ (0, 3); (3, 6); (6, 9); (9, 12) ]);
  check bool_ "remainder spreads left" true
    (Dist.Shard_map.ranges ~docs:10 ~shards:3 = [ (0, 4); (4, 7); (7, 10) ]);
  check bool_ "more shards than docs clamps" true
    (Dist.Shard_map.ranges ~docs:2 ~shards:5 = [ (0, 1); (1, 2) ]);
  check bool_ "no docs" true (Dist.Shard_map.ranges ~docs:0 ~shards:3 = []);
  (* generic coverage property *)
  List.iter
    (fun (docs, shards) ->
      let rs = Dist.Shard_map.ranges ~docs ~shards in
      let rec covered lo = function
        | [] -> lo = docs
        | (l, h) :: rest -> l = lo && h > l && covered h rest
      in
      check bool_
        (Printf.sprintf "covers [0,%d) in %d" docs shards)
        true (covered 0 rs))
    [ (1, 1); (7, 2); (24, 4); (100, 7); (5, 5) ]

let ep port = { Dist.Shard_map.host = "127.0.0.1"; port }

let shard ~lo ~hi ports =
  {
    Dist.Shard_map.lo;
    hi;
    image = Printf.sprintf "s-%d.tix" lo;
    replicas = List.map ep ports;
  }

let test_manifest_invariants () =
  let expect_error what shards =
    match Dist.Shard_map.make shards with
    | Ok _ -> Alcotest.failf "%s: accepted" what
    | Error _ -> ()
  in
  expect_error "empty manifest" [];
  expect_error "gap" [ shard ~lo:0 ~hi:5 [ 1 ]; shard ~lo:6 ~hi:9 [ 2 ] ];
  expect_error "overlap" [ shard ~lo:0 ~hi:5 [ 1 ]; shard ~lo:4 ~hi:9 [ 2 ] ];
  expect_error "not starting at 0" [ shard ~lo:1 ~hi:5 [ 1 ] ];
  expect_error "empty range" [ shard ~lo:0 ~hi:0 [ 1 ] ];
  expect_error "no replicas" [ shard ~lo:0 ~hi:5 [] ];
  match Dist.Shard_map.make [ shard ~lo:0 ~hi:5 [ 1; 2 ]; shard ~lo:5 ~hi:7 [ 3 ] ] with
  | Error msg -> Alcotest.failf "valid manifest rejected: %s" msg
  | Ok m ->
    check int_ "two shards" 2 (Dist.Shard_map.shard_count m);
    check int_ "total docs" 7 (Dist.Shard_map.total_docs m)

let test_manifest_roundtrip () =
  let shards = [ shard ~lo:0 ~hi:4 [ 7100; 7101 ]; shard ~lo:4 ~hi:9 [ 7102 ] ] in
  let m =
    match Dist.Shard_map.make shards with
    | Ok m -> m
    | Error e -> Alcotest.failf "make: %s" e
  in
  (match Dist.Shard_map.of_json (Dist.Shard_map.to_json m) with
  | Ok m' ->
    check bool_ "json roundtrip" true (Dist.Shard_map.shards m' = shards)
  | Error e -> Alcotest.failf "of_json: %s" e);
  (* version guard *)
  (match
     Dist.Shard_map.of_json
       (Json.Obj [ ("version", Json.Int 9); ("shards", Json.List []) ])
   with
  | Ok _ -> Alcotest.fail "future version accepted"
  | Error _ -> ());
  let path = Filename.temp_file "tix_manifest" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dist.Shard_map.save m path;
      match Dist.Shard_map.load path with
      | Ok m' ->
        check bool_ "file roundtrip" true (Dist.Shard_map.shards m' = shards)
      | Error e -> Alcotest.failf "load: %s" e)

(* ------------------------------------------------------------------ *)
(* Scatter-gather equality: every family, 2 and 4 shards *)

let engine_query =
  {|
  for $a in document("*")//article/descendant-or-self::*
  score $a using ScoreFoo($a, {"pxone"}, {"pxtwo"})
  return <r>{$a}</r>
  sortby(score)
  threshold $a/@score > 0 stop after 10
  |}

let pick_query =
  {|
  for $a in document("*")//article/descendant-or-self::*
  score $a using ScoreFoo($a, {"pxone"}, {"pxrare"})
  pick $a using PickFoo()
  return <r>{$a}</r>
  sortby(score)
  threshold $a/@score > 0 stop after 10
  |}

(* interpreter trees merge by shard-order concatenation = document
   order, so the distributed contract covers unsorted tree output *)
let interp_query =
  {|for $a in document("*")//section-title return <r>{$a}</r>|}

let quote q =
  Json.to_string (Json.String q)

let family_requests =
  [
    {|{"op":"ranked","terms":["pxone","pxtwo"],"k":5}|};
    {|{"op":"ranked","terms":["pxone","pxtwo"]}|};
    {|{"op":"ranked","terms":["pxone"],"k":1}|};
    {|{"op":"ranked","terms":["pxrare"],"k":3}|};
    {|{"op":"ranked","terms":["pxone","pxtwo","pxrare"],"k":100}|};
    {|{"op":"search","terms":["pxone"],"k":10}|};
    {|{"op":"search","terms":["pxone","pxtwo"]}|};
    {|{"op":"search","terms":["pxone","pxtwo"],"complex":true,"k":12}|};
    {|{"op":"search","terms":["pxone","pxtwo"],"method":"enhanced","k":7}|};
    {|{"op":"search","terms":["pxone","pxtwo"],"method":"genmeet","k":7}|};
    {|{"op":"phrase","phrase":"pxpa pxpb"}|};
    {|{"op":"phrase","phrase":"pxpa pxpb","comp3":true,"k":4}|};
    Printf.sprintf {|{"op":"query","q":%s,"k":6}|} (quote engine_query);
    Printf.sprintf {|{"op":"query","q":%s,"k":20}|} (quote engine_query);
    Printf.sprintf {|{"op":"query","q":%s,"k":6}|} (quote pick_query);
    Printf.sprintf {|{"op":"query","q":%s,"mode":"interp","k":8}|}
      (quote interp_query);
    (* error responses must forward verbatim too *)
    {|{"op":"ranked","terms":[""],"k":5}|};
    {|{"op":"query","q":"for $a in","k":5}|};
  ]

let compare_all ~what single coordinator =
  List.iter
    (fun line ->
      let req = parse_exn line in
      let oracle = single req in
      let merged = Dist.Coordinator.handle coordinator req in
      check string_
        (Printf.sprintf "%s: %s" what line)
        (Json.to_string (strip oracle))
        (Json.to_string (strip merged));
      check bool_
        (Printf.sprintf "%s: plan presence: %s" what line)
        (has_plan oracle) (has_plan merged))
    family_requests

let test_matches_single_node () =
  with_single (fun single ->
      (* sanity: the oracle itself must answer the non-error requests *)
      List.iteri
        (fun i line ->
          if i < List.length family_requests - 2 then
            check bool_
              (Printf.sprintf "oracle answers %s" line)
              true
              (response_ok (single (parse_exn line))))
        family_requests;
      List.iter
        (fun n ->
          with_cluster n (fun c ->
              let coord =
                Dist.Coordinator.create ~source:"test" c.map
              in
              compare_all ~what:(Printf.sprintf "%d shards" n) single coord;
              (* a second pass hits warm caches on every shard — the
                 merged answer must not change *)
              compare_all
                ~what:(Printf.sprintf "%d shards, cached" n)
                single coord;
              Dist.Client.close (Dist.Coordinator.client coord)))
        [ 2; 4 ])

(* θ-relay: with wave size 1 every later shard receives the k-th best
   score gathered so far and prunes against it; answers must still be
   byte-identical (the threshold is provably below the final k-th
   best, and equality survives for the doc-id tie-break) *)
let test_ranked_window_relay () =
  with_single (fun single ->
      with_cluster 4 (fun c ->
          List.iter
            (fun window ->
              let coord =
                Dist.Coordinator.create ~window ~source:"test" c.map
              in
              List.iter
                (fun line ->
                  let req = parse_exn line in
                  let expected = Json.to_string (strip (single req)) in
                  let got =
                    Json.to_string
                      (strip (Dist.Coordinator.handle coord req))
                  in
                  check string_
                    (Printf.sprintf "window %d: %s" window line)
                    expected got)
                [
                  {|{"op":"ranked","terms":["pxone","pxtwo"],"k":1}|};
                  {|{"op":"ranked","terms":["pxone","pxtwo"],"k":5}|};
                  {|{"op":"ranked","terms":["pxone","pxtwo"],"k":10}|};
                  {|{"op":"ranked","terms":["pxrare"],"k":4}|};
                  {|{"op":"ranked","terms":["pxone"],"k":200}|};
                ];
              Dist.Client.close (Dist.Coordinator.client coord))
            [ 1; 2; 3 ]))

(* ------------------------------------------------------------------ *)
(* Failure handling *)

let test_replica_failover () =
  with_single (fun single ->
      with_cluster ~replicas:2 2 (fun c ->
          let coord = Dist.Coordinator.create ~source:"test" c.map in
          let req = parse_exn {|{"op":"ranked","terms":["pxone","pxtwo"],"k":5}|} in
          let expected = Json.to_string (strip (single req)) in
          check string_ "baseline" expected
            (Json.to_string (strip (Dist.Coordinator.handle coord req)));
          (* kill shard 0's primary: the coordinator must fail over to
             the surviving replica and keep answering exactly, with no
             degraded flag *)
          Service.Server.stop c.servers.(0).(0);
          let response = Dist.Coordinator.handle coord req in
          check string_ "failover answer" expected
            (Json.to_string (strip response));
          check bool_ "not degraded" true
            (Json.member "degraded" response = None);
          check int_ "no degraded responses served" 0
            (Dist.Coordinator.degraded_served coord);
          (* and the failover sticks: further requests are exact *)
          let req2 = parse_exn {|{"op":"search","terms":["pxone"],"k":8}|} in
          check string_ "post-failover search"
            (Json.to_string (strip (single req2)))
            (Json.to_string (strip (Dist.Coordinator.handle coord req2)));
          Dist.Client.close (Dist.Coordinator.client coord)))

let test_degraded_and_unavailable () =
  with_cluster 2 (fun c ->
      let client =
        Dist.Client.create ~connect_timeout:0.5 ~request_timeout:5.0
          ~retries:0 ~backoff:0. ()
      in
      let coord = Dist.Coordinator.create ~client ~source:"test" c.map in
      let req = parse_exn {|{"op":"search","terms":["pxone"],"k":50}|} in
      let full = Dist.Coordinator.handle coord req in
      check bool_ "healthy: ok" true (response_ok full);
      check bool_ "healthy: no flag" true (Json.member "degraded" full = None);
      (* kill shard 1 (its only replica): answers degrade to shard 0's
         documents but stay well-formed and flagged *)
      Service.Server.stop c.servers.(1).(0);
      let degraded = Dist.Coordinator.handle coord req in
      check bool_ "degraded: ok" true (response_ok degraded);
      check bool_ "degraded: flagged" true
        (Json.member "degraded" degraded = Some (Json.Bool true));
      check bool_ "degraded: names the shard" true
        (Json.member "shards_unavailable" degraded
        = Some (Json.List [ Json.Int 1 ]));
      (* every surviving row belongs to shard 0's range *)
      (match Json.member "results" degraded with
      | Some (Json.List rows) ->
        check bool_ "rows exist" true (rows <> []);
        let hi = (Dist.Shard_map.shard c.map 0).Dist.Shard_map.hi in
        List.iter
          (fun row ->
            match Option.bind (Json.member "doc" row) Json.to_int_opt with
            | Some d -> check bool_ "doc in shard 0" true (d < hi)
            | None -> Alcotest.fail "row lacks doc")
          rows
      | _ -> Alcotest.fail "no results");
      check bool_ "counted" true (Dist.Coordinator.degraded_served coord > 0);
      (* health reflects the outage *)
      let health = Dist.Coordinator.handle coord Protocol.Health in
      (match Json.member "shards" health with
      | Some shards ->
        check bool_ "health: degraded" true
          (Json.member "degraded" shards = Some (Json.Bool true))
      | None -> Alcotest.fail "health lacks shards");
      (* kill the rest: a typed unavailable error, never a crash *)
      Service.Server.stop c.servers.(0).(0);
      let dead = Dist.Coordinator.handle coord req in
      check bool_ "all down: not ok" true (not (response_ok dead));
      (match Option.bind (Json.member "error" dead) (Json.member "code") with
      | Some (Json.String "unavailable") -> ()
      | _ -> Alcotest.fail "expected code unavailable");
      Dist.Client.close client)

let test_torn_connection_retry () =
  let served = Atomic.make 0 in
  let handler _req =
    Atomic.incr served;
    Json.Obj [ ("ok", Json.Bool true); ("n", Json.Int (Atomic.get served)) ]
  in
  let server = Service.Server.start_handler ~name:"stub" handler in
  let port = Service.Server.port server in
  let endpoint = { Dist.Shard_map.host = "127.0.0.1"; port } in
  let client = Dist.Client.create ~retries:2 ~backoff:0.01 () in
  let ask () = Dist.Client.request client endpoint (Json.Obj [ ("op", Json.String "health") ]) in
  (match ask () with
  | Ok r -> check bool_ "first request" true (response_ok r)
  | Error e -> Alcotest.failf "first request: %s" (Dist.Client.error_message e));
  (* restart the server on the same port: the pooled connection is
     torn, the retry must dial fresh and succeed transparently *)
  Service.Server.stop server;
  let server2 = Service.Server.start_handler ~name:"stub" ~port handler in
  Fun.protect
    ~finally:(fun () -> Service.Server.stop server2)
    (fun () ->
      (match ask () with
      | Ok r -> check bool_ "survives restart" true (response_ok r)
      | Error e ->
        Alcotest.failf "after restart: %s" (Dist.Client.error_message e));
      check bool_ "reconnect counted" true (Dist.Client.reconnects client > 0);
      Dist.Client.close client)

let test_client_timeout () =
  let handler _req =
    Thread.delay 0.5;
    Json.Obj [ ("ok", Json.Bool true) ]
  in
  let server = Service.Server.start_handler ~name:"slow" handler in
  Fun.protect
    ~finally:(fun () -> Service.Server.stop server)
    (fun () ->
      let client =
        Dist.Client.create ~request_timeout:0.1 ~retries:0 ~backoff:0. ()
      in
      let endpoint =
        { Dist.Shard_map.host = "127.0.0.1"; port = Service.Server.port server }
      in
      match
        Dist.Client.request client endpoint
          (Json.Obj [ ("op", Json.String "health") ])
      with
      | Error (Dist.Client.Timeout _) -> Dist.Client.close client
      | Error e ->
        Alcotest.failf "expected timeout, got %s" (Dist.Client.error_message e)
      | Ok _ -> Alcotest.fail "expected timeout, got a response")

(* ------------------------------------------------------------------ *)
(* Aggregated ops and prepared statements *)

let test_health_stats_prepare () =
  with_single (fun single ->
      with_cluster 2 (fun c ->
          let coord = Dist.Coordinator.create ~source:"m.json" c.map in
          let health = Dist.Coordinator.handle coord Protocol.Health in
          check bool_ "health ok" true (response_ok health);
          check bool_ "health source" true
            (Json.member "source" health = Some (Json.String "m.json"));
          (match Json.member "shards" health with
          | Some shards ->
            check bool_ "all reachable" true
              (Json.member "unreachable" shards = Some (Json.Int 0))
          | None -> Alcotest.fail "health lacks shards");
          let stats = Dist.Coordinator.handle coord Protocol.Stats in
          check bool_ "stats ok" true (response_ok stats);
          (match Json.member "coordinator" stats with
          | Some co ->
            check bool_ "stats shard count" true
              (Json.member "shards" co = Some (Json.Int 2))
          | None -> Alcotest.fail "stats lacks coordinator");
          (* prepare on the coordinator, execute scatters the text *)
          (match
             Dist.Coordinator.handle coord (Protocol.Prepare { q = engine_query })
           with
          | Json.Obj _ as r -> begin
            check bool_ "prepare ok" true (response_ok r);
            match Option.bind (Json.member "id" r) Json.to_int_opt with
            | Some id ->
              let exec_req =
                parse_exn
                  (Printf.sprintf {|{"op":"execute","id":%d,"k":6}|} id)
              in
              let single_q =
                parse_exn
                  (Printf.sprintf {|{"op":"query","q":%s,"mode":"engine","k":6}|}
                     (quote engine_query))
              in
              check string_ "execute = single-node query"
                (Json.to_string (strip (single single_q)))
                (Json.to_string
                   (strip (Dist.Coordinator.handle coord exec_req)))
            | None -> Alcotest.fail "prepare returned no id"
          end
          | _ -> Alcotest.fail "prepare: not an object");
          (* unknown statement: typed error *)
          (match
             Dist.Coordinator.handle coord
               (parse_exn {|{"op":"execute","id":99}|})
           with
          | r ->
            check bool_ "unknown statement refused" true (not (response_ok r)));
          (* mutations are refused *)
          (match
             Dist.Coordinator.handle coord
               (parse_exn {|{"op":"insert","name":"x.xml","xml":"<a/>"}|})
           with
          | r -> check bool_ "read only" true (not (response_ok r)));
          Dist.Client.close (Dist.Coordinator.client coord)))

(* traced distributed queries graft each shard's span tree under one
   Scatter root *)
let test_trace_grafting () =
  with_cluster 2 (fun c ->
      let coord = Dist.Coordinator.create ~source:"test" c.map in
      let req =
        parse_exn {|{"op":"search","terms":["pxone"],"k":5,"trace":true}|}
      in
      let response = Dist.Coordinator.handle coord req in
      check bool_ "ok" true (response_ok response);
      (match Json.member "trace" response with
      | Some trace ->
        check bool_ "root is Scatter" true
          (Json.member "op" trace = Some (Json.String "Scatter"));
        (match Json.member "children" trace with
        | Some (Json.List children) ->
          check int_ "one child per shard" 2 (List.length children);
          List.iter
            (fun child ->
              check bool_ "child is Shard" true
                (Json.member "op" child = Some (Json.String "Shard"));
              check bool_ "shard has sub-spans" true
                (Json.member "children" child <> None))
            children
        | _ -> Alcotest.fail "Scatter has no children")
      | None -> Alcotest.fail "traced response lacks trace");
      Dist.Client.close (Dist.Coordinator.client coord))

let () =
  ignore (doc_count ());
  let tc = Alcotest.test_case in
  Alcotest.run "dist"
    [
      ( "shard_map",
        [
          tc "ranges" `Quick test_ranges;
          tc "invariants" `Quick test_manifest_invariants;
          tc "json roundtrip" `Quick test_manifest_roundtrip;
        ] );
      ( "coordinator",
        [
          tc "matches single node (2 and 4 shards)" `Quick
            test_matches_single_node;
          tc "ranked theta windows" `Quick test_ranked_window_relay;
          tc "trace grafting" `Quick test_trace_grafting;
          tc "health, stats, prepare" `Quick test_health_stats_prepare;
        ] );
      ( "failure",
        [
          tc "replica failover" `Quick test_replica_failover;
          tc "degraded and unavailable" `Quick test_degraded_and_unavailable;
          tc "torn connection retry" `Quick test_torn_connection_retry;
          tc "client timeout" `Quick test_client_timeout;
        ] );
    ]
