(* Service-layer tests: JSON codec, LRU caches, engine snapshot
   execution, the domain worker pool (multi-domain determinism,
   backpressure, cache invalidation on reload) and the TCP server. *)

module Lru = Service.Lru

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string

(* ------------------------------------------------------------------ *)
(* Corpus: planted terms at known frequencies, deterministic seed. *)

let cfg =
  {
    Workload.Corpus.articles = 24;
    seed = 7;
    chapters_per_article = 2;
    sections_per_chapter = 2;
    paragraphs_per_section = 3;
    words_per_paragraph = 18;
    vocabulary = 300;
    planted_terms = [ ("svplantone", 60); ("svplanttwo", 25) ];
    planted_phrases = [ ("svphrasea", "svphraseb", 12) ];
  }

let db =
  lazy
    (let options = { Store.Db.default_options with keep_trees = false } in
     Store.Db.load ~options (Workload.Corpus.generate cfg))

let snapshot =
  lazy
    (match Service.Engine.of_db (Lazy.force db) with
    | Ok s -> s
    | Error msg -> Alcotest.failf "of_db: %s" msg)

let compilable_query =
  {|
  for $a in document("*")//article/descendant-or-self::*
  score $a using ScoreFoo($a, {"svplantone"}, {"svplanttwo"})
  return <r>{$a}</r>
  sortby(score)
  threshold $a/@score > 0 stop after 10
  |}

(* ------------------------------------------------------------------ *)
(* Json *)

let test_json_roundtrip () =
  let v =
    Service.Json.(
      Obj
        [
          ("s", String "a\"b\\c\nd\te");
          ("i", Int (-42));
          ("f", Float 1.5);
          ("z", Float 3.0);
          ("b", Bool true);
          ("n", Null);
          ("l", List [ Int 1; String "x"; Obj [ ("k", Bool false) ] ]);
        ])
  in
  let s = Service.Json.to_string v in
  match Service.Json.parse s with
  | Ok v' -> check bool_ "roundtrip" true (v = v')
  | Error e -> Alcotest.failf "parse: %s" e

let test_json_parse_basics () =
  let ok s v =
    match Service.Json.parse s with
    | Ok got -> check bool_ (Printf.sprintf "parse %s" s) true (got = v)
    | Error e -> Alcotest.failf "parse %s: %s" s e
  in
  ok "17" (Service.Json.Int 17);
  ok "-2.5e2" (Service.Json.Float (-250.));
  ok "\"\\u0041\\u00e9\"" (Service.Json.String "A\xc3\xa9");
  ok "[]" (Service.Json.List []);
  ok "{}" (Service.Json.Obj []);
  ok "  {\"a\" : [1, 2]} " (Service.Json.Obj [ ("a", Service.Json.List [ Service.Json.Int 1; Service.Json.Int 2 ]) ]);
  (match Service.Json.parse "{\"a\":1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated object accepted");
  match Service.Json.parse "[1,2] junk" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing junk accepted"

let test_json_escaped_output_parses () =
  let v = Service.Json.String "line\nwith \"quotes\" and \x01 control" in
  match Service.Json.parse (Service.Json.to_string v) with
  | Ok v' -> check bool_ "escape roundtrip" true (v = v')
  | Error e -> Alcotest.failf "parse: %s" e

(* ------------------------------------------------------------------ *)
(* Lru *)

let test_lru_basic () =
  let c = Lru.create ~capacity:2 in
  check bool_ "miss" true (Lru.find c "a" = None);
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  check bool_ "hit a" true (Lru.find c "a" = Some 1);
  (* b is now least recent; adding c evicts it *)
  Lru.add c "c" 3;
  check bool_ "b evicted" true (Lru.find c "b" = None);
  check bool_ "a kept" true (Lru.find c "a" = Some 1);
  check bool_ "c kept" true (Lru.find c "c" = Some 3);
  let s = Lru.stats c in
  check int_ "entries" 2 s.Lru.entries;
  check int_ "evictions" 1 s.Lru.evictions;
  check int_ "hits" 3 s.Lru.hits;
  check int_ "misses" 2 s.Lru.misses

let test_lru_replace_and_clear () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "a" 9;
  check bool_ "replaced" true (Lru.find c "a" = Some 9);
  check int_ "one entry" 1 (Lru.stats c).Lru.entries;
  Lru.clear c;
  check int_ "cleared" 0 (Lru.stats c).Lru.entries;
  check bool_ "gone" true (Lru.find c "a" = None)

let test_lru_disabled () =
  let c = Lru.create ~capacity:0 in
  Lru.add c "a" 1;
  check bool_ "never stores" true (Lru.find c "a" = None)

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics () =
  let c = Service.Metrics.counter "test.counter" in
  let v0 = Service.Metrics.counter_value c in
  Service.Metrics.incr c;
  Service.Metrics.add c 4;
  check int_ "counter" (v0 + 5) (Service.Metrics.counter_value c);
  let h = Service.Metrics.histogram "test.hist" in
  let n0 = Service.Metrics.hist_count h in
  List.iter (fun ns -> Service.Metrics.observe_ns h ns) [ 100; 200; 400; 100_000 ];
  check int_ "hist count" (n0 + 4) (Service.Metrics.hist_count h);
  let p50 = Service.Metrics.quantile_ns h 0.5 in
  check bool_ "p50 sane" true (p50 > 32. && p50 < 10_000.);
  let p99 = Service.Metrics.quantile_ns h 0.99 in
  check bool_ "p99 in top bucket" true (p99 > 32_768. && p99 < 524_288.);
  check bool_ "dump mentions both" true
    (let d = Service.Metrics.dump () in
     let has needle =
       let rec go i =
         i + String.length needle <= String.length d
         && (String.sub d i (String.length needle) = needle || go (i + 1))
       in
       go 0
     in
     has "test.counter" && has "test.hist")

(* bucketing agrees with a reference implementation, in particular at
   power-of-two boundaries where the old Float.log2 path misbucketed *)
let test_metrics_bucketing_property () =
  (* reference: linear scan for the bucket whose [lo, hi) holds ns *)
  let reference ns =
    if ns <= 1 then 0
    else begin
      let rec go i =
        if i = 39 then 39
        else if ns lsr (i + 1) = 0 then i
        else go (i + 1)
      in
      go 0
    end
  in
  let boundaries =
    List.concat_map
      (fun k -> [ (1 lsl k) - 1; 1 lsl k; (1 lsl k) + 1 ])
      (List.init 61 (fun k -> k + 1))
  in
  List.iter
    (fun ns ->
      check int_
        (Printf.sprintf "bucket_of_ns %d" ns)
        (reference ns)
        (Service.Metrics.bucket_of_ns ns))
    ([ 0; 1; 2; 3 ] @ boundaries);
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:2000 ~name:"bucket_of_ns matches reference"
       QCheck.(map abs (small_int_corners ()))
       (fun ns -> Service.Metrics.bucket_of_ns ns = reference ns))

let test_metrics_observe_s_rounds () =
  let h = Service.Metrics.histogram "test.hist.rounding" in
  let n0 = Service.Metrics.hist_count h in
  (* 0.9 ns was truncated to 0 before the fix; rounding keeps the
     nanosecond, observable through the mean *)
  Service.Metrics.observe_s h 0.9e-9;
  check int_ "observed" (n0 + 1) (Service.Metrics.hist_count h);
  check bool_ "sub-ns observation rounds to 1 ns" true
    (Service.Metrics.mean_ns h >= 1.);
  (* and 1999.6 ns rounds up across the bucket boundary to 2000 *)
  Service.Metrics.observe_s h 1999.6e-9;
  check bool_ "mean reflects rounded 2000" true
    (Service.Metrics.mean_ns h >= 1000.)

(* ------------------------------------------------------------------ *)
(* Lru edge cases *)

let test_lru_add_existing_refreshes () =
  let c = Lru.create ~capacity:2 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  (* re-adding [a] must make it most recent: [c] then evicts [b] *)
  Lru.add c "a" 10;
  Lru.add c "c" 3;
  check bool_ "a survived" true (Lru.find c "a" = Some 10);
  check bool_ "b evicted" true (Lru.find c "b" = None);
  check bool_ "c present" true (Lru.find c "c" = Some 3);
  check int_ "one eviction" 1 (Lru.stats c).Lru.evictions

let test_lru_capacity_one () =
  let c = Lru.create ~capacity:1 in
  Lru.add c "a" 1;
  check bool_ "a in" true (Lru.find c "a" = Some 1);
  Lru.add c "b" 2;
  check bool_ "a evicted" true (Lru.find c "a" = None);
  check bool_ "b in" true (Lru.find c "b" = Some 2);
  (* replacing the sole entry must not evict *)
  Lru.add c "b" 9;
  check bool_ "b replaced" true (Lru.find c "b" = Some 9);
  let s = Lru.stats c in
  check int_ "entries" 1 s.Lru.entries;
  check int_ "evictions" 1 s.Lru.evictions

let test_lru_capacity_zero_stats () =
  let c = Lru.create ~capacity:0 in
  Lru.add c "a" 1;
  Lru.add c "b" 2;
  check bool_ "nothing stored" true (Lru.find c "a" = None && Lru.find c "b" = None);
  let s = Lru.stats c in
  check int_ "no entries" 0 s.Lru.entries;
  check int_ "no evictions" 0 s.Lru.evictions;
  check int_ "finds all missed" 2 s.Lru.misses

let test_lru_concurrent_stats () =
  let c = Lru.create ~capacity:8 in
  let domains = 4 and per_domain = 500 in
  let work d () =
    for i = 0 to per_domain - 1 do
      let key = Printf.sprintf "k%d" ((i + d) mod 16) in
      (match Lru.find c key with
      | Some _ -> ()
      | None -> Lru.add c key i);
      ignore (Lru.stats c)
    done
  in
  let ds = List.init domains (fun d -> Domain.spawn (work d)) in
  List.iter Domain.join ds;
  let s = Lru.stats c in
  (* every find recorded exactly one hit or miss *)
  check int_ "hits + misses = finds" (domains * per_domain)
    (s.Lru.hits + s.Lru.misses);
  check bool_ "within capacity" true (s.Lru.entries <= 8)

(* ------------------------------------------------------------------ *)
(* Cache keys *)

let qkey q =
  Service.Engine.canonical_key (Service.Engine.Query { q; mode = `Engine })

let test_cache_key_merges_equal_tokenizations () =
  (* whitespace outside literals collapses *)
  check string_ "whitespace variants"
    (qkey "for $a in document(\"*\")//a  return   $a")
    (qkey "for $a in\n\tdocument(\"*\")//a return $a");
  (* the lexer keeps only literal content: quote style is irrelevant *)
  check string_ "quote style"
    (qkey {|score $a using ScoreFoo($a, {"xy z"}, {})|})
    (qkey {|score $a using ScoreFoo($a, {'xy z'}, {})|})

let test_cache_key_separates_distinct_tokenizations () =
  let distinct name a b =
    check bool_ name true (not (String.equal (qkey a) (qkey b)))
  in
  (* whitespace inside literals is significant *)
  distinct "literal internal spacing"
    {|score $a using ScoreFoo($a, {"x y"}, {})|}
    {|score $a using ScoreFoo($a, {"x  y"}, {})|};
  (* a single-quoted literal containing a double quote keeps its
     spelling; it must not collide with nearby double-quoted forms *)
  distinct "embedded quote"
    {|//a[b = 'say "hi"']|}
    {|//a[b = "say hi"]|};
  (* unterminated literals are lex errors; their tails stay verbatim
     so distinct erroneous queries never share a key *)
  distinct "unterminated tails differ"
    {|//a[b = "unterminated x|}
    {|//a[b = "unterminated y|};
  distinct "unterminated whitespace significant"
    {|//a[b = "unterminated  x|}
    {|//a[b = "unterminated x|}

let test_cache_key_unterminated_whitespace_before_quote () =
  (* whitespace before the unterminated quote still collapses; only
     the (error) literal itself is verbatim *)
  check string_ "prefix still normalizes"
    (qkey "//a  [b =  \"oops")
    (qkey "//a [b = \"oops")

(* ------------------------------------------------------------------ *)
(* Engine *)

let encode result =
  Service.Json.to_string
    (Service.Protocol.result_to_json ~include_timings:false result)

let exec ?caches ?limits ?k ?trace request =
  Service.Engine.exec ?caches ?limits ?k ?trace (Lazy.force snapshot) request

let test_engine_search_matches_direct () =
  let terms = [ "svplantone" ] in
  match
    exec (Service.Engine.Search { terms; method_ = Service.Engine.Termjoin; complex = false; anchor = None })
  with
  | Error e -> Alcotest.failf "exec: %s" (Service.Engine.error_message e)
  | Ok result ->
    let direct =
      Access.Term_join.to_list ~mode:Access.Counter_scoring.Simple
        (Lazy.force snapshot).Service.Engine.ctx ~terms
      |> List.sort Access.Scored_node.compare_score_desc
    in
    check int_ "same cardinality" (List.length direct) result.Service.Engine.total;
    List.iter2
      (fun (row : Service.Engine.row) (node : Access.Scored_node.t) ->
        check int_ "doc" node.doc row.Service.Engine.doc;
        check int_ "start" node.start row.Service.Engine.start;
        check bool_ "score" true (Float.equal node.score row.Service.Engine.score))
      result.Service.Engine.rows direct

let test_engine_query_compiles () =
  match exec (Service.Engine.Query { q = compilable_query; mode = `Engine }) with
  | Error e -> Alcotest.failf "exec: %s" (Service.Engine.error_message e)
  | Ok result ->
    check bool_ "has plan" true (result.Service.Engine.plan <> None);
    check bool_ "has rows" true (result.Service.Engine.rows <> [])

let test_engine_bad_requests () =
  (match exec (Service.Engine.Search { terms = []; method_ = Service.Engine.Termjoin; complex = false; anchor = None }) with
  | Error e -> check string_ "code" "bad_request" (Service.Engine.error_code e)
  | Ok _ -> Alcotest.fail "empty search accepted");
  (match exec (Service.Engine.Phrase { phrase = "   "; comp3 = false }) with
  | Error e -> check string_ "code" "bad_request" (Service.Engine.error_code e)
  | Ok _ -> Alcotest.fail "empty phrase accepted");
  match exec (Service.Engine.Query { q = "for $a in"; mode = `Engine }) with
  | Error e -> check string_ "code" "parse_error" (Service.Engine.error_code e)
  | Ok _ -> Alcotest.fail "bad query accepted"

let test_engine_governor () =
  match
    exec
      ~limits:(Core.Governor.limits ~max_results:1 ())
      (Service.Engine.Search
         { terms = [ "svplantone" ]; method_ = Service.Engine.Termjoin; complex = false; anchor = None })
  with
  | Error e -> check string_ "code" "exhausted" (Service.Engine.error_code e)
  | Ok _ -> Alcotest.fail "expected resource exhaustion"

let fresh_caches () =
  {
    Service.Engine.plans = Lru.create ~capacity:16;
    results = Lru.create ~capacity:16;
  }

let test_engine_result_cache () =
  let caches = fresh_caches () in
  let request =
    Service.Engine.Search
      { terms = [ "svplantone" ]; method_ = Service.Engine.Termjoin; complex = false; anchor = None }
  in
  let r1 =
    match exec ~caches ~k:5 request with
    | Ok r -> r
    | Error e -> Alcotest.failf "exec: %s" (Service.Engine.error_message e)
  in
  check bool_ "first is uncached" false r1.Service.Engine.cached;
  let r2 =
    match exec ~caches ~k:5 request with
    | Ok r -> r
    | Error e -> Alcotest.failf "exec: %s" (Service.Engine.error_message e)
  in
  check bool_ "second is cached" true r2.Service.Engine.cached;
  check string_ "identical rows"
    (Service.Json.to_string (Service.Protocol.rows_to_json r1.Service.Engine.rows))
    (Service.Json.to_string (Service.Protocol.rows_to_json r2.Service.Engine.rows));
  check int_ "one hit" 1 (Lru.stats caches.Service.Engine.results).Lru.hits;
  (* a different k is a different entry *)
  (match exec ~caches ~k:3 request with
  | Ok r -> check bool_ "k=3 not cached" false r.Service.Engine.cached
  | Error e -> Alcotest.failf "exec: %s" (Service.Engine.error_message e));
  check int_ "two entries" 2 (Lru.stats caches.Service.Engine.results).Lru.entries

let test_engine_plan_cache () =
  let caches = fresh_caches () in
  let run () =
    match
      exec ~caches (Service.Engine.Query { q = compilable_query; mode = `Engine })
    with
    | Ok r -> r
    | Error e -> Alcotest.failf "exec: %s" (Service.Engine.error_message e)
  in
  let r1 = run () in
  check int_ "plan cached" 1 (Lru.stats caches.Service.Engine.plans).Lru.entries;
  (* second run must hit the plan cache (the result cache also hits;
     disable it to prove the plan path alone) *)
  Lru.clear caches.Service.Engine.results;
  let before = (Lru.stats caches.Service.Engine.plans).Lru.hits in
  let r2 = run () in
  check int_ "plan hit" (before + 1) (Lru.stats caches.Service.Engine.plans).Lru.hits;
  check bool_ "recomputed, not served from result cache" false
    r2.Service.Engine.cached;
  check string_ "same rows"
    (Service.Json.to_string (Service.Protocol.rows_to_json r1.Service.Engine.rows))
    (Service.Json.to_string (Service.Protocol.rows_to_json r2.Service.Engine.rows));
  (* whitespace-insensitive keying outside literals *)
  let squashed =
    String.concat " "
      (String.split_on_char '\n' compilable_query
      |> List.map String.trim
      |> List.filter (fun s -> s <> ""))
  in
  (* the two spellings share one canonical key, so with the result
     cache live the squashed spelling is answered from it outright *)
  (match exec ~caches (Service.Engine.Query { q = squashed; mode = `Engine }) with
  | Ok r -> check bool_ "squashed hits result cache" true r.Service.Engine.cached
  | Error e -> Alcotest.failf "exec: %s" (Service.Engine.error_message e));
  Lru.clear caches.Service.Engine.results;
  let before = (Lru.stats caches.Service.Engine.plans).Lru.hits in
  (match
     exec ~caches (Service.Engine.Query { q = squashed; mode = `Engine })
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "exec: %s" (Service.Engine.error_message e));
  check int_ "normalized spelling hits too" (before + 1)
    (Lru.stats caches.Service.Engine.plans).Lru.hits

(* ------------------------------------------------------------------ *)
(* Tracing (EXPLAIN ANALYZE) *)

let span_names sp =
  let names = ref [] in
  Core.Trace.iter_span (fun s -> names := s.Core.Trace.name :: !names) sp;
  List.rev !names

let exec_traced request =
  match
    Service.Engine.exec ~trace:true (Lazy.force snapshot) request
  with
  | Error e -> Alcotest.failf "exec: %s" (Service.Engine.error_message e)
  | Ok r -> begin
    match r.Service.Engine.trace with
    | Some sp -> (r, sp)
    | None -> Alcotest.fail "traced request returned no span tree"
  end

(* every access-method family reports spans with cardinalities *)
let test_trace_all_families () =
  let expect_root request root =
    let r, sp = exec_traced request in
    check string_ (root ^ " root") root sp.Core.Trace.name;
    check bool_ (root ^ " output known") true (sp.Core.Trace.output >= 0);
    check bool_ (root ^ " elapsed") true (sp.Core.Trace.elapsed_ns >= 0);
    check int_ (root ^ " output = total") r.Service.Engine.total
      sp.Core.Trace.output
  in
  expect_root
    (Service.Engine.Search
       { terms = [ "svplantone" ]; method_ = Service.Engine.Termjoin; complex = false; anchor = None })
    "TermJoin";
  expect_root
    (Service.Engine.Search
       { terms = [ "svplantone" ]; method_ = Service.Engine.Genmeet; complex = false; anchor = None })
    "GenMeet";
  expect_root
    (Service.Engine.Search
       { terms = [ "svplantone" ]; method_ = Service.Engine.Comp1; complex = false; anchor = None })
    "Comp1";
  expect_root
    (Service.Engine.Phrase { phrase = "svphrasea svphraseb"; comp3 = false })
    "PhraseFinder";
  expect_root
    (Service.Engine.Phrase { phrase = "svphrasea svphraseb"; comp3 = true })
    "Comp3";
  (* ranked rows are per-document, total counts kept rows *)
  let _, sp = exec_traced (Service.Engine.Ranked { terms = [ "svplantone" ] }) in
  check string_ "ranked root" "RankedTopK" sp.Core.Trace.name;
  (* the compiled query nests access-method spans under CompiledQuery *)
  let _, sp =
    exec_traced (Service.Engine.Query { q = compilable_query; mode = `Engine })
  in
  check string_ "query root" "CompiledQuery" sp.Core.Trace.name;
  let names = span_names sp in
  List.iter
    (fun expected ->
      check bool_ (expected ^ " nested") true (List.mem expected names))
    [ "PatternMatch"; "TermJoin"; "Threshold"; "Rank"; "Limit" ]

(* the interpreter path records Eval clause spans *)
let test_trace_interpreter () =
  let options = { Store.Db.default_options with keep_trees = true } in
  let db = Store.Db.load ~options (Workload.Corpus.generate cfg) in
  let snap =
    match Service.Engine.of_db db with
    | Ok s -> s
    | Error msg -> Alcotest.failf "of_db: %s" msg
  in
  match
    Service.Engine.exec ~trace:true snap
      (Service.Engine.Query { q = compilable_query; mode = `Interp })
  with
  | Error e -> Alcotest.failf "exec: %s" (Service.Engine.error_message e)
  | Ok r -> begin
    match r.Service.Engine.trace with
    | None -> Alcotest.fail "no span tree"
    | Some sp ->
      check string_ "root" "Eval" sp.Core.Trace.name;
      let names = span_names sp in
      check bool_ "has a For clause span" true
        (List.exists
           (fun n -> String.length n >= 3 && String.sub n 0 3 = "For")
           names)
  end

(* traced requests bypass the result cache in both directions *)
let test_trace_bypasses_cache () =
  let caches = fresh_caches () in
  let request =
    Service.Engine.Search
      { terms = [ "svplantone" ]; method_ = Service.Engine.Termjoin; complex = false; anchor = None }
  in
  let run ?(trace = false) () =
    match exec ~caches ~k:5 ~trace request with
    | Ok r -> r
    | Error e -> Alcotest.failf "exec: %s" (Service.Engine.error_message e)
  in
  let r1 = run () in
  check bool_ "first uncached" false r1.Service.Engine.cached;
  check bool_ "untraced has no spans" true (r1.Service.Engine.trace = None);
  let r2 = run ~trace:true () in
  check bool_ "traced run is recomputed" false r2.Service.Engine.cached;
  check bool_ "traced run has spans" true (r2.Service.Engine.trace <> None);
  let r3 = run () in
  check bool_ "untraced still served from cache" true r3.Service.Engine.cached

let test_engine_explain () =
  (match Service.Engine.explain compilable_query with
  | Ok plan ->
    check bool_ "plan mentions terms" true
      (let has needle hay =
         let nl = String.length needle and hl = String.length hay in
         let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
         go 0
       in
       has "svplantone" plan)
  | Error e -> Alcotest.failf "explain: %s" (Service.Engine.error_message e));
  (match Service.Engine.explain "for $a in" with
  | Error e -> check string_ "parse error" "parse_error" (Service.Engine.error_code e)
  | Ok _ -> Alcotest.fail "bad query explained");
  (* a plan-cache-backed explain also fills the cache *)
  let caches = fresh_caches () in
  (match Service.Engine.explain ~caches compilable_query with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "explain: %s" (Service.Engine.error_message e));
  check int_ "plan cached" 1 (Lru.stats caches.Service.Engine.plans).Lru.entries

let has_sub needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let fresh_snapshot () =
  match Service.Engine.of_db (Lazy.force db) with
  | Ok s -> s
  | Error msg -> Alcotest.failf "of_db: %s" msg

let test_search_auto () =
  (* the auto method resolves through the planner, reports its
     decision in the plan field and returns exactly the rows of the
     explicit methods *)
  let snap = fresh_snapshot () in
  let terms = [ "svplantone"; "svplanttwo" ] in
  let run method_ =
    match
      Service.Engine.exec snap (Service.Engine.Search { terms; method_; complex = false; anchor = None })
    with
    | Ok r -> r
    | Error e -> Alcotest.failf "exec: %s" (Service.Engine.error_message e)
  in
  let auto = run Service.Engine.Auto in
  let tj = run Service.Engine.Termjoin in
  check string_ "auto rows = termjoin rows"
    (Service.Json.to_string (Service.Protocol.rows_to_json tj.Service.Engine.rows))
    (Service.Json.to_string (Service.Protocol.rows_to_json auto.Service.Engine.rows));
  (match auto.Service.Engine.plan with
  | Some p ->
    check bool_ "plan reports the decision" true (has_sub "planner: " p);
    check bool_ "plan reports a cost" true (has_sub "cost=" p)
  | None -> Alcotest.fail "auto search has no plan");
  check bool_ "auto roundtrips as a string" true
    (Service.Engine.search_method_of_string "auto" = Some Service.Engine.Auto)

let test_explain_costed () =
  (* with a snapshot, EXPLAIN prices the access methods and prints
     the chosen one with its row estimate and alternatives *)
  let snap = fresh_snapshot () in
  (match Service.Engine.explain ~snapshot:snap compilable_query with
  | Ok text ->
    check bool_ "mentions the access method" true (has_sub "access: " text);
    check bool_ "marks the choice as costed" true (has_sub "(costed)" text);
    check bool_ "prints the estimate" true (has_sub "estimate: " text);
    check bool_ "prints the cost table" true (has_sub "cost=" text)
  | Error e -> Alcotest.failf "explain: %s" (Service.Engine.error_message e));
  (* without a snapshot only the static rule is shown *)
  match Service.Engine.explain compilable_query with
  | Ok text ->
    check bool_ "static rule marked" true (has_sub "(static rule)" text);
    check bool_ "no estimate without stats" false (has_sub "estimate: " text)
  | Error e -> Alcotest.failf "explain: %s" (Service.Engine.error_message e)

let test_trace_estimates () =
  (* EXPLAIN ANALYZE: the access operator's span carries the
     planner's row estimate next to the actual cardinality, and the
     estimate survives the JSON protocol encoding *)
  let snap = fresh_snapshot () in
  let r =
    match
      Service.Engine.exec ~trace:true snap
        (Service.Engine.Search
           { terms = [ "svplantone" ]; method_ = Service.Engine.Auto; complex = false; anchor = None })
    with
    | Ok r -> r
    | Error e -> Alcotest.failf "exec: %s" (Service.Engine.error_message e)
  in
  let sp =
    match r.Service.Engine.trace with
    | Some sp -> sp
    | None -> Alcotest.fail "no span tree"
  in
  let estimated = ref [] in
  Core.Trace.iter_span
    (fun s -> if s.Core.Trace.est >= 0 then estimated := s :: !estimated)
    sp;
  (match !estimated with
  | [] -> Alcotest.fail "no span carries an estimate"
  | s :: _ ->
    check bool_ "pp prints est" true
      (has_sub "est=" (Core.Trace.span_to_string s)));
  let json = Service.Json.to_string (Service.Protocol.span_to_json sp) in
  check bool_ "est crosses the protocol" true (has_sub "\"est\"" json)

let test_plan_recost_after_feedback () =
  (* a material correction change bumps the feedback generation; the
     stale cached plan is keyed under the old generation, so the next
     execution re-costs instead of reusing it *)
  let caches = fresh_caches () in
  let snap = fresh_snapshot () in
  let request = Service.Engine.Query { q = compilable_query; mode = `Engine } in
  let run () =
    match Service.Engine.exec ~caches snap request with
    | Ok r -> r
    | Error e -> Alcotest.failf "exec: %s" (Service.Engine.error_message e)
  in
  ignore (run ());
  check int_ "one costed plan cached" 1
    (Lru.stats caches.Service.Engine.plans).Lru.entries;
  Lru.clear caches.Service.Engine.results;
  let hits0 = (Lru.stats caches.Service.Engine.plans).Lru.hits in
  ignore (run ());
  check int_ "stable generation reuses the plan" (hits0 + 1)
    (Lru.stats caches.Service.Engine.plans).Lru.hits;
  (* drive a material misestimate for this query's key *)
  let key = Service.Engine.canonical_key request in
  let feedback = snap.Service.Engine.feedback in
  Ir.Stats.Feedback.observe feedback ~key ~est:1000. ~actual:1000.;
  Ir.Stats.Feedback.observe feedback ~key ~est:1. ~actual:100000.;
  check bool_ "generation bumped" true (Ir.Stats.Feedback.generation feedback > 0);
  Lru.clear caches.Service.Engine.results;
  let hits1 = (Lru.stats caches.Service.Engine.plans).Lru.hits in
  ignore (run ());
  check int_ "stale plan is not served" hits1
    (Lru.stats caches.Service.Engine.plans).Lru.hits;
  check int_ "re-costed under the new generation" 2
    (Lru.stats caches.Service.Engine.plans).Lru.entries

(* the span tree crosses the protocol as well-formed JSON *)
let test_trace_json_roundtrip () =
  let r, sp =
    exec_traced
      (Service.Engine.Search
         { terms = [ "svplantone" ]; method_ = Service.Engine.Termjoin; complex = false; anchor = None })
  in
  let line = Service.Json.to_string (Service.Protocol.result_to_json r) in
  match Service.Json.parse line with
  | Error e -> Alcotest.failf "unparseable response: %s" e
  | Ok j -> begin
    match Service.Json.member "trace" j with
    | None -> Alcotest.fail "no trace member"
    | Some t ->
      check bool_ "root op name" true
        (Service.Json.member "op" t
        = Some (Service.Json.String sp.Core.Trace.name));
      check bool_ "elapsed present" true
        (Service.Json.member "elapsed_ns" t <> None)
  end

(* ------------------------------------------------------------------ *)
(* Scheduler *)

let mixed_requests n =
  List.init n (fun i ->
      let k = Some (1 + (i mod 17)) in
      let req =
        match i mod 5 with
        | 0 ->
          Service.Engine.Search
            { terms = [ "svplantone" ]; method_ = Service.Engine.Termjoin; complex = false; anchor = None }
        | 1 ->
          Service.Engine.Search
            {
              terms = [ "svplantone"; "svplanttwo" ];
              method_ = Service.Engine.Genmeet;
              complex = false;
              anchor = None;
            }
        | 2 -> Service.Engine.Phrase { phrase = "svphrasea svphraseb"; comp3 = i mod 2 = 0 }
        | 3 -> Service.Engine.Ranked { terms = [ "svplantone"; "svplanttwo" ] }
        | _ -> Service.Engine.Query { q = compilable_query; mode = `Engine }
      in
      (req, k))

let render outcome =
  match outcome with
  | Ok result -> encode result
  | Error e ->
    Service.Json.to_string (Service.Protocol.engine_error_to_json e)

let test_multi_domain_stress () =
  let requests = mixed_requests 200 in
  (* sequential baseline, no caches so every response is recomputed *)
  let expected = List.map (fun (req, k) -> render (exec ?k req)) requests in
  (* 4 domains, caches off, queue wide enough for every request *)
  let pool =
    Service.Scheduler.create ~workers:4 ~queue_depth:256
      ~plan_cache_capacity:0 ~result_cache_capacity:0 (Lazy.force snapshot)
  in
  Fun.protect
    ~finally:(fun () -> Service.Scheduler.shutdown pool)
    (fun () ->
      let promises =
        List.map
          (fun (req, k) ->
            match Service.Scheduler.submit pool ?k req with
            | Ok p -> p
            | Error _ -> Alcotest.fail "admission failed with a deep queue")
          requests
      in
      let got = List.map (fun p -> render (Service.Scheduler.await p)) promises in
      check int_ "200 responses" 200 (List.length got);
      List.iteri
        (fun i (want, have) ->
          if want <> have then
            Alcotest.failf "response %d differs:\nseq: %s\npar: %s" i want have)
        (List.combine expected got);
      let s = Service.Scheduler.stats pool in
      check int_ "all submitted" 200 s.Service.Scheduler.submitted;
      check int_ "all completed" 200 s.Service.Scheduler.completed)

let test_scheduler_backpressure () =
  let pool =
    Service.Scheduler.create ~workers:1 ~queue_depth:2 ~plan_cache_capacity:0
      ~result_cache_capacity:0 (Lazy.force snapshot)
  in
  Fun.protect
    ~finally:(fun () -> Service.Scheduler.shutdown pool)
    (fun () ->
      let gate = Mutex.create () in
      let open_ = ref false in
      let started = ref false in
      let cond = Condition.create () in
      let blocker () =
        Mutex.lock gate;
        started := true;
        Condition.broadcast cond;
        while not !open_ do
          Condition.wait cond gate
        done;
        Mutex.unlock gate
      in
      let b =
        match Service.Scheduler.submit_fn pool blocker with
        | Ok p -> p
        | Error _ -> Alcotest.fail "blocker rejected"
      in
      (* wait until the single worker is actually inside the blocker,
         so the queue is empty and fills deterministically *)
      Mutex.lock gate;
      while not !started do
        Condition.wait cond gate
      done;
      Mutex.unlock gate;
      let filler () = () in
      let queued =
        List.init 2 (fun _ ->
            match Service.Scheduler.submit_fn pool filler with
            | Ok p -> p
            | Error _ -> Alcotest.fail "queue rejected below its bound")
      in
      (* the queue is now at its bound: admission must shed load *)
      (match Service.Scheduler.submit_fn pool filler with
      | Error Service.Scheduler.Overloaded -> ()
      | Error Service.Scheduler.Closed -> Alcotest.fail "closed?"
      | Ok _ -> Alcotest.fail "overload admitted");
      (match
         Service.Scheduler.submit pool
           (Service.Engine.Ranked { terms = [ "svplantone" ] })
       with
      | Error Service.Scheduler.Overloaded -> ()
      | _ -> Alcotest.fail "query overload admitted");
      let s = Service.Scheduler.stats pool in
      check int_ "two rejections" 2 s.Service.Scheduler.rejected;
      (* open the gate; everything drains; admission recovers *)
      Mutex.lock gate;
      open_ := true;
      Condition.broadcast cond;
      Mutex.unlock gate;
      Service.Scheduler.await b;
      List.iter Service.Scheduler.await queued;
      match Service.Scheduler.run pool (Service.Engine.Ranked { terms = [ "svplantone" ] }) with
      | Ok (Ok _) -> ()
      | Ok (Error e) -> Alcotest.failf "post-drain query: %s" (Service.Engine.error_message e)
      | Error _ -> Alcotest.fail "post-drain admission failed")

let test_scheduler_reload_invalidates () =
  let pool =
    Service.Scheduler.create ~workers:1 ~queue_depth:8 (Lazy.force snapshot)
  in
  Fun.protect
    ~finally:(fun () -> Service.Scheduler.shutdown pool)
    (fun () ->
      let request = Service.Engine.Ranked { terms = [ "svplantone" ] } in
      let run () =
        match Service.Scheduler.run pool ~k:5 request with
        | Ok (Ok r) -> r
        | Ok (Error e) -> Alcotest.failf "query: %s" (Service.Engine.error_message e)
        | Error _ -> Alcotest.fail "admission failed"
      in
      let r1 = run () in
      check bool_ "miss first" false r1.Service.Engine.cached;
      let r2 = run () in
      check bool_ "hit second" true r2.Service.Engine.cached;
      check string_ "hit serves identical rows"
        (Service.Json.to_string (Service.Protocol.rows_to_json r1.Service.Engine.rows))
        (Service.Json.to_string (Service.Protocol.rows_to_json r2.Service.Engine.rows));
      (* install the next generation of the same database: caches drop *)
      let snap2 =
        match Service.Engine.of_db ~generation:1 (Lazy.force db) with
        | Ok s -> s
        | Error msg -> Alcotest.failf "of_db: %s" msg
      in
      (match Service.Scheduler.reload pool snap2 with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "reload: %s"
          (Service.Scheduler.reload_error_to_string e));
      check int_ "result cache emptied" 0
        (Service.Scheduler.stats pool).Service.Scheduler.result_cache.Lru.entries;
      let r3 = run () in
      check bool_ "recomputed after reload" false r3.Service.Engine.cached;
      check string_ "same answer on the same data"
        (Service.Json.to_string (Service.Protocol.rows_to_json r1.Service.Engine.rows))
        (Service.Json.to_string (Service.Protocol.rows_to_json r3.Service.Engine.rows)))

let test_scheduler_prepared () =
  let pool = Service.Scheduler.create ~workers:1 ~queue_depth:8 (Lazy.force snapshot) in
  Fun.protect
    ~finally:(fun () -> Service.Scheduler.shutdown pool)
    (fun () ->
      let id =
        match Service.Scheduler.prepare pool compilable_query with
        | Ok id -> id
        | Error e -> Alcotest.failf "prepare: %s" (Service.Engine.error_message e)
      in
      (match Service.Scheduler.prepare pool compilable_query with
      | Ok id' -> check int_ "same id on re-prepare" id id'
      | Error e -> Alcotest.failf "re-prepare: %s" (Service.Engine.error_message e));
      check bool_ "text stored" true
        (Service.Scheduler.prepared pool id = Some compilable_query);
      (match Service.Scheduler.prepare pool "for $a in" with
      | Error e -> check string_ "code" "parse_error" (Service.Engine.error_code e)
      | Ok _ -> Alcotest.fail "bad prepare accepted");
      let json =
        Service.Server.handle pool
          (Service.Protocol.Execute
             { id; k = Some 3; limits = Core.Governor.unlimited;
               trace = false; parallelism = None })
      in
      check bool_ "execute ok" true
        (Service.Json.member "ok" json = Some (Service.Json.Bool true)))

(* ------------------------------------------------------------------ *)
(* TCP server *)

let send_lines port lines =
  let addr = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect sock addr;
  let oc = Unix.out_channel_of_descr sock in
  let ic = Unix.in_channel_of_descr sock in
  let responses =
    List.map
      (fun line ->
        output_string oc line;
        output_char oc '\n';
        flush oc;
        input_line ic)
      lines
  in
  (try Unix.close sock with Unix.Unix_error _ -> ());
  responses

let is_ok resp =
  match Service.Json.parse resp with
  | Ok j -> Service.Json.member "ok" j = Some (Service.Json.Bool true)
  | Error _ -> false

let test_tcp_server () =
  let pool = Service.Scheduler.create ~workers:2 ~queue_depth:64 (Lazy.force snapshot) in
  let server = Service.Server.start ~port:0 pool in
  Fun.protect
    ~finally:(fun () ->
      Service.Server.stop server;
      Service.Scheduler.shutdown pool)
    (fun () ->
      let port = Service.Server.port server in
      check bool_ "got a real port" true (port > 0);
      let query_line =
        Service.Json.to_string
          (Service.Protocol.request_to_json
             (Service.Protocol.Exec
                {
                  req =
                    Service.Engine.Search
                      {
                        terms = [ "svplantone" ];
                        method_ = Service.Engine.Termjoin;
                        complex = false;
                        anchor = None;
                      };
                  k = Some 4;
                  limits = Core.Governor.unlimited;
                  trace = false;
                  parallelism = None;
                  theta = None;
                }))
      in
      (* several concurrent connections, several requests each *)
      let results = Array.make 4 [] in
      let threads =
        List.init 4 (fun i ->
            Thread.create
              (fun () ->
                results.(i) <-
                  send_lines port
                    [ {|{"op":"health"}|}; query_line; query_line ])
              ())
      in
      List.iter Thread.join threads;
      Array.iteri
        (fun i resps ->
          check int_ (Printf.sprintf "conn %d: 3 responses" i) 3 (List.length resps);
          List.iter
            (fun r -> check bool_ (Printf.sprintf "conn %d ok" i) true (is_ok r))
            resps;
          (* all connections got byte-identical search responses modulo
             the cached flag and timings; compare the rows only *)
          let rows r =
            match Service.Json.parse r with
            | Ok j -> Service.Json.member "results" j
            | Error _ -> None
          in
          match resps with
          | [ _; a; b ] ->
            check bool_ (Printf.sprintf "conn %d rows agree" i) true
              (rows a = rows b && rows a <> None)
          | _ -> ())
        results;
      (* protocol errors answer without closing the line *)
      (match send_lines port [ "not json"; {|{"op":"nope"}|}; {|{"op":"health"}|} ] with
      | [ bad1; bad2; ok ] ->
        check bool_ "bad json rejected" true (not (is_ok bad1));
        check bool_ "unknown op rejected" true (not (is_ok bad2));
        check bool_ "line survives" true (is_ok ok)
      | other -> Alcotest.failf "expected 3 responses, got %d" (List.length other));
      (* stats over the wire *)
      match send_lines port [ {|{"op":"stats"}|} ] with
      | [ stats ] ->
        check bool_ "stats ok" true (is_ok stats);
        let j = Result.get_ok (Service.Json.parse stats) in
        check bool_ "has scheduler section" true
          (Service.Json.member "scheduler" j <> None)
      | _ -> Alcotest.fail "no stats response")

(* ------------------------------------------------------------------ *)
(* Intra-query parallelism plumbing *)

(* "parallelism" survives a protocol round trip *)
let test_protocol_parallelism_roundtrip () =
  let req =
    Service.Protocol.Exec
      {
        req =
          Service.Engine.Search
            {
              terms = [ "svplantone" ];
              method_ = Service.Engine.Termjoin;
              complex = false;
              anchor = None;
            };
        k = Some 5;
        limits = Core.Governor.unlimited;
        trace = false;
        parallelism = Some 3;
        theta = None;
      }
  in
  let line = Service.Json.to_string (Service.Protocol.request_to_json req) in
  check bool_ "field on the wire" true
    (let j = Result.get_ok (Service.Json.parse line) in
     Service.Json.member "parallelism" j = Some (Service.Json.Int 3));
  match Service.Protocol.parse_request line with
  | Ok req' -> check bool_ "roundtrip" true (req = req')
  | Error e -> Alcotest.failf "parse: %s" e

(* a parallel submission returns the same rows as a sequential one,
   through a pool whose cap clamps the request's ask *)
let test_scheduler_parallelism () =
  let pool =
    Service.Scheduler.create ~workers:1 ~max_parallelism:2
      ~result_cache_capacity:0 (Lazy.force snapshot)
  in
  Fun.protect
    ~finally:(fun () -> Service.Scheduler.shutdown pool)
    (fun () ->
      let req =
        Service.Engine.Search
          {
            terms = [ "svplantone"; "svplanttwo" ];
            method_ = Service.Engine.Termjoin;
            complex = true;
            anchor = None;
          }
      in
      let run ?parallelism () =
        match Service.Scheduler.run pool ?parallelism req with
        | Ok (Ok r) -> r
        | Ok (Error e) ->
          Alcotest.failf "exec: %s" (Service.Engine.error_message e)
        | Error e -> Alcotest.failf "submit: %s" (Service.Scheduler.error_code e)
      in
      let seq = run () in
      (* 8 clamps to the pool's cap of 2; results must not change *)
      let par = run ~parallelism:8 () in
      check bool_ "rows identical" true
        (seq.Service.Engine.rows = par.Service.Engine.rows);
      check int_ "total identical" seq.Service.Engine.total
        par.Service.Engine.total;
      check bool_ "steps accounted" true (par.Service.Engine.steps_used > 0);
      (* steps_used crosses the response encoder *)
      let j = Service.Protocol.result_to_json par in
      match Service.Json.member "steps_used" j with
      | Some (Service.Json.Int n) -> check bool_ "steps_used > 0" true (n > 0)
      | _ -> Alcotest.fail "steps_used missing from response")

let () =
  Alcotest.run "service"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse basics" `Quick test_json_parse_basics;
          Alcotest.test_case "escapes" `Quick test_json_escaped_output_parses;
        ] );
      ( "lru",
        [
          Alcotest.test_case "basic" `Quick test_lru_basic;
          Alcotest.test_case "replace and clear" `Quick test_lru_replace_and_clear;
          Alcotest.test_case "disabled" `Quick test_lru_disabled;
          Alcotest.test_case "add existing refreshes" `Quick
            test_lru_add_existing_refreshes;
          Alcotest.test_case "capacity 1" `Quick test_lru_capacity_one;
          Alcotest.test_case "capacity 0 stats" `Quick test_lru_capacity_zero_stats;
          Alcotest.test_case "concurrent stats" `Slow test_lru_concurrent_stats;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and quantiles" `Quick test_metrics;
          Alcotest.test_case "bucketing vs reference" `Quick
            test_metrics_bucketing_property;
          Alcotest.test_case "observe_s rounds" `Quick test_metrics_observe_s_rounds;
        ] );
      ( "cache keys",
        [
          Alcotest.test_case "equal tokenizations merge" `Quick
            test_cache_key_merges_equal_tokenizations;
          Alcotest.test_case "distinct tokenizations separate" `Quick
            test_cache_key_separates_distinct_tokenizations;
          Alcotest.test_case "unterminated literal prefix" `Quick
            test_cache_key_unterminated_whitespace_before_quote;
        ] );
      ( "engine",
        [
          Alcotest.test_case "search matches direct" `Quick
            test_engine_search_matches_direct;
          Alcotest.test_case "query compiles" `Quick test_engine_query_compiles;
          Alcotest.test_case "bad requests" `Quick test_engine_bad_requests;
          Alcotest.test_case "governor" `Quick test_engine_governor;
          Alcotest.test_case "result cache" `Quick test_engine_result_cache;
          Alcotest.test_case "plan cache" `Quick test_engine_plan_cache;
          Alcotest.test_case "explain" `Quick test_engine_explain;
          Alcotest.test_case "auto search method" `Quick test_search_auto;
          Alcotest.test_case "costed explain" `Quick test_explain_costed;
          Alcotest.test_case "re-plan after feedback" `Quick
            test_plan_recost_after_feedback;
        ] );
      ( "trace",
        [
          Alcotest.test_case "all access families" `Quick test_trace_all_families;
          Alcotest.test_case "interpreter clauses" `Quick test_trace_interpreter;
          Alcotest.test_case "bypasses result cache" `Quick
            test_trace_bypasses_cache;
          Alcotest.test_case "span JSON roundtrip" `Quick test_trace_json_roundtrip;
          Alcotest.test_case "operator estimates" `Quick test_trace_estimates;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "4-domain stress, byte-identical" `Slow
            test_multi_domain_stress;
          Alcotest.test_case "backpressure" `Quick test_scheduler_backpressure;
          Alcotest.test_case "reload invalidates" `Quick
            test_scheduler_reload_invalidates;
          Alcotest.test_case "prepared statements" `Quick test_scheduler_prepared;
          Alcotest.test_case "parallelism protocol roundtrip" `Quick
            test_protocol_parallelism_roundtrip;
          Alcotest.test_case "parallel = sequential rows" `Quick
            test_scheduler_parallelism;
        ] );
      ("server", [ Alcotest.test_case "tcp" `Slow test_tcp_server ]);
    ]
