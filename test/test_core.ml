(* Tests for the TIX algebra: scored trees, pattern matching, the
   operators, and the paper's worked example (Queries 1-3 over the
   Figure 1 database, with the scores of Figures 5-8). *)

let check = Alcotest.check
let int_ = Alcotest.int
let bool_ = Alcotest.bool
let string_ = Alcotest.string
let float_ = Alcotest.float 1e-6

let articles_tree =
  lazy
    (let num = Xmlkit.Numbering.number Workload.Paper_db.articles in
     Core.Stree.of_numbered num ~doc:0)

let reviews_trees =
  lazy
    (List.mapi
       (fun i r ->
         let num = Xmlkit.Numbering.number r in
         Core.Stree.of_numbered num ~doc:(i + 1))
       Workload.Paper_db.reviews)

(* The ScoreFoo of the paper's examples *)
let score_foo =
  Core.Scorers.score_foo ~primary:[ "search engine" ]
    ~secondary:[ "internet"; "information retrieval" ]
    ()

(* Query 2's scored pattern tree (Fig. 3): $1 article with an author
   sname "Doe" and a scored ad* node $4 *)
let query2_pattern =
  let open Core.Pattern in
  make
    (pnode ~pred:(Tag "article") 1
       [
         pnode ~axis:Descendant ~pred:(Tag "author") 2
           [ pnode ~pred:(And (Tag "sname", Content_eq "Doe")) 3 [] ];
         pnode ~axis:Self_or_descendant 4 [];
       ])
    [
      { target = 4; expr = Node_score score_foo };
      { target = 1; expr = Best_of 4 };
    ]

(* ------------------------------------------------------------------ *)
(* Stree *)

let test_stree_of_element () =
  let t = Lazy.force articles_tree in
  check string_ "root tag" "article" t.Core.Stree.tag;
  check int_ "size" 24 (Core.Stree.size t);
  check bool_ "unscored" true (t.Core.Stree.score = None)

let test_stree_all_text () =
  let t = Lazy.force articles_tree in
  let text = Core.Stree.all_text t in
  check bool_ "contains title" true
    (Ir.Phrase.contains ~terms:[ "internet"; "technologies" ] text)

let test_stree_ids () =
  let t = Lazy.force articles_tree in
  (* Stored ids come from interval numbering: root starts at 0 *)
  check bool_ "root id" true
    (Core.Stree.equal_id t.Core.Stree.id (Core.Stree.Stored { doc = 0; start = 0 }))

let test_stree_roundtrip () =
  let t = Lazy.force articles_tree in
  let back = Core.Stree.to_element t in
  check bool_ "roundtrip to element" true
    (Xmlkit.Tree.equal Workload.Paper_db.articles back)

let test_stree_score_attr () =
  let t = Core.Stree.make ~score:1.5 "x" [] in
  let e = Core.Stree.to_element ~score_attr:"score" t in
  check (Alcotest.option string_) "score attribute" (Some "1.5")
    (Xmlkit.Tree.attr e "score")

(* ------------------------------------------------------------------ *)
(* Pattern predicates and classification *)

let test_pred_holds () =
  let t = Lazy.force articles_tree in
  let open Core.Pattern in
  check bool_ "tag" true (holds (Tag "article") t);
  check bool_ "wrong tag" false (holds (Tag "review") t);
  check bool_ "content has" true (holds (Content_has "search engine") t);
  check bool_ "and" true (holds (And (Tag "article", True)) t);
  check bool_ "or" true (holds (Or (Tag "nope", Tag "article")) t);
  check bool_ "not" false (holds (Not True) t)

let test_pattern_classification () =
  let p = query2_pattern in
  check bool_ "$4 primary" true (Core.Pattern.is_primary p 4);
  check bool_ "$1 not primary" false (Core.Pattern.is_primary p 1);
  check bool_ "$1 IR (secondary)" true (Core.Pattern.is_ir_node p 1);
  check bool_ "$4 IR" true (Core.Pattern.is_ir_node p 4);
  check bool_ "$2 not IR" false (Core.Pattern.is_ir_node p 2);
  check bool_ "$3 not IR" false (Core.Pattern.is_ir_node p 3)

let test_pattern_vars () =
  check (Alcotest.list int_) "vars in preorder" [ 1; 2; 3; 4 ]
    (Core.Pattern.vars query2_pattern)

(* ------------------------------------------------------------------ *)
(* Matcher *)

let test_matcher_embeddings () =
  let t = Lazy.force articles_tree in
  let embeddings = Core.Matcher.embeddings query2_pattern t in
  (* $4 binds to each of the 24 elements of the article *)
  check int_ "one embedding per $4 binding" 24 (List.length embeddings)

let test_matcher_matches_of_var () =
  let t = Lazy.force articles_tree in
  let m4 = Core.Matcher.matches_of_var query2_pattern 4 t in
  check int_ "$4 matches all elements" 24 (List.length m4);
  let m3 = Core.Matcher.matches_of_var query2_pattern 3 t in
  check int_ "$3 matches sname Doe" 1 (List.length m3);
  let m1 = Core.Matcher.matches_of_var query2_pattern 1 t in
  check int_ "$1 matches the article" 1 (List.length m1)

let test_matcher_no_match () =
  let t = List.hd (Lazy.force reviews_trees) in
  check int_ "pattern does not embed in a review" 0
    (List.length (Core.Matcher.embeddings query2_pattern t))

let test_matcher_descendant_axis () =
  let t = Lazy.force articles_tree in
  let open Core.Pattern in
  let pat =
    make (pnode ~pred:(Tag "chapter") 1 [ pnode ~axis:Descendant ~pred:(Tag "p") 2 [] ]) []
  in
  (* chapters contain 1 + 1 + 5 paragraphs *)
  check int_ "chapter//p embeddings" 7
    (List.length (Core.Matcher.embeddings pat t))

(* ------------------------------------------------------------------ *)
(* Selection: Fig. 5 scores *)

let test_selection_scores () =
  let results = Core.Op_select.select query2_pattern [ Lazy.force articles_tree ] in
  check int_ "24 witness trees" 24 (List.length results);
  let scores = List.filter_map (fun (t : Core.Stree.t) -> t.score) results in
  (* the top witness binds $4 to the article itself: 5.6 *)
  check float_ "max score 5.6" 5.6 (List.fold_left max 0. scores);
  (* Fig. 5(a): $4 = p#a18 gives 0.8 *)
  check bool_ "0.8 witness exists" true
    (List.exists (fun s -> abs_float (s -. 0.8) < 1e-6) scores);
  (* Fig. 5(b): $4 = section#a16 gives 3.6 *)
  check bool_ "3.6 witness exists" true
    (List.exists (fun s -> abs_float (s -. 3.6) < 1e-6) scores)

let test_selection_witness_shape () =
  let results = Core.Op_select.select query2_pattern [ Lazy.force articles_tree ] in
  let w = List.hd results in
  check string_ "witness root is article" "article" w.Core.Stree.tag;
  (* the witness has the author subtree and the $4 node as children *)
  check int_ "two children" 2 (List.length (Core.Stree.child_nodes w))

(* ------------------------------------------------------------------ *)
(* Projection: Fig. 6 *)

let projected =
  lazy
    (Core.Op_project.project query2_pattern ~pl:[ 1; 3; 4 ]
       [ Lazy.force articles_tree ])

let find_by_tag_score tree tag score =
  Core.Stree.find
    (fun (n : Core.Stree.t) ->
      n.tag = tag
      && match n.score with Some s -> abs_float (s -. score) < 1e-6 | None -> false)
    tree

let test_projection_root_score () =
  match Lazy.force projected with
  | [ tree ] ->
    check string_ "root" "article" tree.Core.Stree.tag;
    check (Alcotest.option float_) "root score 5.6 (best achievable)"
      (Some 5.6) tree.Core.Stree.score
  | l -> Alcotest.failf "expected one projected tree, got %d" (List.length l)

let test_projection_nodes () =
  match Lazy.force projected with
  | [ tree ] ->
    (* Fig. 6: chapter[5.0], section[3.6], section[0.8], p[0.8],
       p[1.4] x2, article-title[0.6], section-title[0.8] ... *)
    check bool_ "chapter 5.0" true (find_by_tag_score tree "chapter" 5.0 <> None);
    check bool_ "section 3.6" true (find_by_tag_score tree "section" 3.6 <> None);
    check bool_ "p 0.8" true (find_by_tag_score tree "p" 0.8 <> None);
    check bool_ "p 1.4" true (find_by_tag_score tree "p" 1.4 <> None);
    check bool_ "article-title 0.6" true
      (find_by_tag_score tree "article-title" 0.6 <> None);
    (* sname kept though unscored ($3 in PL) *)
    check bool_ "sname kept" true
      (Core.Stree.find (fun n -> n.Core.Stree.tag = "sname") tree <> None);
    (* author ($2, not in PL) elided *)
    check bool_ "author elided" true
      (Core.Stree.find (fun n -> n.Core.Stree.tag = "author") tree = None);
    (* zero-scored chapters (caching, streaming) dropped *)
    let chapters =
      List.filter
        (fun (n : Core.Stree.t) -> n.tag = "chapter")
        (Core.Stree.self_or_descendants tree)
    in
    check int_ "only the relevant chapter" 1 (List.length chapters)
  | _ -> Alcotest.fail "expected one projected tree"

let test_projection_no_match_drops_tree () =
  let reviews = Lazy.force reviews_trees in
  check int_ "no output for reviews" 0
    (List.length (Core.Op_project.project query2_pattern ~pl:[ 1; 3; 4 ] reviews))

(* ------------------------------------------------------------------ *)
(* Pick after projection: Fig. 8 *)

let test_pick_after_projection () =
  match Lazy.force projected with
  | [ tree ] ->
    let crit = Core.Op_pick.pick_foo () in
    (match Core.Op_pick.apply query2_pattern ~var:4 crit [ tree ] with
    | [ picked ] ->
      (* chapter kept with score 5.0; sections pruned; ps promoted *)
      check bool_ "chapter survives" true
        (find_by_tag_score picked "chapter" 5.0 <> None);
      check bool_ "section 3.6 pruned" true
        (find_by_tag_score picked "section" 3.6 = None);
      (* root rescored to best remaining = 5.0 (Fig. 8) *)
      check (Alcotest.option float_) "root rescored" (Some 5.0)
        picked.Core.Stree.score;
      (* the ps under the pruned section survive, attached to chapter *)
      let chapter =
        Option.get (find_by_tag_score picked "chapter" 5.0)
      in
      let p_children =
        List.filter
          (fun (n : Core.Stree.t) -> n.tag = "p")
          (Core.Stree.child_nodes chapter)
      in
      check int_ "ps promoted under chapter" 3 (List.length p_children)
    | l -> Alcotest.failf "expected one picked tree, got %d" (List.length l))
  | _ -> Alcotest.fail "expected one projected tree"

(* ------------------------------------------------------------------ *)
(* Threshold *)

let single_var_pattern =
  (* matches any scored node: used to threshold on witness roots *)
  Core.Pattern.make (Core.Pattern.pnode 1 []) []

let test_threshold_min_score () =
  let results = Core.Op_select.select query2_pattern [ Lazy.force articles_tree ] in
  let thresholded =
    Core.Op_threshold.threshold query2_pattern
      [ { Core.Op_threshold.var = 4; condition = Core.Op_threshold.Min_score 4.0 } ]
      results
  in
  (* witnesses containing a node scoring above 4: the article-level
     one (5.6) and the chapter-level one (5.0) *)
  check int_ "two witnesses" 2 (List.length thresholded)

let test_threshold_top_k () =
  let results = Core.Op_select.select query2_pattern [ Lazy.force articles_tree ] in
  let top4 =
    Core.Op_threshold.threshold query2_pattern
      [ { Core.Op_threshold.var = 4; condition = Core.Op_threshold.Top_rank 4 } ]
      results
  in
  (* witnesses carry the score on the root (Best_of) and on the $4
     node (deduplicated when both are the same data node), so the
     best match scores are 5.6, 5.0, 5.0, 3.6, 3.6, ...; the rank-4
     cut is 3.6 and the article, chapter and section witnesses
     qualify *)
  check int_ "three trees kept" 3 (List.length top4)

let test_threshold_empty_condition () =
  let results = Core.Op_select.select query2_pattern [ Lazy.force articles_tree ] in
  check int_ "no conditions keeps all" (List.length results)
    (List.length (Core.Op_threshold.threshold query2_pattern [] results))

let test_top_k_by_score () =
  let trees =
    List.map (fun s -> Core.Stree.make ~score:s "t" []) [ 1.; 3.; 2.; 5.; 4. ]
  in
  let top = Core.Op_threshold.top_k_by_score 2 trees in
  check (Alcotest.list float_) "best two" [ 5.; 4. ]
    (List.map Core.Stree.score top)

(* ------------------------------------------------------------------ *)
(* Example 3.1: the end-to-end pipeline returns chapter #a10 on top *)

let test_example_3_1 () =
  let tree = Lazy.force articles_tree in
  let crit = Core.Op_pick.pick_foo () in
  let plan =
    Core.Algebra.(
      Sort
        (Select
           ( single_var_pattern,
             Pick
               {
                 pattern = query2_pattern;
                 var = 4;
                 criterion = crit;
                 input =
                   Project
                     {
                       pattern = query2_pattern;
                       pl = [ 1; 3; 4 ];
                       drop_zero = true;
                       input = Scan [ tree ];
                     };
               } )))
  in
  ignore plan;
  (* direct evaluation: project, pick, then rank the surviving scored
     nodes; the chapter (#a10, score 5.0) must be the top element
     below the root *)
  let projected = Core.Op_project.project query2_pattern ~pl:[ 1; 3; 4 ] [ tree ] in
  let picked = Core.Op_pick.apply query2_pattern ~var:4 crit projected in
  match picked with
  | [ result ] ->
    let scored_below_root =
      List.filter
        (fun (n : Core.Stree.t) -> n.score <> None && not (n == result))
        (Core.Stree.self_or_descendants result)
    in
    let best =
      List.fold_left
        (fun acc (n : Core.Stree.t) ->
          match acc with
          | Some (b : Core.Stree.t) when Core.Stree.score b >= Core.Stree.score n -> acc
          | Some _ | None -> Some n)
        None scored_below_root
    in
    (match best with
    | Some b ->
      check string_ "top element is the chapter" "chapter" b.Core.Stree.tag;
      check float_ "chapter score 5.0" 5.0 (Core.Stree.score b)
    | None -> Alcotest.fail "expected scored results")
  | l -> Alcotest.failf "expected one result tree, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Join: Query 3 (Fig. 4 / Fig. 7) *)

let query3_pattern =
  let open Core.Pattern in
  make
    (pnode ~pred:(Tag "tix_prod_root") 1
       [
         pnode ~pred:(Tag "article") 2
           [
             pnode ~pred:(Tag "article-title") 3 [];
             pnode ~axis:Descendant ~pred:(Tag "author") 4
               [ pnode ~pred:(And (Tag "sname", Content_eq "Doe")) 5 [] ];
             pnode ~axis:Self_or_descendant 6 [];
           ];
         pnode ~pred:(Tag "review") 7 [ pnode ~pred:(Tag "title") 8 [] ];
       ])
    [
      { target = 6; expr = Node_score score_foo };
      { target = 2; expr = Best_of 6 };
      {
        target = 1;
        expr =
          Combine
            {
              comb_name = "ScoreBar";
              inputs =
                [
                  Similarity
                    {
                      left = 3;
                      right = 8;
                      sim_name = "ScoreSim";
                      sim = Core.Scorers.score_sim;
                    };
                  Best_of 6;
                ];
              eval = Core.Scorers.score_bar;
            };
      };
    ]

let test_product () =
  let prod = Core.Op_join.product [ Lazy.force articles_tree ] (Lazy.force reviews_trees) in
  check int_ "2 pairs" 2 (List.length prod);
  let first = List.hd prod in
  check string_ "product root" "tix_prod_root" first.Core.Stree.tag;
  check int_ "two children" 2 (List.length (Core.Stree.child_nodes first))

let test_query3_join () =
  let results =
    Core.Op_join.join query3_pattern
      [ Lazy.force articles_tree ]
      (Lazy.force reviews_trees)
  in
  (* 24 $6-bindings x 2 reviews *)
  check int_ "48 scored pairs" 48 (List.length results);
  let scores = List.filter_map (fun (t : Core.Stree.t) -> t.score) results in
  (* Fig. 7: the pair (p#a18 [0.8], review#r1) scores
     ScoreSim("Internet Technologies","Internet Technologies") + 0.8
     = 2 + 0.8 = 2.8 *)
  check bool_ "2.8 pair exists" true
    (List.exists (fun s -> abs_float (s -. 2.8) < 1e-6) scores);
  (* review 2 ("WWW Technologies") shares one word: 1 + 0.8 = 1.8 *)
  check bool_ "1.8 pair exists" true
    (List.exists (fun s -> abs_float (s -. 1.8) < 1e-6) scores)

(* ------------------------------------------------------------------ *)
(* Plans *)

let test_algebra_run_and_explain () =
  let plan =
    Core.Algebra.(
      Limit
        ( 2,
          Sort
            (Select (query2_pattern, Scan [ Lazy.force articles_tree ])) ))
  in
  let out = Core.Algebra.run plan in
  check int_ "limit applied" 2 (List.length out);
  check float_ "best first" 5.6 (Core.Stree.score (List.hd out));
  let text = Core.Algebra.explain plan in
  check bool_ "explain mentions ops" true
    (String.length text > 0
    && String.index_opt text 'L' <> None (* Limit *))

let test_collection_helpers () =
  let trees =
    List.map (fun s -> Core.Stree.make ~score:s "t" []) [ 2.; 1.; 3. ]
  in
  check (Alcotest.list float_) "scores" [ 2.; 1.; 3. ] (Core.Collection.scores trees);
  match Core.Collection.best trees with
  | Some b -> check float_ "best" 3. (Core.Stree.score b)
  | None -> Alcotest.fail "expected best"

(* scored selection is monotone: adding input trees only adds outputs *)
let test_select_monotone =
  QCheck.Test.make ~name:"selection output bounded by embeddings" ~count:50
    QCheck.(int_range 1 3)
    (fun n ->
      let trees = List.init n (fun _ -> Lazy.force articles_tree) in
      let out = Core.Op_select.select query2_pattern trees in
      List.length out = n * 24)


(* ------------------------------------------------------------------ *)
(* Grouping (TAX) and the paper's K-threshold encoding *)

let test_group_by () =
  let t tag s = Core.Stree.make ~score:s tag [] in
  let trees = [ t "a" 1.; t "b" 2.; t "a" 3.; t "c" 4. ] in
  let groups =
    Core.Op_group.group_by ~basis:(fun (n : Core.Stree.t) -> n.tag) trees
  in
  check int_ "three groups" 3 (List.length groups);
  let first = List.hd groups in
  check string_ "group root tag" Core.Op_group.group_tag first.Core.Stree.tag;
  check (Alcotest.option string_) "group key" (Some "a")
    (List.assoc_opt "key" first.Core.Stree.attrs);
  check int_ "two members" 2 (List.length (Core.Stree.child_nodes first))

let test_group_ordering () =
  let t s = Core.Stree.make ~score:s "x" [] in
  let groups =
    Core.Op_group.group_by ~basis:Core.Op_group.empty_basis
      ~order:Core.Op_group.by_score_desc
      [ t 1.; t 5.; t 3. ]
  in
  match groups with
  | [ g ] ->
    check (Alcotest.list float_) "ordered desc" [ 5.; 3.; 1. ]
      (List.map Core.Stree.score (Core.Stree.child_nodes g))
  | _ -> Alcotest.fail "expected a single group"

let test_top_k_via_grouping () =
  (* the Sec. 3.3.1 claim: K-thresholding is expressible as grouping
     with an empty basis + score ordering + leftmost-K projection *)
  let t s = Core.Stree.make ~score:s "x" [] in
  let trees = List.map t [ 2.; 9.; 4.; 7.; 1. ] in
  let via_group = Core.Op_group.top_k_via_grouping 3 trees in
  let via_threshold = Core.Op_threshold.top_k_by_score 3 trees in
  check (Alcotest.list float_) "same top-3"
    (List.map Core.Stree.score via_threshold)
    (List.map Core.Stree.score via_group)

let test_top_k_via_grouping_empty () =
  check int_ "empty input" 0
    (List.length (Core.Op_group.top_k_via_grouping 3 []))

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_spans () =
  check bool_ "disabled sentinel is off" false
    (Core.Trace.enabled Core.Trace.disabled);
  let tr = Core.Trace.make () in
  check bool_ "live tracer is on" true (Core.Trace.enabled tr);
  let out =
    Core.Trace.span_over tr "Outer" [ 1; 2; 3 ] (fun xs ->
        Core.Trace.span ~input:7 tr "Inner" (fun () -> ());
        List.map (fun x -> x * 2) xs)
  in
  check (Alcotest.list int_) "result passes through" [ 2; 4; 6 ] out;
  match Core.Trace.roots tr with
  | [ sp ] ->
    check string_ "name" "Outer" sp.Core.Trace.name;
    check int_ "input cardinality" 3 sp.Core.Trace.input;
    check int_ "output cardinality" 3 sp.Core.Trace.output;
    check bool_ "elapsed recorded" true (sp.Core.Trace.elapsed_ns >= 0);
    (match sp.Core.Trace.children with
    | [ inner ] ->
      check string_ "child name" "Inner" inner.Core.Trace.name;
      check int_ "child input" 7 inner.Core.Trace.input
    | other -> Alcotest.failf "expected 1 child, got %d" (List.length other))
  | other -> Alcotest.failf "expected 1 root, got %d" (List.length other)

let test_trace_exception_safety () =
  let tr = Core.Trace.make () in
  (try Core.Trace.span tr "Boom" (fun () -> failwith "x")
   with Failure _ -> ());
  check int_ "failed span still closed" 1 (List.length (Core.Trace.roots tr));
  Core.Trace.enter tr "Dangling";
  Core.Trace.enter tr "Deeper";
  Core.Trace.unwind tr;
  (* Deeper nests under Dangling; both frames are closed *)
  check int_ "unwound to two roots" 2 (List.length (Core.Trace.roots tr));
  match Core.Trace.root tr with
  | Some sp ->
    check string_ "multiple roots wrapped" "trace" sp.Core.Trace.name;
    check int_ "wrapper holds both" 2 (List.length sp.Core.Trace.children)
  | None -> Alcotest.fail "no root span"

let test_trace_disabled_is_inert () =
  let tr = Core.Trace.disabled in
  let out = Core.Trace.span_over tr "X" [ 1 ] (fun xs -> xs) in
  check (Alcotest.list int_) "same list" [ 1 ] out;
  Core.Trace.enter tr "X";
  Core.Trace.annotate tr "k" "v";
  Core.Trace.leave tr;
  check int_ "no spans recorded" 0 (List.length (Core.Trace.roots tr))

(* spans recorded by a traced algebra run mirror the plan's operators *)
let test_trace_algebra_run () =
  let t s = Core.Stree.make ~score:s "x" [] in
  let plan =
    Core.Algebra.(Limit (2, Sort (Scan (List.map t [ 2.; 9.; 4.; 7. ]))))
  in
  let tr = Core.Trace.make () in
  let out = Core.Algebra.run ~trace:tr plan in
  check int_ "limited to 2" 2 (List.length out);
  let names = ref [] in
  (match Core.Trace.root tr with
  | Some sp ->
    Core.Trace.iter_span
      (fun s -> names := s.Core.Trace.name :: !names)
      sp
  | None -> Alcotest.fail "no spans");
  List.iter
    (fun expected ->
      check bool_ (expected ^ " span present") true
        (List.mem expected !names))
    [ "Scan"; "Sort"; "Limit" ]

(* ------------------------------------------------------------------ *)
(* worth_by_histogram: nearest-rank quantile, tested against an
   oracle (the old float-truncating index skipped past the median on
   boundary quantiles like q=0.5 over even-sized groups) *)

let test_pick_quantile_nearest_rank () =
  (* reference: smallest element whose cumulative fraction reaches q *)
  let oracle q scores =
    let sorted = List.sort compare scores in
    let n = List.length sorted in
    let rec at i = function
      | [] -> assert false
      | x :: rest -> if i = 0 then x else at (i - 1) rest
    in
    let rec smallest idx =
      if idx >= n - 1 then at (n - 1) sorted
      else if float_of_int (idx + 1) /. float_of_int n >= q then at idx sorted
      else smallest (idx + 1)
    in
    smallest 0
  in
  (* the threshold is observable through leaf worthiness: a leaf is
     worth returning iff score >= threshold *)
  let threshold_of crit =
    let worth s =
      crit.Core.Op_pick.worth (Core.Stree.make ~score:s "x" [])
    in
    (* scores are drawn from 1..n, so scan in 0.5 steps *)
    let rec first s = if worth s then s else first (s +. 0.5) in
    first 0.5
  in
  List.iter
    (fun n ->
      let scores = List.init n (fun i -> float_of_int (i + 1)) in
      List.iter
        (fun q ->
          let crit = Core.Op_pick.worth_by_histogram ~quantile:q ~scores () in
          check float_
            (Printf.sprintf "q=%.2f n=%d" q n)
            (oracle q scores) (threshold_of crit))
        [ 0.1; 0.25; 0.5; 0.75; 0.9; 1.0 ])
    [ 1; 2; 3; 4; 5; 8 ];
  (* the motivating case: the median of 4 is the 2nd element, not the
     3rd *)
  let crit =
    Core.Op_pick.worth_by_histogram ~quantile:0.5 ~scores:[ 1.; 2.; 3.; 4. ] ()
  in
  check bool_ "median of 4 keeps score 2" true
    (crit.Core.Op_pick.worth (Core.Stree.make ~score:2. "x" []))

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "core"
    [
      ( "stree",
        [
          tc "of element" `Quick test_stree_of_element;
          tc "all text" `Quick test_stree_all_text;
          tc "stored ids" `Quick test_stree_ids;
          tc "roundtrip" `Quick test_stree_roundtrip;
          tc "score attr" `Quick test_stree_score_attr;
        ] );
      ( "pattern",
        [
          tc "predicates" `Quick test_pred_holds;
          tc "IR-node classification" `Quick test_pattern_classification;
          tc "vars" `Quick test_pattern_vars;
        ] );
      ( "matcher",
        [
          tc "embeddings" `Quick test_matcher_embeddings;
          tc "matches of var" `Quick test_matcher_matches_of_var;
          tc "no match" `Quick test_matcher_no_match;
          tc "descendant axis" `Quick test_matcher_descendant_axis;
        ] );
      ( "selection",
        [
          tc "Fig. 5 scores" `Quick test_selection_scores;
          tc "witness shape" `Quick test_selection_witness_shape;
          QCheck_alcotest.to_alcotest test_select_monotone;
        ] );
      ( "projection",
        [
          tc "root score (Fig. 6)" `Quick test_projection_root_score;
          tc "projected nodes" `Quick test_projection_nodes;
          tc "non-matching dropped" `Quick test_projection_no_match_drops_tree;
        ] );
      ("pick", [ tc "Fig. 8" `Quick test_pick_after_projection ]);
      ( "threshold",
        [
          tc "min score" `Quick test_threshold_min_score;
          tc "top k" `Quick test_threshold_top_k;
          tc "empty conditions" `Quick test_threshold_empty_condition;
          tc "top_k_by_score" `Quick test_top_k_by_score;
        ] );
      ("example 3.1", [ tc "chapter #a10 wins" `Quick test_example_3_1 ]);
      ( "join",
        [
          tc "product" `Quick test_product;
          tc "Query 3 (Fig. 7)" `Quick test_query3_join;
        ] );
      ( "grouping",
        [
          tc "group_by" `Quick test_group_by;
          tc "ordering" `Quick test_group_ordering;
          tc "top-K via grouping (Sec. 3.3.1)" `Quick test_top_k_via_grouping;
          tc "empty" `Quick test_top_k_via_grouping_empty;
        ] );
      ( "plans",
        [
          tc "run and explain" `Quick test_algebra_run_and_explain;
          tc "collection helpers" `Quick test_collection_helpers;
        ] );
      ( "trace",
        [
          tc "spans and nesting" `Quick test_trace_spans;
          tc "exception safety" `Quick test_trace_exception_safety;
          tc "disabled is inert" `Quick test_trace_disabled_is_inert;
          tc "algebra run" `Quick test_trace_algebra_run;
        ] );
      ( "pick quantile",
        [ tc "nearest rank vs oracle" `Quick test_pick_quantile_nearest_rank ] );
    ]
