#!/usr/bin/env bash
# End-to-end smoke test for the distributed deployment: generate a
# corpus, split it into 2 shards x 2 replicas with `tixdb shard`, boot
# four backend tixd processes plus a tixq coordinator on ephemeral
# loopback ports, and check that every access family answers through
# the coordinator byte-identically (modulo timings/cache/step
# accounting) to a single-node tixd over the whole corpus — then kill
# one replica mid-workload and check the answers stay exact and
# non-degraded, kill the other and check the degraded flag. Exits
# non-zero on the first failed check.
set -euo pipefail

TIXDB=${TIXDB:-_build/default/bin/tixdb.exe}
TIXD=${TIXD:-_build/default/bin/tixd.exe}
TIXQ=${TIXQ:-_build/default/bin/tixq.exe}

WORK=$(mktemp -d)
PIDS=()
cleanup() {
  for pid in "${PIDS[@]}"; do
    if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
      kill "$pid" 2>/dev/null || true
      wait "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  for log in "$WORK"/*.log; do
    echo "---- $log" >&2
    sed 's/^/  /' "$log" >&2 || true
  done
  exit 1
}

# scrape "on 127.0.0.1:PORT" from a startup log, waiting for the
# process to come up
wait_port() { # logfile pid
  local port=
  for _ in $(seq 1 100); do
    port=$(sed -n 's/.*on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "$1" | head -1)
    [ -n "$port" ] && break
    kill -0 "$2" 2>/dev/null || fail "$(basename "$1" .log) exited during startup"
    sleep 0.1
  done
  [ -n "$port" ] || fail "$(basename "$1" .log) never reported its port"
  echo "$port"
}

echo "== corpus + shard images (2 shards x 2 replicas)"
"$TIXDB" gen -n 30 -o "$WORK/corpus" >/dev/null
"$TIXDB" shard "$WORK"/corpus/*.xml --shards 2 --replicas 2 \
  -o "$WORK/shards" >/dev/null
[ -f "$WORK/shards/manifest.json" ] || fail "no manifest written"
[ -f "$WORK/shards/shard-0.tix" ] || fail "no shard image written"
TERM_PROBE=$(grep -oE '<p>[a-z]+[0-9]+' "$WORK/corpus/article-0.xml" | head -1 | cut -c4-)
[ -n "$TERM_PROBE" ] || fail "no vocabulary term found in generated corpus"
echo "   probe term: $TERM_PROBE"

echo "== boot backends on ephemeral ports"
declare -A BACKEND_PID
for shard in 0 1; do
  for replica in 0 1; do
    log="$WORK/tixd-$shard-$replica.log"
    "$TIXD" "$WORK/shards/shard-$shard.tix" --port 0 --workers 1 \
      >"$log" 2>&1 &
    BACKEND_PID[$shard-$replica]=$!
    PIDS+=("${BACKEND_PID[$shard-$replica]}")
  done
done
declare -A BACKEND_PORT
for shard in 0 1; do
  for replica in 0 1; do
    BACKEND_PORT[$shard-$replica]=$(wait_port "$WORK/tixd-$shard-$replica.log" \
      "${BACKEND_PID[$shard-$replica]}")
  done
done
echo "   shard 0: ${BACKEND_PORT[0-0]} ${BACKEND_PORT[0-1]}" \
     " shard 1: ${BACKEND_PORT[1-0]} ${BACKEND_PORT[1-1]}"

# the manifest was written with a static port plan; point it at the
# ports the kernel actually assigned
python3 - "$WORK/shards/manifest.json" \
  "${BACKEND_PORT[0-0]}" "${BACKEND_PORT[0-1]}" \
  "${BACKEND_PORT[1-0]}" "${BACKEND_PORT[1-1]}" <<'PY'
import json, sys
path = sys.argv[1]
ports = [int(p) for p in sys.argv[2:]]
with open(path) as f:
    manifest = json.load(f)
it = iter(ports)
for shard in manifest["shards"]:
    for replica in shard["replicas"]:
        replica["port"] = next(it)
with open(path, "w") as f:
    json.dump(manifest, f)
PY

echo "== boot coordinator + single-node oracle"
"$TIXQ" "$WORK/shards/manifest.json" --port 0 >"$WORK/tixq.log" 2>&1 &
COORD_PID=$!
PIDS+=("$COORD_PID")
COORD_PORT=$(wait_port "$WORK/tixq.log" "$COORD_PID")
"$TIXD" "$WORK"/corpus/*.xml --port 0 --workers 1 >"$WORK/oracle.log" 2>&1 &
ORACLE_PID=$!
PIDS+=("$ORACLE_PID")
ORACLE_PORT=$(wait_port "$WORK/oracle.log" "$ORACLE_PID")
echo "   coordinator $COORD_PORT, oracle $ORACLE_PORT"

coord() { "$TIXDB" client --port "$COORD_PORT" "$@"; }
oracle() { "$TIXDB" client --port "$ORACLE_PORT" "$@"; }

echo "== coordinator health (shard fleet visible)"
HEALTH=$(coord --health)
echo "$HEALTH" | grep -q '"ok":true' || fail "health: $HEALTH"
echo "$HEALTH" | grep -q '"shards"' || fail "health has no shards block"
echo "$HEALTH" | grep -q '"unreachable":0' || fail "backends unreachable at start"

QUERY='for $a in document("*")//article/descendant-or-self::*
score $a using ScoreFoo($a, {"'"$TERM_PROBE"'"}, {})
return <r>{$a}</r>
sortby(score)
threshold $a/@score > 0 stop after 5'

REQUESTS=(
  '{"op":"ranked","terms":["'"$TERM_PROBE"'"],"k":5}'
  '{"op":"search","terms":["'"$TERM_PROBE"'"],"k":8}'
  '{"op":"phrase","phrase":"'"$TERM_PROBE $TERM_PROBE"'"}'
)

# compare coordinator vs oracle: strip wall-clock timings, the cache
# flag, per-process step accounting, and the planner's plan line
# (cost estimates come from per-shard statistics, so a shard's plan
# can never be byte-identical to the full-corpus oracle's);
# everything else must match, and the coordinator answer must not
# carry the degraded flag
compare_families() { # label
  local label=$1 i=0
  : > "$WORK/compare_coord.ndjson"
  : > "$WORK/compare_oracle.ndjson"
  for req in "${REQUESTS[@]}"; do
    coord --raw "$req" >> "$WORK/compare_coord.ndjson" || fail "$label: coordinator request $i"
    oracle --raw "$req" >> "$WORK/compare_oracle.ndjson" || fail "$label: oracle request $i"
    i=$((i + 1))
  done
  # the query family goes through the client's query flag (quoting)
  coord --raw "$(python3 -c 'import json,sys; print(json.dumps({"op":"query","q":sys.argv[1],"k":5}))' "$QUERY")" \
    >> "$WORK/compare_coord.ndjson" || fail "$label: coordinator query"
  oracle --raw "$(python3 -c 'import json,sys; print(json.dumps({"op":"query","q":sys.argv[1],"k":5}))' "$QUERY")" \
    >> "$WORK/compare_oracle.ndjson" || fail "$label: oracle query"
  python3 - "$WORK" "$label" <<'PY' || fail "$label: coordinator diverged from single node"
import json, sys, os
work, label = sys.argv[1], sys.argv[2]
STRIP = ("timings", "cached", "steps_used", "plan")
def clean(line):
    resp = json.loads(line)
    for key in STRIP:
        resp.pop(key, None)
    return resp
with open(os.path.join(work, "compare_coord.ndjson")) as f:
    coord = [clean(l) for l in f if l.strip()]
with open(os.path.join(work, "compare_oracle.ndjson")) as f:
    oracle = [clean(l) for l in f if l.strip()]
assert len(coord) == len(oracle) and coord, "request count mismatch"
for i, (c, o) in enumerate(zip(coord, oracle)):
    assert o.get("ok") is True, "%s: oracle refused request %d: %r" % (label, i, o)
    assert "degraded" not in c, "%s: request %d flagged degraded" % (label, i)
    assert c == o, "%s: request %d diverged:\n  coord:  %r\n  oracle: %r" % (label, i, c, o)
print("   %s: %d requests byte-identical" % (label, len(coord)))
PY
}

echo "== scatter-gather equality (all families, both replicas up)"
compare_families "full fleet"

echo "== kill shard 0 primary mid-workload (failover must keep answers exact)"
kill "${BACKEND_PID[0-0]}"
wait "${BACKEND_PID[0-0]}" 2>/dev/null || true
compare_families "after failover"
coord --health | grep -q '"ok":true' || fail "health after failover"

echo "== kill shard 0 entirely (degraded flag, well-formed answers)"
kill "${BACKEND_PID[0-1]}"
wait "${BACKEND_PID[0-1]}" 2>/dev/null || true
DEGRADED=$(coord --raw '{"op":"search","terms":["'"$TERM_PROBE"'"],"k":8}')
echo "$DEGRADED" | grep -q '"ok":true' || fail "degraded answer not ok: $DEGRADED"
echo "$DEGRADED" | grep -q '"degraded":true' || fail "missing degraded flag: $DEGRADED"
echo "$DEGRADED" | grep -q '"shards_unavailable":\[0\]' \
  || fail "wrong shards_unavailable: $DEGRADED"

echo "== mutations refused at the coordinator"
coord --raw '{"op":"insert","name":"x.xml","xml":"<a/>"}' \
  | grep -q '"ok":false' || fail "coordinator accepted a mutation"

echo "== graceful shutdown"
kill -TERM "$COORD_PID"
for _ in $(seq 1 100); do
  kill -0 "$COORD_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$COORD_PID" 2>/dev/null; then fail "tixq ignored SIGTERM"; fi
wait "$COORD_PID" 2>/dev/null || true
grep -q "shutting down" "$WORK/tixq.log" || fail "no shutdown message"

echo "OK: dist smoke test passed"
