#!/usr/bin/env bash
# End-to-end smoke test for the tixd network service: generate a small
# corpus, build a database image, start tixd on an ephemeral loopback
# port, drive the protocol through `tixdb client`, and shut the server
# down cleanly. Exits non-zero on the first failed check.
set -euo pipefail

TIXDB=${TIXDB:-_build/default/bin/tixdb.exe}
TIXD=${TIXD:-_build/default/bin/tixd.exe}
TEST_EXEC=${TEST_EXEC:-_build/default/test/test_exec.exe}

WORK=$(mktemp -d)
SERVER_PID=
cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; sed 's/^/  tixd: /' "$WORK/tixd.log" >&2 || true; exit 1; }

echo "== corpus + image"
"$TIXDB" gen -n 40 -o "$WORK/corpus" >/dev/null
"$TIXDB" build "$WORK"/corpus/*.xml -o "$WORK/db.tix" >/dev/null

# any real vocabulary word from the generated text (they look like
# "ceba0"); take the first word of a paragraph so it is a whole token,
# not the tail of a capitalized title word
TERM=$(grep -oE '<p>[a-z]+[0-9]+' "$WORK/corpus/article-0.xml" | head -1 | cut -c4-)
[ -n "$TERM" ] || fail "no vocabulary term found in generated corpus"
echo "   probe term: $TERM"

echo "== start tixd (ephemeral port, 2-domain parallel execution enabled)"
"$TIXD" "$WORK/db.tix" --port 0 --workers 2 --parallelism 2 >"$WORK/tixd.log" 2>&1 &
SERVER_PID=$!

PORT=
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/.*on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "$WORK/tixd.log" | head -1)
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "tixd exited during startup"
  sleep 0.1
done
[ -n "$PORT" ] || fail "tixd never reported its port"
echo "   port $PORT"

client() { "$TIXDB" client --port "$PORT" "$@"; }

echo "== health (read-only server: generation pinned at 0, not updatable)"
HEALTH=$(client --health)
echo "$HEALTH" | grep -q '"ok":true' || fail "health"
echo "$HEALTH" | grep -q '"generation":0' || fail "health reports no generation"
echo "$HEALTH" | grep -q '"updatable":false' || fail "read-only server claims updatable"

echo "== search (twice: second answer must come from the result cache)"
client -t "$TERM" -k 5 | grep -q '"ok":true' || fail "search"
client -t "$TERM" -k 5 | grep -q '"cached":true' || fail "repeat search not cached"

echo "== phrase + ranked"
client --phrase "$TERM $TERM" | grep -q '"ok":true' || fail "phrase"
client --ranked "$TERM" -k 3 | grep -q '"ok":true' || fail "ranked"

echo "== parallel execution (2 domains: identical rows, steps accounted)"
# --trace bypasses the result cache, so both requests really execute
client -t "$TERM" -k 5 --trace > "$WORK/seq.json" || fail "sequential search"
client -t "$TERM" -k 5 --trace --parallel 2 > "$WORK/par.json" \
  || fail "parallel search"
client --ranked "$TERM" -k 3 --trace > "$WORK/seq_ranked.json" \
  || fail "sequential ranked"
client --ranked "$TERM" -k 3 --trace --parallel 2 > "$WORK/par_ranked.json" \
  || fail "parallel ranked"
python3 - "$WORK" <<'PY' || fail "parallel response diverged from sequential"
import json, sys, os
work = sys.argv[1]

def ops(span):
    yield span["op"]
    for c in span.get("children", []):
        yield from ops(c)

for name in ("", "_ranked"):
    with open(os.path.join(work, "seq%s.json" % name)) as f:
        seq = json.load(f)
    with open(os.path.join(work, "par%s.json" % name)) as f:
        par = json.load(f)
    assert seq["ok"] and par["ok"], (seq, par)
    assert seq["results"] == par["results"], "results differ for seq%s" % name
    assert seq["total"] == par["total"], "totals differ for seq%s" % name
    assert par["steps_used"] > 0, "parallel run reported no steps"
    assert "Parallel" in set(ops(par["trace"])), \
        "no Parallel span in par%s trace" % name
print("   parallel == sequential (search + ranked), Parallel span present")
PY

echo "== determinism suite (parallel == sequential property tests)"
if [ -x "$TEST_EXEC" ]; then
  "$TEST_EXEC" -q >/dev/null || fail "determinism suite"
  echo "   test_exec passed"
else
  echo "   SKIP: $TEST_EXEC not built"
fi

echo "== prepared statement round-trip"
PREP=$(client --prepare 'for $a in document("*")//article/descendant-or-self::*
score $a using ScoreFoo($a, {"'"$TERM"'"}, {})
return <r>{$a}</r>
sortby(score)
threshold $a/@score > 0 stop after 5')
echo "$PREP" | grep -q '"ok":true' || fail "prepare: $PREP"
ID=$(echo "$PREP" | sed -n 's/.*"id":\([0-9][0-9]*\).*/\1/p')
[ -n "$ID" ] || fail "prepare returned no id"
client --execute "$ID" -k 5 | grep -q '"ok":true' || fail "execute"

echo "== stats (pinned snapshot, cache hit recorded)"
STATS=$(client --stats)
echo "$STATS" | grep -q '"ok":true' || fail "stats"
echo "$STATS" | grep -q '"pinned":true' || fail "snapshot not pinned"
echo "$STATS" | grep -q '"hits":' || fail "no cache counters in stats"

echo "== explain + traced query (span JSON parses, expected root operator)"
QUERY='for $a in document("*")//article/descendant-or-self::*
score $a using ScoreFoo($a, {"'"$TERM"'"}, {})
return <r>{$a}</r>
sortby(score)
threshold $a/@score > 0 stop after 5'
"$TIXDB" query "$WORK/db.tix" -q "$QUERY" --explain --format json \
  | grep -q '"plan":' || fail "explain printed no plan"
TRACE_OUT=${TRACE_ARTIFACT:-$WORK/trace.json}
"$TIXDB" query "$WORK/db.tix" -q "$QUERY" --explain --trace --format json \
  > "$TRACE_OUT" || fail "traced query failed"
python3 - "$TRACE_OUT" <<'PY' || fail "trace span tree malformed"
import json, sys
with open(sys.argv[1]) as f:
    resp = json.load(f)                     # must be valid JSON
assert resp.get("ok") is True, resp
span = resp["trace"]                        # span tree present
assert span["op"] == "CompiledQuery", span["op"]
assert span.get("children"), "root span has no children"
assert "elapsed_ns" in span, "root span has no elapsed_ns"
print("   root span: %s out=%s children=%d"
      % (span["op"], span.get("output"), len(span["children"])))
PY
client --explain "$QUERY" | grep -q '"plan":' || fail "wire explain"
client -t "$TERM" -k 5 --trace | grep -q '"trace":' || fail "wire trace"

echo "== protocol error handling"
client --raw 'not json' | grep -q '"ok":false' || fail "bad JSON accepted"
client --raw '{"op":"nope"}' | grep -q '"ok":false' || fail "unknown op accepted"

echo "== graceful shutdown"
kill -TERM "$SERVER_PID"
for _ in $(seq 1 100); do
  kill -0 "$SERVER_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then fail "tixd ignored SIGTERM"; fi
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=
grep -q "shutting down" "$WORK/tixd.log" || fail "no shutdown message"

echo "OK: tixd smoke test passed"
