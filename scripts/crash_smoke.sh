#!/usr/bin/env bash
# Crash-recovery smoke test for live updates: start an updatable tixd
# (--wal-dir), ingest documents over the wire, kill -9 the server mid
# ingest, restart it on the same WAL directory and check that
#   - every acknowledged document survived the crash (durability),
#   - the recovered set is a contiguous prefix of the send order
#     (atomicity: a torn trailing append recovers to pre-op),
#   - query answers over base + recovered delta are byte-identical to
#     a from-scratch rebuild of the same corpus,
#   - a checkpoint folds the delta into an image, bumps the snapshot
#     generation, and a third restart boots from that image alone,
#   - documents acked while an async (wait:false) checkpoint is in
#     flight survive a kill -9 landing mid-checkpoint: the fourth
#     boot merges the rotated frozen log back and loses nothing.
# Every server runs with --wal-batch 8, so recovery is exercised
# against group-committed (batched) WAL frames throughout.
# Exits non-zero on the first failed check.
set -euo pipefail

TIXDB=${TIXDB:-_build/default/bin/tixdb.exe}
TIXD=${TIXD:-_build/default/bin/tixd.exe}

WORK=$(mktemp -d)
SERVER_PID=
cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -9 "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; sed 's/^/  tixd: /' "$WORK/tixd.log" >&2 || true; exit 1; }

start_server() { # args: extra tixd arguments...
  : > "$WORK/tixd.log"
  "$TIXD" --port 0 --wal-dir "$WORK/wal" --wal-batch 8 "$@" >"$WORK/tixd.log" 2>&1 &
  SERVER_PID=$!
  PORT=
  for _ in $(seq 1 100); do
    PORT=$(sed -n 's/.*on 127\.0\.0\.1:\([0-9][0-9]*\).*/\1/p' "$WORK/tixd.log" | head -1)
    [ -n "$PORT" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || fail "tixd exited during startup"
    sleep 0.1
  done
  [ -n "$PORT" ] || fail "tixd never reported its port"
}

client() { "$TIXDB" client --port "$PORT" "$@"; }

echo "== corpus + documents to ingest"
"$TIXDB" gen -n 20 -o "$WORK/corpus" >/dev/null
BASE_FILES=$(ls "$WORK/corpus"/*.xml | sort)
mkdir -p "$WORK/docs"
TOTAL=16
for i in $(seq 0 $((TOTAL - 1))); do
  printf '<article><title>crash doc %d</title><sec><p>uniqprobe%d shared smoke term</p></sec></article>' \
    "$i" "$i" > "$WORK/docs/doc-$i.xml"
done

echo "== start updatable tixd (ephemeral port, fresh WAL dir)"
# shellcheck disable=SC2086
start_server $BASE_FILES
echo "   port $PORT"
client --health | grep -q '"updatable":true' || fail "server is not updatable"
client --health | grep -q '"generation":0' || fail "fresh server not at generation 0"

echo "== ingest the first 5 documents (acked = durable)"
for i in 0 1 2 3 4; do
  "$TIXDB" ingest --port "$PORT" "$WORK/docs/doc-$i.xml" \
    | grep -q '"ok":true' || fail "ingest doc-$i"
done
ACKED=5
client --health | grep -q '"generation":5' || fail "5 mutations should be at generation 5"

echo "== kill -9 mid-ingest"
( for i in $(seq "$ACKED" $((TOTAL - 1))); do
    "$TIXDB" ingest --port "$PORT" "$WORK/docs/doc-$i.xml" >> "$WORK/acks.log" 2>/dev/null || break
  done ) &
INGEST_PID=$!
sleep 0.05
kill -9 "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=
wait "$INGEST_PID" 2>/dev/null || true
LATE_ACKS=$(grep -c '"ok":true' "$WORK/acks.log" 2>/dev/null || true)
LATE_ACKS=${LATE_ACKS:-0}
echo "   $LATE_ACKS more documents acked before the crash"

echo "== restart on the same WAL dir (recovery)"
# shellcheck disable=SC2086
start_server $BASE_FILES
echo "   port $PORT"
grep -q "recovered" "$WORK/tixd.log" || fail "restart did not report recovery"

# membership probes: each ingested doc carries a unique planted term,
# so a non-zero ranked total for uniqprobeN means doc-N was recovered
present() { client --ranked "uniqprobe$1" -k 3 | grep -q '"total":[1-9]'; }

echo "== durability: every acked document survived"
RECOVERED=0
CONTIGUOUS=1
for i in $(seq 0 $((TOTAL - 1))); do
  if present "$i"; then
    [ "$CONTIGUOUS" = 1 ] || fail "recovered set has a hole before doc-$i"
    RECOVERED=$((RECOVERED + 1))
  else
    CONTIGUOUS=0
  fi
done
MIN=$((ACKED + LATE_ACKS))
echo "   recovered $RECOVERED/$TOTAL sent documents ($MIN were acked)"
[ "$RECOVERED" -ge "$MIN" ] || fail "an acked document was lost ($RECOVERED < $MIN)"
[ "$RECOVERED" -le "$TOTAL" ] || fail "recovered more than was sent"

echo "== query equality: base + delta == from-scratch rebuild"
QUERY='for $a in document("*")//article/descendant-or-self::*
score $a using ScoreFoo($a, {"shared"}, {"smoke"})
return <r>{$a}</r>
sortby(score)
threshold $a/@score > 0 stop after 10'
REBUILD_FILES=$BASE_FILES
for i in $(seq 0 $((RECOVERED - 1))); do
  REBUILD_FILES="$REBUILD_FILES $WORK/docs/doc-$i.xml"
done
client -q "$QUERY" -k 10 > "$WORK/server.json" || fail "server query"
# shellcheck disable=SC2086
"$TIXDB" query $REBUILD_FILES -q "$QUERY" --format json > "$WORK/rebuild.json" \
  || fail "rebuild query"
python3 - "$WORK" <<'PY' || fail "recovered answers diverge from rebuild"
import json, sys, os
work = sys.argv[1]
with open(os.path.join(work, "server.json")) as f:
    server = json.load(f)
with open(os.path.join(work, "rebuild.json")) as f:
    rebuild = json.load(f)
assert server["ok"] and rebuild["ok"], (server, rebuild)
assert server["results"] == rebuild["results"], "rows differ"
assert server["total"] == rebuild["total"], "totals differ"
print("   %d rows identical to rebuild" % server["total"])
PY

echo "== checkpoint bumps the generation and resets the WAL"
GEN=$(client --health | sed -n 's/.*"generation":\([0-9][0-9]*\).*/\1/p')
client --checkpoint | grep -q '"ok":true' || fail "checkpoint"
NEWGEN=$(client --health | sed -n 's/.*"generation":\([0-9][0-9]*\).*/\1/p')
[ "$NEWGEN" -eq $((GEN + 1)) ] || fail "generation did not bump ($GEN -> $NEWGEN)"
client --stats | grep -q '"wal_records":0' || fail "WAL not reset by checkpoint"
client -q "$QUERY" -k 10 > "$WORK/after_ckpt.json" || fail "post-checkpoint query"
python3 - "$WORK" <<'PY' || fail "checkpoint changed the answers"
import json, sys, os
work = sys.argv[1]
with open(os.path.join(work, "server.json")) as f:
    before = json.load(f)
with open(os.path.join(work, "after_ckpt.json")) as f:
    after = json.load(f)
assert before["results"] == after["results"], "rows differ across checkpoint"
print("   answers unchanged across checkpoint")
PY

echo "== third boot: the checkpoint image alone restores the corpus"
kill -9 "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=
MAGIC=$(head -c 8 "$WORK/wal/checkpoint.tix")
[ "$MAGIC" = "TIXDB004" ] || fail "checkpoint image magic is '$MAGIC', expected TIXDB004"
export TIX_LOG=info          # surface the store's open-path log line
start_server   # no corpus files: --wal-dir must find checkpoint.tix
unset TIX_LOG
echo "   port $PORT"
grep -q "checkpoint.tix" "$WORK/tixd.log" || fail "restart did not use the checkpoint"
grep -q "mapped TIXDB004 image" "$WORK/tixd.log" \
  || fail "third boot did not take the zero-copy mmap path"
client -q "$QUERY" -k 10 > "$WORK/from_ckpt.json" || fail "from-checkpoint query"
python3 - "$WORK" <<'PY' || fail "checkpoint image lost data"
import json, sys, os
work = sys.argv[1]
with open(os.path.join(work, "server.json")) as f:
    before = json.load(f)
with open(os.path.join(work, "from_ckpt.json")) as f:
    after = json.load(f)
assert before["results"] == after["results"], "rows differ after image-only boot"
print("   answers unchanged after image-only boot")
PY

echo "== ingest during an async checkpoint, kill -9 mid-checkpoint"
for i in $(seq 0 5); do
  printf '<article><title>ckpt doc %d</title><sec><p>ckprobe%d checkpoint window term</p></sec></article>' \
    "$i" "$i" > "$WORK/docs/ck-$i.xml"
done
for i in 0 1 2; do
  "$TIXDB" ingest --port "$PORT" "$WORK/docs/ck-$i.xml" \
    | grep -q '"ok":true' || fail "ingest ck-$i"
done
client --checkpoint --no-wait | grep -q '"started":true' \
  || fail "async checkpoint did not report started"
for i in 3 4 5; do
  "$TIXDB" ingest --port "$PORT" "$WORK/docs/ck-$i.xml" \
    | grep -q '"ok":true' || fail "ingest ck-$i during checkpoint"
done
kill -9 "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=

echo "== fourth boot: acked-during-checkpoint documents recovered"
start_server   # image + whatever WAL state the crash left behind
echo "   port $PORT"
ck_present() { client --ranked "ckprobe$1" -k 3 | grep -q '"total":[1-9]'; }
for i in 0 1 2 3 4 5; do
  ck_present "$i" || fail "ck-$i acked but missing after mid-checkpoint crash"
done
echo "   all 6 documents acked around the async checkpoint survived"
for i in $(seq 0 $((RECOVERED - 1))); do
  present "$i" || fail "doc-$i lost after the mid-checkpoint crash"
done
echo "   all $RECOVERED pre-existing documents still present"

kill -TERM "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=

echo "OK: crash-recovery smoke test passed"
