(* Cost-based access-method choice over the collection statistics.

   All score-generating access methods emit the same scored-node sets
   (Sec. 6.1) — they differ only in cost, and the crossover points
   depend on term frequency and structural selectivity. The model
   below prices each method in abstract per-occurrence work units:

     TermJoin   ~ occ                      one merge pass, stack reuse
     GenMeet    ~ 2 * occ * depth          per-occurrence ancestor walk
                                           + hashing, no stack reuse
     scoped     ~ seeks + 2 * occ_in * depth
     GenMeet                               only occurrences inside the
                                           structural anchors group
     Comp1      ~ 4 * occ * depth          materialize every
                                           (occurrence, ancestor)
                                           tuple, sort, group, union
     Comp2      ~ terms * elements + occ   per-term element-table scan
                                           joined with postings

   [occ] is exact (summed collection frequencies from the index);
   [depth], element counts and anchor selectivities come from
   {!Ir.Stats}. Constants were fitted loosely against the bench
   harness — they only need to rank methods correctly near the
   crossovers, not predict wall time. *)

type decision = {
  access : Access.Pattern_exec.access;
  parallelism : int;
  est_occ : int;
  est_rows : int;
  est_cost : float;
  alternatives : (string * float) list;
}

let c_gen_meet = 2.0
let c_comp1 = 4.0
let c_seek = 4.0

(* Below this many posting occurrences per partition, the fork/join
   overhead of a parallel plan outweighs the work it divides. *)
let occ_floor_per_partition = 1024

let choose ?feedback ?key ?anchor_tag ?(parallelism = 1) ~stats ~index ~terms
    () =
  let occ =
    List.fold_left
      (fun acc t -> acc + Ir.Inverted_index.collection_freq index t)
      0 terms
  in
  let nterms = max 1 (List.length terms) in
  let occf = float_of_int occ in
  let depth = max 1.0 (Ir.Stats.avg_depth stats) in
  let elements = max 1 stats.Ir.Stats.elements in
  let cost_tj = occf in
  let cost_comp1 = c_comp1 *. occf *. depth in
  let cost_comp2 = float_of_int (nterms * elements) +. occf in
  let gen_meet =
    match anchor_tag with
    | Some tag when Ir.Stats.tag_count stats ~tag > 0 ->
      let anchors = Ir.Stats.tag_count stats ~tag in
      let fraction = Ir.Stats.subtree_fraction stats ~tag in
      let occ_in = occf *. fraction in
      let grouped = c_gen_meet *. occ_in *. depth in
      (* seeking pays per anchor region per term; decoding pays for
         every posting in the gaps *)
      let with_skips = (float_of_int (anchors * nterms) *. c_seek) +. grouped in
      let without = occf +. grouped in
      if with_skips <= without then
        (Access.Pattern_exec.Gen_meet { use_skips = true }, with_skips)
      else (Access.Pattern_exec.Gen_meet { use_skips = false }, without)
    | Some _ | None ->
      (Access.Pattern_exec.Gen_meet { use_skips = true },
       c_gen_meet *. occf *. depth)
  in
  let candidates =
    [
      (Access.Pattern_exec.Term_join Access.Term_join.Plain, cost_tj);
      gen_meet;
      (Access.Pattern_exec.Comp1, cost_comp1);
      (Access.Pattern_exec.Comp2, cost_comp2);
    ]
  in
  let access, est_cost =
    List.fold_left
      (fun (ba, bc) (a, c) -> if c < bc then (a, c) else (ba, bc))
      (List.hd candidates |> fun (a, c) -> (a, c))
      (List.tl candidates)
  in
  (* Emitted nodes: every distinct ancestor of an occurrence — at most
     one per (occurrence, ancestor) pair and at most every element. *)
  let raw_rows = min (int_of_float (occf *. depth)) elements in
  let corr =
    match (feedback, key) with
    | Some fb, Some key -> Ir.Stats.Feedback.correction fb ~key
    | _ -> 1.0
  in
  let est_rows = max 0 (int_of_float (float_of_int raw_rows *. corr)) in
  let parallelism =
    max 1 (min parallelism (occ / occ_floor_per_partition))
  in
  {
    access;
    parallelism;
    est_occ = occ;
    est_rows;
    est_cost;
    alternatives =
      List.map
        (fun (a, c) -> (Access.Pattern_exec.access_to_string a, c))
        candidates;
  }

let to_string d =
  let alts =
    d.alternatives
    |> List.map (fun (n, c) -> Printf.sprintf "%s:%.0f" n c)
    |> String.concat " "
  in
  Printf.sprintf "%s cost=%.0f occ=%d rows~%d par=%d [%s]"
    (Access.Pattern_exec.access_to_string d.access)
    d.est_cost d.est_occ d.est_rows d.parallelism alts
