(** Pipelined evaluator for the extended XQuery dialect.

    Evaluation streams binding tuples (environments) through the
    clause pipeline in the iterator style of a database engine; only
    the blocking operators — Pick (which needs the whole candidate
    set, Sec. 5.3), Sortby and rank thresholds — materialize.

    The database must have been loaded with [keep_trees] so result
    subtrees can be materialized. *)

type t

exception Error of string

val create :
  ?functions:Functions.t ->
  ?limits:Core.Governor.limits ->
  ?trace:Core.Trace.t ->
  ?exclude_docs:(int -> bool) ->
  ?lenient_docs:bool ->
  Store.Db.t ->
  t
(** [exclude_docs] hides documents from [document(...)] resolution —
    the delta overlay uses it to mask tombstoned base documents
    without touching the store. [lenient_docs] (default [false])
    makes a [document(...)] glob matching nothing evaluate to the
    empty sequence instead of raising {!Error} — required when the
    evaluator covers only one half of a base/delta pair, since the
    matching documents may all live in the other half.
    [functions] defaults to
    {!Functions.builtins}; [limits] (default
    {!Core.Governor.unlimited}) governs every subsequent {!run}: a
    fresh {!Core.Governor.t} is started per query, charging a step
    per evaluated expression / navigated node and gating intermediate
    binding cardinality. With [trace], each {!run} records an ["Eval"]
    root span with one child span per clause (For/Let/Where/Score/
    Pick) carrying the binding-stream cardinalities and governor
    steps. *)

val functions : t -> Functions.t

val run : t -> Ast.t -> Xmlkit.Tree.element list
(** Evaluate a parsed query; results in ranked order when the query
    has a [Sortby]. Raises {!Error}, or
    {!Core.Governor.Resource_exhausted} when the evaluator's limits
    are breached (the evaluator stays usable afterwards). *)

val run_raw : t -> Ast.t -> Xmlkit.Tree.element list
(** Like {!run} but stops before the order-sensitive tail: every
    binding surviving the threshold filter is constructed, in binding
    order (document order per [For] clause), with no [Sortby] and no
    [stop after] applied. The merged base∪delta evaluation runs the
    two halves raw, concatenates base-then-delta — the rebuilt
    database's document order — and applies {!finalize} once. *)

val finalize : Ast.t -> Xmlkit.Tree.element list -> Xmlkit.Tree.element list
(** The deferred tail of {!run_raw}: the query's [Sortby] (a stable
    sort, so document order breaks ties) followed by its
    [stop after] truncation. [run q = finalize q (run_raw q)]. *)

val run_string : t -> string -> (Xmlkit.Tree.element list, string) result
(** Parse and evaluate; governor breaches and storage faults come
    back as [Error] strings rather than exceptions. *)

val last_steps : t -> int
(** Governor steps consumed by the most recent {!run} (whether it
    finished or breached a limit); 0 before the first run. *)
