let src = Logs.Src.create "tix.query" ~doc:"TIX query compiler"

module Log = (val Logs.src_log src)

type plan = {
  document : string;
  structure : Core.Pattern.t;
  self_or_descendant : bool;
  terms : string list;
  weights : float array;
  pick : (Functions.fctx -> Core.Op_pick.criterion) option;
  min_score : float option;
  limit : int option;
  access : Access.Pattern_exec.access;
  estimate : Planner.decision option;
}

let ( let* ) = Result.bind

let unsupported fmt = Printf.ksprintf (fun s -> Error s) fmt

(* [author/sname = "lit"] chains become nested pc pattern nodes with a
   Content_eq on the last one. *)
let pattern_of_predicate ~next_var (pred : Ast.pred) =
  match pred with
  | Ast.Pred_cmp (Ast.Eq, Ast.Path (Ast.Var ".", steps), Ast.String_lit lit)
    ->
    let rec build steps =
      match steps with
      | [] -> unsupported "empty predicate path"
      | [ { Ast.step_axis; predicates = [] } ] -> begin
        match step_axis with
        | Ast.Child name ->
          let var = !next_var in
          incr next_var;
          Ok
            (Core.Pattern.pnode
               ~pred:(Core.Pattern.And (Core.Pattern.Tag name, Core.Pattern.Content_eq lit))
               var [])
        | Ast.Text -> unsupported "trailing text() in predicate"
        | Ast.Descendant _ | Ast.Self_or_descendant | Ast.Attribute _ ->
          unsupported "unsupported predicate step"
      end
      | { Ast.step_axis = Ast.Child name; predicates = [] } :: rest ->
        let var = !next_var in
        incr next_var;
        let* child = build rest in
        Ok (Core.Pattern.pnode ~pred:(Core.Pattern.Tag name) var [ child ])
      | { Ast.step_axis = Ast.Text; predicates = [] } :: rest ->
        (* ignore a final text() step: Content_eq compares text *)
        if rest = [] then unsupported "text() must terminate the path"
        else unsupported "text() in the middle of a predicate path"
      | _ -> unsupported "nested predicates are not compilable"
    in
    build steps
  | Ast.Pred_cmp _ -> unsupported "only = predicates against literals compile"
  | Ast.Pred_exists _ -> unsupported "existence predicates do not compile yet"

(* a source of the form document("D")//tag[preds], optionally
   followed by a descendant-or-self step *)
let parse_source expr =
  match expr with
  | Ast.Path (Ast.Document document, steps) -> begin
    match steps with
    | [ { Ast.step_axis = Ast.Descendant tag; predicates } ] ->
      Ok (document, tag, predicates, false)
    | [
     { Ast.step_axis = Ast.Descendant tag; predicates };
     { Ast.step_axis = Ast.Self_or_descendant; predicates = [] };
    ] ->
      Ok (document, tag, predicates, true)
    | _ -> unsupported "only document(...)//tag[...](/descendant-or-self::*) compiles"
  end
  | _ -> unsupported "the for clause must range over a document path"

let single_word_phrases set =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> begin
      match Ir.Phrase.parse p with
      | [ term ] -> go (term :: acc) rest
      | _ -> unsupported "phrase %S needs PhraseFinder; not compiled" p
    end
  in
  go [] set

let const_value = function
  | Ast.Number_lit f -> Some (Functions.Num f)
  | Ast.String_lit s -> Some (Functions.Str s)
  | Ast.String_set ss -> Some (Functions.Str_list ss)
  | _ -> None

let compile ?functions (q : Ast.t) =
  let fns = match functions with Some f -> f | None -> Functions.builtins () in
  (* clause shape: one for, one score, optional pick *)
  let* var, source, score_clause, pick_clause =
    match q.clauses with
    | [ Ast.For (v, src); Ast.Score (sv, f, args) ] when v = sv ->
      Ok (v, src, (f, args), None)
    | [ Ast.For (v, src); Ast.Score (sv, f, args); Ast.Pick (pv, pf, pargs) ]
      when v = sv && v = pv ->
      Ok (v, src, (f, args), Some (pf, pargs))
    | _ -> unsupported "clause shape is not for/score[/pick] over one variable"
  in
  let* document, tag, predicates, self_or_descendant = parse_source source in
  (* structural pattern: var 1 is the anchor; predicate chains get
     fresh variables *)
  let next_var = ref 2 in
  let* children =
    List.fold_left
      (fun acc p ->
        let* acc = acc in
        let* child = pattern_of_predicate ~next_var p in
        Ok (child :: acc))
      (Ok []) predicates
  in
  let structure =
    Core.Pattern.make
      (Core.Pattern.pnode ~pred:(Core.Pattern.Tag tag) 1 (List.rev children))
      []
  in
  (* scoring: ScoreFoo with single-word phrases *)
  let* terms, weights =
    match score_clause with
    | f, [ Ast.Var v'; Ast.String_set primary; Ast.String_set secondary ]
      when String.lowercase_ascii f = "scorefoo" && v' = var ->
      let* p = single_word_phrases primary in
      let* s = single_word_phrases secondary in
      let weights =
        Array.of_list (List.map (fun _ -> 0.8) p @ List.map (fun _ -> 0.6) s)
      in
      Ok (p @ s, weights)
    | f, _ -> unsupported "scoring function %s(...) is not compilable" f
  in
  (* pick criterion from constant arguments *)
  let* pick =
    match pick_clause with
    | None -> Ok None
    | Some (pf, pargs) -> begin
      match Functions.pick fns pf with
      | None -> unsupported "unknown pick function %s" pf
      | Some mk ->
        let consts =
          List.filter_map
            (fun a ->
              match a with Ast.Var v' when v' = var -> None | a -> const_value a)
            pargs
        in
        if
          List.length consts
          <> List.length
               (List.filter
                  (function Ast.Var v' when v' = var -> false | _ -> true)
                  pargs)
        then unsupported "pick arguments must be literals"
        else Ok (Some (fun fctx -> mk fctx consts))
    end
  in
  (* ranking and threshold *)
  let* () =
    match q.sortby with
    | Some "score" | None -> Ok ()
    | Some other -> unsupported "sortby(%s) is not compilable" other
  in
  let* min_score, limit =
    match q.thresh with
    | None -> Ok (None, None)
    | Some { Ast.t_expr; t_cmp = Ast.Gt; t_value; stop_after } -> begin
      match t_expr with
      | Ast.Path (Ast.Var v', [ { Ast.step_axis = Ast.Attribute "score"; _ } ])
        when v' = var ->
        Ok (Some t_value, stop_after)
      | _ -> unsupported "threshold must test $%s/@score" var
    end
    | Some _ -> unsupported "only strict > thresholds compile"
  in
  (* TermJoin emits only elements containing at least one query term;
     an unthresholded query without Pick also returns zero-scored
     bindings, which the engine path cannot produce. Such queries are
     not IR-style; leave them to the interpreter. *)
  let* () =
    if pick <> None || (match min_score with Some v -> v >= 0. | None -> false)
    then Ok ()
    else
      unsupported
        "a non-negative score threshold or a pick clause is required for the \
         engine path"
  in
  (* The static access-method rule, used when no statistics are
     available: single-term scoring merges one posting list, where
     TermJoin's stack pass is the obvious choice; multi-term scoring
     lowers onto the generic composite pipeline (Comp1), whose
     sort-group-union covers any term count with the operators a
     stock engine already has. The rule ignores term frequency — on
     frequent terms Comp1 materializes every (occurrence, ancestor)
     tuple — which is exactly what {!plan_with_stats} corrects. *)
  let access =
    if List.length terms >= 2 then Access.Pattern_exec.Comp1
    else Access.Pattern_exec.Term_join Access.Term_join.Plain
  in
  Ok
    {
      document;
      structure;
      self_or_descendant;
      terms;
      weights;
      pick;
      min_score;
      limit;
      access;
      estimate = None;
    }

(* The anchor's tag, as a catalog id, for the planner's structural
   selectivity estimate. *)
let anchor_tag db (p : plan) =
  let rec pred_tag = function
    | Core.Pattern.Tag t -> Some t
    | Core.Pattern.And (a, b) -> begin
      match pred_tag a with Some _ as s -> s | None -> pred_tag b
    end
    | _ -> None
  in
  match Core.Pattern.find_var p.structure 1 with
  | Some n ->
    Option.bind (pred_tag n.pred)
      (Store.Catalog.tag_id (Store.Db.catalog db))
  | None -> None

let plan_with_stats ?feedback ?key ?parallelism db (p : plan) =
  let decision =
    Planner.choose ?feedback ?key ?anchor_tag:(anchor_tag db p) ?parallelism
      ~stats:(Store.Db.collection_stats db)
      ~index:(Store.Db.index db) ~terms:p.terms ()
  in
  { p with access = decision.Planner.access; estimate = Some decision }

(* ------------------------------------------------------------------ *)
(* Execution *)

(* Build the candidate forest of one document from its scored nodes
   (sorted in document order): intervals are laminar, so a stack pass
   reconstructs the hierarchy that projection would produce. *)
let forest_of_scored nodes =
  let finished = ref [] in
  (* stack of (node, children-so-far in reverse) *)
  let stack : (Access.Scored_node.t * Core.Stree.t list ref) list ref =
    ref []
  in
  let close ((n : Access.Scored_node.t), children) =
    let tree =
      Core.Stree.make ~score:n.score
        ~id:(Core.Stree.Stored { doc = n.doc; start = n.start })
        "node"
        (List.rev_map (fun c -> Core.Stree.Node c) !children)
    in
    match !stack with
    | (_, parent_children) :: _ -> parent_children := tree :: !parent_children
    | [] -> finished := tree :: !finished
  in
  let rec pop_before (n : Access.Scored_node.t) =
    match !stack with
    | (((top : Access.Scored_node.t), _) as entry) :: rest
      when top.doc < n.doc || (top.doc = n.doc && top.end_ < n.start) ->
      stack := rest;
      close entry;
      pop_before n
    | _ :: _ | [] -> ()
  in
  List.iter
    (fun (n : Access.Scored_node.t) ->
      pop_before n;
      stack := (n, ref []) :: !stack)
    nodes;
  (* drain *)
  let rec drain () =
    match !stack with
    | entry :: rest ->
      stack := rest;
      close entry;
      drain ()
    | [] -> ()
  in
  drain ();
  List.rev !finished

let execute ?(limits = Core.Governor.unlimited)
    ?(trace = Core.Trace.disabled) ?governor db (p : plan) =
  Log.debug (fun m -> m "executing engine plan: terms=%s, pick=%b"
      (String.concat "," p.terms) (p.pick <> None));
  (* A caller-supplied governor lets the service read steps_used after
     the run (and share one budget across plans); [limits] is ignored
     in that case — the governor already carries its own. *)
  let gov =
    match governor with Some g -> g | None -> Core.Governor.start limits
  in
  (* Stage spans: the materialization boundaries of the engine path,
     nested under one CompiledQuery root. *)
  let stage name input f =
    if Core.Trace.enabled trace then
      Core.Trace.span_over ~governor:gov trace name input f
    else f input
  in
  Core.Trace.enter ~governor:gov trace "CompiledQuery";
  match
    (* The engine path materializes between physical operators; charge
       the governor at each materialization boundary. *)
    let account scored =
      let n = List.length scored in
      Core.Governor.tick_n gov n;
      Core.Governor.check_results gov n;
      Core.Governor.check_deadline gov;
      scored
    in
    let ctx = Access.Ctx.of_db db in
    (* restrict to the documents matching the glob *)
    let doc_ok =
      let catalog = Store.Db.catalog db in
      let matches = Hashtbl.create 8 in
      for doc = 0 to Store.Catalog.document_count catalog - 1 do
        if Glob.matches p.document (Store.Catalog.document_name catalog doc)
        then Hashtbl.replace matches doc ()
      done;
      fun doc -> Hashtbl.mem matches doc
    in
    let scored =
      account
        (Access.Pattern_exec.scored_matches ~trace ~access:p.access ctx
           p.structure ~struct_var:1 ~terms:p.terms ~weights:p.weights)
    in
    let scored =
      stage "DocFilter" scored
        (List.filter (fun (n : Access.Scored_node.t) -> doc_ok n.doc))
    in
    let scored =
      if p.self_or_descendant then scored
      else
        stage "AnchorFilter" scored @@ fun scored ->
        (* the scored variable is the anchor itself *)
        let anchors = Access.Pattern_exec.matches ctx p.structure ~var:1 in
        let keys = Hashtbl.create 64 in
        List.iter
          (fun (i : Store.Tag_index.item) ->
            Hashtbl.replace keys (i.doc, i.start) ())
          anchors;
        List.filter
          (fun (n : Access.Scored_node.t) -> Hashtbl.mem keys (n.doc, n.start))
          scored
    in
    let scored =
      account
        (stage "ScoreFilter" scored
           (List.filter (fun (n : Access.Scored_node.t) -> n.score > 0.)))
    in
    let scored =
      match p.pick with
      | None -> scored
      | Some mk_crit ->
        stage "Pick" scored @@ fun scored ->
        let crit = mk_crit { Functions.db } in
        (* group by document (input is in document order), build the
           candidate forest and run the streaming Pick *)
        let returned = Hashtbl.create 256 in
        let flush nodes =
          List.iter
            (fun root ->
              List.iter
                (fun (t : Core.Stree.t) ->
                  match t.id with
                  | Core.Stree.Stored { doc; start } ->
                    Hashtbl.replace returned (doc, start) ()
                  | Core.Stree.Synthetic _ -> ())
                (Access.Pick_stack.returned crit
                   ~candidates:(fun _ -> true)
                   root))
            (forest_of_scored (List.rev nodes))
        in
        let rec group current current_doc = function
          | [] -> flush current
          | (n : Access.Scored_node.t) :: rest ->
            if n.doc = current_doc || current = [] then
              group (n :: current) n.doc rest
            else begin
              flush current;
              group [ n ] n.doc rest
            end
        in
        group [] (-1) scored;
        List.filter
          (fun (n : Access.Scored_node.t) ->
            Hashtbl.mem returned (n.doc, n.start))
          scored
    in
    let scored =
      match p.min_score with
      | Some v ->
        stage "Threshold" scored
          (List.filter (fun (n : Access.Scored_node.t) -> n.score > v))
      | None -> scored
    in
    let ranked =
      stage "Rank" (account scored)
        (List.sort Access.Scored_node.compare_score_desc)
    in
    match p.limit with
    | Some k -> stage "Limit" ranked (List.filteri (fun i _ -> i < k))
    | None -> ranked
  with
  | result ->
    if Core.Trace.enabled trace then
      Core.Trace.leave ~output:(List.length result) ~governor:gov trace;
    result
  | exception e ->
    Core.Trace.unwind trace;
    raise e

let run_string ?functions ?limits ?trace db src =
  match Parser.parse src with
  | Error e -> Error (Format.asprintf "parse error: %a" Parser.pp_error e)
  | Ok q ->
    let* plan = compile ?functions q in
    (match execute ?limits ?trace db plan with
    | results -> Ok results
    | exception Core.Governor.Resource_exhausted v ->
      Error (Core.Governor.violation_to_string v)
    | exception Store.Pager.Read_error e ->
      Error (Format.asprintf "storage error: %a" Store.Pager.pp_read_error e))

let explain (p : plan) =
  Format.asprintf
    "@[<v>engine plan:@,  document glob: %s@,  structure:@,    %a@,  scored \
     var: %s@,  terms: %s (weights %s)@,  access: %s%s@,  pick: %s@,  \
     threshold: %s@,  limit: %s%s@]"
    p.document Core.Pattern.pp p.structure
    (if p.self_or_descendant then "descendant-or-self of anchor" else "anchor")
    (String.concat ", " p.terms)
    (String.concat ", "
       (Array.to_list (Array.map (Printf.sprintf "%g") p.weights)))
    (Access.Pattern_exec.access_to_string p.access)
    (match p.estimate with None -> " (static rule)" | Some _ -> " (costed)")
    (match p.pick with Some _ -> "stack-based Pick" | None -> "none")
    (match p.min_score with Some v -> Printf.sprintf "> %g" v | None -> "none")
    (match p.limit with Some k -> string_of_int k | None -> "none")
    (match p.estimate with
    | None -> ""
    | Some d -> Format.asprintf "@,  estimate: %s" (Planner.to_string d))
