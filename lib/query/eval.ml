exception Error of string

type t = {
  db : Store.Db.t;
  fns : Functions.t;
  doc_trees : (int, Core.Stree.t) Hashtbl.t;
  limits : Core.Governor.limits;
  trace : Core.Trace.t;
  exclude_docs : int -> bool;
  lenient_docs : bool;
  mutable governor : Core.Governor.t option;
      (** live only while a query runs: each {!run} starts a fresh
          governor from [limits], so budgets are per query and an
          exhausted query leaves the evaluator reusable *)
  mutable last_steps : int;
      (** steps consumed by the most recent {!run}, finished or not *)
}

let create ?functions ?(limits = Core.Governor.unlimited)
    ?(trace = Core.Trace.disabled) ?(exclude_docs = fun _ -> false)
    ?(lenient_docs = false) db =
  let fns = match functions with Some f -> f | None -> Functions.builtins () in
  {
    db;
    fns;
    doc_trees = Hashtbl.create 8;
    limits;
    trace;
    exclude_docs;
    lenient_docs;
    governor = None;
    last_steps = 0;
  }

let functions t = t.fns
let last_steps t = t.last_steps

let tick t =
  match t.governor with Some g -> Core.Governor.tick g | None -> ()

let check_results t n =
  match t.governor with
  | Some g -> Core.Governor.check_results g n
  | None -> ()

let fail fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type env = (string * Functions.value) list

let fctx t = { Functions.db = t.db }

let doc_tree t doc =
  match Hashtbl.find_opt t.doc_trees doc with
  | Some tree -> tree
  | None -> begin
    match Store.Db.numbering t.db ~doc with
    | Some num ->
      let tree = Core.Stree.of_numbered num ~doc in
      Hashtbl.replace t.doc_trees doc tree;
      tree
    | None ->
      fail "document %d was loaded without keep_trees; cannot navigate it" doc
  end

let documents_matching t pattern =
  let catalog = Store.Db.catalog t.db in
  let rec collect doc acc =
    if doc >= Store.Catalog.document_count catalog then List.rev acc
    else begin
      let name = Store.Catalog.document_name catalog doc in
      let acc =
        if (not (t.exclude_docs doc)) && Glob.matches pattern name then
          doc :: acc
        else acc
      in
      collect (doc + 1) acc
    end
  in
  collect 0 []

(* the synthetic document wrapper is never a query binding *)
let drop_wrapper nodes =
  List.filter (fun (n : Core.Stree.t) -> n.tag <> "#document") nodes

let lookup env v =
  match List.assoc_opt v env with
  | Some value -> value
  | None -> fail "unbound variable $%s" v

(* ------------------------------------------------------------------ *)
(* values and comparison *)

let string_of_nodes ns = String.concat " " (List.map Core.Stree.all_text ns)

let atomize = function
  | Functions.Nodes ns -> List.map (fun n -> Functions.Nodes [ n ]) ns
  | v -> [ v ]

let atom_string = function
  | Functions.Nodes ns -> string_of_nodes ns
  | v -> Functions.to_string_value v

let atom_float v =
  match v with
  | Functions.Nodes [ n ] -> begin
    (* prefer the score when asked for a number of a scored node,
       otherwise parse its text *)
    match float_of_string_opt (String.trim (Core.Stree.all_text n)) with
    | Some f -> f
    | None -> Core.Stree.score n
  end
  | v -> Functions.to_float v

let compare_atoms cmp a b =
  let num =
    match atom_float a, atom_float b with
    | fa, fb -> Some (compare fa fb)
    | exception Invalid_argument _ -> None
  in
  let c =
    match num with
    | Some c -> c
    | None -> compare (atom_string a) (atom_string b)
  in
  match cmp with
  | Ast.Eq ->
    (* string equality is the natural reading for = *)
    atom_string a = atom_string b || c = 0
  | Ast.Neq -> atom_string a <> atom_string b
  | Ast.Lt -> c < 0
  | Ast.Le -> c <= 0
  | Ast.Gt -> c > 0
  | Ast.Ge -> c >= 0

(* existential comparison over node sequences, XPath-style *)
let compare_values cmp a b =
  List.exists
    (fun x -> List.exists (fun y -> compare_atoms cmp x y) (atomize b))
    (atomize a)

(* ------------------------------------------------------------------ *)
(* paths *)

let rec eval_expr t (env : env) (expr : Ast.expr) : Functions.value =
  tick t;
  match expr with
  | Ast.Document pattern -> begin
    match documents_matching t pattern with
    | [] ->
      (* A lenient evaluator treats a matchless glob as an empty
         sequence: one half of a base/delta pair may legitimately
         hold none of the matching documents. *)
      if t.lenient_docs then Functions.Nodes []
      else fail "document(%S): no loaded document matches" pattern
    | docs ->
      (* wrap each root in a document node, as in XPath, so that
         //root-tag matches the root element itself *)
      Functions.Nodes
        (List.map
           (fun doc ->
             Core.Stree.make "#document"
               [ Core.Stree.Node (doc_tree t doc) ])
           docs)
  end
  | Ast.Var v -> lookup env v
  | Ast.String_lit s -> Functions.Str s
  | Ast.Number_lit f -> Functions.Num f
  | Ast.String_set ss -> Functions.Str_list ss
  | Ast.Call (f, args) -> begin
    match Functions.general t.fns f with
    | Some fn -> fn (fctx t) (List.map (eval_expr t env) args)
    | None -> fail "unknown function %s" f
  end
  | Ast.Cmp (c, a, b) ->
    Functions.Bool (compare_values c (eval_expr t env a) (eval_expr t env b))
  | Ast.And (a, b) ->
    Functions.Bool
      (Functions.to_bool (eval_expr t env a)
      && Functions.to_bool (eval_expr t env b))
  | Ast.Or (a, b) ->
    Functions.Bool
      (Functions.to_bool (eval_expr t env a)
      || Functions.to_bool (eval_expr t env b))
  | Ast.Path (base, steps) ->
    let v = eval_expr t env base in
    eval_steps t env v steps

and eval_steps t env value steps =
  tick t;
  match steps with
  | [] -> value
  | step :: rest -> begin
    match step.Ast.step_axis with
    | Ast.Text -> begin
      match value with
      | Functions.Nodes ns ->
        let text =
          String.concat " "
            (List.filter_map
               (fun (n : Core.Stree.t) ->
                 let direct =
                   List.filter_map
                     (function
                       | Core.Stree.Content s -> Some s
                       | Core.Stree.Node _ -> None)
                     n.children
                 in
                 match direct with [] -> None | l -> Some (String.concat " " l))
               ns)
        in
        eval_steps t env (Functions.Str text) rest
      | _ -> fail "text() applied to a non-node"
    end
    | Ast.Attribute name -> begin
      match value with
      | Functions.Nodes ns ->
        let v =
          match ns with
          | [] -> Functions.Str ""
          | (n : Core.Stree.t) :: _ ->
            if name = "score" then Functions.Num (Core.Stree.score n)
            else
              Functions.Str
                (Option.value ~default:"" (List.assoc_opt name n.attrs))
        in
        eval_steps t env v rest
      | _ -> fail "@%s applied to a non-node" name
    end
    | Ast.Child name -> begin
      match value with
      | Functions.Nodes ns ->
        let selected =
          List.concat_map
            (fun n ->
              List.filter
                (fun (c : Core.Stree.t) -> name = "*" || c.tag = name)
                (Core.Stree.child_nodes n))
            ns
          |> drop_wrapper
        in
        List.iter (fun _ -> tick t) selected;
        let filtered = apply_predicates t env step.Ast.predicates selected in
        eval_steps t env (Functions.Nodes filtered) rest
      | _ -> fail "/%s applied to a non-node" name
    end
    | Ast.Descendant name -> begin
      match value with
      | Functions.Nodes ns ->
        let selected =
          List.concat_map
            (fun n ->
              List.filter
                (fun (c : Core.Stree.t) ->
                  (name = "*" || c.tag = name) && not (c == n))
                (Core.Stree.self_or_descendants n))
            ns
          |> drop_wrapper
        in
        List.iter (fun _ -> tick t) selected;
        let filtered = apply_predicates t env step.Ast.predicates selected in
        eval_steps t env (Functions.Nodes filtered) rest
      | _ -> fail "//%s applied to a non-node" name
    end
    | Ast.Self_or_descendant -> begin
      match value with
      | Functions.Nodes ns ->
        let selected =
          drop_wrapper (List.concat_map Core.Stree.self_or_descendants ns)
        in
        List.iter (fun _ -> tick t) selected;
        let filtered = apply_predicates t env step.Ast.predicates selected in
        eval_steps t env (Functions.Nodes filtered) rest
      | _ -> fail "descendant-or-self applied to a non-node"
    end
  end

and apply_predicates t env preds nodes =
  List.fold_left
    (fun nodes pred ->
      List.filter
        (fun node ->
          tick t;
          let env = ("." , Functions.Nodes [ node ]) :: env in
          match pred with
          | Ast.Pred_cmp (c, a, b) ->
            compare_values c (eval_expr t env a) (eval_expr t env b)
          | Ast.Pred_exists e -> Functions.to_bool (eval_expr t env e))
        nodes)
    nodes preds

(* ------------------------------------------------------------------ *)
(* clauses *)

let single_node v =
  match v with
  | Functions.Nodes [ n ] -> n
  | Functions.Nodes ns -> fail "expected one node, got %d" (List.length ns)
  | Functions.Str _ | Functions.Num _ | Functions.Bool _
  | Functions.Str_list _ ->
    fail "expected a node value"

let node_key (n : Core.Stree.t) =
  match n.id with
  | Core.Stree.Stored { doc; start } -> Some (doc, start)
  | Core.Stree.Synthetic _ -> None

let eval_pick t envs v fname args =
  let criterion =
    match Functions.pick t.fns fname with
    | Some fn ->
      (* the conventional first argument is the picked variable
         itself; criterion construction only needs the rest *)
      let const_args =
        List.filter (function Ast.Var v' -> v' <> v | _ -> true) args
      in
      fn (fctx t)
        (List.map
           (eval_expr t (match envs with e :: _ -> e | [] -> []))
           const_args)
    | None -> fail "unknown pick function %s" fname
  in
  if envs = [] then []
  else begin
    (* Candidate set and score map over all bindings of $v.
       Zero-scored bindings are dropped first — Pick is defined over
       the output of a projection, which removes zero-score nodes
       (Sec. 3.3.2 / Fig. 6). *)
    let scores : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
    let docs = Hashtbl.create 8 in
    List.iter
      (fun env ->
        let n = single_node (lookup env v) in
        match node_key n with
        | Some key ->
          (match n.Core.Stree.score with
          | Some s when s > 0. ->
            Hashtbl.replace scores key s;
            Hashtbl.replace docs (fst key) ()
          | Some _ | None -> ())
        | None -> ())
      envs;
    (* For each involved document: annotate the tree with the scores,
       prune it down to the candidates (the projection step), then
       run the stack-based Pick. *)
    let returned : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
    Hashtbl.iter
      (fun doc () ->
        let kept (n : Core.Stree.t) =
          match node_key n with
          | Some key -> Hashtbl.mem scores key
          | None -> false
        in
        let rec prune (n : Core.Stree.t) : Core.Stree.child list =
          let is_kept = kept n in
          let children =
            List.concat_map
              (fun c ->
                match c with
                | Core.Stree.Node m -> prune m
                | Core.Stree.Content s ->
                  if is_kept then [ Core.Stree.Content s ] else [])
              n.children
          in
          if is_kept then begin
            let score =
              match node_key n with
              | Some key -> Hashtbl.find_opt scores key
              | None -> None
            in
            [ Core.Stree.Node { n with score; children } ]
          end
          else children
        in
        let root = doc_tree t doc in
        let root_score =
          match node_key root with
          | Some key -> Hashtbl.find_opt scores key
          | None -> None
        in
        let tree =
          {
            root with
            score = root_score;
            children =
              List.concat_map
                (fun c ->
                  match c with
                  | Core.Stree.Node m -> prune m
                  | Core.Stree.Content s -> [ Core.Stree.Content s ])
                root.children;
          }
        in
        let candidates = kept in
        let picked = Access.Pick_stack.returned criterion ~candidates tree in
        List.iter
          (fun (n : Core.Stree.t) ->
            match node_key n with
            | Some key -> Hashtbl.replace returned key ()
            | None -> ())
          picked)
      docs;
    List.filter
      (fun env ->
        let n = single_node (lookup env v) in
        match node_key n with
        | Some key -> Hashtbl.mem returned key
        | None -> true)
      envs
  end

let clause_name = function
  | Ast.For (v, _) -> "For $" ^ v
  | Ast.Let (v, _) -> "Let $" ^ v
  | Ast.Where _ -> "Where"
  | Ast.Score (v, _, _) -> "Score $" ^ v
  | Ast.Pick (v, _, _) -> "Pick $" ^ v

let rec eval_clause t (envs : env list) (clause : Ast.clause) : env list =
  let out =
    if Core.Trace.enabled t.trace then
      Core.Trace.span_over ?governor:t.governor t.trace (clause_name clause)
        envs
        (fun envs -> eval_clause_inner t envs clause)
    else eval_clause_inner t envs clause
  in
  (* the binding stream between clauses is the materialization the
     cardinality cap governs *)
  check_results t (List.length out);
  out

and eval_clause_inner t (envs : env list) (clause : Ast.clause) : env list =
  match clause with
  | Ast.For (v, e) ->
    List.concat_map
      (fun env ->
        tick t;
        match eval_expr t env e with
        | Functions.Nodes ns ->
          List.map (fun n -> (v, Functions.Nodes [ n ]) :: env) ns
        | Functions.Str_list ss ->
          List.map (fun s -> (v, Functions.Str s) :: env) ss
        | Functions.Str _ | Functions.Num _ | Functions.Bool _ ->
          fail "for $%s: expression is not a sequence" v)
      envs
  | Ast.Let (v, e) ->
    List.map (fun env -> (v, eval_expr t env e) :: env) envs
  | Ast.Where e ->
    List.filter (fun env -> Functions.to_bool (eval_expr t env e)) envs
  | Ast.Score (v, fname, args) -> begin
    match Functions.scoring t.fns fname with
    | None -> fail "unknown scoring function %s" fname
    | Some fn ->
      List.map
        (fun env ->
          let node = single_node (lookup env v) in
          let args = List.map (eval_expr t env) args in
          let score = fn (fctx t) args in
          (v, Functions.Nodes [ Core.Stree.with_score node score ]) :: env)
        envs
  end
  | Ast.Pick (v, fname, args) -> eval_pick t envs v fname args

(* ------------------------------------------------------------------ *)
(* return construction *)

let rec build_constructor t env (Ast.Elem_cons (name, attrs, children)) :
    Xmlkit.Tree.element =
  let attributes =
    List.map
      (fun (k, e) -> (k, Functions.to_string_value (eval_expr t env e)))
      attrs
  in
  let contents =
    List.concat_map
      (fun c ->
        match c with
        | Ast.Const_text s -> [ Xmlkit.Tree.Text s ]
        | Ast.Nested c -> [ Xmlkit.Tree.Element (build_constructor t env c) ]
        | Ast.Embedded e -> begin
          match eval_expr t env e with
          | Functions.Nodes ns ->
            List.map
              (fun n -> Xmlkit.Tree.Element (Core.Stree.to_element n))
              ns
          | v -> [ Xmlkit.Tree.Text (Functions.to_string_value v) ]
        end)
      children
  in
  Xmlkit.Tree.elem ~attrs:attributes name contents

let sort_results field results =
  let key (e : Xmlkit.Tree.element) =
    let child =
      List.find_map
        (fun n ->
          match n with
          | Xmlkit.Tree.Element c when c.Xmlkit.Tree.tag = field -> Some c
          | Xmlkit.Tree.Element _ | Xmlkit.Tree.Text _ | Xmlkit.Tree.Comment _
          | Xmlkit.Tree.Pi _ ->
            None)
        e.Xmlkit.Tree.children
    in
    match child with
    | Some c ->
      Option.value ~default:neg_infinity
        (float_of_string_opt (String.trim (Xmlkit.Tree.all_text c)))
    | None -> neg_infinity
  in
  List.stable_sort (fun a b -> compare (key b) (key a)) results

(* The clause pipeline up to construction: every binding that survives
   the threshold filter, as a constructed element, in binding order
   (document order per For). Sortby and stop-after are deferred to
   {!finalize} so two evaluators' streams can be merged first. *)
let raw_ungoverned t (q : Ast.t) =
  let envs = List.fold_left (eval_clause t) [ [] ] q.clauses in
  (* threshold filters bindings before construction *)
  let envs =
    match q.thresh with
    | Some th ->
      List.filter
        (fun env ->
          compare_values th.t_cmp
            (eval_expr t env th.t_expr)
            (Functions.Num th.t_value))
        envs
    | None -> envs
  in
  List.map (fun env -> build_constructor t env q.returns) envs

let finalize (q : Ast.t) results =
  let results =
    match q.sortby with
    | Some field -> sort_results field results
    | None -> results
  in
  match q.thresh with
  | Some { stop_after = Some k; _ } ->
    List.filteri (fun i _ -> i < k) results
  | Some { stop_after = None; _ } | None -> results

let run_ungoverned t (q : Ast.t) = finalize q (raw_ungoverned t q)

let governed t (q : Ast.t) eval =
  (* A fresh governor per query: exhaustion aborts this run only and
     leaves the evaluator (and its database) usable afterwards. *)
  let gov = Core.Governor.start t.limits in
  t.governor <- Some gov;
  Fun.protect
    ~finally:(fun () ->
      t.last_steps <- Core.Governor.steps gov;
      t.governor <- None)
    (fun () ->
      Core.Trace.enter ~governor:gov t.trace "Eval";
      match eval t q with
      | results ->
        (* the clock is sampled sparsely during evaluation; settle the
           deadline before handing results back *)
        Core.Governor.check_deadline gov;
        if Core.Trace.enabled t.trace then
          Core.Trace.leave ~output:(List.length results) ~governor:gov t.trace;
        results
      | exception e ->
        Core.Trace.unwind t.trace;
        raise e)

let run t (q : Ast.t) = governed t q run_ungoverned
let run_raw t (q : Ast.t) = governed t q raw_ungoverned

let run_string t src =
  match Parser.parse src with
  | Result.Error e ->
    Result.Error (Format.asprintf "parse error: %a" Parser.pp_error e)
  | Result.Ok q -> begin
    match run t q with
    | results -> Result.Ok results
    | exception Error msg -> Result.Error msg
    | exception Core.Governor.Resource_exhausted v ->
      Result.Error (Core.Governor.violation_to_string v)
    | exception Store.Pager.Read_error e ->
      Result.Error
        (Format.asprintf "storage error: %a" Store.Pager.pp_read_error e)
  end
