(** Cost-based access-method planning.

    The score-generating access methods of Sec. 6.1 — TermJoin,
    GenMeet (optionally scoped to structural anchors), and the
    composite baselines Comp1/Comp2 — all produce the same scored
    element sets; only their costs differ, and the crossovers depend
    on term frequency and structural selectivity. {!choose} prices
    every method from the collection statistics ({!Ir.Stats}) and the
    exact per-term occurrence counts of the index, applies the
    feedback correction for the query's key when one is known, and
    returns the cheapest plan plus the full cost table for EXPLAIN. *)

type decision = {
  access : Access.Pattern_exec.access;  (** the cheapest method *)
  parallelism : int;
      (** chosen degree, never above the requested degree; degraded
          to 1 when the estimated per-partition occupancy is too low
          to amortize fork/join *)
  est_occ : int;  (** total posting occurrences of the terms (exact) *)
  est_rows : int;
      (** estimated operator output cardinality, after feedback
          correction *)
  est_cost : float;  (** abstract cost units of the chosen method *)
  alternatives : (string * float) list;
      (** every candidate method with its cost, for EXPLAIN *)
}

val choose :
  ?feedback:Ir.Stats.Feedback.t ->
  ?key:string ->
  ?anchor_tag:int ->
  ?parallelism:int ->
  stats:Ir.Stats.t ->
  index:Ir.Inverted_index.t ->
  terms:string list ->
  unit ->
  decision
(** [anchor_tag] (a catalog tag id) is the structural anchor the
    scored nodes must lie inside; when given and selective, a scoped
    GenMeet that seeks across the anchor gaps becomes a candidate.
    [key] and [feedback] apply the per-snapshot correction learned
    from observed cardinalities. [parallelism] is the requested
    degree (default 1). *)

val to_string : decision -> string
(** One-line plan description: chosen method, cost, occurrence count,
    row estimate, degree and the alternative cost table. *)
