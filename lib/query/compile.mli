(** Compilation of extended-XQuery queries onto the engine's access
    methods.

    The interpreter ({!Eval}) navigates retained in-memory trees; for
    the query shape of the paper's Queries 1 and 2 —

    {v
    for $x in document("D")//tag[p1/p2 = "lit"].../descendant-or-self::*
    score $x using ScoreFoo($x, {primary...}, {secondary...})
    pick $x using PickFoo(...)
    return ...
    sortby(score)
    threshold $x/@score > V stop after K
    v}

    — this module instead produces a physical plan over the store:
    the structural predicate runs as stack-based structural joins
    ({!Access.Pattern_exec}), scoring runs as a TermJoin, Pick runs
    as the streaming stack algorithm over the candidate forest, and
    the threshold as a scan filter plus bounded top-K. No document
    trees are materialized, so compiled queries also work on
    databases loaded without [keep_trees].

    Queries outside the recognized shape (multi-word phrases in
    ScoreFoo, joins, arbitrary [where] clauses …) are rejected with a
    reason, and the caller falls back to the interpreter. *)

type plan = {
  document : string;  (** glob over loaded document names *)
  structure : Core.Pattern.t;  (** structural anchor pattern, var 1 *)
  self_or_descendant : bool;
      (** the scored variable ranges over the anchor's subtree (the
          ad-or-self axis) rather than the anchor itself *)
  terms : string list;
  weights : float array;
  pick : (Functions.fctx -> Core.Op_pick.criterion) option;
      (** criterion factory, resolved against the database at
          execution time *)
  min_score : float option;  (** strict lower bound on scores *)
  limit : int option;
  access : Access.Pattern_exec.access;
      (** the score-generating access method; {!compile} fills it
          from a static rule, {!plan_with_stats} from the cost
          model *)
  estimate : Planner.decision option;
      (** present once {!plan_with_stats} has costed the plan *)
}

val compile : ?functions:Functions.t -> Ast.t -> (plan, string) result
(** [Error reason] when the query is outside the compilable shape.
    The access method follows the static rule: TermJoin for
    single-term scoring, the Comp1 composite pipeline for multi-term
    scoring — frequency-blind by construction; call
    {!plan_with_stats} to replace it with the costed choice. *)

val plan_with_stats :
  ?feedback:Ir.Stats.Feedback.t ->
  ?key:string ->
  ?parallelism:int ->
  Store.Db.t ->
  plan ->
  plan
(** Re-cost the plan against the database's collection statistics
    ({!Store.Db.collection_stats}) and exact per-term occurrence
    counts: the cheapest access method replaces the static choice and
    the full {!Planner.decision} (row estimate, degree, cost table)
    is recorded in [estimate]. [key]/[feedback] apply the learned
    cardinality correction; [parallelism] is the requested degree the
    planner may degrade. *)

val execute :
  ?limits:Core.Governor.limits ->
  ?trace:Core.Trace.t ->
  ?governor:Core.Governor.t ->
  Store.Db.t ->
  plan ->
  Access.Scored_node.t list
(** Evaluate the plan; results ranked best-first (ties in document
    order). With [limits], cardinality is charged to a fresh governor
    at every materialization boundary; a breached budget raises
    {!Core.Governor.Resource_exhausted}. [governor] supplies the
    governor instead ([limits] is then ignored), so the caller can
    read {!Core.Governor.steps} afterwards. With [trace], a
    ["CompiledQuery"] root span nests the access-method spans
    (PatternMatch, TermJoin) and one span per materialization stage
    (DocFilter, AnchorFilter, ScoreFilter, Pick, Threshold, Rank,
    Limit), each with cardinalities and governor steps. *)

val run_string :
  ?functions:Functions.t ->
  ?limits:Core.Governor.limits ->
  ?trace:Core.Trace.t ->
  Store.Db.t ->
  string ->
  (Access.Scored_node.t list, string) result
(** Parse, compile and execute; governor breaches and storage faults
    come back as [Error] strings. *)

val explain : plan -> string
