(** The TermJoin access method (Fig. 11).

    A single merge pass over the per-term posting lists, ordered by
    position, maintains a stack of exactly the open ancestors of the
    current occurrence. Term counters (and, for complex scoring,
    occurrence buffers) accumulate on the stack; when an element is
    popped its subtree is complete, its score is computed and it is
    emitted. Every ancestor element of any query-term occurrence is
    emitted exactly once.

    The {e plain} variant resolves each pushed node's child count
    with a data-page access; the {e enhanced} variant reads it from
    the parent index (Sec. 6.1 "Enhanced TermJoin"). Child counts are
    only needed by the complex scoring function, so the variants
    coincide under simple scoring.

    The method is exposed both as a demand-driven {e cursor} — the
    iterator shape of a pipelined query engine, holding only the
    ancestor stack and the posting cursors — and as the push-style
    {!run} built on top of it. *)

type variant = Plain | Enhanced

type cursor

val cursor :
  ?variant:variant ->
  ?mode:Counter_scoring.mode ->
  ?weights:float array ->
  ?doc_range:int * int ->
  Ctx.t ->
  terms:string list ->
  cursor
(** [weights] defaults to all ones. [doc_range], a half-open document
    interval [(lo, hi)], restricts the merge to occurrences with
    [lo <= doc < hi]: cursors seek to [lo] and stop at [hi]. Because
    an element never spans documents, the nodes emitted for a range
    are exactly the full join's nodes whose document falls inside it —
    ranges that partition the doc-id space partition the output. *)

val next : cursor -> Scored_node.t option
(** The next scored ancestor, in stack-pop (document postorder)
    order; [None] once every posting list is consumed and the stack
    drained. *)

val run :
  ?trace:Core.Trace.t ->
  ?variant:variant ->
  ?mode:Counter_scoring.mode ->
  ?weights:float array ->
  ?doc_range:int * int ->
  Ctx.t ->
  terms:string list ->
  emit:(Scored_node.t -> unit) ->
  unit ->
  int
(** Drive a cursor to completion, calling [emit] for every scored
    ancestor; returns the number of emitted nodes. With [trace],
    records a ["TermJoin"] span whose input cardinality is the total
    posting occurrences merged and whose output is the emitted
    count. *)

val to_list :
  ?trace:Core.Trace.t ->
  ?variant:variant ->
  ?mode:Counter_scoring.mode ->
  ?weights:float array ->
  ?doc_range:int * int ->
  Ctx.t ->
  terms:string list ->
  Scored_node.t list
(** Convenience wrapper; results in document order. *)
