(** Composite-of-standard-operators baselines (Sec. 6.1, 6.2).

    These implement the same functionality as TermJoin and
    PhraseFinder out of the generic operators a database engine
    already has — index scan, ancestor expansion, sort, group, n-way
    merge union, structural join against the element table, filter —
    and serve as the paper's Comp1 / Comp2 / Comp3 baselines.

    Comp1 evaluates the operator expression of Sec. 5.1.1 directly:
    per term, expand every occurrence to all its ancestors
    (materializing tuples), sort and group by node id, then union the
    per-term groups.

    Comp2 pushes structural joins down: per term, a full sequential
    scan of the element table is structurally joined with the term's
    postings; grouping is implicit, the per-term results are then
    merged. Its cost is dominated by the scans, nearly independent of
    term frequency.

    Comp3 is the phrase baseline: per-term index access, intersection
    on owning text node, then an offset-adjacency filter and a final
    data-page verification of the candidate nodes. *)

val comp1 :
  ?trace:Core.Trace.t ->
  ?mode:Counter_scoring.mode ->
  ?weights:float array ->
  Ctx.t ->
  terms:string list ->
  emit:(Scored_node.t -> unit) ->
  unit ->
  int

val comp2 :
  ?trace:Core.Trace.t ->
  ?mode:Counter_scoring.mode ->
  ?weights:float array ->
  Ctx.t ->
  terms:string list ->
  emit:(Scored_node.t -> unit) ->
  unit ->
  int

val comp1_list :
  ?trace:Core.Trace.t ->
  ?mode:Counter_scoring.mode ->
  ?weights:float array ->
  Ctx.t ->
  terms:string list ->
  Scored_node.t list

val comp2_list :
  ?trace:Core.Trace.t ->
  ?mode:Counter_scoring.mode ->
  ?weights:float array ->
  Ctx.t ->
  terms:string list ->
  Scored_node.t list

val comp3 :
  ?trace:Core.Trace.t ->
  ?use_skips:bool ->
  Ctx.t ->
  phrase:string list ->
  emit:(Scored_node.t -> unit) ->
  unit ->
  int
(** Emits one scored node per text-owning element containing the
    phrase; the score is the phrase occurrence count. With
    [~use_skips:true] (default) the follower terms are probed through
    seekable posting cursors in one monotone pass each; with
    [~use_skips:false] they are materialized into per-term hash
    tables (the paper's original composite). Identical results,
    possibly in a different emission order. *)

val comp3_list :
  ?trace:Core.Trace.t ->
  ?use_skips:bool ->
  Ctx.t ->
  phrase:string list ->
  Scored_node.t list

(** With [trace], each baseline records a ["Comp1"]/["Comp2"]/["Comp3"]
    span: input is the total posting occurrences of the terms, output
    the emitted node count. *)
