(** Score-utilizing access methods (Sec. 5.3): thresholding composed
    directly with a score-emitting access method.

    The V-threshold is a score selection applied on the fly; the
    K-threshold uses a bounded {!Top_k} accumulator, so neither
    materializes or sorts the full result. A score {!histogram}
    supports choosing thresholds from the score distribution instead
    of asking the user for an absolute value. *)

type emitter = emit:(Scored_node.t -> unit) -> unit -> int
(** The shape shared by TermJoin, Generalized Meet, PhraseFinder and
    the composites. *)

val top_k : int -> emitter -> Scored_node.t list
(** The K best-scored nodes, best first. *)

val top_k_docs :
  ?trace:Core.Trace.t ->
  ?use_skips:bool ->
  ?weights:float array ->
  ?doc_range:int * int ->
  ?shared_threshold:float Atomic.t ->
  Ctx.t ->
  terms:string list ->
  k:int ->
  (int * float) list
(** Document-at-a-time Top-K retrieval for a bag of terms, scoring
    [score(d) = sum_i weights.(i) * tf_i(d)] (weights default to 1).
    Returns at most [k] [(doc, score)] pairs, best score first, doc id
    breaking ties; at the K-th rank, ties keep the lowest doc ids.

    With [use_skips] (the default) this runs the max-score algorithm:
    low-ceiling terms become non-essential and are only probed by
    {!Ir.Postings.seek_doc} for candidates the remaining terms
    propose, and candidates whose per-block [block_max_tf] ceiling
    cannot beat the current K-th score are skipped without decoding
    their postings. [~use_skips:false] scores every document
    exhaustively; both paths return identical results.

    [doc_range] restricts scoring to documents in the half-open
    interval [(lo, hi)] — the per-partition entry point of the
    parallel executor. [shared_threshold] is a cross-partition score
    floor (initialised to [neg_infinity]): each partition publishes
    the monotone max of its k-th-best score into the atomic, and
    pruning additionally skips any document whose score ceiling is
    {e strictly} below it. Strictness matters: a score exactly equal
    to the final global cutoff can still win the doc-id tie-break, so
    only strictly-lower bounds are provably irrelevant to the merged
    top-k. The local result may then be missing documents below the
    shared floor, but the union over all partitions always contains
    the exact global top-k. *)

val above : float -> emitter -> Scored_node.t list
(** Nodes scoring strictly above the threshold, in document order. *)

val histogram : ?buckets:int -> emitter -> Store.Histogram.t
(** Score distribution of everything the method emits. *)

val top_fraction : q:float -> emitter -> Scored_node.t list
(** Run the method twice: once to build the histogram, once to keep
    nodes above the [q]-quantile score (e.g. [~q:0.9] keeps roughly
    the best decile). Document order. *)
