let run_merge ?(use_skips = true) ?doc_range ctx ~phrase ~emit () =
  match phrase with
  | [] -> 0
  | first :: rest ->
    let lo, hi = match doc_range with Some r -> r | None -> (0, max_int) in
    (* Only the lead needs range clipping: a phrase match lives inside
       one document, and followers are only ever probed at positions
       in the lead's (in-range) document. *)
    let clip o =
      match o with
      | Some (occ : Ir.Postings.occ) when occ.doc >= hi -> None
      | Some _ | None -> o
    in
    let lead =
      match Ir.Inverted_index.cursor ctx.Ctx.index first with
      | Some c -> c
      | None -> Ir.Postings.cursor (Ir.Postings.of_list [])
    in
    let followers =
      List.map
        (fun term ->
          let cur =
            match Ir.Inverted_index.cursor ctx.Ctx.index term with
            | Some c -> c
            | None -> Ir.Postings.cursor (Ir.Postings.of_list [])
          in
          (cur, ref (Ir.Postings.next cur)))
        rest
    in
    (* count per owning element; the lead cursor is in document
       order, so per-element counts complete before the next element
       appears *)
    let emitted = ref 0 in
    let current : (int * int) option ref = ref None in
    let count = ref 0 in
    let flush () =
      match !current with
      | Some (doc, node) when !count > 0 ->
        (match Ctx.node_entry ctx ~nav:Ctx.Parent_index ~doc ~start:node with
        | Some m ->
          emit
            {
              Scored_node.doc;
              start = node;
              end_ = m.Store.Parent_index.end_;
              level = m.Store.Parent_index.level;
              tag = m.Store.Parent_index.tag;
              score = float_of_int !count;
            };
          incr emitted
        | None -> ())
      | Some _ | None -> ()
    in
    (* A follower going dry ends the phrase: no later lead occurrence
       can complete a match, so the lead loop may stop early. *)
    let exhausted = ref false in
    let rec lead_loop next_occ =
      match next_occ with
      | None -> ()
      | Some (occ : Ir.Postings.occ) ->
        (match !current with
        | Some (doc, node) when doc = occ.doc && node = occ.node -> ()
        | Some _ | None ->
          flush ();
          current := Some (occ.doc, occ.node);
          count := 0);
        let hit = ref true in
        (* lexicographically largest lower bound, over missing
           followers, on the next lead occurrence that could match *)
        let bdoc = ref (-1) and bpos = ref 0 in
        List.iteri
          (fun i (cur, head) ->
            let want_pos = occ.pos + i + 1 in
            let before (h : Ir.Postings.occ) =
              h.doc < occ.doc || (h.doc = occ.doc && h.pos < want_pos)
            in
            (match !head with
            | Some h when before h ->
              if use_skips then
                (* gallop: binary-search the skip table instead of
                   decoding every intervening posting *)
                head := Ir.Postings.seek_pos cur ~doc:occ.doc ~pos:want_pos
              else begin
                let rec advance () =
                  match !head with
                  | Some h when before h ->
                    head := Ir.Postings.next cur;
                    advance ()
                  | Some _ | None -> ()
                in
                advance ()
              end
            | Some _ | None -> ());
            match !head with
            | Some h when h.doc = occ.doc && h.pos = want_pos -> ()
            | Some h ->
              hit := false;
              (* follower i sits at (h.doc, h.pos): the lead cannot
                 match before (h.doc, h.pos - i - 1) *)
              let ib = h.doc and ip = max 0 (h.pos - i - 1) in
              if ib > !bdoc || (ib = !bdoc && ip > !bpos) then begin
                bdoc := ib;
                bpos := ip
              end
            | None ->
              hit := false;
              exhausted := true)
          followers;
        if !hit then incr count;
        if not !exhausted then begin
          let next_lead =
            if
              use_skips && (not !hit) && !bdoc >= 0
              && (!bdoc > occ.doc || (!bdoc = occ.doc && !bpos > occ.pos))
            then Ir.Postings.seek_pos lead ~doc:!bdoc ~pos:!bpos
            else Ir.Postings.next lead
          in
          lead_loop (clip next_lead)
        end
    in
    lead_loop
      (clip
         (if lo = 0 then Ir.Postings.next lead
          else Ir.Postings.seek_doc lead lo));
    flush ();
    !emitted

let run ?(trace = Core.Trace.disabled) ?use_skips ?doc_range ctx ~phrase ~emit
    () =
  if not (Core.Trace.enabled trace) then
    run_merge ?use_skips ?doc_range ctx ~phrase ~emit ()
  else begin
    let input =
      List.fold_left
        (fun acc t -> acc + Ir.Inverted_index.collection_freq ctx.Ctx.index t)
        0 phrase
    in
    Core.Trace.enter ~input trace "PhraseFinder";
    Core.Trace.annotate trace "terms" (string_of_int (List.length phrase));
    Core.Trace.annotate trace "skips"
      (match use_skips with Some false -> "off" | Some true | None -> "on");
    match run_merge ?use_skips ?doc_range ctx ~phrase ~emit () with
    | n ->
      Core.Trace.leave ~output:n trace;
      n
    | exception e ->
      Core.Trace.leave trace;
      raise e
  end

let to_list ?trace ?use_skips ?doc_range ctx ~phrase =
  let acc = ref [] in
  let _ =
    run ?trace ?use_skips ?doc_range ctx ~phrase
      ~emit:(fun n -> acc := n :: !acc)
      ()
  in
  List.sort Scored_node.compare_pos !acc

let total_occurrences ?use_skips ctx ~phrase =
  (* Scores are per-element phrase counts (integers as floats); sum
     in float and round once so nothing fractional is silently
     truncated if scores ever become weighted. *)
  let total = ref 0. in
  let _ =
    run ?use_skips ctx ~phrase
      ~emit:(fun n -> total := !total +. n.Scored_node.score)
      ()
  in
  int_of_float (Float.round !total)
