(** The PhraseFinder access method (Sec. 5.1.2).

    A single merge pass over the positional posting lists of the
    phrase's terms verifies adjacency {e during} the intersection:
    for every occurrence [p] of the first term, each following
    cursor advances monotonically to position [p + i]; an exact hit
    on every cursor is one phrase occurrence. No posting is read
    twice and no candidate set is materialized, in contrast to Comp3.

    With [~use_skips:true] (the default) the merge is a galloping
    intersection over the skip-indexed posting lists: followers
    [seek_pos] directly to the wanted position, and when a follower
    overshoots, the lead seeks forward to the earliest position that
    could still match — whole blocks of postings are skipped without
    decoding. [~use_skips:false] decodes every posting linearly (the
    paper's original merge); both produce identical results.

    Word positions live in the same key space as element intervals,
    so positions in different text nodes are never adjacent — the
    paper's same-text-node requirement holds by construction. *)

val run :
  ?trace:Core.Trace.t ->
  ?use_skips:bool ->
  ?doc_range:int * int ->
  Ctx.t ->
  phrase:string list ->
  emit:(Scored_node.t -> unit) ->
  unit ->
  int
(** Emits one node per owning element that contains the phrase, with
    the phrase occurrence count as score; returns the number of
    emitted nodes. [doc_range] restricts the merge to lead occurrences
    in the half-open doc interval [(lo, hi)]; matches never span
    documents, so ranges that partition the doc-id space partition the
    output. With [trace], records a ["PhraseFinder"] span (input =
    total postings of the phrase's terms, output = emitted
    elements). *)

val to_list :
  ?trace:Core.Trace.t ->
  ?use_skips:bool ->
  ?doc_range:int * int ->
  Ctx.t ->
  phrase:string list ->
  Scored_node.t list

val total_occurrences : ?use_skips:bool -> Ctx.t -> phrase:string list -> int
(** Sum of phrase occurrence counts over all elements. *)
