(** Store-level evaluation of (scored) pattern trees.

    "The core of XML query processing is generally believed to be the
    containment join" (Sec. 1): this module evaluates the structural
    and value part of a {!Core.Pattern.t} directly against the
    database using the tag index and stack-based structural joins —
    no in-memory trees — and is how a query plan pushes predicates
    like [article/author/sname = "Doe"] down into the engine.

    Candidate sets per pattern variable come from the tag index (tag
    predicates), from the inverted index plus a data-page
    verification (content predicates), or from the whole element list
    (unconstrained variables). Bottom-up semi-joins prune candidates
    whose pattern children cannot be satisfied; a top-down pass then
    restricts each variable to placements reachable from a satisfied
    root, matching the semantics of [Core.Matcher.matches_of_var]. *)

val candidates : Ctx.t -> Core.Pattern.pred -> Store.Tag_index.item list
(** Elements satisfying a local predicate, in document order, straight
    from the indexes (tag index / inverted index + verification).
    Raises [Invalid_argument] on non-index-evaluable predicates. *)

val matches : Ctx.t -> Core.Pattern.t -> var:int -> Store.Tag_index.item list
(** Elements the variable can bind to in some embedding, in document
    order. Supported predicates: [True], [Tag], [Content_eq]
    (against the element's direct text), [Content_has] (a phrase
    anywhere in the subtree) and conjunctions thereof; other
    predicate forms raise [Invalid_argument]. *)

val scored_matches :
  ?trace:Core.Trace.t ->
  ?mode:Counter_scoring.mode ->
  ?weights:float array ->
  Ctx.t ->
  Core.Pattern.t ->
  struct_var:int ->
  terms:string list ->
  Scored_node.t list
(** The access-method pipeline of the paper's Query 2: evaluate the
    structural pattern, score elements with TermJoin, and keep the
    scored elements lying inside (or equal to) a match of
    [struct_var] — the ad* relationship between the structural
    anchor and the scored component. Document order. *)
