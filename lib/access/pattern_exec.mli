(** Store-level evaluation of (scored) pattern trees.

    "The core of XML query processing is generally believed to be the
    containment join" (Sec. 1): this module evaluates the structural
    and value part of a {!Core.Pattern.t} directly against the
    database using the tag index and stack-based structural joins —
    no in-memory trees — and is how a query plan pushes predicates
    like [article/author/sname = "Doe"] down into the engine.

    Candidate sets per pattern variable come from the tag index (tag
    predicates), from the inverted index plus a data-page
    verification (content predicates), or from the whole element list
    (unconstrained variables). Bottom-up semi-joins prune candidates
    whose pattern children cannot be satisfied; a top-down pass then
    restricts each variable to placements reachable from a satisfied
    root, matching the semantics of [Core.Matcher.matches_of_var]. *)

val candidates : Ctx.t -> Core.Pattern.pred -> Store.Tag_index.item list
(** Elements satisfying a local predicate, in document order, straight
    from the indexes (tag index / inverted index + verification).
    Raises [Invalid_argument] on non-index-evaluable predicates. *)

val matches : Ctx.t -> Core.Pattern.t -> var:int -> Store.Tag_index.item list
(** Elements the variable can bind to in some embedding, in document
    order. Supported predicates: [True], [Tag], [Content_eq]
    (against the element's direct text), [Content_has] (a phrase
    anywhere in the subtree) and conjunctions thereof; other
    predicate forms raise [Invalid_argument]. *)

type access =
  | Term_join of Term_join.variant
  | Gen_meet of { use_skips : bool }
      (** scoped to the outermost structural anchors; [use_skips]
          selects seeking vs full posting decode *)
  | Comp1
  | Comp2
      (** the interchangeable score-generating access methods of
          Sec. 6.1 — all produce the same scored-node sets *)

val access_operator : access -> string
(** The operator span name the method records (["TermJoin"],
    ["GenMeet"], ["Comp1"], ["Comp2"]) — what EXPLAIN matches
    planner estimates against. *)

val access_to_string : access -> string
(** Stable lower-case rendering for plan descriptions and logs. *)

val scored_matches :
  ?trace:Core.Trace.t ->
  ?mode:Counter_scoring.mode ->
  ?weights:float array ->
  ?access:access ->
  Ctx.t ->
  Core.Pattern.t ->
  struct_var:int ->
  terms:string list ->
  Scored_node.t list
(** The access-method pipeline of the paper's Query 2: evaluate the
    structural pattern, score elements with the chosen [access]
    method (default plain TermJoin), and keep the scored elements
    lying inside (or equal to) a match of [struct_var] — the ad*
    relationship between the structural anchor and the scored
    component. Every [access] yields the identical result set;
    [Gen_meet] additionally scopes its grouping to the anchor
    subtrees, so its cost tracks the anchors' occupancy rather than
    the whole collection. Document order. *)
