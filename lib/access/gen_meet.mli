(** Generalized Meet (Sec. 6.1).

    An adaptation of Schmidt et al.'s [meet] operator: for every
    occurrence of every query term, recursively walk the ancestor
    chain upward, grouping term counts per node id in a hash table;
    scores are computed per grouped node at the end. Unlike TermJoin
    there is no stack reuse — every occurrence pays a full
    ancestor-chain walk and per-node hashing — and output requires a
    final pass over the table. Emits all common ancestors, including
    nodes containing only a subset of the terms (with correspondingly
    lower scores), exactly like TermJoin.

    [?within] scopes the meet to a set of candidate subtrees (sorted
    by [(doc, start)], pairwise disjoint — see
    {!Structural_join.outermost}): only term occurrences inside one
    of the subtrees are grouped, and with [?use_skips] left at its
    default the posting cursors seek structurally from subtree to
    subtree over the skip tables instead of decoding the whole
    collection's postings. *)

val run :
  ?trace:Core.Trace.t ->
  ?mode:Counter_scoring.mode ->
  ?weights:float array ->
  ?within:Structural_join.item array ->
  ?use_skips:bool ->
  ?doc_range:int * int ->
  Ctx.t ->
  terms:string list ->
  emit:(Scored_node.t -> unit) ->
  unit ->
  int
(** With [trace], records a ["GenMeet"] span (input = total posting
    occurrences of the terms, output = grouped nodes emitted).
    [doc_range] restricts grouping to occurrences in the half-open doc
    interval [(lo, hi)]; grouping is per [(doc, node)], so ranges that
    partition the doc-id space partition the output. [doc_range] is
    ignored when [within] is given (scoped meets are already bounded
    by the candidate regions). *)

val to_list :
  ?trace:Core.Trace.t ->
  ?mode:Counter_scoring.mode ->
  ?weights:float array ->
  ?within:Structural_join.item array ->
  ?use_skips:bool ->
  ?doc_range:int * int ->
  Ctx.t ->
  terms:string list ->
  Scored_node.t list
(** Results in document order. *)
