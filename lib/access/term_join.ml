type variant = Plain | Enhanced

type entry = {
  doc : int;
  start : int;
  end_ : int;
  level : int;
  tag : int;
  counts : int array;
  mutable occs : Occ_buf.t;
  mutable nonzero_children : int;
  child_count : int;  (* -1 when not fetched (simple scoring) *)
}

(* Merged view over the per-term posting cursors. *)
type head = {
  term : int;
  mutable cur : Ir.Postings.occ option;
  pcursor : Ir.Postings.cursor option;
}

type cursor = {
  ctx : Ctx.t;
  variant : variant;
  mode : Counter_scoring.mode;
  weights : float array;
  complex : bool;
  heads : head array;
  hi : int;  (* exclusive upper doc bound; [max_int] = unbounded *)
  mutable stack : entry list;
  pending : Scored_node.t Queue.t;
      (* one input occurrence can pop several ancestors; emissions
         wait here until pulled *)
  mutable drained : bool;
}

(* Occurrences at or past the range's upper bound look like end of
   list: the stack then never holds an element of a document outside
   [lo, hi), so a partitioned run emits exactly the full run's nodes
   whose doc falls in the range. *)
let clip hi o =
  match o with
  | Some (occ : Ir.Postings.occ) when occ.doc >= hi -> None
  | Some _ | None -> o

let make_heads ctx ~lo ~hi terms =
  List.mapi
    (fun term t ->
      match Ir.Inverted_index.cursor ctx.Ctx.index t with
      | Some pcursor ->
        let cur =
          if lo = 0 then Ir.Postings.next pcursor
          else Ir.Postings.seek_doc pcursor lo
        in
        { term; cur = clip hi cur; pcursor = Some pcursor }
      | None -> { term; cur = None; pcursor = None })
    terms
  |> Array.of_list

let min_head heads =
  let best = ref None in
  Array.iter
    (fun h ->
      match h.cur with
      | None -> ()
      | Some occ -> begin
        match !best with
        | Some (_, b) when Ir.Postings.compare_occ b occ <= 0 -> ()
        | Some _ | None -> best := Some (h, occ)
      end)
    heads;
  !best

let advance hi h =
  match h.pcursor with
  | Some c -> h.cur <- clip hi (Ir.Postings.next c)
  | None -> h.cur <- None

let cursor ?(variant = Plain) ?(mode = Counter_scoring.Simple) ?weights
    ?doc_range ctx ~terms =
  let k = List.length terms in
  let weights =
    match weights with Some w -> w | None -> Counter_scoring.default_weights k
  in
  let lo, hi = match doc_range with Some r -> r | None -> (0, max_int) in
  {
    ctx;
    variant;
    mode;
    weights;
    complex = mode = Counter_scoring.Complex;
    heads = make_heads ctx ~lo ~hi terms;
    hi;
    stack = [];
    pending = Queue.create ();
    drained = false;
  }

(* Node identity always comes from the parent index (it is how
   ancestor chains are derived); the plain variant pays an extra data
   access for the child count the complex scorer needs. *)
let entry_of c ~doc ~start (e : Store.Parent_index.entry) =
  let child_count =
    if not c.complex then -1
    else begin
      match c.variant with
      | Enhanced -> e.child_count
      | Plain -> Ctx.child_count c.ctx ~nav:Ctx.Data_access ~doc ~start
    end
  in
  {
    doc;
    start;
    end_ = e.end_;
    level = e.level;
    tag = e.tag;
    counts = Array.make (Array.length c.heads) 0;
    occs = Occ_buf.empty;
    nonzero_children = 0;
    child_count;
  }

let score_of c entry =
  match c.mode with
  | Counter_scoring.Simple ->
    Counter_scoring.simple ~weights:c.weights ~counts:entry.counts
  | Counter_scoring.Complex ->
    Counter_scoring.complex ~weights:c.weights ~counts:entry.counts
      ~occs:(Occ_buf.flatten entry.occs)
      ~nonzero_children:entry.nonzero_children ~child_count:entry.child_count

let pop c =
  match c.stack with
  | [] -> ()
  | popped :: rest ->
    c.stack <- rest;
    (match rest with
    | top :: _ when top.doc = popped.doc ->
      Array.iteri
        (fun i n -> top.counts.(i) <- top.counts.(i) + n)
        popped.counts;
      top.nonzero_children <- top.nonzero_children + 1;
      if c.complex then top.occs <- Occ_buf.append top.occs popped.occs
    | _ :: _ | [] -> ());
    Queue.add
      {
        Scored_node.doc = popped.doc;
        start = popped.start;
        end_ = popped.end_;
        level = popped.level;
        tag = popped.tag;
        score = score_of c popped;
      }
      c.pending

let rec pop_non_ancestors c (occ : Ir.Postings.occ) =
  match c.stack with
  | top :: _ when top.doc < occ.doc || (top.doc = occ.doc && top.end_ < occ.pos)
    ->
    pop c;
    pop_non_ancestors c occ
  | _ :: _ | [] -> ()

let push_chain c (occ : Ir.Postings.occ) =
  (* collect the ancestors of the occurrence's owner element that are
     not yet on stack, nearest first *)
  let top_start =
    match c.stack with
    | top :: _ when top.doc = occ.doc -> top.start
    | _ :: _ | [] -> -1
  in
  let rec collect acc start =
    if start < 0 || start = top_start then acc
    else begin
      match Store.Parent_index.find c.ctx.Ctx.parents ~doc:occ.doc ~start with
      | None -> acc (* unknown node: corrupt index; stop defensively *)
      | Some e -> collect (entry_of c ~doc:occ.doc ~start e :: acc) e.parent
    end
  in
  (* the collected chain is root-most first: push in that order *)
  List.iter (fun e -> c.stack <- e :: c.stack) (collect [] occ.node)

(* Consume input occurrences until something lands in [pending] (or
   the join is finished). *)
let rec refill c =
  if Queue.is_empty c.pending && not c.drained then begin
    match min_head c.heads with
    | Some (h, occ) ->
      pop_non_ancestors c occ;
      push_chain c occ;
      (match c.stack with
      | top :: _ ->
        top.counts.(h.term) <- top.counts.(h.term) + 1;
        if c.complex then
          top.occs <-
            Occ_buf.append top.occs
              (Occ_buf.singleton { Counter_scoring.term = h.term; pos = occ.pos })
      | [] -> () (* occurrence with no known owner element *));
      advance c.hi h;
      refill c
    | None ->
      while c.stack <> [] do
        pop c
      done;
      c.drained <- true
  end

let next c =
  refill c;
  Queue.take_opt c.pending

(* Total posting occurrences the merge will consume; only computed
   when a live tracer asks for the input cardinality. *)
let postings_input ctx terms =
  List.fold_left
    (fun acc t -> acc + Ir.Inverted_index.collection_freq ctx.Ctx.index t)
    0 terms

let run ?(trace = Core.Trace.disabled) ?variant ?mode ?weights ?doc_range ctx
    ~terms ~emit () =
  let body () =
    let c = cursor ?variant ?mode ?weights ?doc_range ctx ~terms in
    let rec drive n =
      match next c with
      | Some node ->
        emit node;
        drive (n + 1)
      | None -> n
    in
    drive 0
  in
  if not (Core.Trace.enabled trace) then body ()
  else begin
    Core.Trace.enter ~input:(postings_input ctx terms) trace "TermJoin";
    Core.Trace.annotate trace "variant"
      (match variant with Some Enhanced -> "enhanced" | Some Plain | None -> "plain");
    Core.Trace.annotate trace "terms" (string_of_int (List.length terms));
    match body () with
    | n ->
      Core.Trace.leave ~output:n trace;
      n
    | exception e ->
      Core.Trace.leave trace;
      raise e
  end

let to_list ?trace ?variant ?mode ?weights ?doc_range ctx ~terms =
  let acc = ref [] in
  let _ =
    run ?trace ?variant ?mode ?weights ?doc_range ctx ~terms
      ~emit:(fun n -> acc := n :: !acc)
      ()
  in
  List.sort Scored_node.compare_pos !acc
