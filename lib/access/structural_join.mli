(** The stack-based structural (containment) join — the XML query
    processing primitive the TermJoin family generalizes
    (Al-Khalifa et al., ICDE 2001).

    Joins two document-ordered node lists on the ancestor-descendant
    (or parent-child) relationship in one merge pass. *)

type item = { doc : int; start : int; end_ : int; level : int }

val item_of_scored : Scored_node.t -> item

val join :
  ?trace:Core.Trace.t ->
  ?axis:[ `Ancestor_descendant | `Parent_child ] ->
  ancestors:item array ->
  descendants:item array ->
  emit:(item -> item -> unit) ->
  unit ->
  int
(** [join ~ancestors ~descendants ~emit] calls [emit a d] for every
    pair with [a] containing [d]; both inputs must be sorted by
    [(doc, start)]. Returns the number of emitted pairs. The
    ancestor list must be laminar (elements of one document nest or
    are disjoint), which holds for XML element sets. *)

val pairs :
  ?axis:[ `Ancestor_descendant | `Parent_child ] ->
  ancestors:item array ->
  descendants:item array ->
  unit ->
  (item * item) list

val outermost : item array -> item array
(** Drop every item nested inside an earlier item of the same
    document. Input must be sorted by [(doc, start)] and laminar;
    the result is sorted and pairwise disjoint, as
    {!occurrences_within} requires. *)

val occurrences_within :
  ?trace:Core.Trace.t ->
  ?use_skips:bool ->
  Ir.Postings.cursor ->
  within:item array ->
  emit:(item -> Ir.Postings.occ -> unit) ->
  unit ->
  int
(** Structural semi-join of a posting cursor against a set of
    subtrees: calls [emit subtree occ] for every occurrence lying
    inside one of [within], which must be sorted by [(doc, start)]
    and pairwise disjoint (see {!outermost}). With [~use_skips:true]
    (default) the cursor seeks over the skip table from one subtree
    to the next, decoding none of the postings in the gaps; with
    [~use_skips:false] every posting is decoded. Returns the number
    of emitted occurrences. *)
