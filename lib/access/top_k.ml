include Core.Top_k
