(* Intermediate tuples of the generic-operator pipelines. A group is
   the result of "group by node id" for one or several terms. *)
type group = {
  g_doc : int;
  g_start : int;
  g_counts : int array;  (* per query term *)
  mutable g_positions : int list array;  (* per term, descending; only complex *)
  mutable g_meta : Store.Parent_index.entry option;
}

let new_group ~k ~doc ~start ?meta () =
  {
    g_doc = doc;
    g_start = start;
    g_counts = Array.make k 0;
    g_positions = [||];
    g_meta = meta;
  }

let ensure_positions ~k g =
  if Array.length g.g_positions = 0 then g.g_positions <- Array.make k []

let group_key g = (g.g_doc, g.g_start)

(* n-way merge union of per-term group lists, each sorted by node id;
   the union combines counters, as the grouping/union expression of
   Sec. 5.1.1 requires. *)
let merge_union ~k lists =
  let rec merge lists =
    let best =
      List.fold_left
        (fun best l ->
          match l, best with
          | [], _ -> best
          | g :: _, None -> Some (group_key g)
          | g :: _, Some bk -> if group_key g < bk then Some (group_key g) else best)
        None lists
    in
    match best with
    | None -> []
    | Some key ->
      let combined = new_group ~k ~doc:(fst key) ~start:(snd key) () in
      let rests =
        List.map
          (fun l ->
            match l with
            | g :: rest when group_key g = key ->
              Array.iteri
                (fun i c -> combined.g_counts.(i) <- combined.g_counts.(i) + c)
                g.g_counts;
              if Array.length g.g_positions > 0 then begin
                ensure_positions ~k combined;
                Array.iteri
                  (fun i ps ->
                    if ps <> [] then
                      combined.g_positions.(i) <- combined.g_positions.(i) @ ps)
                  g.g_positions
              end;
              if combined.g_meta = None then combined.g_meta <- g.g_meta;
              rest
            | l -> l)
          lists
      in
      combined :: merge rests
  in
  merge lists

(* Score the combined groups and emit. Meta (end key, level, tag,
   parent, child count) is resolved per node when the pipeline did not
   carry it. *)
let finalize ?(mode = Counter_scoring.Simple) ~weights ~nav ctx groups ~emit =
  let complex = mode = Counter_scoring.Complex in
  let meta_of g =
    match g.g_meta with
    | Some m -> Some m
    | None ->
      let m = Ctx.node_entry ctx ~nav ~doc:g.g_doc ~start:g.g_start in
      g.g_meta <- m;
      m
  in
  (* Non-zero-scored children: bump the parent of every result node. *)
  let nonzero : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  if complex then
    List.iter
      (fun g ->
        match meta_of g with
        | Some m when m.Store.Parent_index.parent >= 0 ->
          let key = (g.g_doc, m.Store.Parent_index.parent) in
          Hashtbl.replace nonzero key
            (1 + Option.value ~default:0 (Hashtbl.find_opt nonzero key))
        | Some _ | None -> ())
      groups;
  let emitted = ref 0 in
  List.iter
    (fun g ->
      match meta_of g with
      | None -> ()
      | Some m ->
        let score =
          match mode with
          | Counter_scoring.Simple ->
            Counter_scoring.simple ~weights ~counts:g.g_counts
          | Counter_scoring.Complex ->
            let occs =
              (* per-term position lists are descending: reverse-merge
                 into one ascending tagged list *)
              let tagged = ref [] in
              Array.iteri
                (fun term ps ->
                  List.iter
                    (fun pos -> tagged := { Counter_scoring.term; pos } :: !tagged)
                    ps)
                g.g_positions;
              List.sort
                (fun (a : Counter_scoring.occ) b -> compare a.pos b.pos)
                !tagged
            in
            let child_count =
              match Ctx.node_entry ctx ~nav:Ctx.Data_access ~doc:g.g_doc
                      ~start:g.g_start
              with
              | Some e -> e.Store.Parent_index.child_count
              | None -> m.Store.Parent_index.child_count
            in
            Counter_scoring.complex ~weights ~counts:g.g_counts ~occs
              ~nonzero_children:
                (Option.value ~default:0
                   (Hashtbl.find_opt nonzero (g.g_doc, g.g_start)))
              ~child_count
        in
        emit
          {
            Scored_node.doc = g.g_doc;
            start = g.g_start;
            end_ = m.Store.Parent_index.end_;
            level = m.Store.Parent_index.level;
            tag = m.Store.Parent_index.tag;
            score;
          };
        incr emitted)
    groups;
  !emitted

(* ------------------------------------------------------------------ *)
(* Comp1: index scan -> ancestor expansion -> sort -> group -> union  *)

let comp1_term_groups ~k ~complex ctx term_index term =
  (* materialize (doc, ancestor-start, pos) tuples *)
  let tuples = ref [] and n = ref 0 in
  (match Ir.Inverted_index.lookup ctx.Ctx.index term with
  | None -> ()
  | Some postings ->
    Ir.Postings.iter
      (fun (occ : Ir.Postings.occ) ->
        let rec up start =
          if start >= 0 then begin
            match Store.Parent_index.find ctx.Ctx.parents ~doc:occ.doc ~start with
            | None -> ()
            | Some e ->
              tuples := (occ.doc, start, occ.pos) :: !tuples;
              incr n;
              up e.Store.Parent_index.parent
          end
        in
        up occ.node)
      postings);
  let arr = Array.of_list !tuples in
  Array.sort compare arr;
  (* group consecutive equal (doc, start) *)
  let groups = ref [] in
  let flush current = match current with None -> () | Some g -> groups := g :: !groups in
  let current = ref None in
  Array.iter
    (fun (doc, start, pos) ->
      let same =
        match !current with
        | Some g -> g.g_doc = doc && g.g_start = start
        | None -> false
      in
      if not same then begin
        flush !current;
        current := Some (new_group ~k ~doc ~start ())
      end;
      match !current with
      | Some g ->
        g.g_counts.(term_index) <- g.g_counts.(term_index) + 1;
        if complex then begin
          ensure_positions ~k g;
          g.g_positions.(term_index) <- pos :: g.g_positions.(term_index)
        end
      | None -> assert false)
    arr;
  flush !current;
  List.rev !groups

(* Shared span wrapper: input cardinality is the total posting
   occurrences of the terms, computed only when tracing is live. *)
let traced trace name ctx ~terms body =
  if not (Core.Trace.enabled trace) then body ()
  else begin
    let input =
      List.fold_left
        (fun acc t -> acc + Ir.Inverted_index.collection_freq ctx.Ctx.index t)
        0 terms
    in
    Core.Trace.enter ~input trace name;
    Core.Trace.annotate trace "terms" (string_of_int (List.length terms));
    match body () with
    | n ->
      Core.Trace.leave ~output:n trace;
      n
    | exception e ->
      Core.Trace.leave trace;
      raise e
  end

let comp1 ?(trace = Core.Trace.disabled) ?(mode = Counter_scoring.Simple)
    ?weights ctx ~terms ~emit () =
  traced trace "Comp1" ctx ~terms @@ fun () ->
  let k = List.length terms in
  let weights =
    match weights with Some w -> w | None -> Counter_scoring.default_weights k
  in
  let complex = mode = Counter_scoring.Complex in
  let per_term =
    List.mapi (fun i t -> comp1_term_groups ~k ~complex ctx i t) terms
  in
  let combined = merge_union ~k per_term in
  finalize ~mode ~weights ~nav:Ctx.Parent_index ctx combined ~emit

(* ------------------------------------------------------------------ *)
(* Comp2: per-term structural join against a full element-table scan  *)

type sj_entry = {
  s_doc : int;
  s_start : int;
  meta : Store.Parent_index.entry;
  mutable s_count : int;
  mutable s_positions : int list;  (* descending *)
}

let comp2_term_groups ~k ~complex ctx term_index term =
  let groups = ref [] in
  let stack : sj_entry list ref = ref [] in
  let cursor = Ir.Inverted_index.cursor ctx.Ctx.index term in
  let cur = ref (match cursor with Some c -> Ir.Postings.next c | None -> None) in
  let advance () =
    cur := (match cursor with Some c -> Ir.Postings.next c | None -> None)
  in
  let close entry =
    if entry.s_count > 0 then begin
      let g =
        new_group ~k ~doc:entry.s_doc ~start:entry.s_start
          ~meta:entry.meta ()
      in
      g.g_counts.(term_index) <- entry.s_count;
      if complex then begin
        ensure_positions ~k g;
        g.g_positions.(term_index) <- entry.s_positions
      end;
      groups := g :: !groups
    end
  in
  let pop () =
    match !stack with
    | [] -> ()
    | top :: rest ->
      stack := rest;
      (match rest with
      | parent :: _ when parent.s_doc = top.s_doc ->
        parent.s_count <- parent.s_count + top.s_count;
        if complex then
          parent.s_positions <- top.s_positions @ parent.s_positions
      | _ :: _ | [] -> ());
      close top
  in
  let pop_before ~doc ~key =
    let rec go () =
      match !stack with
      | top :: _
        when top.s_doc < doc
             || (top.s_doc = doc && top.meta.Store.Parent_index.end_ < key) ->
        pop ();
        go ()
      | _ :: _ | [] -> ()
    in
    go ()
  in
  (* consume occurrences that happen before the given element event *)
  let rec consume_until ~doc ~key =
    match !cur with
    | Some occ when occ.Ir.Postings.doc < doc
                    || (occ.Ir.Postings.doc = doc && occ.Ir.Postings.pos < key)
      ->
      pop_before ~doc:occ.Ir.Postings.doc ~key:occ.Ir.Postings.pos;
      (match !stack with
      | top :: _ ->
        top.s_count <- top.s_count + 1;
        if complex then top.s_positions <- occ.Ir.Postings.pos :: top.s_positions
      | [] -> ());
      advance ();
      consume_until ~doc ~key
    | Some _ | None -> ()
  in
  Store.Element_store.scan ctx.Ctx.elements (fun r ->
      consume_until ~doc:r.Store.Element_rec.doc ~key:r.Store.Element_rec.start;
      pop_before ~doc:r.Store.Element_rec.doc ~key:r.Store.Element_rec.start;
      stack :=
        {
          s_doc = r.Store.Element_rec.doc;
          s_start = r.Store.Element_rec.start;
          meta =
            {
              Store.Parent_index.parent = r.Store.Element_rec.parent;
              child_count = r.Store.Element_rec.child_count;
              level = r.Store.Element_rec.level;
              end_ = r.Store.Element_rec.end_;
              tag = r.Store.Element_rec.tag;
            };
          s_count = 0;
          s_positions = [];
        }
        :: !stack);
  consume_until ~doc:max_int ~key:max_int;
  while !stack <> [] do
    pop ()
  done;
  (* pops emit in postorder: re-sort by node id (the generic sort
     operator) *)
  List.sort
    (fun a b -> compare (group_key a) (group_key b))
    !groups

let comp2 ?(trace = Core.Trace.disabled) ?(mode = Counter_scoring.Simple)
    ?weights ctx ~terms ~emit () =
  traced trace "Comp2" ctx ~terms @@ fun () ->
  let k = List.length terms in
  let weights =
    match weights with Some w -> w | None -> Counter_scoring.default_weights k
  in
  let complex = mode = Counter_scoring.Complex in
  let per_term =
    List.mapi (fun i t -> comp2_term_groups ~k ~complex ctx i t) terms
  in
  let combined = merge_union ~k per_term in
  finalize ~mode ~weights ~nav:Ctx.Parent_index ctx combined ~emit

let collect_list run =
  let acc = ref [] in
  let _ = run ~emit:(fun n -> acc := n :: !acc) () in
  List.sort Scored_node.compare_pos !acc

let comp1_list ?trace ?mode ?weights ctx ~terms =
  collect_list (fun ~emit () -> comp1 ?trace ?mode ?weights ctx ~terms ~emit ())

let comp2_list ?trace ?mode ?weights ctx ~terms =
  collect_list (fun ~emit () -> comp2 ?trace ?mode ?weights ctx ~terms ~emit ())

(* ------------------------------------------------------------------ *)
(* Comp3: per-term index access -> intersect on owning node ->
   offset filter -> data-page verification                            *)

(* Final verification shared by both Comp3 variants: fetch the text
   from the data pages and confirm the terms really occur there. *)
let comp3_verify_emit ctx ~phrase ~emit ~emitted ~doc ~node ~count =
  let normalize t =
    let t = String.lowercase_ascii t in
    if Ir.Inverted_index.stemmed ctx.Ctx.index then Ir.Stemmer.stem t else t
  in
  let verified =
    match Store.Element_store.get_text ctx.Ctx.elements ~doc ~start:node with
    | None -> false
    | Some text ->
      let toks = List.map normalize (Ir.Tokenizer.terms text) in
      List.for_all (fun t -> List.mem (normalize t) toks) phrase
  in
  if verified then begin
    match Ctx.node_entry ctx ~nav:Ctx.Parent_index ~doc ~start:node with
    | None -> ()
    | Some m ->
      emit
        {
          Scored_node.doc;
          start = node;
          end_ = m.Store.Parent_index.end_;
          level = m.Store.Parent_index.level;
          tag = m.Store.Parent_index.tag;
          score = float_of_int count;
        };
      incr emitted
  end

(* Skip-aware Comp3: the rarest term drives — its occurrences become
   the probe list (already in (doc, pos) order, so no sort and no
   hash materialization) — and every other term is probed through a
   seekable cursor in one monotone pass, seeking block-to-block over
   the longer posting lists instead of decoding them whole. *)
let comp3_seek ctx ~phrase ~emit () =
  let terms = Array.of_list phrase in
  let k = Array.length terms in
  let lengths =
    Array.map
      (fun t ->
        match Ir.Inverted_index.lookup ctx.Ctx.index t with
        | Some p -> Ir.Postings.length p
        | None -> 0)
      terms
  in
  let m = ref 0 in
  Array.iteri (fun i l -> if l < lengths.(!m) then m := i) lengths;
  let m = !m in
  if lengths.(m) = 0 then 0
  else begin
    let probes = Array.make lengths.(m) (0, 0, 0) in
    (match Ir.Inverted_index.lookup ctx.Ctx.index terms.(m) with
    | None -> assert false
    | Some postings ->
      let i = ref 0 in
      Ir.Postings.iter
        (fun (occ : Ir.Postings.occ) ->
          probes.(!i) <- (occ.doc, occ.node, occ.pos);
          incr i)
        postings);
    let alive = Array.make (Array.length probes) true in
    for j = 0 to k - 1 do
      if j <> m then begin
        match Ir.Inverted_index.cursor ctx.Ctx.index terms.(j) with
        | None -> Array.fill alive 0 (Array.length alive) false
        | Some cur ->
          let head = ref (Ir.Postings.next cur) in
          Array.iteri
            (fun pi (doc, node, pos) ->
              if alive.(pi) then begin
                (* the driver occupies offset [m]; term [j] must sit
                   at the matching offset of the same phrase start *)
                let want = pos - m + j in
                (match !head with
                | Some h when h.doc < doc || (h.doc = doc && h.pos < want) ->
                  head := Ir.Postings.seek_pos cur ~doc ~pos:want
                | Some _ | None -> ());
                match !head with
                | Some h when h.doc = doc && h.pos = want && h.node = node -> ()
                | Some _ | None -> alive.(pi) <- false
              end)
            probes
      end
    done;
    let counts : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
    Array.iteri
      (fun pi (doc, node, _) ->
        if alive.(pi) then
          Hashtbl.replace counts (doc, node)
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts (doc, node))))
      probes;
    let emitted = ref 0 in
    Hashtbl.iter
      (fun (doc, node) count ->
        if count > 0 then
          comp3_verify_emit ctx ~phrase ~emit ~emitted ~doc ~node ~count)
      counts;
    !emitted
  end

let comp3_hash ctx ~phrase ~first ~rest ~emit () =
  let k = 1 + List.length rest in
  (* index access: per-term tables (doc, node) -> position set *)
  let table_of term =
      let tbl : (int * int, (int, unit) Hashtbl.t) Hashtbl.t =
        Hashtbl.create 1024
      in
      (match Ir.Inverted_index.lookup ctx.Ctx.index term with
      | None -> ()
      | Some postings ->
        Ir.Postings.iter
          (fun (occ : Ir.Postings.occ) ->
            let key = (occ.doc, occ.node) in
            let set =
              match Hashtbl.find_opt tbl key with
              | Some s -> s
              | None ->
                let s = Hashtbl.create 4 in
                Hashtbl.replace tbl key s;
                s
            in
            Hashtbl.replace set occ.pos ())
          postings);
      tbl
    in
    let tables = Array.of_list (List.map table_of (first :: rest)) in
    (* intersection on the owning node *)
    let candidates =
      Hashtbl.fold
        (fun key _ acc ->
          let everywhere =
            Array.for_all (fun tbl -> Hashtbl.mem tbl key) tables
          in
          if everywhere then key :: acc else acc)
        tables.(0) []
    in
    let emitted = ref 0 in
    List.iter
      (fun ((doc, node) as key) ->
        (* offset filter: count positions p with p+i in term i's set *)
        let count = ref 0 in
        Hashtbl.iter
          (fun p () ->
            let ok = ref true in
            for i = 1 to k - 1 do
              match Hashtbl.find_opt tables.(i) key with
              | Some set -> if not (Hashtbl.mem set (p + i)) then ok := false
              | None -> ok := false
            done;
            if !ok then incr count)
          (Hashtbl.find tables.(0) key);
        if !count > 0 then
          comp3_verify_emit ctx ~phrase ~emit ~emitted ~doc ~node ~count:!count)
      candidates;
    !emitted

let comp3 ?(trace = Core.Trace.disabled) ?(use_skips = true) ctx ~phrase ~emit
    () =
  match phrase with
  | [] -> 0
  | first :: rest ->
    traced trace "Comp3" ctx ~terms:phrase @@ fun () ->
    if use_skips then comp3_seek ctx ~phrase ~emit ()
    else comp3_hash ctx ~phrase ~first ~rest ~emit ()

let comp3_list ?trace ?use_skips ctx ~phrase =
  collect_list (fun ~emit () -> comp3 ?trace ?use_skips ctx ~phrase ~emit ())
