type item = Store.Tag_index.item

let item_key (i : item) = (i.doc, i.start)

let to_sj (i : item) =
  {
    Structural_join.doc = i.doc;
    start = i.start;
    end_ = i.end_;
    level = i.level;
  }

(* Owners of phrase occurrences, as items. *)
let phrase_owner_items ctx phrase =
  List.filter_map
    (fun (n : Scored_node.t) ->
      Some
        {
          Store.Tag_index.doc = n.doc;
          start = n.start;
          end_ = n.end_;
          level = n.level;
        })
    (Phrase_finder.to_list ctx ~phrase)

(* Elements whose direct text equals [s]: look up the first term of
   [s] in the index, then verify each owner against the stored text
   (a data-page access, like any value predicate). *)
let content_eq_items ctx s =
  match Ir.Tokenizer.terms s with
  | [] -> []
  | first :: _ ->
    let seen = Hashtbl.create 64 in
    let hits = ref [] in
    (match Ir.Inverted_index.lookup ctx.Ctx.index first with
    | None -> ()
    | Some postings ->
      Ir.Postings.iter
        (fun (occ : Ir.Postings.occ) ->
          let key = (occ.doc, occ.node) in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.replace seen key ();
            match
              Store.Element_store.get_text ctx.Ctx.elements ~doc:occ.doc
                ~start:occ.node
            with
            | Some text when String.trim text = s -> begin
              match
                Ctx.node_entry ctx ~nav:Ctx.Parent_index ~doc:occ.doc
                  ~start:occ.node
              with
              | Some e ->
                hits :=
                  {
                    Store.Tag_index.doc = occ.doc;
                    start = occ.node;
                    end_ = e.Store.Parent_index.end_;
                    level = e.level;
                  }
                  :: !hits
              | None -> ()
            end
            | Some _ | None -> ()
          end)
        postings);
    List.sort
      (fun (a : item) b -> compare (item_key a) (item_key b))
      !hits

(* document-ordered intersection of two item lists *)
let intersect a b =
  let rec go a b acc =
    match a, b with
    | [], _ | _, [] -> List.rev acc
    | (x : item) :: a', (y : item) :: b' ->
      let c = compare (item_key x) (item_key y) in
      if c = 0 then go a' b' (x :: acc)
      else if c < 0 then go a' b acc
      else go a b' acc
  in
  go a b []

(* ancestors (or ancestor-or-self) of [descendants] among [candidates] *)
let semi_join_ancestors ?(or_self = false) ~axis candidates descendants =
  let anc = Array.of_list (List.map to_sj candidates) in
  let desc = Array.of_list (List.map to_sj descendants) in
  let matched = Hashtbl.create 64 in
  let _ =
    Structural_join.join ~axis ~ancestors:anc ~descendants:desc
      ~emit:(fun a _ -> Hashtbl.replace matched (a.doc, a.start) ())
      ()
  in
  if or_self then
    List.iter
      (fun (d : Structural_join.item) ->
        Hashtbl.replace matched (d.doc, d.start) ())
      (Array.to_list desc);
  List.filter (fun c -> Hashtbl.mem matched (item_key c)) candidates

(* descendants (or self) of [ancestors] among [candidates] *)
let semi_join_descendants ?(or_self = false) ~axis ancestors candidates =
  let anc = Array.of_list (List.map to_sj ancestors) in
  let desc = Array.of_list (List.map to_sj candidates) in
  let matched = Hashtbl.create 64 in
  let _ =
    Structural_join.join ~axis ~ancestors:anc ~descendants:desc
      ~emit:(fun _ d -> Hashtbl.replace matched (d.doc, d.start) ())
      ()
  in
  if or_self then begin
    let anc_keys = Hashtbl.create 64 in
    List.iter
      (fun (a : item) -> Hashtbl.replace anc_keys (item_key a) ())
      ancestors;
    List.iter
      (fun (c : item) ->
        if Hashtbl.mem anc_keys (item_key c) then
          Hashtbl.replace matched (item_key c) ())
      candidates
  end;
  List.filter (fun c -> Hashtbl.mem matched (item_key c)) candidates

let sj_axis = function
  | Core.Pattern.Child -> `Parent_child
  | Core.Pattern.Descendant | Core.Pattern.Self_or_descendant ->
    `Ancestor_descendant

let or_self = function
  | Core.Pattern.Self_or_descendant -> true
  | Core.Pattern.Child | Core.Pattern.Descendant -> false

(* candidates satisfying the local predicate of a pattern variable *)
let rec pred_candidates ctx (pred : Core.Pattern.pred) : item list =
  match pred with
  | Core.Pattern.True -> Array.to_list (Store.Tag_index.all ctx.Ctx.tags)
  | Core.Pattern.Tag tag -> begin
    match Store.Catalog.tag_id ctx.Ctx.catalog tag with
    | Some id -> Array.to_list (Store.Tag_index.nodes ctx.Ctx.tags ~tag:id)
    | None -> []
  end
  | Core.Pattern.Content_eq s -> content_eq_items ctx s
  | Core.Pattern.Content_has phrase ->
    (* nodes whose subtree contains the phrase: owners of phrase
       occurrences, plus all their ancestors — computed as a
       semi-join of all elements against the owners *)
    let owners = phrase_owner_items ctx (Ir.Phrase.parse phrase) in
    let everything = Array.to_list (Store.Tag_index.all ctx.Ctx.tags) in
    semi_join_ancestors ~or_self:true ~axis:`Ancestor_descendant everything
      owners
  | Core.Pattern.And (a, b) ->
    intersect (pred_candidates ctx a) (pred_candidates ctx b)
  | Core.Pattern.Attr _ | Core.Pattern.Or _ | Core.Pattern.Not _ ->
    invalid_arg
      "Pattern_exec: only True/Tag/Content_eq/Content_has/And predicates are \
       index-evaluable"

let candidates = pred_candidates

let matches ctx (pat : Core.Pattern.t) ~var =
  (* bottom-up: restrict each variable's candidates by its children's
     satisfiability *)
  let bottom : (int, item list) Hashtbl.t = Hashtbl.create 8 in
  let rec bottom_up (p : Core.Pattern.pnode) : item list =
    let own = pred_candidates ctx p.pred in
    let own =
      List.fold_left
        (fun acc (c : Core.Pattern.pnode) ->
          let c_items = bottom_up c in
          semi_join_ancestors ~or_self:(or_self c.axis) ~axis:(sj_axis c.axis)
            acc c_items)
        own p.children
    in
    Hashtbl.replace bottom p.var own;
    own
  in
  let root_items = bottom_up pat.root in
  (* top-down: keep placements reachable from satisfied ancestors *)
  let result = ref [] in
  let rec top_down (p : Core.Pattern.pnode) allowed =
    if p.var = var then result := allowed;
    List.iter
      (fun (c : Core.Pattern.pnode) ->
        let c_bottom = Hashtbl.find bottom c.var in
        let c_allowed =
          semi_join_descendants ~or_self:(or_self c.axis)
            ~axis:(sj_axis c.axis) allowed c_bottom
        in
        top_down c c_allowed)
      p.children
  in
  top_down pat.root root_items;
  !result

type access =
  | Term_join of Term_join.variant
  | Gen_meet of { use_skips : bool }
  | Comp1
  | Comp2

(* The operator span name the method records — what EXPLAIN matches
   planner estimates against. *)
let access_operator = function
  | Term_join _ -> "TermJoin"
  | Gen_meet _ -> "GenMeet"
  | Comp1 -> "Comp1"
  | Comp2 -> "Comp2"

let access_to_string = function
  | Term_join Term_join.Plain -> "term-join"
  | Term_join Term_join.Enhanced -> "term-join-enhanced"
  | Gen_meet { use_skips = true } -> "gen-meet"
  | Gen_meet { use_skips = false } -> "gen-meet-noskip"
  | Comp1 -> "comp1"
  | Comp2 -> "comp2"

let scored_matches ?(trace = Core.Trace.disabled) ?mode ?weights
    ?(access = Term_join Term_join.Plain) ctx (pat : Core.Pattern.t)
    ~struct_var ~terms =
  let anchors =
    Core.Trace.span_list trace "PatternMatch" (fun () ->
        matches ctx pat ~var:struct_var)
  in
  let scored =
    match access with
    | Term_join variant -> Term_join.to_list ~trace ~variant ?mode ?weights ctx ~terms
    | Gen_meet { use_skips } ->
      (* scope the meet to the disjoint anchor subtrees: only
         occurrences inside an anchor can survive the semi-join
         below, so nothing outside them needs grouping, and the
         posting cursors skip across the gaps *)
      let within =
        Structural_join.outermost (Array.of_list (List.map to_sj anchors))
      in
      Gen_meet.to_list ~trace ?mode ?weights ~within ~use_skips ctx ~terms
    | Comp1 -> Composite.comp1_list ~trace ?mode ?weights ctx ~terms
    | Comp2 -> Composite.comp2_list ~trace ?mode ?weights ctx ~terms
  in
  (* keep scored nodes that are the anchor or lie inside one *)
  let as_items =
    List.map
      (fun (n : Scored_node.t) ->
        {
          Store.Tag_index.doc = n.doc;
          start = n.start;
          end_ = n.end_;
          level = n.level;
        })
      scored
  in
  let kept =
    semi_join_descendants ~or_self:true ~axis:`Ancestor_descendant anchors
      as_items
  in
  let kept_keys = Hashtbl.create 64 in
  List.iter (fun (i : item) -> Hashtbl.replace kept_keys (item_key i) ()) kept;
  List.filter
    (fun (n : Scored_node.t) -> Hashtbl.mem kept_keys (n.doc, n.start))
    scored
