type acc = {
  end_ : int;
  level : int;
  tag : int;
  parent : int;
  child_count : int;
  counts : int array;
  mutable occs : Counter_scoring.occ list;  (* reverse position order *)
  mutable nonzero_children : int;
}

let run_meet ?(mode = Counter_scoring.Simple) ?weights ?within
    ?(use_skips = true) ?doc_range ctx ~terms ~emit () =
  let k = List.length terms in
  let weights =
    match weights with Some w -> w | None -> Counter_scoring.default_weights k
  in
  let complex = mode = Counter_scoring.Complex in
  (* Meet is not integrated with the engine's parent index: when the
     complex scorer needs child counts, the walk resolves node facts
     from the data pages, like the composite baselines do. *)
  let nav = if complex then Ctx.Data_access else Ctx.Parent_index in
  let table : (int * int, acc) Hashtbl.t = Hashtbl.create 1024 in
  let group ~doc ~start term pos =
    (* one upward walk, counting the term at every ancestor *)
    let rec up start =
      if start < 0 then ()
      else begin
        match Hashtbl.find_opt table (doc, start) with
        | Some acc ->
          acc.counts.(term) <- acc.counts.(term) + 1;
          if complex then acc.occs <- { Counter_scoring.term; pos } :: acc.occs;
          up acc.parent
        | None -> begin
          match Ctx.node_entry ctx ~nav ~doc ~start with
          | None -> ()
          | Some e ->
            let acc =
              {
                end_ = e.end_;
                level = e.level;
                tag = e.tag;
                parent = e.parent;
                child_count = e.child_count;
                counts = Array.make k 0;
                occs = [];
                nonzero_children = 0;
              }
            in
            acc.counts.(term) <- acc.counts.(term) + 1;
            if complex then acc.occs <- [ { Counter_scoring.term; pos } ];
            Hashtbl.replace table (doc, start) acc;
            up e.parent
        end
      end
    in
    up start
  in
  List.iteri
    (fun term t ->
      match Ir.Inverted_index.lookup ctx.Ctx.index t with
      | None -> ()
      | Some postings -> begin
        match within with
        | None -> begin
          match doc_range with
          | None ->
            Ir.Postings.iter
              (fun (occ : Ir.Postings.occ) ->
                group ~doc:occ.doc ~start:occ.node term occ.pos)
              postings
          | Some (lo, hi) ->
            (* grouping is per (doc, node): occurrences of one
               document land in one range, so partitioned runs emit
               exactly the full run's nodes with identical counts *)
            let cur = Ir.Postings.cursor postings in
            let rec walk o =
              match o with
              | Some (occ : Ir.Postings.occ) when occ.doc < hi ->
                group ~doc:occ.doc ~start:occ.node term occ.pos;
                walk (Ir.Postings.next cur)
              | Some _ | None -> ()
            in
            walk
              (if lo = 0 then Ir.Postings.next cur
               else Ir.Postings.seek_doc cur lo)
        end
        | Some regions ->
          (* scoped meet: only occurrences inside the candidate
             subtrees are grouped; the cursor seeks across the gaps *)
          ignore
            (Structural_join.occurrences_within ~use_skips
               (Ir.Postings.cursor postings)
               ~within:regions
               ~emit:(fun _ (occ : Ir.Postings.occ) ->
                 group ~doc:occ.doc ~start:occ.node term occ.pos)
               ())
      end)
    terms;
  (* Non-zero-scored children: a grouped node contributes one to its
     grouped parent. *)
  if complex then
    Hashtbl.iter
      (fun (doc, _) acc ->
        if acc.parent >= 0 then begin
          match Hashtbl.find_opt table (doc, acc.parent) with
          | Some parent -> parent.nonzero_children <- parent.nonzero_children + 1
          | None -> ()
        end)
      table;
  let emitted = ref 0 in
  Hashtbl.iter
    (fun (doc, start) acc ->
      let score =
        match mode with
        | Counter_scoring.Simple ->
          Counter_scoring.simple ~weights ~counts:acc.counts
        | Counter_scoring.Complex ->
          let occs =
            List.sort
              (fun (a : Counter_scoring.occ) b -> compare a.pos b.pos)
              acc.occs
          in
          Counter_scoring.complex ~weights ~counts:acc.counts ~occs
            ~nonzero_children:acc.nonzero_children
            ~child_count:acc.child_count
      in
      emit
        {
          Scored_node.doc;
          start;
          end_ = acc.end_;
          level = acc.level;
          tag = acc.tag;
          score;
        };
      incr emitted)
    table;
  !emitted

let run ?(trace = Core.Trace.disabled) ?mode ?weights ?within ?use_skips
    ?doc_range ctx ~terms ~emit () =
  if not (Core.Trace.enabled trace) then
    run_meet ?mode ?weights ?within ?use_skips ?doc_range ctx ~terms ~emit ()
  else begin
    let input =
      List.fold_left
        (fun acc t -> acc + Ir.Inverted_index.collection_freq ctx.Ctx.index t)
        0 terms
    in
    Core.Trace.enter ~input trace "GenMeet";
    Core.Trace.annotate trace "terms" (string_of_int (List.length terms));
    (match within with
    | Some regions ->
      Core.Trace.annotate trace "within" (string_of_int (Array.length regions))
    | None -> ());
    match
      run_meet ?mode ?weights ?within ?use_skips ?doc_range ctx ~terms ~emit ()
    with
    | n ->
      Core.Trace.leave ~output:n trace;
      n
    | exception e ->
      Core.Trace.leave trace;
      raise e
  end

let to_list ?trace ?mode ?weights ?within ?use_skips ?doc_range ctx ~terms =
  let acc = ref [] in
  let _ =
    run ?trace ?mode ?weights ?within ?use_skips ?doc_range ctx ~terms
      ~emit:(fun n -> acc := n :: !acc)
      ()
  in
  List.sort Scored_node.compare_pos !acc
