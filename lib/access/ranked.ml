type emitter = emit:(Scored_node.t -> unit) -> unit -> int

let top_k k run =
  let acc = Top_k.create k in
  let _ = run ~emit:(fun n -> Top_k.add acc ~score:n.Scored_node.score n) () in
  List.map snd (Top_k.to_sorted_list acc)

(* ------------------------------------------------------------------ *)
(* Top-K document retrieval with max-score pruning.

   Document-at-a-time evaluation of score(d) = Σ_i w_i · tf_i(d) over
   the query terms. With skips enabled this is the MaxScore algorithm
   over the block posting lists: terms whose summed score bounds
   cannot lift a document past the current K-th score become
   "non-essential" and are only probed (by seeking, skipping whole
   blocks) for documents that essential terms propose; candidate
   documents whose block-level upper bound (per-block max_tf) cannot
   beat the cutoff are skipped with seek_doc without decoding their
   postings. With skips disabled the same loop degrades to exhaustive
   DAAT scoring; both paths return identical results. *)

type tstate = {
  t_idx : int;  (* original term position, for deterministic summing *)
  t_w : float;
  t_bound : float;  (* w · max_tf: the term's score ceiling *)
  t_cur : Ir.Postings.cursor;
  mutable t_head : Ir.Postings.occ option;
}

let top_k_docs_inner ?(use_skips = true) ?weights ?doc_range ?shared_threshold
    ctx ~terms ~k =
  let terms = Array.of_list terms in
  let nt = Array.length terms in
  let weights = match weights with Some w -> w | None -> Array.make nt 1.0 in
  if Array.length weights <> nt then
    invalid_arg "Ranked.top_k_docs: one weight per term";
  if k <= 0 then []
  else begin
    let lo, hi = match doc_range with Some r -> r | None -> (0, max_int) in
    let clip o =
      match o with
      | Some (h : Ir.Postings.occ) when h.doc >= hi -> None
      | Some _ | None -> o
    in
    let states =
      Array.to_list terms
      |> List.mapi (fun i t -> (i, t))
      |> List.filter_map (fun (i, t) ->
             match Ir.Inverted_index.lookup ctx.Ctx.index t with
             | None -> None
             | Some p when Ir.Postings.length p = 0 -> None
             | Some p ->
               let cur = Ir.Postings.cursor p in
               Some
                 {
                   t_idx = i;
                   t_w = weights.(i);
                   t_bound = weights.(i) *. float_of_int (Ir.Postings.max_tf p);
                   t_cur = cur;
                   t_head =
                     clip
                       (if lo = 0 then Ir.Postings.next cur
                        else Ir.Postings.seek_doc cur lo);
                 })
    in
    let st =
      Array.of_list (List.sort (fun a b -> compare a.t_bound b.t_bound) states)
    in
    let n = Array.length st in
    if n = 0 then []
    else begin
      let prefix = Array.make n 0. in
      Array.iteri
        (fun i s ->
          prefix.(i) <- (if i = 0 then 0. else prefix.(i - 1)) +. s.t_bound)
        st;
      (* lower doc ids win score ties, so the K-th rank is cut by the
         same (score desc, doc asc) total order the final sort and the
         parallel merge use — without this the heap would keep an
         arbitrary tied doc and partitioned execution could disagree
         with sequential *)
      let heap = Top_k.create ~tie:(fun a b -> compare b a) k in
      let theta () =
        match Top_k.cutoff heap with Some c -> c | None -> neg_infinity
      in
      (* Cross-partition pruning: θ_shared is the monotone max of
         every partition's published k-th-best score, so it is always
         ≤ the final global cutoff. A bound may be pruned against it
         only with a STRICT compare — a score exactly equal to the
         final cutoff can still win the global doc-id tie-break, so
         only [bound < θ_shared] guarantees the document cannot
         appear in (or reorder) the merged top-k. *)
      let shared_theta () =
        match shared_threshold with
        | Some a -> Atomic.get a
        | None -> neg_infinity
      in
      (* [true] when a document whose score ceiling is [bound] can be
         skipped without affecting the merged result. *)
      let cannot_enter bound =
        (not (Top_k.would_enter heap bound)) || bound < shared_theta ()
      in
      let publish () =
        match (shared_threshold, Top_k.cutoff heap) with
        | Some a, Some c -> Core.Merge.Theta.publish a c
        | (Some _ | None), _ -> ()
      in
      (* number of non-essential terms: the longest low-bound prefix
         whose bounds sum to at most the local cutoff (or strictly
         below the shared one) *)
      let ness () =
        if not use_skips then 0
        else begin
          let th = theta () in
          let sh = shared_theta () in
          let rec go m =
            if m < n && (prefix.(m) <= th || prefix.(m) < sh) then go (m + 1)
            else m
          in
          go 0
        end
      in
      let tf = Array.make n 0 in
      let count_run i d =
        (* exact tf of doc [d] on state [i]; head is at [d] *)
        let c = ref 0 in
        let rec go () =
          match st.(i).t_head with
          | Some h when h.doc = d ->
            incr c;
            st.(i).t_head <- clip (Ir.Postings.next st.(i).t_cur);
            go ()
          | Some _ | None -> ()
        in
        go ();
        tf.(i) <- !c
      in
      let rec loop () =
        let m = ness () in
        if m < n then begin
          let d =
            let best = ref max_int in
            for i = m to n - 1 do
              match st.(i).t_head with
              | Some h when h.doc < !best -> best := h.doc
              | Some _ | None -> ()
            done;
            !best
          in
          if d < max_int then begin
            Array.fill tf 0 n 0;
            (* block-refined upper bound over the essential terms
               parked on [d] plus the non-essential score ceiling *)
            let shallow = ref (if m > 0 then prefix.(m - 1) else 0.) in
            for i = m to n - 1 do
              match st.(i).t_head with
              | Some h when h.doc = d ->
                shallow :=
                  !shallow
                  +. (st.(i).t_w
                     *. float_of_int (Ir.Postings.block_max_tf st.(i).t_cur))
              | Some _ | None -> ()
            done;
            if use_skips && cannot_enter !shallow then begin
              (* the whole document cannot reach the heap: skip its
                 postings block-wise on every parked cursor *)
              for i = m to n - 1 do
                match st.(i).t_head with
                | Some h when h.doc = d ->
                  st.(i).t_head <-
                    clip (Ir.Postings.seek_doc st.(i).t_cur (d + 1))
                | Some _ | None -> ()
              done
            end
            else begin
              (* exact essential contributions *)
              let s = ref 0. in
              for i = m to n - 1 do
                match st.(i).t_head with
                | Some h when h.doc = d ->
                  count_run i d;
                  s := !s +. (st.(i).t_w *. float_of_int tf.(i))
                | Some _ | None -> ()
              done;
              (* probe non-essential terms, highest bound first,
                 stopping as soon as the residual ceiling fails *)
              let abandoned = ref false in
              let i = ref (m - 1) in
              while (not !abandoned) && !i >= 0 do
                if cannot_enter (!s +. prefix.(!i)) then abandoned := true
                else begin
                  let sti = st.(!i) in
                  (match sti.t_head with
                  | Some h when h.doc < d ->
                    sti.t_head <- clip (Ir.Postings.seek_doc sti.t_cur d)
                  | Some _ | None -> ());
                  (match sti.t_head with
                  | Some h when h.doc = d ->
                    let below = if !i > 0 then prefix.(!i - 1) else 0. in
                    let refined =
                      !s
                      +. (sti.t_w
                         *. float_of_int (Ir.Postings.block_max_tf sti.t_cur))
                      +. below
                    in
                    if cannot_enter refined then abandoned := true
                    else begin
                      count_run !i d;
                      s := !s +. (sti.t_w *. float_of_int tf.(!i))
                    end
                  | Some _ | None -> ());
                  decr i
                end
              done;
              if not !abandoned then begin
                (* deterministic summation in original term order, so
                   the pruned and exhaustive paths emit bit-identical
                   scores *)
                let contribs = Array.make nt 0. in
                Array.iteri
                  (fun si c ->
                    if c > 0 then
                      contribs.(st.(si).t_idx) <- st.(si).t_w *. float_of_int c)
                  tf;
                let total = Array.fold_left ( +. ) 0. contribs in
                if total > 0. then begin
                  Top_k.add heap ~score:total d;
                  publish ()
                end
              end
            end;
            loop ()
          end
        end
      in
      loop ();
      List.sort Core.Merge.compare_doc_score
        (List.map (fun (s, d) -> (d, s)) (Top_k.to_sorted_list heap))
    end
  end

let top_k_docs ?(trace = Core.Trace.disabled) ?use_skips ?weights ?doc_range
    ?shared_threshold ctx ~terms ~k =
  if not (Core.Trace.enabled trace) then
    top_k_docs_inner ?use_skips ?weights ?doc_range ?shared_threshold ctx
      ~terms ~k
  else begin
    let input =
      List.fold_left
        (fun acc t -> acc + Ir.Inverted_index.collection_freq ctx.Ctx.index t)
        0 terms
    in
    Core.Trace.enter ~input trace "RankedTopK";
    Core.Trace.annotate trace "k" (string_of_int k);
    match
      top_k_docs_inner ?use_skips ?weights ?doc_range ?shared_threshold ctx
        ~terms ~k
    with
    | l ->
      Core.Trace.leave ~output:(List.length l) trace;
      l
    | exception e ->
      Core.Trace.leave trace;
      raise e
  end

let above v run =
  let acc = ref [] in
  let _ =
    run ~emit:(fun n -> if n.Scored_node.score > v then acc := n :: !acc) ()
  in
  List.sort Scored_node.compare_pos !acc

let histogram ?buckets run =
  let scores = ref [] in
  let _ = run ~emit:(fun n -> scores := n.Scored_node.score :: !scores) () in
  Store.Histogram.of_values ?buckets !scores

let top_fraction ~q run =
  let h = histogram run in
  let cut = Store.Histogram.quantile h q in
  above cut run
