type item = { doc : int; start : int; end_ : int; level : int }

let item_of_scored (n : Scored_node.t) =
  { doc = n.doc; start = n.start; end_ = n.end_; level = n.level }

let join ?(trace = Core.Trace.disabled) ?(axis = `Ancestor_descendant)
    ~ancestors ~descendants ~emit () =
  Core.Trace.span_count
    ~input:(Array.length ancestors + Array.length descendants)
    trace "StructuralJoin"
  @@ fun () ->
  let emitted = ref 0 in
  let stack = ref [] in
  let na = Array.length ancestors and nd = Array.length descendants in
  let ai = ref 0 and di = ref 0 in
  let key i = (i.doc, i.start) in
  let pop_before (doc, k) =
    let rec go () =
      match !stack with
      | top :: rest when top.doc < doc || (top.doc = doc && top.end_ < k) ->
        stack := rest;
        go ()
      | _ :: _ | [] -> ()
    in
    go ()
  in
  while !ai < na || !di < nd do
    let take_ancestor =
      !ai < na
      && (!di >= nd || key ancestors.(!ai) <= key descendants.(!di))
    in
    if take_ancestor then begin
      let a = ancestors.(!ai) in
      incr ai;
      pop_before (a.doc, a.start);
      stack := a :: !stack
    end
    else begin
      let d = descendants.(!di) in
      incr di;
      pop_before (d.doc, d.start);
      List.iter
        (fun a ->
          let ok =
            a.doc = d.doc && a.start < d.start && d.end_ <= a.end_
            && (axis = `Ancestor_descendant || a.level = d.level - 1)
          in
          if ok then begin
            emit a d;
            incr emitted
          end)
        !stack
    end
  done;
  !emitted

(* Keep only items not nested inside a previously kept item; inputs
   sorted by (doc, start), laminar. *)
let outermost items =
  let acc = ref [] in
  Array.iter
    (fun (i : item) ->
      match !acc with
      | (top : item) :: _ when top.doc = i.doc && i.start < top.end_ -> ()
      | _ -> acc := i :: !acc)
    items;
  Array.of_list (List.rev !acc)

(* Posting-side structural join: drive a term cursor through a set of
   disjoint subtrees. Element interval keys and word positions share
   one key space, so the occurrences owned by the subtree rooted at
   [r] are exactly those with [r.start < pos < r.end_] in [r.doc] —
   and with skips enabled, the gap between one subtree's end and the
   next subtree's start is crossed by a seek over the skip table
   instead of decoding every posting in between. *)
let occurrences_within ?(trace = Core.Trace.disabled) ?(use_skips = true)
    cursor ~within ~emit () =
  Core.Trace.span_count ~input:(Array.length within) trace "OccurrencesWithin"
  @@ fun () ->
  let emitted = ref 0 in
  let head = ref (Ir.Postings.next cursor) in
  Array.iter
    (fun (r : item) ->
      let before (h : Ir.Postings.occ) =
        h.doc < r.doc || (h.doc = r.doc && h.pos < r.start)
      in
      (match !head with
      | Some h when before h ->
        if use_skips then
          head := Ir.Postings.seek_pos cursor ~doc:r.doc ~pos:r.start
        else begin
          let rec advance () =
            match !head with
            | Some h when before h ->
              head := Ir.Postings.next cursor;
              advance ()
            | Some _ | None -> ()
          in
          advance ()
        end
      | Some _ | None -> ());
      let rec collect () =
        match !head with
        | Some (h : Ir.Postings.occ) when h.doc = r.doc && h.pos < r.end_ ->
          emit r h;
          incr emitted;
          head := Ir.Postings.next cursor;
          collect ()
        | Some _ | None -> ()
      in
      collect ())
    within;
  !emitted

let pairs ?axis ~ancestors ~descendants () =
  let acc = ref [] in
  let _ =
    join ?axis ~ancestors ~descendants ~emit:(fun a d -> acc := (a, d) :: !acc) ()
  in
  List.rev !acc
