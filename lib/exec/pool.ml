(* A small process-wide pool of helper domains for intra-query
   parallelism.

   A job is an array of independent chunk tasks drained through one
   atomic index — work sharing rather than per-domain queues, which
   for a handful of chunks steals just as well with none of the deque
   machinery. The submitting domain always participates in draining
   its own job, so a job completes even with zero helpers (single-core
   hosts, an exhausted pool) and a submitter never blocks waiting for
   a domain that is itself waiting. Helpers are spawned lazily on
   first use, live for the whole process, and are joined from an
   [at_exit] hook so process shutdown stays clean. *)

type job = {
  run : int -> unit;
  n : int;
  next : int Atomic.t;  (* next unclaimed chunk *)
  mu : Mutex.t;
  cond : Condition.t;  (* signalled when [done_] reaches [n] *)
  mutable done_ : int;  (* completed chunks; guarded by [mu] *)
  mutable exn : exn option;
      (* last-resort capture: tasks are expected to trap their own
         exceptions, but an escaping one must not kill a helper domain
         or deadlock the submitter *)
}

let queue : job Queue.t = Queue.create ()
let qmu = Mutex.create ()
let qcond = Condition.create ()
let stopping = ref false
let helpers : unit Domain.t list ref = ref []
let helper_count = ref 0

let max_helpers = 7
(* submitter + helpers = 8 domains per job at most: beyond that the
   runtime's stop-the-world costs outweigh chunk-level speedup *)

let drain job =
  let rec go () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.n then begin
      (try job.run i
       with e ->
         Mutex.lock job.mu;
         job.exn <- Some e;
         Mutex.unlock job.mu);
      Mutex.lock job.mu;
      job.done_ <- job.done_ + 1;
      if job.done_ = job.n then Condition.broadcast job.cond;
      Mutex.unlock job.mu;
      go ()
    end
  in
  go ()

let helper_loop () =
  let rec next_job () =
    Mutex.lock qmu;
    let rec wait () =
      if !stopping then None
      else begin
        match Queue.take_opt queue with
        | Some j -> Some j
        | None ->
          Condition.wait qcond qmu;
          wait ()
      end
    in
    let j = wait () in
    Mutex.unlock qmu;
    match j with
    | Some j ->
      drain j;
      next_job ()
    | None -> ()
  in
  next_job ()

let shutdown () =
  Mutex.lock qmu;
  stopping := true;
  Condition.broadcast qcond;
  Mutex.unlock qmu;
  List.iter Domain.join !helpers;
  helpers := [];
  helper_count := 0

let ensure_helpers wanted =
  Mutex.lock qmu;
  let first_spawn = !helper_count = 0 && wanted > 0 && not !stopping in
  (if not !stopping then
     while !helper_count < min wanted max_helpers do
       incr helper_count;
       helpers := Domain.spawn helper_loop :: !helpers
     done);
  Mutex.unlock qmu;
  if first_spawn then at_exit shutdown

let helpers_running () =
  Mutex.lock qmu;
  let n = !helper_count in
  Mutex.unlock qmu;
  n

let run ~domains ~n f =
  if n > 0 then begin
    if domains <= 1 || n = 1 then
      for i = 0 to n - 1 do
        f i
      done
    else begin
      let job =
        {
          run = f;
          n;
          next = Atomic.make 0;
          mu = Mutex.create ();
          cond = Condition.create ();
          done_ = 0;
          exn = None;
        }
      in
      let want = min (domains - 1) (min (n - 1) max_helpers) in
      ensure_helpers want;
      Mutex.lock qmu;
      (* one queue entry per helper we want on this job; a helper that
         arrives after the chunks are claimed drains nothing and goes
         back to sleep *)
      for _ = 1 to want do
        Queue.push job queue
      done;
      Condition.broadcast qcond;
      Mutex.unlock qmu;
      drain job;
      Mutex.lock job.mu;
      while job.done_ < job.n do
        Condition.wait job.cond job.mu
      done;
      let escaped = job.exn in
      Mutex.unlock job.mu;
      match escaped with Some e -> raise e | None -> ()
    end
  end
