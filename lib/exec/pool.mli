(** Process-wide helper-domain pool for intra-query parallelism.

    {!run} drains [n] independent chunk tasks across up to [domains]
    domains: the calling domain plus lazily-spawned, long-lived
    helpers that assist through a shared atomic work index. The caller
    always participates, so completion never depends on a helper being
    available — with [domains = 1] (or on a machine with no spare
    cores) the tasks simply run inline, sequentially.

    Tasks of one job must be independent and domain-safe; they may run
    in any order, concurrently. Tasks should trap their own
    exceptions — one that escapes anyway is re-raised from {!run}
    after every task of the job has finished. *)

val run : domains:int -> n:int -> (int -> unit) -> unit
(** [run ~domains ~n f] executes [f 0 .. f (n-1)], using at most
    [domains] domains (capped internally), and returns when all [n]
    calls have completed. *)

val helpers_running : unit -> int
(** Helper domains currently alive (for tests and stats). *)
