(* Intra-query parallel execution.

   One query is split into document-range chunks ({!Partition.plan}),
   each chunk runs a range-restricted instance of the access method on
   its own domain against the shared immutable snapshot, and the
   per-chunk results are merged deterministically:

   - boolean/structural results (TermJoin, GenMeet, PhraseFinder) come
     back per chunk in document order over disjoint ascending ranges,
     so the merge is concatenation in chunk order — byte-identical to
     the sequential document-order output;
   - ranked top-k chunks each return their local top-k under the total
     order (score desc, doc asc); the merge re-sorts the union under
     the same order and keeps k. Cross-chunk max-score pruning shares
     the best k-th score seen by any chunk through an atomic
     ([Ranked.top_k_docs ~shared_threshold]), which only ever prunes
     documents strictly below the final cutoff — the merged result is
     exactly the sequential one, ties included.

   Resource limits come in as an optional {!Core.Governor.shared}
   budget: every chunk attaches a private governor, ticks it for the
   work it does, and the first chunk to breach trips the budget once
   for the whole query. Tracing fans out the same way — each chunk
   records into a private tracer whose finished tree is grafted, in
   chunk order, under one "Parallel" span of the caller's tracer. *)

let chunks_per_domain = 4
(* more chunks than domains so the shared work index load-balances
   skewed ranges; each extra chunk costs one cursor re-seek *)

let resolve_ranges ?ranges ~parallelism ctx ~terms =
  match ranges with
  | Some (_ :: _ as r) -> r
  | Some [] | None ->
    Partition.plan ctx ~terms ~chunks:(parallelism * chunks_per_domain)

(* Fan [body] out over [ranges], then [merge] the per-chunk values in
   chunk order. [merge] also returns the output cardinality for the
   "Parallel" trace span. *)
let fan_out ~trace ~shared ~parallelism ~method_ ~ranges ~body ~merge =
  let rs = Array.of_list ranges in
  let n = Array.length rs in
  let slots = Array.make n None in
  let span_trees = Array.make n None in
  let traced = Core.Trace.enabled trace in
  if traced then begin
    Core.Trace.enter trace "Parallel";
    Core.Trace.annotate trace "method" method_;
    Core.Trace.annotate trace "partitions" (string_of_int n);
    Core.Trace.annotate trace "domains" (string_of_int parallelism)
  end;
  let task i =
    let lo, hi = rs.(i) in
    let gov = Option.map Core.Governor.attach shared in
    let tr = if traced then Core.Trace.make () else Core.Trace.disabled in
    let res =
      match
        Core.Trace.enter tr "Partition";
        Core.Trace.annotate tr "lo" (string_of_int lo);
        Core.Trace.annotate tr "hi"
          (if hi = max_int then "end" else string_of_int hi);
        let v = body ~gov ~trace:tr (lo, hi) in
        (match gov with Some g -> Core.Governor.settle g | None -> ());
        Core.Trace.leave tr;
        v
      with
      | v -> Ok v
      | exception e ->
        Core.Trace.unwind tr;
        Error e
    in
    slots.(i) <- Some res;
    if traced then span_trees.(i) <- Core.Trace.root tr
  in
  Pool.run ~domains:parallelism ~n task;
  let fail e =
    if traced then Core.Trace.leave trace;
    raise e
  in
  (* a tripped shared budget outranks chunk-local failures: every
     breaching chunk carries the same violation, report it once *)
  (match Option.map Core.Governor.shared_violation shared with
  | Some (Some v) -> fail (Core.Governor.Resource_exhausted v)
  | Some None | None -> ());
  Array.iter
    (function Some (Error e) -> fail e | Some (Ok _) | None -> ())
    slots;
  let vals =
    Array.map
      (function Some (Ok v) -> v | Some (Error _) | None -> assert false)
      slots
  in
  let result, count = merge vals in
  if traced then begin
    Array.iter (Option.iter (Core.Trace.attach trace)) span_trees;
    Core.Trace.leave ~output:count trace
  end;
  result

let ticker gov =
  match gov with
  | Some g -> fun () -> Core.Governor.tick g
  | None -> fun () -> ()

(* Per-chunk results are document-sorted over disjoint ascending
   ranges: concatenation in chunk order IS the global document order.
   Both merge rules live in Core.Merge, shared with the distributed
   coordinator so local and remote partitioning cannot diverge. *)
let concat_in_order = Core.Merge.concat_in_order

let term_join ?(trace = Core.Trace.disabled) ?shared ?ranges ?variant ?mode
    ?weights ~parallelism ctx ~terms =
  let ranges = resolve_ranges ?ranges ~parallelism ctx ~terms in
  fan_out ~trace ~shared ~parallelism ~method_:"TermJoin" ~ranges
    ~body:(fun ~gov ~trace (lo, hi) ->
      let acc = ref [] in
      let tick = ticker gov in
      let _ =
        Access.Term_join.run ~trace ?variant ?mode ?weights ~doc_range:(lo, hi)
          ctx ~terms
          ~emit:(fun nd ->
            tick ();
            acc := nd :: !acc)
          ()
      in
      List.sort Access.Scored_node.compare_pos !acc)
    ~merge:concat_in_order

let gen_meet ?(trace = Core.Trace.disabled) ?shared ?ranges ?mode ?weights
    ~parallelism ctx ~terms =
  let ranges = resolve_ranges ?ranges ~parallelism ctx ~terms in
  fan_out ~trace ~shared ~parallelism ~method_:"GenMeet" ~ranges
    ~body:(fun ~gov ~trace (lo, hi) ->
      let acc = ref [] in
      let tick = ticker gov in
      let _ =
        Access.Gen_meet.run ~trace ?mode ?weights ~doc_range:(lo, hi) ctx
          ~terms
          ~emit:(fun nd ->
            tick ();
            acc := nd :: !acc)
          ()
      in
      List.sort Access.Scored_node.compare_pos !acc)
    ~merge:concat_in_order

let phrase ?(trace = Core.Trace.disabled) ?shared ?ranges ~parallelism ctx
    ~phrase =
  let ranges = resolve_ranges ?ranges ~parallelism ctx ~terms:phrase in
  fan_out ~trace ~shared ~parallelism ~method_:"PhraseFinder" ~ranges
    ~body:(fun ~gov ~trace (lo, hi) ->
      let acc = ref [] in
      let tick = ticker gov in
      let _ =
        Access.Phrase_finder.run ~trace ~doc_range:(lo, hi) ctx ~phrase
          ~emit:(fun nd ->
            tick ();
            acc := nd :: !acc)
          ()
      in
      List.sort Access.Scored_node.compare_pos !acc)
    ~merge:concat_in_order

let top_k_docs ?(trace = Core.Trace.disabled) ?shared ?ranges ?weights ?theta
    ~parallelism ctx ~terms ~k =
  let ranges = resolve_ranges ?ranges ~parallelism ctx ~terms in
  (* [?theta] seeds the shared threshold with a cutoff already proven
     elsewhere (a distributed coordinator relaying other shards'
     published k-th-best): pruning against it stays exact because the
     seed is itself a monotone θ value, always ≤ the global cutoff *)
  let shared_threshold = Core.Merge.Theta.make ?seed:theta () in
  fan_out ~trace ~shared ~parallelism ~method_:"RankedTopK" ~ranges
    ~body:(fun ~gov ~trace (lo, hi) ->
      let docs =
        Access.Ranked.top_k_docs ~trace ?weights ~doc_range:(lo, hi)
          ~shared_threshold ctx ~terms ~k
      in
      (match gov with
      | Some g -> Core.Governor.tick_n g (List.length docs)
      | None -> ());
      docs)
    ~merge:(Core.Merge.merge_ranked ~k)
