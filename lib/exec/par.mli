(** Intra-query parallel execution of the access methods.

    Each function partitions the doc-id space ({!Partition.plan}, or
    the caller's explicit [ranges]), fans the chunks out across up to
    [parallelism] domains ({!Pool}), runs a range-restricted instance
    of the corresponding sequential access method per chunk, and
    merges deterministically: results are identical — cardinality,
    order, scores, tie-breaks — to the sequential method's, for any
    [parallelism] and any covering disjoint ascending [ranges].

    [shared] threads one {!Core.Governor.shared} budget through every
    chunk: steps accumulate across domains and the first breach trips
    the whole query exactly once. [trace] records one ["Partition"]
    span subtree per chunk (in chunk order) under a single
    ["Parallel"] span, so EXPLAIN/ANALYZE shows the fan-out.

    [ranges] is for tests and tooling; production callers let the
    planner choose skip-block-aligned chunks. *)

val term_join :
  ?trace:Core.Trace.t ->
  ?shared:Core.Governor.shared ->
  ?ranges:(int * int) list ->
  ?variant:Access.Term_join.variant ->
  ?mode:Access.Counter_scoring.mode ->
  ?weights:float array ->
  parallelism:int ->
  Access.Ctx.t ->
  terms:string list ->
  Access.Scored_node.t list
(** Parallel {!Access.Term_join.to_list}; document order. *)

val gen_meet :
  ?trace:Core.Trace.t ->
  ?shared:Core.Governor.shared ->
  ?ranges:(int * int) list ->
  ?mode:Access.Counter_scoring.mode ->
  ?weights:float array ->
  parallelism:int ->
  Access.Ctx.t ->
  terms:string list ->
  Access.Scored_node.t list
(** Parallel unscoped {!Access.Gen_meet.to_list}; document order. *)

val phrase :
  ?trace:Core.Trace.t ->
  ?shared:Core.Governor.shared ->
  ?ranges:(int * int) list ->
  parallelism:int ->
  Access.Ctx.t ->
  phrase:string list ->
  Access.Scored_node.t list
(** Parallel {!Access.Phrase_finder.to_list}; document order. *)

val top_k_docs :
  ?trace:Core.Trace.t ->
  ?shared:Core.Governor.shared ->
  ?ranges:(int * int) list ->
  ?weights:float array ->
  ?theta:float ->
  parallelism:int ->
  Access.Ctx.t ->
  terms:string list ->
  k:int ->
  (int * float) list
(** Parallel {!Access.Ranked.top_k_docs} with cross-chunk shared
    max-score pruning; best score first, doc id breaking ties.
    [theta] seeds the shared threshold with a cutoff already proven by
    another backend (e.g. a remote shard's published k-th best); the
    result stays exact as long as the seed is a true monotone θ value
    (≤ the global cutoff). *)
