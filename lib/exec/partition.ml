(* Document-range partition planning.

   A parallel query splits the doc-id space into half-open intervals
   and runs one access-method instance per interval. Any covering,
   disjoint set of intervals is correct (no element, phrase match or
   document score spans documents); this planner additionally aligns
   every cut with a skip-block boundary of the query's posting lists,
   so each chunk's [seek_doc] lands exactly on a block start and no
   block is decoded by two chunks. Cut points are chosen by walking
   the blocks in doc order and cutting every time roughly
   [total/chunks] occurrences have accumulated — balancing estimated
   work, not document counts, across chunks. *)

let plan ctx ~terms ~chunks =
  if chunks <= 1 then [ (0, max_int) ]
  else begin
    (* weight at doc d = occurrences of blocks starting at d *)
    let weight : (int, int) Hashtbl.t = Hashtbl.create 64 in
    let total = ref 0 in
    List.iter
      (fun t ->
        match Ir.Inverted_index.lookup ctx.Access.Ctx.index t with
        | None -> ()
        | Some p ->
          let len = Ir.Postings.length p in
          total := !total + len;
          for i = 0 to Ir.Postings.blocks p - 1 do
            let d = Ir.Postings.block_first_doc p i in
            let w =
              min Ir.Postings.block_size (len - (i * Ir.Postings.block_size))
            in
            Hashtbl.replace weight d
              (w + try Hashtbl.find weight d with Not_found -> 0)
          done)
      terms;
    let bounds =
      List.sort compare (Hashtbl.fold (fun d w acc -> (d, w) :: acc) weight [])
    in
    let target = max 1 (!total / chunks) in
    let cuts = ref [] in
    let ncuts = ref 0 in
    let acc = ref 0 in
    List.iter
      (fun (d, w) ->
        (* cut in front of this block when the running chunk is full;
           a cut at doc 0 would make the first chunk empty *)
        if !acc >= target && d > 0 && !ncuts < chunks - 1 then begin
          (match !cuts with
          | c :: _ when c = d -> ()
          | _ ->
            cuts := d :: !cuts;
            incr ncuts;
            acc := 0);
          ()
        end;
        acc := !acc + w)
      bounds;
    let rec ranges lo = function
      | [] -> [ (lo, max_int) ]
      | c :: rest -> (lo, c) :: ranges c rest
    in
    ranges 0 (List.rev !cuts)
  end
