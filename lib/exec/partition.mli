(** Skip-block-aligned document-range partitioning for parallel query
    execution. *)

val plan : Access.Ctx.t -> terms:string list -> chunks:int -> (int * int) list
(** [plan ctx ~terms ~chunks] splits the doc-id space into at most
    [chunks] half-open intervals [(lo, hi)], in ascending order,
    disjoint and covering ([lo] of the first is [0], [hi] of the last
    is [max_int]). Every interior cut falls on a skip-block boundary
    of one of [terms]'s posting lists, and cuts are placed so each
    interval covers roughly the same number of posting occurrences.
    Returns fewer than [chunks] intervals (possibly just one) when the
    postings are too small to split further. *)
