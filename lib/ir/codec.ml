exception Truncated of string

let truncated what = raise (Truncated what)

let add_varint buf v =
  assert (v >= 0);
  let v = ref v in
  while !v >= 0x80 do
    Buffer.add_char buf (Char.chr (0x80 lor (!v land 0x7F)));
    v := !v lsr 7
  done;
  Buffer.add_char buf (Char.chr !v)

let add_zigzag buf v =
  let encoded = if v >= 0 then v lsl 1 else ((-v) lsl 1) - 1 in
  add_varint buf encoded

(* An OCaml int is 63 bits: ceil(63/7) = 9 continuation bytes is the
   longest well-formed encoding. Anything longer is corrupt data, not
   a big number. *)
let max_varint_bytes = 9

let read_varint b off =
  let len = Bytes.length b in
  let rec go off shift acc =
    if off >= len then truncated "varint runs past end of buffer"
    else if shift > 7 * max_varint_bytes then
      truncated "varint longer than 9 bytes"
    else begin
      let byte = Char.code (Bytes.get b off) in
      let acc = acc lor ((byte land 0x7F) lsl shift) in
      if byte land 0x80 <> 0 then go (off + 1) (shift + 7) acc
      else (acc, off + 1)
    end
  in
  go off 0 0

let read_zigzag b off =
  let encoded, next = read_varint b off in
  let v = if encoded land 1 = 0 then encoded lsr 1 else -((encoded + 1) lsr 1) in
  (v, next)

let varint_size v =
  let rec go v n = if v < 0x80 then n else go (v lsr 7) (n + 1) in
  go v 1
