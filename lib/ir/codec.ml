exception Truncated of string

let truncated what = raise (Truncated what)

let add_varint buf v =
  assert (v >= 0);
  let v = ref v in
  while !v >= 0x80 do
    Buffer.add_char buf (Char.chr (0x80 lor (!v land 0x7F)));
    v := !v lsr 7
  done;
  Buffer.add_char buf (Char.chr !v)

let add_zigzag buf v =
  let encoded = if v >= 0 then v lsl 1 else ((-v) lsl 1) - 1 in
  add_varint buf encoded

(* An OCaml int is 63 bits: ceil(63/7) = 9 continuation bytes is the
   longest well-formed encoding. Anything longer is corrupt data, not
   a big number. *)
let max_varint_bytes = 9

let read_varint b off =
  let len = Bytes.length b in
  let rec go off shift acc =
    if off >= len then truncated "varint runs past end of buffer"
    else if shift > 7 * max_varint_bytes then
      truncated "varint longer than 9 bytes"
    else begin
      let byte = Char.code (Bytes.get b off) in
      let acc = acc lor ((byte land 0x7F) lsl shift) in
      if byte land 0x80 <> 0 then go (off + 1) (shift + 7) acc
      else (acc, off + 1)
    end
  in
  go off 0 0

let read_zigzag b off =
  let encoded, next = read_varint b off in
  let v = if encoded land 1 = 0 then encoded lsr 1 else -((encoded + 1) lsr 1) in
  (v, next)

let varint_size v =
  let rec go v n = if v < 0x80 then n else go (v lsr 7) (n + 1) in
  go v 1

(* ------------------------------------------------------------------ *)
(* Read-only byte buffers: decoders below (postings, image sections)
   are written against [buf] so the same code reads from an in-memory
   [Bytes.t] and, zero-copy, from an mmap'd database image. *)

type bigbytes =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type buf = B of Bytes.t | M of bigbytes

let buf_of_bytes b = B b
let buf_of_string s = B (Bytes.of_string s)

let buf_length = function
  | B b -> Bytes.length b
  | M m -> Bigarray.Array1.dim m

let buf_get buf i =
  match buf with
  | B b -> Char.code (Bytes.get b i)
  | M m -> Char.code (Bigarray.Array1.get m i)

let buf_sub_string buf off len =
  match buf with
  | B b -> Bytes.sub_string b off len
  | M m ->
    if off < 0 || len < 0 || off + len > Bigarray.Array1.dim m then
      invalid_arg "Codec.buf_sub_string";
    String.init len (fun i -> Bigarray.Array1.unsafe_get m (off + i))

let buf_blit buf ~src_off dst ~dst_off ~len =
  match buf with
  | B b -> Bytes.blit b src_off dst dst_off len
  | M m ->
    if
      src_off < 0 || len < 0
      || src_off + len > Bigarray.Array1.dim m
      || dst_off < 0
      || dst_off + len > Bytes.length dst
    then invalid_arg "Codec.buf_blit";
    for i = 0 to len - 1 do
      Bytes.unsafe_set dst (dst_off + i)
        (Bigarray.Array1.unsafe_get m (src_off + i))
    done

let read_varint_buf buf off =
  let len = buf_length buf in
  let rec go off shift acc =
    if off >= len then truncated "varint runs past end of buffer"
    else if shift > 7 * max_varint_bytes then
      truncated "varint longer than 9 bytes"
    else begin
      let byte = buf_get buf off in
      let acc = acc lor ((byte land 0x7F) lsl shift) in
      if byte land 0x80 <> 0 then go (off + 1) (shift + 7) acc
      else (acc, off + 1)
    end
  in
  go off 0 0

(* ------------------------------------------------------------------ *)
(* Fixed-width bit packing (frame of reference). Values are laid out
   LSB-first in a continuous little-endian bit stream: value [k] of
   width [w] occupies bits [k*w .. k*w + w - 1]. A non-negative OCaml
   int needs at most 62 bits, so every representable value fits. *)

let max_bit_width = 62

let bits_needed v =
  assert (v >= 0);
  let rec go n v = if v = 0 then n else go (n + 1) (v lsr 1) in
  go 0 v

let packed_bytes ~n ~width = ((n * width) + 7) / 8

(* Encode side (build/save time): byte-at-a-time accumulator, spilling
   each completed byte so no shift ever overflows 63-bit ints. *)
let pack_bits out vals n width =
  assert (width >= 0 && width <= max_bit_width);
  if width > 0 then begin
    let acc = ref 0 and bits = ref 0 in
    for i = 0 to n - 1 do
      let v = ref vals.(i) and remaining = ref width in
      while !remaining > 0 do
        let take = min !remaining (8 - !bits) in
        acc := !acc lor ((!v land ((1 lsl take) - 1)) lsl !bits);
        bits := !bits + take;
        v := !v lsr take;
        remaining := !remaining - take;
        if !bits = 8 then begin
          Buffer.add_char out (Char.unsafe_chr !acc);
          acc := 0;
          bits := 0
        end
      done
    done;
    if !bits > 0 then Buffer.add_char out (Char.unsafe_chr !acc)
  end

(* Decode side (cursor landings — the hot path). Widths up to 55 —
   in practice every real block — stream through a rolling
   accumulator: each byte is read exactly once, shifted into a bit
   window, and values peel off the bottom with one mask + one shift.
   The window never holds more than [width - 1 + 8 <= 62] live bits,
   so nothing overflows a 63-bit int. The caller bounds-checks
   [off .. off + packed_bytes ~n ~width) before calling. *)
let unpack_bits_stream buf ~off ~width ~n out =
  let mask = (1 lsl width) - 1 in
  match buf with
  | B b ->
    let acc = ref 0 and bits = ref 0 and p = ref off in
    for k = 0 to n - 1 do
      while !bits < width do
        acc := !acc lor (Char.code (Bytes.unsafe_get b !p) lsl !bits);
        incr p;
        bits := !bits + 8
      done;
      Array.unsafe_set out k (!acc land mask);
      acc := !acc lsr width;
      bits := !bits - width
    done
  | M m ->
    let acc = ref 0 and bits = ref 0 and p = ref off in
    for k = 0 to n - 1 do
      while !bits < width do
        acc := !acc lor (Char.code (Bigarray.Array1.unsafe_get m !p) lsl !bits);
        incr p;
        bits := !bits + 8
      done;
      Array.unsafe_set out k (!acc land mask);
      acc := !acc lsr width;
      bits := !bits - width
    done

(* Wider values (56..62 bits) can't keep a byte-granular window inside
   an int, so they gather per value instead: the value is assembled
   from the bytes covering its bit range; bits above [width - 1] are
   cleared by the final mask and bits shifted past position 62 are
   dropped by [lsl] semantics — both are exactly the unwanted bits. *)
let unpack_bits buf ~off ~width ~n out =
  assert (width >= 0 && width <= max_bit_width);
  if width = 0 then Array.fill out 0 n 0
  else if width <= 55 then unpack_bits_stream buf ~off ~width ~n out
  else begin
    let mask = (1 lsl width) - 1 in
    match buf with
    | B b ->
      for k = 0 to n - 1 do
        let bitpos = k * width in
        let byte = off + (bitpos lsr 3) in
        let shift = bitpos land 7 in
        let acc = ref (Char.code (Bytes.unsafe_get b byte) lsr shift) in
        let got = ref (8 - shift) in
        let j = ref (byte + 1) in
        while !got < width do
          acc := !acc lor (Char.code (Bytes.unsafe_get b !j) lsl !got);
          got := !got + 8;
          incr j
        done;
        Array.unsafe_set out k (!acc land mask)
      done
    | M m ->
      for k = 0 to n - 1 do
        let bitpos = k * width in
        let byte = off + (bitpos lsr 3) in
        let shift = bitpos land 7 in
        let acc =
          ref (Char.code (Bigarray.Array1.unsafe_get m byte) lsr shift)
        in
        let got = ref (8 - shift) in
        let j = ref (byte + 1) in
        while !got < width do
          acc :=
            !acc lor (Char.code (Bigarray.Array1.unsafe_get m !j) lsl !got);
          got := !got + 8;
          incr j
        done;
        Array.unsafe_set out k (!acc land mask)
      done
  end
