type occ = { doc : int; node : int; pos : int }

let compare_occ a b =
  match compare a.doc b.doc with 0 -> compare a.pos b.pos | c -> c

let block_size = 128

(* One entry per block of [block_size] occurrences. Each block is
   self-contained frame-of-reference data: a 3-byte header holding the
   block's bit widths (doc-delta, zigzag node-delta, pos-delta)
   followed by the three packed field streams. [sk_off] is the byte
   offset of the block header within the packed region, and
   [sk_prev_*] snapshot the decoder state entering the block (the last
   occurrence of the previous block), so any block decodes
   independently — sequential scans decode block after block, seeks
   binary-search the table and decode only the landing block.
   [sk_first_*] duplicate the first occurrence's sort key for the
   binary search; [sk_max_node] and [sk_max_tf] are per-block
   summaries for structural and score-based pruning. *)
type skip = {
  sk_off : int;  (* byte offset of the block header in the packed region *)
  sk_prev_doc : int;
  sk_prev_node : int;
  sk_prev_pos : int;  (* decoder state entering the block *)
  sk_first_doc : int;
  sk_first_pos : int;  (* the block's first occurrence *)
  sk_max_node : int;  (* largest owning-element key in the block *)
  sk_max_tf : int;
      (* max occurrences, over documents intersecting this block, of
         the term in that whole document (not clipped to the block) *)
}

let zigzag v = if v >= 0 then v lsl 1 else ((-v) lsl 1) - 1

let unzigzag e = if e land 1 = 0 then e lsr 1 else -((e + 1) lsr 1)

type builder = {
  buf : Buffer.t;  (* packed blocks already flushed *)
  docs_d : int array;  (* pending block: doc deltas (0 = same doc) *)
  nodes_d : int array;  (* pending block: zigzag node deltas *)
  poss_d : int array;  (* pending block: pos deltas *)
  mutable pending : int;  (* occupancy of the pending block *)
  mutable count : int;
  mutable last_doc : int;
  mutable last_node : int;
  mutable last_pos : int;
  mutable rev_skips : skip list;  (* max_node/max_tf patched at freeze *)
  mutable blk_max_node : int;  (* of the block under construction *)
  (* per-document run tracking for sk_max_tf *)
  mutable run_doc : int;
  mutable run_count : int;
  mutable run_first_block : int;
  mutable rev_runs : (int * int * int) list;  (* first_block, last_block, tf *)
}

let builder () =
  {
    buf = Buffer.create 64;
    docs_d = Array.make block_size 0;
    nodes_d = Array.make block_size 0;
    poss_d = Array.make block_size 0;
    pending = 0;
    count = 0;
    last_doc = 0;
    last_node = 0;
    last_pos = 0;
    rev_skips = [];
    blk_max_node = 0;
    run_doc = -1;
    run_count = 0;
    run_first_block = 0;
    rev_runs = [];
  }

let close_run b =
  if b.run_count > 0 then
    b.rev_runs <-
      (b.run_first_block, (b.count - 1) / block_size, b.run_count)
      :: b.rev_runs

let field_width vals n =
  let w = ref 0 in
  for i = 0 to n - 1 do
    let x = Codec.bits_needed vals.(i) in
    if x > !w then w := x
  done;
  !w

let flush_block b =
  if b.pending > 0 then begin
    let n = b.pending in
    let wd = field_width b.docs_d n in
    let wn = field_width b.nodes_d n in
    let wp = field_width b.poss_d n in
    Buffer.add_char b.buf (Char.chr wd);
    Buffer.add_char b.buf (Char.chr wn);
    Buffer.add_char b.buf (Char.chr wp);
    Codec.pack_bits b.buf b.docs_d n wd;
    Codec.pack_bits b.buf b.nodes_d n wn;
    Codec.pack_bits b.buf b.poss_d n wp;
    b.pending <- 0
  end

let add b occ =
  if occ.doc < b.last_doc
     || (occ.doc = b.last_doc && b.count > 0 && occ.pos < b.last_pos)
  then invalid_arg "Postings.add: occurrences out of order";
  if b.count mod block_size = 0 then begin
    (* pack the completed block, close its summary, snapshot the new
       one; [sk_off] is where the fresh block's header will land *)
    flush_block b;
    (match b.rev_skips with
    | sk :: rest when b.count > 0 ->
      b.rev_skips <- { sk with sk_max_node = b.blk_max_node } :: rest
    | _ -> ());
    b.rev_skips <-
      {
        sk_off = Buffer.length b.buf;
        sk_prev_doc = b.last_doc;
        sk_prev_node = b.last_node;
        sk_prev_pos = b.last_pos;
        sk_first_doc = occ.doc;
        sk_first_pos = occ.pos;
        sk_max_node = occ.node;
        sk_max_tf = 0;
      }
      :: b.rev_skips;
    b.blk_max_node <- occ.node
  end;
  let k = b.pending in
  if occ.doc <> b.last_doc then begin
    b.docs_d.(k) <- occ.doc - b.last_doc;
    (* node/pos restart from 0 on a document change *)
    b.nodes_d.(k) <- zigzag occ.node;
    b.poss_d.(k) <- occ.pos
  end
  else begin
    b.docs_d.(k) <- 0;
    b.nodes_d.(k) <- zigzag (occ.node - b.last_node);
    b.poss_d.(k) <- occ.pos - b.last_pos
  end;
  b.pending <- k + 1;
  if occ.doc <> b.run_doc then begin
    close_run b;
    b.run_doc <- occ.doc;
    b.run_count <- 1;
    b.run_first_block <- b.count / block_size
  end
  else b.run_count <- b.run_count + 1;
  if occ.node > b.blk_max_node then b.blk_max_node <- occ.node;
  b.last_doc <- occ.doc;
  b.last_node <- occ.node;
  b.last_pos <- occ.pos;
  b.count <- b.count + 1

type t = {
  data : Codec.buf;  (* holds the packed region (and possibly more) *)
  base : int;  (* offset of block 0's header within [data] *)
  len : int;  (* length of the packed region *)
  count : int;
  skips : skip array;
  max_tf : int;  (* max occurrences of the term in one document *)
}

let freeze b =
  flush_block b;
  close_run b;
  b.run_count <- 0;
  (match b.rev_skips with
  | sk :: rest when b.count > 0 ->
    b.rev_skips <- { sk with sk_max_node = b.blk_max_node } :: rest
  | _ -> ());
  let skips = Array.of_list (List.rev b.rev_skips) in
  let tmp = Array.map (fun sk -> sk.sk_max_tf) skips in
  List.iter
    (fun (b0, b1, tf) ->
      for i = b0 to b1 do
        if tf > tmp.(i) then tmp.(i) <- tf
      done)
    b.rev_runs;
  let skips = Array.mapi (fun i sk -> { sk with sk_max_tf = tmp.(i) }) skips in
  let max_tf = Array.fold_left (fun m sk -> max m sk.sk_max_tf) 0 skips in
  let data = Buffer.to_bytes b.buf in
  {
    data = Codec.B data;
    base = 0;
    len = Bytes.length data;
    count = b.count;
    skips;
    max_tf;
  }

let length t = t.count
let byte_size t = t.len
let blocks t = Array.length t.skips
let max_tf t = t.max_tf
let block_first_doc t i = t.skips.(i).sk_first_doc

(* A cursor decodes one whole block at a time into flat arrays of
   absolute (doc, node, pos) values — straight-line shift/mask work —
   and then serves [next] as three array reads. [blk] is the decoded
   block (-1 before the first decode), [i] the next undelivered index
   within it, [n] its occupancy. Consumed count = blk*block_size + i
   (blocks before [blk] are always full). *)
type cursor = {
  list : t;
  docs : int array;
  nodes : int array;
  poss : int array;
  mutable blk : int;
  mutable i : int;
  mutable n : int;
}

let cursor list =
  {
    list;
    docs = Array.make block_size 0;
    nodes = Array.make block_size 0;
    poss = Array.make block_size 0;
    blk = -1;
    i = 0;
    n = 0;
  }

let bad_block () = raise (Codec.Truncated "posting block runs past its payload")

(* Validate block [b]'s frame and unpack its three raw delta streams
   into the caller's arrays; returns the block's occupancy. *)
let load_deltas t b docs nodes poss =
  let n = min block_size (t.count - (b * block_size)) in
  let sk = t.skips.(b) in
  if sk.sk_off < 0 || sk.sk_off + 3 > t.len then bad_block ();
  let off = t.base + sk.sk_off in
  let wd = Codec.buf_get t.data off in
  let wn = Codec.buf_get t.data (off + 1) in
  let wp = Codec.buf_get t.data (off + 2) in
  if wd > Codec.max_bit_width || wn > Codec.max_bit_width
     || wp > Codec.max_bit_width
  then bad_block ();
  let od = off + 3 in
  let on = od + Codec.packed_bytes ~n ~width:wd in
  let op = on + Codec.packed_bytes ~n ~width:wn in
  let oe = op + Codec.packed_bytes ~n ~width:wp in
  if oe > t.base + t.len then bad_block ();
  Codec.unpack_bits t.data ~off:od ~width:wd ~n docs;
  Codec.unpack_bits t.data ~off:on ~width:wn ~n nodes;
  Codec.unpack_bits t.data ~off:op ~width:wp ~n poss;
  n

let decode_block c b =
  let t = c.list in
  let n = load_deltas t b c.docs c.nodes c.poss in
  let sk = t.skips.(b) in
  let doc = ref sk.sk_prev_doc in
  let node = ref sk.sk_prev_node in
  let pos = ref sk.sk_prev_pos in
  for k = 0 to n - 1 do
    let dd = Array.unsafe_get c.docs k in
    if dd <> 0 then begin
      doc := !doc + dd;
      node := 0;
      pos := 0
    end;
    node := !node + unzigzag (Array.unsafe_get c.nodes k);
    pos := !pos + Array.unsafe_get c.poss k;
    Array.unsafe_set c.docs k !doc;
    Array.unsafe_set c.nodes k !node;
    Array.unsafe_set c.poss k !pos
  done;
  c.blk <- b;
  c.n <- n;
  c.i <- 0

let next c =
  if c.blk >= 0 && c.i < c.n then begin
    let k = c.i in
    c.i <- k + 1;
    Some { doc = c.docs.(k); node = c.nodes.(k); pos = c.poss.(k) }
  end
  else begin
    let b = c.blk + 1 in
    if b * block_size >= c.list.count then None
    else begin
      decode_block c b;
      c.i <- 1;
      Some { doc = c.docs.(0); node = c.nodes.(0); pos = c.poss.(0) }
    end
  end

let reset c =
  c.blk <- -1;
  c.i <- 0;
  c.n <- 0

(* First index in [i .. n) with (doc, pos) >= target; [n] if none.
   The decoded arrays are sorted by (doc, pos). *)
let lower_bound c ~doc ~pos =
  let lo = ref c.i and hi = ref c.n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let d = c.docs.(mid) in
    if d < doc || (d = doc && c.poss.(mid) < pos) then lo := mid + 1
    else hi := mid
  done;
  !lo

(* First not-yet-delivered occurrence with [(doc, pos) >= target],
   consuming everything before it. The skip-table binary search only
   ever moves the cursor forward; after the jump, at most the blocks
   up to the target are decoded (one, in the common case). *)
let seek_pos c ~doc ~pos =
  let t = c.list in
  let nsk = Array.length t.skips in
  let seen = if c.blk < 0 then 0 else (c.blk * block_size) + c.i in
  if nsk > 1 && seen < t.count then begin
    let cur_block = seen / block_size in
    let le j =
      let sk = t.skips.(j) in
      sk.sk_first_doc < doc || (sk.sk_first_doc = doc && sk.sk_first_pos <= pos)
    in
    let lo = ref (cur_block + 1) and hi = ref (nsk - 1) and best = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if le mid then begin
        best := mid;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    if !best > c.blk then decode_block c !best
  end;
  let rec scan () =
    if c.blk >= 0 && c.i < c.n then begin
      let k = lower_bound c ~doc ~pos in
      if k < c.n then begin
        c.i <- k + 1;
        Some { doc = c.docs.(k); node = c.nodes.(k); pos = c.poss.(k) }
      end
      else begin
        c.i <- c.n;
        advance ()
      end
    end
    else advance ()
  and advance () =
    let b = c.blk + 1 in
    if b * block_size >= t.count then None
    else begin
      decode_block c b;
      scan ()
    end
  in
  scan ()

let seek_doc c doc = seek_pos c ~doc ~pos:0

let block_max_tf c =
  let t = c.list in
  let nsk = Array.length t.skips in
  if nsk = 0 then 0
  else begin
    let i = if c.blk < 0 then 0 else c.blk in
    t.skips.(min i (nsk - 1)).sk_max_tf
  end

let block_max_node c =
  let t = c.list in
  let nsk = Array.length t.skips in
  if nsk = 0 then 0
  else begin
    let i = if c.blk < 0 then 0 else c.blk in
    t.skips.(min i (nsk - 1)).sk_max_node
  end

let iter f t =
  let c = cursor t in
  let rec go () =
    match next c with
    | Some occ ->
      f occ;
      go ()
    | None -> ()
  in
  go ()

let scan t f =
  (* sequential decode with no per-occurrence allocation: unpack each
     block's raw delta streams, then one fused loop reconstructs the
     absolute values and hands out plain ints — no cursor state, no
     write-back of the reconstructed block *)
  let nblocks = Array.length t.skips in
  if nblocks > 0 then begin
    let docs = Array.make block_size 0 in
    let nodes = Array.make block_size 0 in
    let poss = Array.make block_size 0 in
    for b = 0 to nblocks - 1 do
      let n = load_deltas t b docs nodes poss in
      let sk = t.skips.(b) in
      let doc = ref sk.sk_prev_doc in
      let node = ref sk.sk_prev_node in
      let pos = ref sk.sk_prev_pos in
      for k = 0 to n - 1 do
        let dd = Array.unsafe_get docs k in
        if dd <> 0 then begin
          doc := !doc + dd;
          node := 0;
          pos := 0
        end;
        node := !node + unzigzag (Array.unsafe_get nodes k);
        pos := !pos + Array.unsafe_get poss k;
        f !doc !node !pos
      done
    done
  end

let to_list t =
  let acc = ref [] in
  iter (fun occ -> acc := occ :: !acc) t;
  List.rev !acc

let of_list occs =
  let b = builder () in
  List.iter (add b) occs;
  freeze b

(* Serialized form: the skip table, then the packed region. Block
   membership is positional (block [i] covers occurrences
   [i*block_size ..]), so per-entry counts need not be stored. *)
let serialize t =
  let buf = Buffer.create (t.len + (Array.length t.skips * 12)) in
  Codec.add_varint buf (Array.length t.skips);
  let prev_off = ref 0 in
  Array.iter
    (fun sk ->
      Codec.add_varint buf (sk.sk_off - !prev_off);
      prev_off := sk.sk_off;
      Codec.add_varint buf sk.sk_prev_doc;
      Codec.add_varint buf sk.sk_prev_node;
      Codec.add_varint buf sk.sk_prev_pos;
      Codec.add_varint buf sk.sk_first_doc;
      Codec.add_varint buf sk.sk_first_pos;
      Codec.add_varint buf sk.sk_max_node;
      Codec.add_varint buf sk.sk_max_tf)
    t.skips;
  Codec.add_varint buf t.len;
  (match t.data with
  | Codec.B b when t.base = 0 && t.len = Bytes.length b -> Buffer.add_bytes buf b
  | _ -> Buffer.add_string buf (Codec.buf_sub_string t.data t.base t.len));
  Buffer.contents buf

(* Decoding keeps a view into [buf] — no payload copy. This is what
   makes postings decode directly out of an mmap'd image. *)
let deserialize_buf ~count buf off =
  let nsk, off = Codec.read_varint_buf buf off in
  let off = ref off in
  let prev_off = ref 0 in
  let skips =
    Array.init nsk (fun _ ->
        let rd () =
          let v, o = Codec.read_varint_buf buf !off in
          off := o;
          v
        in
        let d_off = rd () in
        let sk_off = !prev_off + d_off in
        prev_off := sk_off;
        let sk_prev_doc = rd () in
        let sk_prev_node = rd () in
        let sk_prev_pos = rd () in
        let sk_first_doc = rd () in
        let sk_first_pos = rd () in
        let sk_max_node = rd () in
        let sk_max_tf = rd () in
        {
          sk_off;
          sk_prev_doc;
          sk_prev_node;
          sk_prev_pos;
          sk_first_doc;
          sk_first_pos;
          sk_max_node;
          sk_max_tf;
        })
  in
  let len, base = Codec.read_varint_buf buf !off in
  if len < 0 || base + len > Codec.buf_length buf then
    raise (Codec.Truncated "posting payload shorter than its header");
  let max_tf = Array.fold_left (fun m sk -> max m sk.sk_max_tf) 0 skips in
  ({ data = buf; base; len; count; skips; max_tf }, base + len)

let deserialize ~count data =
  fst (deserialize_buf ~count (Codec.buf_of_string data) 0)
