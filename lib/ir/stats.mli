(** Collection statistics for cost-based access-method planning.

    Corpus aggregates, a per-tag element count vector and a path
    synopsis — a trie of tag paths annotated with element counts, in
    the strong-dataguide shape — computed once at index time and
    persisted in an optional image section. The planner reads them to
    estimate operator cardinalities without touching postings or
    element pages; per-term document/occurrence counts live in the
    index section itself ({!Inverted_index.doc_freq},
    {!Inverted_index.collection_freq}). *)

type syn_node = {
  syn_tag : int;  (** catalog tag id *)
  mutable syn_count : int;  (** elements at exactly this tag path *)
  mutable syn_size : int;
      (** elements in subtrees rooted at this path, self included *)
  mutable syn_children : syn_node list;
}

type t = {
  documents : int;
  elements : int;
  occurrences : int;
  distinct_terms : int;
  depth_sum : int;
  tag_counts : int array;  (** indexed by catalog tag id *)
  synopsis : syn_node list;
  synopsis_nodes : int;
  synopsis_complete : bool;
      (** [false] when the node budget truncated the trie; synopsis
          estimates are then lower bounds *)
}

(** {1 Building} *)

type builder

val builder :
  ?max_nodes:int ->
  documents:int ->
  occurrences:int ->
  distinct_terms:int ->
  tag_count:int ->
  unit ->
  builder
(** [max_nodes] (default 4096) bounds the synopsis trie so the stats
    section stays small on pathological schemas. *)

val add_element : builder -> tag:int -> level:int -> unit
(** Feed one element in document preorder (the element store's scan
    order); [level] nests the synopsis exactly as the documents do. *)

val freeze : builder -> t

(** {1 Estimation} *)

val tag_count : t -> tag:int -> int
(** Elements carrying the tag; 0 for unknown ids. *)

val avg_depth : t -> float
(** Mean ancestor-chain length of an element (≥ 1). *)

val subtree_fraction : t -> tag:int -> float
(** Fraction of all elements lying inside subtrees rooted at [tag]
    (outermost occurrences only), in [0, 1]. A truncated synopsis
    yields a lower bound. *)

val pp : Format.formatter -> t -> unit

(** {1 Serialization} *)

val save : t -> Buffer.t -> unit

val load_buf : Codec.buf -> int -> t * int
(** [(stats, next_off)]; inverse of {!save}. Raises
    {!Codec.Truncated} on a short buffer. *)

(** {1 Feedback}

    A per-snapshot correction table fed by observed operator
    cardinalities (EXPLAIN ANALYZE's actuals). The planner multiplies
    its estimates by the stored correction for the query's key, so
    repeated misestimates self-correct; a materially changed
    correction (a factor-2 move) bumps {!Feedback.generation}, which
    plan caches fold into their keys so stale plans are re-costed. *)

module Feedback : sig
  type t

  val create : unit -> t

  val generation : t -> int
  (** Bumped on every material correction change. A key's first
      observation sets its baseline without a bump — only later
      material moves against that baseline invalidate plans. *)

  val observe : t -> key:string -> est:float -> actual:float -> unit

  val correction : t -> key:string -> float
  (** Multiplier for the next estimate under [key]; 1.0 when nothing
      was observed. Clamped to [1/64, 64]. *)

  val observations : t -> int

  val to_string : t -> string
  (** Serialize the correction table (keys, corrections, observation
      counts) so warmed corrections survive a snapshot republish or a
      restart. *)

  val of_string : string -> t option
  (** Inverse of {!to_string}; [None] on a wrong magic or a truncated
      or corrupt buffer. The restored table starts at generation 0. *)
end
