(** Byte-level integer codecs used by the compressed posting lists
    and the slotted storage pages. *)

exception Truncated of string
(** Raised by the read functions on a truncated or corrupt buffer: a
    varint that runs past the end of the bytes, or one encoded with
    more continuation bytes than a 63-bit integer can need. Decoders
    above this layer (postings, index, image loading) let it
    propagate to their own typed error handling. *)

val add_varint : Buffer.t -> int -> unit
(** LEB128 encoding of a non-negative integer. *)

val add_zigzag : Buffer.t -> int -> unit
(** Zigzag-then-varint encoding of a signed integer. *)

val read_varint : Bytes.t -> int -> int * int
(** [read_varint b off] is [(value, next_off)]. Raises {!Truncated}
    rather than reading past the end of [b]. *)

val read_zigzag : Bytes.t -> int -> int * int
(** Raises {!Truncated} like {!read_varint}. *)

val varint_size : int -> int
(** Encoded size in bytes of a non-negative integer. *)
