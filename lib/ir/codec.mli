(** Byte-level integer codecs used by the compressed posting lists
    and the slotted storage pages, plus the read-only buffer
    abstraction and fixed-width bit packer behind the packed posting
    blocks and mmap'd database images. *)

exception Truncated of string
(** Raised by the read functions on a truncated or corrupt buffer: a
    varint that runs past the end of the bytes, or one encoded with
    more continuation bytes than a 63-bit integer can need. Decoders
    above this layer (postings, index, image loading) let it
    propagate to their own typed error handling. *)

val add_varint : Buffer.t -> int -> unit
(** LEB128 encoding of a non-negative integer. *)

val add_zigzag : Buffer.t -> int -> unit
(** Zigzag-then-varint encoding of a signed integer. *)

val read_varint : Bytes.t -> int -> int * int
(** [read_varint b off] is [(value, next_off)]. Raises {!Truncated}
    rather than reading past the end of [b]. *)

val read_zigzag : Bytes.t -> int -> int * int
(** Raises {!Truncated} like {!read_varint}. *)

val varint_size : int -> int
(** Encoded size in bytes of a non-negative integer. *)

(** {1 Read-only buffers}

    Decoders written against {!buf} read identically from an
    in-memory [Bytes.t] and from an mmap'd image ([Bigarray]) — the
    latter without copying a single payload byte. *)

type bigbytes =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type buf = B of Bytes.t | M of bigbytes

val buf_of_bytes : Bytes.t -> buf
val buf_of_string : string -> buf
(** Copies the string into fresh bytes. *)

val buf_length : buf -> int

val buf_get : buf -> int -> int
(** Byte value at an offset; bounds-checked. *)

val buf_sub_string : buf -> int -> int -> string

val buf_blit : buf -> src_off:int -> Bytes.t -> dst_off:int -> len:int -> unit

val read_varint_buf : buf -> int -> int * int
(** {!read_varint} over a {!buf}; raises {!Truncated} likewise. *)

(** {1 Fixed-width bit packing}

    Frame-of-reference storage for posting blocks: [n] values of one
    shared bit width, laid out LSB-first in a continuous little-endian
    bit stream (value [k] occupies bits [k*width .. k*width+width-1]).
    Width 0 encodes a run of zeros in zero bytes. *)

val max_bit_width : int
(** 62 — any non-negative OCaml int fits. *)

val bits_needed : int -> int
(** Minimal width for a non-negative value; [bits_needed 0 = 0]. *)

val packed_bytes : n:int -> width:int -> int
(** Bytes occupied by [n] packed values: [ceil (n*width / 8)]. *)

val pack_bits : Buffer.t -> int array -> int -> int -> unit
(** [pack_bits out vals n width] appends the packed encoding of
    [vals.(0..n-1)]; every value must fit in [width] bits. *)

val unpack_bits : buf -> off:int -> width:int -> n:int -> int array -> unit
(** Decode [n] values into the prefix of the output array with
    straight-line shift/mask ops (no per-byte branching). The caller
    must have bounds-checked [off .. off + packed_bytes ~n ~width). *)
