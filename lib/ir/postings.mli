(** Positional posting lists.

    An occurrence records where a term appears: in which document, in
    which element ([node] is the start key of the element that
    directly owns the text), and at which word position. Occurrences
    are kept sorted by [(doc, pos)], which is document order, and are
    stored delta-compressed with frame-of-reference bit packing:
    each block of {!block_size} occurrences carries one fixed bit
    width per field (doc-delta, node-delta, pos-delta) and the three
    packed field streams, decoded a whole block at a time with
    straight-line shift/mask ops — no per-occurrence varint loop.

    Each block has one skip entry (decoder snapshot, first sort key,
    max owning-element key, max per-document frequency), so a cursor
    can {!seek_doc}/{!seek_pos} forward by binary-searching the skip
    table and decoding only the landing block, and score-utilizing
    consumers can prune blocks whose {!block_max_tf} bound cannot
    beat a Top-K cutoff.

    A list decodes out of any {!Codec.buf} — {!deserialize_buf} keeps
    a zero-copy view, so postings read straight out of an mmap'd
    TIXDB004 image. The previous varint codec lives on in
    {!Postings_varint} for TIXDB003 compatibility and as the bench
    baseline. *)

type occ = { doc : int; node : int; pos : int }

val compare_occ : occ -> occ -> int
(** Order by [(doc, pos)]. *)

val block_size : int
(** Occurrences per skip block (128). *)

type builder

val builder : unit -> builder

val add : builder -> occ -> unit
(** Occurrences must be appended in [(doc, pos)] order; out-of-order
    appends raise [Invalid_argument]. *)

type t
(** A frozen, compressed posting list. *)

val freeze : builder -> t
val length : t -> int
(** Number of occurrences (the term's collection frequency). *)

val byte_size : t -> int
val blocks : t -> int
(** Number of skip blocks. *)

val max_tf : t -> int
(** Largest number of occurrences of the term in any one document —
    the term-level score bound of max-score pruning. 0 when empty. *)

val block_first_doc : t -> int -> int
(** [block_first_doc t i] is the document id of block [i]'s first
    occurrence ([0 <= i < blocks t]) — the natural cut points for
    document-range partitioning: splitting at these boundaries lets a
    chunk's cursor land on a block start without decoding its
    predecessor. *)

type cursor

val cursor : t -> cursor

val next : cursor -> occ option
(** Decode and return the next occurrence, or [None] at the end. *)

val reset : cursor -> unit

(** {1 Seeking}

    Both seeks are forward-only: they consume (skipping whole blocks
    where the skip table allows) every occurrence strictly before the
    target, then decode and return the first occurrence at or after
    it — exactly the occurrence a loop of [next] calls discarding
    smaller entries would return. A target at or before the cursor's
    position degrades to [next]. *)

val seek_doc : cursor -> int -> occ option
(** [seek_doc c d] is the first remaining occurrence with
    [occ.doc >= d]. *)

val seek_pos : cursor -> doc:int -> pos:int -> occ option
(** [seek_pos c ~doc ~pos] is the first remaining occurrence with
    [(occ.doc, occ.pos) >= (doc, pos)] lexicographically. Element
    start/end keys share the position key space, so seeking to an
    element's end key skips every occurrence inside its subtree. *)

val block_max_tf : cursor -> int
(** Upper bound on the whole-document frequency of any document
    intersecting the block of the last returned occurrence. Valid
    immediately after [next]/[seek_*] returned [Some _]. *)

val block_max_node : cursor -> int
(** Largest owning-element key in the current block. *)

val iter : (occ -> unit) -> t -> unit

val scan : t -> (int -> int -> int -> unit) -> unit
(** [scan t f] calls [f doc node pos] for every occurrence in order,
    decoding block-at-a-time with no per-occurrence allocation — the
    fast path for scan-bound consumers and the decode benchmarks. *)

val to_list : t -> occ list
val of_list : occ list -> t
(** Builds from a list that must already be sorted by [(doc, pos)]. *)

(** {1 Serialization} *)

val serialize : t -> string
(** Skip table followed by the packed block region (count is carried
    separately). *)

val deserialize : count:int -> string -> t
(** Raises [Codec.Truncated] when the payload is shorter than its
    own framing claims. *)

val deserialize_buf : count:int -> Codec.buf -> int -> t * int
(** [deserialize_buf ~count buf off] parses the {!serialize} framing
    at [off] and returns the list plus the offset one past its packed
    region. The list keeps a zero-copy view into [buf] — for an
    mmap'd image the block bytes are decoded in place, never copied.
    Raises [Codec.Truncated] like {!deserialize}. *)
