type term_id = int

(* The build-time dictionary: a hash table plus a dense id → term
   array, everything materialized. *)
type mem = {
  ids : (string, term_id) Hashtbl.t;
  mutable terms : string array;
  mutable count : int;
}

(* The mapped dictionary: term bytes stay in the (possibly mmap'd)
   image buffer. Opening records only each term's offset and length —
   no string is allocated and no hash table is built until the first
   lookup, so a TIXDB004 open stays O(number of terms) varint skips
   instead of O(total term bytes) allocation + hashing.

   [cache] memoizes materialized term strings; racing domains may
   materialize the same term twice, but each write is a single word
   store of an immutable string, so the race is benign. The probe
   table is built once under [lock] on the first [find]. *)
type mapped = {
  buf : Codec.buf;
  offs : int array;
  lens : int array;
  cache : string option array;
  lock : Mutex.t;
  mutable table : int list array;  (* hash bucket -> ids; [||] until built *)
}

type t = Mem of mem | Mapped of mapped

let create () =
  Mem { ids = Hashtbl.create 4096; terms = Array.make 16 ""; count = 0 }

let of_mapped buf ~offs ~lens =
  if Array.length offs <> Array.length lens then
    invalid_arg "Dictionary.of_mapped: offs/lens length mismatch";
  Mapped
    {
      buf;
      offs;
      lens;
      cache = Array.make (max (Array.length offs) 1) None;
      lock = Mutex.create ();
      table = [||];
    }

let grow t =
  let capacity = Array.length t.terms in
  if t.count >= capacity then begin
    let fresh = Array.make (capacity * 2) "" in
    Array.blit t.terms 0 fresh 0 capacity;
    t.terms <- fresh
  end

let intern t term =
  match t with
  | Mapped _ ->
    invalid_arg "Dictionary.intern: mapped dictionaries are read-only"
  | Mem t -> begin
    match Hashtbl.find_opt t.ids term with
    | Some id -> id
    | None ->
      let id = t.count in
      grow t;
      t.terms.(id) <- term;
      t.count <- t.count + 1;
      Hashtbl.replace t.ids term id;
      id
  end

(* FNV-1a over the term bytes, computed identically over a query
   string and over mapped buffer bytes so probes never materialize
   the stored terms. *)
let fnv_offset = 0x4bf29ce484222325 (* FNV-1a offset basis, 63-bit truncated *)
let fnv_prime = 0x100000001b3

let hash_string s =
  let h = ref fnv_offset in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * fnv_prime)
    s;
  !h land max_int

let hash_mapped m id =
  let off = m.offs.(id) and len = m.lens.(id) in
  let h = ref fnv_offset in
  for i = 0 to len - 1 do
    h := (!h lxor Codec.buf_get m.buf (off + i)) * fnv_prime
  done;
  !h land max_int

let equals_mapped m id s =
  let len = m.lens.(id) in
  String.length s = len
  &&
  let off = m.offs.(id) in
  let rec eq i =
    i >= len || (Codec.buf_get m.buf (off + i) = Char.code s.[i] && eq (i + 1))
  in
  eq 0

let build_table m =
  let n = Array.length m.offs in
  (* power-of-two bucket count, ~2 slots per term *)
  let buckets =
    let rec up b = if b >= n * 2 then b else up (b * 2) in
    up 16
  in
  let table = Array.make buckets [] in
  for id = n - 1 downto 0 do
    let b = hash_mapped m id land (buckets - 1) in
    table.(b) <- id :: table.(b)
  done;
  table

let mapped_table m =
  if m.table != [||] then m.table
  else
    Mutex.protect m.lock (fun () ->
        if m.table == [||] then m.table <- build_table m;
        m.table)

let mapped_term m id =
  match m.cache.(id) with
  | Some s -> s
  | None ->
    let s = Codec.buf_sub_string m.buf m.offs.(id) m.lens.(id) in
    m.cache.(id) <- Some s;
    s

let find t term =
  match t with
  | Mem t -> Hashtbl.find_opt t.ids term
  | Mapped m ->
    let table = mapped_table m in
    let bucket = table.(hash_string term land (Array.length table - 1)) in
    List.find_opt (fun id -> equals_mapped m id term) bucket

let term t id =
  match t with Mem t -> t.terms.(id) | Mapped m -> mapped_term m id

let size t =
  match t with Mem t -> t.count | Mapped m -> Array.length m.offs

let iter f t =
  match t with
  | Mem t -> Hashtbl.iter f t.ids
  | Mapped m ->
    for id = 0 to Array.length m.offs - 1 do
      f (mapped_term m id) id
    done

let is_mapped = function Mem _ -> false | Mapped _ -> true
