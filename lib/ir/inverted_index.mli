(** A positional inverted index over a collection of XML documents.

    The index maps a term to the ordered list of its occurrences
    (document, owning element, word position); an index look-up is
    the score-generating access of Sec. 5.1: it returns element
    identifiers plus auxiliary information (position, count) from
    which initial scores are produced. *)

type t

type stats = {
  distinct_terms : int;
  total_occurrences : int;
  documents : int;
  bytes : int;  (** compressed posting storage *)
}

(** {1 Building} *)

type builder

val builder : ?stem:bool -> unit -> builder
(** With [~stem:true] terms are Porter-stemmed before indexing. *)

val add_occurrence : builder -> doc:int -> node:int -> term:string -> pos:int -> unit
(** Record one term occurrence. Occurrences of one term must arrive
    in [(doc, pos)] order; the store's loader guarantees this by
    feeding documents in id order and tokens in document order. *)

val index_text : builder -> doc:int -> node:int -> start_pos:int -> string -> int
(** Tokenize a text fragment owned by element [node], indexing every
    token, and return the next free word position. *)

val add_normalized_occurrence :
  builder -> doc:int -> node:int -> term:string -> pos:int -> unit
(** Like {!add_occurrence} but the term is taken verbatim — no
    stemming even in a [~stem:true] builder. For merging an already
    frozen index into a new builder ({!iter_terms}), where terms are
    normalized once at original ingest and must not be re-stemmed. *)

val freeze : builder -> t

(** {1 Querying} *)

val lookup : t -> string -> Postings.t option
(** [lookup t term] applies the index's stemming configuration to
    [term] and returns its posting list. *)

val cursor : t -> string -> Postings.cursor option
val collection_freq : t -> string -> int
(** Total number of occurrences of [term]; 0 when absent. *)

val doc_freq : t -> string -> int
(** Number of distinct documents containing [term]; 0 when absent. *)

val document_count : t -> int
val stats : t -> stats
val dictionary : t -> Dictionary.t
val stemmed : t -> bool

val iter_terms : t -> (string -> Postings.t -> unit) -> unit
(** Iterate every (term, posting list) pair in dictionary id order —
    the order terms were first interned. *)

(** {1 Serialization} *)

val save : t -> Buffer.t -> unit
(** Append the index's serialized form. *)

val load : Bytes.t -> int -> t * int
(** [load bytes off] is [(index, next_off)]; inverse of {!save}. *)

val load_buf : Codec.buf -> int -> t * int
(** Like {!load} over any {!Codec.buf}. Posting lists keep zero-copy
    views into the buffer — over an mmap'd image, block bytes decode
    in place and are never copied — and the dictionary is mapped
    lazily ({!Dictionary.of_mapped}): term strings and the probe
    table materialize on first lookup, so an open allocates nothing
    proportional to the term bytes. *)

val save_legacy : t -> Buffer.t -> unit
(** Serialize with the legacy varint posting payloads of TIXDB003
    images (via {!Postings_varint}); used by [Db.save_v3] so compat
    tests and benchmarks can produce genuine version-3 images. *)

val load_legacy : Bytes.t -> int -> t * int
(** Read a TIXDB003 index section, transparently re-encoding each
    posting list through the packed builder — the in-memory upgrade
    path of [Db.open_file]. *)

val terms_by_freq : t -> (string * int) list
(** All terms with their collection frequencies, most frequent
    first. Used by the benchmark harness to select query terms by
    frequency, as the paper's experiments do. *)
