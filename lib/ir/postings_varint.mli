(** The legacy varint-delta posting codec (image format TIXDB003).

    {!Postings} packs each 128-occurrence block to fixed bit widths;
    this module keeps the previous continuous varint stream alive for
    three jobs: decoding TIXDB003 images during the transparent
    in-memory upgrade, writing such images ([Db.save_v3]) for compat
    tests and open-latency benchmarks, and serving as the independent
    oracle/baseline the packed codec is property-tested and benched
    against. Semantics mirror {!Postings} exactly. *)

type occ = Postings.occ = { doc : int; node : int; pos : int }

val block_size : int

type builder

val builder : unit -> builder
val add : builder -> occ -> unit

type t

val freeze : builder -> t
val length : t -> int
val byte_size : t -> int
val blocks : t -> int
val max_tf : t -> int

type cursor

val cursor : t -> cursor
val next : cursor -> occ option
val reset : cursor -> unit
val seek_doc : cursor -> int -> occ option
val seek_pos : cursor -> doc:int -> pos:int -> occ option

val iter : (occ -> unit) -> t -> unit

val scan : t -> (int -> int -> int -> unit) -> unit
(** Allocation-free sequential decode, mirroring {!Postings.scan} —
    the baseline side of the codec benchmarks. *)

val to_list : t -> occ list
val of_list : occ list -> t

val serialize : t -> string
val deserialize : count:int -> string -> t

val to_packed : t -> Postings.t
(** Re-encode through the packed builder (TIXDB003 upgrade path). *)

val of_packed : Postings.t -> t
(** Re-encode a packed list as varint (TIXDB003 writer path). *)
