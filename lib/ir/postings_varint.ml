(* The pre-TIXDB004 posting codec: one continuous varint-delta stream
   with per-block decoder snapshots (doc-delta varint, zigzag
   node-delta, pos-delta varint per occurrence). Retained verbatim as

     - the reader behind the transparent in-memory upgrade of
       TIXDB003 images (and the writer behind [Db.save_v3], which
       compat tests and benchmarks use to produce such images),
     - the baseline the decode-throughput bench family compares the
       packed frame-of-reference codec against,
     - an independent oracle for the packed codec's property tests.

   The occurrence type is shared with {!Postings} so lists convert
   without copying records. *)

type occ = Postings.occ = { doc : int; node : int; pos : int }

let block_size = Postings.block_size

type skip = {
  sk_off : int;
  sk_prev_doc : int;
  sk_prev_node : int;
  sk_prev_pos : int;
  sk_first_doc : int;
  sk_first_pos : int;
  sk_max_node : int;
  sk_max_tf : int;
}

type builder = {
  buf : Buffer.t;
  mutable count : int;
  mutable last_doc : int;
  mutable last_node : int;
  mutable last_pos : int;
  mutable rev_skips : skip list;
  mutable blk_max_node : int;
  mutable run_doc : int;
  mutable run_count : int;
  mutable run_first_block : int;
  mutable rev_runs : (int * int * int) list;
}

let builder () =
  {
    buf = Buffer.create 64;
    count = 0;
    last_doc = 0;
    last_node = 0;
    last_pos = 0;
    rev_skips = [];
    blk_max_node = 0;
    run_doc = -1;
    run_count = 0;
    run_first_block = 0;
    rev_runs = [];
  }

let close_run b =
  if b.run_count > 0 then
    b.rev_runs <-
      (b.run_first_block, (b.count - 1) / block_size, b.run_count)
      :: b.rev_runs

let add b occ =
  if occ.doc < b.last_doc
     || (occ.doc = b.last_doc && b.count > 0 && occ.pos < b.last_pos)
  then invalid_arg "Postings_varint.add: occurrences out of order";
  if b.count mod block_size = 0 then begin
    (match b.rev_skips with
    | sk :: rest when b.count > 0 ->
      b.rev_skips <- { sk with sk_max_node = b.blk_max_node } :: rest
    | _ -> ());
    b.rev_skips <-
      {
        sk_off = Buffer.length b.buf;
        sk_prev_doc = b.last_doc;
        sk_prev_node = b.last_node;
        sk_prev_pos = b.last_pos;
        sk_first_doc = occ.doc;
        sk_first_pos = occ.pos;
        sk_max_node = occ.node;
        sk_max_tf = 0;
      }
      :: b.rev_skips;
    b.blk_max_node <- occ.node
  end;
  if occ.doc <> b.last_doc then begin
    Codec.add_varint b.buf (occ.doc - b.last_doc);
    b.last_node <- 0;
    b.last_pos <- 0
  end
  else Codec.add_varint b.buf 0;
  Codec.add_zigzag b.buf (occ.node - b.last_node);
  Codec.add_varint b.buf (occ.pos - b.last_pos);
  if occ.doc <> b.run_doc then begin
    close_run b;
    b.run_doc <- occ.doc;
    b.run_count <- 1;
    b.run_first_block <- b.count / block_size
  end
  else b.run_count <- b.run_count + 1;
  if occ.node > b.blk_max_node then b.blk_max_node <- occ.node;
  b.last_doc <- occ.doc;
  b.last_node <- occ.node;
  b.last_pos <- occ.pos;
  b.count <- b.count + 1

type t = {
  data : Bytes.t;
  count : int;
  skips : skip array;
  max_tf : int;
}

let freeze b =
  close_run b;
  b.run_count <- 0;
  (match b.rev_skips with
  | sk :: rest when b.count > 0 ->
    b.rev_skips <- { sk with sk_max_node = b.blk_max_node } :: rest
  | _ -> ());
  let skips = Array.of_list (List.rev b.rev_skips) in
  let tmp = Array.map (fun sk -> sk.sk_max_tf) skips in
  List.iter
    (fun (b0, b1, tf) ->
      for i = b0 to b1 do
        if tf > tmp.(i) then tmp.(i) <- tf
      done)
    b.rev_runs;
  let skips = Array.mapi (fun i sk -> { sk with sk_max_tf = tmp.(i) }) skips in
  let max_tf = Array.fold_left (fun m sk -> max m sk.sk_max_tf) 0 skips in
  { data = Buffer.to_bytes b.buf; count = b.count; skips; max_tf }

let length t = t.count
let byte_size t = Bytes.length t.data
let blocks t = Array.length t.skips
let max_tf t = t.max_tf

type cursor = {
  list : t;
  mutable off : int;
  mutable seen : int;
  mutable doc : int;
  mutable node : int;
  mutable pos : int;
}

let cursor list = { list; off = 0; seen = 0; doc = 0; node = 0; pos = 0 }

let next c =
  if c.seen >= c.list.count then None
  else begin
    let doc_delta, off = Codec.read_varint c.list.data c.off in
    if doc_delta <> 0 then begin
      c.doc <- c.doc + doc_delta;
      c.node <- 0;
      c.pos <- 0
    end;
    let node_delta, off = Codec.read_zigzag c.list.data off in
    let pos_delta, off = Codec.read_varint c.list.data off in
    c.node <- c.node + node_delta;
    c.pos <- c.pos + pos_delta;
    c.off <- off;
    c.seen <- c.seen + 1;
    Some { doc = c.doc; node = c.node; pos = c.pos }
  end

let reset c =
  c.off <- 0;
  c.seen <- 0;
  c.doc <- 0;
  c.node <- 0;
  c.pos <- 0

let seek_pos c ~doc ~pos =
  let t = c.list in
  let nsk = Array.length t.skips in
  if nsk > 1 && c.seen < t.count then begin
    let cur_block = c.seen / block_size in
    let le j =
      let sk = t.skips.(j) in
      sk.sk_first_doc < doc || (sk.sk_first_doc = doc && sk.sk_first_pos <= pos)
    in
    let lo = ref (cur_block + 1) and hi = ref (nsk - 1) and best = ref (-1) in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if le mid then begin
        best := mid;
        lo := mid + 1
      end
      else hi := mid - 1
    done;
    if !best > cur_block then begin
      let sk = t.skips.(!best) in
      c.off <- sk.sk_off;
      c.seen <- !best * block_size;
      c.doc <- sk.sk_prev_doc;
      c.node <- sk.sk_prev_node;
      c.pos <- sk.sk_prev_pos
    end
  end;
  let rec scan () =
    match next c with
    | Some o when o.doc < doc || (o.doc = doc && o.pos < pos) -> scan ()
    | res -> res
  in
  scan ()

let seek_doc c doc = seek_pos c ~doc ~pos:0

let iter f t =
  let c = cursor t in
  let rec go () =
    match next c with
    | Some occ ->
      f occ;
      go ()
    | None -> ()
  in
  go ()

let scan t f =
  (* allocation-free sequential decode, mirroring {!Postings.scan}:
     the per-occurrence varint loop without the option/record boxing *)
  let off = ref 0 and doc = ref 0 and node = ref 0 and pos = ref 0 in
  for _ = 1 to t.count do
    let doc_delta, o = Codec.read_varint t.data !off in
    if doc_delta <> 0 then begin
      doc := !doc + doc_delta;
      node := 0;
      pos := 0
    end;
    let node_delta, o = Codec.read_zigzag t.data o in
    let pos_delta, o = Codec.read_varint t.data o in
    node := !node + node_delta;
    pos := !pos + pos_delta;
    off := o;
    f !doc !node !pos
  done

let to_list t =
  let acc = ref [] in
  iter (fun occ -> acc := occ :: !acc) t;
  List.rev !acc

let of_list occs =
  let b = builder () in
  List.iter (add b) occs;
  freeze b

let serialize t =
  let buf = Buffer.create (Bytes.length t.data + (Array.length t.skips * 12)) in
  Codec.add_varint buf (Array.length t.skips);
  let prev_off = ref 0 in
  Array.iter
    (fun sk ->
      Codec.add_varint buf (sk.sk_off - !prev_off);
      prev_off := sk.sk_off;
      Codec.add_varint buf sk.sk_prev_doc;
      Codec.add_varint buf sk.sk_prev_node;
      Codec.add_varint buf sk.sk_prev_pos;
      Codec.add_varint buf sk.sk_first_doc;
      Codec.add_varint buf sk.sk_first_pos;
      Codec.add_varint buf sk.sk_max_node;
      Codec.add_varint buf sk.sk_max_tf)
    t.skips;
  Codec.add_varint buf (Bytes.length t.data);
  Buffer.add_bytes buf t.data;
  Buffer.contents buf

let deserialize ~count data =
  let bytes = Bytes.of_string data in
  let nsk, off = Codec.read_varint bytes 0 in
  let off = ref off in
  let prev_off = ref 0 in
  let skips =
    Array.init nsk (fun _ ->
        let rd () =
          let v, o = Codec.read_varint bytes !off in
          off := o;
          v
        in
        let d_off = rd () in
        let sk_off = !prev_off + d_off in
        prev_off := sk_off;
        let sk_prev_doc = rd () in
        let sk_prev_node = rd () in
        let sk_prev_pos = rd () in
        let sk_first_doc = rd () in
        let sk_first_pos = rd () in
        let sk_max_node = rd () in
        let sk_max_tf = rd () in
        {
          sk_off;
          sk_prev_doc;
          sk_prev_node;
          sk_prev_pos;
          sk_first_doc;
          sk_first_pos;
          sk_max_node;
          sk_max_tf;
        })
  in
  let len, off = Codec.read_varint bytes !off in
  if off + len > Bytes.length bytes then
    raise (Codec.Truncated "posting payload shorter than its header");
  let payload = Bytes.sub bytes off len in
  let max_tf = Array.fold_left (fun m sk -> max m sk.sk_max_tf) 0 skips in
  { data = payload; count; skips; max_tf }

(* Conversions between the two codecs, both going through the
   destination builder so every invariant (skip table, run-based
   max_tf) is recomputed rather than translated. *)

let to_packed t =
  let b = Postings.builder () in
  iter (Postings.add b) t;
  Postings.freeze b

let of_packed p =
  let b = builder () in
  Postings.iter (add b) p;
  freeze b
