type stats = {
  distinct_terms : int;
  total_occurrences : int;
  documents : int;
  bytes : int;
}

type per_term = {
  mutable build : Postings.builder option;
  mutable frozen : Postings.t option;
  mutable doc_freq : int;
  mutable last_doc : int;
}

type builder = {
  dict : Dictionary.t;
  mutable lists : per_term array;
  stem : bool;
  mutable docs : int;
  mutable occurrences : int;
}

type t = {
  dictionary : Dictionary.t;
  postings : Postings.t array;
  doc_freqs : int array;
  documents : int;
  total : int;
  is_stemmed : bool;
}

let builder ?(stem = false) () =
  {
    dict = Dictionary.create ();
    lists = Array.make 16 { build = None; frozen = None; doc_freq = 0; last_doc = -1 };
    stem;
    docs = 0;
    occurrences = 0;
  }

let fresh_per_term () =
  { build = Some (Postings.builder ()); frozen = None; doc_freq = 0;
    last_doc = -1 }

let per_term b id =
  let capacity = Array.length b.lists in
  if id >= capacity then begin
    let fresh =
      Array.make (max (capacity * 2) (id + 1))
        { build = None; frozen = None; doc_freq = 0; last_doc = -1 }
    in
    Array.blit b.lists 0 fresh 0 capacity;
    b.lists <- fresh
  end;
  if b.lists.(id).build = None && b.lists.(id).frozen = None then
    b.lists.(id) <- fresh_per_term ();
  b.lists.(id)

let normalize b term = if b.stem then Stemmer.stem term else term

let add_normalized_occurrence b ~doc ~node ~term ~pos =
  let id = Dictionary.intern b.dict term in
  let pt = per_term b id in
  (match pt.build with
  | Some pb -> Postings.add pb { Postings.doc; node; pos }
  | None -> assert false (* builders are never frozen before [freeze] *));
  if pt.last_doc <> doc then begin
    pt.doc_freq <- pt.doc_freq + 1;
    pt.last_doc <- doc
  end;
  if doc >= b.docs then b.docs <- doc + 1;
  b.occurrences <- b.occurrences + 1

let add_occurrence b ~doc ~node ~term ~pos =
  add_normalized_occurrence b ~doc ~node ~term:(normalize b term) ~pos

let index_text b ~doc ~node ~start_pos text =
  Tokenizer.fold ~start_pos
    (fun ~acc:next (tok : Token.t) ->
      add_occurrence b ~doc ~node ~term:tok.term ~pos:tok.pos;
      max next (tok.pos + 1))
    start_pos text

let freeze b =
  let n = Dictionary.size b.dict in
  let postings =
    Array.init n (fun id ->
        match b.lists.(id).build with
        | Some pb -> Postings.freeze pb
        | None -> Postings.of_list [])
  in
  let doc_freqs = Array.init n (fun id -> b.lists.(id).doc_freq) in
  {
    dictionary = b.dict;
    postings;
    doc_freqs;
    documents = b.docs;
    total = b.occurrences;
    is_stemmed = b.stem;
  }

let normalize_q t term =
  let term = String.lowercase_ascii term in
  if t.is_stemmed then Stemmer.stem term else term

let lookup t term =
  match Dictionary.find t.dictionary (normalize_q t term) with
  | Some id -> Some t.postings.(id)
  | None -> None

let cursor t term = Option.map Postings.cursor (lookup t term)

let collection_freq t term =
  match lookup t term with Some p -> Postings.length p | None -> 0

let doc_freq t term =
  match Dictionary.find t.dictionary (normalize_q t term) with
  | Some id -> t.doc_freqs.(id)
  | None -> 0

let document_count t = t.documents
let dictionary t = t.dictionary
let stemmed t = t.is_stemmed

let iter_terms t f =
  for id = 0 to Array.length t.postings - 1 do
    f (Dictionary.term t.dictionary id) t.postings.(id)
  done

let stats t =
  {
    distinct_terms = Array.length t.postings;
    total_occurrences = t.total;
    documents = t.documents;
    bytes = Array.fold_left (fun acc p -> acc + Postings.byte_size p) 0 t.postings;
  }

let terms_by_freq t =
  let all = ref [] in
  Dictionary.iter
    (fun term id -> all := (term, Postings.length t.postings.(id)) :: !all)
    t.dictionary;
  List.sort (fun (_, a) (_, b) -> compare b a) !all

let add_string buf s =
  Codec.add_varint buf (String.length s);
  Buffer.add_string buf s

let save t buf =
  Codec.add_varint buf (if t.is_stemmed then 1 else 0);
  Codec.add_varint buf t.documents;
  Codec.add_varint buf t.total;
  let n = Array.length t.postings in
  Codec.add_varint buf n;
  for id = 0 to n - 1 do
    add_string buf (Dictionary.term t.dictionary id);
    Codec.add_varint buf t.doc_freqs.(id);
    Codec.add_varint buf (Postings.length t.postings.(id));
    add_string buf (Postings.serialize t.postings.(id))
  done

(* [decode_postings] parses one term's posting payload occupying
   [off .. off + len) of [buf]; the default keeps a zero-copy packed
   view ({!Postings.deserialize_buf}), the legacy loader substitutes
   the varint decode + re-pack of the TIXDB003 upgrade path.

   With [~lazy_dict:true] the term strings are never materialized:
   only each term's byte range is recorded and the dictionary is a
   mapped view over [buf] ({!Dictionary.of_mapped}) whose strings and
   probe table build lazily on first use — over an mmap'd image the
   open allocates nothing proportional to the term bytes. *)
let load_gen ~lazy_dict ~decode_postings buf off =
  let stemmed, off = Codec.read_varint_buf buf off in
  let documents, off = Codec.read_varint_buf buf off in
  let total, off = Codec.read_varint_buf buf off in
  let n, off = Codec.read_varint_buf buf off in
  let offs = Array.make (max n 1) 0 in
  let lens = Array.make (max n 1) 0 in
  let eager = if lazy_dict then None else Some (Dictionary.create ()) in
  let postings = Array.make n (Postings.of_list []) in
  let doc_freqs = Array.make n 0 in
  let off = ref off in
  for id = 0 to n - 1 do
    let tlen, o = Codec.read_varint_buf buf !off in
    if tlen < 0 || o + tlen > Codec.buf_length buf then
      raise (Codec.Truncated "term string shorter than its header");
    offs.(id) <- o;
    lens.(id) <- tlen;
    (match eager with
    | Some d ->
      let interned = Dictionary.intern d (Codec.buf_sub_string buf o tlen) in
      assert (interned = id)
    | None -> ());
    let o = o + tlen in
    let df, o = Codec.read_varint_buf buf o in
    let count, o = Codec.read_varint_buf buf o in
    let len, o = Codec.read_varint_buf buf o in
    if len < 0 || o + len > Codec.buf_length buf then
      raise (Codec.Truncated "posting payload shorter than its header");
    postings.(id) <- decode_postings buf ~count ~off:o ~len;
    doc_freqs.(id) <- df;
    off := o + len
  done;
  let dictionary =
    match eager with
    | Some d -> d
    | None -> Dictionary.of_mapped buf ~offs ~lens
  in
  ( {
      dictionary;
      postings;
      doc_freqs;
      documents;
      total;
      is_stemmed = stemmed = 1;
    },
    !off )

let decode_packed buf ~count ~off ~len =
  let p, pend = Postings.deserialize_buf ~count buf off in
  if pend > off + len then
    raise (Codec.Truncated "posting payload overruns its framing");
  p

let load_buf buf off = load_gen ~lazy_dict:true ~decode_postings:decode_packed buf off

let load bytes off = load_buf (Codec.buf_of_bytes bytes) off

(* ------------------------------------------------------------------ *)
(* TIXDB003 compatibility: same outer framing, but each payload is the
   legacy varint stream. Reading converts term by term through the
   packed builder (the transparent in-memory upgrade); writing
   re-encodes packed lists as varint so tests and benchmarks can
   produce genuine version-3 images. *)

let load_legacy bytes off =
  let decode buf ~count ~off ~len =
    Postings_varint.to_packed
      (Postings_varint.deserialize ~count (Codec.buf_sub_string buf off len))
  in
  (* the upgrade decodes every byte anyway: keep the dictionary eager *)
  load_gen ~lazy_dict:false ~decode_postings:decode (Codec.buf_of_bytes bytes) off

let save_legacy t buf =
  Codec.add_varint buf (if t.is_stemmed then 1 else 0);
  Codec.add_varint buf t.documents;
  Codec.add_varint buf t.total;
  let n = Array.length t.postings in
  Codec.add_varint buf n;
  for id = 0 to n - 1 do
    add_string buf (Dictionary.term t.dictionary id);
    Codec.add_varint buf t.doc_freqs.(id);
    Codec.add_varint buf (Postings.length t.postings.(id));
    add_string buf
      (Postings_varint.serialize (Postings_varint.of_packed t.postings.(id)))
  done
