(** The term dictionary: maps terms to dense integer ids.

    Two backings share one interface: the build-time in-memory
    dictionary ({!create}/{!intern}), and a read-only {e mapped}
    dictionary over an image buffer ({!of_mapped}) whose term strings
    and probe table materialize lazily — opening an image allocates
    nothing proportional to the term bytes. *)

type term_id = int

type t

val create : unit -> t

val of_mapped : Codec.buf -> offs:int array -> lens:int array -> t
(** A read-only dictionary whose term [id] occupies
    [offs.(id) .. offs.(id) + lens.(id)) of the buffer. Terms
    materialize on first access; the lookup table is built under a
    lock on the first {!find}. Safe to share across domains. *)

val intern : t -> string -> term_id
(** [intern d term] returns the id of [term], allocating one if the
    term is new. Raises [Invalid_argument] on a mapped dictionary. *)

val find : t -> string -> term_id option
val term : t -> term_id -> string
val size : t -> int
(** Number of distinct terms. *)

val iter : (string -> term_id -> unit) -> t -> unit
(** On a mapped dictionary, iterates in id order (materializing every
    term); on an in-memory one, in hash-table order. *)

val is_mapped : t -> bool
