(* Collection statistics for cost-based access-method planning.

   The statistics are deliberately small: corpus-level aggregates, a
   per-tag element count vector, and a path synopsis — a trie of tag
   paths annotated with element counts (a strong-dataguide shape).
   They are computed once at index time, serialized into an optional
   image section, and read by the planner to estimate operator
   cardinalities without touching postings or element pages. *)

type syn_node = {
  syn_tag : int;
  mutable syn_count : int;  (* elements at exactly this tag path *)
  mutable syn_size : int;  (* elements in subtrees rooted here (self incl.) *)
  mutable syn_children : syn_node list;  (* reverse insertion order *)
}

type t = {
  documents : int;
  elements : int;
  occurrences : int;
  distinct_terms : int;
  depth_sum : int;  (* sum of element levels, for the mean depth *)
  tag_counts : int array;  (* indexed by catalog tag id *)
  synopsis : syn_node list;  (* root paths, reverse insertion order *)
  synopsis_nodes : int;
  synopsis_complete : bool;
      (* false when the node budget truncated the trie: estimates
         from it are lower bounds, so consumers fall back to
         [tag_counts] for tags the synopsis missed *)
}

let default_max_nodes = 4096

type builder = {
  b_documents : int;
  b_occurrences : int;
  b_distinct_terms : int;
  b_tag_count : int;
  b_max_nodes : int;
  mutable b_elements : int;
  mutable b_depth_sum : int;
  mutable b_tag_counts : int array;
  mutable b_roots : syn_node list;
  mutable b_nodes : int;
  mutable b_complete : bool;
  (* stack of (level, node option) for currently open ancestors; the
     node is [None] below a truncation point *)
  mutable b_stack : (int * syn_node option) list;
}

let builder ?(max_nodes = default_max_nodes) ~documents ~occurrences
    ~distinct_terms ~tag_count () =
  {
    b_documents = documents;
    b_occurrences = occurrences;
    b_distinct_terms = distinct_terms;
    b_tag_count = tag_count;
    b_max_nodes = max_nodes;
    b_elements = 0;
    b_depth_sum = 0;
    b_tag_counts = Array.make (max tag_count 1) 0;
    b_roots = [];
    b_nodes = 0;
    b_complete = true;
    b_stack = [];
  }

let find_child children tag =
  List.find_opt (fun c -> c.syn_tag = tag) children

(* Elements must arrive in document preorder (the element store's
   scan order); [level] nests the trie exactly as the documents do. *)
let add_element b ~tag ~level =
  b.b_elements <- b.b_elements + 1;
  b.b_depth_sum <- b.b_depth_sum + level;
  if tag >= 0 then begin
    if tag >= Array.length b.b_tag_counts then begin
      let fresh = Array.make (max (tag + 1) (2 * Array.length b.b_tag_counts)) 0 in
      Array.blit b.b_tag_counts 0 fresh 0 (Array.length b.b_tag_counts);
      b.b_tag_counts <- fresh
    end;
    b.b_tag_counts.(tag) <- b.b_tag_counts.(tag) + 1
  end;
  (* close ancestors the preorder has left *)
  let rec pop () =
    match b.b_stack with
    | (l, _) :: rest when l >= level ->
      b.b_stack <- rest;
      pop ()
    | _ -> ()
  in
  pop ();
  (* every open ancestor's subtree grows by one *)
  List.iter
    (fun (_, n) -> match n with Some n -> n.syn_size <- n.syn_size + 1 | None -> ())
    b.b_stack;
  let parent = match b.b_stack with (_, p) :: _ -> p | [] -> None in
  let node =
    match b.b_stack, parent with
    | [], _ -> begin
      match find_child b.b_roots tag with
      | Some n -> Some n
      | None ->
        if b.b_nodes >= b.b_max_nodes then begin
          b.b_complete <- false;
          None
        end
        else begin
          let n = { syn_tag = tag; syn_count = 0; syn_size = 0; syn_children = [] } in
          b.b_roots <- n :: b.b_roots;
          b.b_nodes <- b.b_nodes + 1;
          Some n
        end
    end
    | _ :: _, None -> None (* below a truncation point *)
    | _ :: _, Some p -> begin
      match find_child p.syn_children tag with
      | Some n -> Some n
      | None ->
        if b.b_nodes >= b.b_max_nodes then begin
          b.b_complete <- false;
          None
        end
        else begin
          let n = { syn_tag = tag; syn_count = 0; syn_size = 0; syn_children = [] } in
          p.syn_children <- n :: p.syn_children;
          b.b_nodes <- b.b_nodes + 1;
          Some n
        end
    end
  in
  (match node with
  | Some n ->
    n.syn_count <- n.syn_count + 1;
    n.syn_size <- n.syn_size + 1
  | None -> ());
  b.b_stack <- (level, node) :: b.b_stack

let freeze b =
  {
    documents = b.b_documents;
    elements = b.b_elements;
    occurrences = b.b_occurrences;
    distinct_terms = b.b_distinct_terms;
    depth_sum = b.b_depth_sum;
    tag_counts = Array.sub b.b_tag_counts 0 (max b.b_tag_count 1);
    synopsis = b.b_roots;
    synopsis_nodes = b.b_nodes;
    synopsis_complete = b.b_complete;
  }

(* ------------------------------------------------------------------ *)
(* Estimation *)

let tag_count t ~tag =
  if tag >= 0 && tag < Array.length t.tag_counts then t.tag_counts.(tag) else 0

let avg_depth t =
  if t.elements = 0 then 1.0
  else 1.0 +. (float_of_int t.depth_sum /. float_of_int t.elements)

(* Fraction of all elements lying inside subtrees rooted at [tag].
   Nested same-tag subtrees are counted once (outermost only); a
   truncated synopsis yields a lower bound, so callers treat missing
   tags via [tag_count]. *)
let subtree_fraction t ~tag =
  if t.elements = 0 then 0.0
  else begin
    let total = ref 0 in
    let rec walk n =
      if n.syn_tag = tag then total := !total + n.syn_size
      else List.iter walk n.syn_children
    in
    List.iter walk t.synopsis;
    min 1.0 (float_of_int !total /. float_of_int t.elements)
  end

let pp ppf t =
  Format.fprintf ppf
    "docs=%d elements=%d occ=%d terms=%d avg_depth=%.2f synopsis=%d%s"
    t.documents t.elements t.occurrences t.distinct_terms (avg_depth t)
    t.synopsis_nodes
    (if t.synopsis_complete then "" else " (truncated)")

(* ------------------------------------------------------------------ *)
(* Serialization: plain varints; the section is small (a few KB even
   for large corpora), so it is decoded eagerly at open. *)

let save t buf =
  Codec.add_varint buf t.documents;
  Codec.add_varint buf t.elements;
  Codec.add_varint buf t.occurrences;
  Codec.add_varint buf t.distinct_terms;
  Codec.add_varint buf t.depth_sum;
  Codec.add_varint buf (Array.length t.tag_counts);
  Array.iter (Codec.add_varint buf) t.tag_counts;
  Codec.add_varint buf (if t.synopsis_complete then 1 else 0);
  Codec.add_varint buf t.synopsis_nodes;
  let rec save_node n =
    Codec.add_varint buf n.syn_tag;
    Codec.add_varint buf n.syn_count;
    Codec.add_varint buf n.syn_size;
    Codec.add_varint buf (List.length n.syn_children);
    List.iter save_node n.syn_children
  in
  Codec.add_varint buf (List.length t.synopsis);
  List.iter save_node t.synopsis

let load_buf buf off =
  let documents, off = Codec.read_varint_buf buf off in
  let elements, off = Codec.read_varint_buf buf off in
  let occurrences, off = Codec.read_varint_buf buf off in
  let distinct_terms, off = Codec.read_varint_buf buf off in
  let depth_sum, off = Codec.read_varint_buf buf off in
  let ntags, off = Codec.read_varint_buf buf off in
  let tag_counts = Array.make (max ntags 1) 0 in
  let off = ref off in
  for i = 0 to ntags - 1 do
    let v, o = Codec.read_varint_buf buf !off in
    tag_counts.(i) <- v;
    off := o
  done;
  let complete, o = Codec.read_varint_buf buf !off in
  let synopsis_nodes, o = Codec.read_varint_buf buf o in
  off := o;
  let rec load_node () =
    let tag, o = Codec.read_varint_buf buf !off in
    let count, o = Codec.read_varint_buf buf o in
    let size, o = Codec.read_varint_buf buf o in
    let nchildren, o = Codec.read_varint_buf buf o in
    off := o;
    let children = List.init nchildren (fun _ -> load_node ()) in
    { syn_tag = tag; syn_count = count; syn_size = size; syn_children = children }
  in
  let nroots, o = Codec.read_varint_buf buf !off in
  off := o;
  let synopsis = List.init nroots (fun _ -> load_node ()) in
  ( {
      documents;
      elements;
      occurrences;
      distinct_terms;
      depth_sum;
      tag_counts = (if ntags = 0 then [||] else tag_counts);
      synopsis;
      synopsis_nodes;
      synopsis_complete = complete = 1;
    },
    !off )

(* ------------------------------------------------------------------ *)
(* Feedback: per-snapshot correction table fed by observed operator
   cardinalities. Estimates are multiplied by the stored correction;
   a materially changed correction bumps [generation], which plan
   caches fold into their keys so stale plans are re-costed. *)

module Feedback = struct
  type entry = { mutable corr : float; mutable seen : int }

  type t = {
    lock : Mutex.t;
    table : (string, entry) Hashtbl.t;
    mutable gen : int;
    mutable observed : int;
  }

  let create () =
    { lock = Mutex.create (); table = Hashtbl.create 32; gen = 0; observed = 0 }

  let generation t = Mutex.protect t.lock (fun () -> t.gen)
  let observations t = Mutex.protect t.lock (fun () -> t.observed)

  let clamp v = Float.max (1. /. 64.) (Float.min 64. v)

  (* A correction change is material when it crosses a factor-2
     boundary against the previous value: cost models are order-of-
     magnitude instruments, so smaller drifts never invalidate
     plans. *)
  let material old_c new_c = new_c >= 2. *. old_c || new_c <= old_c /. 2.

  let observe t ~key ~est ~actual =
    let ratio = clamp (Float.max actual 1. /. Float.max est 1.) in
    Mutex.protect t.lock (fun () ->
        t.observed <- t.observed + 1;
        match Hashtbl.find_opt t.table key with
        | Some e ->
          let next = clamp ((0.5 *. e.corr) +. (0.5 *. ratio)) in
          if material e.corr next then t.gen <- t.gen + 1;
          e.corr <- next;
          e.seen <- e.seen + 1
        | None ->
          (* the first observation establishes the key's baseline
             without invalidating plans: every fresh query would
             otherwise bump the generation once and flush every
             cached plan on its first execution *)
          Hashtbl.replace t.table key { corr = ratio; seen = 1 })

  let correction t ~key =
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some e -> e.corr
        | None -> 1.0)

  (* Persistence: corrections survive a snapshot republish or a
     server restart, so warmed plan corrections are not relearned
     from scratch. The generation restarts at 0 — the new snapshot's
     plan cache is empty anyway, so nothing stale can be revived. *)

  let save_magic = "TIXFB001"

  let to_string t =
    Mutex.protect t.lock (fun () ->
        let buf = Buffer.create 256 in
        Buffer.add_string buf save_magic;
        Codec.add_varint buf (Hashtbl.length t.table);
        Hashtbl.iter
          (fun key e ->
            Codec.add_varint buf (String.length key);
            Buffer.add_string buf key;
            Buffer.add_int64_be buf (Int64.bits_of_float e.corr);
            Codec.add_varint buf e.seen)
          t.table;
        Buffer.contents buf)

  let of_string s =
    let mlen = String.length save_magic in
    if String.length s < mlen || String.sub s 0 mlen <> save_magic then None
    else begin
      match
        let bytes = Bytes.unsafe_of_string s in
        let n, off = Codec.read_varint bytes mlen in
        if n < 0 then raise (Codec.Truncated "feedback entry count");
        let t = create () in
        let off = ref off in
        let total_seen = ref 0 in
        for _ = 1 to n do
          let klen, o = Codec.read_varint bytes !off in
          if klen < 0 || o + klen + 8 > String.length s then
            raise (Codec.Truncated "feedback key runs past the buffer");
          let key = String.sub s o klen in
          let corr = Int64.float_of_bits (Bytes.get_int64_be bytes (o + klen)) in
          let seen, o' = Codec.read_varint bytes (o + klen + 8) in
          off := o';
          total_seen := !total_seen + max 1 seen;
          Hashtbl.replace t.table key
            { corr = clamp corr; seen = max 1 seen }
        done;
        t.observed <- !total_seen;
        t
      with
      | t -> Some t
      | exception Codec.Truncated _ -> None
      | exception Invalid_argument _ -> None
    end
end
