(** The shard manifest: which document ranges live where.

    A corpus of [N] documents is split into abutting ranges
    [[lo,hi)]; each range is served by one or more replica [tixd]
    endpoints over an image holding just those documents, renumbered
    densely from 0. The coordinator maps a shard-local document id
    back into the global space as [lo + local] — which is exactly the
    inverse of the dense renumbering {!Store.Db.compact} performs
    when [tixdb shard] extracts the range — so merged answers carry
    the same ids a single-node database over the whole corpus would.

    Manifests are one JSON object
    [{"version":1,"total_docs":n,"shards":[{"lo":..,"hi":..,
    "image":..,"replicas":[{"host":..,"port":..},..]},..]}] and are
    validated structurally on load: ascending, non-empty, gap-free
    ranges starting at 0, at least one replica per shard. *)

type endpoint = { host : string; port : int }

val endpoint_to_string : endpoint -> string
(** ["host:port"]. *)

type shard = {
  lo : int;  (** first global document id of the range *)
  hi : int;  (** one past the last global document id *)
  image : string;  (** image file serving the range (relative path) *)
  replicas : endpoint list;  (** failover order: first is primary *)
}

type t

val make : shard list -> (t, string) result
(** Validate and seal a manifest. [Error] names the violated
    invariant (gap, overlap, empty range, missing endpoints). *)

val shards : t -> shard list
val shard : t -> int -> shard
val shard_count : t -> int

val total_docs : t -> int
(** [hi] of the last shard — the size of the global id space. *)

val to_json : t -> Service.Json.t
val of_json : Service.Json.t -> (t, string) result

val save : t -> string -> unit
val load : string -> (t, string) result

val ranges : docs:int -> shards:int -> (int * int) list
(** Split [docs] documents into at most [shards] abutting ranges,
    sizes differing by at most one ([docs mod shards] leading ranges
    get the extra document). Empty when either argument is [<= 0];
    never returns an empty range. *)
