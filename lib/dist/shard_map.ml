type endpoint = { host : string; port : int }

let endpoint_to_string e = Printf.sprintf "%s:%d" e.host e.port

type shard = {
  lo : int;
  hi : int;
  image : string;
  replicas : endpoint list;
}

type t = { shards : shard array }

let shards t = Array.to_list t.shards
let shard_count t = Array.length t.shards
let total_docs t =
  if Array.length t.shards = 0 then 0
  else t.shards.(Array.length t.shards - 1).hi

let shard t i = t.shards.(i)

(* The invariants every manifest must satisfy before a coordinator
   will serve it: shards in ascending doc order, ranges non-empty,
   abutting (no gap, no overlap), starting at 0, and every shard
   reachable through at least one endpoint. Deterministic merge
   depends on all of them: global ids are [lo + local], so a gap or
   overlap silently corrupts the id space instead of failing. *)
let validate shards =
  let rec go expected_lo = function
    | [] -> Ok ()
    | s :: rest ->
      if s.lo <> expected_lo then
        Error
          (Printf.sprintf
             "shard [%d,%d) breaks coverage: expected range to start at %d"
             s.lo s.hi expected_lo)
      else if s.hi <= s.lo then
        Error (Printf.sprintf "shard [%d,%d) is empty" s.lo s.hi)
      else if s.replicas = [] then
        Error (Printf.sprintf "shard [%d,%d) has no endpoints" s.lo s.hi)
      else go s.hi rest
  in
  match shards with
  | [] -> Error "manifest has no shards"
  | ss -> go 0 ss

let make shards =
  match validate shards with
  | Ok () -> Ok { shards = Array.of_list shards }
  | Error _ as e -> e

(* ------------------------------------------------------------------ *)
(* JSON manifest *)

module Json = Service.Json

let endpoint_to_json e =
  Json.Obj [ ("host", Json.String e.host); ("port", Json.Int e.port) ]

let shard_to_json s =
  Json.Obj
    [
      ("lo", Json.Int s.lo);
      ("hi", Json.Int s.hi);
      ("image", Json.String s.image);
      ("replicas", Json.List (List.map endpoint_to_json s.replicas));
    ]

let to_json t =
  Json.Obj
    [
      ("version", Json.Int 1);
      ("total_docs", Json.Int (total_docs t));
      ("shards", Json.List (List.map shard_to_json (shards t)));
    ]

let ( let* ) = Result.bind

let field name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "manifest: missing or ill-typed field %S" name)

let endpoint_of_json j =
  let* host = field "host" Json.to_string_opt j in
  let* port = field "port" Json.to_int_opt j in
  Ok { host; port }

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
    let* y = f x in
    let* ys = map_result f rest in
    Ok (y :: ys)

let shard_of_json j =
  let* lo = field "lo" Json.to_int_opt j in
  let* hi = field "hi" Json.to_int_opt j in
  let* image = field "image" Json.to_string_opt j in
  let* eps = field "replicas" Json.to_list_opt j in
  let* replicas = map_result endpoint_of_json eps in
  Ok { lo; hi; image; replicas }

let of_json j =
  let* version = field "version" Json.to_int_opt j in
  if version <> 1 then
    Error (Printf.sprintf "manifest: unsupported version %d" version)
  else
    let* shard_list = field "shards" Json.to_list_opt j in
    let* shards = map_result shard_of_json shard_list in
    make shards

let save t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json t));
      output_char oc '\n')

let load path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error (Printf.sprintf "manifest: %s" e)
  | text -> begin
    match Json.parse text with
    | Error e -> Error (Printf.sprintf "manifest: bad JSON: %s" e)
    | Ok j -> of_json j
  end

(* Split [n] documents into [k] abutting ranges as evenly as
   possible: the first [n mod k] ranges get one extra document. *)
let ranges ~docs ~shards =
  if docs <= 0 || shards <= 0 then []
  else begin
    let shards = min shards docs in
    let base = docs / shards and extra = docs mod shards in
    let rec go lo i acc =
      if i = shards then List.rev acc
      else
        let hi = lo + base + if i < extra then 1 else 0 in
        go hi (i + 1) ((lo, hi) :: acc)
    in
    go 0 0 []
  end
