(** Scatter-gather query federation over document-sharded backends.

    The coordinator speaks the same NDJSON protocol as a single
    [tixd] — {!handle} plugs straight into
    {!Service.Server.start_handler} — and answers every read op by
    fanning out to the shards of a {!Shard_map.t} and merging
    deterministically:

    - {b query / search / phrase}: one concurrent wave over every
      shard; rows re-sort under {!Service.Engine.compare_row} with
      document ids lifted to the global space ([lo + local]), so the
      merged prefix is byte-identical to a single-node run — ties
      included. Interpreter trees concatenate in shard order (global
      document order). An engine plan's own row limit is re-applied
      after the gather.
    - {b ranked}: waves of [window] shards; after each wave the
      gathered k-th best score is published as θ and relayed to the
      remaining shards ({!Core.Merge.Theta}'s monotone contract), so
      late shards prune documents that provably cannot enter the
      top-k. [window = 0] (the default) contacts every shard in one
      latency-optimal wave; smaller windows trade latency for pruned
      work.

    Failures: each shard tries its replicas in rotation (the replica
    that answers stays active, so an outage is paid once, not per
    request). A query-level error from any shard is forwarded
    verbatim; shards whose every replica is unreachable leave the
    response flagged [{"degraded":true,"shards_unavailable":[..]}]
    over the surviving shards' merged answer; if no shard answers the
    response is an [unavailable] error. *)

type t

val create :
  ?window:int -> ?client:Client.t -> ?source:string -> Shard_map.t -> t
(** [window] is the ranked fan-out wave size (0 = all shards at
    once); [client] defaults to {!Client.create}[ ()]; [source] names
    the manifest in health output. *)

val handle : t -> Service.Protocol.request -> Service.Json.t
(** The coordinator's dispatch — serve it with
    {!Service.Server.start_handler}. Mutation ops are refused with
    [read_only]; [prepare]/[execute] are coordinator-local (the
    statement text is re-scattered as a plain query). *)

val client : t -> Client.t
val shard_map : t -> Shard_map.t

val degraded_served : t -> int
(** Responses served with the degraded flag since startup. *)
