module Json = Service.Json
module Protocol = Service.Protocol
module Engine = Service.Engine

let src = Logs.Src.create "tix.dist" ~doc:"distributed query coordinator"

module Log = (val Logs.src_log src)

type t = {
  map : Shard_map.t;
  client : Client.t;
  source : string;
  window : int;
  (* index of the replica currently serving each shard; failover
     rotates it so one dead primary costs one timeout, not one per
     request *)
  active : int Atomic.t array;
  degraded : int Atomic.t;
  prepared_lock : Mutex.t;
  prepared : (int, string) Hashtbl.t;
  prepared_ids : (string, int) Hashtbl.t;
  mutable next_prepared : int;
}

let create ?(window = 0) ?client ?(source = "manifest") map =
  let client = match client with Some c -> c | None -> Client.create () in
  {
    map;
    client;
    source;
    window;
    active = Array.init (Shard_map.shard_count map) (fun _ -> Atomic.make 0);
    degraded = Atomic.make 0;
    prepared_lock = Mutex.create ();
    prepared = Hashtbl.create 16;
    prepared_ids = Hashtbl.create 16;
    next_prepared = 1;
  }

let client t = t.client
let shard_map t = t.map
let degraded_served t = Atomic.get t.degraded

(* ------------------------------------------------------------------ *)
(* Shard I/O: replica failover + scatter *)

(* One request against shard [i]: start at the replica that served
   last time and rotate through the rest on failure. A replica that
   answers becomes the shard's active replica, so failover cost is
   paid once per outage, not per request. *)
let shard_request t i json =
  let shard = Shard_map.shard t.map i in
  let replicas = Array.of_list shard.Shard_map.replicas in
  let n = Array.length replicas in
  let start = Atomic.get t.active.(i) mod n in
  let rec go tried last_err =
    if tried = n then
      Error
        (Printf.sprintf "shard %d [%d,%d): %s" i shard.Shard_map.lo
           shard.Shard_map.hi
           (Option.value ~default:"no replicas" last_err))
    else begin
      let r = (start + tried) mod n in
      match Client.request t.client replicas.(r) json with
      | Ok response ->
        if r <> Atomic.get t.active.(i) then begin
          Atomic.set t.active.(i) r;
          Log.info (fun m ->
              m "shard %d failed over to replica %s" i
                (Shard_map.endpoint_to_string replicas.(r)))
        end;
        Ok (replicas.(r), response)
      | Error e ->
        Log.debug (fun m ->
            m "shard %d replica %s: %s" i
              (Shard_map.endpoint_to_string replicas.(r))
              (Client.error_message e));
        go (tried + 1) (Some (Client.error_message e))
    end
  in
  go 0 None

(* Fan a request out to the given shards, one thread each; results
   come back indexed so merges can honour shard order. *)
let scatter t idxs make_json =
  let results = Array.make (List.length idxs) (0, Error "unset") in
  let threads =
    List.mapi
      (fun slot i ->
        Thread.create
          (fun () ->
            let outcome =
              try shard_request t i (make_json i)
              with e -> Error (Printexc.to_string e)
            in
            results.(slot) <- (i, outcome))
          ())
      idxs
  in
  List.iter Thread.join threads;
  Array.to_list results

(* ------------------------------------------------------------------ *)
(* Response decoding *)

let mem name conv ~default j =
  match Option.bind (Json.member name j) conv with
  | Some v -> v
  | None -> default

let row_of_json ~lo j : Engine.row =
  {
    tag = mem "tag" Json.to_string_opt ~default:"?" j;
    doc = lo + mem "doc" Json.to_int_opt ~default:0 j;
    start = mem "start" Json.to_int_opt ~default:(-1) j;
    score = mem "score" Json.to_float_opt ~default:0. j;
  }

type shard_result = {
  sr_shard : int;
  sr_endpoint : Shard_map.endpoint;
  sr_rows : Engine.row list;  (* doc ids already global *)
  sr_trees : string list;
  sr_total : int;
  sr_cached : bool;
  sr_steps : int;
  sr_plan : string option;
  sr_trace : Json.t option;
}

(* A shard's answer is either unreachable (infrastructure), a
   protocol-level error object (the query itself failed — every shard
   fails the same way, so one is forwarded verbatim), or a decoded
   result with document ids lifted into the global space. *)
type outcome =
  | Unreachable of int * string
  | Refused of int * Json.t
  | Answered of shard_result

let decode_outcome t (i, result) =
  match result with
  | Error msg -> Unreachable (i, msg)
  | Ok (endpoint, json) ->
    if not (mem "ok" Json.to_bool_opt ~default:false json) then Refused (i, json)
    else begin
      let lo = (Shard_map.shard t.map i).Shard_map.lo in
      let rows =
        mem "results" Json.to_list_opt ~default:[] json
        |> List.map (row_of_json ~lo)
      in
      let trees =
        mem "trees" Json.to_list_opt ~default:[] json
        |> List.filter_map Json.to_string_opt
      in
      Answered
        {
          sr_shard = i;
          sr_endpoint = endpoint;
          sr_rows = rows;
          sr_trees = trees;
          sr_total = mem "total" Json.to_int_opt ~default:0 json;
          sr_cached = mem "cached" Json.to_bool_opt ~default:false json;
          sr_steps = mem "steps_used" Json.to_int_opt ~default:0 json;
          sr_plan = Option.bind (Json.member "plan" json) Json.to_string_opt;
          sr_trace = Json.member "trace" json;
        }
    end

let rec span_of_json j : Core.Trace.span =
  {
    name = mem "op" Json.to_string_opt ~default:"?" j;
    input = mem "input" Json.to_int_opt ~default:(-1) j;
    output = mem "output" Json.to_int_opt ~default:(-1) j;
    est = mem "est" Json.to_int_opt ~default:(-1) j;
    gov_steps = mem "steps" Json.to_int_opt ~default:(-1) j;
    elapsed_ns = mem "elapsed_ns" Json.to_int_opt ~default:0 j;
    attrs =
      (match Json.member "attrs" j with
      | Some (Json.Obj fields) ->
        List.filter_map
          (fun (k, v) -> Option.map (fun s -> (k, s)) (Json.to_string_opt v))
          fields
      | _ -> []);
    children =
      mem "children" Json.to_list_opt ~default:[] j |> List.map span_of_json;
  }

(* EXPLAIN ANALYZE across the wire: each shard's span tree is grafted
   under a synthetic [Shard] node inside one [Scatter] root, so a
   traced distributed query reads as one tree from fan-out to leaf
   operator. *)
let scatter_span ~elapsed_ns ~output ~steps answered =
  let children =
    List.map
      (fun sr ->
        {
          Core.Trace.name = "Shard";
          input = -1;
          output = -1;
          est = -1;
          gov_steps = sr.sr_steps;
          elapsed_ns =
            (match sr.sr_trace with
            | Some tj -> (span_of_json tj).Core.Trace.elapsed_ns
            | None -> 0);
          attrs =
            [
              ("shard", string_of_int sr.sr_shard);
              ("endpoint", Shard_map.endpoint_to_string sr.sr_endpoint);
            ];
          children =
            (match sr.sr_trace with Some tj -> [ span_of_json tj ] | None -> []);
        })
      answered
  in
  {
    Core.Trace.name = "Scatter";
    input = List.length answered;
    output;
    est = -1;
    gov_steps = steps;
    elapsed_ns;
    attrs = [];
    children;
  }

(* ------------------------------------------------------------------ *)
(* Merging *)

let truncate k rows =
  match k with
  | None -> rows
  | Some k when k < 0 -> rows
  | Some k -> List.filteri (fun i _ -> i < k) rows

(* The engine plan's global row budget, recovered from its explain
   text (the "limit: N" line; costed plans append an estimate line
   after it, so parsing stops at the end of the line). Per-shard
   executions each apply it locally, so the gathered union can hold
   up to [shards * N] rows — the coordinator re-applies it to match
   the single-node answer. *)
let plan_limit plan =
  let marker = "limit: " in
  let mlen = String.length marker in
  let plen = String.length plan in
  let rec find i =
    if i + mlen > plen then None
    else if String.sub plan i mlen = marker then Some (i + mlen)
    else find (i + 1)
  in
  Option.bind (find 0) (fun start ->
      let stop =
        match String.index_from_opt plan start '\n' with
        | Some nl -> nl
        | None -> plen
      in
      int_of_string_opt (String.trim (String.sub plan start (stop - start))))

let sum f l = List.fold_left (fun acc x -> acc + f x) 0 l

(* Deterministic gather of per-shard answers into the single-node
   result. Rows re-sort under the engine's row order (score desc,
   global doc, start): each shard returned its local prefix of that
   order and global ids preserve per-shard doc order, so the union's
   top slice is exactly the single-node top slice — ties included.
   Interpreter trees concatenate in shard order, which is global
   document order. *)
let merge_answers ~k ~ranked_k ~trace ~t0 answered =
  let answered = List.sort (fun a b -> compare a.sr_shard b.sr_shard) answered in
  let rows =
    List.sort Engine.compare_row (List.concat_map (fun sr -> sr.sr_rows) answered)
  in
  let trees = List.concat_map (fun sr -> sr.sr_trees) answered in
  let plan = List.find_map (fun sr -> sr.sr_plan) answered in
  let steps = sum (fun sr -> sr.sr_steps) answered in
  (* the plan's own limit bounds both the row list and the reported
     total: min(L, sum of per-shard totals) equals the single-node
     total whether or not any shard saturated its local limit *)
  let limited = Option.bind plan plan_limit in
  let rows = truncate limited rows in
  let total =
    let s = sum (fun sr -> sr.sr_total) answered in
    match ranked_k, limited with
    | Some _, _ -> List.length (truncate ranked_k rows)
    | None, Some l -> min l s
    | None, None -> s
  in
  let rows = truncate ranked_k (truncate k rows) in
  let trees = truncate k trees in
  let elapsed = Unix.gettimeofday () -. t0 in
  {
    Engine.rows;
    trees;
    total;
    cached = answered <> [] && List.for_all (fun sr -> sr.sr_cached) answered;
    plan;
    timings = [ ("scatter", elapsed); ("total", elapsed) ];
    steps_used = steps;
    trace =
      (if trace then
         Some
           (scatter_span
              ~elapsed_ns:(int_of_float (elapsed *. 1e9))
              ~output:(List.length rows) ~steps answered)
       else None);
  }

(* ------------------------------------------------------------------ *)
(* Request execution *)

let all_shards t = List.init (Shard_map.shard_count t.map) Fun.id

(* Replace any client-supplied θ with the coordinator's current one
   (the client's seed is already folded into the relay state). *)
let json_with_theta base theta =
  match base, theta with
  | Json.Obj fields, Some th when th > neg_infinity ->
    let fields = List.filter (fun (name, _) -> name <> "theta") fields in
    Json.Obj (fields @ [ ("theta", Json.Float th) ])
  | j, _ -> j

(* Partition scatter outcomes; a Refused (well-formed error response)
   anywhere wins — the query itself is at fault and every shard
   refuses identically, so the lowest shard's error is the answer. *)
let split_outcomes outcomes =
  let unreachable, refused, answered =
    List.fold_left
      (fun (u, r, a) o ->
        match o with
        | Unreachable (i, msg) -> ((i, msg) :: u, r, a)
        | Refused (i, j) -> (u, (i, j) :: r, a)
        | Answered sr -> (u, r, sr :: a))
      ([], [], []) outcomes
  in
  (List.rev unreachable, List.rev refused, List.rev answered)

let degraded_extra unreachable =
  if unreachable = [] then []
  else
    [
      ("degraded", Json.Bool true);
      ( "shards_unavailable",
        Json.List (List.map (fun (i, _) -> Json.Int i) unreachable) );
    ]

let unavailable_error unreachable =
  Protocol.error_to_json ~code:"unavailable"
    ~message:
      (String.concat "; " (List.map snd unreachable))

let respond t ~k ~ranked_k ~trace ~t0 outcomes =
  let unreachable, refused, answered = split_outcomes outcomes in
  match refused, answered with
  | (_, err) :: _, _ -> err
  | [], [] -> unavailable_error unreachable
  | [], _ ->
    if unreachable <> [] then begin
      Atomic.incr t.degraded;
      Log.warn (fun m ->
          m "serving degraded results: %d shard(s) unreachable"
            (List.length unreachable))
    end;
    let result = merge_answers ~k ~ranked_k ~trace ~t0 answered in
    Protocol.result_to_json ~extra:(degraded_extra unreachable) result

(* Structural families (query, search, phrase): one wave over every
   shard; per-shard answers are complete for their range, so a single
   concurrent fan-out is latency-optimal. *)
let exec_structural t ~k ~trace base_json =
  let t0 = Unix.gettimeofday () in
  let outcomes =
    scatter t (all_shards t) (fun _ -> base_json)
    |> List.map (decode_outcome t)
  in
  respond t ~k ~ranked_k:None ~trace ~t0 outcomes

(* Ranked top-k: scatter in waves of [window] shards (0 = one wave).
   After each wave the k-th best score gathered so far is published
   as θ and relayed to later waves, whose shards prune every document
   whose score bound falls strictly below it — the cross-shard
   instance of the monotone-threshold contract in {!Core.Merge.Theta}:
   θ only rises, never above the final k-th best, and equality is
   kept, so late shards skip work without ever losing a winner. *)
let exec_ranked t ~k ~theta ~trace base_json =
  let t0 = Unix.gettimeofday () in
  let kk = match k with Some k when k > 0 -> k | _ -> 10 in
  let shards = all_shards t in
  let nshards = List.length shards in
  let window =
    if t.window <= 0 then nshards else min t.window nshards
  in
  let theta_state = Core.Merge.Theta.make ?seed:theta () in
  let rec waves pending acc_rows acc_outcomes =
    match pending with
    | [] -> List.rev acc_outcomes
    | _ ->
      let wave = List.filteri (fun i _ -> i < window) pending in
      let rest = List.filteri (fun i _ -> i >= window) pending in
      let th = Core.Merge.Theta.get theta_state in
      let json =
        json_with_theta base_json (if th > neg_infinity then Some th else None)
      in
      let outcomes =
        scatter t wave (fun _ -> json) |> List.map (decode_outcome t)
      in
      let acc_rows =
        List.fold_left
          (fun acc o ->
            match o with Answered sr -> sr.sr_rows @ acc | _ -> acc)
          acc_rows outcomes
      in
      (* publish the gathered k-th best before the next wave *)
      (match
         truncate (Some kk) (List.sort Engine.compare_row acc_rows)
         |> List.rev
       with
      | ({ score; _ } : Engine.row) :: _ when List.length acc_rows >= kk ->
        Core.Merge.Theta.publish theta_state score
      | _ -> ());
      waves rest acc_rows (List.rev_append outcomes acc_outcomes)
  in
  let outcomes = waves shards [] [] in
  respond t ~k ~ranked_k:(Some kk) ~trace ~t0 outcomes

(* ------------------------------------------------------------------ *)
(* Non-exec ops *)

let forward_one t json =
  match shard_request t 0 json with
  | Ok (_, response) -> response
  | Error msg -> Protocol.error_to_json ~code:"unavailable" ~message:msg

let shard_health t =
  let outcomes = scatter t (all_shards t) (fun _ -> Json.Obj [ ("op", Json.String "health") ]) in
  let entries =
    List.map
      (fun (i, outcome) ->
        let shard = Shard_map.shard t.map i in
        let base =
          [
            ("shard", Json.Int i);
            ("lo", Json.Int shard.Shard_map.lo);
            ("hi", Json.Int shard.Shard_map.hi);
          ]
        in
        match outcome with
        | Ok (ep, response) ->
          Json.Obj
            (base
            @ [
                ("endpoint", Json.String (Shard_map.endpoint_to_string ep));
                ("ok", Json.Bool (mem "ok" Json.to_bool_opt ~default:false response));
                ( "generation",
                  Json.Int (mem "generation" Json.to_int_opt ~default:0 response)
                );
              ])
        | Error msg ->
          Json.Obj
            (base @ [ ("ok", Json.Bool false); ("error", Json.String msg) ]))
      outcomes
  in
  let down =
    List.length (List.filter (fun (_, o) -> Result.is_error o) outcomes)
  in
  (entries, down)

let health t =
  let entries, down = shard_health t in
  let generation =
    List.fold_left
      (fun acc e -> max acc (mem "generation" Json.to_int_opt ~default:0 e))
      0 entries
  in
  let shards =
    Json.Obj
      [
        ("total", Json.Int (Shard_map.shard_count t.map));
        ("unreachable", Json.Int down);
        ("degraded", Json.Bool (down > 0));
        ("backends", Json.List entries);
      ]
  in
  Protocol.health_to_json ~shards ~generation ~source:t.source ()

let stats t =
  let outcomes =
    scatter t (all_shards t) (fun _ -> Json.Obj [ ("op", Json.String "stats") ])
  in
  let entries =
    List.map
      (fun (i, outcome) ->
        let shard = Shard_map.shard t.map i in
        Json.Obj
          [
            ("shard", Json.Int i);
            ("lo", Json.Int shard.Shard_map.lo);
            ("hi", Json.Int shard.Shard_map.hi);
            ( "stats",
              match outcome with
              | Ok (_, response) -> response
              | Error msg ->
                Protocol.error_to_json ~code:"unavailable" ~message:msg );
          ])
      outcomes
  in
  Json.Obj
    [
      ("ok", Json.Bool true);
      ( "coordinator",
        Json.Obj
          [
            ("shards", Json.Int (Shard_map.shard_count t.map));
            ("window", Json.Int t.window);
            ("requests", Json.Int (Client.requests t.client));
            ("reconnects", Json.Int (Client.reconnects t.client));
            ("degraded_served", Json.Int (Atomic.get t.degraded));
          ] );
      ("shards", Json.List entries);
    ]

(* Prepared statements are coordinator-local: the text is kept here
   and re-scattered as a plain query on execute, so backends need no
   shared statement id space. *)
let prepare t q =
  match forward_one t (Json.Obj [ ("op", Json.String "explain"); ("q", Json.String q) ]) with
  | Json.Obj fields as response ->
    if List.assoc_opt "ok" fields = Some (Json.Bool true) then
      let id =
        Mutex.protect t.prepared_lock (fun () ->
            match Hashtbl.find_opt t.prepared_ids q with
            | Some id -> id
            | None ->
              let id = t.next_prepared in
              t.next_prepared <- id + 1;
              Hashtbl.replace t.prepared id q;
              Hashtbl.replace t.prepared_ids q id;
              id)
      in
      Protocol.ok_prepared_to_json id
    else response
  | response -> response

(* ------------------------------------------------------------------ *)
(* Dispatch *)

let read_only_error =
  Protocol.error_to_json ~code:"read_only"
    ~message:
      "coordinator is read-only: apply updates on the shard backends and \
       re-shard"

let handle t (req : Protocol.request) =
  match req with
  | Protocol.Exec ({ req = engine_req; k; trace; theta; _ } as e) ->
    let base_json = Protocol.request_to_json (Protocol.Exec e) in
    begin
      match engine_req with
      | Engine.Ranked _ -> exec_ranked t ~k ~theta ~trace base_json
      | Engine.Query _ | Engine.Search _ | Engine.Phrase _ ->
        exec_structural t ~k ~trace base_json
    end
  | Protocol.Explain _ -> forward_one t (Protocol.request_to_json req)
  | Protocol.Prepare { q } -> prepare t q
  | Protocol.Execute { id; k; limits; trace; parallelism } -> begin
    match
      Mutex.protect t.prepared_lock (fun () -> Hashtbl.find_opt t.prepared id)
    with
    | Some q ->
      let exec_req =
        Protocol.Exec
          {
            req = Engine.Query { q; mode = `Engine };
            k;
            limits;
            trace;
            parallelism;
            theta = None;
          }
      in
      exec_structural t ~k ~trace (Protocol.request_to_json exec_req)
    | None ->
      Protocol.error_to_json ~code:"unknown_statement"
        ~message:(Printf.sprintf "no prepared statement %d" id)
  end
  | Protocol.Insert _ | Protocol.Remove _ | Protocol.UpdateDoc _
  | Protocol.Checkpoint _ -> read_only_error
  | Protocol.Stats -> stats t
  | Protocol.Health -> health t
