(** Pooled NDJSON client for backend [tixd] shards.

    One persistent connection per endpoint, guarded by a per-endpoint
    lock (the coordinator scatters with one thread per shard, so the
    lock is uncontended on the hot path). Requests are one JSON line
    out, one line back; failures are typed, and every failure mode —
    torn connection, timeout, garbled line — is retried on a fresh
    connection up to [retries] times with exponential backoff, which
    makes a backend restart invisible to callers as long as it comes
    back within the retry budget. *)

type error =
  | Connect of { endpoint : Shard_map.endpoint; detail : string }
      (** dial failed: refused, unreachable, or connect timeout *)
  | Timeout of { endpoint : Shard_map.endpoint; detail : string }
      (** no complete response line within the request timeout *)
  | Io of { endpoint : Shard_map.endpoint; detail : string }
      (** read/write failed mid-exchange (torn connection) *)
  | Bad_response of { endpoint : Shard_map.endpoint; detail : string }
      (** the response line was not valid JSON *)

val error_endpoint : error -> Shard_map.endpoint
val error_message : error -> string

type t

val create :
  ?connect_timeout:float ->
  ?request_timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  unit ->
  t
(** [connect_timeout] (default 2s) bounds the dial; [request_timeout]
    (default 30s) bounds each request/response exchange; [retries]
    (default 2) extra attempts per request, each on a fresh
    connection, sleeping [backoff * 2^n] (default 50ms) before retry
    [n]. *)

val request :
  t -> Shard_map.endpoint -> Service.Json.t -> (Service.Json.t, error) result
(** Send one request object, return the parsed response object. The
    returned error is the last attempt's failure. *)

val requests : t -> int
(** Requests issued (before retries). *)

val reconnects : t -> int
(** Fresh connections dialled due to retry — the torn-connection
    counter. *)

val close : t -> unit
(** Drop every pooled connection. The pool remains usable: the next
    request re-dials. *)
