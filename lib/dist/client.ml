type error =
  | Connect of { endpoint : Shard_map.endpoint; detail : string }
  | Timeout of { endpoint : Shard_map.endpoint; detail : string }
  | Io of { endpoint : Shard_map.endpoint; detail : string }
  | Bad_response of { endpoint : Shard_map.endpoint; detail : string }

let error_endpoint = function
  | Connect { endpoint; _ }
  | Timeout { endpoint; _ }
  | Io { endpoint; _ }
  | Bad_response { endpoint; _ } -> endpoint

let error_message = function
  | Connect { endpoint; detail } ->
    Printf.sprintf "connect to %s failed: %s"
      (Shard_map.endpoint_to_string endpoint)
      detail
  | Timeout { endpoint; detail } ->
    Printf.sprintf "request to %s timed out (%s)"
      (Shard_map.endpoint_to_string endpoint)
      detail
  | Io { endpoint; detail } ->
    Printf.sprintf "i/o with %s failed: %s"
      (Shard_map.endpoint_to_string endpoint)
      detail
  | Bad_response { endpoint; detail } ->
    Printf.sprintf "bad response from %s: %s"
      (Shard_map.endpoint_to_string endpoint)
      detail

let src = Logs.Src.create "tix.dist.client" ~doc:"distributed backend client"

module Log = (val Logs.src_log src)

(* One pooled connection: the raw socket plus a buffer of bytes read
   past the last newline (the protocol is strictly one response line
   per request line, so the buffer is normally empty between calls). *)
type conn = { fd : Unix.file_descr; pending : Buffer.t }

type slot = { s_lock : Mutex.t; mutable s_conn : conn option }

type t = {
  connect_timeout : float;
  request_timeout : float;
  retries : int;
  backoff : float;
  pool_lock : Mutex.t;
  pool : (string * int, slot) Hashtbl.t;
  requests : int Atomic.t;
  reconnects : int Atomic.t;
}

let create ?(connect_timeout = 2.0) ?(request_timeout = 30.0) ?(retries = 2)
    ?(backoff = 0.05) () =
  {
    connect_timeout;
    request_timeout;
    retries = max 0 retries;
    backoff = max 0. backoff;
    pool_lock = Mutex.create ();
    pool = Hashtbl.create 16;
    requests = Atomic.make 0;
    reconnects = Atomic.make 0;
  }

let requests t = Atomic.get t.requests
let reconnects t = Atomic.get t.reconnects

let slot_of t (ep : Shard_map.endpoint) =
  Mutex.protect t.pool_lock (fun () ->
      let key = (ep.host, ep.port) in
      match Hashtbl.find_opt t.pool key with
      | Some s -> s
      | None ->
        let s = { s_lock = Mutex.create (); s_conn = None } in
        Hashtbl.replace t.pool key s;
        s)

exception Failed of error

let close_conn c = try Unix.close c.fd with Unix.Unix_error _ -> ()

(* Non-blocking connect + select so a dead host costs
   [connect_timeout], not the kernel's multi-minute SYN retry. *)
let connect t (ep : Shard_map.endpoint) =
  let fail detail = raise (Failed (Connect { endpoint = ep; detail })) in
  let addr =
    match Unix.inet_addr_of_string ep.host with
    | a -> Unix.ADDR_INET (a, ep.port)
    | exception Failure _ -> begin
      match Unix.gethostbyname ep.host with
      | { Unix.h_addr_list = [||]; _ } -> fail "host resolves to no address"
      | h -> Unix.ADDR_INET (h.Unix.h_addr_list.(0), ep.port)
      | exception Not_found -> fail "unknown host"
    end
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  match
    Unix.set_nonblock fd;
    (try Unix.connect fd addr
     with Unix.Unix_error ((Unix.EINPROGRESS | Unix.EWOULDBLOCK), _, _) -> ());
    let _, writable, _ = Unix.select [] [ fd ] [] t.connect_timeout in
    if writable = [] then fail "connect timeout";
    (match Unix.getsockopt_error fd with
    | Some e -> fail (Unix.error_message e)
    | None -> ());
    Unix.clear_nonblock fd;
    Unix.setsockopt fd Unix.TCP_NODELAY true
  with
  | () -> { fd; pending = Buffer.create 256 }
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    fail (Unix.error_message e)
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let write_all ep fd s =
  let len = String.length s in
  let bytes = Bytes.unsafe_of_string s in
  let rec go off =
    if off < len then begin
      match Unix.write fd bytes off (len - off) with
      | 0 -> raise (Failed (Io { endpoint = ep; detail = "short write" }))
      | n -> go (off + n)
      | exception Unix.Unix_error (e, _, _) ->
        raise (Failed (Io { endpoint = ep; detail = Unix.error_message e }))
    end
  in
  go 0

(* Read one newline-terminated line, honouring the request timeout as
   a deadline across partial reads. *)
let read_line t ep conn =
  let deadline = Unix.gettimeofday () +. t.request_timeout in
  let chunk = Bytes.create 65536 in
  let rec go () =
    let buffered = Buffer.contents conn.pending in
    match String.index_opt buffered '\n' with
    | Some i ->
      Buffer.clear conn.pending;
      Buffer.add_substring conn.pending buffered (i + 1)
        (String.length buffered - i - 1);
      String.sub buffered 0 i
    | None ->
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0. then
        raise
          (Failed
             (Timeout
                { endpoint = ep;
                  detail = Printf.sprintf "%.1fs" t.request_timeout }))
      else begin
        match Unix.select [ conn.fd ] [] [] remaining with
        | [], _, _ -> go () (* re-check the deadline *)
        | _ -> begin
          match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
          | 0 ->
            raise
              (Failed (Io { endpoint = ep; detail = "connection closed" }))
          | n ->
            Buffer.add_subbytes conn.pending chunk 0 n;
            go ()
          | exception Unix.Unix_error (e, _, _) ->
            raise (Failed (Io { endpoint = ep; detail = Unix.error_message e }))
        end
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      end
  in
  go ()

let roundtrip t ep conn json =
  write_all ep conn.fd (Service.Json.to_string json ^ "\n");
  let line = read_line t ep conn in
  match Service.Json.parse line with
  | Ok j -> j
  | Error e ->
    raise (Failed (Bad_response { endpoint = ep; detail = e }))

(* One request/response over the pooled connection, with bounded
   retry: a torn connection (backend restarted, idle socket reaped)
   surfaces as an I/O error on the reused socket, so each retry drops
   the pooled connection and dials a fresh one. Timeouts and bad
   responses also retry — the protocol is stateless per line, so a
   retried request is safe — up to [retries] extra attempts with
   exponential backoff. *)
let request t (ep : Shard_map.endpoint) json =
  Atomic.incr t.requests;
  let slot = slot_of t ep in
  Mutex.protect slot.s_lock (fun () ->
      let rec attempt n =
        let outcome =
          match
            let conn =
              match slot.s_conn with
              | Some c -> c
              | None ->
                let c = connect t ep in
                slot.s_conn <- Some c;
                c
            in
            Buffer.clear conn.pending;
            roundtrip t ep conn json
          with
          | j -> Ok j
          | exception Failed e -> Error e
        in
        match outcome with
        | Ok _ as ok -> ok
        | Error e ->
          (match slot.s_conn with
          | Some c ->
            close_conn c;
            slot.s_conn <- None
          | None -> ());
          if n >= t.retries then Error e
          else begin
            Atomic.incr t.reconnects;
            Log.debug (fun m ->
                m "retrying %s after %s (attempt %d/%d)"
                  (Shard_map.endpoint_to_string ep)
                  (error_message e) (n + 1) t.retries);
            if t.backoff > 0. then
              Thread.delay (t.backoff *. Float.pow 2. (float_of_int n));
            attempt (n + 1)
          end
      in
      attempt 0)

let close t =
  Mutex.protect t.pool_lock (fun () ->
      Hashtbl.iter
        (fun _ slot ->
          Mutex.protect slot.s_lock (fun () ->
              match slot.s_conn with
              | Some c ->
                close_conn c;
                slot.s_conn <- None
              | None -> ()))
        t.pool;
      Hashtbl.reset t.pool)
