(** A recursive-descent XML parser.

    Supports elements, attributes (single or double quoted), text,
    the five predefined entities plus numeric character references,
    comments, processing instructions, CDATA sections, an XML
    declaration and a (skipped) DOCTYPE. Namespaces are treated as
    plain prefixed names. This covers the INEX-style corpora the TIX
    system manages. *)

type error = { line : int; col : int; message : string }

exception Parse_error of error

val pp_error : Format.formatter -> error -> unit

type limits = {
  max_depth : int;  (** maximum element-nesting depth *)
  max_entity_refs : int;
      (** maximum entity / numeric character references decoded per
          document *)
}
(** Guard rails against pathological inputs (deeply nested element
    bombs, reference-stuffed text). Breaching either limit fails the
    parse with a located {!Parse_error} rather than exhausting the
    stack or CPU. *)

val default_limits : limits
(** 10,000 levels of nesting; 1,000,000 references. *)

val limits : ?max_depth:int -> ?max_entity_refs:int -> unit -> limits
(** Omitted fields take their {!default_limits} values. Raises
    [Invalid_argument] on a non-positive [max_depth] or negative
    [max_entity_refs]. *)

val parse_string : ?limits:limits -> string -> (Tree.element, error) result
(** [parse_string s] parses a complete XML document and returns its
    root element. *)

val parse_string_exn : ?limits:limits -> string -> Tree.element
(** Like {!parse_string} but raises {!Parse_error}. *)

val parse_fragment : ?limits:limits -> string -> (Tree.node list, error) result
(** [parse_fragment s] parses a sequence of top-level nodes, e.g. a
    file holding several documents concatenated (as [reviews.xml] in
    the paper's Figure 1). *)

val parse_file : ?limits:limits -> string -> (Tree.element, error) result
(** [parse_file path] reads and parses the file at [path]. *)
