type error = { line : int; col : int; message : string }

exception Parse_error of error

let pp_error ppf e =
  Format.fprintf ppf "line %d, column %d: %s" e.line e.col e.message

type limits = { max_depth : int; max_entity_refs : int }

let default_limits = { max_depth = 10_000; max_entity_refs = 1_000_000 }

let limits ?(max_depth = default_limits.max_depth)
    ?(max_entity_refs = default_limits.max_entity_refs) () =
  if max_depth < 1 then invalid_arg "Parser.limits: max_depth must be >= 1";
  if max_entity_refs < 0 then
    invalid_arg "Parser.limits: max_entity_refs must be >= 0";
  { max_depth; max_entity_refs }

type state = {
  src : string;
  mutable pos : int;
  len : int;
  limits : limits;
  mutable depth : int;  (** current element-nesting depth *)
  mutable entity_refs : int;  (** references decoded so far *)
}

let position st =
  (* Compute line/column lazily, only on error paths. *)
  let line = ref 1 and col = ref 1 in
  for i = 0 to min st.pos (st.len - 1) - 1 do
    if st.src.[i] = '\n' then begin
      incr line;
      col := 1
    end
    else incr col
  done;
  (!line, !col)

let fail st message =
  let line, col = position st in
  raise (Parse_error { line; col; message })

let peek st = if st.pos < st.len then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let looking_at st s =
  let n = String.length s in
  st.pos + n <= st.len && String.sub st.src st.pos n = s

let expect st s =
  if looking_at st s then st.pos <- st.pos + String.length s
  else fail st (Printf.sprintf "expected %S" s)

(* Decode entities while charging each reference against the
   document-wide budget, so reference-stuffed inputs fail with a
   located error instead of burning unbounded CPU. *)
let decode_charged st s =
  let refs = ref 0 in
  String.iter (fun c -> if c = '&' then incr refs) s;
  if !refs > 0 then begin
    st.entity_refs <- st.entity_refs + !refs;
    if st.entity_refs > st.limits.max_entity_refs then
      fail st
        (Printf.sprintf "more than %d entity/character references"
           st.limits.max_entity_refs)
  end;
  Entity.decode s

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_space st =
  while st.pos < st.len && is_space st.src.[st.pos] do
    advance st
  done

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | c -> Char.code c >= 0x80

let is_name_char c =
  is_name_start c
  || match c with '0' .. '9' | '-' | '.' -> true | _ -> false

let parse_name st =
  let start = st.pos in
  (match peek st with
  | Some c when is_name_start c -> advance st
  | Some _ | None -> fail st "expected a name");
  while
    st.pos < st.len && is_name_char st.src.[st.pos]
  do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let parse_attr_value st =
  match peek st with
  | Some (('"' | '\'') as quote) ->
    advance st;
    let start = st.pos in
    (match String.index_from_opt st.src st.pos quote with
    | Some j ->
      st.pos <- j + 1;
      decode_charged st (String.sub st.src start (j - start))
    | None -> fail st "unterminated attribute value")
  | Some _ | None -> fail st "expected a quoted attribute value"

let parse_attrs st =
  let rec loop acc =
    skip_space st;
    match peek st with
    | Some c when is_name_start c ->
      let name = parse_name st in
      skip_space st;
      expect st "=";
      skip_space st;
      let value = parse_attr_value st in
      loop ({ Tree.name; value } :: acc)
    | Some _ | None -> List.rev acc
  in
  loop []

(* Skip until the terminator [stop]; return the skipped content. *)
let take_until st stop ~what =
  let n = String.length stop in
  let rec find i =
    if i + n > st.len then fail st (Printf.sprintf "unterminated %s" what)
    else if String.sub st.src i n = stop then i
    else find (i + 1)
  in
  let j = find st.pos in
  let content = String.sub st.src st.pos (j - st.pos) in
  st.pos <- j + n;
  content

let skip_doctype st =
  (* DOCTYPE may contain an internal subset in brackets. *)
  expect st "<!DOCTYPE";
  let depth = ref 1 in
  while !depth > 0 do
    match peek st with
    | Some '<' ->
      incr depth;
      advance st
    | Some '>' ->
      decr depth;
      advance st
    | Some _ -> advance st
    | None -> fail st "unterminated DOCTYPE"
  done

let rec parse_content st tag acc =
  if st.pos >= st.len then
    fail st (Printf.sprintf "unterminated element <%s>" tag)
  else if looking_at st "</" then begin
    st.pos <- st.pos + 2;
    let name = parse_name st in
    skip_space st;
    expect st ">";
    if name <> tag then
      fail st (Printf.sprintf "mismatched close tag </%s> for <%s>" name tag);
    List.rev acc
  end
  else
    let node = parse_node st in
    parse_content st tag (node :: acc)

and parse_node st =
  if looking_at st "<!--" then begin
    st.pos <- st.pos + 4;
    Tree.Comment (take_until st "-->" ~what:"comment")
  end
  else if looking_at st "<![CDATA[" then begin
    st.pos <- st.pos + 9;
    Tree.Text (take_until st "]]>" ~what:"CDATA section")
  end
  else if looking_at st "<?" then begin
    st.pos <- st.pos + 2;
    let target = parse_name st in
    skip_space st;
    let data = take_until st "?>" ~what:"processing instruction" in
    Tree.Pi { target; data }
  end
  else if looking_at st "<" then Tree.Element (parse_element st)
  else begin
    let start = st.pos in
    while st.pos < st.len && st.src.[st.pos] <> '<' do
      advance st
    done;
    Tree.Text (decode_charged st (String.sub st.src start (st.pos - start)))
  end

and parse_element st =
  expect st "<";
  st.depth <- st.depth + 1;
  if st.depth > st.limits.max_depth then
    fail st
      (Printf.sprintf "element nesting deeper than %d" st.limits.max_depth);
  let tag = parse_name st in
  let attrs = parse_attrs st in
  skip_space st;
  let element =
    if looking_at st "/>" then begin
      st.pos <- st.pos + 2;
      { Tree.tag; attrs; children = [] }
    end
    else begin
      expect st ">";
      let children = parse_content st tag [] in
      { Tree.tag; attrs; children }
    end
  in
  st.depth <- st.depth - 1;
  element

let skip_misc st =
  let continue = ref true in
  while !continue do
    skip_space st;
    if looking_at st "<!--" then begin
      st.pos <- st.pos + 4;
      ignore (take_until st "-->" ~what:"comment")
    end
    else if looking_at st "<?" then begin
      st.pos <- st.pos + 2;
      ignore (take_until st "?>" ~what:"processing instruction")
    end
    else if looking_at st "<!DOCTYPE" then skip_doctype st
    else continue := false
  done

let run ~limits f s =
  let st =
    {
      src = s;
      pos = 0;
      len = String.length s;
      limits;
      depth = 0;
      entity_refs = 0;
    }
  in
  match f st with
  | v -> Ok v
  | exception Parse_error e -> Error e

let parse_document st =
  skip_misc st;
  if not (looking_at st "<") then fail st "expected a root element";
  let root = parse_element st in
  skip_misc st;
  if st.pos < st.len then fail st "trailing content after root element";
  root

let parse_string ?(limits = default_limits) s = run ~limits parse_document s

let parse_string_exn ?limits s =
  match parse_string ?limits s with
  | Ok e -> e
  | Error e -> raise (Parse_error e)

let parse_fragment ?(limits = default_limits) s =
  let parse_all st =
    let rec loop acc =
      skip_space st;
      if st.pos >= st.len then List.rev acc
      else
        let node = parse_node st in
        loop (node :: acc)
    in
    loop []
  in
  run ~limits parse_all s

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_file ?limits path = parse_string ?limits (read_file path)
