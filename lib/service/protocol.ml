type request =
  | Exec of {
      req : Engine.request;
      k : int option;
      limits : Core.Governor.limits;
      trace : bool;
      parallelism : int option;
      theta : float option;
    }
  | Explain of { q : string }
  | Prepare of { q : string }
  | Execute of {
      id : int;
      k : int option;
      limits : Core.Governor.limits;
      trace : bool;
      parallelism : int option;
    }
  | Insert of { name : string; xml : string }
  | Remove of { name : string }
  | UpdateDoc of { name : string; xml : string }
  | Checkpoint of { wait : bool }
  | Stats
  | Health

(* ------------------------------------------------------------------ *)
(* Request decoding *)

let field_string j name =
  match Option.map Json.to_string_opt (Json.member name j) with
  | Some (Some s) -> Ok s
  | Some None -> Error (Printf.sprintf "field %S must be a string" name)
  | None -> Error (Printf.sprintf "missing field %S" name)

let field_string_list j name =
  match Json.member name j with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> begin
    match Json.to_list_opt v with
    | None -> Error (Printf.sprintf "field %S must be an array of strings" name)
    | Some items ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | x :: rest -> begin
          match Json.to_string_opt x with
          | Some s -> go (s :: acc) rest
          | None ->
            Error (Printf.sprintf "field %S must be an array of strings" name)
        end
      in
      go [] items
  end

let opt_string j name =
  match Json.member name j with
  | None -> Ok None
  | Some v -> begin
    match Json.to_string_opt v with
    | Some s -> Ok (Some s)
    | None -> Error (Printf.sprintf "field %S must be a string" name)
  end

let opt_int j name =
  match Json.member name j with
  | None -> Ok None
  | Some v -> begin
    match Json.to_int_opt v with
    | Some n -> Ok (Some n)
    | None -> Error (Printf.sprintf "field %S must be an integer" name)
  end

let opt_float j name =
  match Json.member name j with
  | None -> Ok None
  | Some v -> begin
    match Json.to_float_opt v with
    | Some f -> Ok (Some f)
    | None -> Error (Printf.sprintf "field %S must be a number" name)
  end

let opt_bool ~default j name =
  match Json.member name j with
  | None -> Ok default
  | Some v -> begin
    match Json.to_bool_opt v with
    | Some b -> Ok b
    | None -> Error (Printf.sprintf "field %S must be a boolean" name)
  end

let ( let* ) = Result.bind

let limits_of j =
  let* timeout_s = opt_float j "timeout" in
  let* max_steps = opt_int j "max_steps" in
  let* max_results = opt_int j "max_results" in
  Ok { Core.Governor.timeout_s; max_steps; max_results }

let parse_request line =
  match Json.parse line with
  | Error e -> Error (Printf.sprintf "bad JSON: %s" e)
  | Ok j -> begin
    let* op = field_string j "op" in
    let* k = opt_int j "k" in
    let* limits = limits_of j in
    let* trace = opt_bool ~default:false j "trace" in
    let* parallelism = opt_int j "parallelism" in
    let* theta = opt_float j "theta" in
    match op with
    | "query" ->
      let* q = field_string j "q" in
      let* mode =
        match Option.map Json.to_string_opt (Json.member "mode" j) with
        | None -> Ok `Auto
        | Some (Some "auto") -> Ok `Auto
        | Some (Some "engine") -> Ok `Engine
        | Some (Some "interp") -> Ok `Interp
        | Some _ -> Error "field \"mode\" must be auto, engine or interp"
      in
      Ok (Exec { req = Engine.Query { q; mode }; k; limits; trace; parallelism; theta })
    | "explain" ->
      let* q = field_string j "q" in
      Ok (Explain { q })
    | "search" ->
      let* terms = field_string_list j "terms" in
      let* complex = opt_bool ~default:false j "complex" in
      let* anchor = opt_string j "anchor" in
      let* method_ =
        match Option.map Json.to_string_opt (Json.member "method" j) with
        | None -> Ok Engine.Termjoin
        | Some (Some s) -> begin
          match Engine.search_method_of_string s with
          | Some m -> Ok m
          | None -> Error (Printf.sprintf "unknown search method %S" s)
        end
        | Some None -> Error "field \"method\" must be a string"
      in
      Ok
        (Exec
           { req = Engine.Search { terms; method_; complex; anchor }; k;
             limits; trace; parallelism; theta })
    | "phrase" ->
      let* phrase = field_string j "phrase" in
      let* comp3 = opt_bool ~default:false j "comp3" in
      Ok
        (Exec
           { req = Engine.Phrase { phrase; comp3 }; k; limits; trace;
             parallelism; theta })
    | "ranked" ->
      let* terms = field_string_list j "terms" in
      Ok (Exec { req = Engine.Ranked { terms }; k; limits; trace; parallelism; theta })
    | "prepare" ->
      let* q = field_string j "q" in
      Ok (Prepare { q })
    | "execute" -> begin
      let* id = opt_int j "id" in
      match id with
      | Some id -> Ok (Execute { id; k; limits; trace; parallelism })
      | None -> Error "missing field \"id\""
    end
    | "insert" ->
      let* name = field_string j "name" in
      let* xml = field_string j "xml" in
      Ok (Insert { name; xml })
    | "delete" ->
      let* name = field_string j "name" in
      Ok (Remove { name })
    | "update" ->
      let* name = field_string j "name" in
      let* xml = field_string j "xml" in
      Ok (UpdateDoc { name; xml })
    | "checkpoint" ->
      let* wait = opt_bool ~default:true j "wait" in
      Ok (Checkpoint { wait })
    | "stats" -> Ok Stats
    | "health" -> Ok Health
    | other -> Error (Printf.sprintf "unknown op %S" other)
  end

(* ------------------------------------------------------------------ *)
(* Request encoding (client side) *)

let limits_fields (l : Core.Governor.limits) =
  List.concat
    [
      (match l.timeout_s with Some s -> [ ("timeout", Json.Float s) ] | None -> []);
      (match l.max_steps with Some n -> [ ("max_steps", Json.Int n) ] | None -> []);
      (match l.max_results with
      | Some n -> [ ("max_results", Json.Int n) ]
      | None -> []);
    ]

let k_field = function Some k -> [ ("k", Json.Int k) ] | None -> []
let trace_field = function true -> [ ("trace", Json.Bool true) ] | false -> []

let parallelism_field = function
  | Some n -> [ ("parallelism", Json.Int n) ]
  | None -> []

let theta_field = function Some t -> [ ("theta", Json.Float t) ] | None -> []

let request_to_json = function
  | Exec { req; k; limits; trace; parallelism; theta } -> begin
    let base =
      match req with
      | Engine.Query { q; mode } ->
        let mode =
          match mode with
          | `Auto -> "auto"
          | `Engine -> "engine"
          | `Interp -> "interp"
        in
        [ ("op", Json.String "query"); ("q", Json.String q);
          ("mode", Json.String mode) ]
      | Engine.Search { terms; method_; complex; anchor } ->
        [
          ("op", Json.String "search");
          ("terms", Json.List (List.map (fun t -> Json.String t) terms));
          ("method", Json.String (Engine.search_method_to_string method_));
          ("complex", Json.Bool complex);
        ]
        @ (match anchor with
          | Some a -> [ ("anchor", Json.String a) ]
          | None -> [])
      | Engine.Phrase { phrase; comp3 } ->
        [ ("op", Json.String "phrase"); ("phrase", Json.String phrase);
          ("comp3", Json.Bool comp3) ]
      | Engine.Ranked { terms } ->
        [
          ("op", Json.String "ranked");
          ("terms", Json.List (List.map (fun t -> Json.String t) terms));
        ]
    in
    Json.Obj
      (base @ k_field k @ limits_fields limits @ trace_field trace
      @ parallelism_field parallelism @ theta_field theta)
  end
  | Explain { q } ->
    Json.Obj [ ("op", Json.String "explain"); ("q", Json.String q) ]
  | Prepare { q } -> Json.Obj [ ("op", Json.String "prepare"); ("q", Json.String q) ]
  | Execute { id; k; limits; trace; parallelism } ->
    Json.Obj
      ([ ("op", Json.String "execute"); ("id", Json.Int id) ]
      @ k_field k @ limits_fields limits @ trace_field trace
      @ parallelism_field parallelism)
  | Insert { name; xml } ->
    Json.Obj
      [ ("op", Json.String "insert"); ("name", Json.String name);
        ("xml", Json.String xml) ]
  | Remove { name } ->
    Json.Obj [ ("op", Json.String "delete"); ("name", Json.String name) ]
  | UpdateDoc { name; xml } ->
    Json.Obj
      [ ("op", Json.String "update"); ("name", Json.String name);
        ("xml", Json.String xml) ]
  | Checkpoint { wait } ->
    Json.Obj
      (("op", Json.String "checkpoint")
      :: (if wait then [] else [ ("wait", Json.Bool false) ]))
  | Stats -> Json.Obj [ ("op", Json.String "stats") ]
  | Health -> Json.Obj [ ("op", Json.String "health") ]

(* ------------------------------------------------------------------ *)
(* Response encoding *)

let row_to_json (r : Engine.row) =
  Json.Obj
    [
      ("tag", Json.String r.tag);
      ("doc", Json.Int r.doc);
      ("start", Json.Int r.start);
      ("score", Json.Float r.score);
    ]

let rows_to_json rows = Json.List (List.map row_to_json rows)

let rec span_to_json (sp : Core.Trace.span) =
  let int_field name v = if v >= 0 then [ (name, Json.Int v) ] else [] in
  Json.Obj
    (List.concat
       [
         [ ("op", Json.String sp.name) ];
         int_field "input" sp.input;
         int_field "output" sp.output;
         int_field "est" sp.est;
         int_field "steps" sp.gov_steps;
         [ ("elapsed_ns", Json.Int sp.elapsed_ns) ];
         (match sp.attrs with
         | [] -> []
         | attrs ->
           [
             ( "attrs",
               Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) attrs) );
           ]);
         (match sp.children with
         | [] -> []
         | cs -> [ ("children", Json.List (List.map span_to_json cs)) ]);
       ])

let result_to_json ?(include_timings = true) ?(extra = []) (r : Engine.result) =
  let base =
    [
      ("ok", Json.Bool true);
      ("total", Json.Int r.total);
      ("cached", Json.Bool r.cached);
      ("steps_used", Json.Int r.steps_used);
      ("results", rows_to_json r.rows);
    ]
    @ extra
  in
  let trees =
    if r.trees = [] then []
    else [ ("trees", Json.List (List.map (fun t -> Json.String t) r.trees)) ]
  in
  let plan = match r.plan with Some p -> [ ("plan", Json.String p) ] | None -> [] in
  let timings =
    if include_timings && r.timings <> [] then
      [
        ( "timings",
          Json.Obj (List.map (fun (s, dt) -> (s, Json.Float dt)) r.timings) );
      ]
    else []
  in
  let trace =
    match r.trace with
    | Some sp -> [ ("trace", span_to_json sp) ]
    | None -> []
  in
  Json.Obj (base @ trees @ plan @ timings @ trace)

let ok_plan_to_json plan =
  Json.Obj [ ("ok", Json.Bool true); ("plan", Json.String plan) ]

let error_to_json ~code ~message =
  Json.Obj
    [
      ("ok", Json.Bool false);
      ( "error",
        Json.Obj [ ("code", Json.String code); ("message", Json.String message) ]
      );
    ]

let engine_error_to_json e =
  error_to_json ~code:(Engine.error_code e) ~message:(Engine.error_message e)

let ok_prepared_to_json id =
  Json.Obj [ ("ok", Json.Bool true); ("id", Json.Int id) ]

let health_to_json ?(updatable = false) ?checkpoint_in_progress ?verification
    ?shards ~generation ~source () =
  Json.Obj
    ([
       ("ok", Json.Bool true);
       ("status", Json.String "serving");
       ("generation", Json.Int generation);
       ("source", Json.String source);
       ("updatable", Json.Bool updatable);
     ]
    @ (match checkpoint_in_progress with
      | Some b -> [ ("checkpoint_in_progress", Json.Bool b) ]
      | None -> [])
    @ (match verification with
      | Some v -> [ ("verification", Json.String v) ]
      | None -> [])
    @ match shards with Some s -> [ ("shards", s) ] | None -> [])

let ok_mutation_to_json ~op ~name ~generation =
  Json.Obj
    [
      ("ok", Json.Bool true);
      ("op", Json.String op);
      ("name", Json.String name);
      ("generation", Json.Int generation);
    ]

let ok_checkpoint_to_json ~path ~generation =
  Json.Obj
    [
      ("ok", Json.Bool true);
      ("op", Json.String "checkpoint");
      ("path", Json.String path);
      ("generation", Json.Int generation);
    ]

let ok_checkpoint_started_to_json () =
  Json.Obj
    [
      ("ok", Json.Bool true);
      ("op", Json.String "checkpoint");
      ("started", Json.Bool true);
    ]

let lru_stats_to_json (s : Lru.stats) =
  Json.Obj
    [
      ("capacity", Json.Int s.capacity);
      ("entries", Json.Int s.entries);
      ("hits", Json.Int s.hits);
      ("misses", Json.Int s.misses);
      ("evictions", Json.Int s.evictions);
    ]

let stats_to_json ?updates scheduler =
  let snap = Scheduler.snapshot scheduler in
  let db_stats = Store.Db.stats snap.Engine.db in
  let pager_stats =
    Store.Pager.stats (Store.Element_store.pager (Store.Db.elements snap.Engine.db))
  in
  let s = Scheduler.stats scheduler in
  let fault_fields =
    match Engine.fault_stats snap with
    | None -> []
    | Some f ->
      [
        ( "faults",
          Json.Obj
            [
              ("transient", Json.Int f.Store.Fault.transient);
              ("corrupt", Json.Int f.Store.Fault.corrupt);
              ("torn_writes", Json.Int f.Store.Fault.torn_writes);
              ("failed_fsyncs", Json.Int f.Store.Fault.failed_fsyncs);
            ] );
      ]
  in
  let delta_fields =
    match snap.Engine.delta with
    | None -> []
    | Some dv ->
      [
        ( "delta",
          Json.Obj
            [
              ("documents", Json.Int dv.Engine.delta_docs);
              ("tombstones", Json.Int dv.Engine.n_tomb);
            ] );
      ]
  in
  let updates_fields =
    match updates with
    | None -> []
    | Some u ->
      let ls = Store.Live.stats (Updates.live u) in
      [
        ( "updates",
          Json.Obj
            [
              ("wal_records", Json.Int ls.Store.Live.wal_records);
              ("wal_bytes", Json.Int ls.Store.Live.wal_bytes);
              ("delta_documents", Json.Int ls.Store.Live.delta_documents);
              ("tombstones", Json.Int ls.Store.Live.tombstones);
              ("checkpoints", Json.Int ls.Store.Live.checkpoints);
              ("frozen_documents", Json.Int ls.Store.Live.frozen_documents);
              ( "checkpoint_in_progress",
                Json.Bool (Updates.checkpoint_in_progress u) );
              ( "group_commit",
                Json.Obj
                  [
                    ("batches", Json.Int ls.Store.Live.gc_batches);
                    ("records", Json.Int ls.Store.Live.gc_records);
                    ("largest_batch", Json.Int ls.Store.Live.gc_largest_batch);
                  ] );
            ] );
      ]
  in
  Json.Obj
    ([
      ("ok", Json.Bool true);
      ( "db",
        Json.Obj
          [
            ("source", Json.String snap.Engine.source);
            ("generation", Json.Int snap.Engine.generation);
            ("documents", Json.Int db_stats.Store.Db.documents);
            ("elements", Json.Int db_stats.Store.Db.elements);
            ("distinct_terms", Json.Int db_stats.Store.Db.distinct_terms);
            ("occurrences", Json.Int db_stats.Store.Db.occurrences);
            ("pages", Json.Int db_stats.Store.Db.pages);
            ("index_bytes", Json.Int db_stats.Store.Db.index_bytes);
          ] );
      ( "pager",
        Json.Obj
          [
            ("reads", Json.Int pager_stats.Store.Pager.reads);
            ("misses", Json.Int pager_stats.Store.Pager.misses);
            ("failures", Json.Int pager_stats.Store.Pager.failures);
            ("pinned",
             Json.Bool
               (Store.Pager.pinned
                  (Store.Element_store.pager (Store.Db.elements snap.Engine.db))));
          ] );
      ( "scheduler",
        Json.Obj
          [
            ("workers", Json.Int s.Scheduler.workers);
            ("queue_depth", Json.Int s.Scheduler.queue_depth);
            ("queued", Json.Int s.Scheduler.queued);
            ("submitted", Json.Int s.Scheduler.submitted);
            ("rejected", Json.Int s.Scheduler.rejected);
            ("completed", Json.Int s.Scheduler.completed);
          ] );
      ("plan_cache", lru_stats_to_json s.Scheduler.plan_cache);
      ("result_cache", lru_stats_to_json s.Scheduler.result_cache);
      ("metrics", Metrics.to_json ());
    ]
    @ fault_fields @ delta_fields @ updates_fields)
