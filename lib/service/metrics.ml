type counter = { c_name : string; cell : int Atomic.t }

(* 40 power-of-two buckets cover 1 ns .. ~550 s; bucket i counts
   observations with 2^i <= ns < 2^(i+1) (bucket 0 also takes 0). *)
let buckets = 40

type histogram = {
  h_name : string;
  counts : int Atomic.t array;
  sum_ns : int Atomic.t;
  total : int Atomic.t;
}

let registry_lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 32

let counter name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
        let c = { c_name = name; cell = Atomic.make 0 } in
        Hashtbl.replace counters name c;
        c)

let incr c = Atomic.incr c.cell
let add c n = ignore (Atomic.fetch_and_add c.cell n)
let counter_value c = Atomic.get c.cell

let histogram name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
        let h =
          {
            h_name = name;
            counts = Array.init buckets (fun _ -> Atomic.make 0);
            sum_ns = Atomic.make 0;
            total = Atomic.make 0;
          }
        in
        Hashtbl.replace histograms name h;
        h)

(* floor(log2 n) for n >= 1, in integer arithmetic: going through
   [Float.log2] misbuckets near power-of-two boundaries (2^n - 1 for
   large n rounds to n.0, and int -> float itself rounds above 2^53) *)
let floor_log2 n =
  let n = ref n and r = ref 0 in
  let shift k = if !n lsr k > 0 then begin n := !n lsr k; r := !r + k end in
  shift 32; shift 16; shift 8; shift 4; shift 2; shift 1;
  !r

let bucket_of_ns ns =
  if ns <= 1 then 0 else min (buckets - 1) (floor_log2 ns)

(* inclusive lower bound of bucket [i]: bucket 0 also holds 0 *)
let bucket_lo i = if i = 0 then 0 else 1 lsl i
let bucket_hi i = 1 lsl (i + 1)

let observe_ns h ns =
  let ns = max 0 ns in
  Atomic.incr h.counts.(bucket_of_ns ns);
  ignore (Atomic.fetch_and_add h.sum_ns ns);
  Atomic.incr h.total

(* round, don't truncate: [observe_s h 0.9e-9] belongs in bucket 0 as
   1 ns, not as 0 *)
let observe_s h s = observe_ns h (Float.to_int (Float.round (s *. 1e9)))
let hist_count h = Atomic.get h.total

let quantile_ns h q =
  let total = Atomic.get h.total in
  if total = 0 then nan
  else begin
    let target = Float.of_int total *. q in
    let rec go i seen =
      if i >= buckets then Float.of_int (1 lsl (buckets - 1))
      else begin
        let c = Atomic.get h.counts.(i) in
        let seen' = seen + c in
        if Float.of_int seen' >= target && c > 0 then begin
          (* interpolate inside the bucket's [lo, hi) range *)
          let lo = Float.of_int (bucket_lo i) in
          let hi = Float.of_int (bucket_hi i) in
          let into = (target -. Float.of_int seen) /. Float.of_int c in
          lo +. ((hi -. lo) *. Float.max 0. (Float.min 1. into))
        end
        else go (i + 1) seen'
      end
    in
    go 0 0
  end

let mean_ns h =
  let total = Atomic.get h.total in
  if total = 0 then nan
  else Float.of_int (Atomic.get h.sum_ns) /. Float.of_int total

let sorted tbl =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.fold (fun _ v acc -> v :: acc) tbl [])

let dump () =
  let buf = Buffer.create 512 in
  let cs =
    sorted counters |> List.sort (fun a b -> compare a.c_name b.c_name)
  in
  List.iter
    (fun c -> Printf.bprintf buf "%-40s %d\n" c.c_name (Atomic.get c.cell))
    cs;
  let hs =
    sorted histograms |> List.sort (fun a b -> compare a.h_name b.h_name)
  in
  List.iter
    (fun h ->
      Printf.bprintf buf
        "%-40s count=%d mean=%.0fns p50=%.0fns p90=%.0fns p99=%.0fns\n"
        h.h_name (hist_count h) (mean_ns h) (quantile_ns h 0.5)
        (quantile_ns h 0.9) (quantile_ns h 0.99))
    hs;
  Buffer.contents buf

let to_json () =
  let float_or_null f = if Float.is_nan f then Json.Null else Json.Float f in
  let cs =
    sorted counters
    |> List.sort (fun a b -> compare a.c_name b.c_name)
    |> List.map (fun c -> (c.c_name, Json.Int (Atomic.get c.cell)))
  in
  let hs =
    sorted histograms
    |> List.sort (fun a b -> compare a.h_name b.h_name)
    |> List.map (fun h ->
           ( h.h_name,
             Json.Obj
               [
                 ("count", Json.Int (hist_count h));
                 ("mean_ns", float_or_null (mean_ns h));
                 ("p50_ns", float_or_null (quantile_ns h 0.5));
                 ("p90_ns", float_or_null (quantile_ns h 0.9));
                 ("p99_ns", float_or_null (quantile_ns h 0.99));
               ] ))
  in
  Json.Obj [ ("counters", Json.Obj cs); ("histograms", Json.Obj hs) ]

let reset () =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) counters;
      Hashtbl.iter
        (fun _ h ->
          Array.iter (fun a -> Atomic.set a 0) h.counts;
          Atomic.set h.sum_ns 0;
          Atomic.set h.total 0)
        histograms)
