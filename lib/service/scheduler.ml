type error = Overloaded | Closed

let error_code = function Overloaded -> "overloaded" | Closed -> "closed"

(* A one-shot cell a worker fulfils and any thread can await. *)
type 'a promise = {
  p_lock : Mutex.t;
  p_cond : Condition.t;
  mutable p_value : 'a option;
}

let promise () =
  { p_lock = Mutex.create (); p_cond = Condition.create (); p_value = None }

let fulfil p v =
  Mutex.protect p.p_lock (fun () ->
      p.p_value <- Some v;
      Condition.broadcast p.p_cond)

let await p =
  Mutex.lock p.p_lock;
  while p.p_value = None do
    Condition.wait p.p_cond p.p_lock
  done;
  let v = Option.get p.p_value in
  Mutex.unlock p.p_lock;
  v

let poll p = Mutex.protect p.p_lock (fun () -> p.p_value)

type job = {
  work : Engine.snapshot -> unit;
      (* runs on a worker domain; captures its own promise *)
}

type t = {
  queue : job Queue.t;
  lock : Mutex.t;
  not_empty : Condition.t;
  queue_depth : int;
  mutable closed : bool;
  mutable domains : unit Domain.t list;
  snap : Engine.snapshot Atomic.t;
  caches : Engine.caches;
  limits : Core.Governor.limits;
  max_parallelism : int;
      (* cap on per-request intra-query parallelism; 1 disables it *)
  mutable submitted : int;
  mutable rejected : int;
  completed : int Atomic.t;
  prepared_lock : Mutex.t;
  prepared_tbl : (int, string) Hashtbl.t;
  prepared_by_key : (string, int) Hashtbl.t;
  mutable next_prepared : int;
}

(* The per-request limits may only tighten the pool's defaults. *)
let tighten (pool : Core.Governor.limits) (req : Core.Governor.limits) =
  let min_opt a b =
    match a, b with
    | None, x | x, None -> x
    | Some a, Some b -> Some (min a b)
  in
  {
    Core.Governor.max_steps = min_opt pool.Core.Governor.max_steps req.max_steps;
    timeout_s = min_opt pool.timeout_s req.timeout_s;
    max_results = min_opt pool.max_results req.max_results;
  }

let worker_loop t () =
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.not_empty t.lock
    done;
    if Queue.is_empty t.queue && t.closed then Mutex.unlock t.lock
    else begin
      let job = Queue.pop t.queue in
      Mutex.unlock t.lock;
      (* jobs never raise: [work] wraps everything into its promise;
         a defensive handler keeps one bad job from killing a domain *)
      (try job.work (Atomic.get t.snap) with _ -> ());
      loop ()
    end
  in
  loop ()

let create ?workers ?queue_depth ?(limits = Core.Governor.unlimited)
    ?(max_parallelism = 1) ?(plan_cache_capacity = 256)
    ?(result_cache_capacity = 1024) snapshot =
  let workers =
    match workers with
    | Some w -> max 1 w
    | None -> max 1 (min 8 (Domain.recommended_domain_count () - 1))
  in
  let queue_depth =
    match queue_depth with Some d -> max 1 d | None -> 4 * workers
  in
  let t =
    {
      queue = Queue.create ();
      lock = Mutex.create ();
      not_empty = Condition.create ();
      queue_depth;
      closed = false;
      domains = [];
      snap = Atomic.make snapshot;
      caches =
        {
          Engine.plans = Lru.create ~capacity:plan_cache_capacity;
          results = Lru.create ~capacity:result_cache_capacity;
        };
      limits;
      max_parallelism = max 1 max_parallelism;
      submitted = 0;
      rejected = 0;
      completed = Atomic.make 0;
      prepared_lock = Mutex.create ();
      prepared_tbl = Hashtbl.create 16;
      prepared_by_key = Hashtbl.create 16;
      next_prepared = 1;
    }
  in
  t.domains <- List.init workers (fun _ -> Domain.spawn (worker_loop t));
  t

let enqueue t job =
  Mutex.protect t.lock (fun () ->
      if t.closed then begin
        t.rejected <- t.rejected + 1;
        Error Closed
      end
      else if Queue.length t.queue >= t.queue_depth then begin
        t.rejected <- t.rejected + 1;
        Metrics.incr (Metrics.counter "scheduler.rejected");
        Error Overloaded
      end
      else begin
        t.submitted <- t.submitted + 1;
        Queue.push job t.queue;
        Condition.signal t.not_empty;
        Ok ()
      end)

let submit t ?(limits = Core.Governor.unlimited) ?k ?theta ?trace ?parallelism
    request =
  let p = promise () in
  let limits = tighten t.limits limits in
  (* requested intra-query parallelism is clamped to the pool's cap,
     never raised: the operator sizes the domain budget, clients only
     choose how much of it one query may use *)
  let parallelism =
    match parallelism with
    | Some n -> Some (max 1 (min n t.max_parallelism))
    | None -> None
  in
  let work snap =
    let outcome =
      try
        Engine.exec ~caches:t.caches ~limits ?k ?theta ?trace ?parallelism snap
          request
      with exn ->
        Error
          (Engine.Storage
             (Printf.sprintf "internal error: %s" (Printexc.to_string exn)))
    in
    (* count before fulfilling: anyone woken by [await] then observes
       the completion in [stats] *)
    Atomic.incr t.completed;
    fulfil p outcome
  in
  match enqueue t { work } with Ok () -> Ok p | Error _ as e -> e

let run t ?limits ?k ?theta ?trace ?parallelism request =
  match submit t ?limits ?k ?theta ?trace ?parallelism request with
  | Ok p -> Ok (await p)
  | Error _ as e -> e

let explain t q =
  Engine.explain ~caches:t.caches ~snapshot:(Atomic.get t.snap) q

let submit_fn t fn =
  let p = promise () in
  let work _snap =
    (try fn () with _ -> ());
    Atomic.incr t.completed;
    fulfil p ()
  in
  match enqueue t { work } with Ok () -> Ok p | Error _ as e -> e

(* Prepared statements are named queries: the compiled plan lives in
   the plan cache under the query's canonical key, so Execute is a
   plain Query submission that hits the cache. *)
let prepare t q =
  let request = Engine.Query { q; mode = `Engine } in
  let key = Engine.canonical_key request in
  match
    Mutex.protect t.prepared_lock (fun () ->
        Hashtbl.find_opt t.prepared_by_key key)
  with
  | Some id -> Ok id
  | None -> begin
    match Query.Parser.parse q with
    | Error e -> Error (Engine.Parse_error (Format.asprintf "%a" Query.Parser.pp_error e))
    | Ok ast -> begin
      let outcome = Query.Compile.compile ast in
      match outcome with
      | Error reason ->
        Error (Engine.Unsupported (Printf.sprintf "not compilable: %s" reason))
      | Ok plan ->
        (* cache the costed plan under the same generation-prefixed
           key Execute's lookup uses; a later feedback-generation bump
           orphans the entry and Execute re-costs on the miss *)
        let snap = Atomic.get t.snap in
        let costed =
          Query.Compile.plan_with_stats ~feedback:snap.Engine.feedback ~key
            snap.Engine.db plan
        in
        Lru.add t.caches.Engine.plans
          (Engine.plan_cache_key snap key)
          (Ok costed);
        Mutex.protect t.prepared_lock (fun () ->
            match Hashtbl.find_opt t.prepared_by_key key with
            | Some id -> Ok id
            | None ->
              let id = t.next_prepared in
              t.next_prepared <- id + 1;
              Hashtbl.replace t.prepared_tbl id q;
              Hashtbl.replace t.prepared_by_key key id;
              Ok id)
    end
  end

let prepared t id =
  Mutex.protect t.prepared_lock (fun () -> Hashtbl.find_opt t.prepared_tbl id)

let snapshot t = Atomic.get t.snap
let caches t = t.caches

type reload_error = Same_generation of { generation : int }

let reload_error_to_string = function
  | Same_generation { generation } ->
    Printf.sprintf
      "reload rejected: snapshot has the current generation %d (result-cache \
       entries of the old snapshot would survive as hits for the new one)"
      generation

let reload t snapshot =
  let current = Atomic.get t.snap in
  if snapshot.Engine.generation = current.Engine.generation then
    Error (Same_generation { generation = snapshot.Engine.generation })
  else begin
    Atomic.set t.snap snapshot;
    Lru.clear t.caches.Engine.plans;
    Lru.clear t.caches.Engine.results;
    Metrics.incr (Metrics.counter "scheduler.reloads");
    Ok ()
  end

type stats = {
  workers : int;
  queue_depth : int;
  queued : int;
  submitted : int;
  rejected : int;
  completed : int;
  plan_cache : Lru.stats;
  result_cache : Lru.stats;
}

let stats t =
  let queued, submitted, rejected =
    Mutex.protect t.lock (fun () ->
        (Queue.length t.queue, t.submitted, t.rejected))
  in
  {
    workers = List.length t.domains;
    queue_depth = t.queue_depth;
    queued;
    submitted;
    rejected;
    completed = Atomic.get t.completed;
    plan_cache = Lru.stats t.caches.Engine.plans;
    result_cache = Lru.stats t.caches.Engine.results;
  }

let shutdown t =
  let domains =
    Mutex.protect t.lock (fun () ->
        if t.closed then []
        else begin
          t.closed <- true;
          Condition.broadcast t.not_empty;
          let ds = t.domains in
          t.domains <- [];
          ds
        end)
  in
  List.iter Domain.join domains
