(** Minimal JSON for the wire protocol and structured CLI output.

    The toolchain image carries no JSON library, so the service
    brings its own: a value type, a deterministic encoder (object
    fields are emitted in construction order, floats printed with
    ["%.12g"]), and a recursive-descent parser. Deterministic
    encoding is load-bearing: the multi-domain stress test compares
    encoded responses byte for byte. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** One line, no trailing newline; UTF-8 passed through, control
    characters and quotes escaped. Non-finite floats encode as
    [null] (JSON has no NaN). *)

val to_buffer : Buffer.t -> t -> unit

val parse : string -> (t, string) result
(** Errors carry a byte offset. Numbers without [.], [e] or [E]
    parse as [Int]; anything else as [Float]. *)

(** {1 Accessors} — shallow, total *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on absent field or non-object. *)

val to_int_opt : t -> int option
(** [Int n] and integral [Float]s. *)

val to_float_opt : t -> float option
val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option
