type delta_view = {
  delta_db : (Store.Db.t * Access.Ctx.t) option;
  tombstones : bool array;
  dense : int array;
  n_live : int;
  n_tomb : int;
  delta_docs : int;
}

type snapshot = {
  db : Store.Db.t;
  ctx : Access.Ctx.t;
  generation : int;
  source : string;
  delta : delta_view option;
  feedback : Ir.Stats.Feedback.t;
}

let of_db ?(generation = 0) ?(source = "<memory>") ?feedback db =
  let pager = Store.Element_store.pager (Store.Db.elements db) in
  match Store.Pager.pin pager with
  | Ok () ->
    Ok
      {
        db;
        ctx = Access.Ctx.of_db db;
        generation;
        source;
        delta = None;
        feedback =
          (match feedback with
          | Some f -> f
          | None -> Ir.Stats.Feedback.create ());
      }
  | Error e ->
    Error
      (Format.asprintf "cannot pin %s: %a" source Store.Pager.pp_read_error e)

let with_delta snapshot d =
  if Store.Delta.is_empty d then { snapshot with delta = None }
  else begin
    let tombstones = Store.Delta.tombstones d in
    let n_base = Array.length tombstones in
    let dense = Array.make (max n_base 1) (-1) in
    let n_live = ref 0 in
    for doc = 0 to n_base - 1 do
      if not tombstones.(doc) then begin
        dense.(doc) <- !n_live;
        incr n_live
      end
    done;
    let delta_db =
      Option.map (fun db -> (db, Access.Ctx.of_db db)) (Store.Delta.db d)
    in
    {
      snapshot with
      delta =
        Some
          {
            delta_db;
            tombstones;
            dense;
            n_live = !n_live;
            n_tomb = Store.Delta.tombstone_count d;
            delta_docs = Store.Delta.doc_count d;
          };
    }
  end

let is_tombstoned dv doc =
  doc >= 0 && doc < Array.length dv.tombstones && dv.tombstones.(doc)

let fault_stats snapshot =
  Store.Pager.fault (Store.Element_store.pager (Store.Db.elements snapshot.db))
  |> Option.map Store.Fault.stats

let load ?pool_pages ?verify ?generation path =
  match Store.Db.open_file ?pool_pages ?verify path with
  | Ok db -> of_db ?generation ~source:path db
  | Error e -> Error (Store.Db.error_to_string e)

(* ------------------------------------------------------------------ *)
(* Requests *)

type search_method = Termjoin | Enhanced | Genmeet | Comp1 | Comp2 | Auto

let search_method_of_string = function
  | "termjoin" -> Some Termjoin
  | "enhanced" -> Some Enhanced
  | "genmeet" -> Some Genmeet
  | "comp1" -> Some Comp1
  | "comp2" -> Some Comp2
  | "auto" -> Some Auto
  | _ -> None

let search_method_to_string = function
  | Termjoin -> "termjoin"
  | Enhanced -> "enhanced"
  | Genmeet -> "genmeet"
  | Comp1 -> "comp1"
  | Comp2 -> "comp2"
  | Auto -> "auto"

type request =
  | Query of { q : string; mode : [ `Auto | `Engine | `Interp ] }
  | Search of {
      terms : string list;
      method_ : search_method;
      complex : bool;
      anchor : string option;
    }
  | Phrase of { phrase : string; comp3 : bool }
  | Ranked of { terms : string list }

type row = { tag : string; doc : int; start : int; score : float }

type result = {
  rows : row list;
  trees : string list;
  total : int;
  cached : bool;
  plan : string option;
  timings : (string * float) list;
  steps_used : int;
  trace : Core.Trace.span option;
      (** the annotated span tree, present iff the request asked for
          tracing *)
}

type error =
  | Parse_error of string
  | Unsupported of string
  | Exhausted of Core.Governor.violation
  | Storage of string
  | Bad_request of string

let error_code = function
  | Parse_error _ -> "parse_error"
  | Unsupported _ -> "unsupported"
  | Exhausted _ -> "exhausted"
  | Storage _ -> "storage"
  | Bad_request _ -> "bad_request"

let error_message = function
  | Parse_error m | Unsupported m | Storage m | Bad_request m -> m
  | Exhausted v -> Core.Governor.violation_to_string v

(* Collapse whitespace runs outside string literals, so two spellings
   of one query share a cache entry without ever merging queries whose
   literals differ. The literal rules must agree with [Query.Lexer]:
   either quote character opens a literal, the same character closes
   it, and there are no escape sequences. The lexer keeps only the
   content, so ["abc"] and ['abc'] tokenize identically — the key
   re-quotes every literal with ["], falling back to ['] exactly when
   the content contains ["] (such a literal has no double-quoted
   spelling, so the fallback cannot collide). An unterminated literal
   is a lex error; its remainder is copied verbatim so two distinct
   erroneous queries never collapse onto one key. *)
let normalize_query q =
  let n = String.length q in
  let buf = Buffer.create n in
  let pending_ws = ref false in
  let sep () =
    if !pending_ws && Buffer.length buf > 0 then Buffer.add_char buf ' ';
    pending_ws := false
  in
  let i = ref 0 in
  while !i < n do
    match q.[!i] with
    | ' ' | '\t' | '\n' | '\r' ->
      pending_ws := true;
      incr i
    | ('"' | '\'') as quote ->
      sep ();
      (match String.index_from_opt q (!i + 1) quote with
      | Some stop ->
        let content = String.sub q (!i + 1) (stop - !i - 1) in
        let canon = if String.contains content '"' then '\'' else '"' in
        Buffer.add_char buf canon;
        Buffer.add_string buf content;
        Buffer.add_char buf canon;
        i := stop + 1
      | None ->
        (* unterminated: copy the rest verbatim, whitespace and all *)
        Buffer.add_substring buf q !i (n - !i);
        i := n)
    | c ->
      sep ();
      Buffer.add_char buf c;
      incr i
  done;
  Buffer.contents buf

let canonical_key = function
  | Query { q; mode } ->
    let m =
      match mode with `Auto -> "auto" | `Engine -> "engine" | `Interp -> "interp"
    in
    Printf.sprintf "query|%s|%s" m (normalize_query q)
  | Search { terms; method_; complex; anchor } ->
    Printf.sprintf "search|%s|%s%s|%s"
      (search_method_to_string method_)
      (if complex then "complex" else "simple")
      (match anchor with None -> "" | Some a -> "|a=" ^ a)
      (String.concat "\x00" terms)
  | Phrase { phrase; comp3 } ->
    Printf.sprintf "phrase|%s|%s"
      (if comp3 then "comp3" else "finder")
      (normalize_query phrase)
  | Ranked { terms } -> Printf.sprintf "ranked|%s" (String.concat "\x00" terms)

type caches = {
  plans : (Query.Compile.plan, string) Stdlib.result Lru.t;
  results : (row list * string list * int * string option) Lru.t;
}

(* Plan-cache keys fold the snapshot's feedback generation in front of
   the canonical request key: a material cardinality correction (a
   factor-2 move, see {!Ir.Stats.Feedback}) changes the key, so the
   next execution re-costs the plan instead of reusing a stale
   access-method choice. Reloads clear the caches outright. *)
let plan_cache_key snapshot key =
  Printf.sprintf "sg%d|%s" (Ir.Stats.Feedback.generation snapshot.feedback) key

(* ------------------------------------------------------------------ *)
(* Execution *)

let src = Logs.Src.create "tix.service" ~doc:"TIX query service engine"

module Log = (val Logs.src_log src)

let now = Unix.gettimeofday

(* Requests slower than this (seconds) are logged with their span
   tree when one was recorded. Set once at server startup. *)
let slow_query_threshold : float option Atomic.t = Atomic.make None
let set_slow_query_threshold s = Atomic.set slow_query_threshold s

(* Every recorded span also lands in a per-operator latency
   histogram, so EXPLAIN ANALYZE runs feed the service metrics. *)
let observe_spans span =
  Core.Trace.iter_span
    (fun (sp : Core.Trace.span) ->
      Metrics.observe_ns (Metrics.histogram ("span." ^ sp.name)) sp.elapsed_ns)
    span

let log_slow ~key ~dt trace_span =
  match Atomic.get slow_query_threshold with
  | Some threshold when dt >= threshold ->
    Metrics.incr (Metrics.counter "queries.slow");
    let tree =
      match trace_span with
      | Some sp -> "\n" ^ Core.Trace.span_to_string sp
      | None -> ""
    in
    Log.warn (fun m ->
        m "slow query (%.3fs >= %.3fs): %s%s" dt threshold key tree)
  | Some _ | None -> ()

let row_of_db db (n : Access.Scored_node.t) =
  let tag =
    Option.value ~default:"?" (Store.Db.tag_of db ~doc:n.doc ~start:n.start)
  in
  { tag; doc = n.doc; start = n.start; score = n.score }

let row_of_node snapshot n = row_of_db snapshot.db n

(* Row-level mirror of [Access.Scored_node.compare_score_desc]:
   score descending, ties in (doc, start) order. Merged base+delta
   rows are sorted with this after id remapping, which reproduces the
   order a from-scratch rebuild would emit. *)
let compare_row a b =
  match compare b.score a.score with
  | 0 -> ( match compare a.doc b.doc with 0 -> compare a.start b.start | c -> c)
  | c -> c

let op_counter name = Metrics.counter ("op." ^ name)

(* Mirror of the CLI's [governed] wrapper: access methods that are
   not internally governed still pay for their output cardinality
   and sample the deadline once. Returns the steps consumed alongside
   the results. *)
let governed limits f =
  let gov = Core.Governor.start limits in
  let results = f () in
  let n = List.length results in
  Core.Governor.tick_n gov n;
  Core.Governor.check_results gov n;
  Core.Governor.check_deadline gov;
  (results, Core.Governor.steps gov)

(* The parallel counterpart: one shared budget for every chunk of the
   query; chunks tick their attached governors as they emit, so the
   result cardinality is already accounted when the fan-in returns. *)
let governed_parallel limits f =
  let sh = Core.Governor.make_shared limits in
  let results = f sh in
  Core.Governor.shared_check_results sh (List.length results);
  Core.Governor.shared_check_deadline sh;
  (results, Core.Governor.shared_steps sh)

let truncate k rows =
  match k with
  | None -> rows
  | Some k when k < 0 -> rows
  | Some k -> List.filteri (fun i _ -> i < k) rows

let exec_query ~caches ~limits ~tracer snapshot ~q ~mode =
  let key = canonical_key (Query { q; mode }) in
  let timings = ref [] in
  let stage name f =
    let t0 = now () in
    let v = f () in
    let dt = now () -. t0 in
    timings := (name, dt) :: !timings;
    Metrics.observe_s (Metrics.histogram ("stage." ^ name)) dt;
    v
  in
  let compile_fresh () =
    match stage "parse" (fun () -> Query.Parser.parse q) with
    | Error e -> Error (Parse_error (Format.asprintf "%a" Query.Parser.pp_error e))
    | Ok ast ->
      Ok
        (stage "compile" (fun () ->
             (* cost the static plan against the collection statistics;
                the costed plan is what the cache holds, under a
                generation-prefixed key *)
             Result.map
               (fun plan ->
                 Query.Compile.plan_with_stats ~feedback:snapshot.feedback ~key
                   snapshot.db plan)
               (Query.Compile.compile ast)))
  in
  let cache_key = plan_cache_key snapshot key in
  let compiled =
    match caches with
    | Some c -> begin
      match Lru.find c.plans cache_key with
      | Some plan -> Ok plan
      | None -> begin
        match compile_fresh () with
        | Error _ as e -> e
        | Ok outcome ->
          Lru.add c.plans cache_key outcome;
          Ok outcome
      end
    end
    | None -> compile_fresh ()
  in
  match compiled with
  | Error e -> Error e
  | Ok compiled -> begin
    (* How many times the query reads [document(...)]. The merged
       base∪delta evaluation runs each half against its own store, so
       it is exact only when every binding derives from one document
       sequence — a query combining two [document(...)] reads could
       pair a base document with a delta document, which neither half
       can see. *)
    let document_reads (ast : Query.Ast.t) =
      let n = ref 0 in
      let rec expr (e : Query.Ast.expr) =
        match e with
        | Query.Ast.Document _ -> incr n
        | Query.Ast.Var _ | Query.Ast.String_lit _ | Query.Ast.Number_lit _
        | Query.Ast.String_set _ ->
          ()
        | Query.Ast.Path (base, steps) ->
          expr base;
          List.iter step steps
        | Query.Ast.Call (_, args) -> List.iter expr args
        | Query.Ast.Cmp (_, a, b) | Query.Ast.And (a, b) | Query.Ast.Or (a, b)
          ->
          expr a;
          expr b
      and step (s : Query.Ast.step) = List.iter pred s.Query.Ast.predicates
      and pred = function
        | Query.Ast.Pred_cmp (_, a, b) ->
          expr a;
          expr b
        | Query.Ast.Pred_exists e -> expr e
      in
      let constructor c =
        let rec go (Query.Ast.Elem_cons (_, attrs, children)) =
          List.iter (fun (_, e) -> expr e) attrs;
          List.iter
            (function
              | Query.Ast.Const_text _ -> ()
              | Query.Ast.Embedded e -> expr e
              | Query.Ast.Nested c -> go c)
            children
        in
        go c
      in
      List.iter
        (function
          | Query.Ast.For (_, e)
          | Query.Ast.Let (_, e)
          | Query.Ast.Where e ->
            expr e
          | Query.Ast.Score (_, _, args) | Query.Ast.Pick (_, _, args) ->
            List.iter expr args)
        ast.Query.Ast.clauses;
      constructor ast.Query.Ast.returns;
      (match ast.Query.Ast.thresh with
      | Some th -> expr th.Query.Ast.t_expr
      | None -> ());
      !n
    in
    let run_interp () =
      let exclude_docs =
        match snapshot.delta with
        | Some dv -> fun doc -> is_tombstoned dv doc
        | None -> fun _ -> false
      in
      Metrics.incr (op_counter "interp");
      match snapshot.delta with
      | Some dv when dv.delta_docs > 0 -> begin
        (* Evaluate the base (minus tombstones) and the delta each
           against its own store, raw — no sortby, no stop-after —
           concatenate base-then-delta (the rebuilt database's
           document order), then finalize once. Each half is lenient
           about a matchless [document(...)]: the matching documents
           may all live in the other half. *)
        match stage "parse" (fun () -> Query.Parser.parse q) with
        | Error e ->
          Error (Parse_error (Format.asprintf "%a" Query.Parser.pp_error e))
        | Ok ast when document_reads ast > 1 ->
          Error
            (Unsupported
               "a query reading document(...) more than once cannot run on \
                the interpreter while inserted/updated documents are \
                pending; checkpoint first")
        | Ok ast -> begin
          match
            stage "execute" (fun () ->
                let base_eval =
                  Query.Eval.create ~limits ~trace:tracer ~exclude_docs
                    ~lenient_docs:true snapshot.db
                in
                let base = Query.Eval.run_raw base_eval ast in
                let delta, delta_steps =
                  match dv.delta_db with
                  | None -> ([], 0)
                  | Some (ddb, _) ->
                    let delta_eval =
                      Query.Eval.create ~limits ~trace:tracer
                        ~lenient_docs:true ddb
                    in
                    let r = Query.Eval.run_raw delta_eval ast in
                    (r, Query.Eval.last_steps delta_eval)
                in
                ( Query.Eval.finalize ast (base @ delta),
                  Query.Eval.last_steps base_eval + delta_steps ))
          with
          | results, steps ->
            let trees =
              List.map (fun r -> Xmlkit.Printer.to_string ~indent:2 r) results
            in
            Ok ([], trees, None, steps)
          | exception Query.Eval.Error msg -> Error (Unsupported msg)
        end
      end
      | _ ->
        (* a fresh evaluator per query: its tree cache and governor
           slot are private, so the interpreter is domain-safe too.
           Tombstone-only deltas are exact via [exclude_docs]: hiding
           a document never changes the others' results. *)
        let evaluator =
          Query.Eval.create ~limits ~trace:tracer ~exclude_docs snapshot.db
        in
        (match stage "execute" (fun () -> Query.Eval.run_string evaluator q) with
        | Ok results ->
          let trees =
            List.map (fun r -> Xmlkit.Printer.to_string ~indent:2 r) results
          in
          Ok ([], trees, None, Query.Eval.last_steps evaluator)
        | Error msg -> Error (Unsupported msg))
    in
    (* After a costed plan ran: stamp its row estimate onto the span
       tree (EXPLAIN's est-vs-actual column) and feed the observed
       cardinality back into the snapshot's correction table so the
       next costing of this key is better calibrated. *)
    let note_plan_outcome (plan : Query.Compile.plan) n_out =
      match plan.Query.Compile.estimate with
      | None -> ()
      | Some d ->
        (* a result truncated by [stop after] is a lower bound on the
           operator's cardinality, not a measurement of it: only
           unsaturated runs feed the correction table *)
        let saturated =
          match plan.Query.Compile.limit with
          | Some l -> n_out >= l
          | None -> false
        in
        if not saturated then
          Ir.Stats.Feedback.observe snapshot.feedback ~key
            ~est:(float_of_int d.Query.Planner.est_rows)
            ~actual:(float_of_int n_out);
        (match Core.Trace.root tracer with
        | Some sp ->
          Core.Trace.apply_estimates sp
            [
              ( Access.Pattern_exec.access_operator plan.Query.Compile.access,
                d.Query.Planner.est_rows );
              ("CompiledQuery", d.Query.Planner.est_rows);
            ]
        | None -> ())
    in
    let run_plan plan =
      match snapshot.delta with
      | None ->
        let gov = Core.Governor.start limits in
        let nodes =
          stage "execute" (fun () ->
              Query.Compile.execute ~governor:gov ~trace:tracer snapshot.db
                plan)
        in
        note_plan_outcome plan (List.length nodes);
        Ok
          ( List.map (row_of_node snapshot) nodes,
            [],
            Some (Query.Compile.explain plan),
            Core.Governor.steps gov )
      | Some dv ->
        begin
          (* run base and delta separately and rank-merge: scores are
             corpus-stat free, so per-element results are unchanged by
             the split — including `pick` stages, which group scored
             nodes per document and select within each document's
             forest, so base/delta split execution picks exactly what
             one combined run would. The base limit is widened by the
             tombstone count so dropping dead documents cannot starve
             the merged top-K. *)
          let widened =
            match plan.Query.Compile.limit with
            | Some l -> { plan with Query.Compile.limit = Some (l + dv.n_tomb) }
            | None -> plan
          in
          let gov = Core.Governor.start limits in
          let base_nodes, delta_nodes =
            stage "execute" (fun () ->
                let base =
                  Query.Compile.execute ~governor:gov ~trace:tracer snapshot.db
                    widened
                in
                let delta =
                  match dv.delta_db with
                  | None -> []
                  | Some (ddb, _) ->
                    Query.Compile.execute ~governor:gov ~trace:tracer ddb plan
                in
                (base, delta))
          in
          let base_rows =
            List.filter_map
              (fun (n : Access.Scored_node.t) ->
                if is_tombstoned dv n.doc then None
                else
                  Some { (row_of_db snapshot.db n) with doc = dv.dense.(n.doc) })
              base_nodes
          in
          let delta_rows =
            match dv.delta_db with
            | None -> []
            | Some (ddb, _) ->
              List.map
                (fun (n : Access.Scored_node.t) ->
                  { (row_of_db ddb n) with doc = dv.n_live + n.doc })
                delta_nodes
          in
          let rows = List.sort compare_row (base_rows @ delta_rows) in
          let rows = truncate plan.Query.Compile.limit rows in
          note_plan_outcome plan (List.length rows);
          Ok
            ( rows,
              [],
              Some (Query.Compile.explain plan),
              Core.Governor.steps gov )
        end
    in
    let outcome =
      match compiled, mode with
      | Ok plan, (`Auto | `Engine) ->
        Metrics.incr (op_counter "engine_plan");
        run_plan plan
      | Error reason, `Engine ->
        Error (Unsupported (Printf.sprintf "not compilable: %s" reason))
      | Error _, (`Auto | `Interp) | Ok _, `Interp -> run_interp ()
    in
    match outcome with
    | Ok (rows, trees, plan, steps) ->
      Ok (rows, trees, plan, List.rev !timings, steps)
    | Error e -> Error e
  end

(* EXPLAIN without ANALYZE: parse and compile, print the plan the
   engine path would run, without touching the data pages. With
   [snapshot] the plan is costed against the collection statistics
   (and cached under the generation-prefixed key exec uses); without
   one, only the static rule is shown. *)
let explain ?caches ?snapshot q =
  let key = canonical_key (Query { q; mode = `Engine }) in
  let cache_key =
    match snapshot with Some s -> plan_cache_key s key | None -> key
  in
  let compiled =
    let fresh () =
      match Query.Parser.parse q with
      | Error e ->
        Error (Parse_error (Format.asprintf "%a" Query.Parser.pp_error e))
      | Ok ast ->
        Ok
          (Result.map
             (fun plan ->
               match snapshot with
               | Some s ->
                 Query.Compile.plan_with_stats ~feedback:s.feedback ~key s.db
                   plan
               | None -> plan)
             (Query.Compile.compile ast))
    in
    match caches with
    | Some c -> begin
      match Lru.find c.plans cache_key with
      | Some plan -> Ok plan
      | None -> begin
        match fresh () with
        | Error _ as e -> e
        | Ok outcome ->
          Lru.add c.plans cache_key outcome;
          Ok outcome
      end
    end
    | None -> fresh ()
  in
  match compiled with
  | Error e -> Error e
  | Ok (Ok plan) -> Ok (Query.Compile.explain plan)
  | Ok (Error reason) ->
    Error
      (Unsupported
         (Printf.sprintf
            "not compilable (would run on the interpreter): %s" reason))

let exec ?caches ?(limits = Core.Governor.unlimited) ?k ?theta ?(trace = false)
    ?parallelism snapshot request =
  Metrics.incr (Metrics.counter "queries.total");
  (* Parallel execution never changes results, so it shares the
     sequential cache key; [parallelism <= 1] (or an ineligible
     request shape) falls through to the sequential paths. *)
  let par = match parallelism with Some p when p > 1 -> p | _ -> 1 in
  let t0 = now () in
  (* One tracer per traced request; the shared disabled tracer keeps
     the untraced path allocation-free. *)
  let tracer = if trace then Core.Trace.make () else Core.Trace.disabled in
  let result_key =
    (* a θ hint legitimately prunes ranked answers below the relayed
       cutoff, so hinted and unhinted runs must never share a cache
       entry *)
    Printf.sprintf "g%d|k%s|t%s|%s" snapshot.generation
      (match k with None -> "*" | Some k -> string_of_int k)
      (match theta with None -> "*" | Some t -> Printf.sprintf "%h" t)
      (canonical_key request)
  in
  let cached_result =
    (* a traced request must actually execute: bypass the result
       cache in both directions *)
    if trace then None
    else
      match caches with
      | Some c -> Lru.find c.results result_key
      | None -> None
  in
  match cached_result with
  | Some (rows, trees, total, plan) ->
    Metrics.incr (Metrics.counter "queries.result_cache_hits");
    (* the plan text rides along in the cache so responses are
       cache-transparent — distributed coordinators parse the plan's
       row limit out of shard responses and must see it on hits too *)
    Ok
      {
        rows;
        trees;
        total;
        cached = true;
        plan;
        timings = [];
        steps_used = 0;
        trace = None;
      }
  | None -> begin
    let finish ~plan ~timings ~steps rows trees =
      let total = List.length rows + List.length trees in
      let rows = truncate k rows in
      let trees = truncate k trees in
      (match caches with
      | Some c when not trace ->
        Lru.add c.results result_key (rows, trees, total, plan)
      | Some _ | None -> ());
      let dt = now () -. t0 in
      Metrics.observe_s (Metrics.histogram "query.total") dt;
      let timings = timings @ [ ("total", dt) ] in
      let trace_span = Core.Trace.root tracer in
      Option.iter observe_spans trace_span;
      log_slow ~key:result_key ~dt trace_span;
      Ok
        {
          rows;
          trees;
          total;
          cached = false;
          plan;
          timings;
          steps_used = steps;
          trace = trace_span;
        }
    in
    let ranked_rows nodes =
      List.sort Access.Scored_node.compare_score_desc nodes
      |> List.map (row_of_node snapshot)
    in
    (* Node-result families (search, phrase): run the same access
       method over the base and the delta contexts, drop tombstoned
       base nodes, remap both sides into the dense merged id space
       and re-rank. Scores are per-element (no corpus statistics), so
       the split execution returns exactly what a from-scratch
       rebuild of base ∪ delta − tombstones would. *)
    let merged_node_rows ~run =
      match snapshot.delta with
      | None ->
        let nodes, steps = run snapshot.ctx in
        (ranked_rows nodes, steps)
      | Some dv ->
        let base_nodes, base_steps = run snapshot.ctx in
        let base_rows =
          List.filter_map
            (fun (n : Access.Scored_node.t) ->
              if is_tombstoned dv n.doc then None
              else
                Some { (row_of_db snapshot.db n) with doc = dv.dense.(n.doc) })
            base_nodes
        in
        let delta_rows, delta_steps =
          match dv.delta_db with
          | None -> ([], 0)
          | Some (ddb, dctx) ->
            let nodes, steps = run dctx in
            ( List.map
                (fun (n : Access.Scored_node.t) ->
                  { (row_of_db ddb n) with doc = dv.n_live + n.doc })
                nodes,
              steps )
        in
        ( List.sort compare_row (base_rows @ delta_rows),
          base_steps + delta_steps )
    in
    match
      match request with
      | Query { q; mode } -> begin
        match exec_query ~caches ~limits ~tracer snapshot ~q ~mode with
        | Ok (rows, trees, plan, timings, steps) ->
          finish ~plan ~timings ~steps rows trees
        | Error e -> Error e
      end
      | Search { terms; method_; complex; anchor } ->
        if terms = [] || List.exists (fun t -> String.trim t = "") terms then
          Error (Bad_request "search needs at least one non-empty term")
        else begin
          let mode =
            if complex then Access.Counter_scoring.Complex
            else Access.Counter_scoring.Simple
          in
          (* [Auto] resolves through the planner: the cheapest method
             by cost over the collection statistics, and a degree no
             larger than requested — degraded when the estimated
             per-partition occupancy would not amortize fork/join.
             An anchor resolves to its base-catalog tag id so the
             scoped-GenMeet candidate is priced too. *)
          let decision =
            match method_ with
            | Auto ->
              Metrics.incr (op_counter "auto");
              let anchor_tag =
                Option.bind anchor
                  (Store.Catalog.tag_id (Store.Db.catalog snapshot.db))
              in
              Some
                (Query.Planner.choose ~feedback:snapshot.feedback
                   ~key:(canonical_key request) ?anchor_tag ~parallelism:par
                   ~stats:(Store.Db.collection_stats snapshot.db)
                   ~index:(Store.Db.index snapshot.db) ~terms ())
            | _ -> None
          in
          let method_, par =
            match decision with
            | None -> (method_, par)
            | Some d ->
              let m =
                match d.Query.Planner.access with
                | Access.Pattern_exec.Term_join Access.Term_join.Plain ->
                  Termjoin
                | Access.Pattern_exec.Term_join Access.Term_join.Enhanced ->
                  Enhanced
                | Access.Pattern_exec.Gen_meet _ -> Genmeet
                | Access.Pattern_exec.Comp1 -> Comp1
                | Access.Pattern_exec.Comp2 -> Comp2
              in
              (m, d.Query.Planner.parallelism)
          in
          Metrics.incr (op_counter (search_method_to_string method_));
          (match method_ with
          | (Termjoin | Enhanced | Genmeet) when par > 1 && anchor = None ->
            Metrics.incr (Metrics.counter "queries.parallel")
          | _ -> ());
          let t0 = now () in
          let access_of_method = function
            | Termjoin -> Access.Pattern_exec.Term_join Access.Term_join.Plain
            | Enhanced ->
              Access.Pattern_exec.Term_join Access.Term_join.Enhanced
            | Genmeet -> Access.Pattern_exec.Gen_meet { use_skips = true }
            | Comp1 -> Access.Pattern_exec.Comp1
            | Comp2 -> Access.Pattern_exec.Comp2
            | Auto -> assert false (* resolved above *)
          in
          (* Anchored search: match the anchor elements as a trivial
             one-variable pattern, run the method (GenMeet scoped to
             the disjoint anchor subtrees), and keep only scored
             nodes that are an anchor or lie inside one. The anchor
             semi-join does not partition, so this path stays
             sequential. Each context resolves the tag against its
             own catalog — a tag only present in the delta still
             anchors there. *)
          let run_anchored tag_name ctx =
            governed limits (fun () ->
                match
                  Store.Catalog.tag_id ctx.Access.Ctx.catalog tag_name
                with
                | None -> []
                | Some _ ->
                  let pat =
                    Core.Pattern.make
                      (Core.Pattern.pnode
                         ~pred:(Core.Pattern.Tag tag_name) 0 [])
                      []
                  in
                  Access.Pattern_exec.scored_matches ~trace:tracer ~mode
                    ~access:(access_of_method method_) ctx pat ~struct_var:0
                    ~terms)
          in
          let run_unanchored ctx =
            match method_ with
            | (Termjoin | Enhanced | Genmeet) when par > 1 ->
              governed_parallel limits (fun shared ->
                  match method_ with
                  | Termjoin ->
                    Exec.Par.term_join ~trace:tracer ~shared ~mode
                      ~parallelism:par ctx ~terms
                  | Enhanced ->
                    Exec.Par.term_join ~trace:tracer ~shared
                      ~variant:Access.Term_join.Enhanced ~mode
                      ~parallelism:par ctx ~terms
                  | _ ->
                    Exec.Par.gen_meet ~trace:tracer ~shared ~mode
                      ~parallelism:par ctx ~terms)
            | _ ->
              (* the composite baselines materialize candidate sets and
                 stay sequential *)
              governed limits (fun () ->
                  match method_ with
                  | Termjoin ->
                    Access.Term_join.to_list ~trace:tracer ~mode ctx ~terms
                  | Enhanced ->
                    Access.Term_join.to_list ~trace:tracer
                      ~variant:Access.Term_join.Enhanced ~mode ctx ~terms
                  | Genmeet ->
                    Access.Gen_meet.to_list ~trace:tracer ~mode ctx ~terms
                  | Comp1 ->
                    Access.Composite.comp1_list ~trace:tracer ~mode ctx ~terms
                  | Comp2 ->
                    Access.Composite.comp2_list ~trace:tracer ~mode ctx ~terms
                  | Auto -> assert false (* resolved above *))
          in
          let run ctx =
            match anchor with
            | Some tag_name -> run_anchored tag_name ctx
            | None -> run_unanchored ctx
          in
          let rows, steps = merged_node_rows ~run in
          (match decision with
          | None -> ()
          | Some d ->
            Ir.Stats.Feedback.observe snapshot.feedback
              ~key:(canonical_key request)
              ~est:(float_of_int d.Query.Planner.est_rows)
              ~actual:(float_of_int (List.length rows));
            (match Core.Trace.root tracer with
            | Some sp ->
              Core.Trace.apply_estimates sp
                [
                  ( Access.Pattern_exec.access_operator d.Query.Planner.access,
                    d.Query.Planner.est_rows );
                ]
            | None -> ()));
          let dt = now () -. t0 in
          Metrics.observe_s (Metrics.histogram "stage.execute") dt;
          let plan =
            Option.map
              (fun d -> "planner: " ^ Query.Planner.to_string d)
              decision
          in
          finish ~plan ~timings:[ ("execute", dt) ] ~steps rows []
        end
      | Phrase { phrase; comp3 } -> begin
        match Ir.Phrase.parse phrase with
        | [] -> Error (Bad_request "empty phrase")
        | words ->
          Metrics.incr (op_counter (if comp3 then "comp3" else "phrase_finder"));
          if (not comp3) && par > 1 then
            Metrics.incr (Metrics.counter "queries.parallel");
          let t0 = now () in
          let run ctx =
            if (not comp3) && par > 1 then
              governed_parallel limits (fun shared ->
                  Exec.Par.phrase ~trace:tracer ~shared ~parallelism:par ctx
                    ~phrase:words)
            else
              governed limits (fun () ->
                  if comp3 then
                    Access.Composite.comp3_list ~trace:tracer ctx ~phrase:words
                  else
                    Access.Phrase_finder.to_list ~trace:tracer ctx
                      ~phrase:words)
          in
          let rows, steps = merged_node_rows ~run in
          let dt = now () -. t0 in
          Metrics.observe_s (Metrics.histogram "stage.execute") dt;
          finish ~plan:None ~timings:[ ("execute", dt) ] ~steps rows []
      end
      | Ranked { terms } ->
        if terms = [] || List.exists (fun t -> String.trim t = "") terms then
          Error (Bad_request "ranked needs at least one non-empty term")
        else begin
          Metrics.incr (op_counter "ranked");
          let kk = match k with Some k when k > 0 -> k | _ -> 10 in
          (* Route through the planner like search does: the access
             choice itself does not apply (ranked scans doc-level
             postings), but the degree degrades when the estimated
             per-partition occupancy would not amortize fork/join,
             and the learned cardinality correction warms across
             executions of the same term set. *)
          let decision =
            Query.Planner.choose ~feedback:snapshot.feedback
              ~key:(canonical_key request) ~parallelism:par
              ~stats:(Store.Db.collection_stats snapshot.db)
              ~index:(Store.Db.index snapshot.db) ~terms ()
          in
          let par = decision.Query.Planner.parallelism in
          if par > 1 then Metrics.incr (Metrics.counter "queries.parallel");
          let t0 = now () in
          let run ctx ~k =
            if par > 1 then
              governed_parallel limits (fun shared ->
                  Exec.Par.top_k_docs ~trace:tracer ~shared ?theta
                    ~parallelism:par ctx ~terms ~k)
            else
              governed limits (fun () ->
                  (* a θ hint seeds the same shared threshold the
                     parallel chunks use; pruning against it is exact
                     under the monotone-θ invariant (Core.Merge) *)
                  let shared_threshold =
                    Option.map (fun seed -> Core.Merge.Theta.make ~seed ()) theta
                  in
                  Access.Ranked.top_k_docs ~trace:tracer ?shared_threshold ctx
                    ~terms ~k)
          in
          let doc_row catalog remap (doc, score) =
            let tag =
              if doc >= 0 && doc < Store.Catalog.document_count catalog then
                Store.Catalog.document_name catalog doc
              else "?"
            in
            { tag; doc = remap doc; start = -1; score }
          in
          let rows, steps =
            match snapshot.delta with
            | None ->
              let docs, steps = run snapshot.ctx ~k:kk in
              ( List.map (doc_row (Store.Db.catalog snapshot.db) Fun.id) docs,
                steps )
            | Some dv ->
              (* widen the base run by the tombstone count: every live
                 document of the true merged top-K is then guaranteed
                 to be among the surviving base candidates *)
              let base_docs, base_steps =
                run snapshot.ctx ~k:(kk + dv.n_tomb)
              in
              let base_rows =
                List.filter_map
                  (fun (doc, score) ->
                    if is_tombstoned dv doc then None
                    else
                      Some
                        (doc_row
                           (Store.Db.catalog snapshot.db)
                           (fun d -> dv.dense.(d))
                           (doc, score)))
                  base_docs
              in
              let delta_rows, delta_steps =
                match dv.delta_db with
                | None -> ([], 0)
                | Some (ddb, dctx) ->
                  let docs, steps = run dctx ~k:kk in
                  ( List.map
                      (doc_row (Store.Db.catalog ddb) (fun d -> dv.n_live + d))
                      docs,
                    steps )
              in
              ( truncate (Some kk)
                  (List.sort compare_row (base_rows @ delta_rows)),
                base_steps + delta_steps )
          in
          (* a full top-K is a lower bound on the operator's true
             cardinality, not a measurement: only unsaturated runs
             feed the correction table *)
          if List.length rows < kk then
            Ir.Stats.Feedback.observe snapshot.feedback
              ~key:(canonical_key request)
              ~est:(float_of_int decision.Query.Planner.est_rows)
              ~actual:(float_of_int (List.length rows));
          let dt = now () -. t0 in
          Metrics.observe_s (Metrics.histogram "stage.execute") dt;
          finish
            ~plan:(Some ("planner: " ^ Query.Planner.to_string decision))
            ~timings:[ ("execute", dt) ] ~steps rows []
        end
    with
    | outcome -> outcome
    | exception Core.Governor.Resource_exhausted v ->
      Metrics.incr (Metrics.counter "queries.exhausted");
      Error (Exhausted v)
    | exception Store.Pager.Read_error e ->
      Metrics.incr (Metrics.counter "queries.storage_errors");
      Error (Storage (Format.asprintf "%a" Store.Pager.pp_read_error e))
    | exception Query.Eval.Error msg -> Error (Unsupported msg)
  end
