(** A mutex-protected LRU map with string keys.

    The shared building block of {!Plan_cache} and {!Result_cache}:
    bounded capacity, recency updated on every hit, eviction of the
    least recently used entry on overflow, and hit/miss/eviction
    counters. Safe to use from several domains at once. *)

type 'v t

type stats = { capacity : int; entries : int; hits : int; misses : int; evictions : int }

val create : capacity:int -> 'v t
(** [capacity <= 0] disables the cache: every {!find} misses, every
    {!add} is dropped. *)

val find : 'v t -> string -> 'v option
(** Counts a hit (and refreshes recency) or a miss. *)

val add : 'v t -> string -> 'v -> unit
(** Insert or replace; evicts the least recently used entry when the
    cache is full. *)

val clear : 'v t -> unit
(** Drop every entry (counters survive; evictions are not charged). *)

val stats : 'v t -> stats
val reset_stats : 'v t -> unit
