let src = Logs.Src.create "tix.updates" ~doc:"TIX live-update coordinator"

module Log = (val Logs.src_log src)

type t = {
  live : Store.Live.t;
  scheduler : Scheduler.t;
  publish : Mutex.t;
  every_docs : int option;
  every_bytes : int option;
  feedback_path : string option;
  (* Background-checkpoint coordination. [ck_running] covers both the
     worker thread and synchronous [checkpoint ~wait:true] callers, so
     at most one checkpoint is in flight at a time; [ck_requested]
     dedupes pending async requests. *)
  ck_lock : Mutex.t;
  ck_cond : Condition.t;
  mutable ck_requested : bool;
  mutable ck_running : bool;
  mutable ck_shutdown : bool;
  mutable ck_worker : Thread.t option;
}

type error = Store_error of Store.Live.error | Snapshot_error of string

let error_code = function
  | Store_error (Store.Live.Mutation_error e) -> begin
    match e with
    | Store.Delta.Duplicate_document _ -> "duplicate_document"
    | Store.Delta.Unknown_document _ -> "unknown_document"
    | Store.Delta.Parse_failed _ -> "parse_error"
  end
  | Store_error (Store.Live.Wal_error (Store.Wal.Sync_failed _)) ->
    "sync_failed"
  | Store_error (Store.Live.Wal_error _) -> "storage"
  | Store_error (Store.Live.Image_error _) -> "storage"
  | Store_error Store.Live.Checkpoint_in_progress -> "checkpoint_in_progress"
  | Snapshot_error _ -> "storage"

let error_message = function
  | Store_error e -> Store.Live.error_to_string e
  | Snapshot_error m -> m

let live t = t.live

(* ------------------------------------------------------------------ *)
(* Feedback persistence *)

let feedback_file = "feedback.dat"

let save_feedback t (snapshot : Engine.snapshot) =
  match t.feedback_path with
  | None -> ()
  | Some path -> begin
    let payload = Ir.Stats.Feedback.to_string snapshot.Engine.feedback in
    let tmp = path ^ ".tmp" in
    match
      let oc = open_out_bin tmp in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc payload);
      Sys.rename tmp path
    with
    | () ->
      Log.debug (fun m ->
          m "persisted %d feedback corrections to %s"
            (Ir.Stats.Feedback.observations snapshot.Engine.feedback)
            path)
    | exception Sys_error e ->
      Log.warn (fun m -> m "feedback persistence failed: %s" e)
  end

let load_feedback ~dir =
  let path = Filename.concat dir feedback_file in
  if not (Sys.file_exists path) then None
  else
    match
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with
    | payload -> begin
      match Ir.Stats.Feedback.of_string payload with
      | Some fb ->
        Log.info (fun m ->
            m "restored %d feedback corrections from %s"
              (Ir.Stats.Feedback.observations fb)
              path);
        Some fb
      | None ->
        Log.warn (fun m -> m "ignoring corrupt feedback table %s" path);
        None
    end
    | exception (Sys_error _ | End_of_file) -> None

(* ------------------------------------------------------------------ *)
(* Snapshot publication *)

(* Publish the store's current delta state over the scheduler's
   snapshot. The base db (and its pinned pager) is reused; only the
   delta view and the generation change. *)
let publish_delta t =
  let current = Scheduler.snapshot t.scheduler in
  let next =
    Engine.with_delta
      { current with Engine.generation = current.Engine.generation + 1 }
      (Store.Live.delta t.live)
  in
  match Scheduler.reload t.scheduler next with
  | Ok () -> Ok next.Engine.generation
  | Error e -> Error (Snapshot_error (Scheduler.reload_error_to_string e))

(* ------------------------------------------------------------------ *)
(* Checkpoint execution *)

(* The begin/prepare/install split keeps the expensive merge
   ([Store.Db.compact] + image save) off every lock: mutations and
   queries proceed against the frozen segment + live delta while
   [checkpoint_prepare] runs. Only the final install — swap the base,
   republish the snapshot — holds the publish lock, so a concurrent
   mutation can never publish a stale base with the new delta. *)
let do_checkpoint t =
  match Store.Live.checkpoint_begin t.live with
  | Error e -> Error (Store_error e)
  | Ok token -> begin
    match Store.Live.checkpoint_prepare t.live token with
    | Error e ->
      (match Store.Live.checkpoint_abort t.live with
      | Ok () -> ()
      | Error ae ->
        Log.err (fun m ->
            m "checkpoint abort failed: %s" (Store.Live.error_to_string ae)));
      Error (Store_error e)
    | Ok (merged, path) ->
      Mutex.lock t.publish;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.publish)
        (fun () ->
          Store.Live.checkpoint_install t.live merged path;
          let current = Scheduler.snapshot t.scheduler in
          match
            Engine.of_db ~feedback:current.Engine.feedback
              ~generation:(current.Engine.generation + 1)
              ~source:path (Store.Live.base t.live)
          with
          | Error msg -> Error (Snapshot_error msg)
          | Ok next -> begin
            let next = Engine.with_delta next (Store.Live.delta t.live) in
            match Scheduler.reload t.scheduler next with
            | Error e ->
              Error (Snapshot_error (Scheduler.reload_error_to_string e))
            | Ok () ->
              Metrics.incr (Metrics.counter "checkpoints.total");
              save_feedback t next;
              Log.info (fun m ->
                  m "checkpoint installed: %s (generation %d)" path
                    next.Engine.generation);
              Ok (path, next.Engine.generation)
          end)
  end

let run_guarded t =
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock t.ck_lock;
      t.ck_running <- false;
      Condition.broadcast t.ck_cond;
      Mutex.unlock t.ck_lock)
    (fun () ->
      let outcome = do_checkpoint t in
      (match outcome with
      | Ok _ -> ()
      | Error e ->
        Metrics.incr (Metrics.counter "checkpoints.failed");
        Log.err (fun m -> m "checkpoint failed: %s" (error_message e)));
      outcome)

let worker t () =
  let rec loop () =
    Mutex.lock t.ck_lock;
    while (not t.ck_shutdown) && ((not t.ck_requested) || t.ck_running) do
      Condition.wait t.ck_cond t.ck_lock
    done;
    if t.ck_shutdown then Mutex.unlock t.ck_lock
    else begin
      t.ck_requested <- false;
      t.ck_running <- true;
      Mutex.unlock t.ck_lock;
      (try ignore (run_guarded t)
       with e ->
         Log.err (fun m ->
             m "background checkpoint raised: %s" (Printexc.to_string e)));
      loop ()
    end
  in
  loop ()

type checkpoint_status = Completed of string * int | Started

let checkpoint ?(wait = true) t =
  if wait then begin
    (* Run on the caller's thread, after any in-flight background run
       drains, so the response carries the real outcome. *)
    Mutex.lock t.ck_lock;
    while t.ck_running do
      Condition.wait t.ck_cond t.ck_lock
    done;
    t.ck_requested <- false;
    t.ck_running <- true;
    Mutex.unlock t.ck_lock;
    Result.map (fun (path, gen) -> Completed (path, gen)) (run_guarded t)
  end
  else begin
    Mutex.lock t.ck_lock;
    if not (t.ck_requested || t.ck_running) then begin
      t.ck_requested <- true;
      Condition.broadcast t.ck_cond
    end;
    Mutex.unlock t.ck_lock;
    Ok Started
  end

let checkpoint_in_progress t =
  Mutex.lock t.ck_lock;
  let r = t.ck_running || t.ck_requested in
  Mutex.unlock t.ck_lock;
  r

(* Checkpoint automatically once the un-checkpointed state crosses a
   configured threshold. Requests are deduped: while one checkpoint is
   pending or running, the trigger is a no-op. *)
let maybe_trigger t =
  match (t.every_docs, t.every_bytes) with
  | None, None -> ()
  | _ ->
    if not (checkpoint_in_progress t) then begin
      let s = Store.Live.stats t.live in
      let docs = s.Store.Live.delta_documents + s.Store.Live.tombstones in
      let docs_hit =
        match t.every_docs with Some n -> docs >= n | None -> false
      in
      let bytes_hit =
        match t.every_bytes with
        | Some n -> s.Store.Live.wal_bytes >= n
        | None -> false
      in
      if docs_hit || bytes_hit then begin
        Log.info (fun m ->
            m "auto checkpoint trigger: delta=%d docs, wal=%d bytes" docs
              s.Store.Live.wal_bytes);
        Metrics.incr (Metrics.counter "checkpoints.auto");
        ignore (checkpoint ~wait:false t)
      end
    end

(* ------------------------------------------------------------------ *)
(* Mutations *)

let counted name outcome =
  (match outcome with
  | Ok _ -> Metrics.incr (Metrics.counter ("ingest." ^ name))
  | Error _ -> Metrics.incr (Metrics.counter "ingest.rejected"));
  outcome

let mutate t name op =
  let outcome =
    match op () with
    | Error e -> Error (Store_error e)
    | Ok () ->
      Metrics.incr (Metrics.counter "wal.appends");
      Mutex.lock t.publish;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.publish)
        (fun () -> publish_delta t)
  in
  let outcome = counted name outcome in
  (match outcome with Ok _ -> maybe_trigger t | Error _ -> ());
  outcome

let insert t ~name ~xml =
  mutate t "inserts" (fun () -> Store.Live.insert t.live ~name ~xml)

let delete t ~name =
  mutate t "deletes" (fun () -> Store.Live.delete t.live ~name)

let update t ~name ~xml =
  mutate t "updates" (fun () -> Store.Live.update t.live ~name ~xml)

(* ------------------------------------------------------------------ *)
(* Lifecycle *)

let create ?every_docs ?every_bytes ~live ~scheduler () =
  let t =
    {
      live;
      scheduler;
      publish = Mutex.create ();
      every_docs;
      every_bytes;
      feedback_path =
        Some (Filename.concat (Store.Live.dir live) feedback_file);
      ck_lock = Mutex.create ();
      ck_cond = Condition.create ();
      ck_requested = false;
      ck_running = false;
      ck_shutdown = false;
      ck_worker = None;
    }
  in
  t.ck_worker <- Some (Thread.create (worker t) ());
  t

let shutdown t =
  Mutex.lock t.ck_lock;
  t.ck_shutdown <- true;
  Condition.broadcast t.ck_cond;
  Mutex.unlock t.ck_lock;
  match t.ck_worker with
  | Some th ->
    Thread.join th;
    t.ck_worker <- None
  | None -> ()
