let src = Logs.Src.create "tix.updates" ~doc:"TIX live-update coordinator"

module Log = (val Logs.src_log src)

type t = {
  live : Store.Live.t;
  scheduler : Scheduler.t;
  publish : Mutex.t;
}

type error = Store_error of Store.Live.error | Snapshot_error of string

let error_code = function
  | Store_error (Store.Live.Mutation_error e) -> begin
    match e with
    | Store.Delta.Duplicate_document _ -> "duplicate_document"
    | Store.Delta.Unknown_document _ -> "unknown_document"
    | Store.Delta.Parse_failed _ -> "parse_error"
  end
  | Store_error (Store.Live.Wal_error (Store.Wal.Sync_failed _)) ->
    "sync_failed"
  | Store_error (Store.Live.Wal_error _) -> "storage"
  | Store_error (Store.Live.Image_error _) -> "storage"
  | Snapshot_error _ -> "storage"

let error_message = function
  | Store_error e -> Store.Live.error_to_string e
  | Snapshot_error m -> m

let create ~live ~scheduler = { live; scheduler; publish = Mutex.create () }
let live t = t.live

(* Publish the store's current delta state over the scheduler's
   snapshot. The base db (and its pinned pager) is reused; only the
   delta view and the generation change. *)
let publish_delta t =
  let current = Scheduler.snapshot t.scheduler in
  let next =
    Engine.with_delta
      { current with Engine.generation = current.Engine.generation + 1 }
      (Store.Live.delta t.live)
  in
  match Scheduler.reload t.scheduler next with
  | Ok () -> Ok next.Engine.generation
  | Error e -> Error (Snapshot_error (Scheduler.reload_error_to_string e))

let counted name outcome =
  (match outcome with
  | Ok _ -> Metrics.incr (Metrics.counter ("ingest." ^ name))
  | Error _ -> Metrics.incr (Metrics.counter "ingest.rejected"));
  outcome

let mutate t name op =
  Mutex.lock t.publish;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.publish)
    (fun () ->
      counted name
        (match op () with
        | Error e -> Error (Store_error e)
        | Ok () ->
          Metrics.incr (Metrics.counter "wal.appends");
          publish_delta t))

let insert t ~name ~xml =
  mutate t "inserts" (fun () -> Store.Live.insert t.live ~name ~xml)

let delete t ~name =
  mutate t "deletes" (fun () -> Store.Live.delete t.live ~name)

let update t ~name ~xml =
  mutate t "updates" (fun () -> Store.Live.update t.live ~name ~xml)

let checkpoint t =
  Mutex.lock t.publish;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.publish)
    (fun () ->
      match Store.Live.checkpoint t.live with
      | Error e -> Error (Store_error e)
      | Ok path -> begin
        let current = Scheduler.snapshot t.scheduler in
        match
          Engine.of_db
            ~generation:(current.Engine.generation + 1)
            ~source:path (Store.Live.base t.live)
        with
        | Error msg -> Error (Snapshot_error msg)
        | Ok next -> begin
          match Scheduler.reload t.scheduler next with
          | Error e ->
            Error (Snapshot_error (Scheduler.reload_error_to_string e))
          | Ok () ->
            Metrics.incr (Metrics.counter "checkpoints.total");
            Log.info (fun m ->
                m "checkpoint installed: %s (generation %d)" path
                  next.Engine.generation);
            Ok (path, next.Engine.generation)
        end
      end)
