(** Live-update coordinator: applies mutations to a {!Store.Live}
    store and republishes the scheduler's snapshot.

    Each successful mutation is WAL-durable before it is
    acknowledged (concurrent mutations share one group-commit fsync,
    see {!Store.Live}), and installs a fresh snapshot (same pinned
    base, new {!Engine.delta_view}, generation + 1) via
    {!Scheduler.reload} — reads stay lock-free and the
    generation-keyed caches invalidate exactly as on any other
    reload. {!checkpoint} merges the delta into a new immutable image
    and installs {e that} as the new base; the expensive merge runs
    off every lock (a background worker thread for async requests),
    so mutations and queries proceed while it is in flight.

    The coordinator also persists the snapshot's learned cardinality
    corrections ({!Ir.Stats.Feedback}) to [feedback.dat] in the
    store's directory on every installed checkpoint; {!load_feedback}
    restores them at boot so warmed corrections survive a restart. *)

type t

type error =
  | Store_error of Store.Live.error
  | Snapshot_error of string
      (** the mutation is durable but the new snapshot could not be
          built/installed — readers keep the previous generation *)

val error_code : error -> string
(** Protocol error code: [duplicate_document], [unknown_document],
    [parse_error], [sync_failed], [checkpoint_in_progress], [storage]
    or [bad_request]. *)

val error_message : error -> string

val create :
  ?every_docs:int ->
  ?every_bytes:int ->
  live:Store.Live.t ->
  scheduler:Scheduler.t ->
  unit ->
  t
(** The scheduler's installed snapshot must wrap [live]'s base.
    Starts the background checkpoint worker thread; call {!shutdown}
    to join it.

    [every_docs] requests an automatic background checkpoint once the
    delta holds that many documents + tombstones; [every_bytes] once
    the live WAL reaches that many bytes. Triggers are checked after
    each acknowledged mutation and deduped while a checkpoint is
    pending or running. *)

val shutdown : t -> unit
(** Stop and join the background worker. An in-flight checkpoint
    completes first. Idempotent. *)

val live : t -> Store.Live.t

val insert : t -> name:string -> xml:string -> (int, error) result
val delete : t -> name:string -> (int, error) result
val update : t -> name:string -> xml:string -> (int, error) result
(** On [Ok g], the mutation is durable and generation [g] serves it. *)

type checkpoint_status =
  | Completed of string * int
      (** image path and the generation serving the merged base *)
  | Started  (** async request accepted (or coalesced into one
                 already pending) *)

val checkpoint : ?wait:bool -> t -> (checkpoint_status, error) result
(** Merge base + delta and install the image as the new base
    snapshot. With [wait] (the default) the call runs the checkpoint
    on the calling thread — after any in-flight background run drains
    — and returns [Completed]. With [~wait:false] it only requests a
    background checkpoint and returns [Started] immediately; requests
    are deduped while one is pending or running. *)

val checkpoint_in_progress : t -> bool
(** A checkpoint is pending or running (async request or sync call on
    another thread). *)

val load_feedback : dir:string -> Ir.Stats.Feedback.t option
(** Read the persisted correction table ([feedback.dat]) from a live
    store directory, if present and well-formed. Pass the result to
    {!Engine.of_db} at boot. *)
