(** Live-update coordinator: applies mutations to a {!Store.Live}
    store and republishes the scheduler's snapshot.

    Each successful mutation is WAL-durable before it is
    acknowledged, and installs a fresh snapshot (same pinned base,
    new {!Engine.delta_view}, generation + 1) via {!Scheduler.reload}
    — reads stay lock-free and the generation-keyed caches invalidate
    exactly as on any other reload. {!checkpoint} merges the delta
    into a new immutable image and installs {e that} as the new base.

    Mutations are serialized by the underlying store's mutex plus a
    publish lock here; concurrent readers are never blocked. *)

type t

type error =
  | Store_error of Store.Live.error
  | Snapshot_error of string
      (** the mutation is durable but the new snapshot could not be
          built/installed — readers keep the previous generation *)

val error_code : error -> string
(** Protocol error code: [duplicate_document], [unknown_document],
    [parse_error], [sync_failed], [storage] or [bad_request]. *)

val error_message : error -> string

val create : live:Store.Live.t -> scheduler:Scheduler.t -> t
(** The scheduler's installed snapshot must wrap [live]'s base. *)

val live : t -> Store.Live.t

val insert : t -> name:string -> xml:string -> (int, error) result
val delete : t -> name:string -> (int, error) result
val update : t -> name:string -> xml:string -> (int, error) result
(** On [Ok g], the mutation is durable and generation [g] serves it. *)

val checkpoint : t -> (string * int, error) result
(** Merge and persist ({!Store.Live.checkpoint}), then install the
    merged database as the new base snapshot. [Ok (path, g)] gives
    the image path and the generation serving it. *)
