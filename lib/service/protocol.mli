(** The `tixd` wire protocol: newline-delimited JSON over TCP.

    One request object per line in, one response object per line out,
    in order. Ops:

    {v
    {"op":"query","q":"...","k":10,"mode":"auto|engine|interp"}
    {"op":"explain","q":"..."}         -> {"ok":true,"plan":"..."}
    {"op":"search","terms":["a","b"],"method":"termjoin","complex":false,"k":10}
    {"op":"phrase","phrase":"search engine","comp3":false,"k":10}
    {"op":"ranked","terms":["a","b"],"k":10}
    {"op":"prepare","q":"..."}         -> {"ok":true,"id":1}
    {"op":"execute","id":1,"k":10}
    {"op":"insert","name":"doc.xml","xml":"<a>...</a>"}
    {"op":"delete","name":"doc.xml"}
    {"op":"update","name":"doc.xml","xml":"<a>...</a>"}
    {"op":"checkpoint"}                -> {"ok":true,"path":...,"generation":g}
    {"op":"checkpoint","wait":false}   -> {"ok":true,"started":true}
    {"op":"stats"}
    {"op":"health"}
    v}

    Every request may carry ["timeout"] (seconds), ["max_steps"] and
    ["max_results"] — they tighten the server's per-query governor —
    and executing ops accept ["trace":true] (EXPLAIN ANALYZE: the
    response gains a ["trace"] span tree and the result cache is
    bypassed) and ["parallelism":n] (intra-query parallel execution
    across up to [n] domains, clamped to the server's
    [--parallelism] cap; results are identical to sequential).
    Responses are [{"ok":true,...}] or
    [{"ok":false,"error":{"code":c,"message":m}}].

    The encoders here are the single source of structured output: the
    TCP server, [tixdb client] and [tixdb query --format json] all
    share them. *)

type request =
  | Exec of {
      req : Engine.request;
      k : int option;
      limits : Core.Governor.limits;
      trace : bool;
      parallelism : int option;
      theta : float option;
          (** ranked max-score threshold hint: a cutoff already proven
              by another shard, relayed by a coordinator for
              cross-shard pruning ({!Engine.exec}'s [?theta]) *)
    }
  | Explain of { q : string }
  | Prepare of { q : string }
  | Execute of {
      id : int;
      k : int option;
      limits : Core.Governor.limits;
      trace : bool;
      parallelism : int option;
    }
  | Insert of { name : string; xml : string }
  | Remove of { name : string }
  | UpdateDoc of { name : string; xml : string }
  | Checkpoint of { wait : bool }
      (** [wait = false] requests a background checkpoint and
          acknowledges immediately; the default waits for the merged
          image to be installed *)
  | Stats
  | Health

val parse_request : string -> (request, string) result
(** One line of JSON; [Error] names the missing/ill-typed field. *)

val request_to_json : request -> Json.t
(** Inverse of {!parse_request} (used by the client). *)

(** {1 Responses} *)

val result_to_json :
  ?include_timings:bool -> ?extra:(string * Json.t) list -> Engine.result -> Json.t
(** [{"ok":true,"total":n,"cached":b,"steps_used":s,"results":[...],...}].
    Timings default to included; the stress test compares responses
    with timings stripped. [extra] appends caller fields (the
    distributed coordinator adds ["degraded"]/["shards"]). *)

val rows_to_json : Engine.row list -> Json.t

val span_to_json : Core.Trace.span -> Json.t
(** [{"op":name,"input":i,"output":o,"steps":s,"elapsed_ns":ns,
     "attrs":{...},"children":[...]}] — unknown ([-1]) cardinalities
    and empty attrs/children are omitted. *)

val ok_plan_to_json : string -> Json.t
(** [{"ok":true,"plan":p}] — the [explain] response. *)

val error_to_json : code:string -> message:string -> Json.t
val engine_error_to_json : Engine.error -> Json.t

val ok_prepared_to_json : int -> Json.t

val ok_mutation_to_json : op:string -> name:string -> generation:int -> Json.t
(** [{"ok":true,"op":o,"name":n,"generation":g}] — the acknowledged
    mutation is WAL-durable and generation [g] serves it. *)

val ok_checkpoint_to_json : path:string -> generation:int -> Json.t
(** [{"ok":true,"path":p,"generation":g}]. *)

val ok_checkpoint_started_to_json : unit -> Json.t
(** [{"ok":true,"op":"checkpoint","started":true}] — the async
    acknowledgement of [{"op":"checkpoint","wait":false}]. *)

val health_to_json :
  ?updatable:bool ->
  ?checkpoint_in_progress:bool ->
  ?verification:string ->
  ?shards:Json.t ->
  generation:int ->
  source:string ->
  unit ->
  Json.t
(** [updatable] reports whether the server accepts mutation ops
    (i.e. was started with a WAL directory); defaults to [false].
    [checkpoint_in_progress] (emitted only when given) reports a
    pending or running background checkpoint. [verification] surfaces the image checksum status of a lazily
    verified open (["verified"|"pending"|"failed"]); [shards] lets a
    coordinator attach its per-shard health aggregation. Both are
    omitted when absent. *)

val stats_to_json : ?updates:Updates.t -> Scheduler.t -> Json.t
(** Database, pager, scheduler, cache and metrics statistics; with
    [updates], also WAL/delta/checkpoint counters, and when the
    snapshot carries fault/delta state, those sections too. *)
