type t = {
  sock : Unix.file_descr;
  port : int;
  handler : Protocol.request -> Json.t;
  running : bool Atomic.t;
  mutable accept_thread : Thread.t option;
  accepted : int Atomic.t;
  conn_lock : Mutex.t;
  mutable conn_fds : Unix.file_descr list;
}

let handle ?updates scheduler (req : Protocol.request) =
  let mutation op run =
    match updates with
    | None ->
      Protocol.error_to_json ~code:"read_only"
        ~message:
          "server is read-only: start tixd with --wal-dir to accept updates"
    | Some u -> begin
      match run u with
      | Ok json -> json
      | Error e ->
        Protocol.error_to_json ~code:(Updates.error_code e)
          ~message:(Printf.sprintf "%s failed: %s" op (Updates.error_message e))
    end
  in
  let exec ?limits ?k ?theta ?trace ?parallelism request =
    match
      Scheduler.run scheduler ?limits ?k ?theta ?trace ?parallelism request
    with
    | Ok (Ok result) -> Protocol.result_to_json result
    | Ok (Error e) -> Protocol.engine_error_to_json e
    | Error e ->
      Protocol.error_to_json ~code:(Scheduler.error_code e)
        ~message:
          (match e with
          | Scheduler.Overloaded ->
            "submission queue full; retry with backoff"
          | Scheduler.Closed -> "server is shutting down")
  in
  match req with
  | Protocol.Exec { req; k; limits; trace; parallelism; theta } ->
    exec ~limits ?k ?theta ~trace ?parallelism req
  | Protocol.Explain { q } -> begin
    match Scheduler.explain scheduler q with
    | Ok plan -> Protocol.ok_plan_to_json plan
    | Error e -> Protocol.engine_error_to_json e
  end
  | Protocol.Prepare { q } -> begin
    match Scheduler.prepare scheduler q with
    | Ok id -> Protocol.ok_prepared_to_json id
    | Error e -> Protocol.engine_error_to_json e
  end
  | Protocol.Execute { id; k; limits; trace; parallelism } -> begin
    match Scheduler.prepared scheduler id with
    | Some q ->
      exec ~limits ?k ~trace ?parallelism (Engine.Query { q; mode = `Engine })
    | None ->
      Protocol.error_to_json ~code:"unknown_statement"
        ~message:(Printf.sprintf "no prepared statement %d" id)
  end
  | Protocol.Insert { name; xml } ->
    mutation "insert" (fun u ->
        Result.map
          (fun generation ->
            Protocol.ok_mutation_to_json ~op:"insert" ~name ~generation)
          (Updates.insert u ~name ~xml))
  | Protocol.Remove { name } ->
    mutation "delete" (fun u ->
        Result.map
          (fun generation ->
            Protocol.ok_mutation_to_json ~op:"delete" ~name ~generation)
          (Updates.delete u ~name))
  | Protocol.UpdateDoc { name; xml } ->
    mutation "update" (fun u ->
        Result.map
          (fun generation ->
            Protocol.ok_mutation_to_json ~op:"update" ~name ~generation)
          (Updates.update u ~name ~xml))
  | Protocol.Checkpoint { wait } ->
    mutation "checkpoint" (fun u ->
        Result.map
          (function
            | Updates.Completed (path, generation) ->
              Protocol.ok_checkpoint_to_json ~path ~generation
            | Updates.Started -> Protocol.ok_checkpoint_started_to_json ())
          (Updates.checkpoint ~wait u))
  | Protocol.Stats -> Protocol.stats_to_json ?updates scheduler
  | Protocol.Health ->
    let snap = Scheduler.snapshot scheduler in
    let verification =
      match Store.Db.verification snap.Engine.db with
      | `Verified -> "verified"
      | `Pending -> "pending"
      | `Failed _ -> "failed"
    in
    Protocol.health_to_json
      ~updatable:(Option.is_some updates)
      ?checkpoint_in_progress:
        (Option.map Updates.checkpoint_in_progress updates)
      ~verification ~generation:snap.Engine.generation
      ~source:snap.Engine.source ()

let track_conn t fd =
  Mutex.protect t.conn_lock (fun () -> t.conn_fds <- fd :: t.conn_fds)

let untrack_conn t fd =
  Mutex.protect t.conn_lock (fun () ->
      t.conn_fds <- List.filter (fun f -> f != fd) t.conn_fds)

let serve_connection t fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let respond line =
    let json =
      match Protocol.parse_request line with
      | Ok req -> t.handler req
      | Error msg -> Protocol.error_to_json ~code:"bad_request" ~message:msg
    in
    output_string oc (Json.to_string json);
    output_char oc '\n';
    flush oc
  in
  let rec loop () =
    match input_line ic with
    | "" -> loop ()
    | line ->
      respond line;
      loop ()
    | exception (End_of_file | Sys_error _ | Unix.Unix_error _) -> ()
  in
  (try loop () with _ -> ());
  untrack_conn t fd;
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t () =
  while Atomic.get t.running do
    match Unix.accept t.sock with
    | fd, _addr ->
      Atomic.incr t.accepted;
      track_conn t fd;
      ignore (Thread.create (fun () -> serve_connection t fd) ())
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED), _, _)
      ->
      if Atomic.get t.running then Thread.yield ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* The generic line-serving core: any [Protocol.request -> Json.t]
   dispatch behind the accept loop. The scheduler-backed [start] and
   the distributed coordinator ([tixq]) both serve through this, so
   the wire behaviour — framing, error shape, connection lifecycle —
   is identical at every tier. *)
let start_handler ?(name = "tixd") ?(host = "127.0.0.1") ?(port = 0) handler =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  let addr = Unix.ADDR_INET (Unix.inet_addr_of_string host, port) in
  (try Unix.bind sock addr
   with e ->
     Unix.close sock;
     raise e);
  Unix.listen sock 64;
  let actual_port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let t =
    {
      sock;
      port = actual_port;
      handler;
      running = Atomic.make true;
      accept_thread = None;
      accepted = Atomic.make 0;
      conn_lock = Mutex.create ();
      conn_fds = [];
    }
  in
  t.accept_thread <- Some (Thread.create (accept_loop t) ());
  Logs.info (fun m -> m "%s listening on %s:%d" name host actual_port);
  t

let start ?host ?port ?updates scheduler =
  start_handler ?host ?port (handle ?updates scheduler)

let port t = t.port
let connections t = Atomic.get t.accepted

let stop t =
  if Atomic.compare_and_set t.running true false then begin
    (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.sock with Unix.Unix_error _ -> ());
    (match t.accept_thread with
    | Some th ->
      Thread.join th;
      t.accept_thread <- None
    | None -> ());
    let fds = Mutex.protect t.conn_lock (fun () -> t.conn_fds) in
    List.iter
      (fun fd ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      fds
  end
