type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Encoding *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  if Float.is_nan f || Float.is_integer f && Float.abs f > 1e15 then
    Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    (* integral floats keep a ".0" so they round-trip as Float *)
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else if Float.abs f = Float.infinity then Buffer.add_string buf "null"
  else Buffer.add_string buf (Printf.sprintf "%.12g" f)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> add_float buf f
  | String s -> add_escaped buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> fail (Printf.sprintf "expected %c, found %c" c got)
    | None -> fail (Printf.sprintf "expected %c, found end of input" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' ->
        advance ();
        Buffer.contents buf
      | Some '\\' -> begin
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'
        | Some '\\' -> Buffer.add_char buf '\\'
        | Some '/' -> Buffer.add_char buf '/'
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some 't' -> Buffer.add_char buf '\t'
        | Some 'r' -> Buffer.add_char buf '\r'
        | Some 'b' -> Buffer.add_char buf '\b'
        | Some 'f' -> Buffer.add_char buf '\012'
        | Some 'u' ->
          advance ();
          let cp = parse_hex4 () in
          pos := !pos - 1;
          (* encode the code point as UTF-8; surrogate pairs are
             rejoined when both halves are escaped *)
          let cp =
            if cp >= 0xD800 && cp <= 0xDBFF
               && !pos + 7 <= n
               && s.[!pos + 1] = '\\'
               && s.[!pos + 2] = 'u'
            then begin
              let save = !pos in
              pos := !pos + 3;
              let lo = parse_hex4 () in
              pos := !pos - 1;
              if lo >= 0xDC00 && lo <= 0xDFFF then
                0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
              else begin
                pos := save;
                cp
              end
            end
            else cp
          in
          let add c = Buffer.add_char buf (Char.chr c) in
          if cp < 0x80 then add cp
          else if cp < 0x800 then begin
            add (0xC0 lor (cp lsr 6));
            add (0x80 lor (cp land 0x3F))
          end
          else if cp < 0x10000 then begin
            add (0xE0 lor (cp lsr 12));
            add (0x80 lor ((cp lsr 6) land 0x3F));
            add (0x80 lor (cp land 0x3F))
          end
          else begin
            add (0xF0 lor (cp lsr 18));
            add (0x80 lor ((cp lsr 12) land 0x3F));
            add (0x80 lor ((cp lsr 6) land 0x3F));
            add (0x80 lor (cp land 0x3F))
          end
        | Some c -> fail (Printf.sprintf "bad escape \\%c" c)
        | None -> fail "truncated escape");
        advance ();
        go ()
      end
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %s" text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> fail (Printf.sprintf "bad number %s" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((k, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> fail "expected , or } in object"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected , or ] in array"
        in
        List (items [])
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing characters";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) -> Error (Printf.sprintf "offset %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int_opt = function
  | Int n -> Some n
  | Float f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None
let to_bool_opt = function Bool b -> Some b | _ -> None
let to_list_opt = function List l -> Some l | _ -> None
