(** Fixed pool of domain workers behind a bounded submission queue.

    Admission control is the queue bound: {!submit} on a full queue
    returns [Error Overloaded] immediately — callers shed load
    instead of blocking the accept path. Every admitted request runs
    under a fresh {!Core.Governor.t} built from the pool's default
    limits (tightened per request), so one expensive query cannot
    starve the pool for ever.

    The snapshot is swappable: {!reload} installs a new generation
    atomically and invalidates both caches; in-flight queries finish
    against the snapshot they started with. *)

type t

type error = Overloaded | Closed

val error_code : error -> string

type 'a promise

val await : 'a promise -> 'a
(** Block the calling thread until a worker fulfils the promise. *)

val poll : 'a promise -> 'a option

val create :
  ?workers:int ->
  ?queue_depth:int ->
  ?limits:Core.Governor.limits ->
  ?max_parallelism:int ->
  ?plan_cache_capacity:int ->
  ?result_cache_capacity:int ->
  Engine.snapshot ->
  t
(** [workers] defaults to [Domain.recommended_domain_count () - 1]
    (min 1, max 8); [queue_depth] to [4 * workers]; cache capacities
    to 256 (plans) and 1024 (results); capacity 0 disables a cache.
    [max_parallelism] (default 1, i.e. disabled) caps the intra-query
    parallelism any single request may ask for. *)

val submit :
  t ->
  ?limits:Core.Governor.limits ->
  ?k:int ->
  ?theta:float ->
  ?trace:bool ->
  ?parallelism:int ->
  Engine.request ->
  ((Engine.result, Engine.error) result promise, error) result
(** Non-blocking admission. [limits] tightens (never loosens) the
    pool's defaults; [theta] and [trace] are forwarded to
    {!Engine.exec}; [parallelism] is clamped to the pool's
    [max_parallelism] and forwarded. *)

val run :
  t ->
  ?limits:Core.Governor.limits ->
  ?k:int ->
  ?theta:float ->
  ?trace:bool ->
  ?parallelism:int ->
  Engine.request ->
  ((Engine.result, Engine.error) result, error) result
(** {!submit} + {!await}. *)

val explain : t -> string -> (string, Engine.error) result
(** {!Engine.explain} against the pool's plan cache; runs inline on
    the calling thread (compilation only, no query execution). *)

val submit_fn : t -> (unit -> unit) -> (unit promise, error) result
(** Enqueue an opaque thunk (tests and benchmarks: occupying workers
    deterministically, draining barriers). Subject to the same
    admission control as queries. *)

val prepare : t -> string -> (int, Engine.error) result
(** Register a query text as a prepared statement, compiling it
    through the plan cache now; returns a dense id valid until
    {!shutdown}. Re-preparing the same canonical text returns the
    existing id. *)

val prepared : t -> int -> string option

val snapshot : t -> Engine.snapshot
val caches : t -> Engine.caches

type reload_error = Same_generation of { generation : int }

val reload_error_to_string : reload_error -> string

val reload : t -> Engine.snapshot -> (unit, reload_error) result
(** Install a snapshot and clear the plan and result caches. The new
    snapshot's [generation] must differ from the installed one:
    result-cache keys embed the generation, so installing a different
    snapshot under the same generation would let stale entries serve
    the new data — such a reload is rejected with
    [Same_generation]. *)

type stats = {
  workers : int;
  queue_depth : int;
  queued : int;
  submitted : int;
  rejected : int;
  completed : int;
  plan_cache : Lru.stats;
  result_cache : Lru.stats;
}

val stats : t -> stats

val shutdown : t -> unit
(** Drain the queue, stop accepting work, join every worker domain.
    Idempotent. *)
