(** The `tixd` TCP front end.

    A listener thread accepts connections; each connection gets its
    own (lightweight) thread that reads newline-delimited JSON
    requests, submits them to the {!Scheduler}'s domain pool, and
    writes one response line per request, in order. Blocking on a
    promise parks only the connection thread — evaluation parallelism
    comes from the worker domains, so many idle connections cost
    nothing and concurrent requests from different connections run
    truly in parallel. *)

type t

val start :
  ?host:string -> ?port:int -> ?updates:Updates.t -> Scheduler.t -> t
(** Bind and start serving. [port] defaults to 0 (kernel-assigned —
    read it back with {!port}); [host] to ["127.0.0.1"]. With
    [updates], the mutation ops ([insert]/[delete]/[update]/
    [checkpoint]) are served; without it they are rejected with
    [read_only]. Raises [Unix.Unix_error] when the address cannot be
    bound. *)

val start_handler :
  ?name:string ->
  ?host:string ->
  ?port:int ->
  (Protocol.request -> Json.t) ->
  t
(** The generic line-serving core behind {!start}: bind, accept, and
    answer each parsed request line through the given dispatch. The
    distributed coordinator ([tixq]) serves its scatter-gather
    dispatch through this, so coordinator and backend speak one wire
    protocol. [name] labels the startup log line. *)

val port : t -> int
val connections : t -> int
(** Connections accepted so far. *)

val handle : ?updates:Updates.t -> Scheduler.t -> Protocol.request -> Json.t
(** The server's request dispatch, exposed so tests and in-process
    clients can drive the full protocol without a socket. *)

val stop : t -> unit
(** Close the listening socket and join the accept thread. Open
    connections are shut down. Idempotent. Does not shut down the
    scheduler (the caller owns it). *)
