(** A shared read-only snapshot of one database, and uniform
    execution of service requests against it.

    A {!snapshot} pins the store's pager ({!Store.Pager.pin}), after
    which the whole read path — element pages, parent/tag indexes,
    frozen postings — is immutable shared state that any number of
    domains may evaluate queries against concurrently. Every worker
    of {!Scheduler} executes through {!exec}; the CLI reuses the same
    entry point so one query has one semantics everywhere. *)

type delta_view = {
  delta_db : (Store.Db.t * Access.Ctx.t) option;
      (** index over the delta documents; [None] when the delta holds
          only tombstones *)
  tombstones : bool array;  (** over base document ids *)
  dense : int array;
      (** base doc → its id in the merged (rebuild-equivalent) dense
          id space; [-1] for tombstoned docs *)
  n_live : int;  (** live base documents; delta doc [d] ↦ [n_live + d] *)
  n_tomb : int;
  delta_docs : int;
}
(** How a snapshot sees a pending {!Store.Delta}: queries run over
    the base and the delta separately and are merged in the dense id
    space, so results — ids, scores, order — equal a from-scratch
    rebuild of base ∪ delta − tombstones. *)

type snapshot = {
  db : Store.Db.t;
  ctx : Access.Ctx.t;
  generation : int;
      (** bumped on reload; caches key on it so a stale entry can
          never serve a new snapshot *)
  source : string;  (** image path, or ["<memory>"] *)
  delta : delta_view option;
      (** pending live updates layered over [db]; [None] for a purely
          immutable snapshot *)
  feedback : Ir.Stats.Feedback.t;
      (** per-snapshot cardinality corrections learned from executed
          queries; its generation is folded into plan-cache keys so a
          material correction change re-costs cached plans *)
}

val of_db :
  ?generation:int ->
  ?source:string ->
  ?feedback:Ir.Stats.Feedback.t ->
  Store.Db.t ->
  (snapshot, string) result
(** Pin the database's pager and wrap it (no delta). [Error] when a
    page fails its pin-time checksum verification. [feedback] carries
    an existing correction table into the new snapshot — a checkpoint
    republish keeps its warmed corrections, and a restart can restore
    a persisted table ({!Ir.Stats.Feedback.of_string}). *)

val load :
  ?pool_pages:int ->
  ?verify:[ `Eager | `Lazy ] ->
  ?generation:int ->
  string ->
  (snapshot, string) result
(** [Store.Db.open_file] + {!of_db}. [`Lazy] defers the image's CRC
    pass to a background thread ({!Store.Db.open_file}) so a shard
    process reaches serving state in O(1). *)

val with_delta : snapshot -> Store.Delta.t -> snapshot
(** Attach a delta segment's current state (documents, tombstones) to
    the snapshot. The segment must overlay the snapshot's own [db].
    The view is immutable — after further mutations, build a new
    snapshot. An empty delta yields [delta = None]. *)

val fault_stats : snapshot -> Store.Fault.injection_stats option
(** Injection counts of the fault injector attached to the base
    store's pager, if any — surfaced through the service [stats]
    response so fault-injected runs are observable over the wire. *)

(** {1 Requests} *)

type search_method = Termjoin | Enhanced | Genmeet | Comp1 | Comp2 | Auto

val search_method_of_string : string -> search_method option
val search_method_to_string : search_method -> string
(** [Auto] ("auto") resolves at execution time through
    {!Query.Planner.choose}: the cheapest method by estimated cost,
    with the requested parallelism degraded when the estimated
    per-partition occupancy is too low. The resolved method is
    recorded in the result's [plan] field and the [op.*] counters. *)

type request =
  | Query of { q : string; mode : [ `Auto | `Engine | `Interp ] }
      (** extended XQuery; [`Auto] compiles onto the access methods
          and falls back to the interpreter when the shape is outside
          the compilable fragment (and trees were retained) *)
  | Search of {
      terms : string list;
      method_ : search_method;
      complex : bool;
      anchor : string option;
          (** restrict scored nodes to elements lying inside (or
              being) an element with this tag. [Auto] prices the
              anchor-scoped GenMeet candidate; execution semi-joins
              the chosen method's output against the anchors and runs
              sequentially. An unknown tag yields no rows. *)
    }
  | Phrase of { phrase : string; comp3 : bool }
  | Ranked of { terms : string list }
      (** document-at-a-time max-score top-k over the given bag;
          routed through {!Query.Planner.choose} for the parallelism
          degree and the learned cardinality correction *)

type row = { tag : string; doc : int; start : int; score : float }
(** One scored element; for {!Ranked} rows, [start = -1] and [tag] is
    the document name. *)

val compare_row : row -> row -> int
(** Score descending, ties in [(doc, start)] order — the order every
    result family emits. Exposed so distributed merges (base+delta
    overlays, cross-shard gather) reproduce single-run output
    exactly. *)

type result = {
  rows : row list;
  trees : string list;
      (** rendered XML results of the interpreter path (rows empty) *)
  total : int;  (** result count before [k]-truncation *)
  cached : bool;
  plan : string option;  (** explain output of the compiled plan *)
  timings : (string * float) list;  (** stage -> seconds, in order *)
  steps_used : int;
      (** governor steps the execution consumed (0 for cache hits);
          for a parallel request, the shared budget's total across
          every domain *)
  trace : Core.Trace.span option;
      (** the annotated operator span tree (EXPLAIN ANALYZE), present
          iff the request was executed with [~trace:true] *)
}

type error =
  | Parse_error of string
  | Unsupported of string
      (** outside the compilable fragment with no retained trees to
          fall back to *)
  | Exhausted of Core.Governor.violation
  | Storage of string
  | Bad_request of string

val error_code : error -> string
val error_message : error -> string

val canonical_key : request -> string
(** Deterministic cache key: query text is whitespace-normalized
    outside string literals, term lists joined verbatim. Does not
    include [k] or the snapshot generation — {!Result_cache} adds
    those. *)

type caches = {
  plans : (Query.Compile.plan, string) Stdlib.result Lru.t;
      (** keyed by {!plan_cache_key}; [Error reason] caches the
          negative compile so the fallback decision is also cached.
          Cached plans are costed ({!Query.Compile.plan_with_stats}) *)
  results : (row list * string list * int * string option) Lru.t;
}

val plan_cache_key : snapshot -> string -> string
(** Prefix a {!canonical_key} with the snapshot's feedback
    generation ([sg<N>|…]): when an observed cardinality moves a
    correction materially, the generation bump invalidates every
    cached plan, forcing a re-cost on next use. *)

val exec :
  ?caches:caches ->
  ?limits:Core.Governor.limits ->
  ?k:int ->
  ?theta:float ->
  ?trace:bool ->
  ?parallelism:int ->
  snapshot ->
  request ->
  (result, error) Stdlib.result
(** Evaluate one request under a fresh governor. [k] truncates the
    ranked row list (default: keep everything). Stage latencies are
    recorded in {!Metrics} histograms ([stage.*]) and the executed
    operator in [op.*] counters.

    [theta] seeds {!Ranked} evaluation's shared max-score threshold
    with a cutoff already proven elsewhere — a distributed
    coordinator relaying other shards' published k-th-best scores
    ({!Core.Merge.Theta}). Documents whose score ceiling is strictly
    below the seed are pruned, so a hinted answer is a correct
    {e partial} answer from the coordinator's point of view: anything
    it omits provably cannot appear in the merged global top-k.
    Hinted results are cached under a θ-qualified key, never shared
    with unhinted runs. Other request shapes ignore the option.

    [parallelism] > 1 runs eligible requests — {!Search} with the
    termjoin/enhanced/genmeet methods, non-comp3 {!Phrase}, and
    {!Ranked} — through the intra-query parallel executor
    ({!Exec.Par}): the posting lists are partitioned into
    skip-block-aligned document ranges fanned out across up to that
    many domains, under one shared governor budget ([limits] bounds
    the whole query, and a breach reports exactly one
    {!error.Exhausted}). Results are identical to sequential
    execution, so parallel and sequential runs share cache entries;
    other request shapes (compiled/interpreted queries, composite
    baselines) ignore the option and run sequentially.

    With [~trace:true] the request runs with a live {!Core.Trace}
    tracer threaded through the operator pipeline: the result carries
    the span tree, each span's latency is folded into a [span.<op>]
    histogram, and the result cache is bypassed in both directions (a
    trace must measure a real execution, and an artificially slow
    traced run must not be served to untraced clients... nor the
    reverse). *)

val explain :
  ?caches:caches -> ?snapshot:snapshot -> string -> (string, error) Stdlib.result
(** EXPLAIN without executing: parse and compile the query, returning
    the engine plan's pretty-printed form. [Error Unsupported] when
    the query falls outside the compilable fragment (it would run on
    the interpreter). With [snapshot], the plan is costed against the
    collection statistics and the printout includes the chosen access
    method, its row estimate and the alternative cost table; the plan
    cache (when given) is keyed exactly as {!exec} keys it, so an
    explained plan is the plan the next execution runs. *)

val set_slow_query_threshold : float option -> unit
(** Requests slower than this many seconds are counted
    ([queries.slow]) and logged at warning level — with their span
    tree when tracing was on. [None] (the default) disables slow-query
    logging. *)
