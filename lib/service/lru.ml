(* Classic Hashtbl + doubly-linked list; [head] is most recent. All
   operations run under the mutex — cache lookups are tiny next to
   query evaluation, so a single lock does not bottleneck the pool. *)

type 'v node = {
  key : string;
  mutable value : 'v;
  mutable prev : 'v node option;  (* toward head / more recent *)
  mutable next : 'v node option;  (* toward tail / less recent *)
}

type 'v t = {
  capacity : int;
  tbl : (string, 'v node) Hashtbl.t;
  mutable head : 'v node option;
  mutable tail : 'v node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  lock : Mutex.t;
}

type stats = { capacity : int; entries : int; hits : int; misses : int; evictions : int }

let create ~capacity =
  {
    capacity;
    tbl = Hashtbl.create (max 16 capacity);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
    lock = Mutex.create ();
  }

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some nx -> nx.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let find (t : _ t) key =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.tbl key with
      | Some node ->
        t.hits <- t.hits + 1;
        unlink t node;
        push_front t node;
        Some node.value
      | None ->
        t.misses <- t.misses + 1;
        None)

let add (t : _ t) key value =
  if t.capacity > 0 then
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.tbl key with
        | Some node ->
          node.value <- value;
          unlink t node;
          push_front t node
        | None ->
          if Hashtbl.length t.tbl >= t.capacity then begin
            match t.tail with
            | Some victim ->
              unlink t victim;
              Hashtbl.remove t.tbl victim.key;
              t.evictions <- t.evictions + 1
            | None -> ()
          end;
          let node = { key; value; prev = None; next = None } in
          Hashtbl.replace t.tbl key node;
          push_front t node)

let clear (t : _ t) =
  Mutex.protect t.lock (fun () ->
      Hashtbl.reset t.tbl;
      t.head <- None;
      t.tail <- None)

let stats (t : _ t) =
  Mutex.protect t.lock (fun () ->
      {
        capacity = t.capacity;
        entries = Hashtbl.length t.tbl;
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
      })

let reset_stats (t : _ t) =
  Mutex.protect t.lock (fun () ->
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0)
