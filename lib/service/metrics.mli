(** Service-wide counters and latency histograms.

    A process-global registry: {!counter} and {!histogram} intern by
    name, so every module that names ["queries.total"] shares one
    atomic cell. Counters are lock-free; histograms bucket
    nanoseconds into powers of two, which makes p50/p99 estimation a
    scan over 40 cells. {!dump} renders everything as stable sorted
    text, {!to_json} as a JSON object for the [stats] protocol op. *)

type counter
type histogram

val counter : string -> counter
(** Intern (create on first use) the named counter. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val histogram : string -> histogram
(** Intern the named latency histogram. *)

val observe_ns : histogram -> int -> unit
val observe_s : histogram -> float -> unit
(** Seconds, converted (rounded, not truncated) to nanoseconds. *)

val bucket_of_ns : int -> int
(** The bucket index an observation lands in: 0 for [ns <= 1],
    otherwise [floor (log2 ns)] capped at the last bucket. Computed
    with integer bit arithmetic — exact at power-of-two boundaries
    where the float path rounds the wrong way. Exposed for property
    tests. *)

val hist_count : histogram -> int

val quantile_ns : histogram -> float -> float
(** [quantile_ns h 0.99] estimates the q-quantile in nanoseconds by
    linear interpolation inside the winning power-of-two bucket;
    [nan] when the histogram is empty. *)

val mean_ns : histogram -> float

val dump : unit -> string
(** All counters then all histograms (count/mean/p50/p90/p99), sorted
    by name — one metric per line. *)

val to_json : unit -> Json.t

val reset : unit -> unit
(** Zero every registered metric (tests and benchmarks). *)
