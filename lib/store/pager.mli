(** A page store with an LRU buffer pool.

    Pages model the disk-resident layout of the TIMBER-style database
    the paper runs inside: every record access goes through
    {!read_page}, misses pay a page transfer (a copy into a pool
    frame) and statistics expose how much of the database each access
    method touches.

    Every appended page is checksummed (CRC-32); the checksum is
    re-verified on every pool miss, so a damaged transfer — whether
    injected through {!set_fault} or caused by real bit rot in the
    stable storage — surfaces as a typed {!Read_error} instead of
    silently wrong records. Transient faults are retried up to the
    injector's budget before giving up. *)

type t

type stats = {
  page_count : int;
  reads : int;  (** logical page reads *)
  misses : int;  (** reads that were not served from the pool *)
  bytes_transferred : int;
  failures : int;
      (** reads that ended in an error: out-of-bounds page ids,
          exhausted transient retries and checksum mismatches *)
}

(** {1 Read faults} *)

type fault_kind =
  | Transient_exhausted  (** every retry of a transient fault failed *)
  | Checksum_mismatch  (** page bytes do not match their checksum *)

type read_error = {
  page : int;
  kind : fault_kind;
  attempts : int;  (** physical read attempts made *)
  detail : string;
}

exception Read_error of read_error

val pp_read_error : Format.formatter -> read_error -> unit

val default_page_size : int

val create : ?pool_pages:int -> page_size:int -> unit -> t
(** [pool_pages] is the buffer-pool capacity in frames
    (default 1024). *)

val of_mapped : page_size:int -> buf:Ir.Codec.buf -> (int * int) array -> t
(** [of_mapped ~page_size ~buf slices] is a read-only pager whose
    page [i] is the [(offset, length)] slice [slices.(i)] of [buf] —
    typically an mmap'd database image whose section checksum was
    already verified over the map. The pager is born pinned ({!pin}
    is O(1)), pages materialize into [Bytes.t] lazily on first read
    (published atomically, so the map is shared read-only across all
    domains), and {!append_page} raises [Invalid_argument].
    {!set_fault} injectors are never consulted: the map is the stable
    storage, and image integrity is the CRC's job. First-touch copies
    are counted as misses/bytes transferred in {!stats}; subsequent
    reads count as pinned reads. *)

val page_size : t -> int
val append_page : t -> Bytes.t -> int
(** Add a page to stable storage (build time); returns its id.
    The page may be longer than [page_size] (oversized record). *)

val page_count : t -> int

val read_page : t -> int -> Bytes.t
(** Fetch a page through the buffer pool. The returned bytes must be
    treated as read-only. Raises [Invalid_argument] on an
    out-of-bounds page id (the message names the page id and the
    page count) and {!Read_error} when the physical read fails
    permanently. *)

val read_page_result : t -> int -> (Bytes.t, read_error) result
(** Like {!read_page} but returns failed reads as values.
    Out-of-bounds ids still raise [Invalid_argument]: asking for a
    page that never existed is a caller bug, not a disk fault. *)

val set_fault : t -> Fault.t option -> unit
(** Attach (or clear) a fault injector; it is consulted on every
    subsequent pool miss. Frames already resident serve hits without
    touching the injector — call {!clear_pool} to force cold reads. *)

val fault : t -> Fault.t option

val stats : t -> stats
val reset_stats : t -> unit
val clear_pool : t -> unit
(** Drop every frame: makes the next reads cold, so experiments start
    from a known state. *)

(** {1 Concurrency}

    A pager may be read from several domains at once: pool state
    (frames, statistics) is mutex-protected. For a read-only snapshot
    the lock can be bypassed entirely with {!pin}. *)

val pin : t -> (unit, read_error) result
(** Verify every stable page's checksum once, then serve all
    subsequent reads lock-free straight from stable storage (no pool,
    no misses, no transfers — the image is memory-resident). The
    first damaged page is reported as [Error] and the pager stays
    unpinned. A pinned pager must not receive further
    {!append_page}s, and the bytes {!read_page} returns are the
    stable pages themselves — the read-only contract is load-bearing. *)

val pinned : t -> bool
