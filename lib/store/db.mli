(** The database facade: loads XML documents into the element store,
    the parent index and the inverted index in one pass. *)

type t

type error =
  | Not_a_database of { path : string }
      (** the file does not start with a TIX magic header *)
  | Unsupported_version of { path : string; found : string }
      (** a TIX image, but of a format this build cannot read *)
  | Truncated of { path : string; detail : string }
      (** the file ends before the data its header promises *)
  | Checksum_mismatch of {
      path : string;
      section : string;
      expected : int;
      actual : int;
    }  (** a section's payload does not match its stored CRC-32 *)
  | Corrupt of { path : string; detail : string }
      (** checksums pass but the image is structurally inconsistent *)
  | Io_error of { path : string; detail : string }

type load_options = {
  stem : bool;  (** Porter-stem indexed terms (default false) *)
  page_size : int;
  pool_pages : int;
  keep_trees : bool;
      (** retain parsed trees (and their numberings) so query results
          can be materialized as subtrees; turn off for large
          generated corpora (default true) *)
}

val default_options : load_options

type stats = {
  documents : int;
  elements : int;
  distinct_terms : int;
  occurrences : int;
  pages : int;
  index_bytes : int;
}

val load : ?options:load_options -> (string * Xmlkit.Tree.element) Seq.t -> t
(** [load docs] ingests the named documents in order; ids are
    assigned densely from 0. *)

val of_documents : ?options:load_options -> (string * Xmlkit.Tree.element) list -> t

type load_failure = { document : string; reason : string }

type load_report = { loaded : int; failed : load_failure list }
(** [failed] is in input order. *)

val load_isolated :
  ?options:load_options ->
  (string * (Xmlkit.Tree.element, string) result) Seq.t ->
  t * load_report
(** Skip-and-report bulk load: documents whose parse already failed
    ([Error reason]) and documents whose ingest raises are recorded
    in the report and skipped, instead of aborting the whole load.
    Each document is dry-run numbered before it touches any builder,
    so a failing document leaves no partial records behind. *)

val pp_load_report : Format.formatter -> load_report -> unit

val catalog : t -> Catalog.t
val elements : t -> Element_store.t
val parents : t -> Parent_index.t
val tags : t -> Tag_index.t
val index : t -> Ir.Inverted_index.t
val stats : t -> stats

val collection_stats : t -> Ir.Stats.t
(** Planner statistics (corpus aggregates, per-tag counts, path
    synopsis). Decoded from the image's optional [stats] section when
    present; otherwise computed by one element-store scan on first
    use and cached. Safe to call from any domain. *)

val document_id : t -> string -> int option

val subtree : t -> doc:int -> start:int -> Xmlkit.Tree.element option
(** Materialize the element with the given start key from the
    retained tree. [None] when the key is unknown or trees were not
    kept. *)

val numbering : t -> doc:int -> Xmlkit.Numbering.t option

val tag_of : t -> doc:int -> start:int -> string option
(** Tag name of the element with the given start key, resolved
    through the parent index and the catalog (no data-page access). *)

val compact : base:t -> delta:t option -> tombstones:bool array -> t
(** Merge a delta segment into a fresh database: live base documents
    (those not marked in [tombstones]) keep their relative order and
    are renumbered densely from 0, delta documents follow in their
    own id order. Element records and posting occurrences are
    re-added under the new ids, so the result is equivalent to
    loading the surviving documents from scratch — this is the
    checkpoint's merge step. Retained trees survive when every
    surviving source had them ([base] live docs and [delta]);
    otherwise the result keeps none, like an image-loaded database. *)

(** {1 Persistence}

    A saved image is versioned and checksummed: a magic header
    ([TIXDB004]) followed by five or six framed sections (catalog,
    element pages, inverted index, parent index, tag index, and an
    optional planner-statistics section), each carrying
    its length and a CRC-32 of its payload. {!open_file} verifies
    every checksum before decoding a byte of a section, so any
    corruption of the image — a flipped bit, a torn write, a
    truncation — is reported as a typed {!error}, never as a crash
    or a silently wrong database.

    Version 4 images are opened {e zero-copy}: the file is mapped
    into memory and the checksum pass, the posting blocks and the
    element pages all read the map in place. Opening cost is
    dominated by the CRC scan, not by decoding, and resident memory
    is shared read-only across domains by the OS page cache.
    Version 3 images ([TIXDB003], varint postings, no parent/tag
    sections) are still readable: they are upgraded transparently in
    memory at open, and saving the result writes version 4. *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

val save : ?with_stats:bool -> t -> string -> unit
(** [save db path] writes the current-version ([TIXDB004]) database
    image — catalog, element pages, inverted index, parent index,
    tag index and (by default) the planner statistics section — to
    one file. The write is atomic: the image is assembled in a
    temporary file in the same directory and renamed over [path], so
    a crash mid-save never leaves a torn image behind. Retained
    trees are not persisted. [~with_stats:false] omits the sixth
    section, producing the five-section layout older readers framed;
    such images recompute statistics on first {!collection_stats}
    call after open. *)

val save_v3 : t -> string -> unit
(** Write a legacy [TIXDB003] image (varint postings, three
    sections). Exists for compatibility testing and as the baseline
    of the decode benchmarks; new images should use {!save}. *)

val open_file :
  ?pool_pages:int -> ?verify:[ `Eager | `Lazy ] -> string -> (t, error) result
(** Load a database image. Version 4 images are mapped zero-copy
    (element pages materialize lazily on first access;
    [?pool_pages] is ignored — the map itself is the pool); version
    3 images are read into memory and upgraded on the fly. Trees are
    not retained (queries must use the compiled engine path or
    reload the source documents).

    [verify] (default [`Eager]) controls the CRC pass on version-4
    images: [`Eager] verifies every section checksum before
    returning; [`Lazy] performs only the O(1) structural framing,
    returns immediately, and runs the checksum scan on a background
    thread — poll {!verification} or block on {!await_verification}
    for the verdict. Version-3 images always verify eagerly (their
    upgrade decodes every byte anyway). *)

val verification : t -> [ `Verified | `Pending | `Failed of error ]
(** Checksum status of the image behind this database. In-memory
    builds and eager opens are always [`Verified]; a lazy open is
    [`Pending] until its background scan lands. *)

val await_verification : t -> (unit, error) result
(** Block until a lazy open's background checksum scan completes and
    return its verdict; immediate on eager/in-memory databases. *)

val open_file_exn : ?pool_pages:int -> ?verify:[ `Eager | `Lazy ] -> string -> t
(** Like {!open_file} but raises [Failure] with the printed error —
    the pre-typed-error behaviour, kept for callers that treat a bad
    image as fatal. *)

val pp_stats : Format.formatter -> stats -> unit
