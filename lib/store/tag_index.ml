type item = { doc : int; start : int; end_ : int; level : int }

type t = {
  by_tag : item array array;
  everything : item array;
  everything_tags : int array;  (* tag of everything.(i), for [save] *)
}

type builder = {
  mutable per_tag : item list array;  (* reverse document order *)
  mutable all_rev : (int * item) list;  (* (tag, item) *)
  mutable total : int;
  mutable last : int * int;
}

let builder () =
  { per_tag = Array.make 16 []; all_rev = []; total = 0; last = (-1, -1) }

let add b ~tag item =
  if (item.doc, item.start) <= b.last then
    invalid_arg "Tag_index.add: items out of order";
  b.last <- (item.doc, item.start);
  let capacity = Array.length b.per_tag in
  if tag >= capacity then begin
    let fresh = Array.make (max (capacity * 2) (tag + 1)) [] in
    Array.blit b.per_tag 0 fresh 0 capacity;
    b.per_tag <- fresh
  end;
  b.per_tag.(tag) <- item :: b.per_tag.(tag);
  b.all_rev <- (tag, item) :: b.all_rev;
  b.total <- b.total + 1

let freeze b =
  let n = b.total in
  let everything = Array.make n { doc = 0; start = 0; end_ = 0; level = 0 } in
  let everything_tags = Array.make n 0 in
  List.iteri
    (fun i (tag, item) ->
      let j = n - 1 - i in
      everything.(j) <- item;
      everything_tags.(j) <- tag)
    b.all_rev;
  {
    by_tag = Array.map (fun l -> Array.of_list (List.rev l)) b.per_tag;
    everything;
    everything_tags;
  }

let nodes t ~tag =
  if tag >= 0 && tag < Array.length t.by_tag then t.by_tag.(tag) else [||]

let all t = t.everything
let count t ~tag = Array.length (nodes t ~tag)
let tag_count t = Array.length t.by_tag

(* Serialized as the flat (tag, item) stream in document order
   (TIXDB004 section 5); the per-tag arrays are rebuilt by a counting
   pass at load — each one is a stable subsequence of the stream, so
   per-tag document order is preserved by construction. *)

let save t buf =
  Ir.Codec.add_varint buf (Array.length t.by_tag);
  Ir.Codec.add_varint buf (Array.length t.everything);
  Array.iteri
    (fun i item ->
      Ir.Codec.add_varint buf t.everything_tags.(i);
      Ir.Codec.add_varint buf item.doc;
      Ir.Codec.add_varint buf item.start;
      Ir.Codec.add_varint buf item.end_;
      Ir.Codec.add_varint buf item.level)
    t.everything

let load buf off =
  let ntags, off = Ir.Codec.read_varint_buf buf off in
  let total, off = Ir.Codec.read_varint_buf buf off in
  let everything = Array.make total { doc = 0; start = 0; end_ = 0; level = 0 } in
  let everything_tags = Array.make total 0 in
  let off = ref off in
  let rd () =
    let v, o = Ir.Codec.read_varint_buf buf !off in
    off := o;
    v
  in
  for i = 0 to total - 1 do
    let tag = rd () in
    if tag >= ntags then failwith "Tag_index.load: tag id out of range";
    let doc = rd () in
    let start = rd () in
    let end_ = rd () in
    let level = rd () in
    everything_tags.(i) <- tag;
    everything.(i) <- { doc; start; end_; level }
  done;
  let counts = Array.make ntags 0 in
  Array.iter (fun tg -> counts.(tg) <- counts.(tg) + 1) everything_tags;
  let by_tag =
    Array.init ntags (fun tg ->
        Array.make counts.(tg) { doc = 0; start = 0; end_ = 0; level = 0 })
  in
  let fill = Array.make ntags 0 in
  Array.iteri
    (fun i tg ->
      by_tag.(tg).(fill.(tg)) <- everything.(i);
      fill.(tg) <- fill.(tg) + 1)
    everything_tags;
  ({ by_tag; everything; everything_tags }, !off)
