/* madvise(2) hints for mmap'd image buffers.
 *
 * The OCaml side passes the whole mapped bigarray plus a small advice
 * code; unsupported platforms or kernels simply report false and the
 * caller proceeds without the hint. madvise itself rejects unmapped or
 * unaligned ranges with EINVAL, which also surfaces as false.
 */

#include <caml/mlvalues.h>
#include <caml/bigarray.h>

#ifdef _WIN32

CAMLprim value tix_madvise(value vba, value vadvice)
{
  (void)vba;
  (void)vadvice;
  return Val_false;
}

#else

#include <sys/mman.h>

CAMLprim value tix_madvise(value vba, value vadvice)
{
  struct caml_ba_array *ba = Caml_ba_array_val(vba);
  void *data = ba->data;
  uintnat len = caml_ba_byte_size(ba);
  int advice;

  switch (Int_val(vadvice)) {
  case 0:
#ifdef MADV_NORMAL
    advice = MADV_NORMAL;
    break;
#else
    return Val_false;
#endif
  case 1:
#ifdef MADV_RANDOM
    advice = MADV_RANDOM;
    break;
#else
    return Val_false;
#endif
  case 2:
#ifdef MADV_SEQUENTIAL
    advice = MADV_SEQUENTIAL;
    break;
#else
    return Val_false;
#endif
  case 3:
#ifdef MADV_WILLNEED
    advice = MADV_WILLNEED;
    break;
#else
    return Val_false;
#endif
  default:
    return Val_false;
  }

  if (len == 0)
    return Val_true;
  return madvise(data, len, advice) == 0 ? Val_true : Val_false;
}

#endif
