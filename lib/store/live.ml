let src = Logs.Src.create "tix.live" ~doc:"TIX live (updatable) store"

module Log = (val Logs.src_log src)

type error =
  | Wal_error of Wal.error
  | Mutation_error of Delta.mutation_error
  | Image_error of Db.error

let pp_error ppf = function
  | Wal_error e -> Wal.pp_error ppf e
  | Mutation_error e -> Delta.pp_mutation_error ppf e
  | Image_error e -> Db.pp_error ppf e

let error_to_string e = Format.asprintf "%a" pp_error e

type t = {
  t_dir : string;
  mutable base : Db.t;
  mutable delta : Delta.t;
  wal : Wal.t;
  mutex : Mutex.t;
  mutable checkpoints : int;
}

type base_source = From_checkpoint of string | Provided | Empty

type opened = {
  live : t;
  recovery : Wal.recovery;
  replay : Delta.replay_report;
  base_source : base_source;
}

let wal_path ~dir = Filename.concat dir "wal.log"
let checkpoint_path ~dir = Filename.concat dir "checkpoint.tix"

let open_dir ?fault ?base ~dir () =
  let cpath = checkpoint_path ~dir in
  let base_result =
    if Sys.file_exists cpath then
      match Db.open_file cpath with
      | Ok db -> Ok (db, From_checkpoint cpath)
      | Error e -> Error (Image_error e)
    else
      match base with
      | Some db -> Ok (db, Provided)
      | None -> Ok (Db.of_documents [], Empty)
  in
  match base_result with
  | Error e -> Error e
  | Ok (base, base_source) -> begin
    match Wal.open_ ?fault (wal_path ~dir) with
    | Error e -> Error (Wal_error e)
    | Ok (wal, recovery) ->
      let delta = Delta.create ~base in
      let replay = Delta.replay delta recovery.Wal.records in
      if recovery.Wal.records <> [] then
        Log.info (fun m ->
            m "%s: replayed %d WAL record%s (%d applied, %d skipped)" dir
              (List.length recovery.Wal.records)
              (if List.length recovery.Wal.records = 1 then "" else "s")
              replay.Delta.applied replay.Delta.skipped);
      Ok
        {
          live =
            {
              t_dir = dir;
              base;
              delta;
              wal;
              mutex = Mutex.create ();
              checkpoints = 0;
            };
          recovery;
          replay;
          base_source;
        }
  end

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Validate → log → apply. The record reaches the WAL only when it is
   known to apply cleanly, so recovery never replays a rejected
   mutation; and it reaches the delta only once it is durable, so an
   acknowledged mutation survives a crash. *)
let mutate t record =
  locked t (fun () ->
      match Delta.check t.delta record with
      | Error e -> Error (Mutation_error e)
      | Ok () -> begin
        match Wal.append t.wal record with
        | Error e -> Error (Wal_error e)
        | Ok () -> begin
          match Delta.apply t.delta record with
          | Ok () -> Ok ()
          | Error e ->
            (* unreachable given check; surface rather than hide *)
            Error (Mutation_error e)
        end
      end)

let insert t ~name ~xml = mutate t (Wal.Insert { name; xml })
let delete t ~name = mutate t (Wal.Delete { name })
let update t ~name ~xml = mutate t (Wal.Update { name; xml })

let checkpoint ?path t =
  locked t (fun () ->
      let path =
        match path with Some p -> p | None -> checkpoint_path ~dir:t.t_dir
      in
      let merged =
        Db.compact ~base:t.base ~delta:(Delta.db t.delta)
          ~tombstones:(Delta.tombstones t.delta)
      in
      match Db.save merged path with
      | exception Sys_error detail -> Error (Image_error (Db.Io_error { path; detail }))
      | () -> begin
        match Wal.reset t.wal with
        | Error e ->
          (* the image is on disk but the log still holds the delta:
             recovery replays it onto the new checkpoint, which is
             idempotent — safe, just not compacted *)
          Error (Wal_error e)
        | Ok () ->
          t.base <- merged;
          t.delta <- Delta.create ~base:merged;
          t.checkpoints <- t.checkpoints + 1;
          Log.info (fun m ->
              m "%s: checkpoint #%d saved to %s" t.t_dir t.checkpoints path);
          Ok path
      end)

let base t = locked t (fun () -> t.base)
let delta t = locked t (fun () -> t.delta)
let wal t = t.wal
let dir t = t.t_dir

type stats = {
  wal_records : int;
  wal_bytes : int;
  delta_documents : int;
  tombstones : int;
  checkpoints : int;
}

let stats t =
  locked t (fun () ->
      {
        wal_records = Wal.record_count t.wal;
        wal_bytes = Wal.byte_size t.wal;
        delta_documents = Delta.doc_count t.delta;
        tombstones = Delta.tombstone_count t.delta;
        checkpoints = t.checkpoints;
      })

let close t = Wal.close t.wal
