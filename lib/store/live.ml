let src = Logs.Src.create "tix.live" ~doc:"TIX live (updatable) store"

module Log = (val Logs.src_log src)

type error =
  | Wal_error of Wal.error
  | Mutation_error of Delta.mutation_error
  | Image_error of Db.error
  | Checkpoint_in_progress

let pp_error ppf = function
  | Wal_error e -> Wal.pp_error ppf e
  | Mutation_error e -> Delta.pp_mutation_error ppf e
  | Image_error e -> Db.pp_error ppf e
  | Checkpoint_in_progress ->
    Format.fprintf ppf "a checkpoint is already in progress"

let error_to_string e = Format.asprintf "%a" pp_error e

(* A mutation waiting in the group-commit queue. [p_result] is set by
   the batch leader once the record's fate is known; [None] means the
   record is still queued or in flight. *)
type pending = {
  p_record : Wal.record;
  mutable p_result : (unit, error) result option;
}

type t = {
  t_dir : string;
  mutable base : Db.t;
  mutable delta : Delta.t;
  mutable wal : Wal.t;  (* swapped at checkpoint rotation *)
  mutex : Mutex.t;
  gc_done : Condition.t;  (* batch finished / leadership released *)
  mutable checkpoints : int;
  (* group commit *)
  gc_max_batch : int;
  gc_linger_s : float;
  gc_queue : pending Queue.t;  (* arrival order *)
  mutable gc_leader : bool;
  mutable gc_batches : int;
  mutable gc_records : int;
  mutable gc_largest : int;
  (* two-level checkpoint *)
  mutable frozen : Delta.frozen option;
  mutable ck_suffix : Wal.record list;  (* applied since freeze, reversed *)
}

type base_source = From_checkpoint of string | Provided | Empty

type opened = {
  live : t;
  recovery : Wal.recovery;
  replay : Delta.replay_report;
  base_source : base_source;
}

let wal_path ~dir = Filename.concat dir "wal.log"
let frozen_wal_path ~dir = Filename.concat dir "wal.frozen.log"
let checkpoint_path ~dir = Filename.concat dir "checkpoint.tix"

(* A crash between checkpoint rotation and install leaves two logs:
   the rotated [wal.frozen.log] (records covered by the interrupted
   merge) and the live [wal.log] (the suffix). Recovery merges them
   back into a single live log — frozen records first, in the exact
   order they committed — so the normal single-log open below sees
   everything. Returns the torn-tail bytes the pre-merge opens
   discarded. *)
let merge_frozen_log ~dir =
  let fpath = frozen_wal_path ~dir in
  if not (Sys.file_exists fpath) then Ok 0
  else begin
    let wpath = wal_path ~dir in
    match Wal.open_ fpath with
    | Error e -> Error (Wal_error e)
    | Ok (fw, frec) -> begin
      Wal.close fw;
      let suffix_result =
        if Sys.file_exists wpath then begin
          match Wal.open_ wpath with
          | Error e -> Error (Wal_error e)
          | Ok (w, crec) ->
            Wal.close w;
            Ok (crec.Wal.records, crec.Wal.truncated_bytes)
        end
        else Ok ([], 0)
      in
      match suffix_result with
      | Error e -> Error e
      | Ok (suffix, suffix_trunc) -> begin
        match Wal.save_records wpath (frec.Wal.records @ suffix) with
        | Error e -> Error (Wal_error e)
        | Ok () ->
          (try Sys.remove fpath with Sys_error _ -> ());
          Log.info (fun m ->
              m
                "%s: merged interrupted-checkpoint log (%d frozen + %d \
                 suffix records)"
                dir
                (List.length frec.Wal.records)
                (List.length suffix));
          Ok (frec.Wal.truncated_bytes + suffix_trunc)
      end
    end
  end

let open_dir ?fault ?base ?(wal_batch = 64) ?(wal_linger = 0.) ~dir () =
  let cpath = checkpoint_path ~dir in
  let base_result =
    if Sys.file_exists cpath then
      match Db.open_file cpath with
      | Ok db -> Ok (db, From_checkpoint cpath)
      | Error e -> Error (Image_error e)
    else
      match base with
      | Some db -> Ok (db, Provided)
      | None -> Ok (Db.of_documents [], Empty)
  in
  match base_result with
  | Error e -> Error e
  | Ok (base, base_source) -> begin
    match merge_frozen_log ~dir with
    | Error e -> Error e
    | Ok merged_trunc -> begin
      match Wal.open_ ?fault (wal_path ~dir) with
      | Error e -> Error (Wal_error e)
      | Ok (wal, recovery) ->
        let recovery =
          {
            recovery with
            Wal.truncated_bytes = recovery.Wal.truncated_bytes + merged_trunc;
          }
        in
        let delta = Delta.create ~base in
        let replay = Delta.replay delta recovery.Wal.records in
        if recovery.Wal.records <> [] then
          Log.info (fun m ->
              m "%s: replayed %d WAL record%s (%d applied, %d skipped)" dir
                (List.length recovery.Wal.records)
                (if List.length recovery.Wal.records = 1 then "" else "s")
                replay.Delta.applied replay.Delta.skipped);
        Ok
          {
            live =
              {
                t_dir = dir;
                base;
                delta;
                wal;
                mutex = Mutex.create ();
                gc_done = Condition.create ();
                checkpoints = 0;
                gc_max_batch = max 1 wal_batch;
                gc_linger_s = Float.max 0. wal_linger;
                gc_queue = Queue.create ();
                gc_leader = false;
                gc_batches = 0;
                gc_records = 0;
                gc_largest = 0;
                frozen = None;
                ck_suffix = [];
              };
            recovery;
            replay;
            base_source;
          }
    end
  end

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* ------------------------------------------------------------------ *)
(* Group commit.

   Mutations are validated under the mutex against the delta PLUS the
   queue of validated-but-unwritten records, then enqueued. The first
   thread to find no active leader becomes the batch leader: it takes
   up to [gc_max_batch] queued records, releases the mutex, commits
   them with ONE write + ONE fsync ([Wal.append_many]), re-acquires
   the mutex, applies them to the delta in queue order and wakes every
   waiter. Durability is unchanged — a record is acknowledged only
   after the fsync covering its frame returns — but N acknowledgements
   now share one sync. Batching is natural: while the leader is inside
   fsync the mutex is free, so concurrent writers pile into the queue
   and the next leader drains them in one batch. *)

(* The queued records' net effect on a name's liveness: the last
   queued record wins. [None] when the queue says nothing about it. *)
let queued_liveness t name =
  Queue.fold
    (fun acc p ->
      match p.p_record with
      | Wal.Insert { name = n; _ } when String.equal n name -> Some true
      | Wal.Update { name = n; _ } when String.equal n name -> Some true
      | Wal.Delete { name = n } when String.equal n name -> Some false
      | _ -> acc)
    None t.gc_queue

let check_pending t record =
  let live name =
    match queued_liveness t name with
    | Some l -> l
    | None -> Delta.mem t.delta name
  in
  Delta.check_record ~live record

type batch_outcome = Committed | Failed of Wal.error | Crashed of exn

let rec drive t p =
  match p.p_result with
  | Some r -> r
  | None ->
    if t.gc_leader then begin
      Condition.wait t.gc_done t.mutex;
      drive t p
    end
    else begin
      t.gc_leader <- true;
      (* optional bounded linger so concurrent writers can join the
         batch; natural batching during the previous fsync is the
         main mechanism, so this defaults to off *)
      if t.gc_linger_s > 0. && Queue.length t.gc_queue < t.gc_max_batch then begin
        Mutex.unlock t.mutex;
        Unix.sleepf t.gc_linger_s;
        Mutex.lock t.mutex
      end;
      let batch_n = min (Queue.length t.gc_queue) t.gc_max_batch in
      let batch = List.of_seq (Seq.take batch_n (Queue.to_seq t.gc_queue)) in
      let records = List.map (fun b -> b.p_record) batch in
      let wal = t.wal in
      Mutex.unlock t.mutex;
      let outcome =
        match Wal.append_many wal records with
        | Ok () -> Committed
        | Error e -> Failed e
        | exception e -> Crashed e
      in
      Mutex.lock t.mutex;
      (match outcome with
      | Committed ->
        t.gc_batches <- t.gc_batches + 1;
        t.gc_records <- t.gc_records + batch_n;
        if batch_n > t.gc_largest then t.gc_largest <- batch_n;
        List.iter
          (fun b ->
            let r =
              match Delta.apply t.delta b.p_record with
              | Ok () ->
                if t.frozen <> None then
                  t.ck_suffix <- b.p_record :: t.ck_suffix;
                Ok ()
              | Error e ->
                (* unreachable given check_pending; surface, not hide *)
                Error (Mutation_error e)
            in
            b.p_result <- Some r)
          batch
      | Failed e ->
        (* one sync covered the whole batch: none of it is durable *)
        List.iter (fun b -> b.p_result <- Some (Error (Wal_error e))) batch
      | Crashed _ ->
        (* the simulated process died mid-batch; waiters must not
           hang — resolve them with a typed loss before the leader
           re-raises its own death *)
        List.iter
          (fun b ->
            b.p_result <-
              Some
                (Error
                   (Wal_error
                      (Wal.Io_error
                         {
                           path = Wal.path wal;
                           detail = "append lost in simulated crash";
                         }))))
          batch);
      for _ = 1 to batch_n do
        ignore (Queue.pop t.gc_queue)
      done;
      (match outcome with
      | Committed -> ()
      | Failed _ | Crashed _ ->
        (* the queue behind the failed batch was validated assuming
           the batch's effects; re-check each survivor against the
           delta plus the still-valid queue prefix and fail the rest *)
        let remaining = List.of_seq (Queue.to_seq t.gc_queue) in
        Queue.clear t.gc_queue;
        List.iter
          (fun b ->
            match check_pending t b.p_record with
            | Ok () -> Queue.push b t.gc_queue
            | Error e -> b.p_result <- Some (Error (Mutation_error e)))
          remaining);
      t.gc_leader <- false;
      Condition.broadcast t.gc_done;
      match outcome with Crashed e -> raise e | _ -> drive t p
    end

(* Validate → enqueue → (batched) log → apply. The record reaches the
   WAL only when it is known to apply cleanly, so recovery never
   replays a rejected mutation; and it reaches the delta only once it
   is durable, so an acknowledged mutation survives a crash. *)
let mutate t record =
  locked t (fun () ->
      match check_pending t record with
      | Error e -> Error (Mutation_error e)
      | Ok () ->
        let p = { p_record = record; p_result = None } in
        Queue.push p t.gc_queue;
        drive t p)

let insert t ~name ~xml = mutate t (Wal.Insert { name; xml })
let delete t ~name = mutate t (Wal.Delete { name })
let update t ~name ~xml = mutate t (Wal.Update { name; xml })

(* ------------------------------------------------------------------ *)
(* Two-level checkpoint.

   [checkpoint_begin] freezes the delta into an immutable segment and
   rotates the WAL: the committed log becomes [wal.frozen.log] (it
   holds exactly the records the frozen segment reflects) and a fresh
   [wal.log] picks up the suffix. Mutations and reads continue
   immediately — the live delta keeps accumulating on top of the
   frozen snapshot, and every post-freeze record is also remembered in
   [ck_suffix].

   [checkpoint_prepare] (off every lock) merges base + frozen via
   [Db.compact] and saves the image atomically. [checkpoint_install]
   (briefly under the mutex) swaps the merged image in as the new base
   with a fresh delta rebuilt by replaying the suffix, and deletes the
   frozen log — the live [wal.log] already holds exactly the
   still-pending records. [checkpoint_abort] undoes a failed merge by
   rebuilding a single live log (frozen records + suffix) atomically.

   Crash matrix: before the rotation rename → the single-log open
   recovers as before; between rotation and install → [open_dir]
   merges [wal.frozen.log] back under [wal.log] and replays
   everything; between image save and frozen-log delete → the frozen
   records replay leniently onto the already-merged image, which is
   idempotent. No acknowledged record is ever outside
   [checkpoint image ∪ wal.frozen.log ∪ wal.log]. *)

type checkpoint_token = Delta.frozen

let checkpoint_in_progress t = locked t (fun () -> t.frozen <> None)

let rotate_wal t =
  let dir = t.t_dir in
  let wpath = wal_path ~dir and fpath = frozen_wal_path ~dir in
  match Sys.rename wpath fpath with
  | exception Sys_error detail ->
    Error (Wal_error (Wal.Io_error { path = wpath; detail }))
  | () -> begin
    match Wal.open_ ?fault:(Wal.fault t.wal) wpath with
    | Error e ->
      (* undo the rotation so the store stays single-log *)
      (try Sys.rename fpath wpath with Sys_error _ -> ());
      Error (Wal_error e)
    | Ok (fresh, _) ->
      Wal.set_append_index fresh (Wal.append_index t.wal);
      Wal.close t.wal;
      t.wal <- fresh;
      Ok ()
  end

let checkpoint_begin t =
  locked t (fun () ->
      if t.frozen <> None then Error Checkpoint_in_progress
      else begin
        (* wait out any in-flight batch: rotation must not move the
           log under a leader's feet, and every committed record must
           be applied before the freeze so snapshot = rotated log *)
        while t.gc_leader do
          Condition.wait t.gc_done t.mutex
        done;
        if t.frozen <> None then Error Checkpoint_in_progress
        else begin
          match rotate_wal t with
          | Error e -> Error e
          | Ok () ->
            let frozen = Delta.freeze t.delta in
            t.frozen <- Some frozen;
            t.ck_suffix <- [];
            Log.info (fun m ->
                m "%s: checkpoint began (%d delta docs, %d tombstones frozen)"
                  t.t_dir
                  (Delta.frozen_doc_count frozen)
                  (Delta.frozen_tombstone_count frozen));
            Ok frozen
        end
      end)

let checkpoint_prepare ?path t (frozen : checkpoint_token) =
  let path =
    match path with Some p -> p | None -> checkpoint_path ~dir:t.t_dir
  in
  let merged =
    Db.compact
      ~base:(Delta.frozen_base frozen)
      ~delta:(Delta.frozen_db frozen)
      ~tombstones:(Delta.frozen_tombstones frozen)
  in
  match Db.save merged path with
  | exception Sys_error detail ->
    Error (Image_error (Db.Io_error { path; detail }))
  | () -> Ok (merged, path)

let checkpoint_install t merged path =
  locked t (fun () ->
      let suffix = List.rev t.ck_suffix in
      let delta' = Delta.create ~base:merged in
      let (_ : Delta.replay_report) = Delta.replay delta' suffix in
      t.base <- merged;
      t.delta <- delta';
      t.frozen <- None;
      t.ck_suffix <- [];
      t.checkpoints <- t.checkpoints + 1;
      (try Sys.remove (frozen_wal_path ~dir:t.t_dir) with Sys_error _ -> ());
      Log.info (fun m ->
          m "%s: checkpoint #%d installed from %s (%d suffix records carried)"
            t.t_dir t.checkpoints path (List.length suffix)))

let checkpoint_abort t =
  locked t (fun () ->
      match t.frozen with
      | None -> Ok ()
      | Some _ ->
        while t.gc_leader do
          Condition.wait t.gc_done t.mutex
        done;
        if t.frozen = None then Ok ()
        else begin
          let dir = t.t_dir in
          let wpath = wal_path ~dir and fpath = frozen_wal_path ~dir in
          match Wal.open_ fpath with
          | Error e -> Error (Wal_error e)
          | Ok (fw, frec) -> begin
            Wal.close fw;
            let suffix = List.rev t.ck_suffix in
            match Wal.save_records wpath (frec.Wal.records @ suffix) with
            | Error e -> Error (Wal_error e)
            | Ok () -> begin
              let fault = Wal.fault t.wal
              and idx = Wal.append_index t.wal in
              match Wal.open_ ?fault wpath with
              | Error e -> Error (Wal_error e)
              | Ok (fresh, _) ->
                Wal.set_append_index fresh idx;
                Wal.close t.wal;
                t.wal <- fresh;
                (try Sys.remove fpath with Sys_error _ -> ());
                t.frozen <- None;
                t.ck_suffix <- [];
                Log.info (fun m -> m "%s: checkpoint aborted" t.t_dir);
                Ok ()
            end
          end
        end)

let checkpoint ?path t =
  match checkpoint_begin t with
  | Error e -> Error e
  | Ok token -> begin
    match checkpoint_prepare ?path t token with
    | Error e ->
      (match checkpoint_abort t with
      | Ok () -> ()
      | Error e' ->
        Log.err (fun m ->
            m "%s: checkpoint abort failed: %s" t.t_dir (error_to_string e')));
      Error e
    | Ok (merged, path) ->
      checkpoint_install t merged path;
      Ok path
  end

let base t = locked t (fun () -> t.base)
let delta t = locked t (fun () -> t.delta)
let view t = locked t (fun () -> (t.base, t.delta))
let wal t = t.wal
let dir t = t.t_dir

type stats = {
  wal_records : int;
  wal_bytes : int;
  delta_documents : int;
  tombstones : int;
  checkpoints : int;
  frozen_documents : int;
  frozen_tombstones : int;
  checkpoint_in_progress : bool;
  gc_batches : int;
  gc_records : int;
  gc_largest_batch : int;
}

let stats t =
  locked t (fun () ->
      {
        wal_records = Wal.record_count t.wal;
        wal_bytes = Wal.byte_size t.wal;
        delta_documents = Delta.doc_count t.delta;
        tombstones = Delta.tombstone_count t.delta;
        checkpoints = t.checkpoints;
        frozen_documents =
          (match t.frozen with
          | Some f -> Delta.frozen_doc_count f
          | None -> 0);
        frozen_tombstones =
          (match t.frozen with
          | Some f -> Delta.frozen_tombstone_count f
          | None -> 0);
        checkpoint_in_progress = t.frozen <> None;
        gc_batches = t.gc_batches;
        gc_records = t.gc_records;
        gc_largest_batch = t.gc_largest;
      })

let close t = Wal.close t.wal
