type stats = {
  page_count : int;
  reads : int;
  misses : int;
  bytes_transferred : int;
  failures : int;
}

type fault_kind = Transient_exhausted | Checksum_mismatch

type read_error = {
  page : int;
  kind : fault_kind;
  attempts : int;
  detail : string;
}

exception Read_error of read_error

let pp_read_error ppf e =
  Format.fprintf ppf "page %d: %s (%d attempt%s): %s" e.page
    (match e.kind with
    | Transient_exhausted -> "transient read fault persisted"
    | Checksum_mismatch -> "checksum mismatch")
    e.attempts
    (if e.attempts = 1 then "" else "s")
    e.detail

type frame = { page_id : int; data : Bytes.t; mutable tick : int }

(* A pager over an mmap'd image: pages live as (offset, length)
   slices of the map and are materialized (copied into Bytes) lazily,
   on first read, because the record decoders work on Bytes. The
   materialized page is published with [Atomic.set] so the write is
   safely visible to every other domain reading through the same
   pinned snapshot; a racing first read simply copies the same
   immutable slice twice. [Bytes.empty] doubles as the "not yet
   materialized" sentinel — a real page is never empty. *)
type mapped = {
  m_buf : Ir.Codec.buf;
  m_slices : (int * int) array;  (* (offset, length) per page *)
  m_pages : Bytes.t Atomic.t array;
}

type t = {
  size : int;
  pool_pages : int;
  mutable stable : Bytes.t array;  (* the simulated disk *)
  mutable checksums : int array;  (* CRC-32 of each stable page *)
  mutable stable_count : int;
  frames : (int, frame) Hashtbl.t;
  mutable clock : int;
  mutable reads : int;
  mutable misses : int;
  mutable bytes_transferred : int;
  mutable failures : int;
  mutable fault : Fault.t option;
  lock : Mutex.t;
      (* serializes pool (frames/stats) mutation so concurrent domains
         can read through one pager; the pinned fast path below never
         takes it *)
  mutable pinned : bool;
  pinned_reads : int Atomic.t;  (* reads served by the pinned path *)
  mapped : mapped option;  (* Some = zero-copy image-backed pager *)
}

let default_page_size = 8192

let create ?(pool_pages = 1024) ~page_size () =
  {
    size = page_size;
    pool_pages;
    stable = Array.make 64 Bytes.empty;
    checksums = Array.make 64 0;
    stable_count = 0;
    frames = Hashtbl.create 256;
    clock = 0;
    reads = 0;
    misses = 0;
    bytes_transferred = 0;
    failures = 0;
    fault = None;
    lock = Mutex.create ();
    pinned = false;
    pinned_reads = Atomic.make 0;
    mapped = None;
  }

(* Image-backed pagers are born pinned: the image's section CRC was
   verified over the map before construction, so pinning — and
   therefore snapshot publication — is O(1) regardless of index
   size. There is no pool and no fault injection on this path; the
   map is the stable storage. *)
let of_mapped ~page_size ~buf slices =
  let n = Array.length slices in
  {
    size = page_size;
    pool_pages = 0;
    stable = [||];
    checksums = [||];
    stable_count = n;
    frames = Hashtbl.create 1;
    clock = 0;
    reads = 0;
    misses = 0;
    bytes_transferred = 0;
    failures = 0;
    fault = None;
    lock = Mutex.create ();
    pinned = true;
    pinned_reads = Atomic.make 0;
    mapped = Some { m_buf = buf; m_slices = slices; m_pages = Array.init n (fun _ -> Atomic.make Bytes.empty) };
  }

let page_size t = t.size

let append_page t page =
  if t.mapped <> None then
    invalid_arg "Pager.append_page: image-backed pager is immutable";
  let capacity = Array.length t.stable in
  if t.stable_count >= capacity then begin
    let fresh = Array.make (capacity * 2) Bytes.empty in
    Array.blit t.stable 0 fresh 0 capacity;
    t.stable <- fresh;
    let fresh_sums = Array.make (capacity * 2) 0 in
    Array.blit t.checksums 0 fresh_sums 0 capacity;
    t.checksums <- fresh_sums
  end;
  let id = t.stable_count in
  t.stable.(id) <- page;
  t.checksums.(id) <- Crc32.bytes page;
  t.stable_count <- id + 1;
  id

let page_count t = t.stable_count

let set_fault t fault = Mutex.protect t.lock (fun () -> t.fault <- fault)
let fault t = t.fault

let evict_lru t =
  (* Linear scan over the pool; the pool is small and eviction is on
     the miss path, which already pays a page transfer. *)
  let victim = ref None in
  Hashtbl.iter
    (fun _ frame ->
      match !victim with
      | Some best when best.tick <= frame.tick -> ()
      | Some _ | None -> victim := Some frame)
    t.frames;
  match !victim with
  | Some frame -> Hashtbl.remove t.frames frame.page_id
  | None -> ()

(* One physical read: copy the stable page, let the injector damage
   it, then verify the checksum. Retries re-roll transient faults;
   corruption is permanent, so a checksum mismatch ends the loop
   immediately. *)
let transfer t id =
  let verify ~attempts data =
    let actual = Crc32.bytes data in
    if actual = t.checksums.(id) then Ok data
    else
      Error
        {
          page = id;
          kind = Checksum_mismatch;
          attempts;
          detail =
            Printf.sprintf "stored crc32 %08x, computed %08x" t.checksums.(id)
              actual;
        }
  in
  let rec attempt k =
    match t.fault with
    | None -> verify ~attempts:(k + 1) (Bytes.copy t.stable.(id))
    | Some f -> begin
      match Fault.outcome f ~page:id ~attempt:k with
      | Fault.Healthy -> verify ~attempts:(k + 1) (Bytes.copy t.stable.(id))
      | Fault.Corrupt ->
        let data = Bytes.copy t.stable.(id) in
        Fault.corrupt_in_place f ~page:id data;
        verify ~attempts:(k + 1) data
      | Fault.Transient ->
        if k < Fault.max_retries f then attempt (k + 1)
        else
          Error
            {
              page = id;
              kind = Transient_exhausted;
              attempts = k + 1;
              detail =
                Printf.sprintf "injected transient fault on every attempt \
                                (retry budget %d)"
                  (Fault.max_retries f);
            }
    end
  in
  attempt 0

(* Verify every stable page once, then serve reads straight from the
   stable array without touching the pool or its lock: the stable
   array and checksums are never mutated after the last append, so a
   pinned pager is safe to read from any number of domains
   concurrently. Pinned reads model a fully memory-resident image —
   they count as reads but never as misses or transfers. *)
let pin t =
  if t.mapped <> None then Ok ()  (* CRC-verified over the map at open *)
  else
  let rec verify id =
    if id >= t.stable_count then Ok ()
    else begin
      let actual = Crc32.bytes t.stable.(id) in
      if actual = t.checksums.(id) then verify (id + 1)
      else
        Error
          {
            page = id;
            kind = Checksum_mismatch;
            attempts = 1;
            detail =
              Printf.sprintf "stored crc32 %08x, computed %08x at pin time"
                t.checksums.(id) actual;
          }
    end
  in
  match verify 0 with
  | Ok () ->
    Mutex.protect t.lock (fun () -> Hashtbl.reset t.frames);
    t.pinned <- true;
    Ok ()
  | Error _ as e -> e

let pinned t = t.pinned

let read_page_result t id =
  if id < 0 || id >= t.stable_count then begin
    Mutex.protect t.lock (fun () -> t.failures <- t.failures + 1);
    invalid_arg
      (Printf.sprintf "Pager.read_page: page %d out of bounds (page count %d)"
         id t.stable_count)
  end
  else
    match t.mapped with
    | Some m -> begin
      let page = Atomic.get m.m_pages.(id) in
      if Bytes.length page > 0 then begin
        Atomic.incr t.pinned_reads;
        Ok page
      end
      else begin
        (* first touch: copy the slice out of the map *)
        let off, len = m.m_slices.(id) in
        let data = Bytes.create len in
        Ir.Codec.buf_blit m.m_buf ~src_off:off data ~dst_off:0 ~len;
        Mutex.protect t.lock (fun () ->
            t.misses <- t.misses + 1;
            t.bytes_transferred <- t.bytes_transferred + len);
        Atomic.set m.m_pages.(id) data;
        Atomic.incr t.pinned_reads;
        Ok data
      end
    end
    | None ->
      if t.pinned then begin
        Atomic.incr t.pinned_reads;
        Ok t.stable.(id)
      end
      else
        Mutex.protect t.lock (fun () ->
        t.reads <- t.reads + 1;
        t.clock <- t.clock + 1;
        match Hashtbl.find_opt t.frames id with
        | Some frame ->
          frame.tick <- t.clock;
          Ok frame.data
        | None -> begin
          t.misses <- t.misses + 1;
          match transfer t id with
          | Error e ->
            t.failures <- t.failures + 1;
            Error e
          | Ok data ->
            (* The copy is the simulated disk-to-pool transfer. *)
            t.bytes_transferred <- t.bytes_transferred + Bytes.length data;
            if Hashtbl.length t.frames >= t.pool_pages then evict_lru t;
            Hashtbl.replace t.frames id { page_id = id; data; tick = t.clock };
            Ok data
        end)

let read_page t id =
  match read_page_result t id with
  | Ok data -> data
  | Error e -> raise (Read_error e)

let stats t =
  Mutex.protect t.lock (fun () ->
      {
        page_count = t.stable_count;
        reads = t.reads + Atomic.get t.pinned_reads;
        misses = t.misses;
        bytes_transferred = t.bytes_transferred;
        failures = t.failures;
      })

let reset_stats t =
  Mutex.protect t.lock (fun () ->
      t.reads <- 0;
      t.misses <- 0;
      t.bytes_transferred <- 0;
      t.failures <- 0;
      Atomic.set t.pinned_reads 0)

let clear_pool t = Mutex.protect t.lock (fun () -> Hashtbl.reset t.frames)
