type advice = Normal | Random | Sequential | Willneed

type bigbytes =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

external tix_madvise : bigbytes -> int -> bool = "tix_madvise"

let advise map advice =
  let code =
    match advice with
    | Normal -> 0
    | Random -> 1
    | Sequential -> 2
    | Willneed -> 3
  in
  match tix_madvise map code with b -> b | exception _ -> false
