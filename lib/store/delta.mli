(** In-memory delta segment layered over an immutable base snapshot.

    The base {!Db} never changes after load; live updates accumulate
    here instead. The segment holds

    - the {e delta documents}: inserted (or updated) documents kept in
      arrival order, indexed by their own in-memory {!Db} with the
      base's stemming configuration, and
    - the {e tombstones}: a bitmap over base document ids marking
      documents that were deleted or superseded by an update.

    Readers therefore see [base ∪ delta − tombstones] without the
    immutable [.tix] read path changing at all. Document identity is
    by catalog name; a name is {e live} when it is a delta document or
    an untombstoned base document.

    Mutations come in two flavours. {!insert}/{!delete}/{!update} are
    strict: inserting a live name, or deleting/updating a dead one, is
    a typed error — this is what the service API exposes. {!replay} is
    lenient (insert of a live name degrades to update, update of a
    dead name to insert, delete of a dead name to a no-op) so that
    re-applying a WAL whose effects partially survived is idempotent. *)

type t

type mutation_error =
  | Duplicate_document of { name : string }
  | Unknown_document of { name : string }
  | Parse_failed of { name : string; reason : string }

val pp_mutation_error : Format.formatter -> mutation_error -> unit
val mutation_error_to_string : mutation_error -> string

val create : base:Db.t -> t
(** An empty segment over [base]: no delta documents, no tombstones. *)

val base : t -> Db.t

val insert : t -> name:string -> xml:string -> (unit, mutation_error) result
val delete : t -> name:string -> (unit, mutation_error) result
val update : t -> name:string -> xml:string -> (unit, mutation_error) result

val apply : t -> Wal.record -> (unit, mutation_error) result
(** Strict application of one WAL record — exactly
    {!insert}/{!delete}/{!update}. *)

val check : t -> Wal.record -> (unit, mutation_error) result
(** Would {!apply} succeed? Same checks (name liveness, XML parse),
    no mutation — used to validate before the record is logged, so a
    record that could never apply is not written to the WAL. *)

val check_record :
  live:(string -> bool) -> Wal.record -> (unit, mutation_error) result
(** {!check} with name liveness injected: [live name] decides whether
    [name] currently exists, so a caller can fold in effects that are
    not in any segment yet (e.g. a group-commit queue of
    validated-but-unwritten records). [check t] is
    [check_record ~live:(mem t)]. *)

type replay_report = { applied : int; skipped : int }

val replay : t -> Wal.record list -> replay_report
(** Lenient, idempotent replay in order (see the module doc).
    [skipped] counts records that had no effect — deletes of dead
    names and records whose XML no longer parses. *)

val mem : t -> string -> bool
(** Is this name live (delta document, or untombstoned base doc)? *)

val is_tombstoned : t -> int -> bool
(** Is this base document id tombstoned? (Ids outside the base are
    not.) *)

val tombstones : t -> bool array
(** A copy of the tombstone bitmap over base document ids. *)

val tombstone_count : t -> int

val doc_count : t -> int
(** Number of delta documents. *)

val is_empty : t -> bool
(** No delta documents {e and} no tombstones. *)

val documents : t -> (string * string) list
(** The delta documents as [(name, xml)] in arrival order — delta
    document id [i] is the [i]-th entry. *)

val db : t -> Db.t option
(** An in-memory database over just the delta documents (dense ids in
    arrival order, stemming matching the base, trees retained), or
    [None] when there are no delta documents. Cached; rebuilt after a
    mutation. *)

(** {1 Frozen segments}

    A checkpoint freezes the delta into an immutable snapshot that a
    background merger can read off any lock while the live segment
    keeps accumulating on top of it. The entry list is shared
    structurally (mutations rebind, never mutate, the spine); the
    tombstone bitmap is copied at freeze time. *)

type frozen

val freeze : t -> frozen
(** Snapshot the segment's current documents and tombstones. The
    segment itself is untouched and stays mutable. *)

val frozen_base : frozen -> Db.t
val frozen_doc_count : frozen -> int
val frozen_tombstone_count : frozen -> int

val frozen_tombstones : frozen -> bool array
(** A copy of the snapshot's tombstone bitmap over base doc ids. *)

val frozen_db : frozen -> Db.t option
(** An in-memory database over the snapshot's documents (same shape
    as {!db}), or [None] when the snapshot holds none. Built fresh on
    each call — no cache — so it is safe to call off-lock. *)
