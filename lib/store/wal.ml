let src = Logs.Src.create "tix.wal" ~doc:"TIX write-ahead log"

module Log = (val Logs.src_log src)

let magic = "TIXWAL01"
let magic_prefix = "TIXWAL"
let commit_byte = '\xC6'

type record =
  | Insert of { name : string; xml : string }
  | Delete of { name : string }
  | Update of { name : string; xml : string }

type error =
  | Not_a_wal of { path : string }
  | Unsupported_version of { path : string; found : string }
  | Io_error of { path : string; detail : string }
  | Sync_failed of { path : string; detail : string }

let pp_error ppf = function
  | Not_a_wal { path } -> Format.fprintf ppf "%s: not a TIX write-ahead log" path
  | Unsupported_version { path; found } ->
    Format.fprintf ppf "%s: unsupported WAL version %S (this build reads %S)"
      path found magic
  | Io_error { path; detail } -> Format.fprintf ppf "%s: %s" path detail
  | Sync_failed { path; detail } ->
    Format.fprintf ppf "%s: fsync failed, append rolled back: %s" path detail

let error_to_string e = Format.asprintf "%a" pp_error e

type t = {
  t_path : string;
  fd : Unix.file_descr;
  mutable length : int;  (* committed bytes, header included *)
  mutable records : int;  (* committed records *)
  mutable appends : int;  (* appends attempted through this handle *)
  mutable fault : Fault.t option;
  mutable closed : bool;
}

type recovery = {
  records : record list;
  truncated_bytes : int;
  valid_bytes : int;
}

(* ------------------------------------------------------------------ *)
(* Frame codec *)

let op_insert = 1
let op_delete = 2
let op_update = 3

let add_string buf s =
  Ir.Codec.add_varint buf (String.length s);
  Buffer.add_string buf s

let read_string bytes off =
  let len, off = Ir.Codec.read_varint bytes off in
  if len < 0 || off + len > Bytes.length bytes then
    raise (Ir.Codec.Truncated "string runs past the payload");
  (Bytes.sub_string bytes off len, off + len)

let payload_of_record r =
  let buf = Buffer.create 256 in
  (match r with
  | Insert { name; xml } ->
    Ir.Codec.add_varint buf op_insert;
    add_string buf name;
    add_string buf xml
  | Delete { name } ->
    Ir.Codec.add_varint buf op_delete;
    add_string buf name
  | Update { name; xml } ->
    Ir.Codec.add_varint buf op_update;
    add_string buf name;
    add_string buf xml);
  Buffer.contents buf

(* [None] when the payload does not decode to exactly one record —
   recovery treats that the same as a CRC failure: a torn frame. *)
let record_of_payload bytes =
  match
    let op, off = Ir.Codec.read_varint bytes 0 in
    if op = op_insert then begin
      let name, off = read_string bytes off in
      let xml, off = read_string bytes off in
      if off <> Bytes.length bytes then None else Some (Insert { name; xml })
    end
    else if op = op_delete then begin
      let name, off = read_string bytes off in
      if off <> Bytes.length bytes then None else Some (Delete { name })
    end
    else if op = op_update then begin
      let name, off = read_string bytes off in
      let xml, off = read_string bytes off in
      if off <> Bytes.length bytes then None else Some (Update { name; xml })
    end
    else None
  with
  | v -> v
  | exception Ir.Codec.Truncated _ -> None
  | exception Invalid_argument _ -> None

let u32_to_bytes v =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((v lsr 24) land 0xFF));
  Bytes.set b 1 (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b 2 (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b 3 (Char.chr (v land 0xFF));
  b

let u32_of_bytes bytes off =
  let b i = Char.code (Bytes.get bytes (off + i)) in
  (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3

let frame_of_record r =
  let payload = payload_of_record r in
  let buf = Buffer.create (String.length payload + 9) in
  Buffer.add_bytes buf (u32_to_bytes (String.length payload));
  Buffer.add_bytes buf (u32_to_bytes (Crc32.string payload));
  Buffer.add_string buf payload;
  Buffer.add_char buf commit_byte;
  Buffer.to_bytes buf

(* ------------------------------------------------------------------ *)
(* Raw IO *)

let write_all fd bytes off len =
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write fd bytes (off + !written) (len - !written)
  done

let io_error path f =
  match f () with
  | v -> Ok v
  | exception Unix.Unix_error (e, fn, _) ->
    Error (Io_error { path; detail = Printf.sprintf "%s: %s" fn (Unix.error_message e) })
  | exception Sys_error detail -> Error (Io_error { path; detail })

(* ------------------------------------------------------------------ *)
(* Recovery scan *)

(* Walk the frames of [bytes]; returns the committed records and the
   byte offset where the committed prefix ends. Every structural
   failure — not just a CRC mismatch — ends the prefix there: a torn
   append can damage any part of the frame. *)
let scan_frames bytes =
  let total = Bytes.length bytes in
  let rec go off acc =
    if off + 9 > total then (List.rev acc, off)
    else begin
      let len = u32_of_bytes bytes off in
      let crc = u32_of_bytes bytes (off + 4) in
      if len < 0 || off + 8 + len + 1 > total then (List.rev acc, off)
      else begin
        let payload = Bytes.sub bytes (off + 8) len in
        if Crc32.bytes ~off:(off + 8) ~len bytes <> crc then (List.rev acc, off)
        else if Bytes.get bytes (off + 8 + len) <> commit_byte then
          (List.rev acc, off)
        else begin
          match record_of_payload payload with
          | None -> (List.rev acc, off)
          | Some r -> go (off + 8 + len + 1) (r :: acc)
        end
      end
    end
  in
  go (String.length magic) []

let open_ ?fault path =
  match
    io_error path (fun () ->
        Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644)
  with
  | Error e -> Error e
  | Ok fd -> begin
    let fail e =
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error e
    in
    match
      io_error path (fun () ->
          let size = (Unix.fstat fd).Unix.st_size in
          let bytes = Bytes.create size in
          ignore (Unix.lseek fd 0 Unix.SEEK_SET);
          let rec fill off =
            if off < size then begin
              match Unix.read fd bytes off (size - off) with
              | 0 -> raise (Sys_error "file shrank while reading")
              | n -> fill (off + n)
            end
          in
          fill 0;
          bytes)
    with
    | Error e -> fail e
    | Ok bytes ->
      let total = Bytes.length bytes in
      if total = 0 then begin
        (* a fresh log: write the header and commit it *)
        match
          io_error path (fun () ->
              write_all fd (Bytes.of_string magic) 0 (String.length magic);
              Unix.fsync fd)
        with
        | Error e -> fail e
        | Ok () ->
          Ok
            ( {
                t_path = path;
                fd;
                length = String.length magic;
                records = 0;
                appends = 0;
                fault;
                closed = false;
              },
              { records = []; truncated_bytes = 0; valid_bytes = String.length magic }
            )
      end
      else if
        total < String.length magic_prefix
        || Bytes.sub_string bytes 0 (String.length magic_prefix) <> magic_prefix
      then fail (Not_a_wal { path })
      else if
        total < String.length magic
        || Bytes.sub_string bytes 0 (String.length magic) <> magic
      then
        fail
          (Unsupported_version
             {
               path;
               found =
                 Bytes.sub_string bytes 0 (min total (String.length magic));
             })
      else begin
        let records, valid = scan_frames bytes in
        let truncated = total - valid in
        if truncated > 0 then
          Log.warn (fun m ->
              m "%s: discarding %d torn tail byte%s after %d committed record%s"
                path truncated
                (if truncated = 1 then "" else "s")
                (List.length records)
                (if List.length records = 1 then "" else "s"));
        match
          io_error path (fun () ->
              if truncated > 0 then begin
                Unix.ftruncate fd valid;
                Unix.fsync fd
              end)
        with
        | Error e -> fail e
        | Ok () ->
          Ok
            ( {
                t_path = path;
                fd;
                length = valid;
                records = List.length records;
                appends = 0;
                fault;
                closed = false;
              },
              { records; truncated_bytes = truncated; valid_bytes = valid } )
      end
  end

(* ------------------------------------------------------------------ *)
(* Appending *)

let rollback t =
  (* best effort: put the file back to the committed prefix so the
     next append does not build on a half-written frame *)
  try
    Unix.ftruncate t.fd t.length;
    Unix.fsync t.fd
  with Unix.Unix_error _ -> ()

(* One batch = one contiguous write + one fsync covering every frame.
   Fault semantics extend the per-op contract to batched commits: the
   earliest armed fault among the batch's op indices decides the
   outcome. A torn write at op [j] leaves frames before [j] fully in
   the file (they shared the dying write) plus a prefix of frame [j];
   an injected fsync failure fails the whole batch — the single sync
   covered every frame, so none of them is durable. *)
let append_many t records =
  match records with
  | [] -> Ok ()
  | _ ->
    if t.closed then
      Error (Io_error { path = t.t_path; detail = "log handle is closed" })
    else begin
      let frames = List.map frame_of_record records in
      let n = List.length frames in
      let op0 = t.appends in
      t.appends <- op0 + n;
      let fault =
        match t.fault with
        | None -> None
        | Some f ->
          let rec find i =
            if i >= n then None
            else begin
              match Fault.take_write_fault f ~op:(op0 + i) with
              | Some fl -> Some (i, fl)
              | None -> find (i + 1)
            end
          in
          find 0
      in
      match fault with
      | Some (j, Fault.Torn_write { at_byte }) ->
        (* the simulated process dies mid-batch: every frame before
           the faulted one was handed to the kernel in the same
           write, then a prefix of frame [j]; nothing was
           acknowledged, and only reopening the file tells how far
           the batch got *)
        let before = List.filteri (fun i _ -> i < j) frames in
        let frame_j = List.nth frames j in
        let wrote = min at_byte (Bytes.length frame_j) in
        (match
           io_error t.t_path (fun () ->
               ignore (Unix.lseek t.fd t.length Unix.SEEK_SET);
               List.iter (fun fr -> write_all t.fd fr 0 (Bytes.length fr)) before;
               if wrote > 0 then write_all t.fd frame_j 0 wrote;
               Unix.fsync t.fd)
         with
        | Ok () | Error _ -> ());
        raise (Fault.Write_crash { op = op0 + j; wrote })
      | Some (_, Fault.Fail_fsync) -> begin
        match
          io_error t.t_path (fun () ->
              ignore (Unix.lseek t.fd t.length Unix.SEEK_SET);
              List.iter (fun fr -> write_all t.fd fr 0 (Bytes.length fr)) frames)
        with
        | Error e ->
          rollback t;
          Error e
        | Ok () ->
          rollback t;
          Error
            (Sync_failed { path = t.t_path; detail = "injected fsync failure" })
      end
      | None -> begin
        let total = List.fold_left (fun a fr -> a + Bytes.length fr) 0 frames in
        match
          io_error t.t_path (fun () ->
              ignore (Unix.lseek t.fd t.length Unix.SEEK_SET);
              List.iter (fun fr -> write_all t.fd fr 0 (Bytes.length fr)) frames;
              Unix.fsync t.fd)
        with
        | Error e ->
          rollback t;
          (match e with
          | Io_error { detail; _ }
            when String.length detail >= 5 && String.sub detail 0 5 = "fsync" ->
            Error (Sync_failed { path = t.t_path; detail })
          | e -> Error e)
        | Ok () ->
          t.length <- t.length + total;
          t.records <- t.records + n;
          Ok ()
      end
    end

let append t record = append_many t [ record ]

(* Atomically replace [path] with a log holding exactly [records]:
   build the image beside it, fsync, then rename over the target.
   Used to merge a rotated checkpoint log back under the live one. *)
let save_records path records =
  let tmp = path ^ ".tmp" in
  match
    io_error tmp (fun () ->
        let fd =
          Unix.openfile tmp
            [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
            0o644
        in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            write_all fd (Bytes.of_string magic) 0 (String.length magic);
            List.iter
              (fun r ->
                let fr = frame_of_record r in
                write_all fd fr 0 (Bytes.length fr))
              records;
            Unix.fsync fd))
  with
  | Error e -> Error e
  | Ok () -> io_error path (fun () -> Sys.rename tmp path)

let reset t =
  if t.closed then
    Error (Io_error { path = t.t_path; detail = "log handle is closed" })
  else begin
    match
      io_error t.t_path (fun () ->
          Unix.ftruncate t.fd (String.length magic);
          Unix.fsync t.fd)
    with
    | Error e -> Error e
    | Ok () ->
      t.length <- String.length magic;
      t.records <- 0;
      Ok ()
  end

let path t = t.t_path
let record_count (t : t) = t.records
let byte_size t = t.length
let append_index t = t.appends
let set_append_index t i = t.appends <- i
let set_fault t f = t.fault <- f
let fault t = t.fault

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
