type entry = {
  parent : int;
  child_count : int;
  level : int;
  end_ : int;
  tag : int;
}

type per_doc = {
  starts : int array;
  parents : int array;
  child_counts : int array;
  levels : int array;
  ends : int array;
  tags : int array;
}

type t = { docs : per_doc array; total : int }

type doc_builder = {
  mutable b_starts : int list;
  mutable b_entries : entry list;
  mutable b_count : int;
  mutable b_last : int;
}

type builder = {
  mutable per_doc : doc_builder array;
  mutable ndocs : int;
  mutable total : int;
}

let builder () = { per_doc = [||]; ndocs = 0; total = 0 }

let fresh_doc () = { b_starts = []; b_entries = []; b_count = 0; b_last = -1 }

let doc_builder b doc =
  let capacity = Array.length b.per_doc in
  if doc >= capacity then begin
    let fresh = Array.init (max (capacity * 2) (doc + 1)) (fun _ -> fresh_doc ()) in
    Array.blit b.per_doc 0 fresh 0 capacity;
    b.per_doc <- fresh
  end;
  if doc >= b.ndocs then b.ndocs <- doc + 1;
  b.per_doc.(doc)

let add b ~doc ~start entry =
  let db = doc_builder b doc in
  if start <= db.b_last then
    invalid_arg "Parent_index.add: starts out of order";
  db.b_last <- start;
  db.b_starts <- start :: db.b_starts;
  db.b_entries <- entry :: db.b_entries;
  db.b_count <- db.b_count + 1;
  b.total <- b.total + 1

let freeze b =
  let freeze_doc db =
    let n = db.b_count in
    let starts = Array.make n 0
    and parents = Array.make n 0
    and child_counts = Array.make n 0
    and levels = Array.make n 0
    and ends = Array.make n 0
    and tags = Array.make n 0 in
    (* the lists are in reverse start order *)
    List.iteri
      (fun i start -> starts.(n - 1 - i) <- start)
      db.b_starts;
    List.iteri
      (fun i e ->
        let j = n - 1 - i in
        parents.(j) <- e.parent;
        child_counts.(j) <- e.child_count;
        levels.(j) <- e.level;
        ends.(j) <- e.end_;
        tags.(j) <- e.tag)
      db.b_entries;
    { starts; parents; child_counts; levels; ends; tags }
  in
  { docs = Array.init b.ndocs (fun d -> freeze_doc b.per_doc.(d));
    total = b.total }

let find t ~doc ~start =
  if doc < 0 || doc >= Array.length t.docs then None
  else begin
    let d = t.docs.(doc) in
    let lo = ref 0 and hi = ref (Array.length d.starts - 1) in
    let found = ref None in
    while !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      if d.starts.(mid) = start then begin
        found :=
          Some
            {
              parent = d.parents.(mid);
              child_count = d.child_counts.(mid);
              level = d.levels.(mid);
              end_ = d.ends.(mid);
              tag = d.tags.(mid);
            };
        lo := !hi + 1
      end
      else if d.starts.(mid) < start then lo := mid + 1
      else hi := mid - 1
    done;
    !found
  end

let parent_of t ~doc ~start =
  match find t ~doc ~start with
  | Some { parent; _ } when parent >= 0 -> Some parent
  | Some _ | None -> None

let entry_count (t : t) = t.total

(* Serialized so an image open loads the index directly instead of
   rebuilding it with a full element-table scan (TIXDB004 section 4).
   Parents are stored +1 because a root's parent is -1. *)

let save t buf =
  Ir.Codec.add_varint buf (Array.length t.docs);
  Ir.Codec.add_varint buf t.total;
  Array.iter
    (fun d ->
      let n = Array.length d.starts in
      Ir.Codec.add_varint buf n;
      for i = 0 to n - 1 do
        Ir.Codec.add_varint buf d.starts.(i);
        Ir.Codec.add_varint buf (d.parents.(i) + 1);
        Ir.Codec.add_varint buf d.child_counts.(i);
        Ir.Codec.add_varint buf d.levels.(i);
        Ir.Codec.add_varint buf d.ends.(i);
        Ir.Codec.add_varint buf d.tags.(i)
      done)
    t.docs

let load buf off =
  let ndocs, off = Ir.Codec.read_varint_buf buf off in
  let total, off = Ir.Codec.read_varint_buf buf off in
  let off = ref off in
  let docs =
    Array.init ndocs (fun _ ->
        let n, o = Ir.Codec.read_varint_buf buf !off in
        off := o;
        let starts = Array.make n 0
        and parents = Array.make n 0
        and child_counts = Array.make n 0
        and levels = Array.make n 0
        and ends = Array.make n 0
        and tags = Array.make n 0 in
        let rd () =
          let v, o = Ir.Codec.read_varint_buf buf !off in
          off := o;
          v
        in
        for i = 0 to n - 1 do
          starts.(i) <- rd ();
          parents.(i) <- rd () - 1;
          child_counts.(i) <- rd ();
          levels.(i) <- rd ();
          ends.(i) <- rd ();
          tags.(i) <- rd ()
        done;
        { starts; parents; child_counts; levels; ends; tags })
  in
  ({ docs; total }, !off)
