(* Reflected CRC-32 with the IEEE polynomial 0xEDB88320, one table
   entry per byte value. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 <> 0 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc byte =
  let table = Lazy.force table in
  table.((crc lxor byte) land 0xFF) lxor (crc lsr 8)

let string ?(off = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - off in
  if off < 0 || len < 0 || off + len > String.length s then
    invalid_arg "Crc32.string";
  let crc = ref 0xFFFFFFFF in
  for i = off to off + len - 1 do
    crc := update !crc (Char.code (String.unsafe_get s i))
  done;
  !crc lxor 0xFFFFFFFF

let bytes ?off ?len b = string ?off ?len (Bytes.unsafe_to_string b)

let buf ?(off = 0) ?len (b : Ir.Codec.buf) =
  match b with
  | Ir.Codec.B by -> bytes ~off ?len by
  | Ir.Codec.M m ->
    let dim = Bigarray.Array1.dim m in
    let len = match len with Some l -> l | None -> dim - off in
    if off < 0 || len < 0 || off + len > dim then invalid_arg "Crc32.buf";
    let crc = ref 0xFFFFFFFF in
    for i = off to off + len - 1 do
      crc := update !crc (Char.code (Bigarray.Array1.unsafe_get m i))
    done;
    !crc lxor 0xFFFFFFFF
