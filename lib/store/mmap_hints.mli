(** [madvise(2)] hints for mmap'd image buffers.

    Purely advisory: every call degrades to a no-op on platforms or
    kernels without the requested advice, so callers never need to
    guard by OS. The two hints the image open path uses are
    [Willneed] before a checksum pass (the kernel can read the file
    ahead sequentially) and [Random] once the database is serving
    (point lookups dominate, so read-around is wasted work). *)

type advice = Normal | Random | Sequential | Willneed

type bigbytes =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

val advise : bigbytes -> advice -> bool
(** Apply the hint to the whole mapping. [false] when the platform,
    kernel or range does not support it — never raises. *)
