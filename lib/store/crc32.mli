(** CRC-32 (IEEE 802.3 polynomial, reflected, table-driven).

    Used for the page-level checksums the {!Pager} verifies on every
    buffer-pool miss and the per-section checksums of saved database
    images. Values fit in 32 bits and are returned as non-negative
    OCaml ints. *)

val bytes : ?off:int -> ?len:int -> Bytes.t -> int
(** Checksum of a byte range (the whole buffer by default). *)

val string : ?off:int -> ?len:int -> string -> int

val buf : ?off:int -> ?len:int -> Ir.Codec.buf -> int
(** Checksum over a {!Ir.Codec.buf} range — for an mmap'd image this
    reads the mapped pages directly, without copying them. *)
