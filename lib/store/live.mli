(** A live (updatable) store: immutable base + {!Wal} + {!Delta}.

    The handle owns a directory holding two files:

    - [wal.log] — the {!Wal}; every mutation is validated, appended
      and fsynced here {e before} it touches the in-memory delta, so
      an acknowledged mutation survives a crash, and
    - [checkpoint.tix] — the most recent checkpoint image; absent
      until the first {!checkpoint}.

    {!open_dir} recovers: it loads the newest base (the checkpoint
    image if present, else the caller-provided database, else an
    empty corpus), replays the WAL's committed prefix into a fresh
    delta, and truncates any torn tail. The crash matrix is

    - crash before the WAL append commits → recovery truncates the
      torn frame; the store equals the pre-op state;
    - crash after the commit marker is durable → replay re-applies
      the record; the store equals the post-op state;
    - never anything in between.

    Mutations are serialized by an internal mutex; readers never take
    it — they query immutable snapshots published elsewhere (see
    [Service.Engine]). *)

type t

type error =
  | Wal_error of Wal.error
  | Mutation_error of Delta.mutation_error
  | Image_error of Db.error  (** loading or saving a checkpoint image *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

type base_source =
  | From_checkpoint of string  (** [checkpoint.tix] found in the dir *)
  | Provided  (** the [?base] argument *)
  | Empty  (** neither: a fresh, empty corpus *)

type opened = {
  live : t;
  recovery : Wal.recovery;
  replay : Delta.replay_report;
  base_source : base_source;
}

val wal_path : dir:string -> string
val checkpoint_path : dir:string -> string

val open_dir :
  ?fault:Fault.t -> ?base:Db.t -> dir:string -> unit -> (opened, error) result
(** Open (or create) the live store rooted at [dir]. A checkpoint
    image in the directory wins over [?base]: it already contains
    every mutation checkpointed so far, while [?base] is the original
    seed corpus. The WAL is then replayed on top of whichever base
    was chosen. [dir] must exist. *)

val insert : t -> name:string -> xml:string -> (unit, error) result
val delete : t -> name:string -> (unit, error) result
val update : t -> name:string -> xml:string -> (unit, error) result
(** Validate, append to the WAL (fsync), then apply to the delta.
    On [Ok] the mutation is durable. On [Error] nothing changed —
    invalid mutations are rejected before they reach the log. May
    raise {!Fault.Write_crash} when an armed write fault fires. *)

val checkpoint : ?path:string -> t -> (string, error) result
(** Merge base + delta − tombstones into a fresh immutable database
    ({!Db.compact}), save it atomically to [path] (default
    [checkpoint.tix] in the store's directory), reset the WAL and
    swap the merged database in as the new base with an empty delta.
    Returns the image path. *)

val base : t -> Db.t
(** The current base snapshot (changes only at {!checkpoint}). *)

val delta : t -> Delta.t
(** The current delta segment (replaced at {!checkpoint}). *)

val wal : t -> Wal.t
val dir : t -> string

type stats = {
  wal_records : int;
  wal_bytes : int;
  delta_documents : int;
  tombstones : int;
  checkpoints : int;  (** checkpoints taken through this handle *)
}

val stats : t -> stats
val close : t -> unit
