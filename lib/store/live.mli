(** A live (updatable) store: immutable base + {!Wal} + {!Delta}.

    The handle owns a directory holding up to three files:

    - [wal.log] — the {!Wal}; every mutation is validated, appended
      and fsynced here {e before} it touches the in-memory delta, so
      an acknowledged mutation survives a crash,
    - [wal.frozen.log] — present only while a checkpoint is in
      flight: the rotated log covering the frozen delta segment, and
    - [checkpoint.tix] — the most recent checkpoint image; absent
      until the first {!checkpoint}.

    {!open_dir} recovers: it loads the newest base (the checkpoint
    image if present, else the caller-provided database, else an
    empty corpus), merges an interrupted checkpoint's rotated log
    back under the live one if a crash left both behind, replays the
    WAL's committed prefix into a fresh delta, and truncates any torn
    tail. The crash matrix is

    - crash before the WAL append commits → recovery truncates the
      torn frame; the store equals the pre-op state;
    - crash after the commit marker is durable → replay re-applies
      the record; the store equals the post-op state;
    - never anything in between.

    {b Group commit.} Concurrent mutations coalesce: writers enqueue
    validated records and the first to find no active batch leader
    commits the whole queue (up to [wal_batch] records) with one
    contiguous write and a single fsync, then applies the batch to
    the delta in order and wakes every waiter. Durability is
    unchanged — a mutation is acknowledged only after the fsync
    covering its frame returns — but N acknowledgements share one
    sync. A single-threaded caller degenerates to batches of one,
    byte-identical to per-op commits.

    Mutations are serialized by an internal mutex; readers never take
    it — they query immutable snapshots published elsewhere (see
    [Service.Engine]). *)

type t

type error =
  | Wal_error of Wal.error
  | Mutation_error of Delta.mutation_error
  | Image_error of Db.error  (** loading or saving a checkpoint image *)
  | Checkpoint_in_progress
      (** {!checkpoint_begin} while another checkpoint is in flight *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

type base_source =
  | From_checkpoint of string  (** [checkpoint.tix] found in the dir *)
  | Provided  (** the [?base] argument *)
  | Empty  (** neither: a fresh, empty corpus *)

type opened = {
  live : t;
  recovery : Wal.recovery;
  replay : Delta.replay_report;
  base_source : base_source;
}

val wal_path : dir:string -> string
val frozen_wal_path : dir:string -> string
val checkpoint_path : dir:string -> string

val open_dir :
  ?fault:Fault.t ->
  ?base:Db.t ->
  ?wal_batch:int ->
  ?wal_linger:float ->
  dir:string ->
  unit ->
  (opened, error) result
(** Open (or create) the live store rooted at [dir]. A checkpoint
    image in the directory wins over [?base]: it already contains
    every mutation checkpointed so far, while [?base] is the original
    seed corpus. The WAL is then replayed on top of whichever base
    was chosen (a leftover [wal.frozen.log] is merged back first).
    [dir] must exist.

    [wal_batch] (default 64) caps how many queued records one group
    commit covers; [wal_linger] (default 0) adds a bounded wait
    before the leader takes its batch so more writers can join —
    natural batching during the previous fsync usually suffices. *)

val insert : t -> name:string -> xml:string -> (unit, error) result
val delete : t -> name:string -> (unit, error) result
val update : t -> name:string -> xml:string -> (unit, error) result
(** Validate, append to the WAL (fsync, possibly batched with
    concurrent mutations), then apply to the delta. On [Ok] the
    mutation is durable. On [Error] nothing changed — invalid
    mutations are rejected before they reach the log, and an fsync
    failure fails every record the sync covered. May raise
    {!Fault.Write_crash} when an armed write fault fires (concurrent
    waiters in the same batch get a typed [Wal_error] instead). *)

(** {1 Checkpointing}

    [checkpoint_begin] freezes the delta and rotates the WAL so
    mutations and reads continue immediately; [checkpoint_prepare]
    merges and saves the image off every lock; [checkpoint_install]
    atomically swaps the merged base in, carrying the post-freeze
    suffix into a fresh delta. {!checkpoint} composes the three
    synchronously. *)

type checkpoint_token

val checkpoint_begin : t -> (checkpoint_token, error) result
(** Freeze the current delta into an immutable segment and rotate
    [wal.log] to [wal.frozen.log] (a fresh live log picks up the
    suffix). Waits out any in-flight commit batch; mutations resume
    as soon as this returns. *)

val checkpoint_prepare :
  ?path:string -> t -> checkpoint_token -> (Db.t * string, error) result
(** Merge base + frozen segment − tombstones into a fresh immutable
    database ({!Db.compact}) and save it atomically to [path]
    (default [checkpoint.tix] in the store's directory). Takes no
    lock — mutations proceed concurrently. *)

val checkpoint_install : t -> Db.t -> string -> unit
(** Swap the merged database in as the new base, rebuild the delta by
    replaying the post-freeze suffix, and delete the frozen log (the
    live [wal.log] already holds exactly the still-pending records).
    Briefly takes the mutation mutex. *)

val checkpoint_abort : t -> (unit, error) result
(** Undo {!checkpoint_begin} after a failed prepare: atomically
    rebuild a single live log (frozen records + suffix) and drop the
    frozen segment. No-op when no checkpoint is in flight. *)

val checkpoint_in_progress : t -> bool

val checkpoint : ?path:string -> t -> (string, error) result
(** [checkpoint_begin] + [checkpoint_prepare] + [checkpoint_install]
    run synchronously (aborting on a failed prepare). Returns the
    image path. *)

val base : t -> Db.t
(** The current base snapshot (changes only when a checkpoint
    installs). *)

val delta : t -> Delta.t
(** The current delta segment (replaced when a checkpoint
    installs). *)

val view : t -> Db.t * Delta.t
(** The current (base, delta) pair read atomically under the mutation
    mutex. A checkpoint install swaps both together, so a reader
    composing {!base} and {!delta} separately could pair the old base
    with the new delta — use this when a checkpoint may be racing. *)

val wal : t -> Wal.t
(** The current live log handle (swapped at checkpoint rotation). *)

val dir : t -> string

type stats = {
  wal_records : int;  (** records in the live log (suffix only while
                          a checkpoint is in flight) *)
  wal_bytes : int;
  delta_documents : int;  (** all un-checkpointed delta documents *)
  tombstones : int;
  checkpoints : int;  (** checkpoints installed through this handle *)
  frozen_documents : int;  (** documents in the frozen segment (0 when
                               no checkpoint is in flight) *)
  frozen_tombstones : int;
  checkpoint_in_progress : bool;
  gc_batches : int;  (** group-commit batches fsynced *)
  gc_records : int;  (** records committed through those batches *)
  gc_largest_batch : int;
}

val stats : t -> stats
val close : t -> unit
