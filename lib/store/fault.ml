type write_fault = Torn_write of { at_byte : int } | Fail_fsync

exception Write_crash of { op : int; wrote : int }

type t = {
  seed : int;
  transient_rate : float;
  corrupt_rate : float;
  max_retries : int;
  mutable injected_transient : int;
  mutable injected_corrupt : int;
  write_faults : (int, write_fault) Hashtbl.t;
  mutable injected_torn : int;
  mutable injected_fsync : int;
}

type outcome = Healthy | Transient | Corrupt

type injection_stats = {
  transient : int;
  corrupt : int;
  torn_writes : int;
  failed_fsyncs : int;
}

let create ?(seed = 0) ?(transient_rate = 0.) ?(corrupt_rate = 0.)
    ?(max_retries = 3) () =
  if transient_rate < 0. || transient_rate > 1. then
    invalid_arg "Fault.create: transient_rate outside [0, 1]";
  if corrupt_rate < 0. || corrupt_rate > 1. then
    invalid_arg "Fault.create: corrupt_rate outside [0, 1]";
  if max_retries < 0 then invalid_arg "Fault.create: negative max_retries";
  {
    seed;
    transient_rate;
    corrupt_rate;
    max_retries;
    injected_transient = 0;
    injected_corrupt = 0;
    write_faults = Hashtbl.create 4;
    injected_torn = 0;
    injected_fsync = 0;
  }

let max_retries t = t.max_retries
let seed t = t.seed

let stats t =
  {
    transient = t.injected_transient;
    corrupt = t.injected_corrupt;
    torn_writes = t.injected_torn;
    failed_fsyncs = t.injected_fsync;
  }

let arm_write_fault t ~op fault =
  if op < 0 then invalid_arg "Fault.arm_write_fault: negative op index";
  (match fault with
  | Torn_write { at_byte } when at_byte < 0 ->
    invalid_arg "Fault.arm_write_fault: negative torn-write offset"
  | Torn_write _ | Fail_fsync -> ());
  Hashtbl.replace t.write_faults op fault

let take_write_fault t ~op =
  match Hashtbl.find_opt t.write_faults op with
  | None -> None
  | Some f ->
    Hashtbl.remove t.write_faults op;
    (match f with
    | Torn_write _ -> t.injected_torn <- t.injected_torn + 1
    | Fail_fsync -> t.injected_fsync <- t.injected_fsync + 1);
    Some f

(* splitmix64 finalizer: a few rounds of multiply-xorshift give a
   well-distributed 64-bit hash of the mixed-in key parts. *)
let mix64 x =
  let open Int64 in
  let x = mul (logxor x (shift_right_logical x 30)) 0xbf58476d1ce4e5b9L in
  let x = mul (logxor x (shift_right_logical x 27)) 0x94d049bb133111ebL in
  logxor x (shift_right_logical x 31)

let hash t ~page ~attempt ~salt =
  let open Int64 in
  let h = mix64 (add (of_int t.seed) 0x9e3779b97f4a7c15L) in
  let h = mix64 (logxor h (of_int page)) in
  let h = mix64 (logxor h (of_int ((attempt lsl 8) lor salt))) in
  h

(* uniform float in [0, 1) from the top 53 bits *)
let unit_float h =
  Int64.to_float (Int64.shift_right_logical h 11) *. (1. /. 9007199254740992.)

let roll t ~page ~attempt ~salt rate =
  rate > 0. && unit_float (hash t ~page ~attempt ~salt) < rate

let outcome t ~page ~attempt =
  (* corruption is a property of the page, not of the attempt *)
  if roll t ~page ~attempt:0 ~salt:1 t.corrupt_rate then begin
    t.injected_corrupt <- t.injected_corrupt + 1;
    Corrupt
  end
  else if roll t ~page ~attempt ~salt:0 t.transient_rate then begin
    t.injected_transient <- t.injected_transient + 1;
    Transient
  end
  else Healthy

let corrupt_in_place t ~page bytes =
  let len = Bytes.length bytes in
  if len > 0 then begin
    let h = hash t ~page ~attempt:0 ~salt:2 in
    let pos = Int64.to_int (Int64.rem (Int64.shift_right_logical h 1) (Int64.of_int len)) in
    (* xor with a nonzero mask so the byte always changes *)
    let mask = 1 + (Int64.to_int (Int64.logand h 0xffL) land 0xfe) in
    Bytes.set bytes pos
      (Char.chr (Char.code (Bytes.get bytes pos) lxor mask))
  end
