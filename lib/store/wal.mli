(** Crash-safe write-ahead log for live corpus updates.

    The log is an append-only file of insert/delete/update records.
    Every record is framed as

    {v
      length   u32 big-endian        payload byte count
      crc32    u32 big-endian        CRC-32 of the payload
      payload  length bytes          varint op, name, optional XML
      commit   1 byte (0xC6)         the frame's commit marker
    v}

    behind an 8-byte magic header ([TIXWAL01]). A record is
    {e committed} exactly when its whole frame — commit marker
    included — is on stable storage; {!append} fsyncs before
    returning.

    Recovery ({!open_}) replays committed records in order and
    truncates the file at the first torn frame: a short length/CRC
    header, a payload shorter than its length promises, a CRC
    mismatch, a missing or wrong commit marker, or an undecodable
    payload all mark the end of the committed prefix. Replay is
    idempotent — reopening an already-recovered log yields the same
    records and truncates nothing.

    Write faults from an attached {!Fault} injector are honoured:
    a {!Fault.Torn_write} stops the frame after N bytes and raises
    {!Fault.Write_crash} (the simulated process death a crash-point
    sweep catches); {!Fault.Fail_fsync} reports a typed
    [Sync_failed] and rolls the file back to its pre-append length. *)

type t

type record =
  | Insert of { name : string; xml : string }
  | Delete of { name : string }
  | Update of { name : string; xml : string }

type error =
  | Not_a_wal of { path : string }
      (** the file does not start with a TIXWAL magic header *)
  | Unsupported_version of { path : string; found : string }
  | Io_error of { path : string; detail : string }
  | Sync_failed of { path : string; detail : string }
      (** an fsync failed (or was injected to fail): the append is
          not durable and was rolled back *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

type recovery = {
  records : record list;  (** the committed prefix, in append order *)
  truncated_bytes : int;
      (** torn/corrupt tail bytes discarded by recovery (0 on a clean
          log) *)
  valid_bytes : int;  (** file length after recovery, header included *)
}

val open_ : ?fault:Fault.t -> string -> (t * recovery, error) result
(** Open (creating an empty log if the file is absent), replay the
    committed prefix and truncate any torn tail. The returned handle
    appends after the recovered prefix. *)

val append : t -> record -> (unit, error) result
(** Frame, write and fsync one record. On [Ok] the record is
    committed; on [Error] the log file is back at its pre-append
    length and the in-memory state is unchanged. May raise
    {!Fault.Write_crash} when an armed torn-write fault fires — the
    "process" died mid-append and only reopening the file
    ({!open_}) tells how far the frame got. Equivalent to
    [append_many t [record]]. *)

val append_many : t -> record list -> (unit, error) result
(** Group commit: frame every record, hand them to the kernel in one
    contiguous write and fsync {e once} — on [Ok] all records are
    committed behind a single sync. Each record still consumes one
    op index for fault injection, and the earliest armed fault in
    the batch decides the outcome: a {!Fault.Torn_write} at op [j]
    leaves the frames before [j] fully in the file (they shared the
    dying write) plus [at_byte] bytes of frame [j], then raises
    {!Fault.Write_crash}; a {!Fault.Fail_fsync} fails the {e whole}
    batch with [Sync_failed] and rolls the file back — the single
    sync covered every frame, so none of them is durable.
    [append_many t []] is a no-op. *)

val save_records : string -> record list -> (unit, error) result
(** Atomically replace [path] with a freshly built log holding
    exactly [records]: the image is written and fsynced beside the
    target, then renamed over it. Used to merge a rotated checkpoint
    log back under the live one during recovery or abort. *)

val path : t -> string
val record_count : t -> int
(** Committed records currently in the log (replayed + appended). *)

val byte_size : t -> int
(** Committed log length in bytes, header included. *)

val append_index : t -> int
(** 0-based index of the {e next} append through this handle — the
    op index {!Fault.arm_write_fault} keys on. *)

val set_append_index : t -> int -> unit
(** Carry the op-fault indexing across a log rotation: a fresh
    handle opened mid-stream inherits the old handle's counter so
    armed fault op indices stay unambiguous. *)

val reset : t -> (unit, error) result
(** Truncate the log back to an empty (header-only) file — the
    post-checkpoint state. Fsyncs before returning. *)

val set_fault : t -> Fault.t option -> unit
val fault : t -> Fault.t option

val close : t -> unit
(** Release the file descriptor. Idempotent; the handle must not be
    used afterwards. *)
