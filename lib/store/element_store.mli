(** The element table: every element record of every document,
    serialized into pages in [(doc, start)] order.

    Point look-ups descend a page directory (binary search) and then
    decode records within the page; sequential scans decode page
    after page. Both go through the {!Pager}'s buffer pool, so the
    relative costs of the access methods in Sec. 6 — posting-list
    merges versus full-table structural joins versus per-node random
    look-ups — are reproduced by construction. *)

type t

(** {1 Building} *)

type builder

val builder : ?page_size:int -> ?pool_pages:int -> unit -> builder

val add : builder -> Element_rec.t -> unit
(** Records must be appended in [(doc, start)] order. *)

val freeze : builder -> t

(** {1 Access} *)

val element_count : t -> int
val document_count : t -> int
val pager : t -> Pager.t

val get : t -> doc:int -> start:int -> Element_rec.t option
(** Point look-up by primary key: page-directory descent plus in-page
    scan. This is the "data access plus navigation" the plain
    TermJoin pays to learn a popped node's child count (Sec. 6.1). *)

val get_text : t -> doc:int -> start:int -> string option
(** Like {!get} but returns the record's direct text; the data-page
    access performed by the Comp3 verification filter. *)

val scan : t -> ?with_text:bool -> (Element_rec.t -> unit) -> unit
(** Full sequential scan in [(doc, start)] order; decodes every
    record (skipping text payloads unless [with_text]). *)

val scan_doc : t -> doc:int -> ?with_text:bool -> (Element_rec.t -> unit) -> unit
(** Scan one document's records in start order. *)

(** {1 Serialization} *)

val save : t -> Buffer.t -> unit
(** Append the page image (page directory and raw pages). *)

val load : ?pool_pages:int -> Bytes.t -> int -> t * int
(** [load bytes off] is [(store, next_off)]; inverse of {!save}.
    Copies every page out of [bytes] into a heap pager. *)

val load_mapped : Ir.Codec.buf -> int -> t * int
(** Like {!load} but zero-copy: pages stay as slices of [buf] (an
    mmap'd image section whose CRC has been verified) behind a
    born-pinned {!Pager.of_mapped} pager that materializes each page
    lazily on first read. Raises [Ir.Codec.Truncated] if the page
    table runs past the buffer. *)

val subtree_texts : t -> doc:int -> start:int -> end_:int -> string list
(** Direct texts of every element whose interval lies within
    [[start, end_]], in document order: reconstructs [alltext()] from
    stored pages. *)
