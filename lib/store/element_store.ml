type page_meta = { first_doc : int; first_start : int; records : int }

type t = {
  pager : Pager.t;
  metas : page_meta array;
  elements : int;
  documents : int;
}

type builder = {
  b_pager : Pager.t;
  buf : Buffer.t;
  mutable buf_records : int;
  mutable buf_first : (int * int) option;  (* (doc, start) of first record *)
  mutable metas_rev : page_meta list;
  mutable count : int;
  mutable docs : int;
  mutable last_key : int * int;
  page_size : int;
}

let builder ?(page_size = Pager.default_page_size) ?pool_pages () =
  {
    b_pager = Pager.create ?pool_pages ~page_size ();
    buf = Buffer.create page_size;
    buf_records = 0;
    buf_first = None;
    metas_rev = [];
    count = 0;
    docs = 0;
    last_key = (-1, -1);
    page_size;
  }

let flush_page b =
  match b.buf_first with
  | None -> ()
  | Some (first_doc, first_start) ->
    let page = Buffer.to_bytes b.buf in
    ignore (Pager.append_page b.b_pager page);
    b.metas_rev <-
      { first_doc; first_start; records = b.buf_records } :: b.metas_rev;
    Buffer.clear b.buf;
    b.buf_records <- 0;
    b.buf_first <- None

let add b (rec_ : Element_rec.t) =
  if (rec_.doc, rec_.start) <= b.last_key then
    invalid_arg "Element_store.add: records out of order";
  b.last_key <- (rec_.doc, rec_.start);
  let scratch = Buffer.create 64 in
  Element_rec.encode scratch rec_;
  let len = Buffer.length scratch in
  (* A page never mixes documents (records do not store a doc id of
     their own) and never grows past the page size once non-empty. *)
  let doc_boundary =
    match b.buf_first with
    | Some (d, _) -> d <> rec_.doc
    | None -> false
  in
  if Buffer.length b.buf > 0
     && (doc_boundary || Buffer.length b.buf + len > b.page_size)
  then flush_page b;
  if b.buf_first = None then b.buf_first <- Some (rec_.doc, rec_.start);
  Buffer.add_buffer b.buf scratch;
  b.buf_records <- b.buf_records + 1;
  b.count <- b.count + 1;
  if rec_.doc >= b.docs then b.docs <- rec_.doc + 1

let freeze b =
  flush_page b;
  {
    pager = b.b_pager;
    metas = Array.of_list (List.rev b.metas_rev);
    elements = b.count;
    documents = b.docs;
  }

let element_count t = t.elements
let document_count t = t.documents
let pager t = t.pager

(* Index of the last page whose first key is <= (doc, start). *)
let locate_page t ~doc ~start =
  let key_le m = (m.first_doc, m.first_start) <= (doc, start) in
  if Array.length t.metas = 0 || not (key_le t.metas.(0)) then None
  else begin
    let lo = ref 0 and hi = ref (Array.length t.metas - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if key_le t.metas.(mid) then lo := mid else hi := mid - 1
    done;
    Some !lo
  end

let find_in_page t page_id ~doc ~start ~decode =
  let page = Pager.read_page t.pager page_id in
  let meta = t.metas.(page_id) in
  let rec go i off =
    if i >= meta.records then None
    else begin
      let rec_, next = decode ~doc:meta.first_doc page off in
      if rec_.Element_rec.doc = doc && rec_.Element_rec.start = start then
        Some rec_
      else if rec_.Element_rec.start > start then None
      else go (i + 1) next
    end
  in
  go 0 0

let get t ~doc ~start =
  match locate_page t ~doc ~start with
  | None -> None
  | Some page_id -> find_in_page t page_id ~doc ~start ~decode:Element_rec.decode_meta

let get_text t ~doc ~start =
  match locate_page t ~doc ~start with
  | None -> None
  | Some page_id ->
    Option.map
      (fun r -> r.Element_rec.text)
      (find_in_page t page_id ~doc ~start ~decode:Element_rec.decode)

let scan_pages t ~from_page ?(with_text = false) ~stop f =
  let decode = if with_text then Element_rec.decode else Element_rec.decode_meta in
  let n = Array.length t.metas in
  let rec go page_id =
    if page_id >= n then ()
    else begin
      let meta = t.metas.(page_id) in
      if stop meta then ()
      else begin
        let page = Pager.read_page t.pager page_id in
        let off = ref 0 in
        for _ = 1 to meta.records do
          let rec_, next = decode ~doc:meta.first_doc page !off in
          f rec_;
          off := next
        done;
        go (page_id + 1)
      end
    end
  in
  go from_page

let scan t ?with_text f =
  scan_pages t ~from_page:0 ?with_text ~stop:(fun _ -> false) f

let scan_doc t ~doc ?with_text f =
  let from_page =
    match locate_page t ~doc ~start:0 with Some p -> p | None -> 0
  in
  scan_pages t ~from_page ?with_text
    ~stop:(fun meta -> meta.first_doc > doc)
    (fun rec_ -> if rec_.Element_rec.doc = doc then f rec_)

let subtree_texts t ~doc ~start ~end_ =
  let acc = ref [] in
  let from_page =
    match locate_page t ~doc ~start with Some p -> p | None -> 0
  in
  scan_pages t ~from_page ~with_text:true
    ~stop:(fun meta -> (meta.first_doc, meta.first_start) > (doc, end_))
    (fun rec_ ->
      if
        rec_.Element_rec.doc = doc
        && rec_.Element_rec.start >= start
        && rec_.Element_rec.end_ <= end_
        && rec_.Element_rec.text <> ""
      then acc := rec_.Element_rec.text :: !acc);
  List.rev !acc

let save t buf =
  Ir.Codec.add_varint buf (Pager.page_size t.pager);
  Ir.Codec.add_varint buf t.elements;
  Ir.Codec.add_varint buf t.documents;
  Ir.Codec.add_varint buf (Array.length t.metas);
  Array.iteri
    (fun page_id meta ->
      Ir.Codec.add_varint buf meta.first_doc;
      Ir.Codec.add_varint buf meta.first_start;
      Ir.Codec.add_varint buf meta.records;
      let page = Pager.read_page t.pager page_id in
      Ir.Codec.add_varint buf (Bytes.length page);
      Buffer.add_bytes buf page)
    t.metas

(* Zero-copy load: the page table is decoded (it is tiny), but page
   payloads stay where they are — (offset, length) slices of the
   mapped image, materialized by the pager only when a query first
   touches them. Cold open cost is the page table, not the data. *)
let load_mapped buf off =
  let page_size, off = Ir.Codec.read_varint_buf buf off in
  let elements, off = Ir.Codec.read_varint_buf buf off in
  let documents, off = Ir.Codec.read_varint_buf buf off in
  let npages, off = Ir.Codec.read_varint_buf buf off in
  let total = Ir.Codec.buf_length buf in
  let metas = Array.make npages { first_doc = 0; first_start = 0; records = 0 } in
  let slices = Array.make npages (0, 0) in
  let off = ref off in
  for page_id = 0 to npages - 1 do
    let first_doc, o = Ir.Codec.read_varint_buf buf !off in
    let first_start, o = Ir.Codec.read_varint_buf buf o in
    let records, o = Ir.Codec.read_varint_buf buf o in
    let len, o = Ir.Codec.read_varint_buf buf o in
    if len < 0 || o + len > total then
      raise (Ir.Codec.Truncated "element page runs past end of image");
    metas.(page_id) <- { first_doc; first_start; records };
    slices.(page_id) <- (o, len);
    off := o + len
  done;
  let pager = Pager.of_mapped ~page_size ~buf slices in
  ({ pager; metas; elements; documents }, !off)

let load ?pool_pages bytes off =
  let page_size, off = Ir.Codec.read_varint bytes off in
  let elements, off = Ir.Codec.read_varint bytes off in
  let documents, off = Ir.Codec.read_varint bytes off in
  let npages, off = Ir.Codec.read_varint bytes off in
  let pager = Pager.create ?pool_pages ~page_size () in
  let metas = Array.make npages { first_doc = 0; first_start = 0; records = 0 } in
  let off = ref off in
  for page_id = 0 to npages - 1 do
    let first_doc, o = Ir.Codec.read_varint bytes !off in
    let first_start, o = Ir.Codec.read_varint bytes o in
    let records, o = Ir.Codec.read_varint bytes o in
    let len, o = Ir.Codec.read_varint bytes o in
    let page = Bytes.sub bytes o len in
    let id = Pager.append_page pager page in
    assert (id = page_id);
    metas.(page_id) <- { first_doc; first_start; records };
    off := o + len
  done;
  ({ pager; metas; elements; documents }, !off)
