(** The parent/child-count index behind {e Enhanced TermJoin}
    (Sec. 6.1): given a node, return its parent {e along with the
    number of children of this parent} without touching data pages. *)

type entry = {
  parent : int;  (** start key of the parent; [-1] for a root *)
  child_count : int;
  level : int;
  end_ : int;
  tag : int;
}

type t

type builder

val builder : unit -> builder

val add : builder -> doc:int -> start:int -> entry -> unit
(** Entries of one document must be added in start order, documents
    in id order. *)

val freeze : builder -> t

val find : t -> doc:int -> start:int -> entry option
(** Binary search over the per-document start array. *)

val parent_of : t -> doc:int -> start:int -> int option
(** Start key of the parent; [None] when [start] is unknown or a
    root. *)

val entry_count : t -> int

(** {1 Serialization}

    A TIXDB004 image stores this index as its own section, so an
    open decodes it directly instead of rebuilding it by scanning
    every element page. *)

val save : t -> Buffer.t -> unit

val load : Ir.Codec.buf -> int -> t * int
(** [(index, next_off)]; inverse of {!save}. Raises
    [Ir.Codec.Truncated] on a short buffer. *)
