let src = Logs.Src.create "tix.store" ~doc:"TIX storage engine"

module Log = (val Logs.src_log src)

type load_options = {
  stem : bool;
  page_size : int;
  pool_pages : int;
  keep_trees : bool;
}

let default_options =
  {
    stem = false;
    page_size = Pager.default_page_size;
    pool_pages = 1024;
    keep_trees = true;
  }

type error =
  | Not_a_database of { path : string }
  | Unsupported_version of { path : string; found : string }
  | Truncated of { path : string; detail : string }
  | Checksum_mismatch of {
      path : string;
      section : string;
      expected : int;
      actual : int;
    }
  | Corrupt of { path : string; detail : string }
  | Io_error of { path : string; detail : string }

type verification = [ `Verified | `Pending | `Failed of error ]

(* Checksum verification state of an opened image. In-memory builds
   and eager opens are born [`Verified]; a lazy v4 open frames the
   sections structurally, starts serving, and lets a background
   thread run the CRC pass, flipping the status when it lands. *)
type verifier = {
  v_status : verification Atomic.t;
  mutable v_thread : Thread.t option;
}

let verified () = { v_status = Atomic.make `Verified; v_thread = None }

type t = {
  catalog : Catalog.t;
  elements : Element_store.t;
  parents : Parent_index.t;
  tags : Tag_index.t;
  index : Ir.Inverted_index.t;
  numberings : Xmlkit.Numbering.t array option;
  verif : verifier;
  coll_stats : Ir.Stats.t option Atomic.t;
      (* planner statistics: decoded from the image's optional stats
         section, or computed lazily by one element scan on first use *)
}

type stats = {
  documents : int;
  elements : int;
  distinct_terms : int;
  occurrences : int;
  pages : int;
  index_bytes : int;
}

(* Number of descendant elements of each element, from the preorder
   info array: a following element belongs to the subtree while its
   interval is contained. *)
let descendant_counts (infos : Xmlkit.Numbering.info array) =
  let n = Array.length infos in
  let counts = Array.make n 0 in
  (* stack of indices of currently open elements *)
  let stack = ref [] in
  for i = 0 to n - 1 do
    let rec close () =
      match !stack with
      | top :: rest when infos.(top).Xmlkit.Numbering.end_ < infos.(i).start ->
        stack := rest;
        close ()
      | _ -> ()
    in
    close ();
    List.iter (fun a -> counts.(a) <- counts.(a) + 1) !stack;
    stack := i :: !stack
  done;
  counts

type builders = {
  b_catalog : Catalog.t;
  b_store : Element_store.builder;
  b_parents : Parent_index.builder;
  b_tags : Tag_index.builder;
  b_index : Ir.Inverted_index.builder;
  mutable b_numberings : Xmlkit.Numbering.t list;  (* reverse order *)
  b_options : load_options;
}

let make_builders options =
  {
    b_catalog = Catalog.create ();
    b_store =
      Element_store.builder ~page_size:options.page_size
        ~pool_pages:options.pool_pages ();
    b_parents = Parent_index.builder ();
    b_tags = Tag_index.builder ();
    b_index = Ir.Inverted_index.builder ~stem:options.stem ();
    b_numberings = [];
    b_options = options;
  }

let ingest b (name, root) =
  let options = b.b_options in
  let catalog = b.b_catalog in
  let store_builder = b.b_store in
  let parent_builder = b.b_parents in
  let tag_builder = b.b_tags in
  let index_builder = b.b_index in
    let doc = Catalog.add_document catalog name in
    let text ~owner:_ ~owner_start ~start_key s =
      let next =
        Ir.Inverted_index.index_text index_builder ~doc ~node:owner_start
          ~start_pos:start_key s
      in
      next - start_key
    in
    let numbering = Xmlkit.Numbering.number ~text root in
    let infos = numbering.Xmlkit.Numbering.infos in
    let desc = descendant_counts infos in
    Array.iteri
      (fun i (info : Xmlkit.Numbering.info) ->
        let parent_start =
          if info.parent < 0 then -1 else infos.(info.parent).start
        in
        let tag = Catalog.intern_tag catalog info.tag in
        let word_count = info.end_ - info.start - 1 - (2 * desc.(i)) in
        let text_content =
          String.concat " "
            (Xmlkit.Tree.child_texts numbering.Xmlkit.Numbering.elements.(i))
        in
        Element_store.add store_builder
          {
            Element_rec.doc;
            start = info.start;
            end_ = info.end_;
            level = info.level;
            parent = parent_start;
            child_count = info.child_count;
            tag;
            word_count;
            text = text_content;
          };
        Parent_index.add parent_builder ~doc ~start:info.start
          {
            Parent_index.parent = parent_start;
            child_count = info.child_count;
            level = info.level;
            end_ = info.end_;
            tag;
          };
        Tag_index.add tag_builder ~tag
          { Tag_index.doc; start = info.start; end_ = info.end_; level = info.level })
      infos;
  if options.keep_trees then b.b_numberings <- numbering :: b.b_numberings

let finish b =
  {
    catalog = b.b_catalog;
    elements = Element_store.freeze b.b_store;
    parents = Parent_index.freeze b.b_parents;
    tags = Tag_index.freeze b.b_tags;
    index = Ir.Inverted_index.freeze b.b_index;
    numberings =
      (if b.b_options.keep_trees then
         Some (Array.of_list (List.rev b.b_numberings))
       else None);
    verif = verified ();
    coll_stats = Atomic.make None;
  }

let load ?(options = default_options) docs =
  let b = make_builders options in
  let started = Unix.gettimeofday () in
  Seq.iter (ingest b) docs;
  Log.info (fun m ->
      m "loaded %d documents in %.1f ms"
        (Catalog.document_count b.b_catalog)
        ((Unix.gettimeofday () -. started) *. 1000.));
  finish b

let of_documents ?options docs = load ?options (List.to_seq docs)

type load_failure = { document : string; reason : string }

type load_report = { loaded : int; failed : load_failure list }

let load_isolated ?(options = default_options) docs =
  let b = make_builders options in
  let failed = ref [] and loaded = ref 0 in
  let skip name reason =
    Log.info (fun m -> m "skipping %s: %s" name reason);
    failed := { document = name; reason } :: !failed
  in
  Seq.iter
    (fun (name, parsed) ->
      match parsed with
      | Error reason -> skip name reason
      | Ok root -> begin
        (* Dry-run the numbering pass before any builder sees the
           document: whatever would make the real ingest blow up —
           a pathological tree, a stack overflow — fails here, where
           skipping is still free. *)
        match ignore (Xmlkit.Numbering.number root) with
        | exception Stack_overflow -> skip name "document tree too deep"
        | exception e -> skip name (Printexc.to_string e)
        | () ->
          ingest b (name, root);
          incr loaded
      end)
    docs;
  (finish b, { loaded = !loaded; failed = List.rev !failed })

let pp_load_report ppf r =
  Format.fprintf ppf "loaded %d document%s" r.loaded
    (if r.loaded = 1 then "" else "s");
  match r.failed with
  | [] -> ()
  | failures ->
    Format.fprintf ppf ", skipped %d:" (List.length failures);
    List.iter
      (fun f -> Format.fprintf ppf "@,  %s: %s" f.document f.reason)
      failures

let catalog (t : t) = t.catalog
let elements (t : t) = t.elements
let parents (t : t) = t.parents
let tags (t : t) = t.tags
let index (t : t) = t.index
let document_id t name = Catalog.document_id t.catalog name

let stats t =
  let istats = Ir.Inverted_index.stats t.index in
  {
    documents = Catalog.document_count t.catalog;
    elements = Element_store.element_count t.elements;
    distinct_terms = istats.Ir.Inverted_index.distinct_terms;
    occurrences = istats.total_occurrences;
    pages = Pager.page_count (Element_store.pager t.elements);
    index_bytes = istats.bytes;
  }

let numbering t ~doc =
  match t.numberings with
  | Some arr when doc >= 0 && doc < Array.length arr -> Some arr.(doc)
  | Some _ | None -> None

let subtree t ~doc ~start =
  match numbering t ~doc with
  | None -> None
  | Some num ->
    (match Xmlkit.Numbering.find_by_start num start with
    | Some info -> Some num.Xmlkit.Numbering.elements.(info.index)
    | None -> None)

let tag_of t ~doc ~start =
  match Parent_index.find t.parents ~doc ~start with
  | Some e -> Some (Catalog.tag_name t.catalog e.Parent_index.tag)
  | None -> None

(* ------------------------------------------------------------------ *)
(* Compaction: merge a delta segment into a fresh immutable database.

   The merged document id space is dense: live base documents keep
   their relative order and are renumbered 0.., delta documents follow
   in arrival order. Both remaps are monotone, so re-adding element
   records and posting occurrences in scan order preserves the
   (doc, start) / (doc, pos) orders the builders require, and the
   result is indistinguishable from loading the surviving documents
   from scratch. *)

let compact ~base ~delta ~tombstones =
  let n_base = Catalog.document_count base.catalog in
  let remap = Array.make (max n_base 1) (-1) in
  let n_live = ref 0 in
  for d = 0 to n_base - 1 do
    let dead = d < Array.length tombstones && tombstones.(d) in
    if not dead then begin
      remap.(d) <- !n_live;
      incr n_live
    end
  done;
  let n_live = !n_live in
  let catalog = Catalog.create () in
  for d = 0 to n_base - 1 do
    if remap.(d) >= 0 then
      ignore (Catalog.add_document catalog (Catalog.document_name base.catalog d))
  done;
  (match delta with
  | None -> ()
  | Some dd ->
    for d = 0 to Catalog.document_count dd.catalog - 1 do
      ignore (Catalog.add_document catalog (Catalog.document_name dd.catalog d))
    done);
  let store_b =
    Element_store.builder
      ~page_size:(Pager.page_size (Element_store.pager base.elements))
      ~pool_pages:default_options.pool_pages ()
  in
  let parent_b = Parent_index.builder () in
  let tag_b = Tag_index.builder () in
  let add_element src_catalog doc_of (r : Element_rec.t) =
    match doc_of r.doc with
    | -1 -> ()
    | doc ->
      let tag = Catalog.intern_tag catalog (Catalog.tag_name src_catalog r.tag) in
      Element_store.add store_b { r with doc; tag };
      Parent_index.add parent_b ~doc ~start:r.start
        {
          Parent_index.parent = r.parent;
          child_count = r.child_count;
          level = r.level;
          end_ = r.end_;
          tag;
        };
      Tag_index.add tag_b ~tag
        { Tag_index.doc; start = r.start; end_ = r.end_; level = r.level }
  in
  Element_store.scan base.elements ~with_text:true
    (add_element base.catalog (fun d -> remap.(d)));
  (match delta with
  | None -> ()
  | Some dd ->
    Element_store.scan dd.elements ~with_text:true
      (add_element dd.catalog (fun d -> n_live + d)));
  let index_b =
    Ir.Inverted_index.builder ~stem:(Ir.Inverted_index.stemmed base.index) ()
  in
  (* terms were normalized at original ingest; re-add them raw *)
  Ir.Inverted_index.iter_terms base.index (fun term postings ->
      Ir.Postings.iter
        (fun (o : Ir.Postings.occ) ->
          if remap.(o.doc) >= 0 then
            Ir.Inverted_index.add_normalized_occurrence index_b
              ~doc:remap.(o.doc) ~node:o.node ~term ~pos:o.pos)
        postings);
  (match delta with
  | None -> ()
  | Some dd ->
    Ir.Inverted_index.iter_terms dd.index (fun term postings ->
        Ir.Postings.iter
          (fun (o : Ir.Postings.occ) ->
            Ir.Inverted_index.add_normalized_occurrence index_b
              ~doc:(n_live + o.doc) ~node:o.node ~term ~pos:o.pos)
          postings));
  let numberings =
    let live_base =
      match base.numberings with
      | Some arr ->
        let live = ref [] in
        Array.iteri (fun d num -> if remap.(d) >= 0 then live := num :: !live) arr;
        Some (List.rev !live)
      | None -> if n_live = 0 then Some [] else None
    in
    let from_delta =
      match delta with
      | None -> Some []
      | Some dd -> (
        match dd.numberings with
        | Some arr -> Some (Array.to_list arr)
        | None ->
          if Catalog.document_count dd.catalog = 0 then Some [] else None)
    in
    match (live_base, from_delta) with
    | Some a, Some b -> Some (Array.of_list (a @ b))
    | _ -> None
  in
  {
    catalog;
    elements = Element_store.freeze store_b;
    parents = Parent_index.freeze parent_b;
    tags = Tag_index.freeze tag_b;
    index = Ir.Inverted_index.freeze index_b;
    numberings;
    verif = verified ();
    coll_stats = Atomic.make None;
  }

(* ------------------------------------------------------------------ *)
(* Planner statistics: corpus aggregates + per-tag counts + path
   synopsis ({!Ir.Stats}). Saved images carry them in an optional
   sixth section; otherwise (in-memory builds, legacy images, images
   written before the section existed) one element-store scan in
   preorder computes them on first use and caches the result. *)

let compute_collection_stats t =
  let istats = Ir.Inverted_index.stats t.index in
  let b =
    Ir.Stats.builder
      ~documents:(Catalog.document_count t.catalog)
      ~occurrences:istats.Ir.Inverted_index.total_occurrences
      ~distinct_terms:istats.Ir.Inverted_index.distinct_terms
      ~tag_count:(Catalog.tag_count t.catalog)
      ()
  in
  Element_store.scan t.elements (fun (r : Element_rec.t) ->
      Ir.Stats.add_element b ~tag:r.tag ~level:r.level);
  Ir.Stats.freeze b

let collection_stats t =
  match Atomic.get t.coll_stats with
  | Some s -> s
  | None ->
    let s = compute_collection_stats t in
    (* racing domains compute identical stats; first publisher wins *)
    ignore (Atomic.compare_and_set t.coll_stats None (Some s));
    Option.value ~default:s (Atomic.get t.coll_stats)

let pp_stats ppf s =
  Format.fprintf ppf
    "documents=%d elements=%d terms=%d occurrences=%d pages=%d index_bytes=%d"
    s.documents s.elements s.distinct_terms s.occurrences s.pages s.index_bytes

(* ------------------------------------------------------------------ *)
(* Persistence

   Image layout (version 4: frame-of-reference bit-packed posting
   blocks, serialized parent/tag index sections, mmap'd zero-copy
   open; version 3 added the posting skip tables inside the index
   section's payload):

     magic   "TIXDB004"                       8 bytes
     count   varint                           5 or 6
     section varint id, varint len,
             4-byte big-endian CRC-32,        catalog = 1,
             payload                          elements = 2, index = 3,
                                              parents = 4, tags = 5,
                                              stats = 6 (optional)

   Sections appear in id order and the file ends exactly after the
   last payload. Every payload byte is covered by its section's
   CRC-32; every framing byte is covered by structural checks, so a
   single flipped byte anywhere is detected before any decoded value
   is trusted.

   A version-4 image is opened by mapping the file (Unix.map_file)
   and verifying every section CRC directly over the map — no copy,
   no allocation proportional to the image. Posting lists and element
   pages then decode lazily, in place: the element pager is born
   pinned ([Pager.of_mapped]), so snapshot publication is O(1) and
   the mapped pages are shared read-only across every domain.

   Version-3 images still open: they are read into memory with the
   legacy varint posting codec and transparently re-packed
   ([Ir.Inverted_index.load_legacy]); the next [save] — e.g. a
   checkpoint, or `tixdb compact` — writes version 4. *)

let magic = "TIXDB004"
let magic_v3 = "TIXDB003"
let magic_prefix = "TIXDB"

let pp_error ppf = function
  | Not_a_database { path } ->
    Format.fprintf ppf "%s: not a TIX database image" path
  | Unsupported_version { path; found } ->
    Format.fprintf ppf "%s: unsupported image version %S (this build reads %S)"
      path found magic
  | Truncated { path; detail } ->
    Format.fprintf ppf "%s: truncated image: %s" path detail
  | Checksum_mismatch { path; section; expected; actual } ->
    Format.fprintf ppf
      "%s: %s section checksum mismatch (stored %08x, computed %08x)" path
      section expected actual
  | Corrupt { path; detail } ->
    Format.fprintf ppf "%s: corrupt image: %s" path detail
  | Io_error { path; detail } -> Format.fprintf ppf "%s: %s" path detail

let error_to_string e = Format.asprintf "%a" pp_error e

(* The sixth section (planner statistics) is optional: images written
   before it existed frame and verify exactly as before, and old
   builds reject a six-section image by its header count — the
   version byte in the magic is the compatibility contract, the
   count check below merely bounds it. *)
let section_names = [| "catalog"; "elements"; "index"; "parents"; "tags"; "stats" |]
let required_sections = 5
let section_names_v3 = [| "catalog"; "elements"; "index" |]

let add_string buf s =
  Ir.Codec.add_varint buf (String.length s);
  Buffer.add_string buf s

let read_string_buf buf off =
  let len, off = Ir.Codec.read_varint_buf buf off in
  (Ir.Codec.buf_sub_string buf off len, off + len)

let add_crc32 buf crc =
  Buffer.add_char buf (Char.chr ((crc lsr 24) land 0xFF));
  Buffer.add_char buf (Char.chr ((crc lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((crc lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (crc land 0xFF))

let read_crc32_buf buf off =
  let b i = Ir.Codec.buf_get buf (off + i) in
  ((b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3, off + 4)

let catalog_section t =
  let buf = Buffer.create 4096 in
  Ir.Codec.add_varint buf (Catalog.document_count t.catalog);
  for doc = 0 to Catalog.document_count t.catalog - 1 do
    add_string buf (Catalog.document_name t.catalog doc)
  done;
  Ir.Codec.add_varint buf (Catalog.tag_count t.catalog);
  for tag = 0 to Catalog.tag_count t.catalog - 1 do
    add_string buf (Catalog.tag_name t.catalog tag)
  done;
  buf

let section buf_size fill =
  let buf = Buffer.create buf_size in
  fill buf;
  buf

let write_image ~magic sections path =
  let image = Buffer.create (1 lsl 20) in
  Buffer.add_string image magic;
  Ir.Codec.add_varint image (List.length sections);
  List.iteri
    (fun i payload ->
      let s = Buffer.contents payload in
      Ir.Codec.add_varint image (i + 1);
      Ir.Codec.add_varint image (String.length s);
      add_crc32 image (Crc32.string s);
      Buffer.add_string image s)
    sections;
  (* Atomic publication: assemble next to the target, then rename. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (match Buffer.output_buffer oc image with
  | () -> close_out oc
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  Sys.rename tmp path

let save ?(with_stats = true) t path =
  let base =
    [
      catalog_section t;
      section (1 lsl 20) (Element_store.save t.elements);
      section (1 lsl 20) (Ir.Inverted_index.save t.index);
      section (1 lsl 16) (Parent_index.save t.parents);
      section (1 lsl 16) (Tag_index.save t.tags);
    ]
  in
  let sections =
    if with_stats then
      base @ [ section (1 lsl 12) (Ir.Stats.save (collection_stats t)) ]
    else base
  in
  write_image ~magic sections path

(* A genuine version-3 image (legacy varint postings, three sections,
   no parent/tag sections): what previous builds of this code wrote.
   Kept so compatibility tests and the snapshot-open benchmark can
   produce the images the upgrade path must keep reading. *)
let save_v3 t path =
  write_image ~magic:magic_v3
    [
      catalog_section t;
      section (1 lsl 20) (Element_store.save t.elements);
      section (1 lsl 20) (Ir.Inverted_index.save_legacy t.index);
    ]
    path

let decode_catalog buf ~off ~len =
  let limit = off + len in
  let catalog = Catalog.create () in
  let ndocs, off = Ir.Codec.read_varint_buf buf off in
  let off = ref off in
  for _ = 1 to ndocs do
    let name, o = read_string_buf buf !off in
    ignore (Catalog.add_document catalog name);
    off := o
  done;
  let ntags, o = Ir.Codec.read_varint_buf buf !off in
  off := o;
  for _ = 1 to ntags do
    let name, o = read_string_buf buf !off in
    ignore (Catalog.intern_tag catalog name);
    off := o
  done;
  if !off <> limit then failwith "catalog section length mismatch";
  catalog

(* Frame the section table over [buf]: purely structural checks on
   the header — section count, ids, lengths summing exactly to the
   file size. O(1) in the image size; trusts no payload byte. *)
let frame ?min_sections ~path ~names buf =
  let min_sections =
    match min_sections with Some m -> m | None -> Array.length names
  in
  let total = Ir.Codec.buf_length buf in
  match
    let nsections, off = Ir.Codec.read_varint_buf buf (String.length magic) in
    if nsections < min_sections || nsections > Array.length names then
      Error
        (Corrupt
           {
             path;
             detail =
               Printf.sprintf "expected %d-%d sections, header says %d"
                 min_sections (Array.length names) nsections;
           })
    else begin
      let rec frame i off acc =
        if i >= nsections then
          if off <> total then
            Error
              (Corrupt
                 {
                   path;
                   detail =
                     Printf.sprintf "%d trailing bytes after last section"
                       (total - off);
                 })
          else Ok (List.rev acc)
        else begin
          let id, off = Ir.Codec.read_varint_buf buf off in
          let len, off = Ir.Codec.read_varint_buf buf off in
          let crc, off = read_crc32_buf buf off in
          if id <> i + 1 then
            Error
              (Corrupt
                 { path; detail = Printf.sprintf "section %d has id %d" (i + 1) id })
          else if len < 0 || off + len > total then
            Error
              (Truncated
                 {
                   path;
                   detail =
                     Printf.sprintf "%s section claims %d bytes, %d remain"
                       names.(i) len (total - off);
                 })
          else frame (i + 1) (off + len) ((names.(i), off, len, crc) :: acc)
        end
      in
      frame 0 off []
    end
  with
  | exception Invalid_argument _ ->
    Error (Truncated { path; detail = "file ends inside the header" })
  | exception Ir.Codec.Truncated detail ->
    Error (Truncated { path; detail = "header: " ^ detail })
  | (Error _ | Ok _) as r -> r

(* Verify every framed section's CRC-32. Over an mmap'd image the
   pass reads the map in place — it allocates nothing proportional to
   the image. *)
let verify_sections ~path buf sections =
  let bad =
    List.find_map
      (fun (name, off, len, expected) ->
        let actual = Crc32.buf ~off ~len buf in
        if actual <> expected then
          Some (Checksum_mismatch { path; section = name; expected; actual })
        else None)
      sections
  in
  match bad with Some e -> Error e | None -> Ok ()

(* Frame, then verify every checksum before trusting a single payload
   byte — the eager open path. *)
let frame_and_verify ?min_sections ~path ~names buf =
  match frame ?min_sections ~path ~names buf with
  | Error _ as e -> e
  | Ok sections -> (
    match verify_sections ~path buf sections with
    | Error e -> Error e
    | Ok () -> Ok sections)

let find_section sections name =
  let _, off, len, _ = List.find (fun (n, _, _, _) -> n = name) sections in
  (off, len)

let find_section_opt sections name =
  List.find_map
    (fun (n, off, len, _) -> if n = name then Some (off, len) else None)
    sections

(* Version 4: everything decodes straight out of the mapped buffer.
   The catalog and the parent/tag sections are materialized eagerly
   (they are small and already in their query shape); posting lists
   keep zero-copy views; element pages stay slices of the map until a
   query first touches them. *)
let decode_v4 ~path ~verif buf sections =
  match
    let find = find_section sections in
    let cat_off, cat_len = find "catalog" in
    let catalog = decode_catalog buf ~off:cat_off ~len:cat_len in
    let el_off, el_len = find "elements" in
    let elements, el_end = Element_store.load_mapped buf el_off in
    if el_end <> el_off + el_len then
      failwith "elements section length mismatch";
    let ix_off, ix_len = find "index" in
    let index, ix_end = Ir.Inverted_index.load_buf buf ix_off in
    if ix_end <> ix_off + ix_len then failwith "index section length mismatch";
    let p_off, p_len = find "parents" in
    let parents, p_end = Parent_index.load buf p_off in
    if p_end <> p_off + p_len then failwith "parents section length mismatch";
    let t_off, t_len = find "tags" in
    let tags, t_end = Tag_index.load buf t_off in
    if t_end <> t_off + t_len then failwith "tags section length mismatch";
    let coll_stats =
      (* optional: absent in images written before the section
         existed; they compute stats lazily like in-memory builds *)
      match find_section_opt sections "stats" with
      | None -> Atomic.make None
      | Some (s_off, s_len) ->
        let stats, s_end = Ir.Stats.load_buf buf s_off in
        if s_end <> s_off + s_len then failwith "stats section length mismatch";
        Atomic.make (Some stats)
    in
    { catalog; elements; parents; tags; index; numberings = None; verif;
      coll_stats }
  with
  | db ->
    Log.info (fun m ->
        m "%s: mapped TIXDB004 image (%d bytes, %d sections, zero-copy)" path
          (Ir.Codec.buf_length buf) (List.length sections));
    Ok db
  | exception e ->
    (* checksums passed but decoding still tripped: report, never
       escape *)
    Error (Corrupt { path; detail = Printexc.to_string e })

(* Version 3: legacy images carry varint postings, no parent/tag
   sections, and pages meant for a heap pager. Read into memory,
   re-pack the postings through the packed builder and rebuild the
   structural indexes by scanning — the transparent in-memory
   upgrade. Saving the result writes version 4. *)
let decode_v3 ?pool_pages ~path bytes sections =
  match
    let find = find_section sections in
    let cat_off, cat_len = find "catalog" in
    let catalog =
      decode_catalog (Ir.Codec.buf_of_bytes bytes) ~off:cat_off ~len:cat_len
    in
    let el_off, el_len = find "elements" in
    let elements, el_end = Element_store.load ?pool_pages bytes el_off in
    if el_end <> el_off + el_len then
      failwith "elements section length mismatch";
    let ix_off, ix_len = find "index" in
    let index, ix_end = Ir.Inverted_index.load_legacy bytes ix_off in
    if ix_end <> ix_off + ix_len then failwith "index section length mismatch";
    let parent_builder = Parent_index.builder () in
    let tag_builder = Tag_index.builder () in
    Element_store.scan elements (fun (r : Element_rec.t) ->
        Parent_index.add parent_builder ~doc:r.doc ~start:r.start
          {
            Parent_index.parent = r.parent;
            child_count = r.child_count;
            level = r.level;
            end_ = r.end_;
            tag = r.tag;
          };
        Tag_index.add tag_builder ~tag:r.tag
          { Tag_index.doc = r.doc; start = r.start; end_ = r.end_; level = r.level });
    {
      catalog;
      elements;
      parents = Parent_index.freeze parent_builder;
      tags = Tag_index.freeze tag_builder;
      index;
      numberings = None;
      verif = verified ();
      coll_stats = Atomic.make None;
    }
  with
  | db ->
    Log.info (fun m ->
        m "%s: upgraded TIXDB003 image in memory (re-packed postings; \
           resaving writes TIXDB004)"
          path);
    Ok db
  | exception e ->
    Error (Corrupt { path; detail = Printexc.to_string e })

(* The mapped image has two access phases: the checksum pass streams
   every byte (WILLNEED lets the kernel read ahead), then serving
   touches pages randomly (RANDOM turns read-around off). Both hints
   are advisory and silently absent on unsupported platforms. *)
let willneed_hint ~path map =
  if Mmap_hints.advise map Mmap_hints.Willneed then
    Log.debug (fun m -> m "%s: madvise(WILLNEED) before checksum pass" path)

let serve_hint ~path map =
  if Mmap_hints.advise map Mmap_hints.Random then
    Log.debug (fun m -> m "%s: madvise(RANDOM) for serving" path)

let open_v4 ~verify ~path =
  match
    let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        Bigarray.array1_of_genarray
          (Unix.map_file fd Bigarray.char Bigarray.c_layout false [| -1 |]))
  with
  | exception Unix.Unix_error (e, _, _) ->
    Error (Io_error { path; detail = Unix.error_message e })
  | exception Sys_error detail -> Error (Io_error { path; detail })
  | map -> begin
    let buf = Ir.Codec.M map in
    willneed_hint ~path map;
    match verify with
    | `Eager -> (
      match
        frame_and_verify ~min_sections:required_sections ~path
          ~names:section_names buf
      with
      | Error e -> Error e
      | Ok sections -> (
        match decode_v4 ~path ~verif:(verified ()) buf sections with
        | Error e -> Error e
        | Ok db ->
          serve_hint ~path map;
          Ok db))
    | `Lazy -> (
      (* Frame structurally (O(1)), start serving, and run the CRC
         pass on a background thread. Reads meanwhile trust the
         framing only — a payload corruption surfaces as `Failed once
         the scan lands, exactly what a shard process wants: serving
         state in O(1), integrity verdict seconds later. *)
      match
        frame ~min_sections:required_sections ~path ~names:section_names buf
      with
      | Error e -> Error e
      | Ok sections -> (
        let verif =
          { v_status = Atomic.make `Pending; v_thread = None }
        in
        match decode_v4 ~path ~verif buf sections with
        | Error e -> Error e
        | Ok db ->
          verif.v_thread <-
            Some
              (Thread.create
                 (fun () ->
                   (match verify_sections ~path buf sections with
                   | Ok () ->
                     Atomic.set verif.v_status `Verified;
                     Log.info (fun m ->
                         m "%s: background checksum pass clean" path)
                   | Error e ->
                     Atomic.set verif.v_status (`Failed e);
                     Log.err (fun m ->
                         m "%s: background checksum pass FAILED: %s" path
                           (error_to_string e)));
                   serve_hint ~path map)
                 ());
          Ok db))
  end

let verification t = Atomic.get t.verif.v_status

let await_verification t =
  (match t.verif.v_thread with
  | Some th ->
    Thread.join th;
    t.verif.v_thread <- None
  | None -> ());
  match Atomic.get t.verif.v_status with
  | `Verified | `Pending -> Ok ()
  | `Failed e -> Error e

let open_v3 ?pool_pages path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        Bytes.of_string (really_input_string ic (in_channel_length ic)))
  with
  | exception Sys_error detail -> Error (Io_error { path; detail })
  | exception End_of_file ->
    Error (Truncated { path; detail = "file shorter than its own length" })
  | bytes -> begin
    match
      frame_and_verify ~path ~names:section_names_v3 (Ir.Codec.buf_of_bytes bytes)
    with
    | Error e -> Error e
    | Ok sections -> decode_v3 ?pool_pages ~path bytes sections
  end

let open_file ?pool_pages ?(verify = `Eager) path =
  (* Sniff the 8-byte magic to pick the read strategy: version 4 maps
     the file, version 3 reads it into memory for the upgrade (always
     eager — the upgrade decodes every byte anyway). *)
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let total = in_channel_length ic in
        (really_input_string ic (min total (String.length magic)), total))
  with
  | exception Sys_error detail -> Error (Io_error { path; detail })
  | exception End_of_file ->
    Error (Truncated { path; detail = "file shorter than its own length" })
  | (head, total) ->
    let prefix_len = String.length magic_prefix in
    if total < prefix_len || String.sub head 0 prefix_len <> magic_prefix then
      Error (Not_a_database { path })
    else if total < String.length magic then
      Error (Truncated { path; detail = "file ends inside the magic" })
    else if head = magic then open_v4 ~verify ~path
    else if head = magic_v3 then open_v3 ?pool_pages path
    else Error (Unsupported_version { path; found = head })

let open_file_exn ?pool_pages ?verify path =
  match open_file ?pool_pages ?verify path with
  | Ok db -> db
  | Error e -> failwith (error_to_string e)
