type entry = { name : string; xml : string; tree : Xmlkit.Tree.element }

type t = {
  base : Db.t;
  mutable entries : entry list;  (* arrival order *)
  tombstones : bool array;  (* over base document ids *)
  mutable n_tombstones : int;
  mutable cache : Db.t option;  (* delta index, rebuilt lazily *)
}

type mutation_error =
  | Duplicate_document of { name : string }
  | Unknown_document of { name : string }
  | Parse_failed of { name : string; reason : string }

let pp_mutation_error ppf = function
  | Duplicate_document { name } ->
    Format.fprintf ppf "document %S already exists" name
  | Unknown_document { name } -> Format.fprintf ppf "no document named %S" name
  | Parse_failed { name; reason } ->
    Format.fprintf ppf "document %S does not parse: %s" name reason

let mutation_error_to_string e = Format.asprintf "%a" pp_mutation_error e

let create ~base =
  {
    base;
    entries = [];
    tombstones = Array.make (Catalog.document_count (Db.catalog base)) false;
    n_tombstones = 0;
    cache = None;
  }

let base t = t.base

let base_doc t name =
  match Catalog.document_id (Db.catalog t.base) name with
  | Some d when not t.tombstones.(d) -> Some d
  | Some _ | None -> None

let in_delta t name = List.exists (fun e -> e.name = name) t.entries
let mem t name = in_delta t name || base_doc t name <> None

let is_tombstoned t doc =
  doc >= 0 && doc < Array.length t.tombstones && t.tombstones.(doc)

let tombstone_count t = t.n_tombstones
let tombstones t = Array.copy t.tombstones
let doc_count t = List.length t.entries
let is_empty t = t.entries = [] && t.n_tombstones = 0
let documents t = List.map (fun e -> (e.name, e.xml)) t.entries

let parse ~name xml =
  match Xmlkit.Parser.parse_string xml with
  | Ok tree -> Ok { name; xml; tree }
  | Error e ->
    Error
      (Parse_failed
         { name; reason = Format.asprintf "%a" Xmlkit.Parser.pp_error e })

let dirty t = t.cache <- None

let tombstone t doc =
  if not t.tombstones.(doc) then begin
    t.tombstones.(doc) <- true;
    t.n_tombstones <- t.n_tombstones + 1
  end

let insert t ~name ~xml =
  if mem t name then Error (Duplicate_document { name })
  else
    match parse ~name xml with
    | Error _ as e -> e |> Result.map (fun _ -> ())
    | Ok entry ->
      t.entries <- t.entries @ [ entry ];
      dirty t;
      Ok ()

let delete t ~name =
  if in_delta t name then begin
    (* an updated base doc stays tombstoned; only the delta copy goes *)
    t.entries <- List.filter (fun e -> e.name <> name) t.entries;
    dirty t;
    Ok ()
  end
  else
    match base_doc t name with
    | Some d ->
      tombstone t d;
      dirty t;
      Ok ()
    | None -> Error (Unknown_document { name })

let update t ~name ~xml =
  if in_delta t name then
    match parse ~name xml with
    | Error _ as e -> e |> Result.map (fun _ -> ())
    | Ok entry ->
      (* replace in place: an update keeps the document's position *)
      t.entries <-
        List.map (fun e -> if e.name = name then entry else e) t.entries;
      dirty t;
      Ok ()
  else
    match base_doc t name with
    | Some d -> begin
      match parse ~name xml with
      | Error _ as e -> e |> Result.map (fun _ -> ())
      | Ok entry ->
        tombstone t d;
        t.entries <- t.entries @ [ entry ];
        dirty t;
        Ok ()
    end
    | None -> Error (Unknown_document { name })

let apply t = function
  | Wal.Insert { name; xml } -> insert t ~name ~xml
  | Wal.Delete { name } -> delete t ~name
  | Wal.Update { name; xml } -> update t ~name ~xml

(* Liveness-injected validation: [live] decides name liveness so the
   caller can fold in effects that are not in the segment yet (e.g. a
   group-commit queue of validated-but-unwritten records). *)
let check_record ~live = function
  | Wal.Insert { name; xml } ->
    if live name then Error (Duplicate_document { name })
    else parse ~name xml |> Result.map (fun _ -> ())
  | Wal.Delete { name } ->
    if live name then Ok () else Error (Unknown_document { name })
  | Wal.Update { name; xml } ->
    if live name then parse ~name xml |> Result.map (fun _ -> ())
    else Error (Unknown_document { name })

let check t record = check_record ~live:(mem t) record

type replay_report = { applied : int; skipped : int }

let replay t records =
  let applied = ref 0 and skipped = ref 0 in
  let step = function
    | Wal.Insert { name; xml } | Wal.Update { name; xml } ->
      (* live name → update, dead name → insert: idempotent both ways *)
      let r =
        if mem t name then update t ~name ~xml else insert t ~name ~xml
      in
      (match r with Ok () -> incr applied | Error _ -> incr skipped)
    | Wal.Delete { name } -> (
      match delete t ~name with Ok () -> incr applied | Error _ -> incr skipped)
  in
  List.iter step records;
  { applied = !applied; skipped = !skipped }

let build_db ~base entries =
  match entries with
  | [] -> None
  | entries ->
    let options =
      {
        Db.default_options with
        stem = Ir.Inverted_index.stemmed (Db.index base);
        keep_trees = true;
      }
    in
    Some (Db.of_documents ~options (List.map (fun e -> (e.name, e.tree)) entries))

let db t =
  match (t.cache, t.entries) with
  | Some db, _ -> Some db
  | None, entries -> begin
    match build_db ~base:t.base entries with
    | None -> None
    | Some db ->
      t.cache <- Some db;
      Some db
  end

(* ------------------------------------------------------------------ *)
(* Frozen segments.

   A frozen segment is an immutable snapshot of the delta taken when a
   checkpoint begins: the entry list is shared (mutations only rebind
   [t.entries], never mutate the shared spine) and the tombstone
   bitmap is copied. The background merger reads the snapshot off any
   lock while the live delta keeps accumulating on top of it. *)

type frozen = {
  f_base : Db.t;
  f_entries : entry list;
  f_tombstones : bool array;
  f_n_tombstones : int;
}

let freeze t =
  {
    f_base = t.base;
    f_entries = t.entries;
    f_tombstones = Array.copy t.tombstones;
    f_n_tombstones = t.n_tombstones;
  }

let frozen_base f = f.f_base
let frozen_doc_count f = List.length f.f_entries
let frozen_tombstone_count f = f.f_n_tombstones
let frozen_tombstones f = Array.copy f.f_tombstones
let frozen_db f = build_db ~base:f.f_base f.f_entries
