(** Deterministic, seedable fault injection for the storage layer.

    The injector simulates the disk failing underneath the buffer
    pool. The {!Pager} consults it on every physical page read (pool
    miss) and reacts to the decided outcome:

    - {e transient} faults model a read that fails once and succeeds
      on retry (a timeout, a recoverable bus error). The decision is
      keyed on [(seed, page, attempt)], so retrying the same read
      re-rolls and a bounded retry loop converges whenever the rate
      is below 1.
    - {e corruption} faults model a torn or bit-rotted page: the
      bytes handed back differ from what was written. The decision is
      keyed on [(seed, page)] only, so it is {e permanent} — the same
      page fails identically on every attempt, like a bad sector.

    Everything is a pure function of the seed: a failing run replays
    exactly.

    The injector also covers the {e write} path ({!Wal} appends):
    {!arm_write_fault} schedules a torn write or a failed fsync for a
    specific upcoming append, so crash-point sweeps can place a
    process death at every byte of a log frame deterministically. *)

type t

val create :
  ?seed:int ->
  ?transient_rate:float ->
  ?corrupt_rate:float ->
  ?max_retries:int ->
  unit ->
  t
(** [transient_rate] and [corrupt_rate] are probabilities in
    [\[0, 1\]] (defaults 0); [max_retries] bounds the pager's retry
    loop for transient faults (default 3 retries after the first
    attempt). *)

type outcome =
  | Healthy
  | Transient  (** this attempt fails; a retry may succeed *)
  | Corrupt  (** the page is permanently damaged *)

val outcome : t -> page:int -> attempt:int -> outcome
(** Decide the fate of read [attempt] (0-based) of [page].
    Deterministic in [(seed, page, attempt)]. *)

val corrupt_in_place : t -> page:int -> Bytes.t -> unit
(** Damage the page image the way the decided corruption would:
    flips one deterministically chosen byte (no-op on empty pages).
    The pager's checksum verification is expected to catch this. *)

val max_retries : t -> int
val seed : t -> int

(** {1 Write-path faults}

    Unlike read faults (probabilistic, re-rolled per attempt), write
    faults are {e armed}: a test points one at the [op]-th upcoming
    append and the {!Wal} fires it exactly once. This is what a
    crash-point sweep needs — one precisely placed failure per run,
    not a rate. *)

type write_fault =
  | Torn_write of { at_byte : int }
      (** only the first [at_byte] bytes of the frame reach the file,
          then the process "dies" ({!Write_crash}); [at_byte] past the
          frame end degrades to a complete write that still crashes
          before the append returns — the
          crash-between-append-and-commit point *)
  | Fail_fsync
      (** the frame is written but the fsync reports failure; the
          append must report a typed error and leave the log in its
          pre-append state *)

exception Write_crash of { op : int; wrote : int }
(** Simulated process death mid-append: [wrote] bytes of append [op]'s
    frame reached stable storage before the crash. *)

val arm_write_fault : t -> op:int -> write_fault -> unit
(** Schedule [fault] for the [op]-th (0-based) subsequent append
    through the consumer that holds this injector. Re-arming the same
    [op] replaces the previous fault. *)

val take_write_fault : t -> op:int -> write_fault option
(** Consume the fault armed for append [op] (it fires at most once);
    consuming counts it in {!stats}. *)

type injection_stats = {
  transient : int;
  corrupt : int;
  torn_writes : int;
  failed_fsyncs : int;
}

val stats : t -> injection_stats
(** How many faults of each kind were actually injected. *)
