(** Tag index: for each element tag, the document-ordered list of
    elements carrying it.

    This is the element-stream input of the structural join family
    (Zhang et al., Al-Khalifa et al.): evaluating a path step like
    [//article] or [//author] starts from this index instead of a
    full table scan. *)

type item = { doc : int; start : int; end_ : int; level : int }

type t

type builder

val builder : unit -> builder

val add : builder -> tag:int -> item -> unit
(** Items must arrive in (doc, start) order across all calls (the
    loader's document order guarantees this). *)

val freeze : builder -> t

val nodes : t -> tag:int -> item array
(** All elements with the tag, in document order; [||] for unknown
    tags. The returned array must not be mutated. *)

val all : t -> item array
(** Every element, in document order. *)

val count : t -> tag:int -> int
(** Number of elements with the tag (a catalog cardinality, useful
    for join ordering). *)

val tag_count : t -> int

(** {1 Serialization}

    A TIXDB004 image stores this index as its own section, so an
    open decodes it directly instead of rebuilding it by scanning
    every element page. *)

val save : t -> Buffer.t -> unit

val load : Ir.Codec.buf -> int -> t * int
(** [(index, next_off)]; inverse of {!save}. Raises
    [Ir.Codec.Truncated] on a short buffer. *)
