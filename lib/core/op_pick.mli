(** The Pick operator (Sec. 3.3.2): granularity selection.

    Among the data IR-nodes matching one pattern variable, Pick
    returns the nodes worth presenting to the user and eliminates
    vertical (ancestor/descendant) and horizontal (sibling)
    redundancy. This module is the reference (specification)
    implementation; [Access.Pick_stack] implements the paper's
    stack-based streaming algorithm (Fig. 12) and is tested against
    this one. *)

type criterion = {
  worth : Stree.t -> bool;
      (** the DetWorth function: is this node worth returning, based
          on its own score and its children's scores *)
  sibling_filter : Stree.t list -> Stree.t list;
      (** horizontal redundancy elimination over returned siblings
          (e.g. keep only the first); defaults to the identity *)
}

val criterion :
  ?sibling_filter:(Stree.t list -> Stree.t list) ->
  (Stree.t -> bool) ->
  criterion

val pick_foo : ?threshold:float -> ?fraction:float -> unit -> criterion
(** The paper's PickFoo (Fig. 9): a node with children is worth
    returning when more than [fraction] (default 0.5) of its children
    have score at least [threshold] (default 0.8); a leaf is worth
    returning when its own score reaches the threshold. *)

val worth_by_histogram :
  quantile:float -> scores:float list -> ?fraction:float -> unit -> criterion
(** Sec. 5.3: derive the relevance threshold from the distribution of
    scores (a histogram quantile) instead of asking the user for an
    absolute value. *)

val returned : criterion -> candidates:(Stree.t -> bool) -> Stree.t -> Stree.t list
(** The returned set: a candidate is returned iff it is worth
    returning and its (immediate) parent is not returned —
    parent/child redundancy elimination. Document order. *)

val apply :
  ?trace:Trace.t -> Pattern.t -> var:int -> criterion -> Stree.t list -> Stree.t list
(** Apply Pick to each tree of a collection: candidates are the
    matches of [var]; candidates that are not returned are elided
    (children promoted; the tree root is kept but its score is
    cleared when its candidacy is dropped), then secondary scores are
    refreshed via {!Op_project.rescore_secondary}. *)
