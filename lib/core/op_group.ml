let group_tag = "tix_group"

let group_by ?(trace = Trace.disabled) ~basis ?order trees =
  Trace.span_over trace "GroupBy" trees @@ fun trees ->
  let table : (string, Stree.t list ref) Hashtbl.t = Hashtbl.create 16 in
  let keys_in_order = ref [] in
  List.iter
    (fun tree ->
      let key = basis tree in
      match Hashtbl.find_opt table key with
      | Some members -> members := tree :: !members
      | None ->
        Hashtbl.replace table key (ref [ tree ]);
        keys_in_order := key :: !keys_in_order)
    trees;
  List.rev_map
    (fun key ->
      let members = List.rev !(Hashtbl.find table key) in
      let members =
        match order with
        | Some cmp -> List.stable_sort cmp members
        | None -> members
      in
      Stree.make ~attrs:[ ("key", key) ] group_tag
        (List.map (fun m -> Stree.Node m) members))
    !keys_in_order

let empty_basis _ = ""

let by_score_desc a b = compare (Stree.score b) (Stree.score a)

let leftmost k (group : Stree.t) =
  List.filteri (fun i _ -> i < k) (Stree.child_nodes group)

let top_k_via_grouping k trees =
  match group_by ~basis:empty_basis ~order:by_score_desc trees with
  | [] -> []
  | [ group ] -> leftmost k group
  | _ :: _ -> assert false (* the empty basis yields a single group *)
